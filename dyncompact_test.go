package prtree

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prtree/internal/storage"
)

// Tests for the online-compaction subsystem: the property test that
// background compaction is query-equivalent to the synchronous path, the
// -race stress of concurrent readers during merges, and the
// kill-at-every-step crash test for the dynamic index's persistence
// (carries, the background epoch-swap commit, flushes).

// dynDigest fingerprints a dynamic index's entire query surface. Window,
// point and containment results are canonicalized by item ID (sync and
// background runs may build different level shapes, so traversal order is
// not comparable — the result SET must be identical); kNN results keep
// their order, which is deterministic (distance then ID) regardless of
// shape.
func dynDigest(t *testing.T, d *Dynamic) uint32 {
	t.Helper()
	windows := []Rect{
		NewRect(0.1, 0.1, 0.4, 0.4),
		NewRect(0.5, 0.5, 0.9, 0.9),
		NewRect(0.25, 0.6, 0.35, 0.95),
		NewRect(0, 0, 1, 1),
		NewRect(0.42, 0.13, 0.58, 0.27),
	}
	var sb strings.Builder
	dump := func(kind string, items []Item) {
		sorted := append([]Item(nil), items...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j].ID < sorted[j-1].ID; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		fmt.Fprintf(&sb, "%s:%d;", kind, len(sorted))
		for _, it := range sorted {
			fmt.Fprintf(&sb, "%d,%v;", it.ID, it.Rect)
		}
	}
	fmt.Fprintf(&sb, "len:%d;", d.Len())
	for _, q := range windows {
		dump("w", d.Search(q))
		dump("c", d.SearchContained(q))
	}
	dump("p", d.SearchPoint(0.33, 0.44))
	dump("p", d.SearchPoint(0.71, 0.18))
	for _, nn := range [][]Neighbor{d.NearestNeighbors(0.2, 0.8, 10), d.NearestNeighbors(0.9, 0.1, 10)} {
		fmt.Fprintf(&sb, "n:%d;", len(nn))
		for _, n := range nn {
			fmt.Fprintf(&sb, "%d,%v,%g;", n.Item.ID, n.Item.Rect, n.Dist2)
		}
	}
	for _, res := range d.SearchBatch(windows, 3) {
		dump("b", res)
	}
	return crc32.ChecksumIEEE([]byte(sb.String()))
}

// waitForMerges polls until the background compactor has completed at
// least one merge (the supervisor runs on its own goroutine; a fast
// all-in-memory workload can finish before it is ever scheduled).
func waitForMerges(t *testing.T, d *Dynamic) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for d.CompactionStats().MergesCompleted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no background merge completed: %+v", d.CompactionStats())
		}
		time.Sleep(time.Millisecond)
	}
}

// dynEquivWorkload applies a deterministic insert/delete/revive sequence.
func dynEquivWorkload(d *Dynamic, seed int64) {
	r := rand.New(rand.NewSource(seed))
	items := crashItems(r, 400, 0)
	for i, it := range items {
		d.Insert(it)
		if i > 20 && i%7 == 3 {
			d.Delete(items[i-17]) // tombstone an item already in a component
		}
	}
	// Revive two tombstoned items (re-insert of a dead ID).
	d.Insert(items[7])
	d.Insert(items[14])
	d.Delete(items[21])
}

// TestDynamicBackgroundEquivalence: background compaction must yield
// bit-identical query results (window, point, containment, kNN, batch) to
// the synchronous path, across seeds and across the memory and file
// backends. BlockSize 512 keeps the component base small so the workload
// crosses many carries.
func TestDynamicBackgroundEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 9} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			digests := make(map[string]uint32)

			for _, cfg := range []struct {
				name       string
				file       bool
				background bool
			}{
				{"memory/sync", false, false},
				{"memory/background", false, true},
				{"file/sync", true, false},
				{"file/background", true, true},
			} {
				opts := &Options{BlockSize: 512, BackgroundCompaction: cfg.background}
				var d *Dynamic
				if cfg.file {
					var err error
					d, err = CreateDynamic(filepath.Join(dir, strings.ReplaceAll(cfg.name, "/", "_")+".pr"), opts)
					if err != nil {
						t.Fatal(err)
					}
				} else {
					d = NewDynamic(opts)
				}
				dynEquivWorkload(d, seed)
				if cfg.background {
					// Let a merge land so Install and epoch advancement are
					// exercised before we read.
					waitForMerges(t, d)
					release := d.comp.Drain()
					release()
					if st := d.CompactionStats(); st.MergesAborted != 0 {
						t.Errorf("%s: %d aborted merges in a fault-free run", cfg.name, st.MergesAborted)
					}
				}
				digests[cfg.name] = dynDigest(t, d)
				if err := d.Close(); err != nil {
					t.Fatalf("%s: close: %v", cfg.name, err)
				}
			}

			want := digests["memory/sync"]
			for name, got := range digests {
				if got != want {
					t.Errorf("%s digest %08x != memory/sync %08x", name, got, want)
				}
			}
		})
	}
}

// TestDynamicFileBackgroundReopen: a background-compacted index closes and
// reopens to the same contents as its synchronous twin.
func TestDynamicFileBackgroundReopen(t *testing.T) {
	dir := t.TempDir()
	pathBG := filepath.Join(dir, "bg.pr")
	pathSync := filepath.Join(dir, "sync.pr")

	bg, err := CreateDynamic(pathBG, &Options{BlockSize: 512, BackgroundCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	dynEquivWorkload(bg, 5)
	if err := bg.Close(); err != nil {
		t.Fatal(err)
	}

	sy, err := CreateDynamic(pathSync, &Options{BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	dynEquivWorkload(sy, 5)
	want := dynDigest(t, sy)
	if err := sy.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDynamic(pathBG, &Options{BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if got := dynDigest(t, re); got != want {
		t.Errorf("reopened background index digest %08x, sync twin %08x", got, want)
	}
	if err := re.CheckPages(); err != nil {
		t.Errorf("checksum scrub after background run: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicConcurrentReadersDuringMerges is the -race stress: window,
// point, containment, kNN and batch readers run continuously while a
// writer drives inserts and deletes through many background merges.
// Readers check snapshot invariants (no duplicate IDs, every result
// intersects the query) — with the race detector on, this also proves the
// copy-on-write path is data-race-free.
func TestDynamicConcurrentReadersDuringMerges(t *testing.T) {
	for _, backend := range []string{"memory", "file"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			opts := &Options{BlockSize: 512, BackgroundCompaction: true}
			var d *Dynamic
			if backend == "file" {
				var err error
				d, err = CreateDynamic(filepath.Join(t.TempDir(), "stress.pr"), opts)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				d = NewDynamic(opts)
			}
			defer d.Close()

			const nItems = 1500
			done := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(100 + w)))
					for {
						select {
						case <-done:
							return
						default:
						}
						q := NewRect(r.Float64(), r.Float64(), r.Float64(), r.Float64())
						switch w % 4 {
						case 0:
							seen := make(map[uint32]bool)
							d.Query(q, func(it Item) bool {
								if seen[it.ID] {
									t.Errorf("duplicate ID %d in window result", it.ID)
								}
								seen[it.ID] = true
								if it.Rect.MinX > q.MaxX || it.Rect.MaxX < q.MinX ||
									it.Rect.MinY > q.MaxY || it.Rect.MaxY < q.MinY {
									t.Errorf("item %d outside window", it.ID)
								}
								return true
							})
						case 1:
							d.SearchContained(q)
							d.SearchPoint(r.Float64(), r.Float64())
						case 2:
							nn := d.NearestNeighbors(r.Float64(), r.Float64(), 8)
							for i := 1; i < len(nn); i++ {
								if nn[i].Dist2 < nn[i-1].Dist2 {
									t.Errorf("kNN results out of order")
								}
							}
						case 3:
							d.SearchBatch([]Rect{q, NewRect(0, 0, 0.5, 0.5)}, 2)
						}
					}
				}(w)
			}

			r := rand.New(rand.NewSource(42))
			items := crashItems(r, nItems, 0)
			for i, it := range items {
				d.Insert(it)
				if i > 50 && i%11 == 5 {
					d.Delete(items[i-37])
				}
			}
			close(done)
			wg.Wait()
			waitForMerges(t, d)

			// All readers drained: no epoch pins may survive.
			if st := d.CompactionStats(); st.SnapshotReaders != 0 {
				t.Errorf("%d snapshot readers leaked", st.SnapshotReaders)
			}
		})
	}
}

// dynCrashBackend digs the FileBackend out of a dynamic index.
func dynCrashBackend(t *testing.T, d *Dynamic) *storage.FileBackend {
	t.Helper()
	fb, ok := storage.AsFile(d.io)
	if !ok {
		t.Fatal("file-backed dynamic index has no FileBackend")
	}
	return fb
}

// dynCrashWorkload drives the dynamic index through every transaction
// shape the compaction subsystem commits: inline carries (sync inserts
// across a full buffer), deletes with tombstones, one manually-driven
// background carry (build off to the side, then the epoch-swap install
// commit — the exact transaction the compactor runs), and a full flush.
func dynCrashWorkload(d *Dynamic, afterTx func()) {
	step := func() {
		if afterTx != nil {
			afterTx()
		}
	}
	r := rand.New(rand.NewSource(11))
	base := d.inner.Base()
	items := crashItems(r, 3*base+4, 0)
	for _, it := range items {
		d.Insert(it) // crosses >= 3 inline carries
		step()
	}
	for _, it := range []Item{items[1], items[base], items[2*base+1]} {
		d.Delete(it)
		step()
	}

	// One background-style carry, driven deterministically: fill the
	// buffer with inline carries off, build off to the side (page writes
	// outside any transaction — a crash here must recover the pre-merge
	// state), then commit the install exactly as internal/compact does.
	d.inner.SetBackground(true)
	extra := crashItems(r, base, 5000)
	for _, it := range extra {
		d.Insert(it)
		step()
	}
	job, ok := d.inner.BeginCarry()
	if !ok {
		panic("BeginCarry refused with a full buffer")
	}
	job.Build()
	if err := d.mutate(func() { job.Install() }); err != nil {
		panic(err)
	}
	storage.EnsureSnapshotter(d.io).SnapshotAdvance()
	step()
	d.inner.SetBackground(false)

	d.Flush()
	step()
}

// TestDynamicCrashRecoveryEveryBoundary kills the dynamic index at every
// persistence step of the workload above — including mid-background-build
// and inside the epoch-swap install commit — reopens, and requires the
// recovered index to match exactly one committed state.
func TestDynamicCrashRecoveryEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	opts := &Options{BlockSize: 512}

	pristine := filepath.Join(dir, "pristine.prd")
	d, err := CreateDynamic(pristine, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference run: the digest of every committed state.
	refPath := filepath.Join(dir, "ref.prd")
	copyCrashFiles(t, pristine, refPath)
	ref, err := OpenDynamic(refPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	committed := make(map[uint32]int)
	committed[dynDigest(t, ref)] = 0
	txIndex := 0
	dynCrashWorkload(ref, func() {
		txIndex++
		dg := dynDigest(t, ref)
		if _, seen := committed[dg]; !seen {
			committed[dg] = txIndex
		}
	})
	finalDigest := dynDigest(t, ref)
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Dry run: count persistence steps.
	dryPath := filepath.Join(dir, "dry.prd")
	copyCrashFiles(t, pristine, dryPath)
	dry, err := OpenDynamic(dryPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	dfb := dynCrashBackend(t, dry)
	start := dfb.PersistSteps()
	dynCrashWorkload(dry, nil)
	if err := dry.Close(); err != nil {
		t.Fatal(err)
	}
	totalSteps := dfb.PersistSteps() - start
	if totalSteps < 20 {
		t.Fatalf("workload spent only %d persistence steps; instrumentation broken?", totalSteps)
	}
	t.Logf("workload: %d persistence steps, %d distinct committed states", totalSteps, len(committed))

	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	workPath := filepath.Join(dir, "crash.prd")
	for k := int64(1); k <= totalSteps; k += stride {
		copyCrashFiles(t, pristine, workPath)
		victim, err := OpenDynamic(workPath, opts)
		if err != nil {
			t.Fatalf("step %d: open: %v", k, err)
		}
		fb := dynCrashBackend(t, victim)
		fb.SetCrashAfterSteps(fb.PersistSteps() + k)

		crashed := func() (crashed bool) {
			defer func() {
				if r := recover(); r != nil {
					err, ok := r.(error)
					if !ok || !errors.Is(err, storage.ErrInjectedFault) {
						t.Fatalf("step %d: panic %v, want ErrInjectedFault", k, r)
					}
					crashed = true
				}
			}()
			dynCrashWorkload(victim, nil)
			if err := victim.Close(); err != nil {
				if !errors.Is(err, storage.ErrInjectedFault) {
					t.Fatalf("step %d: close: %v", k, err)
				}
				return true
			}
			return false
		}()
		if crashed {
			fb.Abandon()
		}

		re, err := OpenDynamic(workPath, opts)
		if err != nil {
			t.Fatalf("step %d: reopen after crash: %v", k, err)
		}
		dg := dynDigest(t, re)
		if crashed {
			if _, ok := committed[dg]; !ok {
				t.Fatalf("step %d: recovered state matches no committed state (recovery: %v)",
					k, re.Recovery())
			}
		} else if dg != finalDigest {
			t.Fatalf("step %d: uncrashed run diverged from the reference", k)
		}
		if err := re.CheckPages(); err != nil {
			t.Fatalf("step %d: checksum scrub after recovery: %v", k, err)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("step %d: close reopened: %v", k, err)
		}
	}
}

// TestDynamicInsertEDeleteE: the error-returning mutation surface works
// and the panic shims stay equivalent.
func TestDynamicInsertEDeleteE(t *testing.T) {
	d := NewDynamic(&Options{BlockSize: 512})
	defer d.Close()
	it := Item{Rect: NewRect(0.1, 0.1, 0.2, 0.2), ID: 1}
	if err := d.InsertE(it); err != nil {
		t.Fatal(err)
	}
	ok, err := d.DeleteE(it)
	if err != nil || !ok {
		t.Fatalf("DeleteE = %v, %v; want true, nil", ok, err)
	}
	ok, err = d.DeleteE(it)
	if err != nil || ok {
		t.Fatalf("repeated DeleteE = %v, %v; want false, nil", ok, err)
	}
	if err := d.FlushE(); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicCompactionStatsWriteAmp: counters accumulate and write
// amplification is items-merged over items-absorbed.
func TestDynamicCompactionStatsWriteAmp(t *testing.T) {
	d := NewDynamic(&Options{BlockSize: 512, BackgroundCompaction: true})
	defer d.Close()
	r := rand.New(rand.NewSource(13))
	for _, it := range crashItems(r, 600, 0) {
		d.Insert(it)
	}
	waitForMerges(t, d)
	release := d.comp.Drain()
	release()
	st := d.CompactionStats()
	if st.ItemsAbsorbed == 0 {
		t.Fatalf("no merge activity recorded: %+v", st)
	}
	if st.WriteAmplification < 1 {
		t.Errorf("write amplification %.2f < 1 (merged %d, absorbed %d)",
			st.WriteAmplification, st.ItemsMerged, st.ItemsAbsorbed)
	}
	if st.PinnedPages != 0 {
		t.Errorf("%d pages still pinned with no readers", st.PinnedPages)
	}
}
