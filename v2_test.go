package prtree

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/workload"
)

// TestOptionsNormalized is the table test over nil/zero/negative options
// for the collapsed normalization logic.
func TestOptionsNormalized(t *testing.T) {
	cases := []struct {
		name      string
		in        *Options
		wantBlock int
		wantCache int
	}{
		{name: "nil", in: nil, wantBlock: DefaultBlockSize, wantCache: -1},
		{name: "zero", in: &Options{}, wantBlock: DefaultBlockSize, wantCache: -1},
		{name: "negative block", in: &Options{BlockSize: -5}, wantBlock: DefaultBlockSize, wantCache: -1},
		{name: "explicit block", in: &Options{BlockSize: 8192}, wantBlock: 8192, wantCache: -1},
		{name: "negative cache stays", in: &Options{CacheCapacity: -7}, wantBlock: DefaultBlockSize, wantCache: -7},
		{name: "positive cache stays", in: &Options{CacheCapacity: 12}, wantBlock: DefaultBlockSize, wantCache: 12},
		{name: "both set", in: &Options{BlockSize: 2048, CacheCapacity: 3}, wantBlock: 2048, wantCache: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.normalized()
			if got.BlockSize != tc.wantBlock {
				t.Errorf("BlockSize = %d, want %d", got.BlockSize, tc.wantBlock)
			}
			if got.CacheCapacity != tc.wantCache {
				t.Errorf("CacheCapacity = %d, want %d", got.CacheCapacity, tc.wantCache)
			}
			if tc.in != nil && !reflect.DeepEqual(*tc.in, func() Options {
				c := *tc.in
				return c
			}()) {
				t.Errorf("normalized mutated its receiver")
			}
		})
	}
}

// TestBackendEquivalence is the cross-backend property test: the same
// dataset built on the in-memory backend and the file backend must produce
// bit-identical window, point, containment, k-NN and batch results — and
// identical query block-I/O — under both page layouts.
func TestBackendEquivalence(t *testing.T) {
	for _, layout := range []PageLayout{LayoutRaw, LayoutCompressed} {
		for _, seed := range []int64{3, 11} {
			t.Run(fmt.Sprintf("layout=%v/seed=%d", layout, seed), func(t *testing.T) {
				items := dataset.Western(6000, seed)
				// A small bounded cache makes the block-I/O identity check
				// below meaningful: queries keep reading real blocks instead
				// of serving everything from a fully warmed unbounded cache.
				opts := &Options{Layout: layout, CacheCapacity: 8}

				mem := Bulk(items, opts)

				path := filepath.Join(t.TempDir(), "equiv.pr")
				file, err := Create(path, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer file.Close()
				if err := file.BulkLoad(PR, items); err != nil {
					t.Fatal(err)
				}

				if mem.Len() != file.Len() || mem.Height() != file.Height() || mem.Nodes() != file.Nodes() {
					t.Fatalf("shape differs: mem %d/%d/%d file %d/%d/%d",
						mem.Len(), mem.Height(), mem.Nodes(), file.Len(), file.Height(), file.Nodes())
				}
				if err := mem.Validate(); err != nil {
					t.Fatalf("in-memory tree invalid: %v", err)
				}
				if err := file.Validate(); err != nil {
					t.Fatalf("file-backed tree invalid: %v", err)
				}

				world := geom.ItemsMBR(items)
				queries := workload.Squares(world, 0.005, 40, seed+1)
				rng := rand.New(rand.NewSource(seed + 2))

				mem.ResetIOStats()
				file.ResetIOStats()
				for i, q := range queries {
					var stM, stF QueryStats
					gotM, errM := mem.Collect(Window(q).WithStats(&stM))
					gotF, errF := file.Collect(Window(q).WithStats(&stF))
					if errM != nil || errF != nil {
						t.Fatalf("query %d errors: %v / %v", i, errM, errF)
					}
					if !reflect.DeepEqual(gotM, gotF) {
						t.Fatalf("query %d: results differ across backends", i)
					}
					if stM != stF {
						t.Fatalf("query %d: stats %+v vs %+v", i, stM, stF)
					}

					cm, _ := mem.Collect(Contained(q))
					cf, _ := file.Collect(Contained(q))
					if !reflect.DeepEqual(cm, cf) {
						t.Fatalf("query %d: containment results differ", i)
					}

					x, y := rng.Float64(), rng.Float64()
					if !reflect.DeepEqual(mem.SearchPoint(x, y), file.SearchPoint(x, y)) {
						t.Fatalf("query %d: point results differ", i)
					}
					nm := mem.NearestNeighbors(x, y, 10)
					nf := file.NearestNeighbors(x, y, 10)
					if !reflect.DeepEqual(nm, nf) {
						t.Fatalf("query %d: k-NN results differ", i)
					}
				}
				ioM, ioF := mem.IOStats(), file.IOStats()
				if ioM != ioF {
					t.Fatalf("query block-I/O differs across backends: mem %v file %v", ioM, ioF)
				}

				// Batch execution must agree with itself across backends too.
				bm := mem.SearchBatch(queries, 4)
				bf := file.SearchBatch(queries, 4)
				if !reflect.DeepEqual(bm, bf) {
					t.Fatal("batch results differ across backends")
				}
				sm := mem.QueryBatch(queries, 4)
				sf := file.QueryBatch(queries, 4)
				if !reflect.DeepEqual(sm, sf) {
					t.Fatal("batch stats differ across backends")
				}
			})
		}
	}
}

// TestCreateCloseOpen proves the persistence contract: Open after
// Create+Close returns a tree whose Items and query results match the
// original with zero rebuild work (no page writes at all).
func TestCreateCloseOpen(t *testing.T) {
	for _, layout := range []PageLayout{LayoutRaw, LayoutCompressed} {
		t.Run(layout.String(), func(t *testing.T) {
			items := dataset.Western(4000, 17)
			path := filepath.Join(t.TempDir(), "roundtrip.pr")

			tree, err := Create(path, &Options{Layout: layout})
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.BulkLoad(TGS, items); err != nil {
				t.Fatal(err)
			}
			wantItems := tree.Items()
			world := geom.ItemsMBR(items)
			queries := workload.Squares(world, 0.01, 20, 5)
			wantResults := make([][]Item, len(queries))
			for i, q := range queries {
				wantResults[i] = tree.Search(q)
			}
			wantLen, wantHeight, wantNodes := tree.Len(), tree.Height(), tree.Nodes()
			if err := tree.Close(); err != nil {
				t.Fatal(err)
			}
			if err := tree.Close(); err != nil {
				t.Errorf("second Close: %v", err)
			}

			re, err := Open(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if re.Len() != wantLen || re.Height() != wantHeight || re.Nodes() != wantNodes {
				t.Fatalf("reopened shape %d/%d/%d, want %d/%d/%d",
					re.Len(), re.Height(), re.Nodes(), wantLen, wantHeight, wantNodes)
			}
			if got := re.Items(); !reflect.DeepEqual(got, wantItems) {
				t.Fatal("reopened Items differ")
			}
			for i, q := range queries {
				if got := re.Search(q); !reflect.DeepEqual(got, wantResults[i]) {
					t.Fatalf("reopened query %d differs", i)
				}
			}
			// Zero rebuild work: reopening and querying writes nothing.
			if io := re.IOStats(); io.Writes != 0 {
				t.Fatalf("reopened tree performed %d writes; want 0 (zero rebuild)", io.Writes)
			}
			if err := re.Validate(); err != nil {
				t.Fatalf("reopened tree invalid: %v", err)
			}

			// Opening with a mismatched block size must fail inspectably.
			if _, err := Open(path, &Options{BlockSize: 8192}); !errors.Is(err, ErrBlockSizeMismatch) {
				t.Fatalf("Open with wrong block size: %v, want ErrBlockSizeMismatch", err)
			}
		})
	}
}

// TestFileBackedUpdatesPersist: dynamic inserts and deletes on a
// file-backed tree survive Close/Open.
func TestFileBackedUpdatesPersist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "updates.pr")
	tree, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var items []Item
	for i := 0; i < 500; i++ {
		x, y := rng.Float64(), rng.Float64()
		it := Item{Rect: NewRect(x, y, x+0.01, y+0.01), ID: uint32(i)}
		items = append(items, it)
		tree.Insert(it)
	}
	for i := 0; i < 100; i++ {
		if !tree.Delete(items[i]) {
			t.Fatalf("delete %d failed", i)
		}
	}
	want := tree.Search(NewRect(0, 0, 1, 1))
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 400 {
		t.Fatalf("reopened Len = %d, want 400", re.Len())
	}
	if got := re.Search(NewRect(0, 0, 1, 1)); !reflect.DeepEqual(got, want) {
		t.Fatal("reopened search differs after updates")
	}
}

// TestQuerySurface exercises the composable Query options: limits,
// cancellation, stats sinks, Count, and the Nearest iterator order.
func TestQuerySurface(t *testing.T) {
	items := dataset.Western(3000, 23)
	tree := Bulk(items, nil)
	world := geom.ItemsMBR(items)

	t.Run("limit", func(t *testing.T) {
		var st QueryStats
		got, err := tree.Collect(Window(world).WithLimit(7).WithStats(&st))
		if err != nil || len(got) != 7 || st.Results != 7 {
			t.Fatalf("limit 7: %d results, stats %+v, err %v", len(got), st, err)
		}
		if n, err := tree.Count(Window(world).WithLimit(0)); err != nil || n != tree.Len() {
			t.Fatalf("limit 0 (unbounded): %d, want %d (err %v)", n, tree.Len(), err)
		}
	})

	t.Run("cancellation", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var st QueryStats
		err := tree.Run(Window(world).WithContext(ctx).WithStats(&st), nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled query: err = %v", err)
		}
		if st.NodesVisited != 0 {
			t.Fatalf("canceled-before-start query visited %d nodes", st.NodesVisited)
		}
		// A live context must not interfere.
		if _, err := tree.Collect(Window(world).WithContext(context.Background())); err != nil {
			t.Fatalf("live context: %v", err)
		}
		// Nearest honors cancellation too.
		if err := tree.Run(Nearest(0.5, 0.5, 5).WithContext(ctx), nil); !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled nearest: err = %v", err)
		}
	})

	t.Run("kinds agree with v1 shims", func(t *testing.T) {
		q := workload.Squares(world, 0.02, 1, 3)[0]
		if got, _ := tree.Collect(Window(q)); !reflect.DeepEqual(got, tree.Search(q)) {
			t.Error("Window/Search disagree")
		}
		if got, _ := tree.Collect(Contained(q)); !reflect.DeepEqual(got, tree.SearchContained(q)) {
			t.Error("Contained/SearchContained disagree")
		}
		x, y := 0.3, 0.7
		if got, _ := tree.Collect(Point(x, y)); !reflect.DeepEqual(got, tree.SearchPoint(x, y)) {
			t.Error("Point/SearchPoint disagree")
		}
		want := tree.NearestNeighbors(0.5, 0.5, 9)
		got, err := tree.Collect(Nearest(0.5, 0.5, 9))
		if err != nil || len(got) != len(want) {
			t.Fatalf("Nearest: %d results, want %d (err %v)", len(got), len(want), err)
		}
		for i := range got {
			if got[i] != want[i].Item {
				t.Fatalf("Nearest order differs at %d", i)
			}
		}
	})

	t.Run("iterator early break", func(t *testing.T) {
		var st QueryStats
		n := 0
		for range tree.Iter(Window(world).WithStats(&st)) {
			n++
			if n == 3 {
				break
			}
		}
		if n != 3 {
			t.Fatalf("broke after %d items", n)
		}
		if st.Results < 3 {
			t.Fatalf("stats sink not filled on early break: %+v", st)
		}
	})

	t.Run("nearest limit", func(t *testing.T) {
		got, err := tree.Collect(Nearest(0.5, 0.5, 9).WithLimit(4))
		if err != nil || len(got) != 4 {
			t.Fatalf("nearest with limit: %d results (err %v)", len(got), err)
		}
		want := tree.NearestNeighbors(0.5, 0.5, 4)
		for i := range got {
			if got[i] != want[i].Item {
				t.Fatalf("limited nearest differs at %d", i)
			}
		}
	})
}

// TestConcurrentIterFileBacked runs many Iter consumers against one
// file-backed tree simultaneously — the race-detector test for the
// file backend + lock-striped pager + pull-iterator stack. Run under
// -race in CI (matched by the `-run Concurrent` stress job).
func TestConcurrentIterFileBacked(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	items := dataset.Western(8000, 31)
	path := filepath.Join(t.TempDir(), "concurrent.pr")
	tree, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if err := tree.BulkLoad(PR, items); err != nil {
		t.Fatal(err)
	}
	world := geom.ItemsMBR(items)
	queries := workload.Squares(world, 0.01, 32, 13)
	want := make([][]Item, len(queries))
	for i, q := range queries {
		want[i] = tree.Search(q)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, q := range queries {
					var got []Item
					for it := range tree.Iter(Window(q)) {
						got = append(got, it)
					}
					if !reflect.DeepEqual(got, want[i]) {
						errs <- fmt.Errorf("worker %d rep %d query %d: results differ", w, rep, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
