module prtree

go 1.22
