module prtree

go 1.23
