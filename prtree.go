// Package prtree is a Go implementation of the Priority R-tree of Arge,
// de Berg, Haverkort and Yi (SIGMOD 2004) — the first R-tree variant whose
// window queries are worst-case optimal: O(sqrt(N/B) + T/B) block reads
// for N rectangles, block capacity B and output size T.
//
// The package bulk-loads PR-trees (and, for comparison, the packed Hilbert,
// four-dimensional Hilbert, STR and Top-down Greedy Split R-trees the
// paper benchmarks) onto a simulated block disk that counts every 4 KB
// block transfer, supports the classic heuristic updates (Guttman and
// R*-tree) on any loaded tree, answers point, containment and k-nearest-
// neighbor queries besides window queries, persists indexes to files, and
// offers a logarithmic-method dynamic index that keeps the optimal query
// bound under insertions and deletions.
//
// The read path is safe for many concurrent goroutines — the page cache is
// lock-striped and per-traversal scratch is pooled — and QueryBatch /
// SearchBatch fan a slice of queries across a bounded worker pool with
// results identical to sequential execution. Mutations (Insert, Delete)
// require exclusive access.
//
// Quick start:
//
//	items := []prtree.Item{
//		{Rect: prtree.NewRect(0, 0, 1, 1), ID: 1},
//		{Rect: prtree.NewRect(2, 2, 3, 3), ID: 2},
//	}
//	tree := prtree.Bulk(items, nil)
//	hits := tree.Search(prtree.NewRect(0.5, 0.5, 2.5, 2.5))
package prtree

import (
	"io"

	"prtree/internal/bulk"
	"prtree/internal/geom"
	"prtree/internal/logmethod"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// Rect is an axis-parallel rectangle, closed on all sides.
type Rect = geom.Rect

// Item is a rectangle tagged with the caller's object identifier. IDs must
// be unique when using Delete or the Dynamic index.
type Item = geom.Item

// QueryStats reports the node visits of one window query.
type QueryStats = rtree.QueryStats

// IOStats counts block reads and writes on the simulated disk.
type IOStats = storage.Stats

// NewRect builds a rectangle from two corners in any order.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// Loader selects a bulk-loading algorithm.
type Loader = bulk.Loader

// Bulk-loading algorithms: the paper's comparison set plus STR.
const (
	PR        = bulk.LoaderPR
	Hilbert   = bulk.LoaderHilbert
	Hilbert4D = bulk.LoaderHilbert4D
	STR       = bulk.LoaderSTR
	TGS       = bulk.LoaderTGS
)

// UpdateHeuristic selects the dynamic-update algorithm applied by
// Tree.Insert/Delete. Per the paper (§1.2, §4), heuristic updates do not
// preserve the PR-tree's worst-case query bound — see Dynamic for that.
type UpdateHeuristic = rtree.SplitKind

// Update heuristics.
const (
	// GuttmanQuadratic is Guttman's insertion with the quadratic split.
	GuttmanQuadratic = rtree.QuadraticSplit
	// GuttmanLinear is Guttman's insertion with the linear split.
	GuttmanLinear = rtree.LinearSplit
	// RStar applies the R*-tree heuristics of Beckmann et al.: overlap-
	// minimizing ChooseSubtree, forced reinsertion and margin-based split.
	RStar = rtree.RStarSplit
)

// PageLayout selects the on-disk node format.
type PageLayout = rtree.Layout

// Page layouts.
const (
	// LayoutRaw is the paper's exact format: 36-byte entries, fanout 113
	// at 4 KB blocks (the default).
	LayoutRaw = rtree.LayoutRaw
	// LayoutCompressed stores quantized 12-byte entries against a per-page
	// base MBR, tripling fanout (338 at 4 KB). Interior entries round
	// outward (conservative covers); leaves compress only losslessly, so
	// query, k-NN and batch results are identical to LayoutRaw.
	LayoutCompressed = rtree.LayoutCompressed
)

// Options tunes a tree. The zero value (or nil) reproduces the paper's
// setup: 4 KB blocks, 36-byte entries, fanout 113.
type Options struct {
	// BlockSize is the simulated disk block size in bytes (default 4096).
	BlockSize int
	// Fanout caps entries per node (default: the layout's block-size
	// maximum — 113 raw, 338 compressed).
	Fanout int
	// Layout selects the on-disk node format (default LayoutRaw).
	Layout PageLayout
	// MemoryItems is the bulk-loading memory budget M in records
	// (default 65536).
	MemoryItems int
	// CacheCapacity bounds the page cache in pages; negative means
	// unbounded (the default), 0 disables caching entirely.
	CacheCapacity int
	// Update selects the dynamic-update heuristic for Insert/Delete
	// (default GuttmanQuadratic).
	Update UpdateHeuristic
	// Parallelism bounds the bulk-load pipeline's worker pool (clamped
	// to GOMAXPROCS; 0 or 1 means serial). The built tree and the
	// simulated disk's I/O counts are identical at every setting.
	Parallelism int
}

func (o *Options) normalized() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.BlockSize <= 0 {
		out.BlockSize = storage.DefaultBlockSize
	}
	if out.CacheCapacity == 0 && (o == nil || o.CacheCapacity == 0) {
		out.CacheCapacity = -1
	}
	return out
}

// Tree is a bulk-loaded R-tree on its own simulated disk.
type Tree struct {
	inner *rtree.Tree
	disk  *storage.Disk
}

// Bulk builds a PR-tree over items. opts may be nil for defaults.
func Bulk(items []Item, opts *Options) *Tree {
	return BulkWith(PR, items, opts)
}

// BulkWith builds a tree with the chosen loader. opts may be nil.
func BulkWith(l Loader, items []Item, opts *Options) *Tree {
	o := opts.normalized()
	disk := storage.NewDisk(o.BlockSize)
	pager := storage.NewPager(disk, o.CacheCapacity)
	tr := bulk.FromItems(l, pager, items, bulk.Options{
		Fanout:      o.Fanout,
		Layout:      o.Layout,
		MemoryItems: o.MemoryItems,
		Split:       o.Update,
		Parallelism: o.Parallelism,
	})
	return &Tree{inner: tr, disk: disk}
}

// Query reports every stored item intersecting q to fn (return false to
// stop early) and returns visit statistics.
func (t *Tree) Query(q Rect, fn func(Item) bool) QueryStats {
	return t.inner.Query(q, fn)
}

// Search returns all items intersecting q.
func (t *Tree) Search(q Rect) []Item { return t.inner.QueryCollect(q) }

// QueryBatch runs every query concurrently on up to workers goroutines
// (bounded by GOMAXPROCS; <= 1 means serial) and returns per-query
// statistics indexed like queries. Per-query results and stats are
// identical to sequential Query calls at every worker count, and with the
// default unbounded cache the aggregate block-I/O is bit-identical too.
// The tree must not be mutated while a batch runs.
func (t *Tree) QueryBatch(queries []Rect, workers int) []QueryStats {
	return t.inner.QueryBatch(queries, workers, nil)
}

// SearchBatch runs every query concurrently on up to workers goroutines and
// returns the matching items per query, indexed and ordered exactly as N
// sequential Search calls would be. The tree must not be mutated while a
// batch runs.
func (t *Tree) SearchBatch(queries []Rect, workers int) [][]Item {
	results, _ := t.inner.SearchBatch(queries, workers)
	return results
}

// SearchPoint returns all items containing the point (x, y).
func (t *Tree) SearchPoint(x, y float64) []Item {
	var out []Item
	t.inner.PointQuery(x, y, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// SearchContained returns all items fully contained in q.
func (t *Tree) SearchContained(q Rect) []Item {
	var out []Item
	t.inner.ContainmentQuery(q, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// Neighbor is one nearest-neighbor result with its squared distance.
type Neighbor = rtree.Neighbor

// NearestNeighbors returns the k items closest to (x, y) in ascending
// distance order (best-first search).
func (t *Tree) NearestNeighbors(x, y float64, k int) []Neighbor {
	out, _ := t.inner.NearestNeighbors(x, y, k)
	return out
}

// Insert adds an item with Guttman's dynamic insertion. Note the paper's
// caveat: updates do not maintain the PR-tree's worst-case query
// guarantee; use Dynamic for guaranteed bounds under updates.
func (t *Tree) Insert(it Item) { t.inner.Insert(it) }

// Delete removes the item with matching rect and id, reporting success.
func (t *Tree) Delete(it Item) bool { return t.inner.Delete(it) }

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.inner.Len() }

// Height returns the number of tree levels.
func (t *Tree) Height() int { return t.inner.Height() }

// Nodes returns the number of disk pages the tree occupies.
func (t *Tree) Nodes() int { return t.inner.Nodes() }

// MBR returns the bounding box of all stored items.
func (t *Tree) MBR() Rect { return t.inner.MBR() }

// Utilization returns the average leaf and internal node fill fractions.
func (t *Tree) Utilization() (leaf, internal float64) { return t.inner.Utilization() }

// IOStats returns cumulative block reads/writes on the tree's disk. The
// counters are atomic: IOStats is safe to call while queries (including
// QueryBatch) run.
func (t *Tree) IOStats() IOStats { return t.disk.Stats() }

// ResetIOStats zeroes the disk counters (e.g. before measuring a query).
// Like IOStats it is safe to call while queries run; in-flight queries
// simply split their I/O across the two measurement intervals.
func (t *Tree) ResetIOStats() { t.disk.ResetStats() }

// PinInternal pins every internal node in the page cache, reproducing the
// paper's measurement setup where query I/O equals leaf blocks fetched.
// It returns the number of pinned pages.
func (t *Tree) PinInternal() int { return t.inner.PinInternal() }

// Validate checks the structural invariants (mainly for tests and tools).
func (t *Tree) Validate() error { return t.inner.Validate() }

// Items returns every stored item by scanning the leaves.
func (t *Tree) Items() []Item { return t.inner.Items() }

// Save serializes the tree (pages and metadata) to w; reopen it with Load.
func (t *Tree) Save(w io.Writer) error { return t.inner.Save(w) }

// Load reads a tree written by Save. opts controls the cache of the
// reopened tree; loader-time options are ignored (the tree is already
// built).
func Load(r io.Reader, opts *Options) (*Tree, error) {
	o := opts.normalized()
	inner, err := rtree.Load(r, o.CacheCapacity)
	if err != nil {
		return nil, err
	}
	return &Tree{inner: inner, disk: inner.Pager().Disk()}, nil
}

// Dynamic is a fully dynamic spatial index with the PR-tree query bound,
// built on the external logarithmic method the paper proposes for updates
// (Sections 1.2 and 4).
type Dynamic struct {
	inner *logmethod.Tree
	disk  *storage.Disk
}

// DynamicStats mirrors logmethod query statistics.
type DynamicStats = logmethod.QueryStats

// NewDynamic creates an empty dynamic index. opts may be nil.
func NewDynamic(opts *Options) *Dynamic {
	o := opts.normalized()
	disk := storage.NewDisk(o.BlockSize)
	pager := storage.NewPager(disk, o.CacheCapacity)
	inner := logmethod.New(pager, bulk.Options{
		Fanout:      o.Fanout,
		Layout:      o.Layout,
		MemoryItems: o.MemoryItems,
	}, 0)
	return &Dynamic{inner: inner, disk: disk}
}

// Insert adds an item (amortized O((log_{M/B} N)(log2 N)/B) block I/Os).
func (d *Dynamic) Insert(it Item) { d.inner.Insert(it) }

// Delete removes an item by (rect, id), reporting success.
func (d *Dynamic) Delete(it Item) bool { return d.inner.Delete(it) }

// Query reports every live item intersecting q.
func (d *Dynamic) Query(q Rect, fn func(Item) bool) DynamicStats {
	return d.inner.Query(q, fn)
}

// Search returns all live items intersecting q.
func (d *Dynamic) Search(q Rect) []Item { return d.inner.QueryCollect(q) }

// Len returns the number of live items.
func (d *Dynamic) Len() int { return d.inner.Len() }

// Flush compacts the structure into a single static PR-tree.
func (d *Dynamic) Flush() { d.inner.Flush() }

// IOStats returns cumulative block reads/writes on the index's disk.
func (d *Dynamic) IOStats() IOStats { return d.disk.Stats() }

// ResetIOStats zeroes the disk counters.
func (d *Dynamic) ResetIOStats() { d.disk.ResetStats() }
