// Package prtree is a Go implementation of the Priority R-tree of Arge,
// de Berg, Haverkort and Yi (SIGMOD 2004) — the first R-tree variant whose
// window queries are worst-case optimal: O(sqrt(N/B) + T/B) block reads
// for N rectangles, block capacity B and output size T.
//
// The package bulk-loads PR-trees (and, for comparison, the packed Hilbert,
// four-dimensional Hilbert, STR and Top-down Greedy Split R-trees the
// paper benchmarks) onto a pluggable block store, supports the classic
// heuristic updates (Guttman and R*-tree) on any loaded tree, answers
// point, containment and k-nearest-neighbor queries besides window
// queries, and offers a logarithmic-method dynamic index that keeps the
// optimal query bound under insertions and deletions.
//
// # Storage backends
//
// Every tree runs on a storage Backend — the block-device seam. Three
// implementations ship with the package: the in-memory simulator that
// reproduces the paper's block-I/O accounting (the default), a file-backed
// page store for indexes that persist in place and outlive the process
// (Create/Open/Close), and a counting decorator that turns I/O stats into
// a wrapper any backend can carry. Custom backends plug in through
// Options.Backend.
//
// # Queries
//
// The v2 query surface is one composable Query value — Window, Point,
// Contained or Nearest, refined with WithLimit, WithContext and WithStats
// — consumed through a callback (Run), a range-over-func iterator (Iter)
// or a slice (Collect):
//
//	tree, _ := prtree.Create("roads.pr", nil)
//	_ = tree.BulkLoad(prtree.PR, items)
//	for it := range tree.Iter(prtree.Window(prtree.NewRect(0, 0, 1, 1))) {
//		fmt.Println(it.ID)
//	}
//	_ = tree.Close() // persists in place; reopen with prtree.Open
//
// The v1 entry points (Query, Search, SearchPoint, SearchContained,
// NearestNeighbors) remain as thin deprecated shims over the same
// executor.
//
// The read path is safe for many concurrent goroutines — the page cache is
// lock-striped and per-traversal scratch is pooled — and QueryBatch /
// SearchBatch fan a slice of queries across a bounded worker pool with
// results identical to sequential execution. Mutations (Insert, Delete,
// BulkLoad) require exclusive access.
package prtree

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"prtree/internal/bulk"
	"prtree/internal/compact"
	"prtree/internal/geom"
	"prtree/internal/logmethod"
	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// Rect is an axis-parallel rectangle, closed on all sides.
type Rect = geom.Rect

// Item is a rectangle tagged with the caller's object identifier. IDs must
// be unique when using Delete or the Dynamic index.
type Item = geom.Item

// QueryStats reports the node visits of one query.
type QueryStats = rtree.QueryStats

// IOStats counts block reads and writes on the tree's storage backend.
type IOStats = storage.Stats

// SnapshotStats reports the storage layer's epoch state: the current
// snapshot epoch, how many readers hold snapshots, and how many freed
// pages are pinned (withheld from reuse) until those readers drain.
type SnapshotStats = storage.SnapshotStats

// NewRect builds a rectangle from two corners in any order.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// Loader selects a bulk-loading algorithm.
type Loader = bulk.Loader

// Bulk-loading algorithms: the paper's comparison set plus STR.
const (
	PR        = bulk.LoaderPR
	Hilbert   = bulk.LoaderHilbert
	Hilbert4D = bulk.LoaderHilbert4D
	STR       = bulk.LoaderSTR
	TGS       = bulk.LoaderTGS
)

// UpdateHeuristic selects the dynamic-update algorithm applied by
// Tree.Insert/Delete. Per the paper (§1.2, §4), heuristic updates do not
// preserve the PR-tree's worst-case query bound — see Dynamic for that.
type UpdateHeuristic = rtree.SplitKind

// Update heuristics.
const (
	// GuttmanQuadratic is Guttman's insertion with the quadratic split.
	GuttmanQuadratic = rtree.QuadraticSplit
	// GuttmanLinear is Guttman's insertion with the linear split.
	GuttmanLinear = rtree.LinearSplit
	// RStar applies the R*-tree heuristics of Beckmann et al.: overlap-
	// minimizing ChooseSubtree, forced reinsertion and margin-based split.
	RStar = rtree.RStarSplit
)

// PageLayout selects the on-disk node format.
type PageLayout = rtree.Layout

// Page layouts.
const (
	// LayoutRaw is the paper's exact format: 36-byte entries, fanout 113
	// at 4 KB blocks (the default).
	LayoutRaw = rtree.LayoutRaw
	// LayoutCompressed stores quantized 12-byte entries against a per-page
	// base MBR, tripling fanout (338 at 4 KB). Interior entries round
	// outward (conservative covers); leaves compress only losslessly, so
	// query, k-NN and batch results are identical to LayoutRaw.
	LayoutCompressed = rtree.LayoutCompressed
)

// Options tunes a tree. The zero value (or nil) reproduces the paper's
// setup: 4 KB blocks, 36-byte entries, fanout 113, in-memory storage.
type Options struct {
	// BlockSize is the storage block size in bytes (default 4096). Open
	// treats a non-zero value as a requirement the index file must match.
	BlockSize int
	// Fanout caps entries per node (default: the layout's block-size
	// maximum — 113 raw, 338 compressed).
	Fanout int
	// Layout selects the on-disk node format (default LayoutRaw).
	Layout PageLayout
	// MemoryItems is the bulk-loading memory budget M in records
	// (default 65536).
	MemoryItems int
	// CacheCapacity bounds the page cache in pages; negative means
	// unbounded (the default), 0 disables caching entirely.
	CacheCapacity int
	// Eviction selects the bounded page cache's eviction policy (default
	// EvictLRU). It only matters when CacheCapacity > 0; unbounded and
	// disabled caches never evict. Query results and demand block-I/O
	// totals are identical under every policy — only which pages stay
	// resident (and hence the hit rate) changes.
	Eviction EvictionPolicy
	// Prefetch enables structure-aware speculative read-ahead: query
	// traversals hand the pager the child pages they are about to visit
	// (the PR-tree's priority leaves are known before recursion), and a
	// small worker pool fills them in the background. Speculative reads
	// are counted separately (IOStats.PrefetchReads) and demand I/O
	// accounting stays bit-identical to a run without prefetch.
	Prefetch bool
	// Mmap serves reads of a file-backed tree (Create/Open) through a
	// read-only memory mapping: zero-copy page views with checksums
	// verified once per mapped page. On platforms without the mapping
	// path (non-Linux builds) the option is accepted and reads fall back
	// to the ordinary verified file reads. Ignored for non-file backends.
	Mmap bool
	// Update selects the dynamic-update heuristic for Insert/Delete
	// (default GuttmanQuadratic).
	Update UpdateHeuristic
	// Parallelism bounds the bulk-load pipeline's worker pool (clamped
	// to GOMAXPROCS; 0 or 1 means serial). The built tree and the
	// backend's I/O counts are identical at every setting.
	Parallelism int
	// BackgroundCompaction moves the dynamic index's logarithmic-method
	// merges off the insert path: a supervisor goroutine (internal/compact)
	// rebuilds full components on the side while readers keep serving the
	// old ones, and installs the result as one committed transaction.
	// Inserts then stall for at most a buffer handoff instead of a full
	// level rebuild. Honored by NewDynamic, CreateDynamic and OpenDynamic;
	// ignored by the static-tree constructors.
	BackgroundCompaction bool
	// CompactionMaxBuffer bounds insert-buffer growth while a background
	// merge is in flight: InsertE applies backpressure once the buffer
	// holds this many items (default 8× the component base size). Only
	// meaningful with BackgroundCompaction.
	CompactionMaxBuffer int
	// Backend supplies the block store trees are built on. nil (the
	// default) means a fresh in-memory simulator of BlockSize-byte
	// blocks. Bulk, BulkWith and NewDynamic honor it; Create and Open
	// always use the file-backed store at their path. The backend's block
	// size wins over BlockSize when both are set.
	Backend Backend
	// WrapBackend, when set, decorates the raw block store of a
	// file-backed tree (Create/Open) after the optional mmap layer and
	// before the counting decorator and pager are assembled on top. It is
	// the seam fault-injection harnesses use to place a decorator such as
	// NewFaultyBackend under a real on-disk tree. The wrapper should
	// expose the wrapped backend via an Unwrap() Backend method (as the
	// fault decorator does) so file-level tools — CheckPages, transaction
	// brackets — keep reaching the underlying store. Ignored by the
	// in-memory constructors.
	WrapBackend func(Backend) Backend
}

// normalized fills in the zero-value defaults. CacheCapacity keeps 0 as
// "default" (unbounded): disabling the cache requires building the pager
// through the internal packages, which the accounting experiments do.
func (o *Options) normalized() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.BlockSize <= 0 {
		out.BlockSize = storage.DefaultBlockSize
	}
	if out.CacheCapacity == 0 {
		out.CacheCapacity = -1
	}
	return out
}

// bulkOptions translates the public knobs for the internal loaders.
func (o Options) bulkOptions() bulk.Options {
	return bulk.Options{
		Fanout:      o.Fanout,
		Layout:      o.Layout,
		MemoryItems: o.MemoryItems,
		Split:       o.Update,
		Parallelism: o.Parallelism,
	}
}

// Tree is an R-tree on a storage backend: the in-memory simulator by
// default, a page file when built with Create/Open, or any Backend
// supplied via Options.Backend. All block I/O flows through a Counting
// decorator, so IOStats works uniformly across backends.
type Tree struct {
	inner    *rtree.Tree
	pager    *storage.Pager
	io       *storage.Counting
	bopts    bulk.Options
	path     string // index file path; "" for non-file backends
	closed   bool
	recovery *storage.RecoveryInfo // what crash recovery did at Open, if anything
}

// mutate brackets a mutation in a backend transaction: Begin, run fn,
// stage the refreshed tree metadata, Commit. On a durable backend the
// whole mutation is atomic — after Commit it survives a crash; a panic
// out of fn (including an injected fault) rolls the backend's in-memory
// state back to the last committed transaction before re-panicking, so
// the on-disk index recovers cleanly even though this Tree value is no
// longer usable. Non-transactional backends run fn unbracketed.
func (t *Tree) mutate(fn func()) error {
	tx := storage.EnsureTransactional(t.io)
	tx.Begin()
	done := false
	defer func() {
		if !done {
			tx.Rollback()
		}
	}()
	fn()
	t.io.SetMeta(t.inner.EncodeMeta())
	done = true
	if err := tx.Commit(); err != nil {
		// The backend rolls back to the committed state; this Tree's
		// in-memory structure has already mutated and must be reopened.
		tx.Rollback()
		return err
	}
	return nil
}

// newTree assembles the facade plumbing over a raw backend: the counting
// decorator (IOStats) and the pager every node access goes through.
func newTree(dev storage.Backend, o Options) (*storage.Counting, *storage.Pager) {
	counting := storage.NewCounting(dev)
	return counting, storage.NewPagerWith(counting, storage.PagerOptions{
		Capacity: o.CacheCapacity,
		Policy:   o.Eviction,
		Prefetch: o.Prefetch,
	})
}

// Bulk builds a PR-tree over items. opts may be nil for defaults.
func Bulk(items []Item, opts *Options) *Tree {
	return BulkWith(PR, items, opts)
}

// BulkWith builds a tree with the chosen loader on the backend from opts
// (a fresh in-memory simulator when unset). opts may be nil.
func BulkWith(l Loader, items []Item, opts *Options) *Tree {
	o := opts.normalized()
	dev := o.Backend
	if dev == nil {
		dev = storage.NewDisk(o.BlockSize)
	}
	counting, pager := newTree(dev, o)
	tr := bulk.FromItems(l, pager, items, o.bulkOptions())
	return &Tree{inner: tr, pager: pager, io: counting, bopts: o.bulkOptions()}
}

// BulkLoad (re)builds the tree's contents in place from items using loader
// l: existing pages are released back to the backend and the new tree is
// built on the same storage, so a file-backed index is rebuilt within its
// file. The tree must not be queried concurrently.
// On a durable backend the rebuild is one transaction: a crash mid-load
// recovers to the previous tree, and only Commit's success publishes the
// new one. Pages of the old tree become reusable after the commit, so the
// file may transiently hold both trees; the next checkpoint reclaims the
// tail.
func (t *Tree) BulkLoad(l Loader, items []Item) error {
	if t.closed {
		return fmt.Errorf("prtree: BulkLoad on closed tree")
	}
	if err := t.mutate(func() {
		t.inner.Release()
		t.inner = bulk.FromItems(l, t.pager, items, t.bopts)
	}); err != nil {
		return fmt.Errorf("prtree: bulk load: %w", err)
	}
	return nil
}

// InsertE adds an item with the configured dynamic-update heuristic and
// returns the transaction error, if any. Note the paper's caveat: updates
// do not maintain the PR-tree's worst-case query guarantee; use Dynamic
// for guaranteed bounds under updates.
//
// On a durable backend the insert is one committed transaction. A non-nil
// error means the commit did not become durable and the backend rolled
// back to the last committed state; this Tree value's in-memory structure
// has already mutated and must be reopened.
func (t *Tree) InsertE(it Item) error {
	if err := t.mutate(func() { t.inner.Insert(it) }); err != nil {
		return fmt.Errorf("prtree: insert: %w", err)
	}
	return nil
}

// Insert is InsertE for callers that treat a durable-commit failure as
// fatal: it panics, carrying the underlying error. It remains the
// ergonomic default for in-memory backends, where the transaction hooks
// are no-ops and the panic is unreachable.
func (t *Tree) Insert(it Item) {
	if err := t.InsertE(it); err != nil {
		panic(err)
	}
}

// DeleteE removes the item with matching rect and id, reporting success
// and the transaction error, if any. Error semantics match InsertE.
func (t *Tree) DeleteE(it Item) (bool, error) {
	var ok bool
	if err := t.mutate(func() { ok = t.inner.Delete(it) }); err != nil {
		return false, fmt.Errorf("prtree: delete: %w", err)
	}
	return ok, nil
}

// Delete is DeleteE for callers that treat a durable-commit failure as
// fatal: it panics, carrying the underlying error.
func (t *Tree) Delete(it Item) bool {
	ok, err := t.DeleteE(it)
	if err != nil {
		panic(err)
	}
	return ok
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.inner.Len() }

// Height returns the number of tree levels.
func (t *Tree) Height() int { return t.inner.Height() }

// Nodes returns the number of storage pages the tree occupies.
func (t *Tree) Nodes() int { return t.inner.Nodes() }

// MBR returns the bounding box of all stored items.
func (t *Tree) MBR() Rect { return t.inner.MBR() }

// Fanout returns the effective maximum entries per node.
func (t *Tree) Fanout() int { return t.inner.Config().Fanout }

// Layout returns the on-disk page layout the tree writes.
func (t *Tree) Layout() PageLayout { return t.inner.Config().Layout }

// Utilization returns the average leaf and internal node fill fractions.
func (t *Tree) Utilization() (leaf, internal float64) { return t.inner.Utilization() }

// IOStats returns cumulative block reads/writes on the tree's backend.
// The counters are atomic: IOStats is safe to call while queries
// (including QueryBatch) run.
func (t *Tree) IOStats() IOStats { return t.io.Stats() }

// ResetIOStats zeroes the I/O counters (e.g. before measuring a query).
// Like IOStats it is safe to call while queries run; in-flight queries
// simply split their I/O across the two measurement intervals.
func (t *Tree) ResetIOStats() { t.io.ResetStats() }

// CacheStats returns the page cache's hit/miss/eviction and prefetch
// counters plus the active capacity and eviction policy. Safe to call
// while queries run.
func (t *Tree) CacheStats() CacheStats { return t.pager.CacheStats() }

// SnapshotStats returns the backend's snapshot-epoch state. Safe to call
// while queries run.
func (t *Tree) SnapshotStats() SnapshotStats {
	return storage.EnsureSnapshotter(t.io).SnapshotStats()
}

// PinInternal pins every internal node in the page cache, reproducing the
// paper's measurement setup where query I/O equals leaf blocks fetched.
// It returns the number of pinned pages.
func (t *Tree) PinInternal() int { return t.inner.PinInternal() }

// Validate checks the structural invariants (mainly for tests and tools).
func (t *Tree) Validate() error { return t.inner.Validate() }

// Items returns every stored item by scanning the leaves.
func (t *Tree) Items() []Item { return t.inner.Items() }

// Save serializes the tree (pages and metadata) to w; reopen it with Load.
// It requires an in-memory backend — file-backed trees persist in place
// through Sync and Close and never need a Save round-trip.
func (t *Tree) Save(w io.Writer) error { return t.inner.Save(w) }

// Load reads a tree written by Save. opts controls the cache of the
// reopened tree; loader-time options are ignored (the tree is already
// built).
func Load(r io.Reader, opts *Options) (*Tree, error) {
	o := opts.normalized()
	disk, err := storage.ReadDiskFrom(r)
	if err != nil {
		return nil, fmt.Errorf("prtree: %w", err)
	}
	counting := storage.NewCounting(disk)
	inner, err := rtree.LoadOnto(r, counting, o.CacheCapacity)
	if err != nil {
		return nil, fmt.Errorf("prtree: %w", err)
	}
	cfg := inner.Config()
	bopts := o.bulkOptions()
	bopts.Fanout, bopts.Layout, bopts.Split = cfg.Fanout, cfg.Layout, cfg.Split
	return &Tree{inner: inner, pager: inner.Pager(), io: counting, bopts: bopts}, nil
}

// Dynamic is a fully dynamic spatial index with the PR-tree query bound,
// built on the external logarithmic method the paper proposes for updates
// (Sections 1.2 and 4).
//
// The read path (Query, Search, SearchPoint, SearchContained,
// NearestNeighbors, SearchBatch, Len) is safe for many concurrent
// goroutines and never blocks on writers: each query runs against an
// immutable copy-on-write snapshot of the component directory, and the
// storage layer's epoch pins keep a snapshot's pages byte-stable until its
// last reader drains. Writers (InsertE, DeleteE, FlushE) serialize among
// themselves. With Options.BackgroundCompaction the component merges run
// on a supervisor goroutine (see CompactionStats) instead of inside
// InsertE.
type Dynamic struct {
	inner *logmethod.Tree
	io    *storage.Counting
	pager *storage.Pager

	wmu      sync.Mutex // serializes writer transaction brackets
	comp     *compact.Compactor
	persist  bool   // file-backed: stage the directory blob each commit
	path     string // index file path; "" for non-file backends
	closed   bool
	recovery *storage.RecoveryInfo
}

// DynamicStats mirrors logmethod query statistics.
type DynamicStats = logmethod.QueryStats

// CompactionStats is the background compactor's counter snapshot — merge
// outcomes, items rewritten vs newly absorbed (write amplification), and
// the storage layer's snapshot-epoch state.
type CompactionStats = compact.Stats

// NewDynamic creates an empty dynamic index on the backend from opts (a
// fresh in-memory simulator when unset). opts may be nil.
func NewDynamic(opts *Options) *Dynamic {
	o := opts.normalized()
	dev := o.Backend
	if dev == nil {
		dev = storage.NewDisk(o.BlockSize)
	}
	counting, pager := newTree(dev, o)
	inner := logmethod.New(pager, bulk.Options{
		Fanout:      o.Fanout,
		Layout:      o.Layout,
		MemoryItems: o.MemoryItems,
	}, 0)
	d := &Dynamic{inner: inner, io: counting, pager: pager}
	d.startCompaction(o)
	return d
}

// startCompaction wires and launches the background compactor when the
// options ask for one. The compactor's install commits run through the
// same wmu-serialized transaction bracket as InsertE/DeleteE.
func (d *Dynamic) startCompaction(o Options) {
	if !o.BackgroundCompaction {
		return
	}
	d.comp = compact.New(compact.Config{
		Tree:      d.inner,
		Commit:    d.mutate,
		Backend:   d.io,
		MaxBuffer: o.CompactionMaxBuffer,
	})
	d.comp.Start()
}

// Close stops the background compactor (waiting for an in-flight merge to
// land or abort), releases the prefetch worker pool, persists a
// file-backed index in place and closes the backend. Using the index
// after Close is invalid. Closing twice is a no-op.
func (d *Dynamic) Close() error {
	if d.closed {
		return nil
	}
	if d.comp != nil {
		d.comp.Stop()
	}
	d.wmu.Lock()
	defer d.wmu.Unlock()
	d.closed = true
	d.pager.Close()
	if d.persist {
		d.io.SetMeta(d.inner.SaveState(d.io))
	}
	if err := d.io.Close(); err != nil {
		return fmt.Errorf("prtree: close: %w", err)
	}
	return nil
}

// mutate is Tree.mutate for the dynamic index: one backend transaction
// per mutation batch, serialized against every other writer (including
// the background compactor's install commit). On a file-backed index the
// refreshed component directory is staged inside the same transaction, so
// the directory swap and the page writes commit atomically.
func (d *Dynamic) mutate(fn func()) error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.closed {
		return fmt.Errorf("prtree: index is closed")
	}
	tx := storage.EnsureTransactional(d.io)
	tx.Begin()
	done := false
	defer func() {
		if !done {
			tx.Rollback()
		}
	}()
	fn()
	if d.persist {
		d.io.SetMeta(d.inner.SaveState(d.io))
	}
	done = true
	if err := tx.Commit(); err != nil {
		tx.Rollback()
		return err
	}
	return nil
}

// InsertE adds an item (amortized O((log_{M/B} N)(log2 N)/B) block I/Os)
// and returns the transaction error, if any. On a durable backend the
// insert — including any component rebuild the logarithmic method
// triggers — commits as one transaction. With background compaction the
// rebuild work happens off this path; InsertE only blocks (briefly) when
// the insert buffer is at its in-flight-merge bound.
func (d *Dynamic) InsertE(it Item) error {
	if c := d.comp; c != nil {
		// Backpressure outside the transaction bracket: the in-flight
		// merge needs its own transaction to land.
		c.Throttle()
	}
	if err := d.mutate(func() { d.inner.Insert(it) }); err != nil {
		return fmt.Errorf("prtree: dynamic insert: %w", err)
	}
	return nil
}

// Insert is InsertE for callers that treat a durable-commit failure as
// fatal: it panics, carrying the underlying error.
func (d *Dynamic) Insert(it Item) {
	if err := d.InsertE(it); err != nil {
		panic(err)
	}
}

// DeleteE removes an item by (rect, id), reporting success and the
// transaction error, if any. Transactional like InsertE.
func (d *Dynamic) DeleteE(it Item) (bool, error) {
	var ok bool
	if err := d.mutate(func() { ok = d.inner.Delete(it) }); err != nil {
		return false, fmt.Errorf("prtree: dynamic delete: %w", err)
	}
	return ok, nil
}

// Delete is DeleteE for callers that treat a durable-commit failure as
// fatal: it panics, carrying the underlying error.
func (d *Dynamic) Delete(it Item) bool {
	ok, err := d.DeleteE(it)
	if err != nil {
		panic(err)
	}
	return ok
}

// Query reports every live item intersecting q.
func (d *Dynamic) Query(q Rect, fn func(Item) bool) DynamicStats {
	return d.inner.Query(q, fn)
}

// Search returns all live items intersecting q.
func (d *Dynamic) Search(q Rect) []Item { return d.inner.QueryCollect(q) }

// SearchPoint returns all live items containing the point (x, y).
func (d *Dynamic) SearchPoint(x, y float64) []Item {
	var out []Item
	d.inner.Query(Rect{MinX: x, MinY: y, MaxX: x, MaxY: y}, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// SearchContained returns all live items fully contained in q.
func (d *Dynamic) SearchContained(q Rect) []Item {
	var out []Item
	d.inner.Contained(q, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// NearestNeighbors returns the k live items nearest to (x, y) by MBR
// distance, closest first (ties broken by item ID).
func (d *Dynamic) NearestNeighbors(x, y float64, k int) []Neighbor {
	return d.inner.Nearest(x, y, k)
}

// SearchBatch runs the window queries across a bounded worker pool
// (workers clamped to [1, len(queries)]) and returns the per-query result
// slices in input order, identical to running each Search sequentially.
// All queries observe the same kind of snapshot isolation as single
// queries; a concurrent writer's mutations are each either fully visible
// to a given query or not at all.
func (d *Dynamic) SearchBatch(queries []Rect, workers int) [][]Item {
	out := make([][]Item, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	var next atomic.Uint32
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				out[i] = d.inner.QueryCollect(queries[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Len returns the number of live items.
func (d *Dynamic) Len() int { return d.inner.Len() }

// BufferLen returns the number of items in the insert buffer (the
// un-merged component the logarithmic method fills first).
func (d *Dynamic) BufferLen() int { return d.inner.BufferLen() }

// Base returns the insert buffer's capacity (the logarithmic method's
// component base): level i holds about Base()<<i items.
func (d *Dynamic) Base() int { return d.inner.Base() }

// LevelSizes returns the item count of each component level, smallest
// first; empty slots are 0.
func (d *Dynamic) LevelSizes() []int { return d.inner.LevelSizes() }

// FlushE compacts the structure into a single static PR-tree, as one
// committed transaction on a durable backend. With background compaction
// it first waits for any in-flight merge to land and holds the compactor
// paused for the duration.
func (d *Dynamic) FlushE() error {
	if c := d.comp; c != nil {
		release := c.Drain()
		defer release()
	}
	if err := d.mutate(func() { d.inner.Flush() }); err != nil {
		return fmt.Errorf("prtree: dynamic flush: %w", err)
	}
	return nil
}

// Flush is FlushE for callers that treat a durable-commit failure as
// fatal: it panics, carrying the underlying error.
func (d *Dynamic) Flush() {
	if err := d.FlushE(); err != nil {
		panic(err)
	}
}

// CompactionStats returns the background compactor's counters plus the
// storage layer's snapshot-epoch state. Without BackgroundCompaction the
// merge counters are zero and only the epoch state is populated.
func (d *Dynamic) CompactionStats() CompactionStats {
	if d.comp != nil {
		return d.comp.Stats()
	}
	var st CompactionStats
	snap := storage.EnsureSnapshotter(d.io).SnapshotStats()
	st.Epoch, st.PinnedPages, st.SnapshotReaders = snap.Epoch, snap.PinnedPages, snap.Readers
	return st
}

// IOStats returns cumulative block reads/writes on the index's backend.
func (d *Dynamic) IOStats() IOStats { return d.io.Stats() }

// ResetIOStats zeroes the I/O counters.
func (d *Dynamic) ResetIOStats() { d.io.ResetStats() }
