package prtree

import (
	"fmt"

	"prtree/internal/bulk"
	"prtree/internal/logmethod"
	"prtree/internal/storage"
)

// File-backed dynamic indexes: CreateDynamic makes a new index file,
// InsertE/DeleteE commit each mutation durably (WAL-bracketed, like the
// static tree's updates), CloseDynamic-via-Close persists in place and
// OpenDynamic serves it again — including recovery from a crash at any
// point, background merges included.
//
// The on-disk format extends the static page file: the header's metadata
// blob holds the logarithmic method's component directory (one static
// PR-tree meta record per occupied level) and the heads of two chained
// state-page lists carrying the insert buffer and the tombstone set. The
// directory blob is staged inside the same transaction as the page writes
// of the mutation it describes, so a crash recovers either the whole old
// state or the whole new one — in particular, a crash while a background
// merge was mid-build recovers the pre-merge directory, and the merge's
// half-built pages are unreferenced garbage, never corruption.

// CreateDynamic makes a new (or truncates an existing) index file at path
// and returns an empty file-backed dynamic index on it. Close persists it
// in place; OpenDynamic reopens it. Options.Backend is ignored —
// CreateDynamic always uses the file-backed store at path.
func CreateDynamic(path string, opts *Options) (*Dynamic, error) {
	o := opts.normalized()
	fb, err := storage.CreateFile(path, o.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("prtree: create %s: %w", path, err)
	}
	d, err := assembleDynamic(fb, o, path, nil)
	if err != nil {
		fb.Abandon()
		return nil, fmt.Errorf("prtree: create %s: %w", path, err)
	}
	if err := d.Sync(); err != nil {
		fb.Abandon()
		return nil, err
	}
	d.startCompaction(o)
	return d, nil
}

// OpenDynamic reopens the dynamic index file at path. The component
// directory and configuration come from the file; opts controls the page
// cache and compaction, and a non-zero opts.BlockSize is validated against
// the file's. Crash recovery (WAL replay) happens inside storage.OpenFile
// before the directory is read, so an index that died mid-merge opens to
// its last committed state.
func OpenDynamic(path string, opts *Options) (*Dynamic, error) {
	expect := 0
	if opts != nil {
		expect = opts.BlockSize
	}
	o := opts.normalized()
	fb, err := storage.OpenFile(path, expect)
	if err != nil {
		return nil, fmt.Errorf("prtree: %w", err)
	}
	d, err := assembleDynamic(fb, o, path, fb.Meta())
	if err != nil {
		// Abandon, not Close: a failed open must not rewrite the header of
		// a file it could not validate.
		fb.Abandon()
		return nil, fmt.Errorf("prtree: open %s: %w", path, err)
	}
	d.recovery = fb.RecoveryInfo()
	d.startCompaction(o)
	return d, nil
}

// assembleDynamic stacks the backend decorators (optional mmap, optional
// WrapBackend, counting, pager) and builds or reopens the logmethod tree.
// meta == nil means a fresh empty tree; otherwise it is the directory blob
// a previous SaveState wrote.
func assembleDynamic(fb *storage.FileBackend, o Options, path string, meta []byte) (*Dynamic, error) {
	dev := storage.Backend(fb)
	if o.Mmap {
		m, err := storage.NewMmap(fb)
		if err != nil {
			return nil, err
		}
		dev = m
	}
	if o.WrapBackend != nil {
		dev = o.WrapBackend(dev)
	}
	counting, pager := newTree(dev, o)
	bopts := bulk.Options{
		Fanout:      o.Fanout,
		Layout:      o.Layout,
		MemoryItems: o.MemoryItems,
	}
	var inner *logmethod.Tree
	if meta == nil {
		inner = logmethod.New(pager, bopts, 0)
	} else {
		var err error
		inner, err = logmethod.OpenState(pager, bopts, meta)
		if err != nil {
			pager.Close()
			return nil, err
		}
	}
	return &Dynamic{inner: inner, io: counting, pager: pager, persist: true, path: path}, nil
}

// Path returns the index file path, or "" for non-file backends.
func (d *Dynamic) Path() string { return d.path }

// Recovery reports what crash recovery did when this index was opened:
// nil for a cleanly closed (or non-file) index, a populated RecoveryInfo
// when OpenDynamic found work in the write-ahead log. The index is fully
// consistent either way.
func (d *Dynamic) Recovery() *RecoveryInfo { return d.recovery }

// CheckPages verifies the checksum trailer of every in-use page of a
// file-backed dynamic index without panicking (nil for clean or non-file
// indexes), like Tree.CheckPages.
func (d *Dynamic) CheckPages() error {
	if d.closed {
		return fmt.Errorf("prtree: CheckPages on closed index")
	}
	fb, ok := storage.AsFile(d.io)
	if !ok {
		return nil
	}
	if err := fb.Fsck(); err != nil {
		return fmt.Errorf("prtree: %w", err)
	}
	return nil
}

// PageCounts reports the backing file's page-slot total and how many of
// those slots the index currently references (the rest sit on the free
// list, available for reuse without growing the file). Both are zero for
// non-file backends.
func (d *Dynamic) PageCounts() (total, inUse int) {
	fb, ok := storage.AsFile(d.io)
	if !ok {
		return 0, 0
	}
	return fb.NumPages(), fb.PagesInUse()
}

// Sync persists the index's current state — pages, allocator and the
// component directory — through the backend (an fsync'd header rewrite
// for file-backed indexes, a no-op for in-memory ones). The index remains
// usable. With background compaction the in-flight merge, if any, is
// drained first.
func (d *Dynamic) Sync() error {
	if d.closed {
		return fmt.Errorf("prtree: Sync on closed index")
	}
	if c := d.comp; c != nil {
		release := c.Drain()
		defer release()
	}
	d.wmu.Lock()
	defer d.wmu.Unlock()
	if d.persist {
		d.io.SetMeta(d.inner.SaveState(d.io))
	}
	if err := d.io.Sync(); err != nil {
		return fmt.Errorf("prtree: sync: %w", err)
	}
	return nil
}
