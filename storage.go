package prtree

import "prtree/internal/storage"

// The storage seam, re-exported: Backend is the block-device interface
// every tree runs on, and PageID addresses one block. They alias the
// internal types, so custom backends written against these names satisfy
// the interface the internal pager, loaders and trees consume.

// Backend is a pluggable block store; see Options.Backend. Implementations
// must honor the contracts documented on the interface: zeroed pages from
// Alloc, block-granular reads/writes, a superblock metadata blob, and
// Sync/Close durability hooks.
type Backend = storage.Backend

// PageID identifies one block of a Backend.
type PageID = storage.PageID

// DefaultBlockSize is the paper's disk block size: 4 KB, which holds 113
// 36-byte rectangle entries.
const DefaultBlockSize = storage.DefaultBlockSize

// NewMemoryBackend returns the in-memory block-store simulator the paper's
// experiments run on (block-granular I/O, allocation freelist). blockSize
// <= 0 selects DefaultBlockSize.
func NewMemoryBackend(blockSize int) Backend {
	if blockSize <= 0 {
		blockSize = storage.DefaultBlockSize
	}
	return storage.NewDisk(blockSize)
}

// NewFileBackend creates (or truncates) a page file at path and returns a
// persistent Backend on it — the building block behind Create. Most
// callers want Create/Open instead, which also manage the tree metadata.
func NewFileBackend(path string, blockSize int) (Backend, error) {
	if blockSize <= 0 {
		blockSize = storage.DefaultBlockSize
	}
	return storage.CreateFile(path, blockSize)
}

// EvictionPolicy selects the bounded page cache's eviction policy; see
// Options.Eviction.
type EvictionPolicy = storage.EvictionPolicy

// Eviction policies for Options.Eviction.
const (
	// EvictLRU is exact least-recently-used eviction (the default).
	EvictLRU = storage.EvictLRU
	// EvictS3FIFO is the scan-resistant S3-FIFO policy (Yang et al.,
	// HotOS'23): a small probationary FIFO, a main FIFO with lazy
	// promotion, and a ghost queue readmitting prematurely evicted pages.
	EvictS3FIFO = storage.EvictS3FIFO
)

// ParseEvictionPolicy maps the tool-facing names ("lru", "s3fifo") onto
// policies.
func ParseEvictionPolicy(s string) (EvictionPolicy, error) {
	return storage.ParseEvictionPolicy(s)
}

// CacheStats reports the page cache's counters; see Tree.CacheStats.
type CacheStats = storage.CacheStats

// NewMmapBackend opens the index file at path as a memory-mapped Backend:
// reads come from a read-only shared mapping as zero-copy page views with
// checksums verified once per mapped page, writes go through the regular
// durable file path (the mapping stays coherent). A non-zero blockSize is
// a requirement the file must match (like Open); <= 0 accepts the file's.
// On platforms without the mapping support the backend still works,
// serving every read through ordinary verified file reads. Most callers
// want Open with Options.Mmap instead, which also manages the tree
// metadata.
func NewMmapBackend(path string, blockSize int) (Backend, error) {
	if blockSize < 0 {
		blockSize = 0
	}
	return storage.OpenMmap(path, blockSize)
}

// Index-file corruption sentinels, matchable through the errors Open
// returns with errors.Is.
var (
	// ErrBadMagic reports a file that is not a prtree index file.
	ErrBadMagic = storage.ErrBadMagic
	// ErrBadVersion reports an index file written by an unknown format
	// version.
	ErrBadVersion = storage.ErrBadVersion
	// ErrBlockSizeMismatch reports opening an index file with
	// Options.BlockSize different from the file's.
	ErrBlockSizeMismatch = storage.ErrBlockSizeMismatch
	// ErrTruncated reports an index file shorter than its header's
	// recorded geometry requires.
	ErrTruncated = storage.ErrTruncated
	// ErrChecksum reports a page whose stored CRC32C does not match its
	// contents — latent sector corruption caught at read time. CheckPages
	// returns it wrapped; the read path panics with it.
	ErrChecksum = storage.ErrChecksum
	// ErrWALCorrupt reports a write-ahead log Open cannot trust: records
	// with valid checksums but invalid semantics. (A torn tail — invalid
	// framing or checksum at the end of the log — is a normal crash
	// artifact, silently truncated, not this error.)
	ErrWALCorrupt = storage.ErrWALCorrupt
	// ErrInjectedFault is the sentinel wrapped by every failure a Faulty
	// backend (or a file backend's crash point) injects deliberately.
	ErrInjectedFault = storage.ErrInjectedFault
)

// RecoveryInfo describes what crash recovery did while opening an index
// file; see Tree.Recovery.
type RecoveryInfo = storage.RecoveryInfo

// Transactional is the optional atomicity seam a custom Backend may
// implement; mutation paths bracket their writes with Begin/Commit so a
// durable backend can apply each mutation atomically. The built-in file
// backend implements it with a write-ahead log.
type Transactional = storage.Transactional

// FaultMode selects what a fault-injecting backend does when it fires:
// FaultError, FaultTorn, FaultCrash or FaultStop.
type FaultMode = storage.FaultMode

// Fault-injection modes for NewFaultyBackend.
const (
	FaultNone  = storage.FaultNone
	FaultError = storage.FaultError
	FaultTorn  = storage.FaultTorn
	FaultCrash = storage.FaultCrash
	FaultStop  = storage.FaultStop
)

// NewFaultyBackend wraps a backend with deterministic failure injection:
// after triggerAfter counted operations (writes, syncs, commits) the
// configured fault fires, wrapping ErrInjectedFault. It exists for
// torture tests; see the storage.Faulty documentation for the modes.
func NewFaultyBackend(b Backend, mode FaultMode, triggerAfter int64) Backend {
	return storage.NewFaulty(b, mode, triggerAfter)
}
