package prtree

import "prtree/internal/storage"

// The storage seam, re-exported: Backend is the block-device interface
// every tree runs on, and PageID addresses one block. They alias the
// internal types, so custom backends written against these names satisfy
// the interface the internal pager, loaders and trees consume.

// Backend is a pluggable block store; see Options.Backend. Implementations
// must honor the contracts documented on the interface: zeroed pages from
// Alloc, block-granular reads/writes, a superblock metadata blob, and
// Sync/Close durability hooks.
type Backend = storage.Backend

// PageID identifies one block of a Backend.
type PageID = storage.PageID

// DefaultBlockSize is the paper's disk block size: 4 KB, which holds 113
// 36-byte rectangle entries.
const DefaultBlockSize = storage.DefaultBlockSize

// NewMemoryBackend returns the in-memory block-store simulator the paper's
// experiments run on (block-granular I/O, allocation freelist). blockSize
// <= 0 selects DefaultBlockSize.
func NewMemoryBackend(blockSize int) Backend {
	if blockSize <= 0 {
		blockSize = storage.DefaultBlockSize
	}
	return storage.NewDisk(blockSize)
}

// NewFileBackend creates (or truncates) a page file at path and returns a
// persistent Backend on it — the building block behind Create. Most
// callers want Create/Open instead, which also manage the tree metadata.
func NewFileBackend(path string, blockSize int) (Backend, error) {
	if blockSize <= 0 {
		blockSize = storage.DefaultBlockSize
	}
	return storage.CreateFile(path, blockSize)
}

// Index-file corruption sentinels, matchable through the errors Open
// returns with errors.Is.
var (
	// ErrBadMagic reports a file that is not a prtree index file.
	ErrBadMagic = storage.ErrBadMagic
	// ErrBadVersion reports an index file written by an unknown format
	// version.
	ErrBadVersion = storage.ErrBadVersion
	// ErrBlockSizeMismatch reports opening an index file with
	// Options.BlockSize different from the file's.
	ErrBlockSizeMismatch = storage.ErrBlockSizeMismatch
	// ErrTruncated reports an index file shorter than its header's
	// recorded geometry requires.
	ErrTruncated = storage.ErrTruncated
)
