package prtree

import (
	"context"
	"fmt"
	"iter"

	"prtree/internal/geom"
	"prtree/internal/rtree"
)

// Query is one composable spatial query: a kind (window, point stabbing,
// containment or k-nearest-neighbor) plus per-query options. Build one
// with Window, Point, Contained or Nearest, refine it with the With*
// methods (each returns a derived value; a Query is immutable and
// reusable), and consume it with Tree.Run, Tree.Iter or Tree.Collect:
//
//	q := prtree.Window(rect).WithLimit(100).WithContext(ctx)
//	for it := range tree.Iter(q) {
//		...
//	}
//
// Every kind runs on the same worst-case-optimal executor with identical
// block-I/O accounting; the options only bound or observe the traversal.
type Query struct {
	kind  queryKind
	rect  Rect
	x, y  float64
	k     int
	limit int
	ctx   context.Context
	stats *QueryStats
}

type queryKind uint8

const (
	queryWindow queryKind = iota
	queryContained
	queryNearest
)

// Window queries every item intersecting q (the paper's window query).
func Window(q Rect) Query { return Query{kind: queryWindow, rect: q} }

// Point queries every item containing the point (x, y) — a degenerate
// window, with the same optimal bound.
func Point(x, y float64) Query { return Query{kind: queryWindow, rect: geom.PointRect(x, y)} }

// Contained queries every item fully contained in q. Traversal prunes on
// intersection and filters on containment at the leaves.
func Contained(q Rect) Query { return Query{kind: queryContained, rect: q} }

// Nearest queries the k items closest to (x, y), yielded in ascending
// distance order with deterministic (distance, ID) tie-breaking.
func Nearest(x, y float64, k int) Query { return Query{kind: queryNearest, x: x, y: y, k: k} }

// WithLimit bounds the query to at most n results; n <= 0 removes the
// bound. The traversal stops — successfully — as soon as the limit is hit.
func (q Query) WithLimit(n int) Query {
	if n < 0 {
		n = 0
	}
	q.limit = n
	return q
}

// WithContext attaches a cancellation context. The executor polls it at
// node-visit granularity: once ctx is done, the traversal stops within one
// node visit and the context's error is returned by Run and Collect (Iter
// simply stops yielding).
func (q Query) WithContext(ctx context.Context) Query {
	q.ctx = ctx
	return q
}

// WithStats directs the executor to write the query's node-visit
// statistics into st when the query finishes (including early stops from
// limits, callbacks and cancellation).
func (q Query) WithStats(st *QueryStats) Query {
	q.stats = st
	return q
}

// cancelPoll adapts a context to the executor's per-node poll. A nil or
// never-canceled context costs queries nothing.
func cancelPoll(ctx context.Context) func() error {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return func() error {
		select {
		case <-done:
			return ctx.Err()
		default:
			return nil
		}
	}
}

// Run executes q, reporting each matching item to fn (return false to stop
// early; fn may be nil to count only). Window and containment results come
// in unspecified order; Nearest results in ascending distance order. The
// only error source is query cancellation: a non-nil error is the
// context's (context.Canceled or context.DeadlineExceeded), wrapped
// statistics land in the WithStats sink regardless.
//
// fn must not mutate the tree, and Run is safe for any number of
// concurrent callers (the read path shares no traversal state).
func (t *Tree) Run(q Query, fn func(Item) bool) error {
	opt := rtree.RunOptions{Limit: q.limit, Cancel: cancelPoll(q.ctx)}
	var st QueryStats
	var err error
	switch q.kind {
	case queryNearest:
		var out []rtree.Neighbor
		out, st, err = t.inner.RunNearest(q.x, q.y, q.k, opt)
		if err == nil && fn != nil {
			for _, nb := range out {
				if !fn(nb.Item) {
					break
				}
			}
		}
	case queryContained:
		st, err = t.inner.RunWindow(q.rect, true, fn, opt)
	default:
		st, err = t.inner.RunWindow(q.rect, false, fn, opt)
	}
	if q.stats != nil {
		*q.stats = st
	}
	return err
}

// Iter returns a pull iterator over q's results, for use with Go 1.23
// range-over-func:
//
//	for it := range tree.Iter(q) {
//		...
//	}
//
// Breaking out of the loop stops the underlying traversal immediately for
// window, point and containment queries; a Nearest query materializes its
// k results before the first yield (best-first search must see every
// boundary candidate), so bound its work with a smaller k or WithLimit
// rather than an early break.
// Cancellation (WithContext) ends iteration early without a signal — use
// Run when the caller must distinguish "done" from "canceled", or attach a
// WithStats sink and inspect it after the loop.
func (t *Tree) Iter(q Query) iter.Seq[Item] {
	return func(yield func(Item) bool) {
		_ = t.Run(q, yield)
	}
}

// Collect executes q and returns all results as a slice.
func (t *Tree) Collect(q Query) ([]Item, error) {
	var out []Item
	err := t.Run(q, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out, err
}

// Count executes q discarding results and returns the result count. A
// WithStats sink on q is honored, not replaced.
func (t *Tree) Count(q Query) (int, error) {
	var st QueryStats
	if q.stats == nil {
		q.stats = &st
	}
	err := t.Run(q, nil)
	return q.stats.Results, err
}

// CollectNearest executes a Nearest query and returns the neighbors with
// their squared distances, in ascending (distance, ID) order. It is the
// distance-carrying sibling of Collect — scatter-gather servers merge
// per-shard k-NN results by (Dist2, ID), which Item alone cannot support —
// and honors WithContext, WithLimit and WithStats like every other
// consumer. Non-Nearest queries are rejected.
func (t *Tree) CollectNearest(q Query) ([]Neighbor, error) {
	if q.kind != queryNearest {
		return nil, fmt.Errorf("prtree: CollectNearest requires a Nearest query")
	}
	out, st, err := t.inner.RunNearest(q.x, q.y, q.k, rtree.RunOptions{
		Limit:  q.limit,
		Cancel: cancelPoll(q.ctx),
	})
	if q.stats != nil {
		*q.stats = st
	}
	return out, err
}

// --- v1 query shims -------------------------------------------------------
//
// The pre-v2 entry points remain as thin wrappers over the unified
// executor so existing callers keep working; new code should build Query
// values instead.

// Query reports every stored item intersecting q to fn (return false to
// stop early) and returns visit statistics.
//
// Deprecated: use Run, Iter or Collect with a Window query; statistics
// come from WithStats.
func (t *Tree) Query(q Rect, fn func(Item) bool) QueryStats {
	var st QueryStats
	_ = t.Run(Window(q).WithStats(&st), fn)
	return st
}

// Search returns all items intersecting q.
//
// Deprecated: use Collect or Iter with a Window query.
func (t *Tree) Search(q Rect) []Item {
	out, _ := t.Collect(Window(q))
	return out
}

// SearchPoint returns all items containing the point (x, y).
//
// Deprecated: use Collect or Iter with a Point query.
func (t *Tree) SearchPoint(x, y float64) []Item {
	out, _ := t.Collect(Point(x, y))
	return out
}

// SearchContained returns all items fully contained in q.
//
// Deprecated: use Collect or Iter with a Contained query.
func (t *Tree) SearchContained(q Rect) []Item {
	out, _ := t.Collect(Contained(q))
	return out
}

// Neighbor is one nearest-neighbor result with its squared distance.
type Neighbor = rtree.Neighbor

// NearestNeighbors returns the k items closest to (x, y) in ascending
// distance order (best-first search).
//
// Deprecated: use Run, Iter or Collect with a Nearest query; this shim
// remains for callers that need the squared distances.
func (t *Tree) NearestNeighbors(x, y float64, k int) []Neighbor {
	out, _, _ := t.inner.RunNearest(x, y, k, rtree.RunOptions{})
	return out
}

// QueryBatch runs every window query concurrently on up to workers
// goroutines (bounded by GOMAXPROCS; <= 1 means serial) and returns
// per-query statistics indexed like queries. Per-query results and stats
// are identical to sequential Query calls at every worker count, and with
// the default unbounded cache the aggregate block-I/O is bit-identical
// too. The tree must not be mutated while a batch runs.
func (t *Tree) QueryBatch(queries []Rect, workers int) []QueryStats {
	return t.inner.QueryBatch(queries, workers, nil)
}

// SearchBatch runs every query concurrently on up to workers goroutines and
// returns the matching items per query, indexed and ordered exactly as N
// sequential Search calls would be. The tree must not be mutated while a
// batch runs.
func (t *Tree) SearchBatch(queries []Rect, workers int) [][]Item {
	results, _ := t.inner.SearchBatch(queries, workers)
	return results
}
