// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment; run `go test -bench=. -benchmem`), plus
// micro-benchmarks of the core operations. Custom metrics report the
// quantity each paper exhibit plots: "blockIO/op" for the bulk-loading
// figures (9-11), "pct-of-TB" for the query figures (12-15), and
// "leaf%%" for Table 1 / Theorem 3.
//
// Sizes are benchmark-friendly (tens of thousands of rectangles); the
// full-scale reproduction is cmd/prbench, whose output is recorded in
// EXPERIMENTS.md.
package prtree

import (
	"fmt"
	"runtime"
	"testing"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/hilbert"
	"prtree/internal/pseudo"
	"prtree/internal/rtree"
	"prtree/internal/storage"
	"prtree/internal/workload"
)

const benchMem = 1 << 14 // bulk-loading memory budget (records)

var benchLoaders = []bulk.Loader{bulk.LoaderHilbert, bulk.LoaderHilbert4D, bulk.LoaderPR, bulk.LoaderTGS}

// benchBuild bulk-loads items once per iteration, reporting block I/O.
func benchBuild(b *testing.B, l bulk.Loader, items []geom.Item) {
	benchBuildOpt(b, l, items, bulk.Options{MemoryItems: benchMem})
}

func benchBuildOpt(b *testing.B, l bulk.Loader, items []geom.Item, opt bulk.Options) {
	b.Helper()
	var lastIO uint64
	for i := 0; i < b.N; i++ {
		disk := storage.NewDisk(storage.DefaultBlockSize)
		pager := storage.NewPager(disk, -1)
		in := storage.NewItemFileFrom(disk, items)
		disk.ResetStats()
		tree := bulk.Load(l, pager, in, opt)
		lastIO = disk.Stats().Total()
		if tree.Len() != len(items) {
			b.Fatalf("lost items: %d != %d", tree.Len(), len(items))
		}
	}
	b.ReportMetric(float64(lastIO), "blockIO/op")
}

// benchQueries builds once, then measures query cost per iteration.
func benchQueries(b *testing.B, l bulk.Loader, items []geom.Item, queries []geom.Rect) {
	b.Helper()
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, -1)
	in := storage.NewItemFileFrom(disk, items)
	tree := bulk.Load(l, pager, in, bulk.Options{MemoryItems: benchMem})
	totalLeafNodes := 0
	tree.Walk(func(_ storage.PageID, _ int, isLeaf bool, _ []geom.Item) {
		if isLeaf {
			totalLeafNodes++
		}
	})
	b.ReportAllocs() // the zero-copy read path keeps cache-hit queries at 0 allocs/op
	b.ResetTimer()
	var leaves, results int
	for i := 0; i < b.N; i++ {
		leaves, results = 0, 0
		for _, q := range queries {
			st := tree.QueryCount(q)
			leaves += st.LeavesVisited
			results += st.Results
		}
	}
	if results > 0 {
		pct := 100 * float64(leaves) / (float64(results) / float64(tree.Config().Fanout))
		b.ReportMetric(pct, "pct-of-TB")
	}
	b.ReportMetric(100*float64(leaves)/float64(len(queries))/float64(totalLeafNodes), "leaf%")
}

// --- Figure 9: bulk-loading cost on TIGER-like data ---

func BenchmarkFig9BulkLoadEastern(b *testing.B) {
	items := dataset.Eastern(40000, 1)
	for _, l := range benchLoaders {
		b.Run(l.String(), func(b *testing.B) { benchBuild(b, l, items) })
	}
}

// --- Figure 10: bulk-loading cost vs dataset size ---

func BenchmarkFig10Scaling(b *testing.B) {
	regions := dataset.EasternRegions(40000, 2)
	for _, items := range regions {
		b.Run(fmt.Sprintf("PR/n=%d", len(items)), func(b *testing.B) {
			benchBuild(b, bulk.LoaderPR, items)
		})
	}
}

// --- Figure 11: TGS bulk-loading cost across distributions ---

func BenchmarkFig11TGS(b *testing.B) {
	for _, ms := range []float64{0.002, 0.02, 0.2} {
		items := dataset.Size(20000, ms, 3)
		b.Run(fmt.Sprintf("size=%g", ms), func(b *testing.B) {
			benchBuild(b, bulk.LoaderTGS, items)
		})
	}
	for _, a := range []float64{10, 1000, 100000} {
		items := dataset.Aspect(20000, a, 4)
		b.Run(fmt.Sprintf("aspect=%g", a), func(b *testing.B) {
			benchBuild(b, bulk.LoaderTGS, items)
		})
	}
}

// --- Figures 12/13: query cost vs query size on TIGER-like data ---

func BenchmarkFig12QueryWestern(b *testing.B) {
	items := dataset.Western(40000, 5)
	world := geom.ItemsMBR(items)
	queries := workload.Squares(world, 0.01, 50, 6)
	for _, l := range benchLoaders {
		b.Run(l.String(), func(b *testing.B) { benchQueries(b, l, items, queries) })
	}
}

func BenchmarkFig13QueryEastern(b *testing.B) {
	items := dataset.Eastern(40000, 7)
	world := geom.ItemsMBR(items)
	queries := workload.Squares(world, 0.01, 50, 8)
	for _, l := range benchLoaders {
		b.Run(l.String(), func(b *testing.B) { benchQueries(b, l, items, queries) })
	}
}

// --- Figure 14: query cost vs dataset size ---

func BenchmarkFig14QueryScaling(b *testing.B) {
	regions := dataset.EasternRegions(40000, 9)
	for _, items := range regions {
		world := geom.ItemsMBR(items)
		queries := workload.Squares(world, 0.01, 50, 10)
		b.Run(fmt.Sprintf("PR/n=%d", len(items)), func(b *testing.B) {
			benchQueries(b, bulk.LoaderPR, items, queries)
		})
	}
}

// --- Figure 15: query cost on the synthetic families ---

func BenchmarkFig15Size(b *testing.B) {
	items := dataset.Size(40000, 0.2, 11)
	queries := workload.Squares(geom.NewRect(0, 0, 1, 1), 0.01, 50, 12)
	for _, l := range benchLoaders {
		b.Run(l.String(), func(b *testing.B) { benchQueries(b, l, items, queries) })
	}
}

func BenchmarkFig15Aspect(b *testing.B) {
	items := dataset.Aspect(40000, 10000, 13)
	queries := workload.Squares(geom.NewRect(0, 0, 1, 1), 0.01, 50, 14)
	for _, l := range benchLoaders {
		b.Run(l.String(), func(b *testing.B) { benchQueries(b, l, items, queries) })
	}
}

func BenchmarkFig15Skewed(b *testing.B) {
	items := dataset.Skewed(40000, 7, 15)
	queries := workload.SkewedSquares(0.01, 7, 50, 16)
	for _, l := range benchLoaders {
		b.Run(l.String(), func(b *testing.B) { benchQueries(b, l, items, queries) })
	}
}

// --- Table 1: CLUSTER with skinny probes ---

func BenchmarkTable1Cluster(b *testing.B) {
	items := dataset.Cluster(50000, dataset.ClusterOptions{}, 17)
	queries := make([]geom.Rect, 20)
	for i := range queries {
		queries[i] = dataset.ClusterProbe(dataset.ClusterOptions{}, int64(18+i))
	}
	for _, l := range benchLoaders {
		b.Run(l.String(), func(b *testing.B) { benchQueries(b, l, items, queries) })
	}
}

// --- Theorem 3: worst-case grid, zero-output line queries ---

func BenchmarkTheorem3(b *testing.B) {
	items := dataset.WorstCase(50000, 113)
	queries := make([]geom.Rect, 20)
	for i := range queries {
		queries[i] = dataset.WorstCaseProbe(50000, 113, i)
	}
	for _, l := range benchLoaders {
		b.Run(l.String(), func(b *testing.B) { benchQueries(b, l, items, queries) })
	}
}

// --- Core micro-benchmarks ---

func BenchmarkPseudoPRBuildInMemory(b *testing.B) {
	items := dataset.Uniform(50000, 0.001, 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([]geom.Item, len(items))
		copy(work, items)
		t := pseudo.Build(work, 113, true)
		if t.N != len(items) {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkPRBulkLoadExternal(b *testing.B) {
	items := dataset.Uniform(50000, 0.001, 20)
	benchBuild(b, bulk.LoaderPR, items)
}

// BenchmarkPRBulkLoadExternalParallel is the serial benchmark above with
// the pipeline's worker pool engaged (workers are clamped to GOMAXPROCS).
// The reported blockIO/op is identical to the serial run at every worker
// count — only wall-clock changes.
func BenchmarkPRBulkLoadExternalParallel(b *testing.B) {
	items := dataset.Uniform(50000, 0.001, 20)
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchBuildOpt(b, bulk.LoaderPR, items, bulk.Options{MemoryItems: benchMem, Parallelism: w})
		})
	}
}

// BenchmarkQueryBatch measures batch window-query throughput on the Fig12
// workload (PR-loaded Western data, 1% squares, internal nodes pinned on a
// capacity-0 pager so every leaf visit is a counted disk read) at
// increasing worker counts. Besides
// wall time it reports queries/sec and blockIO/op, and FAILS if any
// parallel run's aggregate block-I/O deviates from the serial run's — the
// invariant the lock-striped pager's single-flight miss path guarantees.
func BenchmarkQueryBatch(b *testing.B) {
	// Let the pool fan out even when cores are scarce; on a multi-core
	// machine this is a no-op beyond 8 and queries/sec scales with cores.
	if runtime.GOMAXPROCS(0) < 8 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	}
	items := dataset.Western(60000, 5)
	world := geom.ItemsMBR(items)
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, 0) // leaf reads always hit the disk, as in the paper's setup
	tree := bulk.FromItems(bulk.LoaderPR, pager, items, bulk.Options{MemoryItems: benchMem})
	queries := workload.Squares(world, 0.01, 400, 6)
	tree.PinInternal()
	var serialIO uint64
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var lastIO uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				disk.ResetStats()
				st := tree.QueryBatch(queries, w, nil)
				lastIO = disk.Stats().Total()
				if len(st) != len(queries) {
					b.Fatal("lost queries")
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(lastIO), "blockIO/op")
			b.ReportMetric(float64(len(queries))*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			if w == 1 {
				serialIO = lastIO
			} else if serialIO != 0 && lastIO != serialIO {
				// serialIO == 0 means the workers=1 sub-benchmark was
				// filtered out, so there is no baseline to compare against.
				b.Fatalf("workers=%d aggregate blockIO %d != serial %d", w, lastIO, serialIO)
			}
		})
	}
}

// BenchmarkLayoutFig12 runs one Fig12 query workload (1% squares on
// grid-snapped Western data, internals pinned, capacity-0 pager) under
// both page layouts and reports each layout's aggregate block I/O. It
// FAILS if the compressed layout's block I/O is not strictly lower than
// raw, or if the result sets diverge — the invariants the quantized
// layout promises (conservative covers at interior levels, lossless or
// raw-fallback leaves).
func BenchmarkLayoutFig12(b *testing.B) {
	items := dataset.Snap(dataset.Western(60000, 5), 16)
	world := geom.ItemsMBR(items)
	queries := workload.Squares(world, 0.01, 200, 6)

	type outcome struct {
		io       uint64
		results  uint64
		checksum uint64
	}
	run := func(b *testing.B, layout rtree.Layout) outcome {
		disk := storage.NewDisk(storage.DefaultBlockSize)
		pager := storage.NewPager(disk, 0)
		tree := bulk.FromItems(bulk.LoaderPR, pager, items,
			bulk.Options{MemoryItems: benchMem, Layout: layout})
		tree.PinInternal()
		var out outcome
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = outcome{}
			disk.ResetStats()
			for _, q := range queries {
				tree.Query(q, func(it geom.Item) bool {
					out.results++
					out.checksum += uint64(it.ID)
					return true
				})
			}
			out.io = disk.Stats().Total()
		}
		b.ReportMetric(float64(out.io), "blockIO/op")
		return out
	}
	var raw, comp outcome
	b.Run("raw", func(b *testing.B) { raw = run(b, rtree.LayoutRaw) })
	b.Run("compressed", func(b *testing.B) { comp = run(b, rtree.LayoutCompressed) })
	if raw.io == 0 || comp.io == 0 {
		return // a sub-benchmark was filtered out; nothing to compare
	}
	if comp.io >= raw.io {
		b.Fatalf("compressed blockIO %d not strictly below raw %d", comp.io, raw.io)
	}
	if comp.results != raw.results || comp.checksum != raw.checksum {
		b.Fatalf("results diverged: raw (%d, %d), compressed (%d, %d)",
			raw.results, raw.checksum, comp.results, comp.checksum)
	}
}

func BenchmarkWindowQueryPR(b *testing.B) {
	items := dataset.Uniform(100000, 0.001, 21)
	disk := storage.NewDisk(storage.DefaultBlockSize)
	tree := bulk.FromItems(bulk.LoaderPR, storage.NewPager(disk, -1), items,
		bulk.Options{MemoryItems: benchMem})
	queries := workload.Squares(geom.NewRect(0, 0, 1, 1), 0.001, 100, 22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := tree.QueryCount(queries[i%len(queries)])
		if st.Results < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkGuttmanInsert(b *testing.B) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	tree := rtree.New(storage.NewPager(disk, -1), rtree.Config{})
	items := dataset.Uniform(200000, 0.001, 23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Insert(items[i%len(items)])
	}
}

func BenchmarkLogMethodInsert(b *testing.B) {
	d := NewDynamic(nil)
	items := dataset.Uniform(200000, 0.001, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Insert(Item{Rect: items[i%len(items)].Rect, ID: uint32(i)})
	}
}

func BenchmarkHilbert2DIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = hilbert.Index2D(uint32(i)&0xffff, uint32(i*7)&0xffff, 16)
	}
}

func BenchmarkHilbert4DIndex(b *testing.B) {
	coords := []uint32{1, 2, 3, 4}
	for i := 0; i < b.N; i++ {
		coords[0] = uint32(i) & 0xffff
		_ = hilbert.Index(coords, 16)
	}
}
