package prtree

import (
	"fmt"

	"prtree/internal/rtree"
	"prtree/internal/storage"
)

// File-backed trees: Create a new index file, build into it (BulkLoad or
// Insert), Close to persist, Open to serve it again — in place, with no
// Save/Load round-trip through an in-memory copy.

// Create makes a new (or truncates an existing) index file at path and
// returns an empty file-backed tree on it. Fill it with BulkLoad or
// Insert; Close (or Sync) persists the tree in place, and Open reopens it
// with zero rebuild work. Options.Backend is ignored — Create always uses
// the file-backed store at path.
func Create(path string, opts *Options) (*Tree, error) {
	o := opts.normalized()
	fb, err := storage.CreateFile(path, o.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("prtree: create %s: %w", path, err)
	}
	dev := storage.Backend(fb)
	if o.Mmap {
		m, merr := storage.NewMmap(fb)
		if merr != nil {
			fb.Abandon()
			return nil, fmt.Errorf("prtree: create %s: %w", path, merr)
		}
		dev = m
	}
	if o.WrapBackend != nil {
		dev = o.WrapBackend(dev)
	}
	counting, pager := newTree(dev, o)
	inner := rtree.New(pager, rtree.Config{
		Fanout: o.Fanout,
		Split:  o.Update,
		Layout: o.Layout,
	})
	t := &Tree{inner: inner, pager: pager, io: counting, bopts: o.bulkOptions(), path: path}
	if err := t.Sync(); err != nil {
		fb.Abandon()
		return nil, err
	}
	return t, nil
}

// Open reopens the index file at path. The tree's shape and configuration
// come from the file; opts controls the page cache, and a non-zero
// opts.BlockSize is validated against the file's block size (mismatch is a
// wrapped ErrBlockSizeMismatch). Corrupt files fail with wrapped,
// inspectable errors — see ErrBadMagic, ErrBadVersion and ErrTruncated —
// never a panic.
func Open(path string, opts *Options) (*Tree, error) {
	expect := 0
	if opts != nil {
		expect = opts.BlockSize
	}
	o := opts.normalized()
	fb, err := storage.OpenFile(path, expect)
	if err != nil {
		return nil, fmt.Errorf("prtree: %w", err)
	}
	dev := storage.Backend(fb)
	if o.Mmap {
		m, merr := storage.NewMmap(fb)
		if merr != nil {
			fb.Abandon()
			return nil, fmt.Errorf("prtree: open %s: %w", path, merr)
		}
		dev = m
	}
	if o.WrapBackend != nil {
		dev = o.WrapBackend(dev)
	}
	counting, pager := newTree(dev, o)
	inner, err := rtree.OpenFromMeta(pager, fb.Meta())
	if err != nil {
		// Abandon, not Close: a failed open must not rewrite the header or
		// truncate a file it could not validate.
		fb.Abandon()
		return nil, fmt.Errorf("prtree: open %s: %w", path, err)
	}
	cfg := inner.Config()
	bopts := o.bulkOptions()
	bopts.Fanout, bopts.Layout, bopts.Split = cfg.Fanout, cfg.Layout, cfg.Split
	return &Tree{
		inner: inner, pager: pager, io: counting, bopts: bopts, path: path,
		recovery: fb.RecoveryInfo(),
	}, nil
}

// Path returns the tree's index file path, or "" for non-file backends.
func (t *Tree) Path() string { return t.path }

// Recovery reports what crash recovery did when this tree was opened:
// nil for a cleanly closed (or non-file) index, a populated RecoveryInfo
// when Open found work in the write-ahead log — committed transactions to
// replay, uncommitted tails to discard, or a torn tail to truncate. The
// index is fully consistent either way; the report exists for operators
// and tests that care whether the previous process died.
func (t *Tree) Recovery() *RecoveryInfo { return t.recovery }

// CheckPages verifies the checksum trailer of every in-use page of a
// file-backed tree without panicking, returning the first mismatch as an
// error wrapping ErrChecksum (nil for clean or non-file trees). This is
// the scrub behind prtool fsck; normal reads verify checksums inline and
// panic on a mismatch instead.
func (t *Tree) CheckPages() error {
	if t.closed {
		return fmt.Errorf("prtree: CheckPages on closed tree")
	}
	fb, ok := storage.AsFile(t.io)
	if !ok {
		return nil
	}
	if err := fb.Fsck(); err != nil {
		return fmt.Errorf("prtree: %w", err)
	}
	return nil
}

// Sync persists the tree's current state — pages, allocator and metadata —
// through the backend (an fsync'd header rewrite for file-backed trees, a
// no-op for in-memory ones). The tree remains usable.
func (t *Tree) Sync() error {
	if t.closed {
		return fmt.Errorf("prtree: Sync on closed tree")
	}
	t.io.SetMeta(t.inner.EncodeMeta())
	if err := t.io.Sync(); err != nil {
		return fmt.Errorf("prtree: sync: %w", err)
	}
	return nil
}

// Close persists the tree (like Sync) and releases the backend. A
// file-backed tree closed cleanly reopens with Open; using the tree after
// Close is invalid. Closing twice is a no-op.
func (t *Tree) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.pager.Close() // stop prefetch workers before the backend goes away
	t.io.SetMeta(t.inner.EncodeMeta())
	if err := t.io.Close(); err != nil {
		return fmt.Errorf("prtree: close: %w", err)
	}
	return nil
}
