// Command prbench regenerates the paper's evaluation: every figure and
// table of Section 3 plus the Theorem 3 demonstration and the Lemma 2
// empirical check, printed as aligned text tables.
//
// Usage:
//
//	prbench [-scale F] [-queries N] [-mem M] [-workers W] [-seed S] [-only ids]
//
// -scale multiplies the default dataset sizes (~120k rectangles at 1.0;
// the paper used 10-16.7M — scale 100 reproduces that on a large machine).
// -workers sets the bulk-load pipeline's parallelism (default: GOMAXPROCS;
// block-I/O counts are identical at any setting, only wall-clock changes).
// -only selects a comma-separated subset of experiment ids, e.g.
// "fig9,table1".
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"prtree/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset size multiplier")
	queries := flag.Int("queries", 100, "window queries per measurement point")
	mem := flag.Int("mem", 0, "bulk-loading memory budget in records (0 = default 65536)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "bulk-load parallelism (1 = serial; I/O counts are identical at any setting)")
	qworkers := flag.Int("qworkers", runtime.GOMAXPROCS(0), "highest worker count the query-throughput sweep reaches (I/O counts are identical at any setting)")
	seed := flag.Int64("seed", 2004, "generator seed")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	ids := []string{
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15size", "fig15aspect", "fig15skewed",
		"table1", "theorem3", "lemma2", "utilization",
		"ablation-priority", "ablation-roundb", "ablation-cache",
		"futurework", "throughput",
	}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{
		Scale:        *scale,
		Queries:      *queries,
		MemoryItems:  *mem,
		Workers:      *workers,
		QueryWorkers: *qworkers,
		Seed:         *seed,
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			ok := false
			for _, known := range ids {
				if id == known {
					ok = true
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "prbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	runners := map[string]func(experiments.Config) experiments.Table{
		"fig9":              experiments.Fig9,
		"fig10":             experiments.Fig10,
		"fig11":             experiments.Fig11,
		"fig12":             experiments.Fig12,
		"fig13":             experiments.Fig13,
		"fig14":             experiments.Fig14,
		"fig15size":         experiments.Fig15Size,
		"fig15aspect":       experiments.Fig15Aspect,
		"fig15skewed":       experiments.Fig15Skewed,
		"table1":            experiments.Table1,
		"theorem3":          experiments.Theorem3,
		"lemma2":            experiments.Lemma2Check,
		"utilization":       experiments.Utilization,
		"ablation-priority": experiments.AblationPriority,
		"ablation-roundb":   experiments.AblationRoundToB,
		"ablation-cache":    experiments.AblationCache,
		"futurework":        experiments.FutureWorkUpdates,
		"throughput":        experiments.QueryThroughput,
	}

	fmt.Printf("PR-tree reproduction suite (scale=%g queries=%d workers=%d qworkers=%d seed=%d)\n\n", *scale, *queries, *workers, *qworkers, *seed)
	total := time.Now()
	for _, id := range ids {
		if len(want) > 0 && !want[id] {
			continue
		}
		start := time.Now()
		table := runners[id](cfg)
		fmt.Print(table.Render())
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}
	fmt.Printf("total: %.1fs\n", time.Since(total).Seconds())
}
