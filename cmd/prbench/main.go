// Command prbench regenerates the paper's evaluation: every figure and
// table of Section 3 plus the Theorem 3 demonstration, the Lemma 2
// empirical check, the page-layout sweep and the durability suite (WAL
// build-path overhead, fault-injected recovery), printed as aligned text
// tables and optionally emitted as machine-readable JSON.
//
// Usage:
//
//	prbench [-scale F] [-queries N] [-mem M] [-workers W] [-seed S]
//	        [-layout raw|compressed] [-json FILE] [-only ids] [-faults]
//	        [-cachesweep]
//
// -faults is shorthand for -only faults: drive the file backend through
// every injected failure mode (error, torn write, crash, silent stop) and
// report what crash recovery restores.
// -cachesweep is shorthand for -only cachesweep: serve a file-backed tree
// at pager capacities far below the index size, sweeping eviction policy
// (lru, s3fifo), structure-aware prefetch and the mmap read path.
// -scale multiplies the default dataset sizes (~120k rectangles at 1.0;
// the paper used 10-16.7M — scale 100 reproduces that on a large machine).
// -workers sets the bulk-load pipeline's parallelism (default: GOMAXPROCS;
// block-I/O counts are identical at any setting, only wall-clock changes).
// -layout selects the on-disk page format every experiment builds with
// (default raw, the paper's exact 36-byte-entry layout; the "layout"
// experiment measures both formats regardless).
// -json writes the results as JSON to the given file ("-" for stdout), the
// producer for BENCH_*.json trajectory tracking: per-experiment rows plus
// wall seconds and allocation counters.
// -only selects a comma-separated subset of experiment ids, e.g.
// "fig9,table1".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"prtree/internal/experiments"
	"prtree/internal/rtree"
)

// jsonExperiment is one experiment's machine-readable record.
type jsonExperiment struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	Columns    []string   `json:"columns"`
	Rows       [][]string `json:"rows"`
	Notes      string     `json:"notes,omitempty"`
	Seconds    float64    `json:"seconds"`
	Allocs     uint64     `json:"allocs"`
	AllocBytes uint64     `json:"alloc_bytes"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Scale        float64          `json:"scale"`
	Queries      int              `json:"queries"`
	Workers      int              `json:"workers"`
	QueryWorkers int              `json:"qworkers"`
	Layout       string           `json:"layout"`
	Seed         int64            `json:"seed"`
	TotalSeconds float64          `json:"total_seconds"`
	Experiments  []jsonExperiment `json:"experiments"`
}

func main() {
	scale := flag.Float64("scale", 1.0, "dataset size multiplier")
	queries := flag.Int("queries", 100, "window queries per measurement point")
	mem := flag.Int("mem", 0, "bulk-loading memory budget in records (0 = default 65536)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "bulk-load parallelism (1 = serial; I/O counts are identical at any setting)")
	qworkers := flag.Int("qworkers", runtime.GOMAXPROCS(0), "highest worker count the query-throughput sweep reaches (I/O counts are identical at any setting)")
	layoutFlag := flag.String("layout", "raw", "on-disk page layout for every experiment: raw (36 B entries, fanout 113) or compressed (12 B entries, fanout 338)")
	jsonPath := flag.String("json", "", "write machine-readable results to this file (\"-\" = stdout)")
	seed := flag.Int64("seed", 2004, "generator seed")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	faults := flag.Bool("faults", false, "run only the fault-injection recovery sweep (shorthand for -only faults)")
	cachesweep := flag.Bool("cachesweep", false, "run only the cache-pressure sweep (shorthand for -only cachesweep)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()
	for flagName, set := range map[string]*bool{"faults": faults, "cachesweep": cachesweep} {
		if !*set {
			continue
		}
		if *only != "" {
			fmt.Fprintf(os.Stderr, "prbench: -%s does not combine with -only or another shorthand\n", flagName)
			os.Exit(2)
		}
		*only = flagName
	}

	layout, err := rtree.ParseLayout(*layoutFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prbench: %v\n", err)
		os.Exit(2)
	}

	ids := []string{
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15size", "fig15aspect", "fig15skewed",
		"table1", "theorem3", "lemma2", "utilization",
		"ablation-priority", "ablation-roundb", "ablation-cache",
		"futurework", "throughput", "layout",
		"walbuild", "faults", "cachesweep",
	}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{
		Scale:        *scale,
		Queries:      *queries,
		MemoryItems:  *mem,
		Workers:      *workers,
		QueryWorkers: *qworkers,
		Layout:       layout,
		Seed:         *seed,
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			ok := false
			for _, known := range ids {
				if id == known {
					ok = true
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "prbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	runners := map[string]func(experiments.Config) experiments.Table{
		"fig9":              experiments.Fig9,
		"fig10":             experiments.Fig10,
		"fig11":             experiments.Fig11,
		"fig12":             experiments.Fig12,
		"fig13":             experiments.Fig13,
		"fig14":             experiments.Fig14,
		"fig15size":         experiments.Fig15Size,
		"fig15aspect":       experiments.Fig15Aspect,
		"fig15skewed":       experiments.Fig15Skewed,
		"table1":            experiments.Table1,
		"theorem3":          experiments.Theorem3,
		"lemma2":            experiments.Lemma2Check,
		"utilization":       experiments.Utilization,
		"ablation-priority": experiments.AblationPriority,
		"ablation-roundb":   experiments.AblationRoundToB,
		"ablation-cache":    experiments.AblationCache,
		"futurework":        experiments.FutureWorkUpdates,
		"throughput":        experiments.QueryThroughput,
		"layout":            experiments.LayoutSweep,
		"walbuild":          experiments.WALBuild,
		"faults":            experiments.FaultSweep,
		"cachesweep":        experiments.CacheSweep,
	}

	jsonOnly := *jsonPath == "-"
	if !jsonOnly {
		fmt.Printf("PR-tree reproduction suite (scale=%g queries=%d workers=%d qworkers=%d layout=%s seed=%d)\n\n",
			*scale, *queries, *workers, *qworkers, layout, *seed)
	}
	report := jsonReport{
		Scale:        *scale,
		Queries:      *queries,
		Workers:      *workers,
		QueryWorkers: *qworkers,
		Layout:       layout.String(),
		Seed:         *seed,
	}
	total := time.Now()
	var before, after runtime.MemStats
	for _, id := range ids {
		if len(want) > 0 && !want[id] {
			continue
		}
		runtime.ReadMemStats(&before)
		start := time.Now()
		table := runners[id](cfg)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if !jsonOnly {
			fmt.Print(table.Render())
			fmt.Printf("(%.1fs)\n\n", elapsed.Seconds())
		}
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID:         table.ID,
			Title:      table.Title,
			Columns:    table.Columns,
			Rows:       table.Rows,
			Notes:      table.Notes,
			Seconds:    elapsed.Seconds(),
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
		})
	}
	report.TotalSeconds = time.Since(total).Seconds()
	if !jsonOnly {
		fmt.Printf("total: %.1fs\n", report.TotalSeconds)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: encoding json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if jsonOnly {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
