// Command prbench regenerates the paper's evaluation: every figure and
// table of Section 3 plus the Theorem 3 demonstration, the Lemma 2
// empirical check, the page-layout sweep and the durability suite (WAL
// build-path overhead, fault-injected recovery), printed as aligned text
// tables and optionally emitted as machine-readable JSON.
//
// Usage:
//
//	prbench [-scale F] [-queries N] [-mem M] [-workers W] [-seed S]
//	        [-layout raw|compressed] [-json FILE] [-only ids] [-faults]
//	        [-cachesweep] [-serve] [-serveaddr HOST:PORT]
//
// -faults is shorthand for -only faults: drive the file backend through
// every injected failure mode (error, torn write, crash, silent stop) and
// report what crash recovery restores.
// -cachesweep is shorthand for -only cachesweep: serve a file-backed tree
// at pager capacities far below the index size, sweeping eviction policy
// (lru, s3fifo), structure-aware prefetch and the mmap read path.
// -serve is shorthand for -only serve: load-test the sharded network
// server (in-process by default; -serveaddr drives a running prtreeserve
// instead) across a client-concurrency sweep, reporting qps and exact
// p50/p95/p99 latency. prbench exits 1 if any serve row records errors,
// so CI can gate on the run.
// -scale multiplies the default dataset sizes (~120k rectangles at 1.0;
// the paper used 10-16.7M — scale 100 reproduces that on a large machine).
// -workers sets the bulk-load pipeline's parallelism (default: GOMAXPROCS;
// block-I/O counts are identical at any setting, only wall-clock changes).
// -layout selects the on-disk page format every experiment builds with
// (default raw, the paper's exact 36-byte-entry layout; the "layout"
// experiment measures both formats regardless).
// -json writes the results as JSON to the given file ("-" for stdout), the
// producer for BENCH_*.json trajectory tracking: per-experiment rows plus
// wall seconds and allocation counters. When the file already exists, the
// new rows are merged into it — experiments re-run this invocation replace
// their previous records in place, experiments not re-run are preserved —
// so partial runs like `prbench -serve -json BENCH_fig12.json` update one
// experiment without regenerating the whole suite.
// -only selects a comma-separated subset of experiment ids, e.g.
// "fig9,table1".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"prtree/internal/experiments"
	"prtree/internal/rtree"
)

// jsonExperiment is one experiment's machine-readable record.
type jsonExperiment struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	Columns    []string   `json:"columns"`
	Rows       [][]string `json:"rows"`
	Notes      string     `json:"notes,omitempty"`
	Seconds    float64    `json:"seconds"`
	Allocs     uint64     `json:"allocs"`
	AllocBytes uint64     `json:"alloc_bytes"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Scale        float64          `json:"scale"`
	Queries      int              `json:"queries"`
	Workers      int              `json:"workers"`
	QueryWorkers int              `json:"qworkers"`
	Layout       string           `json:"layout"`
	Seed         int64            `json:"seed"`
	TotalSeconds float64          `json:"total_seconds"`
	Experiments  []jsonExperiment `json:"experiments"`
}

func main() {
	scale := flag.Float64("scale", 1.0, "dataset size multiplier")
	queries := flag.Int("queries", 100, "window queries per measurement point")
	mem := flag.Int("mem", 0, "bulk-loading memory budget in records (0 = default 65536)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "bulk-load parallelism (1 = serial; I/O counts are identical at any setting)")
	qworkers := flag.Int("qworkers", runtime.GOMAXPROCS(0), "highest worker count the query-throughput sweep reaches (I/O counts are identical at any setting)")
	layoutFlag := flag.String("layout", "raw", "on-disk page layout for every experiment: raw (36 B entries, fanout 113) or compressed (12 B entries, fanout 338)")
	jsonPath := flag.String("json", "", "write machine-readable results to this file (\"-\" = stdout)")
	seed := flag.Int64("seed", 2004, "generator seed")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	faults := flag.Bool("faults", false, "run only the fault-injection recovery sweep (shorthand for -only faults)")
	cachesweep := flag.Bool("cachesweep", false, "run only the cache-pressure sweep (shorthand for -only cachesweep)")
	serveFlag := flag.Bool("serve", false, "run only the network-serving load test (shorthand for -only serve)")
	compactFlag := flag.Bool("compact", false, "run only the online-compaction stall benchmark (shorthand for -only compact)")
	serveAddr := flag.String("serveaddr", "", "serve experiment: drive this running prtreeserve binary-protocol address instead of an in-process server")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()
	for flagName, set := range map[string]*bool{"faults": faults, "cachesweep": cachesweep, "serve": serveFlag, "compact": compactFlag} {
		if !*set {
			continue
		}
		if *only != "" {
			fmt.Fprintf(os.Stderr, "prbench: -%s does not combine with -only or another shorthand\n", flagName)
			os.Exit(2)
		}
		*only = flagName
	}

	layout, err := rtree.ParseLayout(*layoutFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prbench: %v\n", err)
		os.Exit(2)
	}

	ids := []string{
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15size", "fig15aspect", "fig15skewed",
		"table1", "theorem3", "lemma2", "utilization",
		"ablation-priority", "ablation-roundb", "ablation-cache",
		"futurework", "throughput", "layout",
		"walbuild", "faults", "cachesweep", "serve", "compact",
	}
	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{
		Scale:        *scale,
		Queries:      *queries,
		MemoryItems:  *mem,
		Workers:      *workers,
		QueryWorkers: *qworkers,
		Layout:       layout,
		Seed:         *seed,
		ServeAddr:    *serveAddr,
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			ok := false
			for _, known := range ids {
				if id == known {
					ok = true
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "prbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	runners := map[string]func(experiments.Config) experiments.Table{
		"fig9":              experiments.Fig9,
		"fig10":             experiments.Fig10,
		"fig11":             experiments.Fig11,
		"fig12":             experiments.Fig12,
		"fig13":             experiments.Fig13,
		"fig14":             experiments.Fig14,
		"fig15size":         experiments.Fig15Size,
		"fig15aspect":       experiments.Fig15Aspect,
		"fig15skewed":       experiments.Fig15Skewed,
		"table1":            experiments.Table1,
		"theorem3":          experiments.Theorem3,
		"lemma2":            experiments.Lemma2Check,
		"utilization":       experiments.Utilization,
		"ablation-priority": experiments.AblationPriority,
		"ablation-roundb":   experiments.AblationRoundToB,
		"ablation-cache":    experiments.AblationCache,
		"futurework":        experiments.FutureWorkUpdates,
		"throughput":        experiments.QueryThroughput,
		"layout":            experiments.LayoutSweep,
		"walbuild":          experiments.WALBuild,
		"faults":            experiments.FaultSweep,
		"cachesweep":        experiments.CacheSweep,
		"serve":             experiments.Serve,
		"compact":           experiments.Compaction,
	}

	jsonOnly := *jsonPath == "-"
	if !jsonOnly {
		fmt.Printf("PR-tree reproduction suite (scale=%g queries=%d workers=%d qworkers=%d layout=%s seed=%d)\n\n",
			*scale, *queries, *workers, *qworkers, layout, *seed)
	}
	report := jsonReport{
		Scale:        *scale,
		Queries:      *queries,
		Workers:      *workers,
		QueryWorkers: *qworkers,
		Layout:       layout.String(),
		Seed:         *seed,
	}
	total := time.Now()
	serveErrors := 0
	var before, after runtime.MemStats
	for _, id := range ids {
		if len(want) > 0 && !want[id] {
			continue
		}
		runtime.ReadMemStats(&before)
		start := time.Now()
		table := runners[id](cfg)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if !jsonOnly {
			fmt.Print(table.Render())
			fmt.Printf("(%.1fs)\n\n", elapsed.Seconds())
		}
		if table.ID == "serve" {
			serveErrors += tableErrors(&table)
		}
		if table.ID == "compact" {
			if err := compactGate(&table); err != nil {
				fmt.Fprintf(os.Stderr, "prbench: compact gate: %v\n", err)
				os.Exit(1)
			}
		}
		report.Experiments = append(report.Experiments, jsonExperiment{
			ID:         table.ID,
			Title:      table.Title,
			Columns:    table.Columns,
			Rows:       table.Rows,
			Notes:      table.Notes,
			Seconds:    elapsed.Seconds(),
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
		})
	}
	report.TotalSeconds = time.Since(total).Seconds()
	if !jsonOnly {
		fmt.Printf("total: %.1fs\n", report.TotalSeconds)
	}

	if *jsonPath != "" {
		out := report
		if !jsonOnly {
			out = mergeReport(*jsonPath, report)
		}
		data, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "prbench: encoding json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if jsonOnly {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "prbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	if serveErrors > 0 {
		fmt.Fprintf(os.Stderr, "prbench: serve experiment recorded %d errors\n", serveErrors)
		os.Exit(1)
	}
}

// tableErrors sums the "errors" column of a table; non-numeric cells
// (placeholders for runs that never started) count as one error each.
func tableErrors(t *experiments.Table) int {
	col := -1
	for i, c := range t.Columns {
		if c == "errors" {
			col = i
		}
	}
	if col < 0 {
		return 0
	}
	total := 0
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		n, err := strconv.Atoi(row[col])
		if err != nil {
			total++
			continue
		}
		total += n
	}
	return total
}

// compactGate enforces the online-compaction acceptance criteria on the
// compact experiment's rows: background max insert stall must be strictly
// below the synchronous path's, and the query-result fingerprints must be
// identical (background merges invisible to queries).
func compactGate(t *experiments.Table) error {
	col := func(name string) int {
		for i, c := range t.Columns {
			if c == name {
				return i
			}
		}
		return -1
	}
	mode, stall, crc := col("mode"), col("stall max ms"), col("results crc")
	if mode < 0 || stall < 0 || crc < 0 {
		return fmt.Errorf("missing gate columns in %v", t.Columns)
	}
	vals := map[string]float64{}
	crcs := map[string]string{}
	for _, row := range t.Rows {
		v, err := strconv.ParseFloat(row[stall], 64)
		if err != nil {
			return fmt.Errorf("row %q: bad stall %q", row[mode], row[stall])
		}
		vals[row[mode]] = v
		crcs[row[mode]] = row[crc]
	}
	if len(vals) != 2 {
		return fmt.Errorf("want sync and background rows, got %d", len(vals))
	}
	if crcs["background"] != crcs["sync"] {
		return fmt.Errorf("query results diverge: background crc %s, sync crc %s",
			crcs["background"], crcs["sync"])
	}
	if vals["background"] >= vals["sync"] {
		return fmt.Errorf("background max insert stall %.3fms not strictly below synchronous %.3fms",
			vals["background"], vals["sync"])
	}
	return nil
}

// mergeReport folds the just-finished run into an existing -json file:
// experiments re-run this invocation replace their previous records in
// place (keeping the file's ordering), experiments not re-run are
// preserved, and new ones are appended in run order. Top-level parameters
// come from the new run. A missing or unreadable file means the new
// report stands alone.
func mergeReport(path string, fresh jsonReport) jsonReport {
	data, err := os.ReadFile(path)
	if err != nil {
		return fresh
	}
	var prev jsonReport
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "prbench: %s exists but is not a prbench report (%v); overwriting\n", path, err)
		return fresh
	}
	reran := make(map[string]jsonExperiment, len(fresh.Experiments))
	for _, e := range fresh.Experiments {
		reran[e.ID] = e
	}
	merged := fresh
	merged.Experiments = nil
	for _, e := range prev.Experiments {
		if ne, ok := reran[e.ID]; ok {
			merged.Experiments = append(merged.Experiments, ne)
			delete(reran, e.ID)
		} else {
			merged.Experiments = append(merged.Experiments, e)
		}
	}
	for _, e := range fresh.Experiments {
		if _, ok := reran[e.ID]; ok {
			merged.Experiments = append(merged.Experiments, e)
		}
	}
	return merged
}
