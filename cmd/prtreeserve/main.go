// Command prtreeserve serves a sharded PR-tree index directory (built by
// prtool shard) over the network: a length-prefixed binary protocol on
// -bind and an HTTP/JSON API on -http, with per-tenant admission control,
// per-request deadlines and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	prtool shard -in roads.bin -out roads.shards -shards 8
//	prtreeserve -shards roads.shards -bind :9045 -http :9046 \
//	            -cache 65536 -policy s3fifo -prefetch -tenantcap 256 \
//	            -deadline 2s -maxdeadline 30s
//
// Queries scatter across every shard concurrently and gather into a
// deterministic merged order; results are bit-identical to the same
// dataset served from one tree. A shard that fails mid-query (backend
// error, checksum mismatch) is quarantined instead of failing the query:
// responses degrade to the healthy subset (and say so), and a background
// supervisor reopens, scrubs and restores the shard — see -maxrecoveries
// and -recoverybackoff. GET /statsz reports pager, prefetch and IO
// counters, per-shard health and per-endpoint latency histograms; GET
// /healthz is the readiness probe (ok / degraded / 503 down-or-draining).
//
// The -faultshard/-faultreads and -netfault/-netfaultafter flags inject
// deterministic storage and network faults for chaos testing; they have
// no place in production.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"prtree"
	"prtree/internal/serve"
)

func main() {
	shards := flag.String("shards", "", "sharded index directory (required; see prtool shard)")
	bind := flag.String("bind", "127.0.0.1:9045", "binary-protocol listen address")
	httpBind := flag.String("http", "127.0.0.1:9046", "HTTP/JSON listen address (empty disables)")
	cache := flag.Int("cache", 0, "global page-cache budget in pages, split across shards (0 = unbounded)")
	policyName := flag.String("policy", "lru", "bounded-cache eviction policy: lru|s3fifo")
	prefetch := flag.Bool("prefetch", false, "enable structure-aware speculative read-ahead")
	useMmap := flag.Bool("mmap", false, "serve shard reads through read-only memory mappings")
	tenantCap := flag.Int("tenantcap", 0, "per-tenant in-flight request cap (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline for requests that carry none (0 = none)")
	maxDeadline := flag.Duration("maxdeadline", 0, "clamp on client-supplied deadlines (0 = no clamp)")
	connTimeout := flag.Duration("conntimeout", 0, "per-connection frame read/write deadline, the slow-loris guard (0 = none)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "how long graceful drain waits for in-flight requests")
	maxRecoveries := flag.Int("maxrecoveries", 5, "reopen attempts per quarantined shard before it is declared failed (negative = retry forever)")
	recoveryBackoff := flag.Duration("recoverybackoff", 100*time.Millisecond, "initial shard-recovery retry delay (doubles per attempt, capped)")
	faultShard := flag.Int("faultshard", 0, "chaos: shard index for -faultreads")
	faultReads := flag.Int64("faultreads", 0, "chaos: inject a read fault into shard -faultshard after N page reads (0 = off)")
	netFault := flag.String("netfault", "none", "chaos: network fault on the binary listener: none|reset|torn|stall|drip")
	netFaultAfter := flag.Int64("netfaultafter", 0, "chaos: response frames before the network fault fires")
	flag.Parse()

	if *shards == "" {
		fmt.Fprintln(os.Stderr, "prtreeserve: -shards is required (build one with prtool shard)")
		os.Exit(2)
	}
	policy, err := prtree.ParseEvictionPolicy(*policyName)
	if err != nil {
		fatal(err)
	}
	netFaultMode, err := serve.ParseNetFaultMode(*netFault)
	if err != nil {
		fatal(err)
	}

	set, err := serve.Open(*shards, serve.OpenOptions{
		CachePages:      *cache,
		Policy:          policy,
		Prefetch:        *prefetch,
		Mmap:            *useMmap,
		MaxRecoveries:   *maxRecoveries,
		RecoveryBackoff: *recoveryBackoff,
		FaultShard:      *faultShard,
		FaultReadsAfter: *faultReads,
	})
	if err != nil {
		fatal(err)
	}
	defer set.Close()

	srv := serve.New(serve.Config{
		Set:             set,
		TenantCap:       *tenantCap,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		ConnTimeout:     *connTimeout,
	})

	var wg sync.WaitGroup
	serveOn := func(name string, run func(net.Listener) error, lis net.Listener) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := run(lis); err != nil {
				fmt.Fprintf(os.Stderr, "prtreeserve: %s listener: %v\n", name, err)
			}
		}()
	}

	blis, err := net.Listen("tcp", *bind)
	if err != nil {
		fatal(err)
	}
	addr := blis.Addr()
	if netFaultMode != serve.NetFaultNone {
		fmt.Printf("prtreeserve: CHAOS — injecting %s network faults after %d frames\n", netFaultMode, *netFaultAfter)
		blis = serve.NewFaultyListener(blis, serve.NetFault{Mode: netFaultMode, After: *netFaultAfter})
	}
	serveOn("binary", srv.ServeBinary, blis)
	httpAddr := ""
	if *httpBind != "" {
		hlis, err := net.Listen("tcp", *httpBind)
		if err != nil {
			fatal(err)
		}
		httpAddr = hlis.Addr().String()
		serveOn("http", srv.ServeWeb, hlis)
	}

	fmt.Printf("prtreeserve: serving %d shards (%d items) from %s\n", set.Shards(), set.Len(), *shards)
	fmt.Printf("prtreeserve: binary %s  http %s\n", addr, orNone(httpAddr))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Printf("prtreeserve: %v — draining (in-flight requests finish, new ones rejected)\n", got)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "prtreeserve: drain: %v\n", err)
		os.Exit(1)
	}
	wg.Wait()
	if err := set.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("prtreeserve: drained cleanly")
}

func orNone(s string) string {
	if s == "" {
		return "(disabled)"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prtreeserve:", err)
	os.Exit(1)
}
