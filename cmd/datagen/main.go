// Command datagen writes the paper's datasets to disk as fixed 36-byte
// records (4 float64 coordinates + uint32 id, little endian) consumable by
// prtool, or as CSV for inspection.
//
// Usage:
//
//	datagen -kind tiger -n 100000 -out tiger.bin
//	datagen -kind size -param 0.01 -n 100000 -out size.csv -format csv
//
// Kinds: tiger, western, size, aspect, skewed, cluster, worstcase, uniform.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/storage"
)

func main() {
	kind := flag.String("kind", "tiger", "dataset kind: tiger|western|size|aspect|skewed|cluster|worstcase|uniform")
	n := flag.Int("n", 100000, "number of rectangles")
	param := flag.Float64("param", 0, "family parameter (size: max_side, aspect: a, skewed: c)")
	seed := flag.Int64("seed", 2004, "generator seed")
	out := flag.String("out", "", "output path (default stdout)")
	format := flag.String("format", "bin", "output format: bin|csv")
	flag.Parse()

	items, err := generate(*kind, *n, *param, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	switch *format {
	case "bin":
		buf := make([]byte, storage.ItemSize)
		for _, it := range items {
			storage.EncodeItem(buf, it)
			if _, err := bw.Write(buf); err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
		}
	case "csv":
		fmt.Fprintln(bw, "minx,miny,maxx,maxy,id")
		for _, it := range items {
			fmt.Fprintf(bw, "%g,%g,%g,%g,%d\n",
				it.Rect.MinX, it.Rect.MinY, it.Rect.MaxX, it.Rect.MaxY, it.ID)
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown format %q\n", *format)
		os.Exit(2)
	}
}

func generate(kind string, n int, param float64, seed int64) ([]geom.Item, error) {
	switch kind {
	case "tiger":
		return dataset.Eastern(n, seed), nil
	case "western":
		return dataset.Western(n, seed), nil
	case "size":
		if param <= 0 {
			param = 0.01
		}
		return dataset.Size(n, param, seed), nil
	case "aspect":
		if param <= 0 {
			param = 10
		}
		return dataset.Aspect(n, param, seed), nil
	case "skewed":
		c := int(param)
		if c <= 0 {
			c = 5
		}
		return dataset.Skewed(n, c, seed), nil
	case "cluster":
		return dataset.Cluster(n, dataset.ClusterOptions{}, seed), nil
	case "worstcase":
		return dataset.WorstCase(n, 113), nil
	case "uniform":
		if param <= 0 {
			param = 0.01
		}
		return dataset.Uniform(n, param, seed), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
