// Command prtool builds, persists, inspects and queries R-tree indexes
// from the command line.
//
// Usage:
//
//	prtool -in data.bin -loader PR stats
//	prtool -in data.bin query 0.1,0.1,0.2,0.2
//	prtool -in data.bin bench -queries 100 -area 0.01
//	prtool -in data.bin -index roads.pr create
//	prtool -index roads.pr stats|query x1,y1,x2,y2|bench
//
// Subcommands:
//
//	create  bulk-load -in into the on-disk index file -index (built once,
//	        queryable across process runs)
//	shard   partition -in into -shards trees (space- or Hilbert-ordered)
//	        and bulk-load them into the index directory -out, writing a
//	        manifest prtreeserve serves from
//	stats   print tree shape, utilization and build I/O
//	query   run one window query (x1,y1,x2,y2) and print matches
//	bench   run random square queries and report the paper's cost metric
//	fsck    verify every in-use page's checksum and the tree's structure
//	        (read-only; exits nonzero on the first corrupt page)
//	recover replay the write-ahead log if the file was not closed cleanly,
//	        report what was restored, and checkpoint so the log drains
//	compact force a full synchronous compaction of a dynamic index file
//	        (-index): merge the buffer and every logarithmic-method level
//	        into one static PR-tree, printing level occupancy and page
//	        counts before and after
//
// With -index and no -in, the index file is opened in place (no rebuild);
// with -in and no -index, the tree is built in memory as before.
//
// Exit codes: 0 ok; 1 operational failure (file could not be opened or
// read, I/O error); 2 usage error; 3 corruption found (checksum or
// structure verification failed, or the index/log is damaged beyond
// opening) — so scripts can tell "run fsck's repair path" from "the path
// was wrong".
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"prtree"
	"prtree/internal/serve"
	"prtree/internal/storage"
	"prtree/internal/workload"
)

func main() {
	in := flag.String("in", "", "input dataset (datagen -format bin)")
	index := flag.String("index", "", "on-disk index file (create writes it, other subcommands open it)")
	loaderName := flag.String("loader", "PR", "bulk loader: PR|H|H4|STR|TGS")
	layoutName := flag.String("layout", "raw", "page layout: raw|compressed")
	mem := flag.Int("mem", 0, "memory budget in records (0 = default)")
	queries := flag.Int("queries", 100, "bench: number of queries")
	area := flag.Float64("area", 0.01, "bench: query area fraction")
	seed := flag.Int64("seed", 1, "bench: query seed")
	limit := flag.Int("limit", 0, "query: stop after N matches (0 = all)")
	out := flag.String("out", "", "shard: output index directory")
	nshards := flag.Int("shards", 4, "shard: number of shards")
	partition := flag.String("partition", "hilbert", "shard: partitioning scheme: hilbert|grid")
	cache := flag.Int("cache", 0, "page-cache capacity in pages (0 = unbounded, -1 disables)")
	policyName := flag.String("policy", "lru", "bounded-cache eviction policy: lru|s3fifo")
	prefetch := flag.Bool("prefetch", false, "enable structure-aware speculative read-ahead")
	useMmap := flag.Bool("mmap", false, "serve file-backed reads through a read-only memory mapping")
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
	}
	loader, err := parseLoader(*loaderName)
	if err != nil {
		fatal(err)
	}
	layout, err := parseLayout(*layoutName)
	if err != nil {
		fatal(err)
	}
	policy, err := prtree.ParseEvictionPolicy(*policyName)
	if err != nil {
		fatal(err)
	}
	capacity := *cache
	if capacity < 0 {
		capacity = 0 // Options semantics: 0 disables, unset means unbounded
	} else if capacity == 0 {
		capacity = -1
	}
	opts := &prtree.Options{
		MemoryItems:   *mem,
		Layout:        layout,
		CacheCapacity: capacity,
		Eviction:      policy,
		Prefetch:      *prefetch,
		Mmap:          *useMmap,
	}

	if flag.Arg(0) == "shard" {
		if *in == "" || *out == "" {
			fmt.Fprintln(os.Stderr, "prtool: shard needs both -in and -out")
			os.Exit(2)
		}
		items, err := readItems(*in)
		if err != nil {
			fatal(err)
		}
		man, err := serve.Build(*out, items, serve.BuildOptions{
			Shards:      *nshards,
			Partition:   *partition,
			Loader:      loader,
			Layout:      layout,
			MemoryItems: *mem,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sharded %d items into %s (%s partition, loader %v):\n",
			man.Items, *out, man.Partition, loader)
		for i, si := range man.Shards {
			fmt.Printf("  shard %3d: %s (%d items)\n", i, si.File, si.Items)
		}
		return
	}

	if flag.Arg(0) == "create" {
		if *in == "" || *index == "" {
			fmt.Fprintln(os.Stderr, "prtool: create needs both -in and -index")
			os.Exit(2)
		}
		items, err := readItems(*in)
		if err != nil {
			fatal(err)
		}
		tree, err := prtree.Create(*index, opts)
		if err != nil {
			fatal(err)
		}
		if err := tree.BulkLoad(loader, items); err != nil {
			fatal(err)
		}
		buildIO := tree.IOStats()
		if err := tree.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("created %s: %d items with loader %v (%d reads, %d writes)\n",
			*index, len(items), loader, buildIO.Reads, buildIO.Writes)
		return
	}

	if flag.Arg(0) == "compact" {
		if *index == "" || *in != "" {
			fmt.Fprintln(os.Stderr, "prtool: compact needs -index (a dynamic index file) and no -in")
			os.Exit(2)
		}
		d, err := prtree.OpenDynamic(*index, opts)
		if err != nil {
			fatalOpen(err)
		}
		if ri := d.Recovery(); ri != nil {
			fmt.Printf("recovery: %s\n", ri)
		}
		printDynamicShape("before", d)
		if err := d.FlushE(); err != nil {
			fatal(err)
		}
		if err := d.Sync(); err != nil {
			fatal(err)
		}
		printDynamicShape("after", d)
		if err := d.CheckPages(); err != nil {
			fmt.Printf("checksums: FAILED: %v\n", err)
			os.Exit(exitCorrupt)
		}
		if err := d.Close(); err != nil {
			fatal(err)
		}
		return
	}

	var tree *prtree.Tree
	var buildIO prtree.IOStats
	switch {
	case *index != "" && *in != "":
		fmt.Fprintf(os.Stderr, "prtool: %s with both -in and -index is ambiguous; use create to build the index, then drop -in to open it\n", flag.Arg(0))
		os.Exit(2)
	case *index != "":
		tree, err = prtree.Open(*index, opts)
		if err != nil {
			fatalOpen(err)
		}
		defer tree.Close()
	case *in != "":
		items, err := readItems(*in)
		if err != nil {
			fatal(err)
		}
		tree = prtree.BulkWith(loader, items, opts)
		buildIO = tree.IOStats()
	default:
		usage()
	}

	switch flag.Arg(0) {
	case "stats":
		leaf, internal := tree.Utilization()
		if tree.Path() != "" {
			fmt.Printf("index:         %s (opened in place)\n", tree.Path())
		} else {
			fmt.Printf("loader:        %v\n", loader)
		}
		fmt.Printf("items:         %d\n", tree.Len())
		fmt.Printf("height:        %d\n", tree.Height())
		fmt.Printf("nodes:         %d\n", tree.Nodes())
		fmt.Printf("leaf fill:     %.2f%%\n", 100*leaf)
		fmt.Printf("internal fill: %.2f%%\n", 100*internal)
		if tree.Path() == "" {
			fmt.Printf("build I/O:     %d reads, %d writes (incl. staging the input file)\n",
				buildIO.Reads, buildIO.Writes)
		}
		if err := tree.Validate(); err != nil {
			fmt.Printf("VALIDATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("validation:    ok")
		printCache(tree)
	case "query":
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "prtool: query needs x1,y1,x2,y2")
			os.Exit(2)
		}
		rect, err := parseRect(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		var st prtree.QueryStats
		q := prtree.Window(rect).WithStats(&st).WithLimit(*limit)
		for it := range tree.Iter(q) {
			fmt.Printf("%d\t%g,%g,%g,%g\n", it.ID, it.Rect.MinX, it.Rect.MinY, it.Rect.MaxX, it.Rect.MaxY)
		}
		fmt.Printf("# %d results, %d leaf blocks, %d nodes visited\n",
			st.Results, st.LeavesVisited, st.NodesVisited)
	case "bench":
		world := tree.MBR()
		qs := workload.Squares(world, *area, *queries, *seed)
		tree.ResetIOStats()
		var leaves, results int
		for _, q := range qs {
			var st prtree.QueryStats
			if err := tree.Run(prtree.Window(q).WithStats(&st), nil); err != nil {
				fatal(err)
			}
			leaves += st.LeavesVisited
			results += st.Results
		}
		// Close first: it drains the prefetch worker pool, so the I/O and
		// cache counters below are settled (the deferred Close is a no-op).
		if err := tree.Close(); err != nil {
			fatal(err)
		}
		io := tree.IOStats()
		fmt.Printf("queries:      %d squares of %.2f%% area\n", *queries, *area*100)
		fmt.Printf("avg T:        %.1f\n", float64(results)/float64(*queries))
		fmt.Printf("avg leaf I/O: %.1f\n", float64(leaves)/float64(*queries))
		if results > 0 {
			pct := 100 * float64(leaves) / (float64(results) / float64(tree.Fanout()))
			fmt.Printf("cost:         %.1f%% of T/B\n", pct)
		}
		fmt.Printf("block I/O:    %d demand reads, %d prefetch reads\n", io.Reads, io.PrefetchReads)
		printCache(tree)
	case "fsck":
		if tree.Path() == "" {
			fmt.Fprintln(os.Stderr, "prtool: fsck needs -index (an on-disk file to scrub)")
			os.Exit(2)
		}
		if ri := tree.Recovery(); ri != nil {
			fmt.Printf("recovery:  %s\n", ri)
		} else {
			fmt.Println("recovery:  clean open, nothing to replay")
		}
		if err := tree.CheckPages(); err != nil {
			fmt.Printf("checksums: FAILED: %v\n", err)
			os.Exit(exitCorrupt)
		}
		fmt.Println("checksums: ok (every in-use page verified)")
		if err := tree.Validate(); err != nil {
			fmt.Printf("structure: FAILED: %v\n", err)
			os.Exit(exitCorrupt)
		}
		fmt.Println("structure: ok")
	case "recover":
		if tree.Path() == "" {
			fmt.Fprintln(os.Stderr, "prtool: recover needs -index (an on-disk file to recover)")
			os.Exit(2)
		}
		// Open already replayed the log; report what it did, then Close
		// checkpoints, leaving the file clean and the log empty.
		if ri := tree.Recovery(); ri != nil {
			fmt.Printf("recovery: %s\n", ri)
		} else {
			fmt.Println("recovery: clean open, nothing to replay")
		}
		fmt.Printf("items:    %d\n", tree.Len())
		if err := tree.Validate(); err != nil {
			fmt.Printf("structure: FAILED: %v\n", err)
			os.Exit(exitCorrupt)
		}
		if err := tree.Sync(); err != nil {
			fatal(err)
		}
		fmt.Println("checkpointed: recovered state persisted, log truncated")
	default:
		fmt.Fprintf(os.Stderr, "prtool: unknown subcommand %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

// printDynamicShape prints a dynamic index's level occupancy and page
// accounting, labelled so compact's before/after pair reads as a diff.
func printDynamicShape(label string, d *prtree.Dynamic) {
	total, inUse := d.PageCounts()
	fmt.Printf("%s: %d items (buffer %d, base %d)\n", label, d.Len(), d.BufferLen(), d.Base())
	sizes := d.LevelSizes()
	occupied := 0
	for k, sz := range sizes {
		if sz == 0 {
			continue
		}
		occupied++
		fmt.Printf("%s:   level %2d: %d items\n", label, k, sz)
	}
	if occupied == 0 {
		fmt.Printf("%s:   no occupied levels\n", label)
	}
	fmt.Printf("%s: pages %d in use of %d allocated\n", label, inUse, total)
}

// printCache reports the pager's cache behavior: the active eviction
// policy and capacity plus the hit/miss/eviction (and prefetch) counters
// accumulated so far in this process.
func printCache(tree *prtree.Tree) {
	cs := tree.CacheStats()
	capStr := "unbounded"
	switch {
	case cs.Capacity == 0:
		capStr = "disabled"
	case cs.Capacity > 0:
		capStr = fmt.Sprintf("%d pages", cs.Capacity)
	}
	fmt.Printf("cache:        policy=%s capacity=%s\n", cs.Policy, capStr)
	fmt.Printf("              hits=%d misses=%d evictions=%d (hit rate %.1f%%)\n",
		cs.Hits, cs.Misses, cs.Evictions, 100*cs.HitRatio())
	if cs.PrefetchIssued > 0 || cs.PrefetchUsed > 0 {
		fmt.Printf("              prefetch issued=%d used=%d\n", cs.PrefetchIssued, cs.PrefetchUsed)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: prtool -in data.bin [-loader PR] stats|query x1,y1,x2,y2|bench
       prtool -in data.bin -index file.pr create
       prtool -in data.bin -out dir -shards N [-partition hilbert|grid] shard
       prtool -index file.pr stats|query x1,y1,x2,y2|bench|fsck|recover
       prtool -index file.pr compact   (dynamic index files only)`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prtool:", err)
	os.Exit(1)
}

// exitCorrupt is the "corruption found" exit code, distinct from plain
// operational failure (1) and usage errors (2).
const exitCorrupt = 3

// fatalOpen reports a failed index open, classifying damaged-file errors
// (bad magic, bad version, checksum mismatch, truncation, corrupt WAL)
// as corruption so callers can script fsck/recover runs.
func fatalOpen(err error) {
	fmt.Fprintln(os.Stderr, "prtool:", err)
	for _, sentinel := range []error{
		prtree.ErrChecksum, prtree.ErrBadMagic, prtree.ErrBadVersion,
		prtree.ErrTruncated, prtree.ErrWALCorrupt,
	} {
		if errors.Is(err, sentinel) {
			os.Exit(exitCorrupt)
		}
	}
	os.Exit(1)
}

func parseLoader(s string) (prtree.Loader, error) {
	switch strings.ToUpper(s) {
	case "PR":
		return prtree.PR, nil
	case "H":
		return prtree.Hilbert, nil
	case "H4":
		return prtree.Hilbert4D, nil
	case "STR":
		return prtree.STR, nil
	case "TGS":
		return prtree.TGS, nil
	default:
		return 0, fmt.Errorf("unknown loader %q", s)
	}
}

func parseLayout(s string) (prtree.PageLayout, error) {
	switch strings.ToLower(s) {
	case "raw", "":
		return prtree.LayoutRaw, nil
	case "compressed":
		return prtree.LayoutCompressed, nil
	default:
		return 0, fmt.Errorf("unknown layout %q", s)
	}
}

func parseRect(s string) (prtree.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return prtree.Rect{}, fmt.Errorf("rect needs 4 comma-separated numbers, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return prtree.Rect{}, err
		}
		v[i] = f
	}
	return prtree.NewRect(v[0], v[1], v[2], v[3]), nil
}

func readItems(path string) ([]prtree.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var items []prtree.Item
	buf := make([]byte, storage.ItemSize)
	for {
		_, err := io.ReadFull(f, buf)
		if err == io.EOF {
			return items, nil
		}
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		items = append(items, storage.DecodeItem(buf))
	}
}
