// Command prtool builds an index over a datagen binary file and inspects
// or queries it from the command line.
//
// Usage:
//
//	prtool -in data.bin -loader PR stats
//	prtool -in data.bin -loader H4 query 0.1,0.1,0.2,0.2
//	prtool -in data.bin bench -queries 100 -area 0.01
//
// Subcommands:
//
//	stats   print tree shape, utilization and build I/O
//	query   run one window query (x1,y1,x2,y2) and print matches
//	bench   run random square queries and report the paper's cost metric
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"prtree/internal/bulk"
	"prtree/internal/geom"
	"prtree/internal/storage"
	"prtree/internal/workload"
)

func main() {
	in := flag.String("in", "", "input dataset (datagen -format bin)")
	loaderName := flag.String("loader", "PR", "bulk loader: PR|H|H4|STR|TGS")
	mem := flag.Int("mem", 0, "memory budget in records (0 = default)")
	queries := flag.Int("queries", 100, "bench: number of queries")
	area := flag.Float64("area", 0.01, "bench: query area fraction")
	seed := flag.Int64("seed", 1, "bench: query seed")
	flag.Parse()

	if *in == "" || flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: prtool -in data.bin [-loader PR] stats|query x1,y1,x2,y2|bench")
		os.Exit(2)
	}
	loader, err := parseLoader(*loaderName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prtool:", err)
		os.Exit(2)
	}
	items, err := readItems(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prtool:", err)
		os.Exit(1)
	}

	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, -1)
	file := storage.NewItemFileFrom(disk, items)
	disk.ResetStats()
	tree := bulk.Load(loader, pager, file, bulk.Options{MemoryItems: *mem})
	buildIO := disk.Stats()

	switch flag.Arg(0) {
	case "stats":
		leaf, internal := tree.Utilization()
		fmt.Printf("loader:        %v\n", loader)
		fmt.Printf("items:         %d\n", tree.Len())
		fmt.Printf("height:        %d\n", tree.Height())
		fmt.Printf("nodes:         %d\n", tree.Nodes())
		fmt.Printf("leaf fill:     %.2f%%\n", 100*leaf)
		fmt.Printf("internal fill: %.2f%%\n", 100*internal)
		fmt.Printf("build I/O:     %d reads, %d writes\n", buildIO.Reads, buildIO.Writes)
		if err := tree.Validate(); err != nil {
			fmt.Printf("VALIDATION FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("validation:    ok")
	case "query":
		if flag.NArg() < 2 {
			fmt.Fprintln(os.Stderr, "prtool: query needs x1,y1,x2,y2")
			os.Exit(2)
		}
		q, err := parseRect(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "prtool:", err)
			os.Exit(2)
		}
		st := tree.Query(q, func(it geom.Item) bool {
			fmt.Printf("%d\t%g,%g,%g,%g\n", it.ID, it.Rect.MinX, it.Rect.MinY, it.Rect.MaxX, it.Rect.MaxY)
			return true
		})
		fmt.Printf("# %d results, %d leaf blocks, %d nodes visited\n",
			st.Results, st.LeavesVisited, st.NodesVisited)
	case "bench":
		world := tree.MBR()
		qs := workload.Squares(world, *area, *queries, *seed)
		var leaves, results int
		for _, q := range qs {
			st := tree.QueryCount(q)
			leaves += st.LeavesVisited
			results += st.Results
		}
		fanout := tree.Config().Fanout
		fmt.Printf("queries:      %d squares of %.2f%% area\n", *queries, *area*100)
		fmt.Printf("avg T:        %.1f\n", float64(results)/float64(*queries))
		fmt.Printf("avg leaf I/O: %.1f\n", float64(leaves)/float64(*queries))
		if results > 0 {
			pct := 100 * float64(leaves) / (float64(results) / float64(fanout))
			fmt.Printf("cost:         %.1f%% of T/B\n", pct)
		}
	default:
		fmt.Fprintf(os.Stderr, "prtool: unknown subcommand %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

func parseLoader(s string) (bulk.Loader, error) {
	switch strings.ToUpper(s) {
	case "PR":
		return bulk.LoaderPR, nil
	case "H":
		return bulk.LoaderHilbert, nil
	case "H4":
		return bulk.LoaderHilbert4D, nil
	case "STR":
		return bulk.LoaderSTR, nil
	case "TGS":
		return bulk.LoaderTGS, nil
	default:
		return 0, fmt.Errorf("unknown loader %q", s)
	}
}

func parseRect(s string) (geom.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geom.Rect{}, fmt.Errorf("rect needs 4 comma-separated numbers, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geom.Rect{}, err
		}
		v[i] = f
	}
	return geom.NewRect(v[0], v[1], v[2], v[3]), nil
}

func readItems(path string) ([]geom.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var items []geom.Item
	buf := make([]byte, storage.ItemSize)
	for {
		_, err := io.ReadFull(f, buf)
		if err == io.EOF {
			return items, nil
		}
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		items = append(items, storage.DecodeItem(buf))
	}
}
