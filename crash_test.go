package prtree

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prtree/internal/storage"
)

// The crash-recovery property test: run a mutation workload against a
// file-backed tree, kill the process (via the backend's deterministic
// crash points) at EVERY persistence step — every WAL record append,
// fsync, page write and header rewrite — reopen, and require that the
// recovered index validates and answers every query exactly like one of
// the workload's committed states. A crash must never surface a torn
// mix of two transactions.

// crashItems builds a deterministic item set in the unit square.
func crashItems(r *rand.Rand, n, idBase int) []Item {
	items := make([]Item, n)
	for i := range items {
		x, y := r.Float64(), r.Float64()
		items[i] = Item{
			Rect: NewRect(x, y, x+0.02*r.Float64(), y+0.02*r.Float64()),
			ID:   uint32(idBase + i),
		}
	}
	return items
}

// crashDigest fingerprints the tree's entire query surface: windows,
// point, containment, kNN and batch results, in result order.
func crashDigest(t *testing.T, tr *Tree) uint32 {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	windows := []Rect{
		NewRect(0.1, 0.1, 0.4, 0.4),
		NewRect(0.5, 0.5, 0.9, 0.9),
		NewRect(0.25, 0.6, 0.35, 0.95),
		NewRect(0, 0, 1, 1),
		NewRect(0.42, 0.13, 0.58, 0.27),
	}
	var sb strings.Builder
	dump := func(kind string, items []Item) {
		fmt.Fprintf(&sb, "%s:%d;", kind, len(items))
		for _, it := range items {
			fmt.Fprintf(&sb, "%d,%v;", it.ID, it.Rect)
		}
	}
	for _, q := range windows {
		dump("w", tr.Search(q))
		dump("c", tr.SearchContained(q))
	}
	dump("p", tr.SearchPoint(0.33, 0.44))
	dump("p", tr.SearchPoint(0.71, 0.18))
	for _, nn := range [][]Neighbor{tr.NearestNeighbors(0.2, 0.8, 10), tr.NearestNeighbors(0.9, 0.1, 10)} {
		fmt.Fprintf(&sb, "n:%d;", len(nn))
		for _, n := range nn {
			fmt.Fprintf(&sb, "%d,%v,%g;", n.Item.ID, n.Item.Rect, n.Dist2)
		}
	}
	for _, res := range tr.SearchBatch(windows, 3) {
		dump("b", res)
	}
	return crc32.ChecksumIEEE([]byte(sb.String()))
}

// crashWorkload applies the deterministic mutation sequence: a bulk load,
// single-item inserts and deletes, and a transactional rebuild. afterTx,
// when non-nil, is called after every committed transaction.
func crashWorkload(tr *Tree, afterTx func()) {
	r := rand.New(rand.NewSource(7))
	base := crashItems(r, 180, 0)
	step := func() {
		if afterTx != nil {
			afterTx()
		}
	}
	if err := tr.BulkLoad(PR, base); err != nil {
		panic(err)
	}
	step()
	extra := crashItems(r, 6, 1000)
	for _, it := range extra {
		tr.Insert(it)
		step()
	}
	for _, it := range []Item{base[3], base[77], extra[2]} {
		tr.Delete(it)
		step()
	}
	if err := tr.BulkLoad(Hilbert, crashItems(r, 120, 2000)); err != nil {
		panic(err)
	}
	step()
	for _, it := range crashItems(r, 3, 3000) {
		tr.Insert(it)
		step()
	}
}

// copyCrashFiles clones a page file and its WAL sidecar.
func copyCrashFiles(t *testing.T, from, to string) {
	t.Helper()
	for _, suffix := range []string{"", ".wal"} {
		data, err := os.ReadFile(from + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(to+suffix, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// crashBackend digs the FileBackend out of a tree's decorator chain.
func crashBackend(t *testing.T, tr *Tree) *storage.FileBackend {
	t.Helper()
	fb, ok := storage.AsFile(tr.io)
	if !ok {
		t.Fatal("file-backed tree has no FileBackend")
	}
	return fb
}

func TestCrashRecoveryEveryBoundary(t *testing.T) {
	dir := t.TempDir()
	opts := &Options{BlockSize: 512}

	// Pristine empty index every crash run starts from.
	pristine := filepath.Join(dir, "pristine.pr")
	tr, err := Create(pristine, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference run: record the digest of every committed state.
	refPath := filepath.Join(dir, "ref.pr")
	copyCrashFiles(t, pristine, refPath)
	ref, err := Open(refPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	committed := make(map[uint32]int) // digest -> first tx index it appeared
	committed[crashDigest(t, ref)] = 0
	txIndex := 0
	crashWorkload(ref, func() {
		txIndex++
		d := crashDigest(t, ref)
		if _, seen := committed[d]; !seen {
			committed[d] = txIndex
		}
	})
	finalDigest := crashDigest(t, ref)
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Dry run: count the persistence steps the workload + close spend.
	dryPath := filepath.Join(dir, "dry.pr")
	copyCrashFiles(t, pristine, dryPath)
	dry, err := Open(dryPath, opts)
	if err != nil {
		t.Fatal(err)
	}
	dfb := crashBackend(t, dry)
	start := dfb.PersistSteps()
	crashWorkload(dry, nil)
	if err := dry.Close(); err != nil {
		t.Fatal(err)
	}
	totalSteps := dfb.PersistSteps() - start
	if totalSteps < 20 {
		t.Fatalf("workload spent only %d persistence steps; instrumentation broken?", totalSteps)
	}
	t.Logf("workload: %d persistence steps, %d distinct committed states", totalSteps, len(committed))

	// Kill at every boundary. Each iteration replays the workload against
	// a fresh copy with the crash point armed k steps in, then reopens
	// and checks the recovered index is exactly one committed state.
	workPath := filepath.Join(dir, "crash.pr")
	for k := int64(1); k <= totalSteps; k++ {
		copyCrashFiles(t, pristine, workPath)
		victim, err := Open(workPath, opts)
		if err != nil {
			t.Fatalf("step %d: open: %v", k, err)
		}
		fb := crashBackend(t, victim)
		fb.SetCrashAfterSteps(fb.PersistSteps() + k)

		crashed := func() (crashed bool) {
			defer func() {
				if r := recover(); r != nil {
					err, ok := r.(error)
					if !ok || !errors.Is(err, storage.ErrInjectedFault) {
						t.Fatalf("step %d: panic %v, want ErrInjectedFault", k, r)
					}
					crashed = true
				}
			}()
			crashWorkload(victim, nil)
			if err := victim.Close(); err != nil {
				if !errors.Is(err, storage.ErrInjectedFault) {
					t.Fatalf("step %d: close: %v", k, err)
				}
				return true
			}
			return false
		}()
		if crashed {
			fb.Abandon() // the "process" is dead; drop its descriptors
		}

		re, err := Open(workPath, opts)
		if err != nil {
			t.Fatalf("step %d: reopen after crash: %v", k, err)
		}
		d := crashDigest(t, re)
		if crashed {
			if _, ok := committed[d]; !ok {
				t.Fatalf("step %d: recovered state matches no committed state (recovery: %v)",
					k, re.Recovery())
			}
		} else if d != finalDigest {
			t.Fatalf("step %d: uncrashed run diverged from the reference", k)
		}
		if err := re.CheckPages(); err != nil {
			t.Fatalf("step %d: checksum scrub after recovery: %v", k, err)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("step %d: close reopened: %v", k, err)
		}
	}
}

// TestCrashRecoveryReporting: the facade surfaces what recovery did.
func TestCrashRecoveryReporting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.pr")
	opts := &Options{BlockSize: 512}
	tr, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(PR, crashItems(rand.New(rand.NewSource(1)), 50, 0)); err != nil {
		t.Fatal(err)
	}
	if tr.Recovery() != nil {
		t.Errorf("fresh tree reports recovery: %+v", tr.Recovery())
	}
	// Die without checkpointing: the bulk load lives only in the WAL state.
	crashBackend(t, tr).Abandon()

	re, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	ri := re.Recovery()
	if ri == nil || ri.ReplayedTxs == 0 {
		t.Fatalf("Recovery() = %+v, want replayed transactions", ri)
	}
	if re.Len() != 50 {
		t.Errorf("recovered tree has %d items, want 50", re.Len())
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	// Cleanly closed now: the next open is quiet.
	re2, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Recovery() != nil {
		t.Errorf("clean reopen reports recovery: %+v", re2.Recovery())
	}
}

// TestCheckPagesFlippedByte: the facade-level scrub catches a flipped
// byte with a wrapped inspectable error, per the acceptance criterion.
func TestCheckPagesFlippedByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flip.pr")
	opts := &Options{BlockSize: 512}
	tr, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(PR, crashItems(rand.New(rand.NewSource(2)), 80, 0)); err != nil {
		t.Fatal(err)
	}
	// Pick a leaf that is not the root: Open only sanity-checks the root
	// structurally, so the flip must be caught by the checksum scrub alone.
	var target PageID
	root := tr.inner.Root()
	tr.inner.Walk(func(page PageID, level int, isLeaf bool, entries []Item) {
		if isLeaf && page != root && target == 0 {
			target = page
		}
	})
	if target == 0 {
		t.Fatal("no non-root leaf to corrupt")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the target page's data area (slot = 512 + 8).
	off := 512 + int64(target)*(512+8) + 40
	var orig [1]byte
	if _, err := f.ReadAt(orig[:], off); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{orig[0] ^ 0x01}, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open after non-root flip: %v", err)
	}
	defer crashBackend(t, re).Abandon()
	if err := re.CheckPages(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("CheckPages = %v, want wrapped ErrChecksum", err)
	}
}
