package prtree

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/workload"
)

// TestCrossPolicyEquivalence is the I/O tier's end-to-end correctness
// gate: one index file, reopened under every combination of page layout,
// read path (plain file, mmap), eviction policy and prefetch, at a sweep
// of cache capacities from pathological (1 page) to unbounded. Query
// results must be bit-identical to the plain-file/lru/no-prefetch
// reference everywhere — caching and speculation are pure performance
// knobs — and within each configuration the demand read count must be
// identical with prefetch on and off (speculative I/O is accounted
// separately and must never perturb the paper's block-I/O numbers).
func TestCrossPolicyEquivalence(t *testing.T) {
	for _, layout := range []PageLayout{LayoutRaw, LayoutCompressed} {
		t.Run(fmt.Sprintf("layout=%v", layout), func(t *testing.T) {
			items := dataset.Western(4000, 17)
			path := filepath.Join(t.TempDir(), "equiv.pr")
			base, err := Create(path, &Options{Layout: layout})
			if err != nil {
				t.Fatal(err)
			}
			if err := base.BulkLoad(PR, items); err != nil {
				t.Fatal(err)
			}
			if err := base.Close(); err != nil {
				t.Fatal(err)
			}

			world := geom.ItemsMBR(items)
			queries := workload.Squares(world, 0.01, 25, 18)

			run := func(opts *Options) ([][]Item, uint64) {
				tree, err := Open(path, opts)
				if err != nil {
					t.Fatalf("open %+v: %v", opts, err)
				}
				var results [][]Item
				for _, q := range queries {
					got, err := tree.Collect(Window(q))
					if err != nil {
						t.Fatalf("collect under %+v: %v", opts, err)
					}
					results = append(results, got)
				}
				// Close drains the prefetch pool so the counters are settled.
				if err := tree.Close(); err != nil {
					t.Fatalf("close under %+v: %v", opts, err)
				}
				return results, tree.IOStats().Reads
			}

			for _, capacity := range []int{1, 2, 3, 8, 32, -1} {
				ref, _ := run(&Options{CacheCapacity: capacity, Eviction: EvictLRU})
				for _, mmap := range []bool{false, true} {
					for _, policy := range []EvictionPolicy{EvictLRU, EvictS3FIFO} {
						var demandOff uint64
						for _, prefetch := range []bool{false, true} {
							got, reads := run(&Options{
								CacheCapacity: capacity,
								Eviction:      policy,
								Prefetch:      prefetch,
								Mmap:          mmap,
							})
							if !reflect.DeepEqual(got, ref) {
								t.Fatalf("cap=%d mmap=%v policy=%v prefetch=%v: query results diverge from reference",
									capacity, mmap, policy, prefetch)
							}
							if prefetch {
								if reads != demandOff {
									t.Fatalf("cap=%d mmap=%v policy=%v: demand reads %d with prefetch, %d without — must be identical",
										capacity, mmap, policy, reads, demandOff)
								}
							} else {
								demandOff = reads
							}
						}
					}
				}
			}
		})
	}
}
