package prtree

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"prtree/internal/bulk"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/storage"
	"prtree/internal/workload"
)

func randItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = Item{Rect: NewRect(x, y, x+rng.Float64()*0.02, y+rng.Float64()*0.02), ID: uint32(i)}
	}
	return items
}

func TestBulkAndSearch(t *testing.T) {
	items := randItems(5000, 1)
	tree := Bulk(items, nil)
	if tree.Len() != 5000 {
		t.Fatalf("len = %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 25; i++ {
		q := NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		want := 0
		for _, it := range items {
			if q.Intersects(it.Rect) {
				want++
			}
		}
		if got := tree.Search(q); len(got) != want {
			t.Fatalf("query %d: got %d, want %d", i, len(got), want)
		}
	}
}

func TestAllPublicLoaders(t *testing.T) {
	items := randItems(1000, 3)
	for _, l := range []Loader{PR, Hilbert, Hilbert4D, STR, TGS} {
		tree := BulkWith(l, items, &Options{Fanout: 16, MemoryItems: 4096})
		if tree.Len() != 1000 {
			t.Fatalf("%v: len = %d", l, tree.Len())
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("%v: %v", l, err)
		}
	}
}

func TestQueryEarlyStopAndStats(t *testing.T) {
	tree := Bulk(randItems(2000, 4), &Options{Fanout: 16})
	count := 0
	st := tree.Query(NewRect(0, 0, 1.1, 1.1), func(Item) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop at %d", count)
	}
	if st.Results != 10 {
		t.Errorf("stats results = %d", st.Results)
	}
}

func TestInsertDelete(t *testing.T) {
	tree := Bulk(randItems(500, 5), &Options{Fanout: 8})
	extra := Item{Rect: NewRect(0.4, 0.4, 0.5, 0.5), ID: 99999}
	tree.Insert(extra)
	if tree.Len() != 501 {
		t.Fatalf("len = %d", tree.Len())
	}
	found := false
	for _, it := range tree.Search(extra.Rect) {
		if it.ID == extra.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted item not found")
	}
	if !tree.Delete(extra) {
		t.Fatal("delete failed")
	}
	if tree.Delete(extra) {
		t.Fatal("double delete succeeded")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIOStatsAndPinning(t *testing.T) {
	tree := BulkWith(PR, randItems(5000, 6), &Options{CacheCapacity: 1})
	pinned := tree.PinInternal()
	if pinned == 0 {
		t.Fatal("no internal nodes pinned")
	}
	tree.ResetIOStats()
	st := tree.Query(NewRect(0.2, 0.2, 0.4, 0.4), nil)
	io := tree.IOStats()
	if io.Writes != 0 {
		t.Errorf("query wrote %d blocks", io.Writes)
	}
	if int(io.Reads) != st.LeavesVisited {
		t.Errorf("reads %d != leaves %d with pinned internals", io.Reads, st.LeavesVisited)
	}
}

func TestTreeMetadata(t *testing.T) {
	items := randItems(3000, 7)
	tree := Bulk(items, nil)
	if tree.Height() < 1 || tree.Nodes() < 1 {
		t.Errorf("height=%d nodes=%d", tree.Height(), tree.Nodes())
	}
	mbr := tree.MBR()
	for _, it := range items {
		if !mbr.Contains(it.Rect) {
			t.Fatal("MBR misses item")
		}
	}
	leaf, _ := tree.Utilization()
	if leaf < 0.9 {
		t.Errorf("leaf utilization %.2f", leaf)
	}
	got := tree.Items()
	if len(got) != len(items) {
		t.Errorf("Items() = %d", len(got))
	}
}

func TestDynamicIndex(t *testing.T) {
	d := NewDynamic(&Options{Fanout: 16, MemoryItems: 4096})
	items := randItems(800, 8)
	for _, it := range items {
		d.Insert(it)
	}
	if d.Len() != 800 {
		t.Fatalf("len = %d", d.Len())
	}
	for _, it := range items[:300] {
		if !d.Delete(it) {
			t.Fatal("delete failed")
		}
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		q := NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		want := 0
		for _, it := range items[300:] {
			if q.Intersects(it.Rect) {
				want++
			}
		}
		if got := d.Search(q); len(got) != want {
			t.Fatalf("dynamic query: got %d, want %d", len(got), want)
		}
	}
	d.Flush()
	if d.Len() != 500 {
		t.Errorf("len after flush = %d", d.Len())
	}
	if d.IOStats().Total() == 0 {
		t.Error("dynamic index recorded no I/O")
	}
	d.ResetIOStats()
	if d.IOStats().Total() != 0 {
		t.Error("reset failed")
	}
}

func TestRStarUpdateHeuristic(t *testing.T) {
	items := randItems(800, 12)
	tree := BulkWith(PR, items, &Options{Fanout: 16, Update: RStar})
	extra := randItems(300, 13)
	for i := range extra {
		extra[i].ID += 20000
		tree.Insert(extra[i])
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	all := append(append([]Item{}, items...), extra...)
	q := NewRect(0.1, 0.1, 0.7, 0.7)
	want := 0
	for _, it := range all {
		if q.Intersects(it.Rect) {
			want++
		}
	}
	if got := tree.Search(q); len(got) != want {
		t.Fatalf("R* tree query: got %d, want %d", len(got), want)
	}
}

func TestNilAndZeroOptions(t *testing.T) {
	a := Bulk(randItems(100, 10), nil)
	b := Bulk(randItems(100, 10), &Options{})
	if a.Height() != b.Height() || a.Nodes() != b.Nodes() {
		t.Error("nil and zero options should agree")
	}
}

func TestSearchPointAndContained(t *testing.T) {
	items := randItems(2000, 14)
	tree := Bulk(items, &Options{Fanout: 16})
	x, y := 0.5, 0.5
	wantPoint := 0
	for _, it := range items {
		if it.Rect.ContainsPoint(x, y) {
			wantPoint++
		}
	}
	if got := tree.SearchPoint(x, y); len(got) != wantPoint {
		t.Errorf("SearchPoint: got %d, want %d", len(got), wantPoint)
	}
	q := NewRect(0.2, 0.2, 0.8, 0.8)
	wantCont := 0
	for _, it := range items {
		if q.Contains(it.Rect) {
			wantCont++
		}
	}
	if got := tree.SearchContained(q); len(got) != wantCont {
		t.Errorf("SearchContained: got %d, want %d", len(got), wantCont)
	}
}

func TestNearestNeighborsPublic(t *testing.T) {
	items := randItems(1000, 15)
	tree := Bulk(items, &Options{Fanout: 16})
	ns := tree.NearestNeighbors(0.5, 0.5, 7)
	if len(ns) != 7 {
		t.Fatalf("kNN returned %d", len(ns))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i].Dist2 < ns[i-1].Dist2 {
			t.Fatal("kNN results not sorted")
		}
	}
}

func TestSaveLoadPublic(t *testing.T) {
	items := randItems(1500, 16)
	tree := Bulk(items, &Options{Fanout: 16})
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tree.Len() || got.Height() != tree.Height() {
		t.Fatalf("metadata mismatch after load")
	}
	q := NewRect(0.3, 0.3, 0.6, 0.6)
	a, b := tree.Search(q), got.Search(q)
	if len(a) != len(b) {
		t.Fatalf("loaded tree query: %d vs %d", len(b), len(a))
	}
	// The loaded tree accepts updates.
	got.Insert(Item{Rect: NewRect(0.9, 0.9, 0.95, 0.95), ID: 70000})
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSearchBatchMatchesSequentialFig12 is the facade-level equivalence
// test on the Fig12 workload shape (PR-loaded TIGER-like data, square
// window queries, internal nodes pinned): SearchBatch and QueryBatch must
// return exactly the sequential results and stats at every worker count,
// and the aggregate block-I/O of a cold-cache batch must be bit-identical
// to a cold-cache sequential run.
func TestSearchBatchMatchesSequentialFig12(t *testing.T) {
	// Raise GOMAXPROCS so the pool fans out even on single-CPU machines
	// (workers are clamped to GOMAXPROCS).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	items := dataset.Western(20000, 5)
	world := geom.ItemsMBR(items)
	// Two nontrivial accounting regimes: capacity 0 with pinned internals is
	// the paper's measurement mode (every leaf visit is one disk read), and
	// the unbounded default with a cold cache charges each distinct page
	// once through the single-flight miss path.
	for _, capacity := range []int{-1, 0} {
		// The facade treats CacheCapacity 0 as "default" (unbounded), so
		// build the capacity-0 pager explicitly for the paper's
		// nothing-cached measurement mode.
		counting := storage.NewCounting(storage.NewDisk(storage.DefaultBlockSize))
		pager := storage.NewPager(counting, capacity)
		inner := bulk.FromItems(bulk.LoaderPR, pager, items, bulk.Options{})
		tree := &Tree{inner: inner, pager: pager, io: counting}
		queries := workload.Squares(world, 0.01, 60, 6)
		coldStart := func() {
			tree.inner.Pager().DropCache()
			if capacity == 0 {
				tree.PinInternal()
			}
			tree.ResetIOStats()
		}

		coldStart()
		wantResults := make([][]Item, len(queries))
		wantStats := make([]QueryStats, len(queries))
		for i, q := range queries {
			wantResults[i] = tree.Search(q)
			wantStats[i] = tree.Query(q, nil)
		}
		serialIO := tree.IOStats()
		if serialIO.Reads == 0 {
			t.Fatalf("cap=%d: serial baseline did no disk reads; the identity check would be vacuous", capacity)
		}

		for _, workers := range []int{1, 2, 4, 8} {
			coldStart()
			gotResults := tree.SearchBatch(queries, workers)
			gotStats := tree.QueryBatch(queries, workers)
			batchIO := tree.IOStats()

			for i := range queries {
				if gotStats[i] != wantStats[i] {
					t.Fatalf("cap=%d workers=%d query %d: stats %+v, want %+v",
						capacity, workers, i, gotStats[i], wantStats[i])
				}
				if len(gotResults[i]) != len(wantResults[i]) {
					t.Fatalf("cap=%d workers=%d query %d: %d results, want %d",
						capacity, workers, i, len(gotResults[i]), len(wantResults[i]))
				}
				for j := range gotResults[i] {
					if gotResults[i][j] != wantResults[i][j] {
						t.Fatalf("cap=%d workers=%d query %d: result %d differs", capacity, workers, i, j)
					}
				}
			}
			// Both intervals start cold and perform the same page accesses
			// (SearchBatch cold, QueryBatch re-reading), so the aggregate
			// must match the serial interval exactly.
			if batchIO.Reads != serialIO.Reads {
				t.Fatalf("cap=%d workers=%d: aggregate reads %d, want %d (bit-identical to serial)",
					capacity, workers, batchIO.Reads, serialIO.Reads)
			}
		}
	}
}

// TestConcurrentIOStatsDuringBatch reads and resets the I/O counters while
// a batch runs — the counter race the lock-striped pager and atomic disk
// stats fix. Run under -race in CI.
func TestConcurrentIOStatsDuringBatch(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	items := randItems(8000, 21)
	tree := Bulk(items, nil)
	queries := make([]Rect, 64)
	rng := rand.New(rand.NewSource(22))
	for i := range queries {
		x, y := rng.Float64(), rng.Float64()
		queries[i] = NewRect(x, y, x+0.2, y+0.2)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			tree.QueryBatch(queries, 8)
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			_ = tree.IOStats()
			tree.ResetIOStats()
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tree := Bulk(nil, nil)
	if tree.Len() != 0 {
		t.Errorf("len = %d", tree.Len())
	}
	if got := tree.Search(NewRect(0, 0, 1, 1)); len(got) != 0 {
		t.Errorf("empty search = %v", got)
	}
}
