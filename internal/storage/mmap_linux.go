//go:build linux

package storage

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared, so pwrites through
// the same file are observed by the mapping. A zero-length file maps to
// nil (every read falls back to preads).
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return data, nil
}

func unmapFile(data []byte) {
	_ = syscall.Munmap(data)
}
