package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"testing"
)

// --- Counting: the accounting contract of the raw-speed I/O tier ---

func TestCountingSpeculativeReadsAreNotDemandReads(t *testing.T) {
	d := NewDisk(64)
	ids := make([]PageID, 4)
	for i := range ids {
		ids[i] = d.Alloc()
		d.Write(ids[i], bytes.Repeat([]byte{byte(i + 1)}, 64))
	}
	c := NewCounting(d)
	c.ResetStats()

	bufs := make([][]byte, len(ids))
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	c.ReadBlocksSpeculative(ids, bufs)
	for i, id := range ids {
		want := make([]byte, 64)
		d.Read(id, want)
		if !bytes.Equal(bufs[i], want) {
			t.Errorf("speculative read of page %d returned wrong bytes", id)
		}
	}
	d.ResetStats() // drop the comparison reads just made

	st := c.Stats()
	if st.PrefetchReads != uint64(len(ids)) {
		t.Errorf("PrefetchReads = %d, want %d", st.PrefetchReads, len(ids))
	}
	if st.Reads != 0 {
		t.Errorf("speculative reads leaked into Reads: %d", st.Reads)
	}
	if st.Total() != 0 {
		t.Errorf("Total() = %d includes speculative reads; they are overlap, not cost", st.Total())
	}
}

func TestCountingReadBlocksCountsDemandReads(t *testing.T) {
	d := NewDisk(64)
	ids := []PageID{d.Alloc(), d.Alloc(), d.Alloc()}
	c := NewCounting(d)
	c.ResetStats()
	bufs := [][]byte{make([]byte, 64), make([]byte, 64), make([]byte, 64)}
	c.ReadBlocks(ids, bufs)
	if st := c.Stats(); st.Reads != 3 || st.PrefetchReads != 0 {
		t.Errorf("ReadBlocks stats = %+v, want 3 demand reads", st)
	}
}

func TestCountingAccountDemandReads(t *testing.T) {
	d := NewDisk(64)
	c := NewCounting(d)
	c.ResetStats()
	d.ResetStats()
	c.AccountDemandReads(5)
	if st := c.Stats(); st.Reads != 5 {
		t.Errorf("Counting.Reads = %d, want 5", st.Reads)
	}
	if st := d.Stats(); st.Reads != 5 {
		t.Errorf("inner Disk.Reads = %d, want 5 (charge must forward down the chain)", st.Reads)
	}
}

// TestPrefetchDemandIdentity is the core invariant of the prefetch design:
// at every capacity and policy, enabling prefetch changes neither the
// demand-read count nor the cache hit/miss/eviction counters — staged
// pages live outside the cache and only enter it when a demand miss
// consumes them, charged as the read they replaced.
func TestPrefetchDemandIdentity(t *testing.T) {
	const pages = 64
	d := NewDisk(64)
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = d.Alloc()
		d.Write(ids[i], []byte{byte(i)})
	}
	// A deterministic access trace with reuse and scans.
	rng := rand.New(rand.NewSource(42))
	trace := make([]PageID, 0, 2000)
	for len(trace) < 2000 {
		if rng.Intn(3) == 0 { // scan burst
			s := rng.Intn(pages - 8)
			for k := 0; k < 8; k++ {
				trace = append(trace, ids[s+k])
			}
		} else { // hot set
			trace = append(trace, ids[rng.Intn(8)])
		}
	}

	type outcome struct {
		reads, hits, misses, evictions uint64
	}
	run := func(capacity int, pol EvictionPolicy, prefetch bool) outcome {
		c := NewCounting(d)
		p := NewPagerWith(c, PagerOptions{Capacity: capacity, Policy: pol, Prefetch: prefetch})
		for i, id := range trace {
			if prefetch && i%7 == 0 {
				// Hint a window of upcoming pages, like a traversal would.
				end := i + 5
				if end > len(trace) {
					end = len(trace)
				}
				p.Prefetch(trace[i:end])
			}
			p.Read(id)
		}
		p.Close()
		cs := p.CacheStats()
		return outcome{c.Stats().Reads, cs.Hits, cs.Misses, cs.Evictions}
	}

	for _, capacity := range []int{-1, 0, 1, 2, 7, 16, pages} {
		for _, pol := range []EvictionPolicy{EvictLRU, EvictS3FIFO} {
			base := run(capacity, pol, false)
			got := run(capacity, pol, true)
			if got != base {
				t.Errorf("cap=%d policy=%v: prefetch on %+v != off %+v", capacity, pol, got, base)
			}
		}
	}
}

// --- FileBackend.ReadBlocks: batched reads must match per-page reads ---

func TestFileReadBlocksMatchesPerPageReads(t *testing.T) {
	fb, err := CreateFile(tempIndex(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	const n = 40
	ids := make([]PageID, n)
	for i := range ids {
		ids[i] = fb.Alloc()
		fb.Write(ids[i], bytes.Repeat([]byte{byte(i + 1)}, 50+i))
	}
	// Shuffle so the batch exercises both run-grouping and singletons,
	// and leave one allocated-but-unwritten page (reads as zeros).
	blank := fb.Alloc()
	rng := rand.New(rand.NewSource(7))
	batch := append([]PageID{}, ids...)
	rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
	batch = append(batch, blank)

	bufs := make([][]byte, len(batch))
	for i := range bufs {
		bufs[i] = make([]byte, 256)
	}
	fb.ReadBlocks(batch, bufs)
	for i, id := range batch {
		want := make([]byte, 256)
		fb.Read(id, want)
		if !bytes.Equal(bufs[i], want) {
			t.Errorf("batched read of page %d diverges from Read", id)
		}
	}
}

func TestFileReadBlocksShortBuffers(t *testing.T) {
	fb, err := CreateFile(tempIndex(t), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	a, b := fb.Alloc(), fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{0xaa}, 128))
	fb.Write(b, bytes.Repeat([]byte{0xbb}, 128))
	short := make([]byte, 16)
	full := make([]byte, 128)
	fb.ReadBlocks([]PageID{a, b}, [][]byte{short, full})
	if !bytes.Equal(short, bytes.Repeat([]byte{0xaa}, 16)) {
		t.Error("short buffer not filled with the page prefix")
	}
	if !bytes.Equal(full, bytes.Repeat([]byte{0xbb}, 128)) {
		t.Error("full buffer wrong")
	}
}

func TestFileReadBlocksSeesTxOverlay(t *testing.T) {
	fb, err := CreateFile(tempIndex(t), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	a, b := fb.Alloc(), fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{1}, 128))
	fb.Write(b, bytes.Repeat([]byte{2}, 128))
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}

	fb.Begin()
	fb.Write(a, bytes.Repeat([]byte{9}, 128))
	bufs := [][]byte{make([]byte, 128), make([]byte, 128)}
	fb.ReadBlocks([]PageID{a, b}, bufs)
	if bufs[0][0] != 9 {
		t.Errorf("in-tx batched read of overlaid page sees %d, want 9", bufs[0][0])
	}
	if bufs[1][0] != 2 {
		t.Errorf("in-tx batched read of clean page sees %d, want 2", bufs[1][0])
	}
	fb.Rollback()
	fb.ReadBlocks([]PageID{a}, bufs[:1])
	if bufs[0][0] != 1 {
		t.Errorf("post-rollback batched read sees %d, want 1", bufs[0][0])
	}
}

func TestFileReadBlocksChecksumPanic(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	id := fb.Alloc()
	fb.Write(id, bytes.Repeat([]byte{5}, 128))
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	corruptPageByte(t, path, 128, id)
	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Abandon()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("batched read of a corrupt page did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrChecksum) {
			t.Fatalf("panic %v, want ErrChecksum", r)
		}
	}()
	re.ReadBlocks([]PageID{id}, [][]byte{make([]byte, 128)})
}

// --- MmapBackend ---

func newMmapFixture(t *testing.T, blockSize, pages int) (*MmapBackend, []PageID) {
	t.Helper()
	fb, err := CreateFile(tempIndex(t), blockSize)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = fb.Alloc()
		fb.Write(ids[i], bytes.Repeat([]byte{byte(i + 1)}, blockSize))
	}
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	m, err := NewMmap(fb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m, ids
}

func TestMmapReadsMatchFileReads(t *testing.T) {
	m, ids := newMmapFixture(t, 256, 10)
	for _, id := range ids {
		got := make([]byte, 256)
		m.Read(id, got)
		want := make([]byte, 256)
		m.Unwrap().Read(id, want)
		if !bytes.Equal(got, want) {
			t.Errorf("mmap Read of page %d diverges", id)
		}
		if sv, ok := m.ReadStable(id); ok && !bytes.Equal(sv, want) {
			t.Errorf("stable view of page %d diverges", id)
		}
	}
	bufs := make([][]byte, len(ids))
	for i := range bufs {
		bufs[i] = make([]byte, 256)
	}
	m.ReadBlocks(ids, bufs)
	for i, id := range ids {
		want := make([]byte, 256)
		m.Unwrap().Read(id, want)
		if !bytes.Equal(bufs[i], want) {
			t.Errorf("mmap batched read of page %d diverges", id)
		}
	}
}

func TestMmapWriteCoherence(t *testing.T) {
	m, ids := newMmapFixture(t, 128, 3)
	id := ids[1]
	if _, ok := m.ReadStable(id); !ok && m.Mapped() > int(id) {
		t.Fatal("expected a stable view before the write")
	}
	m.Write(id, bytes.Repeat([]byte{0x7e}, 128))
	got := make([]byte, 128)
	m.Read(id, got)
	if !bytes.Equal(got, bytes.Repeat([]byte{0x7e}, 128)) {
		t.Fatal("read after write returned stale bytes")
	}
	if sv, ok := m.ReadStable(id); ok && !bytes.Equal(sv, got) {
		t.Error("stable view is stale after the write (verify bit not cleared or mapping incoherent)")
	}
}

func TestMmapStableViewsSuspendedDuringTx(t *testing.T) {
	m, ids := newMmapFixture(t, 128, 3)
	m.Begin()
	if _, ok := m.ReadStable(ids[0]); ok {
		t.Error("stable view served during an open transaction")
	}
	// Ordinary reads must still work and see the overlay.
	m.Write(ids[0], bytes.Repeat([]byte{3}, 128))
	got := make([]byte, 128)
	m.Read(ids[0], got)
	if got[0] != 3 {
		t.Errorf("in-tx read sees %d, want overlay 3", got[0])
	}
	m.Rollback()
	if m.Mapped() > 0 {
		if _, ok := m.ReadStable(ids[0]); !ok {
			t.Error("stable views did not resume after the transaction")
		}
	}
}

func TestMmapGrowthNeedsRemap(t *testing.T) {
	m, ids := newMmapFixture(t, 128, 2)
	before := m.Mapped()
	id := m.Alloc()
	m.Write(id, bytes.Repeat([]byte{0x42}, 128))
	// The new page is beyond the mapping until a Sync (or Remap).
	got := make([]byte, 128)
	m.Read(id, got)
	if got[0] != 0x42 {
		t.Fatalf("read of page beyond the mapping = %d, want 0x42 via file fallback", got[0])
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if m.Mapped() <= before && m.Mapped() != 0 {
		t.Errorf("mapping did not grow after Sync: %d -> %d pages", before, m.Mapped())
	}
	m.Read(ids[0], got)
	if got[0] != 1 {
		t.Errorf("old page unreadable after remap: %d", got[0])
	}
}

func TestMmapChecksumVerifiedOnce(t *testing.T) {
	blockSize := 128
	path := tempIndex(t)
	fb, err := CreateFile(path, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	id := fb.Alloc()
	fb.Write(id, bytes.Repeat([]byte{6}, blockSize))
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	corruptPageByte(t, path, blockSize, id)
	m, err := OpenMmap(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Abandon()
	if m.Mapped() == 0 {
		t.Skip("no mapping on this platform")
	}
	func() {
		defer func() {
			r := recover()
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrChecksum) {
				t.Fatalf("stable read of corrupt page: panic %v, want ErrChecksum", r)
			}
		}()
		m.ReadStable(id)
		t.Fatal("stable read of corrupt page did not panic")
	}()
}

// Abandon releases the mmap wrapper without the header rewrite Close does
// (mirrors FileBackend.Abandon for tests holding corrupt files).
func (m *MmapBackend) Abandon() {
	m.fb.Abandon()
}

// corruptPageByte flips one data byte of page id in a closed index file.
func corruptPageByte(t *testing.T, path string, blockSize int, id PageID) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	slot := int64(blockSize + pageTrailerSize)
	off := int64(blockSize) + int64(id)*slot + 10
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
