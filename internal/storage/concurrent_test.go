package storage

import (
	"sync"
	"testing"

	"prtree/internal/geom"
)

// TestDiskConcurrentProducers hammers Alloc/Write/ReadNoCopy/Free from
// many goroutines — the access pattern of the parallel bulk-load pipeline
// (run under -race in CI). Counter totals and page accounting must come
// out exactly as if the operations had run serially.
func TestDiskConcurrentProducers(t *testing.T) {
	const (
		workers   = 8
		perWorker = 200
	)
	d := NewDisk(256)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			ids := make([]PageID, 0, perWorker)
			buf := make([]byte, 256)
			for i := 0; i < perWorker; i++ {
				id := d.Alloc()
				buf[0] = byte(w)
				buf[1] = byte(i)
				d.Write(id, buf)
				ids = append(ids, id)
			}
			for i, id := range ids {
				got := d.ReadNoCopy(id)
				if got[0] != byte(w) || got[1] != byte(i) {
					t.Errorf("worker %d page %d corrupted: % x", w, i, got[:2])
					return
				}
			}
			for _, id := range ids[:perWorker/2] {
				d.Free(id)
			}
		}(w)
	}
	wg.Wait()
	st := d.Stats()
	if st.Writes != workers*perWorker || st.Reads != workers*perWorker {
		t.Errorf("stats %v, want %d writes and reads", st, workers*perWorker)
	}
	// Frees interleave with other workers' allocations, so pages may be
	// reused; the net in-use count is exact, the high-water mark bounded.
	if d.PagesInUse() != workers*perWorker/2 {
		t.Errorf("PagesInUse = %d, want %d", d.PagesInUse(), workers*perWorker/2)
	}
	if n := d.NumPages(); n < d.PagesInUse() || n > workers*perWorker {
		t.Errorf("NumPages = %d outside [%d, %d]", n, d.PagesInUse(), workers*perWorker)
	}
}

// TestItemFilesConcurrentAppend writes many files concurrently on one disk
// — each file has a single owner, the disk is shared — and verifies every
// file round-trips and the freelist reuses pages across Free/Alloc.
func TestItemFilesConcurrentAppend(t *testing.T) {
	const files = 6
	d := NewDisk(DefaultBlockSize)
	per := ItemsPerBlock(DefaultBlockSize)
	n := per*3 + 7
	var wg sync.WaitGroup
	wg.Add(files)
	for fi := 0; fi < files; fi++ {
		go func(fi int) {
			defer wg.Done()
			f := NewItemFile(d)
			for i := 0; i < n; i++ {
				f.Append(geom.Item{Rect: geom.NewRect(float64(fi), float64(i), float64(fi)+1, float64(i)+1), ID: uint32(fi*1000 + i)})
			}
			f.Seal()
			got := f.ReadAll()
			for i, it := range got {
				if it.ID != uint32(fi*1000+i) {
					t.Errorf("file %d record %d: id %d", fi, i, it.ID)
					return
				}
			}
			f.Free()
		}(fi)
	}
	wg.Wait()
	if d.PagesInUse() != 0 {
		t.Errorf("%d pages leaked", d.PagesInUse())
	}
}
