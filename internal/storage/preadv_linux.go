//go:build linux

package storage

import (
	"os"
	"syscall"
	"unsafe"
)

// preadvSupported gates the vectored-read fast path in ReadBlocks.
const preadvSupported = true

// preadvFull reads into the iovec list from f at offset off using the
// preadv(2) syscall, retrying on EINTR and continuing after partial reads
// until the list is full or EOF. It returns the total bytes read and
// whether the vectored path succeeded; ok=false means the caller must fall
// back to ordinary preads (nothing is guaranteed about buffer contents).
func preadvFull(f *os.File, iovs [][]byte, off int64) (int, bool) {
	total := 0
	want := 0
	for _, iov := range iovs {
		want += len(iov)
	}
	// remaining views advance across partial reads without copying.
	rem := make([][]byte, len(iovs))
	copy(rem, iovs)
	for total < want {
		for len(rem) > 0 && len(rem[0]) == 0 {
			rem = rem[1:]
		}
		if len(rem) == 0 {
			break
		}
		vecs := make([]syscall.Iovec, len(rem))
		for i, b := range rem {
			vecs[i].Base = &b[0]
			vecs[i].SetLen(len(b))
		}
		cur := off + int64(total)
		// The raw syscall takes the offset split into low/high halves; on
		// 64-bit the low word carries the whole offset and the kernel
		// shifts the high word out of range.
		n, _, errno := syscall.Syscall6(syscall.SYS_PREADV,
			f.Fd(),
			uintptr(unsafe.Pointer(&vecs[0])),
			uintptr(len(vecs)),
			uintptr(cur),
			uintptr(uint64(cur)>>32),
			0)
		if errno == syscall.EINTR || errno == syscall.EAGAIN {
			continue
		}
		if errno != 0 {
			return 0, false
		}
		if n == 0 {
			break // EOF
		}
		got := int(n)
		total += got
		for got > 0 {
			if got >= len(rem[0]) {
				got -= len(rem[0])
				rem = rem[1:]
			} else {
				rem[0] = rem[0][got:]
				got = 0
			}
		}
	}
	return total, true
}
