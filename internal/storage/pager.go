package storage

import "container/list"

// Pager mediates page reads through an LRU cache with a pin set. It models
// the paper's query-time buffer: all internal R-tree nodes are pinned so
// the reported query cost is the number of leaf blocks fetched.
//
// The cache is read-only: writers go directly to the Disk. Writing through
// the pager refreshes the cached copy.
//
// Alongside the byte cache the pager keeps a decoded-page cache: consumers
// that materialize an in-memory form of a page (e.g. an R-tree node) may
// memoize it with StoreDecoded and recover it with Decoded. Decoded values
// never substitute for Read — callers still Read first, so hit/miss and
// block-I/O accounting are unaffected — they only skip re-parsing bytes
// already resident. Entries are dropped whenever the bytes they were parsed
// from change or leave the cache: on Write, Invalidate, DropCache and LRU
// eviction.
type Pager struct {
	disk     *Disk
	capacity int // max unpinned cached pages; <0 means unbounded
	lru      *list.List
	entries  map[PageID]*list.Element
	pinned   map[PageID][]byte
	decoded  map[PageID]interface{}

	hits   uint64
	misses uint64
}

type cacheEntry struct {
	id   PageID
	data []byte
}

// NewPager returns a pager over disk whose LRU holds at most capacity
// unpinned pages. capacity 0 disables unpinned caching entirely;
// a negative capacity means "unbounded".
func NewPager(disk *Disk, capacity int) *Pager {
	return &Pager{
		disk:     disk,
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[PageID]*list.Element),
		pinned:   make(map[PageID][]byte),
		decoded:  make(map[PageID]interface{}),
	}
}

// Disk returns the underlying device.
func (p *Pager) Disk() *Disk { return p.disk }

// Read returns the contents of page id, fetching from disk (and counting
// one block read) only on a cache miss. The returned slice is shared with
// the cache and must be treated as read-only.
func (p *Pager) Read(id PageID) []byte {
	if data, ok := p.pinned[id]; ok {
		p.hits++
		return data
	}
	if el, ok := p.entries[id]; ok {
		p.hits++
		p.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).data
	}
	p.misses++
	data := make([]byte, p.disk.BlockSize())
	p.disk.Read(id, data)
	if p.capacity != 0 {
		el := p.lru.PushFront(&cacheEntry{id: id, data: data})
		p.entries[id] = el
		p.evict()
	}
	return data
}

// Pin loads page id (counting a read if absent from the cache) and keeps it
// resident until Unpin. Pinned pages never count as query I/O after the pin.
func (p *Pager) Pin(id PageID) {
	if _, ok := p.pinned[id]; ok {
		return
	}
	if el, ok := p.entries[id]; ok {
		ce := el.Value.(*cacheEntry)
		p.lru.Remove(el)
		delete(p.entries, id)
		p.pinned[id] = ce.data
		return
	}
	data := make([]byte, p.disk.BlockSize())
	p.disk.Read(id, data)
	p.pinned[id] = data
}

// Unpin releases a pinned page. The page leaves the cache entirely (it is
// not demoted to the LRU), so its decoded entry goes with it. It is a no-op
// for unpinned pages.
func (p *Pager) Unpin(id PageID) {
	if _, ok := p.pinned[id]; !ok {
		return
	}
	delete(p.pinned, id)
	delete(p.decoded, id)
}

// Decoded returns the memoized decoded form of page id, if any. A hit
// guarantees the value was stored against the bytes currently cached for
// the page (writes and invalidations drop it).
func (p *Pager) Decoded(id PageID) (interface{}, bool) {
	v, ok := p.decoded[id]
	return v, ok
}

// StoreDecoded memoizes the decoded form of page id. The entry is kept only
// while the page's bytes are resident (pinned or in the LRU): tying decoded
// lifetime to byte residency keeps memory proportional to the configured
// cache capacity, and a capacity-0 pager stays cache-free as configured.
func (p *Pager) StoreDecoded(id PageID, v interface{}) {
	if _, ok := p.pinned[id]; !ok {
		if _, ok := p.entries[id]; !ok {
			return
		}
	}
	p.decoded[id] = v
}

// Write stores data to page id on disk and refreshes any cached copy. The
// decoded entry, parsed from the overwritten bytes, is dropped; callers
// writing an already-materialized form may StoreDecoded it again.
func (p *Pager) Write(id PageID, data []byte) {
	delete(p.decoded, id)
	p.disk.Write(id, data)
	if pd, ok := p.pinned[id]; ok {
		copy(pd, data)
		for i := len(data); i < len(pd); i++ {
			pd[i] = 0
		}
		return
	}
	if el, ok := p.entries[id]; ok {
		cd := el.Value.(*cacheEntry).data
		copy(cd, data)
		for i := len(data); i < len(cd); i++ {
			cd[i] = 0
		}
	}
}

// Invalidate drops any cached copy of page id (bytes and decoded form)
// without touching the disk.
func (p *Pager) Invalidate(id PageID) {
	delete(p.decoded, id)
	delete(p.pinned, id)
	if el, ok := p.entries[id]; ok {
		p.lru.Remove(el)
		delete(p.entries, id)
	}
}

// DropCache empties the LRU, the pin set and the decoded cache.
func (p *Pager) DropCache() {
	p.lru.Init()
	p.entries = make(map[PageID]*list.Element)
	p.pinned = make(map[PageID][]byte)
	p.decoded = make(map[PageID]interface{})
}

// HitRate returns cache hits and misses since construction.
func (p *Pager) HitRate() (hits, misses uint64) { return p.hits, p.misses }

// CachedPages returns the number of resident pages (pinned + LRU).
func (p *Pager) CachedPages() int { return len(p.pinned) + p.lru.Len() }

func (p *Pager) evict() {
	if p.capacity < 0 {
		return
	}
	for p.lru.Len() > p.capacity {
		el := p.lru.Back()
		ce := el.Value.(*cacheEntry)
		p.lru.Remove(el)
		delete(p.entries, ce.id)
		delete(p.decoded, ce.id)
	}
}
