package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Pager mediates page reads through a page cache with a pin set. It models
// the paper's query-time buffer: all internal R-tree nodes are pinned so
// the reported query cost is the number of leaf blocks fetched.
//
// The cache is read-only: writers go directly to the Disk. Writing through
// the pager refreshes the cached copy.
//
// Alongside the byte cache the pager keeps a decoded-page cache: consumers
// that materialize an in-memory form of a page (e.g. an R-tree node) may
// memoize it with StoreDecoded and recover it with Decoded. Decoded values
// never substitute for Read — callers still Read first, so hit/miss and
// block-I/O accounting are unaffected — they only skip re-parsing bytes
// already resident. Entries are dropped whenever the bytes they were parsed
// from change or leave the cache: on Write, Invalidate, DropCache and
// eviction.
//
// # Concurrency
//
// A Pager is safe for use by many concurrent readers (Read, Pin lookups,
// Decoded, HitRate, CachedPages): the cache is lock-striped across
// power-of-two shards keyed by page id, and the hit/miss counters are
// atomic. A cache miss uses a single-flight protocol — the first goroutine
// to miss a page installs an in-flight entry, releases the shard lock,
// performs the one disk read and publishes the bytes; concurrent readers of
// the same page count a hit and wait for the fill. Consequently both the
// hit/miss tallies and the disk's block-read counter are exactly what a
// serial execution of the same page accesses would produce, which is what
// keeps QueryBatch's aggregate block-I/O bit-identical to serial runs.
//
// Writers (Write, Invalidate, Unpin, DropCache) are individually safe to
// call, but mutating the underlying pages while queries read them is a
// higher-level contract violation — rtree.Tree documents that updates
// require exclusive access.
//
// Two cache regimes exist. Unbounded (capacity < 0, the production default)
// and disabled (capacity 0) pagers never evict, so striping cannot change
// which accesses hit: serial accounting is bit-identical to the previous
// global-LRU implementation, and Figures 9-12 are unaffected. A bounded
// pager (capacity > 0) needs a global eviction order to keep its documented
// exact eviction sequence, so it runs as a single shard under one lock —
// still safe under concurrency, but serialized; bounded caches exist for
// cache-pressure work (the cachesweep experiment, ablations), not the
// unbounded throughput path. Bounded eviction is pluggable via
// PagerOptions.Policy: exact LRU (the default, byte-for-byte the historical
// order) or S3-FIFO (small/main/ghost queues, scan-resistant).
//
// # Prefetch
//
// With PagerOptions.Prefetch enabled (and a backend implementing
// SpeculativeReader), Prefetch(ids) hands hint batches to a small worker
// pool that fetches them speculatively — via the backend's batched
// ReadBlocksSpeculative, one vectored syscall per consecutive run on the
// file backend — into a bounded staging area outside the cache proper.
// Staging, not caching, is what keeps the paper's accounting honest: the
// cache's content and eviction sequence remain exactly those of a
// no-prefetch run at any capacity and policy, because a staged page enters
// the cache only at the moment a demand miss consumes it, at which point
// the miss is counted and one demand read is charged through the
// DemandAccounter chain (no physical I/O — the bytes are already here).
// Speculative fetches themselves are tallied apart as Stats.PrefetchReads.
// Demand misses that find a fetch in flight wait for it (single-flight
// dedup) instead of issuing a duplicate read.
type Pager struct {
	dev      Backend
	capacity int // max unpinned cached pages; <0 means unbounded, 0 disables
	policy   EvictionPolicy
	shards   []pagerShard
	mask     uint32

	stable StableReader    // non-nil when dev offers zero-copy stable views
	acct   DemandAccounter // non-nil when dev can be charged promoted reads
	pf     *prefetcher     // non-nil when prefetch is enabled

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	pfUsed    atomic.Uint64
}

// EvictionPolicy selects how a bounded pager chooses eviction victims.
type EvictionPolicy uint8

const (
	// EvictLRU is the exact global least-recently-used order the pager has
	// always used; bounded-cache accounting is byte-identical to it.
	EvictLRU EvictionPolicy = iota
	// EvictS3FIFO is the S3-FIFO policy (Yang et al., HotOS'23): a small
	// probationary FIFO absorbs one-hit wonders, a main FIFO with lazy
	// promotion holds the working set, and a ghost queue of recently
	// evicted probationary ids readmits pages that prove themselves —
	// scan-resistant where LRU lets a bulk sweep flush hot internal nodes.
	EvictS3FIFO
)

// String implements fmt.Stringer.
func (e EvictionPolicy) String() string {
	switch e {
	case EvictLRU:
		return "lru"
	case EvictS3FIFO:
		return "s3fifo"
	}
	return fmt.Sprintf("policy(%d)", uint8(e))
}

// ParseEvictionPolicy maps the tool-facing names onto policies.
func ParseEvictionPolicy(s string) (EvictionPolicy, error) {
	switch s {
	case "lru":
		return EvictLRU, nil
	case "s3fifo":
		return EvictS3FIFO, nil
	}
	return 0, fmt.Errorf("storage: unknown eviction policy %q (want lru or s3fifo)", s)
}

// PagerOptions configures NewPagerWith beyond the capacity knob.
type PagerOptions struct {
	// Capacity bounds unpinned cached pages: <0 unbounded, 0 disables
	// caching, >0 exact bounded cache.
	Capacity int
	// Policy selects the bounded-cache eviction policy; unbounded and
	// disabled caches never evict, so it only matters when Capacity > 0.
	Policy EvictionPolicy
	// Prefetch enables the speculative read-ahead machinery. It requires a
	// backend implementing SpeculativeReader (all in-tree backends do);
	// otherwise Prefetch hints are ignored.
	Prefetch bool
	// PrefetchWorkers sizes the prefetch worker pool; 0 means default (2).
	PrefetchWorkers int
}

// pagerShardCount is the stripe width for unbounded and capacity-0 pagers.
// It must be a power of two (the shard index is id & mask).
const pagerShardCount = 16

type pagerShard struct {
	mu      sync.RWMutex
	evict   evictor // victim order over entries; non-nil only when bounded
	entries map[PageID]*cacheEntry
	pinned  map[PageID][]byte
	// stablePins marks pinned pages whose bytes are zero-copy stable views
	// (mmap): coherent with Writes on their own and never written through.
	stablePins map[PageID]struct{}
	decoded    map[PageID]interface{}
}

// cacheEntry is one unpinned cached page. In bounded pagers data is always
// filled under the shard lock and the evictor tracks its position. In
// unbounded pagers an entry may be in flight: ready is closed once data is
// published, and readers that found the entry wait on it off-lock.
type cacheEntry struct {
	id     PageID
	data   []byte
	stable bool          // data is a zero-copy stable view; never write into it
	ready  chan struct{} // nil in bounded shards (filled synchronously)

	// Evictor state (bounded shards only): the entry's position in the
	// policy's queue (LRU list, or the s3fifo queue named by s3Queue) and
	// the s3fifo saturating access counter.
	elem    *list.Element
	s3Queue uint8
	s3Freq  uint8
}

// NewPager returns a pager over a backend whose cache holds at most
// capacity unpinned pages. capacity 0 disables unpinned caching entirely;
// a negative capacity means "unbounded". The eviction policy is LRU and
// prefetch is off; use NewPagerWith for the full option surface.
func NewPager(dev Backend, capacity int) *Pager {
	return NewPagerWith(dev, PagerOptions{Capacity: capacity})
}

// NewPagerWith returns a pager configured by opt.
func NewPagerWith(dev Backend, opt PagerOptions) *Pager {
	nshards := pagerShardCount
	if opt.Capacity > 0 {
		// A bounded cache keeps an exact global eviction order, which a
		// striped cache cannot provide; it runs as a single shard.
		nshards = 1
	}
	p := &Pager{
		dev:      dev,
		capacity: opt.Capacity,
		policy:   opt.Policy,
		shards:   make([]pagerShard, nshards),
		mask:     uint32(nshards - 1),
	}
	if sr, ok := dev.(StableReader); ok {
		p.stable = sr
	}
	if da, ok := dev.(DemandAccounter); ok {
		p.acct = da
	}
	for i := range p.shards {
		s := &p.shards[i]
		if opt.Capacity > 0 {
			switch opt.Policy {
			case EvictS3FIFO:
				s.evict = newS3FIFO(opt.Capacity)
			default:
				s.evict = newLRUEvictor()
			}
		}
		s.entries = make(map[PageID]*cacheEntry)
		s.pinned = make(map[PageID][]byte)
		s.stablePins = make(map[PageID]struct{})
		s.decoded = make(map[PageID]interface{})
	}
	if opt.Prefetch {
		if sr, ok := dev.(SpeculativeReader); ok {
			workers := opt.PrefetchWorkers
			if workers <= 0 {
				workers = defaultPrefetchWorkers
			}
			p.pf = newPrefetcher(p, sr, workers)
		}
	}
	return p
}

func (p *Pager) shard(id PageID) *pagerShard { return &p.shards[uint32(id)&p.mask] }

// Backend returns the underlying device.
func (p *Pager) Backend() Backend { return p.dev }

// Policy returns the configured eviction policy.
func (p *Pager) Policy() EvictionPolicy { return p.policy }

// PrefetchEnabled reports whether Prefetch hints are acted upon.
func (p *Pager) PrefetchEnabled() bool { return p.pf != nil }

// Close releases the pager's background resources (the prefetch worker
// pool); the pager must not be used after Close. Pagers without prefetch
// need no Close, which keeps every historical call site valid.
func (p *Pager) Close() {
	if p.pf != nil {
		p.pf.close()
	}
}

// Disk returns the underlying in-memory Disk when the backend is (or
// wraps) one, and nil otherwise.
//
// Deprecated: use Backend; Disk exists for simulator-specific tests.
func (p *Pager) Disk() *Disk { d, _ := AsDisk(p.dev); return d }

// fetchDemand obtains page id's bytes for a counted demand miss, in cost
// order: consume a staged prefetched copy (charging the demand read the
// paper's accounting expects, with no physical I/O), take a zero-copy
// stable view, or fall back to an allocated buffer filled by one Read.
func (p *Pager) fetchDemand(id PageID) (data []byte, stable bool) {
	if p.pf != nil {
		if d, ok := p.pf.take(id); ok {
			if p.acct != nil {
				p.acct.AccountDemandReads(1)
			}
			p.pfUsed.Add(1)
			return d, false
		}
	}
	if p.stable != nil {
		if d, ok := p.stable.ReadStable(id); ok {
			return d, true
		}
	}
	d := make([]byte, p.dev.BlockSize())
	p.dev.Read(id, d)
	return d, false
}

// Read returns the contents of page id, fetching from disk (and counting
// one block read) only on a cache miss. The returned slice is shared with
// the cache and must be treated as read-only.
func (p *Pager) Read(id PageID) []byte {
	if p.capacity > 0 {
		return p.readBounded(id)
	}
	return p.readStriped(id)
}

// readBounded is the single-shard exact-order read path of bounded pagers.
func (p *Pager) readBounded(id PageID) []byte {
	s := &p.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	if data, ok := s.pinned[id]; ok {
		p.hits.Add(1)
		return data
	}
	if ce, ok := s.entries[id]; ok {
		p.hits.Add(1)
		s.evict.touch(ce)
		return ce.data
	}
	p.misses.Add(1)
	data, stable := p.fetchDemand(id)
	ce := &cacheEntry{id: id, data: data, stable: stable}
	s.evict.insert(ce)
	s.entries[id] = ce
	p.evictLocked(s)
	return data
}

// readStriped is the lock-striped read path of unbounded and capacity-0
// pagers. Hits take only a shard read-lock; misses single-flight the fill.
func (p *Pager) readStriped(id PageID) []byte {
	s := p.shard(id)
	for {
		s.mu.RLock()
		if data, ok := s.pinned[id]; ok {
			s.mu.RUnlock()
			p.hits.Add(1)
			return data
		}
		if ce, ok := s.entries[id]; ok {
			s.mu.RUnlock()
			p.hits.Add(1)
			if data := ce.wait(); data != nil {
				return data
			}
			// The fill failed (the filler panicked); its entry is gone.
			// Retry so this goroutine reads the page itself and surfaces
			// the same error.
			continue
		}
		s.mu.RUnlock()
		break
	}
	if p.capacity == 0 {
		// Caching disabled: every unpinned access is a miss, exactly as it
		// would be serially; a staged prefetched copy still satisfies it
		// (charged as the demand read it replaces).
		p.misses.Add(1)
		data, _ := p.fetchDemand(id)
		return data
	}
	for {
		s.mu.Lock()
		// Re-check under the write lock: another goroutine may have pinned,
		// filled or begun filling the page since the read-locked probe.
		if data, ok := s.pinned[id]; ok {
			s.mu.Unlock()
			p.hits.Add(1)
			return data
		}
		if ce, ok := s.entries[id]; ok {
			s.mu.Unlock()
			p.hits.Add(1)
			if data := ce.wait(); data != nil {
				return data
			}
			continue
		}
		ce := &cacheEntry{id: id, ready: make(chan struct{})}
		s.entries[id] = ce
		s.mu.Unlock()
		p.misses.Add(1)
		return p.fill(s, ce)
	}
}

// fill performs the single demand fetch of a missed page off-lock — exactly
// one per distinct missed page, with other shards readable meanwhile — and
// publishes the bytes under the shard lock so lock-holding readers (Pin,
// Write) observe them safely. If the fetch panics (e.g. an out-of-range
// page id), the in-flight entry is removed and waiters are released to
// retry and surface the same panic, instead of blocking forever.
func (p *Pager) fill(s *pagerShard, ce *cacheEntry) []byte {
	defer func() {
		if ce.data == nil { // fetch panicked; unblock waiters
			s.mu.Lock()
			if s.entries[ce.id] == ce {
				delete(s.entries, ce.id)
			}
			s.mu.Unlock()
		}
		close(ce.ready)
	}()
	data, stable := p.fetchDemand(ce.id)
	s.mu.Lock()
	ce.data = data
	ce.stable = stable
	s.mu.Unlock()
	return data
}

// wait blocks until the entry's fill completes and returns the bytes, or
// nil if the fill failed and the caller should retry.
func (ce *cacheEntry) wait() []byte {
	if ce.ready != nil {
		<-ce.ready
	}
	return ce.data
}

// Pin loads page id (counting a read if absent from the cache) and keeps it
// resident until Unpin. Pinned pages never count as query I/O after the pin.
func (p *Pager) Pin(id PageID) {
	s := p.shard(id)
	for {
		s.mu.Lock()
		if _, ok := s.pinned[id]; ok {
			s.mu.Unlock()
			return
		}
		if ce, ok := s.entries[id]; ok {
			if ce.data != nil {
				delete(s.entries, id)
				if s.evict != nil {
					s.evict.remove(ce)
				}
				s.pinned[id] = ce.data
				if ce.stable {
					s.stablePins[id] = struct{}{}
				}
				s.mu.Unlock()
				return
			}
			// A concurrent reader is filling this page; wait for its
			// single disk read rather than issuing a duplicate one, then
			// re-examine.
			s.mu.Unlock()
			ce.wait()
			continue
		}
		if p.capacity > 0 {
			// Bounded single-shard mode: load under the lock, exactly as
			// the pre-striping pager did (in-flight entries must never be
			// visible to readBounded, which assumes filled entries).
			data, stable := p.fetchDemand(id)
			s.pinned[id] = data
			if stable {
				s.stablePins[id] = struct{}{}
			}
			s.mu.Unlock()
			return
		}
		// Striped mode: become the single-flight filler, so a Read racing
		// this Pin neither duplicates the disk read nor leaves an orphaned
		// cache entry behind; the next loop iteration promotes the filled
		// entry to the pin set.
		ce := &cacheEntry{id: id, ready: make(chan struct{})}
		s.entries[id] = ce
		s.mu.Unlock()
		p.fill(s, ce)
	}
}

// Unpin releases a pinned page. The page leaves the cache entirely (it is
// not demoted to the LRU), so its decoded entry goes with it. It is a no-op
// for unpinned pages.
func (p *Pager) Unpin(id PageID) {
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pinned[id]; !ok {
		return
	}
	delete(s.pinned, id)
	delete(s.stablePins, id)
	delete(s.decoded, id)
}

// Decoded returns the memoized decoded form of page id, if any. A hit
// guarantees the value was stored against the bytes currently cached for
// the page (writes and invalidations drop it).
func (p *Pager) Decoded(id PageID) (interface{}, bool) {
	s := p.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.decoded[id]
	return v, ok
}

// StoreDecoded memoizes the decoded form of page id. The entry is kept only
// while the page's bytes are resident (pinned or cached): tying decoded
// lifetime to byte residency keeps memory proportional to the configured
// cache capacity, and a capacity-0 pager stays cache-free as configured.
func (p *Pager) StoreDecoded(id PageID, v interface{}) {
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pinned[id]; !ok {
		if _, ok := s.entries[id]; !ok {
			return
		}
	}
	s.decoded[id] = v
}

// Write stores data to page id on disk and refreshes any cached copy. The
// decoded entry, parsed from the overwritten bytes, is dropped; callers
// writing an already-materialized form may StoreDecoded it again. Stable
// (mapped) views are never written into — the backend's own write keeps
// them coherent. Any staged prefetched copy is discarded: it predates the
// write.
func (p *Pager) Write(id PageID, data []byte) {
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.decoded, id)
	if p.pf != nil {
		p.pf.invalidate(id)
	}
	p.dev.Write(id, data)
	if pd, ok := s.pinned[id]; ok {
		if _, stable := s.stablePins[id]; !stable {
			refreshCopy(pd, data)
		}
		return
	}
	if ce, ok := s.entries[id]; ok && ce.data != nil && !ce.stable {
		refreshCopy(ce.data, data)
	}
}

// refreshCopy overwrites dst with data, zero-filling the tail beyond it so
// the cached copy matches the disk page exactly.
func refreshCopy(dst, data []byte) {
	copy(dst, data)
	for i := len(data); i < len(dst); i++ {
		dst[i] = 0
	}
}

// Invalidate drops any cached copy of page id (bytes, staged prefetch and
// decoded form) without touching the disk.
func (p *Pager) Invalidate(id PageID) {
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.decoded, id)
	delete(s.pinned, id)
	delete(s.stablePins, id)
	if p.pf != nil {
		p.pf.invalidate(id)
	}
	if ce, ok := s.entries[id]; ok {
		if s.evict != nil {
			s.evict.remove(ce)
		}
		delete(s.entries, id)
	}
}

// DropCache empties the cache, the pin set, the decoded cache and the
// prefetch staging area.
func (p *Pager) DropCache() {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		if s.evict != nil {
			s.evict.reset()
		}
		s.entries = make(map[PageID]*cacheEntry)
		s.pinned = make(map[PageID][]byte)
		s.stablePins = make(map[PageID]struct{})
		s.decoded = make(map[PageID]interface{})
		s.mu.Unlock()
	}
	if p.pf != nil {
		p.pf.dropAll()
	}
}

// HitRate returns cache hits and misses since construction. It is safe to
// call while queries run; the two counters are loaded independently.
func (p *Pager) HitRate() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// CacheStats is the pager's cumulative cache-behavior snapshot.
type CacheStats struct {
	Hits      uint64 // reads served from the cache or pin set
	Misses    uint64 // reads that had to fetch (or consume a staged page)
	Evictions uint64 // entries evicted from a bounded cache

	PrefetchIssued uint64 // pages speculatively fetched by the prefetcher
	PrefetchUsed   uint64 // staged pages later consumed by a demand miss

	Resident int            // currently resident pages (pinned + cached)
	Capacity int            // configured capacity (<0 unbounded, 0 disabled)
	Policy   EvictionPolicy // configured eviction policy
}

// HitRatio returns hits / (hits + misses), or 0 with no traffic.
func (cs CacheStats) HitRatio() float64 {
	total := cs.Hits + cs.Misses
	if total == 0 {
		return 0
	}
	return float64(cs.Hits) / float64(total)
}

// CacheStats returns the pager's counters; safe during concurrent reads.
func (p *Pager) CacheStats() CacheStats {
	return CacheStats{
		Hits:           p.hits.Load(),
		Misses:         p.misses.Load(),
		Evictions:      p.evictions.Load(),
		PrefetchIssued: p.prefetchIssued(),
		PrefetchUsed:   p.pfUsed.Load(),
		Resident:       p.CachedPages(),
		Capacity:       p.capacity,
		Policy:         p.policy,
	}
}

func (p *Pager) prefetchIssued() uint64 {
	if p.pf == nil {
		return 0
	}
	return p.pf.issued.Load()
}

// CachedPages returns the number of resident pages (pinned + cached).
func (p *Pager) CachedPages() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		n += len(s.pinned) + len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// evictLocked trims the bounded shard to capacity; the caller holds its lock.
func (p *Pager) evictLocked(s *pagerShard) {
	for s.evict.len() > p.capacity {
		ce := s.evict.victim()
		if ce == nil {
			return
		}
		delete(s.entries, ce.id)
		delete(s.decoded, ce.id)
		p.evictions.Add(1)
	}
}
