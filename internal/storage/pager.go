package storage

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Pager mediates page reads through a page cache with a pin set. It models
// the paper's query-time buffer: all internal R-tree nodes are pinned so
// the reported query cost is the number of leaf blocks fetched.
//
// The cache is read-only: writers go directly to the Disk. Writing through
// the pager refreshes the cached copy.
//
// Alongside the byte cache the pager keeps a decoded-page cache: consumers
// that materialize an in-memory form of a page (e.g. an R-tree node) may
// memoize it with StoreDecoded and recover it with Decoded. Decoded values
// never substitute for Read — callers still Read first, so hit/miss and
// block-I/O accounting are unaffected — they only skip re-parsing bytes
// already resident. Entries are dropped whenever the bytes they were parsed
// from change or leave the cache: on Write, Invalidate, DropCache and LRU
// eviction.
//
// # Concurrency
//
// A Pager is safe for use by many concurrent readers (Read, Pin lookups,
// Decoded, HitRate, CachedPages): the cache is lock-striped across
// power-of-two shards keyed by page id, and the hit/miss counters are
// atomic. A cache miss uses a single-flight protocol — the first goroutine
// to miss a page installs an in-flight entry, releases the shard lock,
// performs the one disk read and publishes the bytes; concurrent readers of
// the same page count a hit and wait for the fill. Consequently both the
// hit/miss tallies and the disk's block-read counter are exactly what a
// serial execution of the same page accesses would produce, which is what
// keeps QueryBatch's aggregate block-I/O bit-identical to serial runs.
//
// Writers (Write, Invalidate, Unpin, DropCache) are individually safe to
// call, but mutating the underlying pages while queries read them is a
// higher-level contract violation — rtree.Tree documents that updates
// require exclusive access.
//
// Two cache regimes exist. Unbounded (capacity < 0, the production default)
// and disabled (capacity 0) pagers never evict, so striping cannot change
// which accesses hit: serial accounting is bit-identical to the previous
// global-LRU implementation, and Figures 9-12 are unaffected. A bounded
// pager (capacity > 0) needs a global LRU order to keep its documented
// exact eviction sequence, so it runs as a single shard under one lock —
// still safe under concurrency, but serialized; bounded caches exist for
// the cache-ablation experiments, not the throughput path.
type Pager struct {
	dev      Backend
	capacity int // max unpinned cached pages; <0 means unbounded, 0 disables
	shards   []pagerShard
	mask     uint32

	hits   atomic.Uint64
	misses atomic.Uint64
}

// pagerShardCount is the stripe width for unbounded and capacity-0 pagers.
// It must be a power of two (the shard index is id & mask).
const pagerShardCount = 16

type pagerShard struct {
	mu      sync.RWMutex
	lru     *list.List // LRU order over entries; maintained only when bounded
	entries map[PageID]*cacheEntry
	pinned  map[PageID][]byte
	decoded map[PageID]interface{}
}

// cacheEntry is one unpinned cached page. In bounded pagers data is always
// filled under the shard lock and elem records the LRU position. In
// unbounded pagers an entry may be in flight: ready is closed once data is
// published, and readers that found the entry wait on it off-lock.
type cacheEntry struct {
	id    PageID
	data  []byte
	elem  *list.Element // LRU position; nil in unbounded shards
	ready chan struct{} // nil in bounded shards (filled synchronously)
}

// NewPager returns a pager over a backend whose cache holds at most
// capacity unpinned pages. capacity 0 disables unpinned caching entirely;
// a negative capacity means "unbounded".
func NewPager(dev Backend, capacity int) *Pager {
	nshards := pagerShardCount
	if capacity > 0 {
		// A bounded cache keeps the exact global LRU eviction order, which
		// a striped cache cannot provide; it runs as a single shard.
		nshards = 1
	}
	p := &Pager{
		dev:      dev,
		capacity: capacity,
		shards:   make([]pagerShard, nshards),
		mask:     uint32(nshards - 1),
	}
	for i := range p.shards {
		s := &p.shards[i]
		if capacity > 0 {
			s.lru = list.New() // only the bounded single shard keeps LRU order
		}
		s.entries = make(map[PageID]*cacheEntry)
		s.pinned = make(map[PageID][]byte)
		s.decoded = make(map[PageID]interface{})
	}
	return p
}

func (p *Pager) shard(id PageID) *pagerShard { return &p.shards[uint32(id)&p.mask] }

// Backend returns the underlying device.
func (p *Pager) Backend() Backend { return p.dev }

// Disk returns the underlying in-memory Disk when the backend is (or
// wraps) one, and nil otherwise.
//
// Deprecated: use Backend; Disk exists for simulator-specific tests.
func (p *Pager) Disk() *Disk { d, _ := AsDisk(p.dev); return d }

// Read returns the contents of page id, fetching from disk (and counting
// one block read) only on a cache miss. The returned slice is shared with
// the cache and must be treated as read-only.
func (p *Pager) Read(id PageID) []byte {
	if p.capacity > 0 {
		return p.readBounded(id)
	}
	return p.readStriped(id)
}

// readBounded is the single-shard exact-LRU read path of bounded pagers.
func (p *Pager) readBounded(id PageID) []byte {
	s := &p.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	if data, ok := s.pinned[id]; ok {
		p.hits.Add(1)
		return data
	}
	if ce, ok := s.entries[id]; ok {
		p.hits.Add(1)
		s.lru.MoveToFront(ce.elem)
		return ce.data
	}
	p.misses.Add(1)
	data := make([]byte, p.dev.BlockSize())
	p.dev.Read(id, data)
	ce := &cacheEntry{id: id, data: data}
	ce.elem = s.lru.PushFront(ce)
	s.entries[id] = ce
	p.evictLocked(s)
	return data
}

// readStriped is the lock-striped read path of unbounded and capacity-0
// pagers. Hits take only a shard read-lock; misses single-flight the fill.
func (p *Pager) readStriped(id PageID) []byte {
	s := p.shard(id)
	for {
		s.mu.RLock()
		if data, ok := s.pinned[id]; ok {
			s.mu.RUnlock()
			p.hits.Add(1)
			return data
		}
		if ce, ok := s.entries[id]; ok {
			s.mu.RUnlock()
			p.hits.Add(1)
			if data := ce.wait(); data != nil {
				return data
			}
			// The fill failed (the filler panicked); its entry is gone.
			// Retry so this goroutine reads the page itself and surfaces
			// the same error.
			continue
		}
		s.mu.RUnlock()
		break
	}
	if p.capacity == 0 {
		// Caching disabled: every unpinned access reads the disk, exactly
		// as it would serially.
		p.misses.Add(1)
		data := make([]byte, p.dev.BlockSize())
		p.dev.Read(id, data)
		return data
	}
	for {
		s.mu.Lock()
		// Re-check under the write lock: another goroutine may have pinned,
		// filled or begun filling the page since the read-locked probe.
		if data, ok := s.pinned[id]; ok {
			s.mu.Unlock()
			p.hits.Add(1)
			return data
		}
		if ce, ok := s.entries[id]; ok {
			s.mu.Unlock()
			p.hits.Add(1)
			if data := ce.wait(); data != nil {
				return data
			}
			continue
		}
		ce := &cacheEntry{id: id, ready: make(chan struct{})}
		s.entries[id] = ce
		s.mu.Unlock()
		p.misses.Add(1)
		return p.fill(s, ce)
	}
}

// fill performs the single disk read of a missed page off-lock — exactly
// one per distinct missed page, with other shards readable meanwhile — and
// publishes the bytes under the shard lock so lock-holding readers (Pin,
// Write) observe them safely. If the disk read panics (e.g. an out-of-range
// page id), the in-flight entry is removed and waiters are released to
// retry and surface the same panic, instead of blocking forever.
func (p *Pager) fill(s *pagerShard, ce *cacheEntry) []byte {
	defer func() {
		if ce.data == nil { // disk read panicked; unblock waiters
			s.mu.Lock()
			if s.entries[ce.id] == ce {
				delete(s.entries, ce.id)
			}
			s.mu.Unlock()
		}
		close(ce.ready)
	}()
	data := make([]byte, p.dev.BlockSize())
	p.dev.Read(ce.id, data)
	s.mu.Lock()
	ce.data = data
	s.mu.Unlock()
	return data
}

// wait blocks until the entry's fill completes and returns the bytes, or
// nil if the fill failed and the caller should retry.
func (ce *cacheEntry) wait() []byte {
	if ce.ready != nil {
		<-ce.ready
	}
	return ce.data
}

// Pin loads page id (counting a read if absent from the cache) and keeps it
// resident until Unpin. Pinned pages never count as query I/O after the pin.
func (p *Pager) Pin(id PageID) {
	s := p.shard(id)
	for {
		s.mu.Lock()
		if _, ok := s.pinned[id]; ok {
			s.mu.Unlock()
			return
		}
		if ce, ok := s.entries[id]; ok {
			if ce.data != nil {
				delete(s.entries, id)
				if ce.elem != nil {
					s.lru.Remove(ce.elem)
				}
				s.pinned[id] = ce.data
				s.mu.Unlock()
				return
			}
			// A concurrent reader is filling this page; wait for its
			// single disk read rather than issuing a duplicate one, then
			// re-examine.
			s.mu.Unlock()
			ce.wait()
			continue
		}
		if p.capacity > 0 {
			// Bounded single-shard mode: load under the lock, exactly as
			// the pre-striping pager did (in-flight entries must never be
			// visible to readBounded, which assumes filled entries).
			data := make([]byte, p.dev.BlockSize())
			p.dev.Read(id, data)
			s.pinned[id] = data
			s.mu.Unlock()
			return
		}
		// Striped mode: become the single-flight filler, so a Read racing
		// this Pin neither duplicates the disk read nor leaves an orphaned
		// cache entry behind; the next loop iteration promotes the filled
		// entry to the pin set.
		ce := &cacheEntry{id: id, ready: make(chan struct{})}
		s.entries[id] = ce
		s.mu.Unlock()
		p.fill(s, ce)
	}
}

// Unpin releases a pinned page. The page leaves the cache entirely (it is
// not demoted to the LRU), so its decoded entry goes with it. It is a no-op
// for unpinned pages.
func (p *Pager) Unpin(id PageID) {
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pinned[id]; !ok {
		return
	}
	delete(s.pinned, id)
	delete(s.decoded, id)
}

// Decoded returns the memoized decoded form of page id, if any. A hit
// guarantees the value was stored against the bytes currently cached for
// the page (writes and invalidations drop it).
func (p *Pager) Decoded(id PageID) (interface{}, bool) {
	s := p.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.decoded[id]
	return v, ok
}

// StoreDecoded memoizes the decoded form of page id. The entry is kept only
// while the page's bytes are resident (pinned or cached): tying decoded
// lifetime to byte residency keeps memory proportional to the configured
// cache capacity, and a capacity-0 pager stays cache-free as configured.
func (p *Pager) StoreDecoded(id PageID, v interface{}) {
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pinned[id]; !ok {
		if _, ok := s.entries[id]; !ok {
			return
		}
	}
	s.decoded[id] = v
}

// Write stores data to page id on disk and refreshes any cached copy. The
// decoded entry, parsed from the overwritten bytes, is dropped; callers
// writing an already-materialized form may StoreDecoded it again.
func (p *Pager) Write(id PageID, data []byte) {
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.decoded, id)
	p.dev.Write(id, data)
	if pd, ok := s.pinned[id]; ok {
		refreshCopy(pd, data)
		return
	}
	if ce, ok := s.entries[id]; ok && ce.data != nil {
		refreshCopy(ce.data, data)
	}
}

// refreshCopy overwrites dst with data, zero-filling the tail beyond it so
// the cached copy matches the disk page exactly.
func refreshCopy(dst, data []byte) {
	copy(dst, data)
	for i := len(data); i < len(dst); i++ {
		dst[i] = 0
	}
}

// Invalidate drops any cached copy of page id (bytes and decoded form)
// without touching the disk.
func (p *Pager) Invalidate(id PageID) {
	s := p.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.decoded, id)
	delete(s.pinned, id)
	if ce, ok := s.entries[id]; ok {
		if ce.elem != nil {
			s.lru.Remove(ce.elem)
		}
		delete(s.entries, id)
	}
}

// DropCache empties the cache, the pin set and the decoded cache.
func (p *Pager) DropCache() {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		if s.lru != nil {
			s.lru.Init()
		}
		s.entries = make(map[PageID]*cacheEntry)
		s.pinned = make(map[PageID][]byte)
		s.decoded = make(map[PageID]interface{})
		s.mu.Unlock()
	}
}

// HitRate returns cache hits and misses since construction. It is safe to
// call while queries run; the two counters are loaded independently.
func (p *Pager) HitRate() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// CachedPages returns the number of resident pages (pinned + cached).
func (p *Pager) CachedPages() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.RLock()
		n += len(s.pinned) + len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// evictLocked trims the bounded shard to capacity; the caller holds its lock.
func (p *Pager) evictLocked(s *pagerShard) {
	for s.lru.Len() > p.capacity {
		el := s.lru.Back()
		ce := el.Value.(*cacheEntry)
		s.lru.Remove(el)
		delete(s.entries, ce.id)
		delete(s.decoded, ce.id)
	}
}
