package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func tempIndex(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "pages.pr")
}

// TestFileBackendRoundTrip covers the full lifecycle: create, write pages
// and metadata, free a page, close, reopen, and find everything intact —
// including the freelist, which must hand back the freed page first.
func TestFileBackendRoundTrip(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	if fb.BlockSize() != 512 {
		t.Fatalf("block size %d, want 512", fb.BlockSize())
	}
	var ids []PageID
	for i := 0; i < 5; i++ {
		id := fb.Alloc()
		data := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		fb.Write(id, data)
		ids = append(ids, id)
	}
	fb.Free(ids[2])
	fb.SetMeta([]byte("hello superblock"))
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.NumPages(); got != 5 {
		t.Errorf("NumPages = %d, want 5", got)
	}
	if got := re.PagesInUse(); got != 4 {
		t.Errorf("PagesInUse = %d, want 4", got)
	}
	if got := string(re.Meta()); got != "hello superblock" {
		t.Errorf("meta = %q", got)
	}
	for i, id := range ids {
		if i == 2 {
			continue
		}
		buf := make([]byte, 512)
		re.Read(id, buf)
		want := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		if !bytes.Equal(buf[:len(want)], want) {
			t.Errorf("page %d contents differ", id)
		}
		for _, b := range buf[len(want):] {
			if b != 0 {
				t.Errorf("page %d tail not zero", id)
				break
			}
		}
	}
	// The freed page must be recycled (and come back zeroed).
	if id := re.Alloc(); id != ids[2] {
		t.Errorf("Alloc = %d, want recycled %d", id, ids[2])
	} else if !bytes.Equal(re.ReadNoCopy(id), make([]byte, 512)) {
		t.Errorf("recycled page %d not zeroed", id)
	}
}

// TestFileBackendOpenExpectedBlockSize covers the mismatch error: a file
// written with one block size must refuse to open under another, with a
// wrapped inspectable error.
func TestFileBackendOpenExpectedBlockSize(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, 4096); !errors.Is(err, ErrBlockSizeMismatch) {
		t.Fatalf("Open with wrong block size: %v, want ErrBlockSizeMismatch", err)
	}
	re, err := OpenFile(path, 1024)
	if err != nil {
		t.Fatalf("Open with matching block size: %v", err)
	}
	re.Close()
}

// corruptibleFile writes a small valid page file and returns its bytes.
func corruptibleFile(t *testing.T) (string, []byte) {
	t.Helper()
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fb.Write(fb.Alloc(), bytes.Repeat([]byte{0xAB}, 256))
	}
	fb.Free(PageID(1))
	fb.SetMeta([]byte("meta"))
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

// TestFileBackendCorruption drives Open across every failure path the
// format can detect. Each case must return a wrapped, inspectable error —
// never panic.
func TestFileBackendCorruption(t *testing.T) {
	_, good := corruptibleFile(t)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error // nil means "any error"
	}{
		{
			name:    "short header read",
			mutate:  func(b []byte) []byte { return b[:10] },
			wantErr: io.ErrUnexpectedEOF,
		},
		{
			name:    "empty file",
			mutate:  func(b []byte) []byte { return nil },
			wantErr: io.ErrUnexpectedEOF,
		},
		{
			name: "bad magic",
			mutate: func(b []byte) []byte {
				b[0] = 'X'
				return b
			},
			wantErr: ErrBadMagic,
		},
		{
			name: "bad version",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint16(b[6:8], 99)
				return b
			},
			wantErr: ErrBadVersion,
		},
		{
			name: "truncated page data",
			mutate: func(b []byte) []byte {
				return b[:len(b)-300] // cuts into the last page
			},
			wantErr: ErrTruncated,
		},
		{
			name: "truncated freelist trailer",
			mutate: func(b []byte) []byte {
				return b[:len(b)-2] // cuts into the 4-byte trailer
			},
			wantErr: ErrTruncated,
		},
		{
			name: "implausible block size",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[8:12], 3)
				return b
			},
		},
		{
			name: "freelist entry out of range",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[len(b)-4:], 77)
				return b
			},
		},
		{
			name: "freelist entry duplicated",
			mutate: func(b []byte) []byte {
				// Grow the freelist to two entries, both naming the same
				// page — Alloc would hand the page out twice.
				binary.LittleEndian.PutUint32(b[16:20], 2)
				return append(b, b[len(b)-4:]...)
			},
		},
		{
			name: "meta overflows header block",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[20:24], 4096)
				return b
			},
		},
		{
			name: "freelist count exceeds pages",
			mutate: func(b []byte) []byte {
				binary.LittleEndian.PutUint32(b[16:20], 50)
				return b
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "corrupt.pr")
			mutated := tc.mutate(append([]byte(nil), good...))
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := OpenFile(path, 0)
			if err == nil {
				t.Fatal("Open succeeded on corrupt file")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("Open error = %v, want errors.Is(..., %v)", err, tc.wantErr)
			}
		})
	}
}

// TestFileBackendAllocUnwrittenPage: a page allocated but never written
// (lazy file extension) must still be covered by Sync's geometry and read
// back as zeros after reopen.
func TestFileBackendAllocUnwrittenPage(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	b := fb.Alloc() // written
	fb.Write(b, []byte("written"))
	c := fb.Alloc() // trailing page, never written
	if !bytes.Equal(fb.ReadNoCopy(a), make([]byte, 256)) {
		t.Error("unwritten page a not zero before sync")
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(256 + 3*(256+pageTrailerSize)); st.Size() != want {
		t.Fatalf("file size %d after close, want %d (header + 3 checksummed slots)", st.Size(), want)
	}
	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, id := range []PageID{a, c} {
		if !bytes.Equal(re.ReadNoCopy(id), make([]byte, 256)) {
			t.Errorf("unwritten page %d not zero after reopen", id)
		}
	}
}

// TestFileBackendAbandonLeavesBytes: Abandon must close without syncing,
// leaving the on-disk bytes exactly as they were — the contract failed
// Opens rely on.
func TestFileBackendAbandonLeavesBytes(t *testing.T) {
	path, before := corruptibleFile(t)
	fb, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	fb.Write(PageID(0), bytes.Repeat([]byte{0xCD}, 256))
	fb.SetMeta([]byte("must not land on disk"))
	fb.Abandon()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The direct page write hits the file (pwrite), but Abandon must not
	// rewrite the header/meta, the freelist trailer or the recorded
	// geometry — so everything outside page 0's slot is byte-identical.
	slot := 256 + pageTrailerSize
	if !bytes.Equal(after[:256], before[:256]) {
		t.Error("Abandon rewrote the header block")
	}
	if !bytes.Equal(after[256+slot:], before[256+slot:]) {
		t.Error("Abandon changed bytes beyond the written page's slot")
	}
	if _, err := OpenFile(path, 0); err != nil {
		t.Fatalf("file no longer opens after Abandon: %v", err)
	}
}

// TestFileBackendMetaTooLarge: a metadata blob that cannot fit the header
// block must fail Sync with an error, not corrupt the file.
func TestFileBackendMetaTooLarge(t *testing.T) {
	fb, err := CreateFile(tempIndex(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	fb.SetMeta(make([]byte, 1024))
	if err := fb.Sync(); err == nil {
		t.Fatal("Sync accepted an oversized metadata blob")
	}
}

// TestFileBackendCounting: the Counting decorator must observe exactly the
// caller-issued block transfers on a file backend, with Alloc uncounted.
func TestFileBackendCounting(t *testing.T) {
	fb, err := CreateFile(tempIndex(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounting(fb)
	defer c.Close()
	id := c.Alloc()
	c.Write(id, []byte("x"))
	buf := make([]byte, 256)
	c.Read(id, buf)
	c.ReadNoCopy(id)
	c.PeekNoCopy(id)
	if got := c.Stats(); got.Reads != 2 || got.Writes != 1 {
		t.Errorf("stats = %v, want reads=2 writes=1", got)
	}
	c.ResetStats()
	if got := c.Stats(); got.Total() != 0 {
		t.Errorf("stats after reset = %v", got)
	}
	if d, ok := AsDisk(c); ok || d != nil {
		t.Errorf("AsDisk(file-backed Counting) = %v, %v; want nil, false", d, ok)
	}
	if _, ok := AsDisk(NewCounting(NewDisk(256))); !ok {
		t.Errorf("AsDisk failed to unwrap Counting over Disk")
	}
}
