package storage

import "container/list"

// evictor is the bounded pager's pluggable victim-order seam. All calls
// happen under the (single) bounded shard's lock; implementations need no
// synchronization of their own. The caller owns the entries map — an
// evictor only orders entries and picks victims.
type evictor interface {
	// insert registers a newly resident entry.
	insert(ce *cacheEntry)
	// touch records a cache hit on a resident entry.
	touch(ce *cacheEntry)
	// remove deregisters an entry leaving the cache for a reason other
	// than eviction (pin promotion, invalidation).
	remove(ce *cacheEntry)
	// victim picks the next entry to evict, deregisters and returns it;
	// nil when nothing is evictable.
	victim() *cacheEntry
	// len returns the number of registered entries.
	len() int
	// reset drops all evictor state (the caller drops the entries too).
	reset()
}

// lruEvictor is the historical exact global LRU: hits move to front,
// victims come from the back. Bounded-pager eviction order under it is
// byte-identical to the pre-policy pager.
type lruEvictor struct {
	l *list.List
}

func newLRUEvictor() *lruEvictor { return &lruEvictor{l: list.New()} }

func (e *lruEvictor) insert(ce *cacheEntry) { ce.elem = e.l.PushFront(ce) }
func (e *lruEvictor) touch(ce *cacheEntry)  { e.l.MoveToFront(ce.elem) }
func (e *lruEvictor) remove(ce *cacheEntry) { e.l.Remove(ce.elem); ce.elem = nil }
func (e *lruEvictor) len() int              { return e.l.Len() }
func (e *lruEvictor) reset()                { e.l.Init() }

func (e *lruEvictor) victim() *cacheEntry {
	el := e.l.Back()
	if el == nil {
		return nil
	}
	ce := el.Value.(*cacheEntry)
	e.l.Remove(el)
	ce.elem = nil
	return ce
}

// s3fifo queue tags (cacheEntry.s3Queue).
const (
	s3QueueSmall = 1
	s3QueueMain  = 2
)

// s3FreqMax saturates the per-entry access counter, per the paper: two
// bits are enough to separate one-hit wonders from the working set.
const s3FreqMax = 3

// s3fifoEvictor implements S3-FIFO (Yang et al., "FIFO queues are all you
// need for cache eviction", HotOS'23). New pages enter a small
// probationary FIFO (~10% of capacity); pages re-accessed while there are
// promoted to the main FIFO at eviction time, the rest are evicted with
// their id remembered in a ghost FIFO. A readmitted ghost goes straight to
// main — it was evicted too early once. Main evicts lazily: a victim with
// hits since insertion is reinserted with its counter decremented instead
// of evicted ("reinsertion" approximating LRU at FIFO cost). The effect is
// scan resistance: a bulk sweep's one-touch pages die cheaply in small
// without displacing main's working set, which is exactly the failure mode
// of LRU under scans.
//
// Everything is deterministic, so bounded-cache accounting stays exactly
// reproducible — the cross-policy equivalence tests rely on that.
type s3fifoEvictor struct {
	smallCap int
	small    *list.List // *cacheEntry; front = newest
	main     *list.List // *cacheEntry; front = newest

	ghostCap int
	ghost    map[PageID]*list.Element // id -> element in ghostFIFO
	ghostLRU *list.List               // PageID; front = newest
}

func newS3FIFO(capacity int) *s3fifoEvictor {
	smallCap := capacity / 10
	if smallCap < 1 {
		smallCap = 1
	}
	return &s3fifoEvictor{
		smallCap: smallCap,
		small:    list.New(),
		main:     list.New(),
		ghostCap: capacity,
		ghost:    make(map[PageID]*list.Element),
		ghostLRU: list.New(),
	}
}

func (e *s3fifoEvictor) insert(ce *cacheEntry) {
	ce.s3Freq = 0
	if gel, ok := e.ghost[ce.id]; ok {
		// Ghost readmission: the page proved itself after a premature
		// probationary eviction; admit it directly to main.
		delete(e.ghost, ce.id)
		e.ghostLRU.Remove(gel)
		ce.s3Queue = s3QueueMain
		ce.elem = e.main.PushFront(ce)
		return
	}
	ce.s3Queue = s3QueueSmall
	ce.elem = e.small.PushFront(ce)
}

func (e *s3fifoEvictor) touch(ce *cacheEntry) {
	if ce.s3Freq < s3FreqMax {
		ce.s3Freq++
	}
}

func (e *s3fifoEvictor) remove(ce *cacheEntry) {
	e.queue(ce).Remove(ce.elem)
	ce.elem = nil
	ce.s3Queue = 0
}

func (e *s3fifoEvictor) queue(ce *cacheEntry) *list.List {
	if ce.s3Queue == s3QueueSmall {
		return e.small
	}
	return e.main
}

func (e *s3fifoEvictor) len() int { return e.small.Len() + e.main.Len() }

func (e *s3fifoEvictor) reset() {
	e.small.Init()
	e.main.Init()
	e.ghost = make(map[PageID]*list.Element)
	e.ghostLRU.Init()
}

func (e *s3fifoEvictor) victim() *cacheEntry {
	for e.small.Len() > 0 || e.main.Len() > 0 {
		if e.small.Len() > e.smallCap || e.main.Len() == 0 {
			if ce := e.victimSmall(); ce != nil {
				return ce
			}
			continue // everything in small was promoted; retry via main
		}
		return e.victimMain()
	}
	return nil
}

// victimSmall drains the small queue's tail: re-accessed entries promote
// to main (probation passed), the first cold one is evicted and remembered
// as a ghost. Returns nil if promotions emptied the queue.
func (e *s3fifoEvictor) victimSmall() *cacheEntry {
	for e.small.Len() > 0 {
		el := e.small.Back()
		ce := el.Value.(*cacheEntry)
		e.small.Remove(el)
		if ce.s3Freq > 0 {
			ce.s3Freq = 0
			ce.s3Queue = s3QueueMain
			ce.elem = e.main.PushFront(ce)
			continue
		}
		ce.elem = nil
		ce.s3Queue = 0
		e.addGhost(ce.id)
		return ce
	}
	return nil
}

// victimMain evicts the first tail entry without recent hits, reinserting
// hot tail entries with a decremented counter. Terminates because each
// reinsertion strictly decreases a counter.
func (e *s3fifoEvictor) victimMain() *cacheEntry {
	for {
		el := e.main.Back()
		if el == nil {
			return nil
		}
		ce := el.Value.(*cacheEntry)
		e.main.Remove(el)
		if ce.s3Freq > 0 {
			ce.s3Freq--
			ce.elem = e.main.PushFront(ce)
			continue
		}
		ce.elem = nil
		ce.s3Queue = 0
		return ce
	}
}

func (e *s3fifoEvictor) addGhost(id PageID) {
	if gel, ok := e.ghost[id]; ok {
		e.ghostLRU.MoveToFront(gel)
		return
	}
	e.ghost[id] = e.ghostLRU.PushFront(id)
	for e.ghostLRU.Len() > e.ghostCap {
		back := e.ghostLRU.Back()
		delete(e.ghost, back.Value.(PageID))
		e.ghostLRU.Remove(back)
	}
}
