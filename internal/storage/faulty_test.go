package storage

import (
	"bytes"
	"errors"
	"testing"
)

// TestFaultyError: FaultError surfaces on the error-returning entry
// points and panics on Write (which has none).
func TestFaultyError(t *testing.T) {
	f := NewFaulty(NewDisk(256), FaultError, 1)
	if err := f.Sync(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("Sync = %v, want ErrInjectedFault", err)
	}
	if !f.Tripped() {
		t.Error("Tripped() false after the fault fired")
	}
	// FaultError is not sticky: the next op goes through.
	if err := f.Sync(); err != nil {
		t.Fatalf("second Sync = %v, want nil", err)
	}

	f2 := NewFaulty(NewDisk(256), FaultError, 1)
	id := f2.Alloc()
	expectFaultPanic(t, func() { f2.Write(id, []byte{1}) })
}

// TestFaultyTorn: the triggering write lands as half a block; later
// writes are whole again.
func TestFaultyTorn(t *testing.T) {
	disk := NewDisk(256)
	f := NewFaulty(disk, FaultTorn, 2)
	a := f.Alloc()
	b := f.Alloc()
	full := bytes.Repeat([]byte{0xAB}, 256)
	f.Write(a, full) // op 1: intact
	f.Write(b, full) // op 2: torn
	if got := disk.ReadNoCopy(a); !bytes.Equal(got, full) {
		t.Error("pre-trigger write damaged")
	}
	got := disk.ReadNoCopy(b)
	if !bytes.Equal(got[:128], full[:128]) {
		t.Error("torn write lost its head")
	}
	for _, by := range got[128:] {
		if by != 0 {
			t.Error("torn write filled its tail")
			break
		}
	}
	c := f.Alloc()
	f.Write(c, full) // post-trigger: intact again
	if got := disk.ReadNoCopy(c); !bytes.Equal(got, full) {
		t.Error("post-trigger write damaged")
	}
}

// TestFaultyCrashSticky: FaultCrash keeps killing every operation after
// the trigger, like a dead process's file descriptors.
func TestFaultyCrashSticky(t *testing.T) {
	f := NewFaulty(NewDisk(256), FaultCrash, 1)
	id := f.Alloc()
	expectFaultPanic(t, func() { f.Write(id, []byte{1}) })
	expectFaultPanic(t, func() { f.Write(id, []byte{2}) })
	expectFaultPanic(t, func() { f.Sync() })
}

// TestFaultyStop: FaultStop silently swallows persistence from the
// trigger on — the treacherous disk that acknowledges and drops.
func TestFaultyStop(t *testing.T) {
	disk := NewDisk(256)
	f := NewFaulty(disk, FaultStop, 2)
	a := f.Alloc()
	f.Write(a, bytes.Repeat([]byte{1}, 256)) // op 1: lands
	f.Write(a, bytes.Repeat([]byte{2}, 256)) // op 2: dropped
	if err := f.Sync(); err != nil {         // dropped, reports success
		t.Fatalf("Sync = %v", err)
	}
	if got := disk.ReadNoCopy(a); got[0] != 1 {
		t.Errorf("dropped write reached the disk")
	}
}

// TestFaultyArm: Arm re-arms relative to the current op count.
func TestFaultyArm(t *testing.T) {
	f := NewFaulty(NewDisk(256), FaultError, 0) // disarmed
	id := f.Alloc()
	f.Write(id, []byte{1})
	if err := f.Sync(); err != nil {
		t.Fatalf("disarmed Sync = %v", err)
	}
	f.Arm(2)
	f.Write(id, []byte{2}) // op 3 of lifetime, 1 after Arm
	if err := f.Sync(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("armed Sync = %v, want ErrInjectedFault", err)
	}
	f.Arm(0)
	if f.Tripped() {
		t.Error("Arm(0) did not clear Tripped")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("re-disarmed Sync = %v", err)
	}
}

// TestFaultyCommitError: a FaultError on Commit leaves the inner file
// backend's transaction open for Rollback, and the store recovers to the
// committed state.
func TestFaultyCommitError(t *testing.T) {
	fb, err := CreateFile(tempIndex(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{0xA1}, 256))
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(fb, FaultError, 1)
	f.Begin()
	f.Alloc() // uncounted
	if err := f.Commit(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("Commit = %v, want ErrInjectedFault", err)
	}
	f.Rollback()
	if got := fb.NumPages(); got != 1 {
		t.Errorf("NumPages = %d after rollback, want 1", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultyTransparent: a disarmed Faulty is invisible — it forwards
// everything, including the Transactional seam over a plain Disk.
func TestFaultyTransparent(t *testing.T) {
	f := NewFaulty(NewDisk(256), FaultNone, 0)
	f.Begin() // Disk is not Transactional: must no-op, not panic
	id := f.Alloc()
	f.Write(id, []byte{42})
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	f.Rollback()
	buf := make([]byte, 256)
	f.Read(id, buf)
	if buf[0] != 42 {
		t.Error("forwarded write lost")
	}
	if f.Ops() != 2 { // 1 write + 1 commit
		t.Errorf("Ops = %d, want 2", f.Ops())
	}
	if d, ok := AsDisk(f); !ok || d == nil {
		t.Error("AsDisk failed to unwrap Faulty")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
