package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// walTxBytes frames one committed transaction for tests.
func walTxBytes(seq uint64, pages []walPageImage, numPages int, free []PageID, meta []byte) []byte {
	var out []byte
	for _, pg := range pages {
		out = append(out, encodeWALPage(pg.id, pg.data)...)
	}
	out = append(out, encodeWALState(numPages, free, meta)...)
	return append(out, encodeWALCommit(seq)...)
}

// TestWALScanRoundTrip: a log of well-formed committed transactions must
// decode back to exactly the transactions that were framed.
func TestWALScanRoundTrip(t *testing.T) {
	img0 := bytes.Repeat([]byte{0x11}, 64)
	img1 := bytes.Repeat([]byte{0x22}, 256)
	var log []byte
	log = append(log, walTxBytes(1, []walPageImage{{0, img0}}, 2, nil, []byte("m1"))...)
	log = append(log, walTxBytes(2, []walPageImage{{1, img1}, {0, img0}}, 3, []PageID{2}, []byte("m2"))...)

	res, err := scanWAL(log, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.txs) != 2 || res.lastSeq != 2 {
		t.Fatalf("decoded %d txs, lastSeq %d; want 2 txs, lastSeq 2", len(res.txs), res.lastSeq)
	}
	if res.info.DiscardedRecords != 0 || res.info.TornTailBytes != 0 || res.info.DuplicateCommits != 0 {
		t.Errorf("clean log reported dirt: %+v", res.info)
	}
	tx := res.txs[1]
	if tx.seq != 2 || len(tx.pages) != 2 || !bytes.Equal(tx.pages[0].data, img1) {
		t.Errorf("tx 2 decoded wrong: %+v", tx)
	}
	if tx.state.numPages != 3 || len(tx.state.free) != 1 || tx.state.free[0] != 2 ||
		string(tx.state.meta) != "m2" {
		t.Errorf("tx 2 state decoded wrong: %+v", tx.state)
	}
}

// TestWALScanTornTail: any truncation point inside the log must decode to
// only the transactions fully committed before it — never an error, never
// a partial transaction.
func TestWALScanTornTail(t *testing.T) {
	tx1 := walTxBytes(1, []walPageImage{{0, bytes.Repeat([]byte{1}, 32)}}, 1, nil, nil)
	tx2 := walTxBytes(2, []walPageImage{{0, bytes.Repeat([]byte{2}, 32)}}, 1, nil, nil)
	log := append(append([]byte(nil), tx1...), tx2...)

	for cut := 0; cut <= len(log); cut++ {
		res, err := scanWAL(log[:cut], 256)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		if cut >= len(tx1) {
			want = 1
		}
		if cut == len(log) {
			want = 2
		}
		if len(res.txs) != want {
			t.Fatalf("cut %d: %d txs, want %d", cut, len(res.txs), want)
		}
		if cut < len(log) && res.info.TornTailBytes == 0 && res.info.DiscardedRecords == 0 {
			// Every proper cut must be visible in the report (either a torn
			// frame or intact-but-uncommitted records), except cuts exactly
			// between transactions, which look clean... but still discard tx2.
			if cut != len(tx1) && cut != 0 {
				t.Fatalf("cut %d: truncation invisible in %+v", cut, res.info)
			}
		}
	}
}

// TestWALScanBitFlipTail: flipping any byte of the final record makes it
// (and only it) a torn tail — committed prefixes stay decodable.
func TestWALScanBitFlipTail(t *testing.T) {
	tx1 := walTxBytes(1, nil, 1, nil, nil)
	commit2 := encodeWALCommit(2)
	state2 := encodeWALState(1, nil, nil)
	log := append(append(append([]byte(nil), tx1...), state2...), commit2...)

	for i := len(tx1); i < len(log); i++ {
		mutated := append([]byte(nil), log...)
		mutated[i] ^= 0x80
		res, err := scanWAL(mutated, 256)
		if err != nil {
			// A flip can turn a record into semantic nonsense with a
			// recomputed... no: the CRC no longer matches, so every flip is
			// a torn tail, not corruption.
			t.Fatalf("flip at %d: %v", i, err)
		}
		if len(res.txs) != 1 || res.lastSeq != 1 {
			t.Fatalf("flip at %d: %d txs (lastSeq %d), want only tx 1", i, len(res.txs), res.lastSeq)
		}
	}
}

// TestWALScanDuplicateCommit: a commit marker whose sequence number was
// already applied is skipped idempotently and counted.
func TestWALScanDuplicateCommit(t *testing.T) {
	log := walTxBytes(1, []walPageImage{{0, []byte{9}}}, 1, nil, nil)
	log = append(log, encodeWALCommit(1)...) // bare duplicate
	// A full duplicated transaction (page+state+commit with an old seq)
	// must also be skipped.
	log = append(log, walTxBytes(1, []walPageImage{{0, []byte{7}}}, 1, nil, nil)...)

	res, err := scanWAL(log, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.txs) != 1 || res.txs[0].pages[0].data[0] != 9 {
		t.Fatalf("duplicate commit replayed: %d txs", len(res.txs))
	}
	if res.info.DuplicateCommits != 2 {
		t.Errorf("DuplicateCommits = %d, want 2", res.info.DuplicateCommits)
	}
}

// TestWALScanUncommittedTail: intact records after the last commit are
// discarded and counted, not replayed.
func TestWALScanUncommittedTail(t *testing.T) {
	log := walTxBytes(1, nil, 1, nil, nil)
	log = append(log, encodeWALPage(0, []byte{1, 2, 3})...)
	log = append(log, encodeWALState(1, nil, nil)...)
	res, err := scanWAL(log, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.txs) != 1 || res.info.DiscardedRecords != 2 {
		t.Fatalf("txs=%d discarded=%d, want 1 and 2", len(res.txs), res.info.DiscardedRecords)
	}
}

// TestWALScanCorrupt drives every semantically-invalid-but-checksummed
// shape to a wrapped ErrWALCorrupt.
func TestWALScanCorrupt(t *testing.T) {
	cases := []struct {
		name string
		log  []byte
	}{
		{"commit without state", encodeWALCommit(1)},
		{"two states", append(append(encodeWALState(1, nil, nil), encodeWALState(1, nil, nil)...), encodeWALCommit(1)...)},
		{"unknown record type", appendWALRecord(nil, 99, []byte("??"))},
		{"short page record", appendWALRecord(nil, walRecPage, []byte{1, 2, 3})},
		{"page image exceeds block", func() []byte {
			return encodeWALPage(0, bytes.Repeat([]byte{1}, 300)) // block size is 256
		}()},
		{"page beyond state geometry", walTxBytes(1, []walPageImage{{7, []byte{1}}}, 2, nil, nil)},
		{"short commit record", appendWALRecord(nil, walRecCommit, []byte{1})},
		{"short state record", appendWALRecord(nil, walRecState, []byte{0, 0})},
		{"state freelist out of range", func() []byte {
			st := encodeWALState(2, []PageID{5}, nil)
			return append(st, encodeWALCommit(1)...)
		}()},
		{"state freelist duplicate", func() []byte {
			st := encodeWALState(3, []PageID{1, 1}, nil)
			return append(st, encodeWALCommit(1)...)
		}()},
		{"state meta overflows superblock", func() []byte {
			return encodeWALState(1, nil, bytes.Repeat([]byte{1}, 250)) // 256-byte block, 24-byte header
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := scanWAL(tc.log, 256)
			if !errors.Is(err, ErrWALCorrupt) {
				t.Fatalf("scanWAL = %v, want ErrWALCorrupt", err)
			}
		})
	}
}

// TestWALHeader covers header round-trip and mismatch reporting.
func TestWALHeader(t *testing.T) {
	hdr := encodeWALHeader(4096)
	if len(hdr) != walHeaderSize {
		t.Fatalf("header is %d bytes, want %d", len(hdr), walHeaderSize)
	}
	if err := checkWALHeader(hdr, 4096); err != nil {
		t.Fatal(err)
	}
	if err := checkWALHeader(hdr, 512); !errors.Is(err, ErrWALCorrupt) {
		t.Errorf("block-size mismatch: %v, want ErrWALCorrupt", err)
	}
	bad := append([]byte(nil), hdr...)
	bad[0] = 'X'
	if err := checkWALHeader(bad, 4096); !errors.Is(err, ErrWALCorrupt) {
		t.Errorf("bad magic: %v, want ErrWALCorrupt", err)
	}
	vbad := append([]byte(nil), hdr...)
	binary.LittleEndian.PutUint16(vbad[6:8], 9)
	if err := checkWALHeader(vbad, 4096); !errors.Is(err, ErrWALCorrupt) {
		t.Errorf("bad version: %v, want ErrWALCorrupt", err)
	}
}

// FuzzWALScan fuzzes the whole decode path. scanWAL must never panic and
// must uphold its invariants on arbitrary bytes: decoded transactions are
// geometry-consistent and the report never exceeds the input.
func FuzzWALScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(walTxBytes(1, []walPageImage{{0, bytes.Repeat([]byte{0xAA}, 64)}}, 2, []PageID{1}, []byte("meta")))
	f.Add(walTxBytes(1, nil, 1, nil, nil)[:7]) // torn frame
	f.Add(encodeWALCommit(1))                  // corrupt: commit without state
	f.Add(append(walTxBytes(1, nil, 1, nil, nil), encodeWALCommit(1)...))
	f.Add(appendWALRecord(nil, 200, []byte{1, 2, 3}))
	long := walTxBytes(3, []walPageImage{{1, bytes.Repeat([]byte{7}, 256)}}, 4, []PageID{0, 2}, nil)
	f.Add(long)
	f.Add(long[:len(long)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		const blockSize = 256
		res, err := scanWAL(data, blockSize)
		if res.info.WALBytes != int64(len(data)) {
			t.Fatalf("WALBytes %d, input %d", res.info.WALBytes, len(data))
		}
		if res.info.TornTailBytes > int64(len(data)) || res.info.TornTailBytes < 0 {
			t.Fatalf("TornTailBytes %d out of range", res.info.TornTailBytes)
		}
		if err != nil {
			if !errors.Is(err, ErrWALCorrupt) {
				t.Fatalf("non-sentinel error: %v", err)
			}
			return
		}
		var lastSeq uint64
		for _, tx := range res.txs {
			if tx.seq <= lastSeq {
				t.Fatalf("non-monotonic commit seq %d after %d", tx.seq, lastSeq)
			}
			lastSeq = tx.seq
			if tx.state.numPages < 0 {
				t.Fatalf("negative page count")
			}
			for _, pg := range tx.pages {
				if int(pg.id) >= tx.state.numPages || len(pg.data) > blockSize {
					t.Fatalf("tx %d: image for page %d (%d bytes) outside geometry", tx.seq, pg.id, len(pg.data))
				}
			}
			for _, id := range tx.state.free {
				if int(id) >= tx.state.numPages {
					t.Fatalf("tx %d: free page %d outside geometry", tx.seq, id)
				}
			}
		}
		if lastSeq != res.lastSeq {
			t.Fatalf("lastSeq %d, decoded max %d", res.lastSeq, lastSeq)
		}
	})
}
