package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// MmapBackend serves reads of a FileBackend's page file out of a read-only
// shared memory mapping: a page view is a slice of the mapping — no read
// buffer, no copy, no syscall — which feeds the tree's zero-copy nodeView
// directly through the StableReader capability. Writes, allocation,
// transactions, durability and recovery all delegate to the wrapped
// FileBackend; MAP_SHARED keeps the mapping coherent with its pwrites.
//
// Checksum discipline: a version-2 page's CRC32C trailer is verified once
// per mapped page on first touch, and the page's verified bit is cleared by
// every write (and wholesale at commit), so corruption is still caught
// exactly once per distinct content — not once per read, the cost the
// pread path pays on every miss.
//
// The mapping covers the file's extent at open (or the last Remap). Pages
// whose slot lies beyond it — allocated after the map was taken — fall back
// to the FileBackend's verified pread path; Sync remaps after its
// checkpoint so a freshly bulk-loaded file becomes fully mapped. On
// platforms without mmap (the portable build) every read delegates, so the
// backend is always safe to use, just not zero-copy.
type MmapBackend struct {
	fb *FileBackend

	// mapMu guards remapping (mapped/mapPages/verified swaps); page reads
	// take it RLocked so a concurrent Remap cannot unmap under them.
	mapMu    sync.RWMutex
	mapped   []byte
	mapPages int
	verified []atomic.Uint32 // one bit per mapped page: trailer checked
}

// OpenMmap opens an existing page file (recovering from its WAL exactly as
// OpenFile does) and maps it for zero-copy reads. On platforms without
// mmap the backend still works through ordinary preads.
func OpenMmap(path string, expectBlockSize int) (*MmapBackend, error) {
	fb, err := OpenFile(path, expectBlockSize)
	if err != nil {
		return nil, err
	}
	m := &MmapBackend{fb: fb}
	if err := m.remap(); err != nil {
		fb.Close()
		return nil, fmt.Errorf("storage: mmap %s: %w", path, err)
	}
	return m, nil
}

// NewMmap wraps an already-open FileBackend with a mapping. The caller
// must not close fb directly; Close goes through the wrapper.
func NewMmap(fb *FileBackend) (*MmapBackend, error) {
	m := &MmapBackend{fb: fb}
	if err := m.remap(); err != nil {
		return nil, fmt.Errorf("storage: mmap %s: %w", fb.path, err)
	}
	return m, nil
}

// Unwrap exposes the wrapped FileBackend to AsFile, so durability tooling
// (fsck, recovery info, WAL stats) keeps working through the wrapper.
func (m *MmapBackend) Unwrap() Backend { return m.fb }

// Mapped reports how many pages the current mapping covers; reads beyond
// it (or on platforms without mmap, where this is 0) use preads.
func (m *MmapBackend) Mapped() int {
	m.mapMu.RLock()
	defer m.mapMu.RUnlock()
	return m.mapPages
}

// remap (re)takes the mapping over the file's current extent.
func (m *MmapBackend) remap() error {
	m.fb.mu.RLock()
	st, err := m.fb.f.Stat()
	m.fb.mu.RUnlock()
	if err != nil {
		return err
	}
	data, err := mapFile(m.fb.f, st.Size())
	if err != nil {
		return err
	}
	m.mapMu.Lock()
	old := m.mapped
	m.mapped = data
	// Only pages whose full slot (block + trailer) lies inside the mapping
	// are served from it.
	m.mapPages = 0
	if data != nil {
		m.mapPages = int((int64(len(data)) - int64(m.fb.blockSize)) / int64(m.fb.slotSize))
		if m.mapPages < 0 {
			m.mapPages = 0
		}
	}
	m.verified = make([]atomic.Uint32, (m.mapPages+31)/32)
	m.mapMu.Unlock()
	if old != nil {
		unmapFile(old)
	}
	return nil
}

// Remap extends the mapping over pages appended since open; it is safe to
// call between queries (not concurrently with reads of soon-stale views).
func (m *MmapBackend) Remap() error { return m.remap() }

// stableView returns the mapped view of page id after first-touch
// verification, or ok=false when the page must be read through the file
// (beyond the mapping, inside an open transaction, or no mapping at all).
// The caller must hold m.mapMu.RLock and fb.mu.RLock.
func (m *MmapBackend) stableView(id PageID) ([]byte, bool) {
	if int(id) >= m.mapPages {
		return nil, false
	}
	if m.fb.tx != nil {
		// A transaction overlay may hide this page; the pread path
		// consults it. Stable views resume once the transaction ends.
		return nil, false
	}
	off := int(m.fb.offset(id))
	data := m.mapped[off : off+m.fb.blockSize : off+m.fb.blockSize]
	if err := m.verifyOnce(id, data, off); err != nil {
		panic(err)
	}
	return data, true
}

// verifyOnce checks page id's CRC32C trailer against the mapped bytes the
// first time the page is touched since its last write. Caller holds the
// locks stableView documents.
func (m *MmapBackend) verifyOnce(id PageID, data []byte, off int) error {
	if m.fb.version < 2 {
		return nil
	}
	word, bit := int(id)/32, uint32(1)<<(uint(id)%32)
	if m.verified[word].Load()&bit != 0 {
		return nil
	}
	tr := m.mapped[off+m.fb.blockSize : off+m.fb.blockSize+pageTrailerSize]
	want := binary.LittleEndian.Uint32(tr[0:4])
	dataLen := int(binary.LittleEndian.Uint32(tr[4:8]))
	if dataLen > m.fb.blockSize {
		return fmt.Errorf("storage: page %d: %w: trailer claims %d bytes in a %d-byte block",
			id, ErrChecksum, dataLen, m.fb.blockSize)
	}
	if got := crc32.Checksum(data[:dataLen], castagnoli); got != want {
		return fmt.Errorf("storage: page %d: %w: stored %08x, computed %08x over %d bytes",
			id, ErrChecksum, want, got, dataLen)
	}
	m.verified[word].Or(bit)
	return nil
}

// clearVerified drops page id's verified bit so the next stable read
// re-checks the (re)written content.
func (m *MmapBackend) clearVerified(id PageID) {
	m.mapMu.RLock()
	if int(id) < m.mapPages {
		m.verified[int(id)/32].And(^(uint32(1) << (uint(id) % 32)))
	}
	m.mapMu.RUnlock()
}

// ReadStable implements StableReader: the zero-copy demand read.
func (m *MmapBackend) ReadStable(id PageID) ([]byte, bool) {
	m.mapMu.RLock()
	defer m.mapMu.RUnlock()
	m.fb.mu.RLock()
	defer m.fb.mu.RUnlock()
	m.fb.checkIDLocked(id)
	return m.stableView(id)
}

// Read implements Backend, copying from the mapping when possible and
// delegating to the file's verified pread path otherwise.
func (m *MmapBackend) Read(id PageID, buf []byte) int {
	m.mapMu.RLock()
	m.fb.mu.RLock()
	m.fb.checkIDLocked(id)
	if data, ok := m.stableView(id); ok {
		n := copy(buf, data)
		m.fb.mu.RUnlock()
		m.mapMu.RUnlock()
		return n
	}
	m.fb.mu.RUnlock()
	m.mapMu.RUnlock()
	return m.fb.Read(id, buf)
}

// ReadNoCopy implements Backend; for mapped pages the view really is
// no-copy, unlike the FileBackend's private-copy fallback.
func (m *MmapBackend) ReadNoCopy(id PageID) []byte {
	if data, ok := m.ReadStable(id); ok {
		return data
	}
	return m.fb.ReadNoCopy(id)
}

// PeekNoCopy implements Backend: uncounted and, like the FileBackend's
// peek, deliberately unverified — it must not panic on corrupt content.
func (m *MmapBackend) PeekNoCopy(id PageID) []byte {
	m.mapMu.RLock()
	m.fb.mu.RLock()
	if int(id) < m.mapPages && m.fb.tx == nil && int(id) < m.fb.numPages {
		off := int(m.fb.offset(id))
		data := m.mapped[off : off+m.fb.blockSize : off+m.fb.blockSize]
		m.fb.mu.RUnlock()
		m.mapMu.RUnlock()
		return data
	}
	m.fb.mu.RUnlock()
	m.mapMu.RUnlock()
	return m.fb.PeekNoCopy(id)
}

// ReadBlocks implements BlockReader: mapped pages are copied out of the
// mapping (after first-touch verification), the rest go through the file
// backend's vectored pread path.
func (m *MmapBackend) ReadBlocks(ids []PageID, bufs [][]byte) {
	rest := -1 // first index that needed the file path, batched below
	var restIDs []PageID
	var restBufs [][]byte
	m.mapMu.RLock()
	m.fb.mu.RLock()
	for i, id := range ids {
		m.fb.checkIDLocked(id)
		if data, ok := m.stableView(id); ok {
			copy(bufs[i], data)
			continue
		}
		if rest < 0 {
			rest = i
		}
		restIDs = append(restIDs, id)
		restBufs = append(restBufs, bufs[i])
	}
	m.fb.mu.RUnlock()
	m.mapMu.RUnlock()
	if rest >= 0 {
		m.fb.ReadBlocks(restIDs, restBufs)
	}
}

// ReadBlocksSpeculative implements SpeculativeReader; physically identical
// to ReadBlocks (the accounting difference lives in decorators). For
// mapped pages the useful speculative work is the first-touch fault and
// checksum verification, both done here ahead of the demand access.
func (m *MmapBackend) ReadBlocksSpeculative(ids []PageID, bufs [][]byte) {
	m.ReadBlocks(ids, bufs)
}

// Write implements Backend, delegating and re-arming verification for the
// written page (MAP_SHARED keeps the mapped bytes themselves coherent).
func (m *MmapBackend) Write(id PageID, data []byte) {
	m.fb.Write(id, data)
	m.clearVerified(id)
}

// BlockSize implements Backend.
func (m *MmapBackend) BlockSize() int { return m.fb.BlockSize() }

// NumPages implements Backend.
func (m *MmapBackend) NumPages() int { return m.fb.NumPages() }

// PagesInUse implements Backend.
func (m *MmapBackend) PagesInUse() int { return m.fb.PagesInUse() }

// Alloc implements Backend; pages beyond the mapping read via preads.
func (m *MmapBackend) Alloc() PageID { return m.fb.Alloc() }

// Free implements Backend.
func (m *MmapBackend) Free(id PageID) { m.fb.Free(id) }

// SetMeta implements Backend.
func (m *MmapBackend) SetMeta(meta []byte) { m.fb.SetMeta(meta) }

// Meta implements Backend.
func (m *MmapBackend) Meta() []byte { return m.fb.Meta() }

// Begin implements Transactional. While a transaction is open, stable
// views are suspended (the overlay could hide mapped bytes); they resume
// at Commit/Rollback.
func (m *MmapBackend) Begin() { m.fb.Begin() }

// Commit implements Transactional. Committed redo images reach the file
// via pwrites the mapping observes; every verified bit is dropped so first
// touches re-check the new content.
func (m *MmapBackend) Commit() error {
	err := m.fb.Commit()
	m.mapMu.RLock()
	for i := range m.verified {
		m.verified[i].Store(0)
	}
	m.mapMu.RUnlock()
	return err
}

// Rollback implements Transactional.
func (m *MmapBackend) Rollback() { m.fb.Rollback() }

// SnapshotEnter implements Snapshotter, forwarded to the page file.
func (m *MmapBackend) SnapshotEnter() uint64 { return m.fb.SnapshotEnter() }

// SnapshotLeave implements Snapshotter, forwarded to the page file.
func (m *MmapBackend) SnapshotLeave(epoch uint64) { m.fb.SnapshotLeave(epoch) }

// SnapshotAdvance implements Snapshotter, forwarded to the page file.
func (m *MmapBackend) SnapshotAdvance() { m.fb.SnapshotAdvance() }

// SnapshotStats implements Snapshotter, forwarded to the page file.
func (m *MmapBackend) SnapshotStats() SnapshotStats { return m.fb.SnapshotStats() }

// Sync implements Backend: checkpoint, then remap so pages appended since
// the last map become zero-copy too.
func (m *MmapBackend) Sync() error {
	if err := m.fb.Sync(); err != nil {
		return err
	}
	return m.remap()
}

// Close implements Backend, unmapping before the file closes.
func (m *MmapBackend) Close() error {
	err := m.fb.Close()
	m.mapMu.Lock()
	if m.mapped != nil {
		unmapFile(m.mapped)
		m.mapped = nil
		m.mapPages = 0
	}
	m.mapMu.Unlock()
	return err
}
