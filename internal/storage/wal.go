package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Write-ahead log: the sidecar `.wal` file that makes FileBackend
// mutations atomic and durable. Every transaction appends, in order,
//
//   - one PAGE record per committed-live page the transaction overwrote
//     (a full block image — the redo copy applied on replay),
//   - one STATE record carrying the post-transaction allocator state
//     (page count, freelist) and superblock metadata blob,
//   - one COMMIT record with a monotonically increasing sequence number,
//
// followed by a single fsync. A transaction is committed iff its COMMIT
// record is fully on disk; recovery replays committed transactions in
// order and discards everything after the last commit marker.
//
// Wire format. The file starts with a 16-byte header (magic, version,
// block size) and then holds length-prefixed records:
//
//	u32 payloadLen | u8 type | payload | u32 crc32c
//
// The CRC (Castagnoli) covers the length, type and payload bytes, so a
// torn append — a partial record at the tail, or a record whose bytes
// never fully reached the platter — fails validation and is truncated
// away on replay. A record that validates but decodes to nonsense (an
// unknown type, a freelist with duplicates, a page image beyond the
// recorded geometry) is not a torn tail: it is reported as a wrapped
// ErrWALCorrupt and Open fails rather than guessing.
//
// Payloads (all integers little-endian):
//
//	PAGE   u32 pageID | u32 dataLen | data
//	STATE  u32 numPages | u32 metaLen | meta | u32 freeCount | u32 free...
//	COMMIT u64 seq
//
// Checkpointing (FileBackend.Sync) rewrites the page-file header, fsyncs
// the page file and truncates the log back to its 16-byte header: at that
// point the page file alone describes the committed state.

// castagnoli is the CRC32C table shared by WAL records and page trailers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWALCorrupt reports a write-ahead log whose committed region cannot
// be trusted: a semantically invalid record with a valid checksum, a
// foreign or mismatched log header. (A torn tail is NOT corruption — it
// is the expected crash artifact and is silently truncated on replay.)
var ErrWALCorrupt = errors.New("write-ahead log corrupt")

var walMagic = [6]byte{'P', 'R', 'W', 'A', 'L', 0}

const (
	walVersion    = 1
	walHeaderSize = 16 // magic[6] version:u16 blockSize:u32 reserved:u32

	walRecPage   byte = 1
	walRecState  byte = 2
	walRecCommit byte = 3

	// walRecOverhead is the framing around a payload: length, type, CRC.
	walRecOverhead = 4 + 1 + 4

	// maxWALPayload bounds a single record's declared payload so hostile
	// lengths cannot overflow offset arithmetic; real payloads are at
	// most a block image or a freelist (4 bytes/page).
	maxWALPayload = 1 << 30
)

// encodeWALHeader returns the 16-byte log header for a page file with the
// given block size.
func encodeWALHeader(blockSize int) []byte {
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic[:])
	binary.LittleEndian.PutUint16(hdr[6:8], walVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(blockSize))
	return hdr
}

// checkWALHeader validates a log header against the page file it rides
// with. A nil error means the records after it may be scanned.
func checkWALHeader(hdr []byte, blockSize int) error {
	if [6]byte(hdr[0:6]) != walMagic {
		return fmt.Errorf("%w: bad magic %q", ErrWALCorrupt, hdr[0:6])
	}
	if v := binary.LittleEndian.Uint16(hdr[6:8]); v != walVersion {
		return fmt.Errorf("%w: version %d (this build reads version %d)", ErrWALCorrupt, v, walVersion)
	}
	if bs := binary.LittleEndian.Uint32(hdr[8:12]); int(bs) != blockSize {
		return fmt.Errorf("%w: log written for %d-byte blocks, page file has %d", ErrWALCorrupt, bs, blockSize)
	}
	return nil
}

// appendWALRecord frames payload as one record (length, type, payload,
// CRC32C) and appends it to dst.
func appendWALRecord(dst []byte, typ byte, payload []byte) []byte {
	start := len(dst)
	var lenbuf [4]byte
	binary.LittleEndian.PutUint32(lenbuf[:], uint32(len(payload)))
	dst = append(dst, lenbuf[:]...)
	dst = append(dst, typ)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], castagnoli)
	binary.LittleEndian.PutUint32(lenbuf[:], crc)
	return append(dst, lenbuf[:]...)
}

// encodeWALPage frames one page-image record.
func encodeWALPage(id PageID, data []byte) []byte {
	payload := make([]byte, 8+len(data))
	binary.LittleEndian.PutUint32(payload[0:4], uint32(id))
	binary.LittleEndian.PutUint32(payload[4:8], uint32(len(data)))
	copy(payload[8:], data)
	return appendWALRecord(nil, walRecPage, payload)
}

// encodeWALState frames the post-transaction allocator/metadata record.
func encodeWALState(numPages int, free []PageID, meta []byte) []byte {
	payload := make([]byte, 0, 12+len(meta)+4*len(free))
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], uint32(numPages))
	payload = append(payload, w[:]...)
	binary.LittleEndian.PutUint32(w[:], uint32(len(meta)))
	payload = append(payload, w[:]...)
	payload = append(payload, meta...)
	binary.LittleEndian.PutUint32(w[:], uint32(len(free)))
	payload = append(payload, w[:]...)
	for _, id := range free {
		binary.LittleEndian.PutUint32(w[:], uint32(id))
		payload = append(payload, w[:]...)
	}
	return appendWALRecord(nil, walRecState, payload)
}

// encodeWALCommit frames a commit marker.
func encodeWALCommit(seq uint64) []byte {
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], seq)
	return appendWALRecord(nil, walRecCommit, payload[:])
}

// walPageImage is one decoded PAGE record.
type walPageImage struct {
	id   PageID
	data []byte // aliases the scanned buffer; at most blockSize bytes
}

// walState is one decoded STATE record.
type walState struct {
	numPages int
	free     []PageID
	meta     []byte
}

// walTx is one committed transaction recovered from the log.
type walTx struct {
	seq   uint64
	pages []walPageImage
	state walState
}

// RecoveryInfo reports what crash recovery found and did when a page
// file was opened with a non-empty write-ahead log. A nil *RecoveryInfo
// means the file was clean (no log records to consider).
type RecoveryInfo struct {
	// ReplayedTxs is the number of committed transactions whose effects
	// were replayed into the page file.
	ReplayedTxs int
	// ReplayedPages is the number of page images rewritten during replay.
	ReplayedPages int
	// DuplicateCommits counts commit markers whose sequence number had
	// already been applied (e.g. a record duplicated by a retried append);
	// their transactions are skipped, replay stays idempotent.
	DuplicateCommits int
	// DiscardedRecords is the number of intact records after the last
	// commit marker — an uncommitted transaction the crash interrupted.
	DiscardedRecords int
	// TornTailBytes is the number of trailing bytes dropped because they
	// failed length or checksum validation (a torn append).
	TornTailBytes int64
	// WALBytes is the size of the log body that was scanned.
	WALBytes int64
}

// dirty reports whether recovery found anything worth reporting.
func (ri *RecoveryInfo) dirty() bool {
	return ri.ReplayedTxs > 0 || ri.DuplicateCommits > 0 ||
		ri.DiscardedRecords > 0 || ri.TornTailBytes > 0
}

// String renders the report in prose, for logs and prtool.
func (ri *RecoveryInfo) String() string {
	return fmt.Sprintf("replayed %d tx (%d pages), discarded %d uncommitted records, %d duplicate commits, %d torn tail bytes",
		ri.ReplayedTxs, ri.ReplayedPages, ri.DiscardedRecords, ri.DuplicateCommits, ri.TornTailBytes)
}

// walScanResult is everything scanWAL learned from a log body.
type walScanResult struct {
	txs     []walTx
	lastSeq uint64
	info    RecoveryInfo
}

// nextWALRecord validates the frame at the head of b. ok=false means the
// bytes are a torn tail (short frame, implausible length, bad CRC): the
// caller must discard from here on.
func nextWALRecord(b []byte) (typ byte, payload []byte, size int, ok bool) {
	if len(b) < walRecOverhead {
		return 0, nil, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen > maxWALPayload {
		return 0, nil, 0, false
	}
	size = walRecOverhead + plen
	if size > len(b) {
		return 0, nil, 0, false
	}
	if crc32.Checksum(b[:5+plen], castagnoli) != binary.LittleEndian.Uint32(b[5+plen:]) {
		return 0, nil, 0, false
	}
	return b[4], b[5 : 5+plen], size, true
}

// scanWAL decodes a log body (the bytes after the 16-byte header) into
// its committed transactions. It is a pure function over the bytes — the
// fuzz target for the whole decode path — and must never panic or
// allocate beyond O(len(data)).
//
// A torn tail (short or checksum-failing trailing bytes) and an
// uncommitted trailing transaction are normal crash artifacts, reported
// through the RecoveryInfo. A record that passes its checksum but decodes
// to nonsense is real corruption: scanWAL returns a wrapped ErrWALCorrupt
// and no transactions should be trusted.
func scanWAL(data []byte, blockSize int) (walScanResult, error) {
	var res walScanResult
	res.info.WALBytes = int64(len(data))
	var (
		pages   []walPageImage
		state   *walState
		pending int
	)
	reset := func() { pages, state, pending = nil, nil, 0 }
	off := 0
	for off < len(data) {
		typ, payload, size, ok := nextWALRecord(data[off:])
		if !ok {
			res.info.TornTailBytes = int64(len(data) - off)
			break
		}
		switch typ {
		case walRecPage:
			if len(payload) < 8 {
				return res, fmt.Errorf("%w: page record of %d bytes", ErrWALCorrupt, len(payload))
			}
			id := PageID(binary.LittleEndian.Uint32(payload[0:4]))
			n := int(binary.LittleEndian.Uint32(payload[4:8]))
			if n != len(payload)-8 || n > blockSize {
				return res, fmt.Errorf("%w: page %d image of %d bytes (payload %d, block %d)",
					ErrWALCorrupt, id, n, len(payload), blockSize)
			}
			pages = append(pages, walPageImage{id: id, data: payload[8 : 8+n]})
			pending++
		case walRecState:
			st, err := decodeWALState(payload, blockSize)
			if err != nil {
				return res, err
			}
			if state != nil {
				return res, fmt.Errorf("%w: two state records in one transaction", ErrWALCorrupt)
			}
			state = st
			pending++
		case walRecCommit:
			if len(payload) != 8 {
				return res, fmt.Errorf("%w: commit record of %d bytes", ErrWALCorrupt, len(payload))
			}
			seq := binary.LittleEndian.Uint64(payload)
			if seq <= res.lastSeq {
				// A replayed or duplicated commit: its transaction has
				// already been applied, skip it idempotently.
				res.info.DuplicateCommits++
				reset()
				break
			}
			if state == nil {
				return res, fmt.Errorf("%w: commit %d without a state record", ErrWALCorrupt, seq)
			}
			for _, pg := range pages {
				if int(pg.id) >= state.numPages {
					return res, fmt.Errorf("%w: committed image for page %d beyond %d pages",
						ErrWALCorrupt, pg.id, state.numPages)
				}
			}
			res.txs = append(res.txs, walTx{seq: seq, pages: pages, state: *state})
			res.lastSeq = seq
			reset()
		default:
			return res, fmt.Errorf("%w: unknown record type %d", ErrWALCorrupt, typ)
		}
		off += size
	}
	res.info.DiscardedRecords = pending
	return res, nil
}

// decodeWALState decodes and validates a STATE payload: the freelist must
// fit the declared page count with no duplicates (the same invariant
// openValidated enforces on the page-file trailer) and the metadata blob
// must fit a superblock.
func decodeWALState(payload []byte, blockSize int) (*walState, error) {
	if len(payload) < 12 {
		return nil, fmt.Errorf("%w: state record of %d bytes", ErrWALCorrupt, len(payload))
	}
	numPages := int(binary.LittleEndian.Uint32(payload[0:4]))
	metaLen := int(binary.LittleEndian.Uint32(payload[4:8]))
	if metaLen > blockSize-fileHeaderSize || metaLen > len(payload)-12 {
		return nil, fmt.Errorf("%w: state metadata of %d bytes", ErrWALCorrupt, metaLen)
	}
	meta := payload[8 : 8+metaLen]
	rest := payload[8+metaLen:]
	freeCount := int(binary.LittleEndian.Uint32(rest[0:4]))
	if freeCount > numPages || len(rest) != 4+4*freeCount {
		return nil, fmt.Errorf("%w: state freelist of %d entries (payload %d, pages %d)",
			ErrWALCorrupt, freeCount, len(payload), numPages)
	}
	free := make([]PageID, freeCount)
	seen := make(map[PageID]struct{}, freeCount)
	for i := range free {
		v := PageID(binary.LittleEndian.Uint32(rest[4+4*i:]))
		if int(v) >= numPages {
			return nil, fmt.Errorf("%w: state freelist entry %d out of range (%d pages)", ErrWALCorrupt, v, numPages)
		}
		if _, dup := seen[v]; dup {
			return nil, fmt.Errorf("%w: state freelist entry %d duplicated", ErrWALCorrupt, v)
		}
		seen[v] = struct{}{}
		free[i] = v
	}
	return &walState{numPages: numPages, free: free, meta: meta}, nil
}
