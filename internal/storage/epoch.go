package storage

import "sync"

// SnapshotStats is a point-in-time view of a backend's epoch machinery:
// the current epoch, the number of in-flight snapshot readers, and how
// many freed pages are pinned — on the freelist but withheld from Alloc —
// until the readers that may still dereference them drain.
type SnapshotStats struct {
	// Epoch is the current reclamation epoch. It advances once per
	// installed compaction (SnapshotAdvance), not per operation.
	Epoch uint64
	// Readers is the number of snapshot readers currently inside an
	// Enter/Leave bracket.
	Readers int
	// PinnedPages is the number of freed pages whose reuse is deferred
	// because a reader from the epoch they were freed in is still active.
	PinnedPages int
}

// Snapshotter is the optional copy-on-write capability of a Backend.
// A snapshot reader brackets its page accesses with SnapshotEnter /
// SnapshotLeave; while any reader is inside the bracket, pages passed to
// Free are *retired* rather than recycled: they join the durable freelist
// as usual (so the committed on-disk state never leaks them across a
// crash), but Alloc refuses to hand them out again until every reader
// that might still hold a reference has left. The effect is copy-on-write
// at page granularity — a writer running concurrently with readers always
// allocates fresh or long-drained pages, never a page a reader can still
// see — without a second allocator or an undo log.
//
// SnapshotAdvance bumps the epoch; a compaction calls it after the
// install commit so pins taken during the merge drain as soon as the
// pre-install readers finish. Crash safety is free: pins live only in
// memory, a restart has no readers, so recovery sees the plain freelist.
type Snapshotter interface {
	// SnapshotEnter begins a snapshot read and returns the epoch token
	// that must be passed to SnapshotLeave.
	SnapshotEnter() uint64
	// SnapshotLeave ends the snapshot read begun by the SnapshotEnter
	// that returned epoch. Pins that no remaining reader can reference
	// are released.
	SnapshotLeave(epoch uint64)
	// SnapshotAdvance moves to the next epoch. Readers entering after
	// the call never pin pages freed before it.
	SnapshotAdvance()
	// SnapshotStats reports the current epoch, reader and pin counts.
	SnapshotStats() SnapshotStats
}

// EnsureSnapshotter returns b's Snapshotter implementation, or a no-op
// one, so read paths can bracket unconditionally. Decorators forward the
// interface (see Counting), so the check is on b itself.
func EnsureSnapshotter(b Backend) Snapshotter {
	if s, ok := b.(Snapshotter); ok {
		return s
	}
	return nopSnap{}
}

// nopSnap is the Snapshotter no-op for backends without the capability.
type nopSnap struct{}

func (nopSnap) SnapshotEnter() uint64        { return 0 }
func (nopSnap) SnapshotLeave(uint64)         {}
func (nopSnap) SnapshotAdvance()             {}
func (nopSnap) SnapshotStats() SnapshotStats { return SnapshotStats{} }

// epochPins implements the epoch bookkeeping shared by Disk and
// FileBackend. It is deliberately decoupled from the backends' own
// locks: retire and pickFree are called with the owner's allocator mutex
// held, and epochPins never calls back into the backend, so the ordering
// backend.mu → pins.mu is acyclic.
//
// The scheme is conservative: a page freed at epoch E while readers are
// active is pinned at E and stays pinned until no reader with a token
// ≤ E remains. A reader that entered after the free but in the same
// epoch pins it too — harmless, since pins only delay reuse, and the
// writer advances the epoch right after installing a new state, bounding
// the overshoot to one compaction's worth of readers.
type epochPins struct {
	mu     sync.Mutex
	epoch  uint64
	active map[uint64]int // epoch token → readers inside the bracket
	pins   map[PageID]uint64
}

// SnapshotEnter implements Snapshotter.
func (p *epochPins) SnapshotEnter() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active == nil {
		p.active = make(map[uint64]int)
	}
	p.active[p.epoch]++
	return p.epoch
}

// SnapshotLeave implements Snapshotter.
func (p *epochPins) SnapshotLeave(epoch uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.active[epoch]
	if !ok {
		panic("storage: SnapshotLeave without matching SnapshotEnter")
	}
	if n == 1 {
		delete(p.active, epoch)
	} else {
		p.active[epoch] = n - 1
	}
	p.drainLocked()
}

// SnapshotAdvance implements Snapshotter.
func (p *epochPins) SnapshotAdvance() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epoch++
	p.drainLocked()
}

// SnapshotStats implements Snapshotter.
func (p *epochPins) SnapshotStats() SnapshotStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	readers := 0
	for _, n := range p.active {
		readers += n
	}
	return SnapshotStats{Epoch: p.epoch, Readers: readers, PinnedPages: len(p.pins)}
}

// drainLocked releases pins no remaining reader can reference: those
// whose pin epoch precedes the oldest active reader (all of them when no
// reader is active). Caller holds p.mu.
func (p *epochPins) drainLocked() {
	if len(p.pins) == 0 {
		return
	}
	if len(p.active) == 0 {
		clear(p.pins)
		return
	}
	min := ^uint64(0)
	for e := range p.active {
		if e < min {
			min = e
		}
	}
	for id, e := range p.pins {
		if e < min {
			delete(p.pins, id)
		}
	}
}

// retire records that page id was freed; if snapshot readers are active
// it is pinned at the current epoch so pickFree withholds it from reuse.
// Called with the owning backend's allocator lock held.
func (p *epochPins) retire(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.active) == 0 {
		delete(p.pins, id)
		return
	}
	if p.pins == nil {
		p.pins = make(map[PageID]uint64)
	}
	p.pins[id] = p.epoch
}

// pickFree returns the index of the entry in free that Alloc should
// recycle — the highest-indexed page not pinned by an active snapshot —
// or -1 when every free page is pinned (the caller must extend instead).
// Called with the owning backend's allocator lock held.
func (p *epochPins) pickFree(free []PageID) int {
	if len(free) == 0 {
		return -1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.pins) == 0 {
		return len(free) - 1
	}
	for i := len(free) - 1; i >= 0; i-- {
		if _, pinned := p.pins[free[i]]; !pinned {
			return i
		}
	}
	return -1
}

// removeAt deletes the entry at index i from free, preserving order, and
// returns the shortened slice along with the removed id.
func removeAt(free []PageID, i int) ([]PageID, PageID) {
	id := free[i]
	copy(free[i:], free[i+1:])
	return free[:len(free)-1], id
}
