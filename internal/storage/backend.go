package storage

// Backend is the block-device seam every tree runs on: a store of
// fixed-size pages addressed by PageID, with allocation, block-granular
// reads and writes, an opaque superblock metadata blob, and durability
// hooks. The in-memory Disk simulator (the paper's measurement device),
// the file-backed page store (FileBackend) and the Counting decorator all
// implement it, so the same worst-case-optimal tree serves simulated,
// persistent and instrumented storage without touching the algorithms.
//
// Contracts shared by all implementations:
//
//   - Alloc returns a zeroed page and is not counted as I/O by decorators;
//     the subsequent Write is.
//   - Write may pass fewer than BlockSize bytes; the page tail is
//     untouched. Read copies at most BlockSize bytes into buf.
//   - ReadNoCopy returns bytes a caller must treat as read-only; the slice
//     stays valid until the page is freed or rewritten. PeekNoCopy is the
//     same without being counted by decorators — it exists for test
//     assertions and open-time sanity checks, never algorithm code.
//   - Pages must have a single writer at a time and must not be accessed
//     after Free; allocation, Free, Meta and SetMeta are safe for
//     concurrent use, and concurrent readers of distinct or immutable
//     pages are always safe.
//   - Sync makes all written pages and the metadata blob durable (a no-op
//     for memory-only backends). Close syncs and releases the resources;
//     a closed backend must not be used again.
type Backend interface {
	// BlockSize returns the page size in bytes.
	BlockSize() int
	// NumPages returns the number of pages ever allocated, including
	// freed ones.
	NumPages() int
	// PagesInUse returns allocated minus freed pages.
	PagesInUse() int
	// Alloc reserves a zeroed page and returns its id.
	Alloc() PageID
	// Free returns a page to the allocator.
	Free(id PageID)
	// Read copies page id into buf and returns the number of bytes copied.
	Read(id PageID, buf []byte) int
	// ReadNoCopy returns the page contents without copying (read-only).
	ReadNoCopy(id PageID) []byte
	// PeekNoCopy returns the page contents without counting I/O.
	PeekNoCopy(id PageID) []byte
	// Write stores data into page id. len(data) must not exceed BlockSize;
	// shorter data leaves the page tail untouched.
	Write(id PageID, data []byte)
	// SetMeta replaces the backend's superblock metadata blob (the tree
	// root descriptor for persistent backends).
	SetMeta(meta []byte)
	// Meta returns the current metadata blob (nil when unset).
	Meta() []byte
	// Sync flushes pages and metadata to stable storage.
	Sync() error
	// Close syncs and releases the backend.
	Close() error
}

// BlockReader is the optional batched-read capability: a demand fetch of
// several pages in one call, so backends with real syscalls underneath
// (FileBackend via preadv, MmapBackend via its mapping) can amortize the
// per-page cost. bufs[i] receives page ids[i]; each buffer must hold
// BlockSize bytes. Decorators count it exactly like len(ids) Reads.
type BlockReader interface {
	ReadBlocks(ids []PageID, bufs [][]byte)
}

// SpeculativeReader is the optional speculative batched-read capability used
// by the pager's prefetcher. Physically it behaves like ReadBlocks, but the
// accounting differs: the Counting decorator tallies it in PrefetchReads and
// the Disk simulator not at all, so the paper's demand block-I/O counters
// stay bit-identical whether prefetch is on or off. A pager only issues
// prefetch against backends implementing this interface.
type SpeculativeReader interface {
	ReadBlocksSpeculative(ids []PageID, bufs [][]byte)
}

// DemandAccounter is the optional accounting hook the pager uses when a
// demand access consumes a block the prefetcher already staged: the block's
// demand read is charged (without physical I/O) at exactly the moment a
// no-prefetch run would have performed it, so demand counters match
// bit-for-bit. Decorators forward it down the chain.
type DemandAccounter interface {
	AccountDemandReads(n int)
}

// StableReader is the optional zero-copy capability of mapped backends: a
// demand read (counted like Read) returning a view that stays valid and
// coherent with Writes for the backend's lifetime — no read buffer, no
// copy. ok=false means the page has no stable view (e.g. it lies beyond
// the mapping or a transaction overlay hides it) and the caller must fall
// back to Read.
type StableReader interface {
	ReadStable(id PageID) (data []byte, ok bool)
}

// ReadBlocksInto performs a demand batch read through b's BlockReader
// capability when present, and otherwise falls back to one Read per page.
func ReadBlocksInto(b Backend, ids []PageID, bufs [][]byte) {
	if br, ok := b.(BlockReader); ok {
		br.ReadBlocks(ids, bufs)
		return
	}
	for i, id := range ids {
		b.Read(id, bufs[i])
	}
}

// Compile-time interface conformance.
var (
	_ Backend = (*Disk)(nil)
	_ Backend = (*FileBackend)(nil)
	_ Backend = (*MmapBackend)(nil)
	_ Backend = (*Counting)(nil)
	_ Backend = (*Faulty)(nil)

	_ Transactional = (*FileBackend)(nil)
	_ Transactional = (*MmapBackend)(nil)
	_ Transactional = (*Counting)(nil)
	_ Transactional = (*Faulty)(nil)

	_ BlockReader = (*Disk)(nil)
	_ BlockReader = (*FileBackend)(nil)
	_ BlockReader = (*MmapBackend)(nil)
	_ BlockReader = (*Counting)(nil)

	_ SpeculativeReader = (*Disk)(nil)
	_ SpeculativeReader = (*FileBackend)(nil)
	_ SpeculativeReader = (*MmapBackend)(nil)
	_ SpeculativeReader = (*Counting)(nil)

	_ DemandAccounter = (*Disk)(nil)
	_ DemandAccounter = (*Counting)(nil)

	_ StableReader = (*MmapBackend)(nil)
	_ StableReader = (*Counting)(nil)

	_ Snapshotter = (*Disk)(nil)
	_ Snapshotter = (*FileBackend)(nil)
	_ Snapshotter = (*MmapBackend)(nil)
	_ Snapshotter = (*Counting)(nil)
	_ Snapshotter = (*Faulty)(nil)
)

// Transactional is the optional atomicity seam a Backend may implement.
// Mutation paths (insert, delete, bulk load) bracket their page writes
// with Begin/Commit so a durable backend can make the whole batch atomic:
// after Commit returns the mutation survives a crash, and a crash before
// Commit rolls the store back to the previous committed state on reopen.
// Rollback discards an open transaction in memory (e.g. on a mid-mutation
// panic). Backends without durability semantics simply don't implement
// it; use EnsureTransactional to call the hooks unconditionally.
type Transactional interface {
	// Begin opens a transaction. Transactions do not nest.
	Begin()
	// Commit atomically and durably applies everything since Begin.
	Commit() error
	// Rollback discards everything since Begin. Without an open
	// transaction it is a no-op.
	Rollback()
}

// nopTx is the Transactional no-op for backends without durability.
type nopTx struct{}

func (nopTx) Begin()        {}
func (nopTx) Commit() error { return nil }
func (nopTx) Rollback()     {}

// EnsureTransactional returns b's Transactional implementation, or a
// no-op one, so mutation paths can bracket writes without type checks.
// Decorators forward the interface (see Counting), so the check is on b
// itself, not the unwrapped chain.
func EnsureTransactional(b Backend) Transactional {
	if tx, ok := b.(Transactional); ok {
		return tx
	}
	return nopTx{}
}

// unwrapper is implemented by decorators (e.g. Counting) so helpers can
// reach the innermost backend.
type unwrapper interface{ Unwrap() Backend }

// AsDisk unwraps decorators and returns the underlying in-memory Disk, or
// (nil, false) when the chain bottoms out in a different backend. It lets
// snapshot-based persistence (rtree.Save) and simulator-only test hooks
// state their requirement explicitly.
func AsDisk(b Backend) (*Disk, bool) {
	for {
		if d, ok := b.(*Disk); ok {
			return d, true
		}
		u, ok := b.(unwrapper)
		if !ok {
			return nil, false
		}
		b = u.Unwrap()
	}
}

// AsFile unwraps decorators and returns the underlying FileBackend, or
// (nil, false) when the chain bottoms out elsewhere. It gives durability
// tooling (fsck, recovery reporting, WAL stats) access to file-only
// surface without widening the Backend interface.
func AsFile(b Backend) (*FileBackend, bool) {
	for {
		if fb, ok := b.(*FileBackend); ok {
			return fb, true
		}
		u, ok := b.(unwrapper)
		if !ok {
			return nil, false
		}
		b = u.Unwrap()
	}
}
