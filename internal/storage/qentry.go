package storage

import (
	"encoding/binary"

	"prtree/internal/geom"
)

// QEntrySize is the on-disk footprint of one compressed node entry: four
// 16-bit fixed-point corner offsets plus the 4-byte pointer. Together with
// ItemSize it is one of the two entry widths every layout-dependent fanout
// computation derives from (see rtree's layout table).
const QEntrySize = 12

// EncodeQEntry serializes a quantized rectangle and its reference into
// buf, which must hold QEntrySize bytes.
func EncodeQEntry(buf []byte, q geom.QRect, ref uint32) {
	binary.LittleEndian.PutUint16(buf[0:], q.MinX)
	binary.LittleEndian.PutUint16(buf[2:], q.MinY)
	binary.LittleEndian.PutUint16(buf[4:], q.MaxX)
	binary.LittleEndian.PutUint16(buf[6:], q.MaxY)
	binary.LittleEndian.PutUint32(buf[8:], ref)
}

// DecodeQRect deserializes only the quantized rectangle of an entry
// written by EncodeQEntry.
func DecodeQRect(buf []byte) geom.QRect {
	return geom.QRect{
		MinX: binary.LittleEndian.Uint16(buf[0:]),
		MinY: binary.LittleEndian.Uint16(buf[2:]),
		MaxX: binary.LittleEndian.Uint16(buf[4:]),
		MaxY: binary.LittleEndian.Uint16(buf[6:]),
	}
}

// DecodeQRef deserializes only the 4-byte pointer of an entry written by
// EncodeQEntry.
func DecodeQRef(buf []byte) uint32 {
	return binary.LittleEndian.Uint32(buf[8:])
}
