// Package storage simulates the block-granular disk that the paper's
// experiments run on: a store of fixed-size pages with read/write counters,
// an LRU page cache with pinning (the paper caches all internal R-tree
// nodes), and sequential files of fixed-size records (the subset of TPIE
// that the original implementation used).
//
// All state lives in memory — the substitution for the paper's physical
// SCSI disk — but every access is performed and counted at block
// granularity, so the measured I/O counts follow the same accounting as the
// paper's.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultBlockSize is the paper's disk block size: 4 KB, which holds 113
// 36-byte rectangle entries.
const DefaultBlockSize = 4096

// PageID identifies a disk page. NilPage is the invalid sentinel.
type PageID uint32

// NilPage is the invalid page identifier.
const NilPage PageID = ^PageID(0)

// Stats counts block-granular I/O operations. Reads and Writes follow the
// paper's demand accounting: they count only blocks an algorithm asked for.
// Speculative blocks fetched by the pager's prefetcher are tallied apart in
// PrefetchReads, so enabling prefetch never changes Reads — the demand
// stream stays bit-identical to a run without prefetch (a prefetched block
// is charged to Reads at the moment a demand access consumes it, exactly
// when a no-prefetch run would have read it).
type Stats struct {
	Reads         uint64 // blocks read on demand
	Writes        uint64 // blocks written
	PrefetchReads uint64 // blocks fetched speculatively by the prefetcher
}

// Total returns demand reads plus writes — the paper's block-I/O metric.
// Speculative prefetch reads are excluded: they are overlap, not cost, in
// the paper's accounting, and live in PrefetchReads.
func (s Stats) Total() uint64 { return s.Reads + s.Writes }

// Sub returns s minus t, component-wise. Useful for measuring an interval:
// capture stats before and after, then Sub.
func (s Stats) Sub(t Stats) Stats {
	return Stats{
		Reads:         s.Reads - t.Reads,
		Writes:        s.Writes - t.Writes,
		PrefetchReads: s.PrefetchReads - t.PrefetchReads,
	}
}

// String implements fmt.Stringer. The prefetch counter appears only when
// nonzero, keeping the common demand-only rendering stable.
func (s Stats) String() string {
	if s.PrefetchReads != 0 {
		return fmt.Sprintf("reads=%d writes=%d prefetch=%d", s.Reads, s.Writes, s.PrefetchReads)
	}
	return fmt.Sprintf("reads=%d writes=%d", s.Reads, s.Writes)
}

// Disk is a simulated block device: an array of blockSize-byte pages with
// an allocation freelist and I/O counters. The zero value is not usable;
// call NewDisk.
//
// A Disk is safe for concurrent use by multiple goroutines: allocation and
// the freelist are mutex-protected and the I/O counters are atomic, so
// concurrent producers (e.g. the parallel bulk-load pipeline's sort
// workers) see the same counter totals as a serial execution of the same
// operations. Individual pages are not synchronized — each page must have
// a single writer at a time, and a page's bytes must not be read after it
// is Freed; files uphold this by owning their pages.
type Disk struct {
	blockSize int

	mu    sync.RWMutex // guards pages, free and meta slice headers
	pages [][]byte
	free  []PageID
	meta  []byte

	reads  atomic.Uint64
	writes atomic.Uint64

	epochPins // Snapshotter: epoch-pinned reclamation of freed pages
}

// NewDisk returns an empty disk with the given block size.
func NewDisk(blockSize int) *Disk {
	if blockSize <= 0 {
		panic("storage: block size must be positive")
	}
	return &Disk{blockSize: blockSize}
}

// BlockSize returns the page size in bytes.
func (d *Disk) BlockSize() int { return d.blockSize }

// Alloc reserves a page and returns its id. The page contents are zeroed.
// Allocation itself is not counted as I/O; the subsequent Write is. Freed
// pages pinned by an active snapshot reader (see Snapshotter) are skipped:
// their bytes may still be dereferenced, so the disk extends instead.
func (d *Disk) Alloc() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i := d.pickFree(d.free); i >= 0 {
		var id PageID
		d.free, id = removeAt(d.free, i)
		for j := range d.pages[id] {
			d.pages[id][j] = 0
		}
		return id
	}
	d.pages = append(d.pages, make([]byte, d.blockSize))
	return PageID(len(d.pages) - 1)
}

// Free returns a page to the freelist. Freeing is not counted as I/O.
// While snapshot readers are active the page is retired instead of
// recycled: it joins the freelist but Alloc withholds it until the
// readers that might still reference it drain.
func (d *Disk) Free(id PageID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.checkIDLocked(id)
	d.free = append(d.free, id)
	d.retire(id)
}

// page returns the backing slice of page id; the per-page slice never moves
// once allocated, so callers may use it after the lock is released under
// the single-writer / no-use-after-Free contract.
func (d *Disk) page(id PageID) []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.checkIDLocked(id)
	return d.pages[id]
}

// Write stores data into page id, counting one block write. data must not
// exceed the block size; shorter data leaves the page tail untouched.
func (d *Disk) Write(id PageID, data []byte) {
	if len(data) > d.blockSize {
		panic(fmt.Sprintf("storage: write of %d bytes exceeds block size %d", len(data), d.blockSize))
	}
	copy(d.page(id), data)
	d.writes.Add(1)
}

// Read copies page id into buf (which must hold at least BlockSize bytes),
// counting one block read, and returns the number of bytes copied.
func (d *Disk) Read(id PageID, buf []byte) int {
	d.reads.Add(1)
	return copy(buf, d.page(id))
}

// ReadNoCopy returns the page's backing slice without copying, counting one
// block read. The caller must treat the result as read-only.
func (d *Disk) ReadNoCopy(id PageID) []byte {
	d.reads.Add(1)
	return d.page(id)
}

// PeekNoCopy returns the page contents without counting I/O. It exists for
// test assertions and cache internals; algorithm code must use Read.
func (d *Disk) PeekNoCopy(id PageID) []byte {
	return d.page(id)
}

// ReadBlocks implements BlockReader: a demand batch read, counted exactly
// like len(ids) individual Reads (the simulator has no syscalls to batch).
func (d *Disk) ReadBlocks(ids []PageID, bufs [][]byte) {
	for i, id := range ids {
		d.Read(id, bufs[i])
	}
}

// ReadBlocksSpeculative implements SpeculativeReader. The simulator's own
// counters model the paper's demand accounting, so speculative fetches are
// deliberately uncounted here; the Counting decorator tallies them in
// PrefetchReads and the pager charges AccountDemandReads when a demand
// access later consumes a prefetched block.
func (d *Disk) ReadBlocksSpeculative(ids []PageID, bufs [][]byte) {
	for i, id := range ids {
		copy(bufs[i], d.page(id))
	}
}

// AccountDemandReads implements DemandAccounter: it charges n demand block
// reads without physical I/O, keeping the simulator's counters bit-identical
// to a no-prefetch run when the pager promotes prefetched blocks.
func (d *Disk) AccountDemandReads(n int) {
	d.reads.Add(uint64(n))
}

// Stats returns the cumulative I/O counters.
func (d *Disk) Stats() Stats {
	return Stats{Reads: d.reads.Load(), Writes: d.writes.Load()}
}

// ResetStats zeroes the I/O counters.
func (d *Disk) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
}

// NumPages returns the number of pages ever allocated (including freed ones).
func (d *Disk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// PagesInUse returns allocated minus freed pages.
func (d *Disk) PagesInUse() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages) - len(d.free)
}

// SetMeta implements Backend: the blob lives in memory alongside the pages.
func (d *Disk) SetMeta(meta []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.meta = append(d.meta[:0], meta...)
}

// Meta implements Backend.
func (d *Disk) Meta() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.meta == nil {
		return nil
	}
	out := make([]byte, len(d.meta))
	copy(out, d.meta)
	return out
}

// Sync implements Backend; memory is always "durable", so it is a no-op.
func (d *Disk) Sync() error { return nil }

// Close implements Backend as a no-op: a Disk holds no external resources.
func (d *Disk) Close() error { return nil }

func (d *Disk) checkIDLocked(id PageID) {
	if int(id) >= len(d.pages) {
		panic(fmt.Sprintf("storage: page %d out of range (have %d pages)", id, len(d.pages)))
	}
}
