package storage

import (
	"sync"
	"testing"
)

// TestPagerConcurrentReaders hammers an unbounded pager from many
// goroutines with overlapping page sets — the access pattern of the batch
// query executor (run under -race in CI). The single-flight miss path must
// keep the counters exactly serial: one miss and one disk read per distinct
// page, a hit for every other access.
func TestPagerConcurrentReaders(t *testing.T) {
	const (
		pages     = 64
		workers   = 8
		perWorker = 400
	)
	d := newPagerDisk(t, pages)
	p := NewPager(d, -1)
	d.ResetStats()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := PageID((w*7 + i*13) % pages)
				got := p.Read(id)
				if got[0] != byte(id+1) {
					t.Errorf("page %d content = %d", id, got[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()

	hits, misses := p.HitRate()
	if misses != pages {
		t.Errorf("misses = %d, want %d (one per distinct page)", misses, pages)
	}
	if total := hits + misses; total != workers*perWorker {
		t.Errorf("hits+misses = %d, want %d", total, workers*perWorker)
	}
	if got := d.Stats().Reads; got != pages {
		t.Errorf("disk reads = %d, want %d (single-flight fills)", got, pages)
	}
	if got := p.CachedPages(); got != pages {
		t.Errorf("CachedPages = %d, want %d", got, pages)
	}
}

// TestPagerConcurrentSingleFlight aims every goroutine at the same page at
// once: exactly one disk read may happen, and every waiter must observe the
// filled bytes.
func TestPagerConcurrentSingleFlight(t *testing.T) {
	const workers = 16
	d := newPagerDisk(t, 1)
	p := NewPager(d, -1)
	d.ResetStats()

	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			<-start
			if got := p.Read(0); got[0] != 1 {
				t.Errorf("read returned %d", got[0])
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := d.Stats().Reads; got != 1 {
		t.Errorf("disk reads = %d, want 1", got)
	}
	hits, misses := p.HitRate()
	if misses != 1 || hits != workers-1 {
		t.Errorf("hits=%d misses=%d, want %d/1", hits, misses, workers-1)
	}
}

// TestPagerConcurrentCapacityZero checks the no-cache regime stays exactly
// serial under concurrency: every unpinned access reads the disk, pinned
// pages always hit.
func TestPagerConcurrentCapacityZero(t *testing.T) {
	const (
		workers   = 8
		perWorker = 100
	)
	d := newPagerDisk(t, 2)
	p := NewPager(d, 0)
	p.Pin(1)
	d.ResetStats()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if got := p.Read(0); got[0] != 1 {
					t.Errorf("page 0 content = %d", got[0])
					return
				}
				if got := p.Read(1); got[0] != 2 {
					t.Errorf("pinned page content = %d", got[0])
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := d.Stats().Reads; got != workers*perWorker {
		t.Errorf("disk reads = %d, want %d (unpinned reads are uncached)", got, workers*perWorker)
	}
	hits, misses := p.HitRate()
	if hits != workers*perWorker || misses != workers*perWorker {
		t.Errorf("hits=%d misses=%d, want %d/%d", hits, misses, workers*perWorker, workers*perWorker)
	}
}

// TestPagerConcurrentStatsReaders calls HitRate and CachedPages while
// readers run — the counter-read race the facade's IOStats fix covers.
func TestPagerConcurrentStatsReaders(t *testing.T) {
	const pages = 32
	d := newPagerDisk(t, pages)
	p := NewPager(d, -1)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			h, m := p.HitRate()
			if h+m > 0 && p.CachedPages() > pages {
				t.Error("impossible cache census")
				return
			}
			_ = d.Stats()
			d.ResetStats()
		}
	}()
	for i := 0; i < 2000; i++ {
		p.Read(PageID(i % pages))
	}
	close(done)
	wg.Wait()
}

// TestPagerConcurrentPinDuringFill races Pin against readers filling the
// same pages: whichever side gets there first must do the page's single
// disk read (Pin joins an in-flight fill instead of duplicating it, and
// Read joins a filling Pin), no orphaned cache entry may survive, and
// reads after the pin must serve the pinned copy.
func TestPagerConcurrentPinDuringFill(t *testing.T) {
	const pages = 32
	for round := 0; round < 20; round++ {
		d := newPagerDisk(t, pages)
		p := NewPager(d, -1)
		d.ResetStats()
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < pages; i++ {
				p.Read(PageID(i))
			}
		}()
		go func() {
			defer wg.Done()
			for i := pages - 1; i >= 0; i-- {
				p.Pin(PageID(i))
			}
		}()
		wg.Wait()
		if got := d.Stats().Reads; got != pages {
			t.Fatalf("round %d: %d disk reads for %d pages under a Pin/Read race", round, got, pages)
		}
		if got := p.CachedPages(); got != pages {
			t.Fatalf("round %d: CachedPages = %d, want %d (orphaned entries?)", round, got, pages)
		}
		d.ResetStats()
		for i := 0; i < pages; i++ {
			if got := p.Read(PageID(i)); got[0] != byte(i+1) {
				t.Fatalf("page %d content = %d", i, got[0])
			}
			p.Unpin(PageID(i))
		}
		if got := d.Stats().Reads; got != 0 {
			t.Fatalf("round %d: %d disk reads after everything pinned/cached", round, got)
		}
		// After Unpin the pages must be gone entirely: an unpinned page
		// reloads from disk (no stale orphan may answer from the cache).
		d.ResetStats()
		p.Read(0)
		if got := d.Stats().Reads; got != 1 {
			t.Fatalf("round %d: unpinned page served from a stale cache entry", round)
		}
	}
}

// TestPagerConcurrentDecoded exercises the decoded-node cache from many
// goroutines: stores and lookups must be race-free and a lookup must only
// ever observe a value stored for that page.
func TestPagerConcurrentDecoded(t *testing.T) {
	const (
		pages   = 16
		workers = 8
	)
	d := newPagerDisk(t, pages)
	p := NewPager(d, -1)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := PageID((w + i) % pages)
				p.Read(id)
				if v, ok := p.Decoded(id); ok {
					if v.(*decodedProbe).gen != int(id) {
						t.Errorf("page %d decoded as %d", id, v.(*decodedProbe).gen)
						return
					}
				} else {
					p.StoreDecoded(id, &decodedProbe{gen: int(id)})
				}
			}
		}(w)
	}
	wg.Wait()
}
