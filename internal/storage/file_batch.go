package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// maxBatchRun caps one vectored pread at 512 pages (1024 iovecs with
// trailers), comfortably below the kernel's IOV_MAX of 1024 entries.
const maxBatchRun = 512

// ReadBlocks implements BlockReader: a demand batch read of several pages.
// Pages with a buffered redo image (open transaction) are served from the
// overlay exactly as Read would; the rest are grouped into maximal
// consecutive-slot runs, each issued as a single vectored pread where the
// platform supports it (preadv on Linux) and as per-page preads elsewhere.
// Version-2 checksum trailers are verified per page with Read's exact
// semantics: a missing trailer means a lazily extended, never-written page
// (valid, reads as zeros) and a mismatch panics wrapping ErrChecksum.
func (fb *FileBackend) ReadBlocks(ids []PageID, bufs [][]byte) {
	fb.mu.RLock()
	defer fb.mu.RUnlock()

	// pending collects the indexes still needing a file read, in id order.
	pending := make([]int, 0, len(ids))
	for i, id := range ids {
		fb.checkIDLocked(id)
		buf := bufs[i]
		if len(buf) > fb.blockSize {
			buf = buf[:fb.blockSize]
		}
		if tx := fb.tx; tx != nil {
			fb.txMu.Lock()
			img, ok := tx.overlay[id]
			if ok {
				copy(buf, img)
				fb.txMu.Unlock()
				continue
			}
			fb.txMu.Unlock()
		}
		if len(buf) < fb.blockSize {
			// Prefix reads keep Read's one-page verification path, which
			// re-fetches the checksummed extent when needed.
			fb.readVerified(id, buf)
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(a, b int) bool { return ids[pending[a]] < ids[pending[b]] })

	for start := 0; start < len(pending); {
		end := start + 1
		for end < len(pending) &&
			end-start < maxBatchRun &&
			ids[pending[end]] == ids[pending[end-1]]+1 {
			end++
		}
		fb.readRun(ids, bufs, pending[start:end])
		start = end
	}
}

// ReadBlocksSpeculative implements SpeculativeReader. The file backend
// keeps no counters, so the speculative path is physically and semantically
// identical to ReadBlocks; decorators account for the difference.
func (fb *FileBackend) ReadBlocksSpeculative(ids []PageID, bufs [][]byte) {
	fb.ReadBlocks(ids, bufs)
}

// readRun reads the consecutive slot run ids[run[0]]..ids[run[len-1]] with
// one vectored pread, falling back to per-page verified reads when the
// platform has no preadv or the vectored read fails. The caller holds at
// least a read lock.
func (fb *FileBackend) readRun(ids []PageID, bufs [][]byte, run []int) {
	if len(run) == 1 || !preadvSupported {
		for _, i := range run {
			fb.readVerified(ids[i], bufs[i][:fb.blockSize])
		}
		return
	}
	withTrailers := fb.version >= 2
	iovs := make([][]byte, 0, 2*len(run))
	var trailers []byte
	if withTrailers {
		trailers = make([]byte, pageTrailerSize*len(run))
	}
	for k, i := range run {
		iovs = append(iovs, bufs[i][:fb.blockSize])
		if withTrailers {
			iovs = append(iovs, trailers[k*pageTrailerSize:(k+1)*pageTrailerSize])
		}
	}
	n, ok := preadvFull(fb.f, iovs, fb.offset(ids[run[0]]))
	if !ok {
		for _, i := range run {
			fb.readVerified(ids[i], bufs[i][:fb.blockSize])
		}
		return
	}
	// Zero every byte past the read extent (pages beyond EOF are lazily
	// extended, never-written, and must read as zeros), tracking how much
	// of each iovec was filled so trailer presence is known exactly.
	filled := make([]int, len(iovs))
	rem := n
	for j, iov := range iovs {
		f := len(iov)
		if f > rem {
			f = rem
		}
		filled[j] = f
		for b := f; b < len(iov); b++ {
			iov[b] = 0
		}
		rem -= f
	}
	if !withTrailers {
		return
	}
	for k, i := range run {
		if filled[2*k+1] < pageTrailerSize {
			continue // trailer beyond EOF: unwritten page, zeros by construction
		}
		tr := trailers[k*pageTrailerSize : (k+1)*pageTrailerSize]
		want := binary.LittleEndian.Uint32(tr[0:4])
		dataLen := int(binary.LittleEndian.Uint32(tr[4:8]))
		if dataLen > fb.blockSize {
			panic(fmt.Errorf("storage: page %d: %w: trailer claims %d bytes in a %d-byte block",
				ids[i], ErrChecksum, dataLen, fb.blockSize))
		}
		if got := crc32.Checksum(bufs[i][:dataLen], castagnoli); got != want {
			panic(fmt.Errorf("storage: page %d: %w: stored %08x, computed %08x over %d bytes",
				ids[i], ErrChecksum, want, got, dataLen))
		}
	}
}
