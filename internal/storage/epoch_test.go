package storage

import (
	"path/filepath"
	"testing"
)

// TestSnapshotPinsDisk checks the copy-on-write contract on the simulator:
// a page freed while a snapshot reader is active is not recycled until the
// reader leaves, and is recycled afterwards.
func TestSnapshotPinsDisk(t *testing.T) {
	d := NewDisk(64)
	a := d.Alloc()
	d.Write(a, []byte("live bytes"))

	e := d.SnapshotEnter()
	d.Free(a)
	if got := d.SnapshotStats(); got.PinnedPages != 1 || got.Readers != 1 {
		t.Fatalf("stats after pinned free: %+v", got)
	}
	b := d.Alloc()
	if b == a {
		t.Fatalf("Alloc recycled pinned page %d under an active snapshot", a)
	}
	// The pinned page's bytes must still be readable.
	buf := make([]byte, 64)
	d.Read(a, buf)
	if string(buf[:10]) != "live bytes" {
		t.Fatalf("pinned page lost its bytes: %q", buf[:10])
	}

	d.SnapshotLeave(e)
	if got := d.SnapshotStats(); got.PinnedPages != 0 || got.Readers != 0 {
		t.Fatalf("stats after drain: %+v", got)
	}
	if c := d.Alloc(); c != a {
		t.Fatalf("Alloc after drain = %d, want recycled page %d", c, a)
	}
}

// TestSnapshotNoReadersNoPins checks that frees without active readers
// recycle immediately — the epoch machinery must cost nothing when idle.
func TestSnapshotNoReadersNoPins(t *testing.T) {
	d := NewDisk(64)
	a := d.Alloc()
	d.Free(a)
	if got := d.SnapshotStats().PinnedPages; got != 0 {
		t.Fatalf("pins without readers: %d", got)
	}
	if b := d.Alloc(); b != a {
		t.Fatalf("Alloc = %d, want immediate recycle of %d", b, a)
	}
}

// TestSnapshotEpochOverlap checks the conservative drain rule: pins taken
// while an old reader is active survive a newer reader entering and
// leaving, and drain only when the old reader goes.
func TestSnapshotEpochOverlap(t *testing.T) {
	d := NewDisk(64)
	a := d.Alloc()

	old := d.SnapshotEnter()
	d.Free(a) // pinned at the old reader's epoch
	d.SnapshotAdvance()
	young := d.SnapshotEnter() // enters the advanced epoch
	d.SnapshotLeave(young)
	if got := d.SnapshotStats().PinnedPages; got != 1 {
		t.Fatalf("pin dropped while its epoch's reader is still active: pins=%d", got)
	}
	d.SnapshotLeave(old)
	if got := d.SnapshotStats().PinnedPages; got != 0 {
		t.Fatalf("pin survived its last reader: pins=%d", got)
	}
}

// TestSnapshotLeaveUnbalancedPanics documents the bracket contract.
func TestSnapshotLeaveUnbalancedPanics(t *testing.T) {
	d := NewDisk(64)
	defer func() {
		if recover() == nil {
			t.Fatal("SnapshotLeave without Enter did not panic")
		}
	}()
	d.SnapshotLeave(0)
}

// TestSnapshotPinsFileBackend checks pinning on the durable backend and —
// the crash-safety half of the contract — that a page freed-but-pinned
// inside a committed transaction is on the durable freelist: a reopen
// (which has no readers, hence no pins) recycles it instead of leaking it.
func TestSnapshotPinsFileBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pins.pr")
	fb, err := CreateFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	fb.Write(a, []byte("old level"))
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}

	e := fb.SnapshotEnter()
	fb.Begin()
	fb.Free(a)
	fresh := fb.Alloc()
	if fresh == a {
		t.Fatalf("transaction recycled page %d freed under an active snapshot", a)
	}
	fb.Write(fresh, []byte("new level"))
	if err := fb.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed, reader still active: the old page stays pinned...
	if b := fb.Alloc(); b == a {
		t.Fatalf("Alloc recycled pinned page %d after commit", a)
	}
	buf := make([]byte, 128)
	fb.Read(a, buf)
	if string(buf[:9]) != "old level" {
		t.Fatalf("pinned page lost its bytes: %q", buf[:9])
	}
	// ...and drains when the reader leaves.
	fb.SnapshotAdvance()
	fb.SnapshotLeave(e)
	if got := fb.SnapshotStats().PinnedPages; got != 0 {
		t.Fatalf("pins after drain: %d", got)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart has no readers: the committed freelist must contain the
	// retired page (no leak), so Alloc hands it out again.
	fb2, err := OpenFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer fb2.Close()
	seen := map[PageID]bool{}
	for i, n := 0, fb2.NumPages(); i < n; i++ {
		seen[fb2.Alloc()] = true
	}
	if !seen[a] {
		t.Fatalf("reopened file leaked retired page %d", a)
	}
}
