package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileBackend stores pages in a real O_RDWR page file, so an index larger
// than RAM can be built once and served across process runs with no
// Save/Load round-trip through an in-memory copy.
//
// File layout (all page reads and writes are page-aligned):
//
//	block 0                 header: magic[6] version:u16 blockSize:u32
//	                                numPages:u32 freeCount:u32 metaLen:u32
//	                                meta[metaLen]   (superblock blob)
//	block 1..numPages       pages (page i at offset (1+i)*blockSize)
//	trailer                 freeCount little-endian u32 freelist entries
//
// The header and freelist trailer are rewritten by Sync (which also
// fsyncs); page writes go straight to the file at their aligned offset.
// A file that was not cleanly Synced/Closed fails Open's size check — the
// recorded geometry is the consistency boundary.
//
// Like Disk, a FileBackend is safe for concurrent use: allocation, the
// freelist and the metadata blob are mutex-protected, and page reads and
// writes use pread/pwrite, which are safe from many goroutines. Individual
// pages keep the single-writer / no-use-after-Free contract.
//
// Open-time corruption (short header, bad magic or version, mismatched
// block size, truncated page data, out-of-range freelist entries) is
// reported as a wrapped, inspectable error — see ErrBadMagic, ErrBadVersion,
// ErrBlockSizeMismatch and ErrTruncated. Runtime I/O failures on a
// validated file (e.g. the file shrinking underneath a running process)
// panic, mirroring the Disk's out-of-range page panics.
type FileBackend struct {
	f         *os.File
	blockSize int

	mu       sync.RWMutex
	numPages int
	free     []PageID
	meta     []byte
	zero     []byte // shared all-zero block for Alloc
	closed   bool
}

// Page-file corruption sentinels, matchable with errors.Is through the
// wrapped errors OpenFile returns.
var (
	// ErrBadMagic reports a file that is not a prtree page file.
	ErrBadMagic = errors.New("bad page-file magic")
	// ErrBadVersion reports a page file written by an unknown format version.
	ErrBadVersion = errors.New("unsupported page-file version")
	// ErrBlockSizeMismatch reports opening a page file with a different
	// block size than it was created with.
	ErrBlockSizeMismatch = errors.New("page-file block size mismatch")
	// ErrTruncated reports a page file shorter than its header's recorded
	// geometry requires.
	ErrTruncated = errors.New("page file truncated")
)

var fileMagic = [6]byte{'P', 'R', 'P', 'A', 'G', 'E'}

const (
	fileVersion    = 1
	fileHeaderSize = 6 + 2 + 4 + 4 + 4 + 4 // magic version blockSize numPages freeCount metaLen
	maxBlockSize   = 1 << 24
)

// CreateFile creates (or truncates) a page file at path with the given
// block size and returns an empty backend on it. The header is written
// immediately so even an empty index file is openable after a crash.
func CreateFile(path string, blockSize int) (*FileBackend, error) {
	if blockSize < fileHeaderSize || blockSize > maxBlockSize {
		return nil, fmt.Errorf("storage: create %s: block size %d outside [%d, %d]",
			path, blockSize, fileHeaderSize, maxBlockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create page file: %w", err)
	}
	fb := &FileBackend{f: f, blockSize: blockSize, zero: make([]byte, blockSize)}
	if err := fb.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return fb, nil
}

// OpenFile opens an existing page file, validating its header and
// geometry. expectBlockSize 0 accepts whatever block size the file was
// created with; a non-zero value must match or Open fails with a wrapped
// ErrBlockSizeMismatch.
func OpenFile(path string, expectBlockSize int) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	fb, err := openValidated(f, expectBlockSize)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return fb, nil
}

func openValidated(f *os.File, expectBlockSize int) (*FileBackend, error) {
	var hdr [fileHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("short header read: %w", err)
	}
	if [6]byte(hdr[0:6]) != fileMagic {
		return nil, fmt.Errorf("%w: %q", ErrBadMagic, hdr[0:6])
	}
	if v := binary.LittleEndian.Uint16(hdr[6:8]); v != fileVersion {
		return nil, fmt.Errorf("%w: %d (this build reads version %d)", ErrBadVersion, v, fileVersion)
	}
	blockSize := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if blockSize < fileHeaderSize || blockSize > maxBlockSize {
		return nil, fmt.Errorf("implausible block size %d", blockSize)
	}
	if expectBlockSize != 0 && expectBlockSize != blockSize {
		return nil, fmt.Errorf("%w: file has %d-byte blocks, caller wants %d",
			ErrBlockSizeMismatch, blockSize, expectBlockSize)
	}
	numPages := int(binary.LittleEndian.Uint32(hdr[12:16]))
	freeCount := int(binary.LittleEndian.Uint32(hdr[16:20]))
	metaLen := int(binary.LittleEndian.Uint32(hdr[20:24]))
	if metaLen > blockSize-fileHeaderSize {
		return nil, fmt.Errorf("metadata blob of %d bytes overflows the %d-byte header block", metaLen, blockSize)
	}
	if freeCount > numPages {
		return nil, fmt.Errorf("freelist of %d entries exceeds %d pages", freeCount, numPages)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	want := int64(1+numPages)*int64(blockSize) + 4*int64(freeCount)
	if st.Size() < want {
		return nil, fmt.Errorf("%w: %d bytes on disk, header records %d pages of %d bytes (want %d bytes)",
			ErrTruncated, st.Size(), numPages, blockSize, want)
	}
	meta := make([]byte, metaLen)
	if _, err := f.ReadAt(meta, fileHeaderSize); err != nil {
		return nil, fmt.Errorf("reading metadata blob: %w", err)
	}
	free := make([]PageID, freeCount)
	if freeCount > 0 {
		raw := make([]byte, 4*freeCount)
		if _, err := f.ReadAt(raw, int64(1+numPages)*int64(blockSize)); err != nil {
			return nil, fmt.Errorf("reading freelist: %w", err)
		}
		for i := range free {
			v := binary.LittleEndian.Uint32(raw[4*i:])
			if int(v) >= numPages {
				return nil, fmt.Errorf("freelist entry %d out of range (%d pages)", v, numPages)
			}
			free[i] = PageID(v)
		}
	}
	return &FileBackend{
		f:         f,
		blockSize: blockSize,
		numPages:  numPages,
		free:      free,
		meta:      meta,
		zero:      make([]byte, blockSize),
	}, nil
}

// BlockSize implements Backend.
func (fb *FileBackend) BlockSize() int { return fb.blockSize }

// NumPages implements Backend.
func (fb *FileBackend) NumPages() int {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	return fb.numPages
}

// PagesInUse implements Backend.
func (fb *FileBackend) PagesInUse() int {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	return fb.numPages - len(fb.free)
}

// offset returns the file offset of page id.
func (fb *FileBackend) offset(id PageID) int64 {
	return int64(1+int(id)) * int64(fb.blockSize)
}

func (fb *FileBackend) checkIDLocked(id PageID) {
	if int(id) >= fb.numPages {
		panic(fmt.Sprintf("storage: page %d out of range (have %d pages)", id, fb.numPages))
	}
}

// Alloc implements Backend. Recycled pages are zeroed in place (their old
// bytes are stale data); fresh pages extend the file lazily — reads past
// EOF already yield zeros, the first Write extends the file, and Sync's
// truncate materializes any unwritten tail — so bulk loads issue one
// pwrite per page, not two.
func (fb *FileBackend) Alloc() PageID {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if n := len(fb.free); n > 0 {
		id := fb.free[n-1]
		fb.free = fb.free[:n-1]
		if _, err := fb.f.WriteAt(fb.zero, fb.offset(id)); err != nil {
			panic(fmt.Sprintf("storage: zeroing page %d: %v", id, err))
		}
		return id
	}
	id := PageID(fb.numPages)
	fb.numPages++
	return id
}

// Free implements Backend.
func (fb *FileBackend) Free(id PageID) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.checkIDLocked(id)
	fb.free = append(fb.free, id)
}

// Read implements Backend.
func (fb *FileBackend) Read(id PageID, buf []byte) int {
	if len(buf) > fb.blockSize {
		buf = buf[:fb.blockSize]
	}
	fb.mu.RLock()
	fb.checkIDLocked(id)
	fb.mu.RUnlock()
	n, err := fb.f.ReadAt(buf, fb.offset(id))
	if err != nil && err != io.EOF {
		panic(fmt.Sprintf("storage: reading page %d: %v", id, err))
	}
	return n
}

// ReadNoCopy implements Backend. The file cannot hand out a stable view of
// its own storage, so each call returns a private copy of the page — still
// read-only to honor the shared contract.
func (fb *FileBackend) ReadNoCopy(id PageID) []byte {
	buf := make([]byte, fb.blockSize)
	fb.Read(id, buf)
	return buf
}

// PeekNoCopy implements Backend.
func (fb *FileBackend) PeekNoCopy(id PageID) []byte { return fb.ReadNoCopy(id) }

// Write implements Backend: a page-aligned pwrite of data at the page's
// offset. Shorter-than-block data leaves the page tail untouched.
func (fb *FileBackend) Write(id PageID, data []byte) {
	if len(data) > fb.blockSize {
		panic(fmt.Sprintf("storage: write of %d bytes exceeds block size %d", len(data), fb.blockSize))
	}
	fb.mu.RLock()
	fb.checkIDLocked(id)
	fb.mu.RUnlock()
	if _, err := fb.f.WriteAt(data, fb.offset(id)); err != nil {
		panic(fmt.Sprintf("storage: writing page %d: %v", id, err))
	}
}

// SetMeta implements Backend. The blob is persisted by the next Sync and
// must fit the header block alongside the fixed header.
func (fb *FileBackend) SetMeta(meta []byte) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.meta = append(fb.meta[:0], meta...)
}

// Meta implements Backend.
func (fb *FileBackend) Meta() []byte {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	if fb.meta == nil {
		return nil
	}
	out := make([]byte, len(fb.meta))
	copy(out, fb.meta)
	return out
}

// Sync implements Backend: it rewrites the header block and the freelist
// trailer, truncates the file to its exact recorded size and fsyncs.
func (fb *FileBackend) Sync() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.syncLocked()
}

func (fb *FileBackend) syncLocked() error {
	if fb.closed {
		return fmt.Errorf("storage: sync on closed page file")
	}
	if len(fb.meta) > fb.blockSize-fileHeaderSize {
		return fmt.Errorf("storage: metadata blob of %d bytes overflows the %d-byte header block",
			len(fb.meta), fb.blockSize)
	}
	hdr := make([]byte, fileHeaderSize+len(fb.meta))
	copy(hdr[0:6], fileMagic[:])
	binary.LittleEndian.PutUint16(hdr[6:8], fileVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(fb.blockSize))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(fb.numPages))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(fb.free)))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(fb.meta)))
	copy(hdr[fileHeaderSize:], fb.meta)
	if _, err := fb.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("storage: writing page-file header: %w", err)
	}
	end := int64(1+fb.numPages) * int64(fb.blockSize)
	if len(fb.free) > 0 {
		trailer := make([]byte, 4*len(fb.free))
		for i, id := range fb.free {
			binary.LittleEndian.PutUint32(trailer[4*i:], uint32(id))
		}
		if _, err := fb.f.WriteAt(trailer, end); err != nil {
			return fmt.Errorf("storage: writing freelist trailer: %w", err)
		}
		end += int64(len(trailer))
	}
	if err := fb.f.Truncate(end); err != nil {
		return fmt.Errorf("storage: truncating page file: %w", err)
	}
	if err := fb.f.Sync(); err != nil {
		return fmt.Errorf("storage: fsync page file: %w", err)
	}
	return nil
}

// Abandon closes the file WITHOUT syncing, leaving the on-disk bytes
// exactly as they were. It exists for error paths (e.g. a failed Open
// whose caller must not mutate a file it could not validate); normal
// shutdown uses Close.
func (fb *FileBackend) Abandon() {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.closed {
		return
	}
	fb.closed = true
	fb.f.Close()
}

// Close implements Backend: it syncs and closes the file. Closing an
// already closed backend is a no-op.
func (fb *FileBackend) Close() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.closed {
		return nil
	}
	if err := fb.syncLocked(); err != nil {
		fb.closed = true
		fb.f.Close()
		return err
	}
	fb.closed = true
	if err := fb.f.Close(); err != nil {
		return fmt.Errorf("storage: closing page file: %w", err)
	}
	return nil
}
