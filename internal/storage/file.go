package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// FileBackend stores pages in a real O_RDWR page file, so an index larger
// than RAM can be built once and served across process runs with no
// Save/Load round-trip through an in-memory copy.
//
// File layout (version 2; all page reads and writes are slot-aligned):
//
//	bytes 0..blockSize      header: magic[6] version:u16 blockSize:u32
//	                                numPages:u32 freeCount:u32 metaLen:u32
//	                                meta[metaLen]   (superblock blob)
//	page slots              page i at offset blockSize + i*slotSize, where
//	                        slotSize = blockSize + 8: the block image
//	                        followed by an 8-byte trailer
//	                        (u32 CRC32C over data[:dataLen], u32 dataLen)
//	trailer                 freeCount little-endian u32 freelist entries
//
// The per-page trailer makes latent sector corruption fail loudly: Read
// verifies the checksum of every fetched block and panics with an error
// wrapping ErrChecksum on a mismatch, and Fsck scans every in-use page
// without panicking. Version-1 files (no trailers) remain readable and
// writable in their original format.
//
// # Durability
//
// A FileBackend carries a sidecar write-ahead log at path+".wal" (see
// wal.go for the record format). Mutations between Begin and Commit are
// atomic and, after Commit returns, durable:
//
//   - writes to pages live in the last committed state are buffered as
//     full-block images and journaled at commit before being applied;
//   - writes to fresh or committed-free pages go straight to the page
//     file (bulk loads pay one extra fsync, not a doubled write volume)
//     and are fsynced before the commit marker;
//   - Commit appends the images, the post-state (allocator + metadata)
//     and a commit marker, fsyncs the log once, then applies the images.
//
// Sync checkpoints: it rewrites the header and freelist trailer, fsyncs
// the page file and truncates the log, making the page file alone the
// committed state. Open replays any committed log transactions (a crash
// between Commit and Sync), discards uncommitted or torn tails, and then
// checkpoints; what it did is reported through RecoveryInfo. A log with
// committed transactions supersedes the header entirely, so a crash
// anywhere inside a checkpoint recovers cleanly; and because direct
// writes can extend the file over the checkpointed freelist trailer, the
// first transaction after a checkpoint re-journals that state into the
// log before any page write (one extra fsync per log generation).
//
// Writes outside a transaction keep the legacy contract: they reach the
// file immediately and are made durable and consistent only by Sync.
//
// Like Disk, a FileBackend is safe for concurrent use: allocation, the
// freelist and the metadata blob are mutex-protected, and page reads and
// writes use pread/pwrite, which are safe from many goroutines. Individual
// pages keep the single-writer / no-use-after-Free contract; Begin, Commit
// and Rollback delimit one transaction at a time.
//
// Open-time corruption (short header, bad magic or version, mismatched
// block size, truncated page data, out-of-range or duplicated freelist
// entries, an untrustworthy log) is reported as a wrapped, inspectable
// error — see ErrBadMagic, ErrBadVersion, ErrBlockSizeMismatch,
// ErrTruncated and ErrWALCorrupt. Runtime I/O failures on a validated
// file (e.g. the file shrinking underneath a running process, a checksum
// mismatch on a read) panic, mirroring the Disk's out-of-range page
// panics; the panic value is an error wrapping ErrChecksum when the cause
// is a failed page verification.
type FileBackend struct {
	f         *os.File
	wal       *os.File
	path      string
	blockSize int
	version   int
	slotSize  int // blockSize, +pageTrailerSize from version 2 on

	// Crash-injection instrumentation: persistStep() is called before
	// every persistence side effect (page pwrite, WAL append, fsync,
	// header rewrite). See SetCrashAfterSteps.
	steps      atomic.Int64
	crashAfter atomic.Int64
	rollbacks  atomic.Uint64

	mu         sync.RWMutex
	numPages   int
	free       []PageID
	meta       []byte
	zero       []byte // shared all-zero block for Alloc
	closed     bool
	walSize    int64
	walSeq     uint64
	walRecords int64
	walBytes   int64
	recovery   *RecoveryInfo

	// ckpt snapshots the state the last completed checkpoint wrote into
	// the header, and walHasState records whether the current log
	// generation holds at least one durable committed state record. The
	// first transaction after a checkpoint re-journals ckpt before any
	// direct write can extend the file over the on-disk freelist trailer
	// (see Begin).
	ckpt        walState
	walHasState bool

	// txMu guards the open transaction's overlay and flags; it nests
	// inside mu (writers hold mu.RLock, Begin/Commit/Rollback hold mu).
	txMu sync.Mutex
	tx   *fileTx

	epochPins // Snapshotter: epoch-pinned reclamation of freed pages
}

// fileTx is one open transaction: the pre-transaction state needed for
// rollback and the redo images of committed-live pages overwritten so far.
type fileTx struct {
	prevNumPages  int
	prevFree      []PageID
	prevMeta      []byte
	committedFree map[PageID]struct{}

	overlay     map[PageID][]byte // full-block images, keyed by page
	freed       []PageID          // pages freed during the transaction
	directDirty bool              // fresh/committed-free pages were pwritten
}

// inUseCommitted reports whether id holds live data in the last committed
// state — the pages whose overwrite must be journaled, because a crash
// must be able to roll back to that state.
func (tx *fileTx) inUseCommitted(id PageID) bool {
	if int(id) >= tx.prevNumPages {
		return false
	}
	_, free := tx.committedFree[id]
	return !free
}

// Page-file corruption sentinels, matchable with errors.Is through the
// wrapped errors OpenFile returns.
var (
	// ErrBadMagic reports a file that is not a prtree page file.
	ErrBadMagic = errors.New("bad page-file magic")
	// ErrBadVersion reports a page file written by an unknown format version.
	ErrBadVersion = errors.New("unsupported page-file version")
	// ErrBlockSizeMismatch reports opening a page file with a different
	// block size than it was created with.
	ErrBlockSizeMismatch = errors.New("page-file block size mismatch")
	// ErrTruncated reports a page file shorter than its header's recorded
	// geometry requires.
	ErrTruncated = errors.New("page file truncated")
	// ErrChecksum reports a page whose stored CRC32C trailer does not
	// match its contents — latent corruption caught at read time. It is
	// returned (wrapped) by Fsck and CheckPage and carried by the panic
	// Read raises on a poisoned block.
	ErrChecksum = errors.New("page checksum mismatch")
)

var fileMagic = [6]byte{'P', 'R', 'P', 'A', 'G', 'E'}

const (
	fileVersion    = 2                     // written by CreateFile; version 1 stays readable
	fileHeaderSize = 6 + 2 + 4 + 4 + 4 + 4 // magic version blockSize numPages freeCount metaLen
	maxBlockSize   = 1 << 24

	// pageTrailerSize is the per-slot checksum trailer of version-2
	// files: u32 CRC32C over data[:dataLen], u32 dataLen.
	pageTrailerSize = 8
)

// slotSizeFor returns the on-disk bytes one page occupies under a format
// version.
func slotSizeFor(version, blockSize int) int {
	if version >= 2 {
		return blockSize + pageTrailerSize
	}
	return blockSize
}

// CreateFile creates (or truncates) a page file at path with the given
// block size and returns an empty backend on it. The header and an empty
// write-ahead log (at path+".wal") are written immediately so even an
// empty index file is openable after a crash.
func CreateFile(path string, blockSize int) (*FileBackend, error) {
	if blockSize < fileHeaderSize || blockSize > maxBlockSize {
		return nil, fmt.Errorf("storage: create %s: block size %d outside [%d, %d]",
			path, blockSize, fileHeaderSize, maxBlockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create page file: %w", err)
	}
	fb := &FileBackend{
		f:         f,
		path:      path,
		blockSize: blockSize,
		version:   fileVersion,
		slotSize:  slotSizeFor(fileVersion, blockSize),
		zero:      make([]byte, blockSize),
	}
	cleanup := func() {
		f.Close()
		os.Remove(path)
		if fb.wal != nil {
			fb.wal.Close()
			os.Remove(walPath(path))
		}
	}
	wf, err := os.OpenFile(walPath(path), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		cleanup()
		return nil, fmt.Errorf("storage: create write-ahead log: %w", err)
	}
	fb.wal = wf
	if _, err := wf.WriteAt(encodeWALHeader(blockSize), 0); err != nil {
		cleanup()
		return nil, fmt.Errorf("storage: writing log header: %w", err)
	}
	if err := wf.Sync(); err != nil {
		cleanup()
		return nil, fmt.Errorf("storage: fsync write-ahead log: %w", err)
	}
	fb.walSize = walHeaderSize
	if err := fb.Sync(); err != nil {
		cleanup()
		return nil, err
	}
	return fb, nil
}

// walPath returns the sidecar log path for a page file.
func walPath(pagePath string) string { return pagePath + ".wal" }

// OpenFile opens an existing page file, validating its header and
// geometry and replaying the write-ahead log if the file was not cleanly
// checkpointed. expectBlockSize 0 accepts whatever block size the file
// was created with; a non-zero value must match or Open fails with a
// wrapped ErrBlockSizeMismatch. What recovery found is available from
// RecoveryInfo afterwards.
//
// When the log holds committed transactions, its last state record — not
// the header — is the committed truth: a crash can interrupt a checkpoint
// after the header was rewritten but before the freelist trailer and
// truncate caught up, so the header's geometry is only validated when the
// log is empty.
func OpenFile(path string, expectBlockSize int) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	fb, err := openAndRecover(f, path, expectBlockSize)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return fb, nil
}

// fileHeader is the fixed header's decoded fields, checked for internal
// consistency but not yet against the file's actual size.
type fileHeader struct {
	version   int
	blockSize int
	slotSize  int
	numPages  int
	freeCount int
	metaLen   int
}

// readFileHeader reads and validates everything about the header that
// does not depend on trusting the rest of the file.
func readFileHeader(f *os.File, expectBlockSize int) (fileHeader, error) {
	var hdr fileHeader
	var raw [fileHeaderSize]byte
	if _, err := f.ReadAt(raw[:], 0); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = io.ErrUnexpectedEOF
		}
		return hdr, fmt.Errorf("short header read: %w", err)
	}
	if [6]byte(raw[0:6]) != fileMagic {
		return hdr, fmt.Errorf("%w: %q", ErrBadMagic, raw[0:6])
	}
	hdr.version = int(binary.LittleEndian.Uint16(raw[6:8]))
	if hdr.version < 1 || hdr.version > fileVersion {
		return hdr, fmt.Errorf("%w: %d (this build reads versions 1-%d)", ErrBadVersion, hdr.version, fileVersion)
	}
	hdr.blockSize = int(binary.LittleEndian.Uint32(raw[8:12]))
	if hdr.blockSize < fileHeaderSize || hdr.blockSize > maxBlockSize {
		return hdr, fmt.Errorf("implausible block size %d", hdr.blockSize)
	}
	if expectBlockSize != 0 && expectBlockSize != hdr.blockSize {
		return hdr, fmt.Errorf("%w: file has %d-byte blocks, caller wants %d",
			ErrBlockSizeMismatch, hdr.blockSize, expectBlockSize)
	}
	hdr.slotSize = slotSizeFor(hdr.version, hdr.blockSize)
	hdr.numPages = int(binary.LittleEndian.Uint32(raw[12:16]))
	hdr.freeCount = int(binary.LittleEndian.Uint32(raw[16:20]))
	hdr.metaLen = int(binary.LittleEndian.Uint32(raw[20:24]))
	if hdr.metaLen > hdr.blockSize-fileHeaderSize {
		return hdr, fmt.Errorf("metadata blob of %d bytes overflows the %d-byte header block", hdr.metaLen, hdr.blockSize)
	}
	if hdr.freeCount > hdr.numPages {
		return hdr, fmt.Errorf("freelist of %d entries exceeds %d pages", hdr.freeCount, hdr.numPages)
	}
	return hdr, nil
}

// openAndRecover validates the header, decides whether the header or the
// write-ahead log describes the committed state, loads that state, and
// checkpoints. It runs before the backend is handed to any caller, so it
// works on the struct without locks.
func openAndRecover(f *os.File, path string, expectBlockSize int) (*FileBackend, error) {
	hdr, err := readFileHeader(f, expectBlockSize)
	if err != nil {
		return nil, err
	}
	fb := &FileBackend{
		f:         f,
		path:      path,
		blockSize: hdr.blockSize,
		version:   hdr.version,
		slotSize:  hdr.slotSize,
		zero:      make([]byte, hdr.blockSize),
	}
	fail := func(err error) (*FileBackend, error) {
		if fb.wal != nil {
			fb.wal.Close()
		}
		return nil, err
	}
	var res walScanResult
	wf, err := os.OpenFile(walPath(path), os.O_RDWR, 0o644)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// A pre-WAL index: the sidecar is created (empty) after the state
		// is validated, so a failed open leaves no side effects.
	case err != nil:
		return nil, fmt.Errorf("opening write-ahead log: %w", err)
	default:
		fb.wal = wf
		st, err := wf.Stat()
		if err != nil {
			return fail(fmt.Errorf("write-ahead log: %w", err))
		}
		if st.Size() >= walHeaderSize {
			data := make([]byte, st.Size())
			if _, err := io.ReadFull(io.NewSectionReader(wf, 0, st.Size()), data); err != nil {
				return fail(fmt.Errorf("reading write-ahead log: %w", err))
			}
			if err := checkWALHeader(data, fb.blockSize); err != nil {
				return fail(err)
			}
			res, err = scanWAL(data[walHeaderSize:], fb.blockSize)
			if err != nil {
				return fail(err)
			}
			fb.walSize = st.Size()
		}
	}
	if len(res.txs) > 0 {
		// The log is authoritative: replay the committed images and adopt
		// the last committed state, ignoring the header's possibly
		// mid-checkpoint geometry and trailer.
		fb.walSeq = res.lastSeq
		for _, tx := range res.txs {
			for _, pg := range tx.pages {
				fb.writePageRaw(pg.id, pg.data)
				res.info.ReplayedPages++
			}
			fb.numPages = tx.state.numPages
			fb.free = append(fb.free[:0], tx.state.free...)
			fb.meta = append(fb.meta[:0], tx.state.meta...)
			res.info.ReplayedTxs++
		}
		fb.walHasState = true
	} else if err := fb.loadCheckpoint(hdr); err != nil {
		return fail(err)
	}
	if fb.wal == nil {
		wf, err := os.OpenFile(walPath(path), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return fail(fmt.Errorf("opening write-ahead log: %w", err))
		}
		fb.wal = wf
	}
	if fb.walSize < walHeaderSize {
		// Missing sidecar or a header torn during its creation: no commit
		// can exist yet, start a fresh log.
		if err := fb.resetWALFile(); err != nil {
			return fail(err)
		}
	}
	if res.info.dirty() {
		info := res.info
		fb.recovery = &info
	}
	// Checkpoint: the recovered state becomes the page file's durable
	// identity and the log is retired, exactly as a clean Sync would.
	if err := fb.syncLocked(); err != nil {
		return fail(err)
	}
	return fb, nil
}

// loadCheckpoint reads the committed state (geometry, freelist, metadata)
// the header describes, with full validation against the file's size.
// Only sound when the log holds no committed transactions — after a
// mid-checkpoint crash the header can be ahead of the trailer, and the
// log's last state wins instead.
func (fb *FileBackend) loadCheckpoint(hdr fileHeader) error {
	st, err := fb.f.Stat()
	if err != nil {
		return err
	}
	want := int64(hdr.blockSize) + int64(hdr.numPages)*int64(hdr.slotSize) + 4*int64(hdr.freeCount)
	if st.Size() < want {
		return fmt.Errorf("%w: %d bytes on disk, header records %d pages of %d bytes (want %d bytes)",
			ErrTruncated, st.Size(), hdr.numPages, hdr.slotSize, want)
	}
	meta := make([]byte, hdr.metaLen)
	if _, err := fb.f.ReadAt(meta, fileHeaderSize); err != nil {
		return fmt.Errorf("reading metadata blob: %w", err)
	}
	free := make([]PageID, hdr.freeCount)
	if hdr.freeCount > 0 {
		raw := make([]byte, 4*hdr.freeCount)
		if _, err := fb.f.ReadAt(raw, int64(hdr.blockSize)+int64(hdr.numPages)*int64(hdr.slotSize)); err != nil {
			return fmt.Errorf("reading freelist: %w", err)
		}
		seen := make(map[PageID]struct{}, hdr.freeCount)
		for i := range free {
			v := binary.LittleEndian.Uint32(raw[4*i:])
			if int(v) >= hdr.numPages {
				return fmt.Errorf("freelist entry %d out of range (%d pages)", v, hdr.numPages)
			}
			if _, dup := seen[PageID(v)]; dup {
				// A duplicated entry would hand the same live block out
				// of Alloc twice; refuse rather than corrupt silently.
				return fmt.Errorf("freelist entry %d duplicated", v)
			}
			seen[PageID(v)] = struct{}{}
			free[i] = PageID(v)
		}
	}
	fb.numPages = hdr.numPages
	fb.free = free
	fb.meta = meta
	return nil
}

// resetWALFile truncates the log to a fresh header.
func (fb *FileBackend) resetWALFile() error {
	if err := fb.wal.Truncate(0); err != nil {
		return fmt.Errorf("truncating write-ahead log: %w", err)
	}
	if _, err := fb.wal.WriteAt(encodeWALHeader(fb.blockSize), 0); err != nil {
		return fmt.Errorf("writing log header: %w", err)
	}
	if err := fb.wal.Sync(); err != nil {
		return fmt.Errorf("fsync write-ahead log: %w", err)
	}
	fb.walSize = walHeaderSize
	return nil
}

// RecoveryInfo reports what crash recovery did when this backend was
// opened, or nil when the file was clean. The report is stable for the
// backend's lifetime.
func (fb *FileBackend) RecoveryInfo() *RecoveryInfo { return fb.recovery }

// WALStats describes the write-ahead log's cumulative activity.
type WALStats struct {
	// Records and Bytes count log appends since the backend was opened.
	Records int64
	Bytes   int64
	// Size is the log file's current size (header included); Sync
	// truncates it back to the 16-byte header.
	Size int64
}

// WALStats returns the log counters — the direct measure of WAL overhead
// on a write path.
func (fb *FileBackend) WALStats() WALStats {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	return WALStats{Records: fb.walRecords, Bytes: fb.walBytes, Size: fb.walSize}
}

// SetCrashAfterSteps arranges for the backend to panic with an error
// wrapping ErrInjectedFault immediately BEFORE its n-th persistence side
// effect (page pwrite, log append, fsync, header rewrite), counted from
// the backend's creation, and on every attempted side effect thereafter —
// modeling a process killed at that exact point whose file descriptors go
// away. n <= 0 disables injection. Together with PersistSteps it lets a
// test kill a workload at every boundary deterministically.
func (fb *FileBackend) SetCrashAfterSteps(n int64) { fb.crashAfter.Store(n) }

// PersistSteps returns the number of persistence side effects performed
// (or refused) so far.
func (fb *FileBackend) PersistSteps() int64 { return fb.steps.Load() }

// persistStep counts one persistence side effect and panics if a crash
// point is armed and reached. Once tripped, every later step panics too.
func (fb *FileBackend) persistStep() {
	n := fb.steps.Add(1)
	if c := fb.crashAfter.Load(); c > 0 && n >= c {
		panic(fmt.Errorf("%w: killed at persistence step %d", ErrInjectedFault, n))
	}
}

// BlockSize implements Backend.
func (fb *FileBackend) BlockSize() int { return fb.blockSize }

// NumPages implements Backend.
func (fb *FileBackend) NumPages() int {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	return fb.numPages
}

// PagesInUse implements Backend.
func (fb *FileBackend) PagesInUse() int {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	n := fb.numPages - len(fb.free)
	if fb.tx != nil {
		n -= len(fb.tx.freed)
	}
	return n
}

// offset returns the file offset of page id's slot.
func (fb *FileBackend) offset(id PageID) int64 {
	return int64(fb.blockSize) + int64(id)*int64(fb.slotSize)
}

func (fb *FileBackend) checkIDLocked(id PageID) {
	if int(id) >= fb.numPages {
		panic(fmt.Sprintf("storage: page %d out of range (have %d pages)", id, fb.numPages))
	}
}

// Alloc implements Backend. Recycled pages are zeroed in place (their old
// bytes are stale data); fresh pages extend the file lazily — reads past
// EOF already yield zeros, the first Write extends the file, and the next
// checkpoint's truncate materializes any unwritten tail — so bulk loads
// issue one pwrite per page, not two. During a transaction only pages
// free in the last committed state are recycled; pages freed within the
// transaction become allocatable after Commit.
func (fb *FileBackend) Alloc() PageID {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if i := fb.pickFree(fb.free); i >= 0 {
		var id PageID
		fb.free, id = removeAt(fb.free, i)
		if fb.tx != nil {
			// The zero fill must be durable by commit time even though
			// the page is never explicitly written.
			fb.tx.directDirty = true
		}
		fb.writePage(id, fb.zero)
		return id
	}
	id := PageID(fb.numPages)
	fb.numPages++
	return id
}

// Free implements Backend. While snapshot readers are active the page is
// retired (see Snapshotter): it reaches the freelist as usual — inside a
// transaction at Commit, so the committed state never leaks it across a
// crash — but Alloc withholds it until the readers that might still
// dereference its bytes drain.
func (fb *FileBackend) Free(id PageID) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.checkIDLocked(id)
	fb.retire(id)
	if tx := fb.tx; tx != nil {
		// Freed pages join the allocator only at Commit; their redo
		// image, if any, is dropped (the content no longer matters).
		delete(tx.overlay, id)
		tx.freed = append(tx.freed, id)
		return
	}
	fb.free = append(fb.free, id)
}

// Read implements Backend. Inside a transaction, pages with a buffered
// redo image read back their transactional content. On version-2 files
// the block's CRC32C trailer is verified; a mismatch panics with an error
// wrapping ErrChecksum (use CheckPage or Fsck for a non-panicking scan).
func (fb *FileBackend) Read(id PageID, buf []byte) int {
	if len(buf) > fb.blockSize {
		buf = buf[:fb.blockSize]
	}
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	fb.checkIDLocked(id)
	if tx := fb.tx; tx != nil {
		fb.txMu.Lock()
		img, ok := tx.overlay[id]
		if ok {
			n := copy(buf, img)
			fb.txMu.Unlock()
			return n
		}
		fb.txMu.Unlock()
	}
	return fb.readVerified(id, buf)
}

// readVerified preads page id into buf and verifies its trailer (v2).
// The caller holds at least a read lock.
func (fb *FileBackend) readVerified(id PageID, buf []byte) int {
	n, err := fb.f.ReadAt(buf, fb.offset(id))
	if err != nil && err != io.EOF {
		panic(fmt.Sprintf("storage: reading page %d: %v", id, err))
	}
	if fb.version >= 2 {
		if err := fb.verifyTrailer(id, buf); err != nil {
			panic(err)
		}
	}
	return n
}

// verifyTrailer checks buf (the head of page id, len(buf) <= blockSize)
// against the slot's checksum trailer. A missing trailer (EOF inside the
// slot) means a lazily extended, never-written page, which is valid and
// reads as zeros. The caller holds at least a read lock.
func (fb *FileBackend) verifyTrailer(id PageID, buf []byte) error {
	var tr [pageTrailerSize]byte
	tn, err := fb.f.ReadAt(tr[:], fb.offset(id)+int64(fb.blockSize))
	if err != nil && err != io.EOF {
		panic(fmt.Sprintf("storage: reading page %d trailer: %v", id, err))
	}
	if tn < pageTrailerSize {
		return nil // page beyond EOF: unwritten, zeros by construction
	}
	want := binary.LittleEndian.Uint32(tr[0:4])
	dataLen := int(binary.LittleEndian.Uint32(tr[4:8]))
	if dataLen > fb.blockSize {
		return fmt.Errorf("storage: page %d: %w: trailer claims %d bytes in a %d-byte block",
			id, ErrChecksum, dataLen, fb.blockSize)
	}
	data := buf
	if dataLen > len(buf) {
		// The caller asked for a prefix shorter than the checksummed
		// content; fetch the full extent to verify.
		data = make([]byte, dataLen)
		if _, err := fb.f.ReadAt(data, fb.offset(id)); err != nil && err != io.EOF {
			panic(fmt.Sprintf("storage: reading page %d: %v", id, err))
		}
	}
	if got := crc32.Checksum(data[:dataLen], castagnoli); got != want {
		return fmt.Errorf("storage: page %d: %w: stored %08x, computed %08x over %d bytes",
			id, ErrChecksum, want, got, dataLen)
	}
	return nil
}

// CheckPage verifies page id's checksum trailer without panicking,
// returning an error wrapping ErrChecksum on a mismatch. Version-1 pages
// (no trailers) always pass.
func (fb *FileBackend) CheckPage(id PageID) error {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	if int(id) >= fb.numPages {
		return fmt.Errorf("storage: page %d out of range (have %d pages)", id, fb.numPages)
	}
	if fb.version < 2 {
		return nil
	}
	buf := make([]byte, fb.blockSize)
	if _, err := fb.f.ReadAt(buf, fb.offset(id)); err != nil && err != io.EOF {
		return fmt.Errorf("storage: reading page %d: %w", id, err)
	}
	return fb.verifyTrailer(id, buf)
}

// Fsck verifies the checksum trailer of every in-use page (freelist pages
// hold no live data and are skipped), returning the first failure as a
// wrapped, inspectable error. It never panics on corrupt content.
func (fb *FileBackend) Fsck() error {
	fb.mu.RLock()
	freeSet := make(map[PageID]struct{}, len(fb.free))
	for _, id := range fb.free {
		freeSet[id] = struct{}{}
	}
	if tx := fb.tx; tx != nil {
		for _, id := range tx.freed {
			freeSet[id] = struct{}{}
		}
	}
	numPages := fb.numPages
	fb.mu.RUnlock()
	for id := PageID(0); int(id) < numPages; id++ {
		if _, free := freeSet[id]; free {
			continue
		}
		if err := fb.CheckPage(id); err != nil {
			return err
		}
	}
	return nil
}

// ReadNoCopy implements Backend. The file cannot hand out a stable view of
// its own storage, so each call returns a private copy of the page — still
// read-only to honor the shared contract.
func (fb *FileBackend) ReadNoCopy(id PageID) []byte {
	buf := make([]byte, fb.blockSize)
	fb.Read(id, buf)
	return buf
}

// PeekNoCopy implements Backend. Peeks are deliberately unverified: they
// serve open-time sanity checks that must report structural errors rather
// than panic; checksum verification belongs to Read, CheckPage and Fsck.
func (fb *FileBackend) PeekNoCopy(id PageID) []byte {
	buf := make([]byte, fb.blockSize)
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	fb.checkIDLocked(id)
	if tx := fb.tx; tx != nil {
		fb.txMu.Lock()
		img, ok := tx.overlay[id]
		if ok {
			copy(buf, img)
			fb.txMu.Unlock()
			return buf
		}
		fb.txMu.Unlock()
	}
	if _, err := fb.f.ReadAt(buf, fb.offset(id)); err != nil && err != io.EOF {
		panic(fmt.Sprintf("storage: reading page %d: %v", id, err))
	}
	return buf
}

// Write implements Backend: a slot-aligned pwrite of data plus, on
// version-2 files, its checksum trailer. Shorter-than-block data leaves
// the page tail untouched. Inside a transaction, a write to a page live
// in the last committed state is buffered as a redo image instead and
// reaches the file at Commit.
func (fb *FileBackend) Write(id PageID, data []byte) {
	if len(data) > fb.blockSize {
		panic(fmt.Sprintf("storage: write of %d bytes exceeds block size %d", len(data), fb.blockSize))
	}
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	fb.checkIDLocked(id)
	if tx := fb.tx; tx != nil {
		if tx.inUseCommitted(id) {
			fb.txMu.Lock()
			defer fb.txMu.Unlock()
			img, ok := tx.overlay[id]
			if !ok {
				// Seed the image with the committed content so partial
				// writes keep the old tail, matching direct-write
				// semantics exactly.
				img = make([]byte, fb.blockSize)
				fb.readVerified(id, img)
				tx.overlay[id] = img
			}
			copy(img, data)
			return
		}
		fb.txMu.Lock()
		tx.directDirty = true
		fb.txMu.Unlock()
	}
	fb.writePage(id, data)
}

// writePage pwrites data and its trailer into page id's slot. The caller
// holds at least a read lock (geometry is stable).
func (fb *FileBackend) writePage(id PageID, data []byte) {
	fb.persistStep()
	fb.writePageRaw(id, data)
}

// writePageRaw is writePage without crash-point accounting, used by WAL
// replay before the backend is live.
func (fb *FileBackend) writePageRaw(id PageID, data []byte) {
	if _, err := fb.f.WriteAt(data, fb.offset(id)); err != nil {
		panic(fmt.Sprintf("storage: writing page %d: %v", id, err))
	}
	if fb.version >= 2 {
		var tr [pageTrailerSize]byte
		binary.LittleEndian.PutUint32(tr[0:4], crc32.Checksum(data, castagnoli))
		binary.LittleEndian.PutUint32(tr[4:8], uint32(len(data)))
		if _, err := fb.f.WriteAt(tr[:], fb.offset(id)+int64(fb.blockSize)); err != nil {
			panic(fmt.Sprintf("storage: writing page %d trailer: %v", id, err))
		}
	}
}

// SetMeta implements Backend. The blob is persisted by the next Commit or
// Sync and must fit the header block alongside the fixed header.
func (fb *FileBackend) SetMeta(meta []byte) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	fb.meta = append(fb.meta[:0], meta...)
}

// Meta implements Backend.
func (fb *FileBackend) Meta() []byte {
	fb.mu.RLock()
	defer fb.mu.RUnlock()
	if fb.meta == nil {
		return nil
	}
	out := make([]byte, len(fb.meta))
	copy(out, fb.meta)
	return out
}

// Begin implements Transactional: it opens a transaction, snapshotting
// the committed allocator state for Rollback. Transactions do not nest.
func (fb *FileBackend) Begin() {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.closed {
		panic("storage: begin on closed page file")
	}
	if fb.tx != nil {
		panic("storage: nested transaction on page file")
	}
	tx := &fileTx{
		prevNumPages:  fb.numPages,
		prevFree:      append([]PageID(nil), fb.free...),
		prevMeta:      append([]byte(nil), fb.meta...),
		committedFree: make(map[PageID]struct{}, len(fb.free)),
		overlay:       make(map[PageID][]byte),
	}
	for _, id := range fb.free {
		tx.committedFree[id] = struct{}{}
	}
	fb.tx = tx
	// The first transaction of a log generation re-journals the
	// checkpointed state before any page write: direct writes to fresh
	// pages extend the file over the on-disk freelist trailer, and a crash
	// mid-transaction must still find the committed freelist somewhere —
	// in the log, which Open prefers over the header once it holds a
	// committed state.
	if !fb.walHasState && len(fb.ckpt.free) > 0 {
		fb.journalCheckpointState()
	}
}

// journalCheckpointState appends the last checkpoint's state as a
// committed (empty) transaction and fsyncs it. I/O failures panic: the
// caller is Begin, which has no error path, and a log that cannot be
// appended to cannot honor any later Commit either.
func (fb *FileBackend) journalCheckpointState() {
	recs := [][]byte{
		encodeWALState(fb.ckpt.numPages, fb.ckpt.free, fb.ckpt.meta),
		encodeWALCommit(fb.walSeq + 1),
	}
	start := fb.walSize
	for _, rec := range recs {
		fb.persistStep()
		if _, err := fb.wal.WriteAt(rec, fb.walSize); err != nil {
			fb.walSize = start
			panic(fmt.Sprintf("storage: journaling checkpoint state: %v", err))
		}
		fb.walSize += int64(len(rec))
		fb.walRecords++
		fb.walBytes += int64(len(rec))
	}
	fb.persistStep()
	if err := fb.wal.Sync(); err != nil {
		fb.walSize = start
		panic(fmt.Sprintf("storage: fsync write-ahead log: %v", err))
	}
	fb.walSeq++
	fb.walHasState = true
}

// Commit implements Transactional. It makes the transaction durable and
// atomic: direct writes to fresh pages are fsynced first, then the redo
// images, the post-state and a commit marker are appended to the log and
// fsynced (one fsync — the commit point), and finally the images are
// applied to the page file (the log replays them if a crash interrupts).
func (fb *FileBackend) Commit() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	tx := fb.tx
	if tx == nil {
		return fmt.Errorf("storage: commit without begin")
	}
	if fb.closed {
		return fmt.Errorf("storage: commit on closed page file")
	}
	if len(fb.meta) > fb.blockSize-fileHeaderSize {
		return fmt.Errorf("storage: metadata blob of %d bytes overflows the %d-byte header block",
			len(fb.meta), fb.blockSize)
	}
	if tx.directDirty {
		fb.persistStep()
		if err := fb.f.Sync(); err != nil {
			return fmt.Errorf("storage: fsync page file before commit: %w", err)
		}
	}
	ids := make([]PageID, 0, len(tx.overlay))
	for id := range tx.overlay {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	newFree := make([]PageID, 0, len(fb.free)+len(tx.freed))
	newFree = append(newFree, fb.free...)
	newFree = append(newFree, tx.freed...)
	seq := fb.walSeq + 1
	recs := make([][]byte, 0, len(ids)+2)
	for _, id := range ids {
		recs = append(recs, encodeWALPage(id, tx.overlay[id]))
	}
	recs = append(recs, encodeWALState(fb.numPages, newFree, fb.meta))
	recs = append(recs, encodeWALCommit(seq))
	// On an append or fsync error the log offset rewinds so the dangling
	// (uncommitted) records are overwritten by the next commit; the
	// transaction stays open for the caller to Rollback.
	startSize := fb.walSize
	for _, rec := range recs {
		fb.persistStep()
		if _, err := fb.wal.WriteAt(rec, fb.walSize); err != nil {
			fb.walSize = startSize
			return fmt.Errorf("storage: appending to write-ahead log: %w", err)
		}
		fb.walSize += int64(len(rec))
		fb.walRecords++
		fb.walBytes += int64(len(rec))
	}
	fb.persistStep()
	if err := fb.wal.Sync(); err != nil {
		fb.walSize = startSize
		return fmt.Errorf("storage: fsync write-ahead log: %w", err)
	}
	fb.walHasState = true
	// Committed. Apply the redo images in place; on a crash from here on
	// the log replays them.
	for _, id := range ids {
		fb.writePage(id, tx.overlay[id])
	}
	fb.free = newFree
	fb.walSeq = seq
	fb.tx = nil
	return nil
}

// Rollback implements Transactional: it discards the open transaction,
// restoring the committed allocator state and metadata. Pages freshly
// written during the transaction are left as garbage beyond the committed
// geometry; the next checkpoint's truncate reclaims them. A Rollback with
// no open transaction is a no-op.
func (fb *FileBackend) Rollback() {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	tx := fb.tx
	if tx == nil {
		return
	}
	fb.numPages = tx.prevNumPages
	fb.free = tx.prevFree
	fb.meta = tx.prevMeta
	fb.tx = nil
	// Restoring the pre-transaction allocator state also revokes any page
	// a concurrent off-transaction producer (a background compaction
	// build) allocated while the transaction was open. Such producers
	// watch this counter and abandon their half-built pages when it moves.
	fb.rollbacks.Add(1)
}

// Rollbacks returns how many transactions have been rolled back over the
// backend's lifetime. A rollback restores the committed allocator state
// wholesale, which revokes pages allocated by anyone while the
// transaction was open — off-transaction page producers (background
// compaction builds) snapshot this counter before allocating and discard
// their work without freeing when it changed underneath them.
func (fb *FileBackend) Rollbacks() uint64 { return fb.rollbacks.Load() }

// Sync implements Backend: a checkpoint. It rewrites the header block and
// the freelist trailer, truncates the file to its exact recorded size,
// fsyncs, and retires the write-ahead log — after Sync the page file
// alone describes the committed state. Syncing inside an open transaction
// is an error; Commit first.
func (fb *FileBackend) Sync() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.syncLocked()
}

func (fb *FileBackend) syncLocked() error {
	if fb.closed {
		return fmt.Errorf("storage: sync on closed page file")
	}
	if fb.tx != nil {
		return fmt.Errorf("storage: sync inside an open transaction")
	}
	if len(fb.meta) > fb.blockSize-fileHeaderSize {
		return fmt.Errorf("storage: metadata blob of %d bytes overflows the %d-byte header block",
			len(fb.meta), fb.blockSize)
	}
	hdr := make([]byte, fileHeaderSize+len(fb.meta))
	copy(hdr[0:6], fileMagic[:])
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(fb.version))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(fb.blockSize))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(fb.numPages))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(fb.free)))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(fb.meta)))
	copy(hdr[fileHeaderSize:], fb.meta)
	fb.persistStep()
	if _, err := fb.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("storage: writing page-file header: %w", err)
	}
	end := int64(fb.blockSize) + int64(fb.numPages)*int64(fb.slotSize)
	if len(fb.free) > 0 {
		trailer := make([]byte, 4*len(fb.free))
		for i, id := range fb.free {
			binary.LittleEndian.PutUint32(trailer[4*i:], uint32(id))
		}
		fb.persistStep()
		if _, err := fb.f.WriteAt(trailer, end); err != nil {
			return fmt.Errorf("storage: writing freelist trailer: %w", err)
		}
		end += int64(4 * len(fb.free))
	}
	if err := fb.f.Truncate(end); err != nil {
		return fmt.Errorf("storage: truncating page file: %w", err)
	}
	fb.persistStep()
	if err := fb.f.Sync(); err != nil {
		return fmt.Errorf("storage: fsync page file: %w", err)
	}
	if fb.wal != nil && fb.walSize > walHeaderSize {
		fb.persistStep()
		if err := fb.wal.Truncate(walHeaderSize); err != nil {
			return fmt.Errorf("storage: truncating write-ahead log: %w", err)
		}
		if err := fb.wal.Sync(); err != nil {
			return fmt.Errorf("storage: fsync write-ahead log: %w", err)
		}
		fb.walSize = walHeaderSize
	}
	// The checkpoint is complete: snapshot what the header now records for
	// the next transaction's state guard, and start a fresh log generation.
	fb.ckpt = walState{
		numPages: fb.numPages,
		free:     append([]PageID(nil), fb.free...),
		meta:     append([]byte(nil), fb.meta...),
	}
	fb.walHasState = false
	return nil
}

// Abandon closes the files WITHOUT syncing, leaving the on-disk bytes
// exactly as they were. It exists for error paths (e.g. a failed Open
// whose caller must not mutate a file it could not validate) and for
// crash tests that must model a process dying; normal shutdown uses Close.
func (fb *FileBackend) Abandon() {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.closed {
		return
	}
	fb.closed = true
	fb.f.Close()
	if fb.wal != nil {
		fb.wal.Close()
	}
}

// Close implements Backend: it checkpoints (Sync) and closes the file.
// Closing an already closed backend is a no-op.
func (fb *FileBackend) Close() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if fb.closed {
		return nil
	}
	if err := fb.syncLocked(); err != nil {
		fb.closed = true
		fb.f.Close()
		if fb.wal != nil {
			fb.wal.Close()
		}
		return err
	}
	fb.closed = true
	var werr error
	if fb.wal != nil {
		werr = fb.wal.Close()
	}
	if err := fb.f.Close(); err != nil {
		return fmt.Errorf("storage: closing page file: %w", err)
	}
	if werr != nil {
		return fmt.Errorf("storage: closing write-ahead log: %w", werr)
	}
	return nil
}
