package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"testing"
)

// expectFaultPanic runs fn and asserts it panics with an error wrapping
// ErrInjectedFault, returning normally afterwards.
func expectFaultPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic; expected an injected fault")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("panic value %v, want error wrapping ErrInjectedFault", r)
		}
	}()
	fn()
}

// TestFileBackendTxCommitDurable: a committed transaction survives a
// process that dies without ever checkpointing — the log replays it.
func TestFileBackendTxCommitDurable(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	b := fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{0xA1}, 256))
	fb.Write(b, bytes.Repeat([]byte{0xB1}, 256))
	fb.SetMeta([]byte("before"))
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}

	fb.Begin()
	newA := bytes.Repeat([]byte{0xA2}, 256)
	fb.Write(a, newA) // overwrite of a committed-live page: journaled
	fb.Free(b)
	c := fb.Alloc() // fresh page: direct write
	fb.Write(c, bytes.Repeat([]byte{0xC1}, 100))
	fb.SetMeta([]byte("after"))
	if err := fb.Commit(); err != nil {
		t.Fatal(err)
	}
	fb.Abandon() // crash: no Sync, no Close

	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.RecoveryInfo()
	if ri == nil || ri.ReplayedTxs != 1 {
		t.Fatalf("RecoveryInfo = %+v, want 1 replayed tx", ri)
	}
	if got := re.ReadNoCopy(a); !bytes.Equal(got, newA) {
		t.Errorf("page a lost the committed write")
	}
	if got := re.ReadNoCopy(c)[:100]; !bytes.Equal(got, bytes.Repeat([]byte{0xC1}, 100)) {
		t.Errorf("fresh page c lost the committed write")
	}
	if got := string(re.Meta()); got != "after" {
		t.Errorf("meta = %q, want %q", got, "after")
	}
	// b was freed in the committed transaction: it must recycle.
	if id := re.Alloc(); id != b {
		t.Errorf("Alloc = %d, want recycled %d", id, b)
	}
}

// TestFileBackendTxCrashBeforeCommitRollsBack: a transaction whose commit
// marker never reached the log disappears entirely on reopen.
func TestFileBackendTxCrashBeforeCommitRollsBack(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	oldA := bytes.Repeat([]byte{0xA1}, 256)
	fb.Write(a, oldA)
	fb.SetMeta([]byte("before"))
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}

	fb.Begin()
	fb.Write(a, bytes.Repeat([]byte{0xA2}, 256))
	fb.SetMeta([]byte("after"))
	// Kill inside Commit after the PAGE record is appended but before the
	// commit marker: step base+1 appends PAGE, base+2 (STATE) dies.
	fb.SetCrashAfterSteps(fb.PersistSteps() + 2)
	expectFaultPanic(t, func() { fb.Commit() })
	fb.Abandon()

	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.RecoveryInfo()
	if ri == nil || ri.ReplayedTxs != 0 || ri.DiscardedRecords != 1 {
		t.Fatalf("RecoveryInfo = %+v, want 0 replayed txs, 1 discarded record", ri)
	}
	if got := re.ReadNoCopy(a); !bytes.Equal(got, oldA) {
		t.Errorf("uncommitted write leaked into page a")
	}
	if got := string(re.Meta()); got != "before" {
		t.Errorf("meta = %q, want %q", got, "before")
	}
}

// TestFileBackendTxCrashBeforeApplyReplays: kill after the commit marker
// is durable but before the images are applied to the page file — the
// replay path must do real work.
func TestFileBackendTxCrashBeforeApplyReplays(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{0xA1}, 256))
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}

	fb.Begin()
	newA := bytes.Repeat([]byte{0xA2}, 256)
	fb.Write(a, newA)
	// Steps inside Commit with one journaled page and no direct writes:
	// +1 PAGE, +2 STATE, +3 COMMIT, +4 log fsync, +5 the in-place apply.
	fb.SetCrashAfterSteps(fb.PersistSteps() + 5)
	expectFaultPanic(t, func() { fb.Commit() })
	fb.Abandon()

	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.RecoveryInfo()
	if ri == nil || ri.ReplayedTxs != 1 || ri.ReplayedPages != 1 {
		t.Fatalf("RecoveryInfo = %+v, want 1 tx / 1 page replayed", ri)
	}
	if got := re.ReadNoCopy(a); !bytes.Equal(got, newA) {
		t.Errorf("committed-but-unapplied write lost")
	}
}

// TestFileBackendTxRollback: Rollback restores allocator state and
// metadata, and the backend stays fully usable.
func TestFileBackendTxRollback(t *testing.T) {
	fb, err := CreateFile(tempIndex(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	a := fb.Alloc()
	oldA := bytes.Repeat([]byte{0xA1}, 256)
	fb.Write(a, oldA)
	fb.SetMeta([]byte("before"))
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}

	fb.Begin()
	fb.Write(a, bytes.Repeat([]byte{0xA2}, 256))
	if got := fb.ReadNoCopy(a); got[0] != 0xA2 {
		t.Errorf("transactional read did not see the overlay")
	}
	fb.Alloc()
	fb.SetMeta([]byte("doomed"))
	fb.Rollback()

	if got := fb.ReadNoCopy(a); !bytes.Equal(got, oldA) {
		t.Errorf("rolled-back write visible on page a")
	}
	if got := fb.NumPages(); got != 1 {
		t.Errorf("NumPages = %d after rollback, want 1", got)
	}
	if got := string(fb.Meta()); got != "before" {
		t.Errorf("meta = %q after rollback, want %q", got, "before")
	}

	// The next transaction must work normally.
	fb.Begin()
	fb.Write(a, bytes.Repeat([]byte{0xA3}, 256))
	if err := fb.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := fb.ReadNoCopy(a); got[0] != 0xA3 {
		t.Errorf("post-rollback commit lost")
	}
}

// TestFileBackendTxAllocDoesNotRecycleTxFreed: pages freed inside a
// transaction must not be recycled before it commits — their committed
// content is the rollback target.
func TestFileBackendTxAllocDoesNotRecycleTxFreed(t *testing.T) {
	fb, err := CreateFile(tempIndex(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	a := fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{0xA1}, 256))
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	fb.Begin()
	fb.Free(a)
	if id := fb.Alloc(); id == a {
		t.Fatalf("Alloc recycled page %d freed in the same transaction", a)
	}
	if err := fb.Commit(); err != nil {
		t.Fatal(err)
	}
	// After commit the freed page is recyclable.
	if id := fb.Alloc(); id != a {
		t.Errorf("Alloc = %d after commit, want recycled %d", id, a)
	}
}

// TestFileBackendTxPartialWriteKeepsTail: the Backend contract — shorter
// data leaves the page tail untouched — must hold for journaled writes.
func TestFileBackendTxPartialWriteKeepsTail(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{0xFF}, 256))
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	fb.Begin()
	fb.Write(a, []byte{1, 2, 3}) // journaled partial write
	if err := fb.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.ReadNoCopy(a)
	if !bytes.Equal(got[:3], []byte{1, 2, 3}) || got[3] != 0xFF || got[255] != 0xFF {
		t.Errorf("partial journaled write damaged the page tail: % x...", got[:8])
	}
}

// TestFileBackendTxGuardsCheckpointFreelist: a transaction that drains
// the freelist and extends the file overwrites the checkpointed freelist
// trailer's bytes on disk. The state guard journaled at Begin must keep
// the committed freelist recoverable when the transaction never commits.
func TestFileBackendTxGuardsCheckpointFreelist(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fb.Write(fb.Alloc(), bytes.Repeat([]byte{0xA0 + byte(i)}, 256))
	}
	b := PageID(1)
	fb.Free(b)
	if err := fb.Close(); err != nil { // checkpoint: trailer [b] after page 2's slot
		t.Fatal(err)
	}

	fb, err = OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	fb.Begin()
	if id := fb.Alloc(); id != b { // drains the freelist
		t.Fatalf("Alloc = %d, want recycled %d", id, b)
	}
	d := fb.Alloc() // fresh page 3: its slot starts where the trailer was
	fb.Write(d, bytes.Repeat([]byte{0xD1}, 256))
	fb.Abandon() // crash before Commit

	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.NumPages(); got != 3 {
		t.Errorf("NumPages = %d after rollback-by-crash, want 3", got)
	}
	// The committed freelist survived the overwrite of its trailer bytes.
	if id := re.Alloc(); id != b {
		t.Errorf("Alloc = %d, want recycled %d", id, b)
	}
}

// TestFileBackendSyncInsideTx: checkpointing mid-transaction is refused.
func TestFileBackendSyncInsideTx(t *testing.T) {
	fb, err := CreateFile(tempIndex(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	fb.Begin()
	if err := fb.Sync(); err == nil {
		t.Fatal("Sync succeeded inside an open transaction")
	}
	if err := fb.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileBackendWALTruncatedTail: a committed transaction whose log
// record is physically torn (truncated mid-record by the crash) must not
// replay, and the index opens at the previous committed state.
func TestFileBackendWALTruncatedTail(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	oldA := bytes.Repeat([]byte{0xA1}, 256)
	fb.Write(a, oldA)
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	fb.Begin()
	fb.Write(a, bytes.Repeat([]byte{0xA2}, 256))
	// Kill at the log fsync (+4): the records are in the OS page cache but
	// never forced down, so losing part of the commit record is exactly
	// what a power cut could do. Crucially the in-place apply (+5) has not
	// run — a real crash can only tear the marker before the apply.
	fb.SetCrashAfterSteps(fb.PersistSteps() + 4)
	expectFaultPanic(t, func() { fb.Commit() })
	walSize := fb.WALStats().Size
	fb.Abandon()

	// Tear the log: drop the last 6 bytes (inside the COMMIT record).
	if err := os.Truncate(walPath(path), walSize-6); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.RecoveryInfo()
	if ri == nil || ri.ReplayedTxs != 0 || ri.TornTailBytes == 0 {
		t.Fatalf("RecoveryInfo = %+v, want a torn tail and no replay", ri)
	}
	if got := re.ReadNoCopy(a); !bytes.Equal(got, oldA) {
		t.Errorf("torn transaction partially applied")
	}
}

// TestFileBackendWALGarbageTail: appended garbage after a clean checkpoint
// is reported and discarded, and the index opens intact.
func TestFileBackendWALGarbageTail(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{0xA1}, 256))
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	wf, err := os.OpenFile(walPath(path), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write([]byte("garbage tail")); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.RecoveryInfo()
	if ri == nil || ri.TornTailBytes != int64(len("garbage tail")) {
		t.Fatalf("RecoveryInfo = %+v, want %d torn tail bytes", ri, len("garbage tail"))
	}
	if got := re.ReadNoCopy(a); got[0] != 0xA1 {
		t.Errorf("page damaged by garbage log tail")
	}
	// Recovery checkpointed: a second open is clean.
	re.Close()
	re2, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.RecoveryInfo() != nil {
		t.Errorf("second open still reports recovery: %+v", re2.RecoveryInfo())
	}
}

// TestFileBackendWALDuplicateCommitRecord: a duplicated commit marker in
// the log (a retried append) is skipped idempotently on replay.
func TestFileBackendWALDuplicateCommitRecord(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{0xA1}, 256))
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-craft a log: one committed transaction, its commit marker
	// duplicated, then the same transaction appended again wholesale.
	newA := bytes.Repeat([]byte{0xA2}, 256)
	var body []byte
	body = append(body, encodeWALPage(a, newA)...)
	body = append(body, encodeWALState(1, nil, nil)...)
	body = append(body, encodeWALCommit(1)...)
	body = append(body, encodeWALCommit(1)...)
	body = append(body, encodeWALPage(a, bytes.Repeat([]byte{0xEE}, 256))...)
	body = append(body, encodeWALState(1, nil, nil)...)
	body = append(body, encodeWALCommit(1)...)
	if err := os.WriteFile(walPath(path), append(encodeWALHeader(256), body...), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ri := re.RecoveryInfo()
	if ri == nil || ri.ReplayedTxs != 1 || ri.DuplicateCommits != 2 {
		t.Fatalf("RecoveryInfo = %+v, want 1 replayed tx and 2 duplicate commits", ri)
	}
	if got := re.ReadNoCopy(a); !bytes.Equal(got, newA) {
		t.Errorf("page a = %x..., want the first committed image", got[:4])
	}
}

// TestFileBackendWALCorruptFailsOpen: a semantically invalid record with
// a valid checksum is not a crash artifact — Open must refuse with a
// wrapped ErrWALCorrupt and leave the file untouched.
func TestFileBackendWALCorruptFailsOpen(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	fb.Write(fb.Alloc(), bytes.Repeat([]byte{0xA1}, 256))
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	// A commit with no state record: checksums fine, semantics nonsense.
	if err := os.WriteFile(walPath(path),
		append(encodeWALHeader(256), encodeWALCommit(1)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, 0); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("Open = %v, want ErrWALCorrupt", err)
	}
}

// TestFileBackendChecksumFlip: flipping one byte of a stored page is
// caught by CheckPage/Fsck (wrapped error) and by Read (panic carrying
// the same sentinel).
func TestFileBackendChecksumFlip(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	b := fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{0xA1}, 256))
	fb.Write(b, bytes.Repeat([]byte{0xB1}, 256))
	fb.Free(b)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of page a's data.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	slot := int64(256 + pageTrailerSize)
	off := 256 + int64(a)*slot + 100
	if _, err := f.WriteAt([]byte{0x00}, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenFile(path, 0) // open-time checks are structural, not content
	if err != nil {
		t.Fatal(err)
	}
	defer re.Abandon()
	if err := re.CheckPage(a); !errors.Is(err, ErrChecksum) {
		t.Fatalf("CheckPage = %v, want ErrChecksum", err)
	}
	if err := re.Fsck(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("Fsck = %v, want ErrChecksum", err)
	}
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrChecksum) {
			t.Fatalf("Read panic = %v, want error wrapping ErrChecksum", r)
		}
	}()
	re.Read(a, make([]byte, 256))
	t.Fatal("Read returned on a corrupt page")
}

// TestFileBackendFsckSkipsFreePages: corruption on a freelist page is not
// an error — the page holds no live data (e.g. a torn uncommitted write).
func TestFileBackendFsckSkipsFreePages(t *testing.T) {
	path := tempIndex(t)
	fb, err := CreateFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	a := fb.Alloc()
	b := fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{0xA1}, 256))
	fb.Write(b, bytes.Repeat([]byte{0xB1}, 256))
	fb.Free(b)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	slot := int64(256 + pageTrailerSize)
	if _, err := f.WriteAt([]byte{0xFF}, 256+int64(b)*slot+10); err != nil {
		t.Fatal(err)
	}
	f.Close()
	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Fsck(); err != nil {
		t.Fatalf("Fsck flagged a free page: %v", err)
	}
}

// writeV1File hand-crafts a version-1 page file (no trailers, no WAL) as
// an old build would have left it.
func writeV1File(t *testing.T, path string, blockSize int, pages [][]byte, meta []byte, free []PageID) {
	t.Helper()
	buf := make([]byte, blockSize+blockSize*len(pages)+4*len(free))
	copy(buf[0:6], fileMagic[:])
	binary.LittleEndian.PutUint16(buf[6:8], 1)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(blockSize))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(pages)))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(free)))
	binary.LittleEndian.PutUint32(buf[20:24], uint32(len(meta)))
	copy(buf[fileHeaderSize:], meta)
	for i, pg := range pages {
		copy(buf[blockSize+i*blockSize:], pg)
	}
	for i, id := range free {
		binary.LittleEndian.PutUint32(buf[blockSize+len(pages)*blockSize+4*i:], uint32(id))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFileBackendV1Readable: version-1 files stay fully usable — opened,
// read, transactionally written and re-synced in their own format.
func TestFileBackendV1Readable(t *testing.T) {
	path := tempIndex(t)
	pg0 := bytes.Repeat([]byte{0xAA}, 256)
	pg1 := bytes.Repeat([]byte{0xBB}, 256)
	writeV1File(t, path, 256, [][]byte{pg0, pg1}, []byte("v1 meta"), nil)

	fb, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fb.RecoveryInfo() != nil {
		t.Errorf("clean v1 file reported recovery: %+v", fb.RecoveryInfo())
	}
	if got := fb.ReadNoCopy(0); !bytes.Equal(got, pg0) {
		t.Errorf("v1 page 0 unreadable")
	}
	if got := string(fb.Meta()); got != "v1 meta" {
		t.Errorf("v1 meta = %q", got)
	}
	if err := fb.CheckPage(0); err != nil {
		t.Errorf("CheckPage on v1: %v", err)
	}
	if err := fb.Fsck(); err != nil {
		t.Errorf("Fsck on v1: %v", err)
	}
	// Transactional writes work on v1 files too (journaled, no trailers).
	fb.Begin()
	fb.Write(1, bytes.Repeat([]byte{0xCC}, 256))
	if err := fb.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.ReadNoCopy(1); got[0] != 0xCC {
		t.Errorf("v1 committed write lost")
	}
	// The file must still be version 1 (slot math unchanged).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint16(raw[6:8]); v != 1 {
		t.Errorf("file version rewritten to %d", v)
	}
}

// TestFileBackendWALStats: commit activity shows up in the counters and a
// checkpoint shrinks the log back to its header.
func TestFileBackendWALStats(t *testing.T) {
	fb, err := CreateFile(tempIndex(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	a := fb.Alloc()
	fb.Write(a, bytes.Repeat([]byte{1}, 256))
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := fb.WALStats(); s.Size != walHeaderSize {
		t.Fatalf("WAL size %d after checkpoint, want %d", s.Size, walHeaderSize)
	}
	fb.Begin()
	fb.Write(a, bytes.Repeat([]byte{2}, 256))
	if err := fb.Commit(); err != nil {
		t.Fatal(err)
	}
	s := fb.WALStats()
	if s.Records != 3 { // PAGE + STATE + COMMIT
		t.Errorf("WAL records = %d, want 3", s.Records)
	}
	if s.Size <= walHeaderSize || s.Bytes != s.Size-walHeaderSize {
		t.Errorf("WAL stats inconsistent: %+v", s)
	}
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := fb.WALStats(); s.Size != walHeaderSize {
		t.Errorf("WAL size %d after second checkpoint, want %d", s.Size, walHeaderSize)
	}
}
