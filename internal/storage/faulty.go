package storage

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrInjectedFault is the sentinel every deliberately injected failure
// wraps — both the Faulty decorator's and FileBackend.SetCrashAfterSteps'.
// Tests and prbench match it with errors.Is to tell an injected fault
// from a real bug.
var ErrInjectedFault = errors.New("storage: injected fault")

// FaultMode selects what a Faulty decorator does when its trigger fires.
type FaultMode int

const (
	// FaultNone never fires; the decorator only counts operations.
	FaultNone FaultMode = iota
	// FaultError makes Sync/Commit return an error wrapping
	// ErrInjectedFault (Write, whose interface has no error path,
	// panics with the same wrapped error).
	FaultError
	// FaultTorn truncates the triggering Write to half a block — a torn
	// page — and lets every later operation through untouched. Syncs and
	// commits triggering FaultTorn degrade to FaultError.
	FaultTorn
	// FaultCrash panics with an error wrapping ErrInjectedFault on the
	// triggering operation and on every operation after it, modeling a
	// killed process whose store is gone.
	FaultCrash
	// FaultStop silently swallows the triggering operation and every
	// later Write/Sync/Commit — persistence stops, no error surfaces.
	// The most treacherous disk: reads still work, writes go nowhere.
	FaultStop
)

func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultTorn:
		return "torn"
	case FaultCrash:
		return "crash"
	case FaultStop:
		return "stop"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// Faulty decorates a Backend with deterministic failure injection: after
// N counted operations (Write, Sync, Commit — the persistence path), the
// configured fault fires. It exists so the recovery machinery is
// exercised continuously by tests and prbench -faults instead of only by
// real crashes. The zero trigger (0) disarms injection.
//
// Faulty is safe for the same concurrent use as its inner backend; the
// trigger check is atomic.
type Faulty struct {
	inner Backend
	mode  FaultMode

	ops       atomic.Int64
	trigger   atomic.Int64
	tripped   atomic.Bool
	readFault atomic.Bool
}

// NewFaulty wraps b. The fault fires on the triggerAfter-th counted
// operation (1 = the very next one); triggerAfter <= 0 disarms.
func NewFaulty(b Backend, mode FaultMode, triggerAfter int64) *Faulty {
	f := &Faulty{inner: b, mode: mode}
	f.trigger.Store(triggerAfter)
	return f
}

// Unwrap returns the wrapped backend.
func (f *Faulty) Unwrap() Backend { return f.inner }

// Ops returns the number of counted operations so far.
func (f *Faulty) Ops() int64 { return f.ops.Load() }

// Tripped reports whether the fault has fired at least once.
func (f *Faulty) Tripped() bool { return f.tripped.Load() }

// Arm resets the trigger to fire after n more counted operations (from
// now), keeping the mode. n <= 0 disarms.
func (f *Faulty) Arm(n int64) {
	f.tripped.Store(false)
	if n <= 0 {
		f.trigger.Store(0)
		return
	}
	f.trigger.Store(f.ops.Load() + n)
}

// step counts one operation and reports whether the fault fires on it.
// FaultError and FaultTorn fire exactly once, at the trigger; the sticky
// modes (FaultCrash, FaultStop) keep firing on every operation after it.
func (f *Faulty) step() bool {
	n := f.ops.Add(1)
	t := f.trigger.Load()
	sticky := f.mode == FaultCrash || f.mode == FaultStop
	fire := t > 0 && n == t
	if fire {
		f.tripped.Store(true)
	}
	if !fire && sticky && f.tripped.Load() {
		fire = true
	}
	return fire
}

func (f *Faulty) injected(op string) error {
	return fmt.Errorf("%w: %s after %d ops (%s mode)", ErrInjectedFault, op, f.ops.Load(), f.mode)
}

// BlockSize implements Backend.
func (f *Faulty) BlockSize() int { return f.inner.BlockSize() }

// NumPages implements Backend.
func (f *Faulty) NumPages() int { return f.inner.NumPages() }

// PagesInUse implements Backend.
func (f *Faulty) PagesInUse() int { return f.inner.PagesInUse() }

// Alloc implements Backend (uncounted, like decorated I/O accounting).
func (f *Faulty) Alloc() PageID { return f.inner.Alloc() }

// Free implements Backend (uncounted).
func (f *Faulty) Free(id PageID) { f.inner.Free(id) }

// InjectReads makes Read/ReadNoCopy/PeekNoCopy counted injection points
// too (they are uncounted pass-throughs by default: the write path is the
// usual durability surface under test). A firing read always panics with
// an error wrapping ErrInjectedFault regardless of mode — reads have no
// error return, and a panic is exactly how a real checksum mismatch
// surfaces on the read path — so the serving tier's quarantine machinery
// sees injected faults and real corruption identically.
func (f *Faulty) InjectReads(on bool) { f.readFault.Store(on) }

// readStep counts one read when read injection is enabled and panics if
// the fault fires on it.
func (f *Faulty) readStep() {
	if f.readFault.Load() && f.step() {
		panic(f.injected("read"))
	}
}

// Read implements Backend. Reads are uncounted pass-throughs unless
// InjectReads armed them as injection points.
func (f *Faulty) Read(id PageID, buf []byte) int {
	f.readStep()
	return f.inner.Read(id, buf)
}

// ReadNoCopy implements Backend.
func (f *Faulty) ReadNoCopy(id PageID) []byte {
	f.readStep()
	return f.inner.ReadNoCopy(id)
}

// PeekNoCopy implements Backend.
func (f *Faulty) PeekNoCopy(id PageID) []byte {
	f.readStep()
	return f.inner.PeekNoCopy(id)
}

// Write implements Backend, applying the configured fault when triggered:
// FaultTorn truncates this write to half a block, FaultStop drops it,
// FaultCrash and FaultError panic (Write has no error return).
func (f *Faulty) Write(id PageID, data []byte) {
	if f.step() {
		switch f.mode {
		case FaultTorn:
			f.inner.Write(id, data[:len(data)/2])
			return
		case FaultStop:
			return
		default:
			panic(f.injected("write"))
		}
	}
	f.inner.Write(id, data)
}

// SetMeta implements Backend (uncounted; persisted by Commit/Sync, which
// are the injection points).
func (f *Faulty) SetMeta(meta []byte) { f.inner.SetMeta(meta) }

// Meta implements Backend.
func (f *Faulty) Meta() []byte { return f.inner.Meta() }

// Begin implements Transactional (uncounted). Once a sticky fault has
// tripped, Begin follows it: FaultStop swallows the call (a dropped
// Commit left the inner transaction open, and the treacherous disk keeps
// acking), FaultCrash panics like every other operation.
func (f *Faulty) Begin() {
	if f.tripped.Load() {
		switch f.mode {
		case FaultStop:
			return
		case FaultCrash:
			panic(f.injected("begin"))
		}
	}
	EnsureTransactional(f.inner).Begin()
}

// Commit implements Transactional, an injection point: FaultStop drops
// the commit silently, FaultCrash panics, other modes return the
// injected error.
func (f *Faulty) Commit() error {
	if f.step() {
		switch f.mode {
		case FaultStop:
			return nil
		case FaultCrash:
			panic(f.injected("commit"))
		default:
			return f.injected("commit")
		}
	}
	return EnsureTransactional(f.inner).Commit()
}

// Rollback implements Transactional (uncounted; swallowed like Begin
// once FaultStop has tripped).
func (f *Faulty) Rollback() {
	if f.mode == FaultStop && f.tripped.Load() {
		return
	}
	EnsureTransactional(f.inner).Rollback()
}

// SnapshotEnter implements Snapshotter (uncounted, never faulted —
// snapshot bookkeeping is in-memory, not a disk operation).
func (f *Faulty) SnapshotEnter() uint64 { return EnsureSnapshotter(f.inner).SnapshotEnter() }

// SnapshotLeave implements Snapshotter (uncounted, never faulted).
func (f *Faulty) SnapshotLeave(epoch uint64) { EnsureSnapshotter(f.inner).SnapshotLeave(epoch) }

// SnapshotAdvance implements Snapshotter (uncounted, never faulted).
func (f *Faulty) SnapshotAdvance() { EnsureSnapshotter(f.inner).SnapshotAdvance() }

// SnapshotStats implements Snapshotter (uncounted, never faulted).
func (f *Faulty) SnapshotStats() SnapshotStats { return EnsureSnapshotter(f.inner).SnapshotStats() }

// Sync implements Backend, an injection point like Commit.
func (f *Faulty) Sync() error {
	if f.step() {
		switch f.mode {
		case FaultStop:
			return nil
		case FaultCrash:
			panic(f.injected("sync"))
		default:
			return f.injected("sync")
		}
	}
	return f.inner.Sync()
}

// Close implements Backend. Close is not an injection point: tests need a
// clean way to release a store they just tortured.
func (f *Faulty) Close() error { return f.inner.Close() }
