package storage

import (
	"math/rand"
	"testing"
)

// refS3FIFO is an independent reference model of the S3-FIFO policy,
// written over plain slices (newest at the end, tail at index 0) instead
// of the production intrusive lists. The property test drives both with
// the same access stream and demands identical hit/miss and eviction
// sequences.
type refS3FIFO struct {
	capacity, smallCap, ghostCap int
	small, main, ghost           []PageID
	freq                         map[PageID]int
}

func newRefS3FIFO(capacity int) *refS3FIFO {
	smallCap := capacity / 10
	if smallCap < 1 {
		smallCap = 1
	}
	return &refS3FIFO{
		capacity: capacity,
		smallCap: smallCap,
		ghostCap: capacity,
		freq:     map[PageID]int{},
	}
}

func (r *refS3FIFO) inQueue(q []PageID, id PageID) int {
	for i, v := range q {
		if v == id {
			return i
		}
	}
	return -1
}

// access simulates one cache lookup, returning (hit, evicted ids in order).
func (r *refS3FIFO) access(id PageID) (bool, []PageID) {
	if r.inQueue(r.small, id) >= 0 || r.inQueue(r.main, id) >= 0 {
		if r.freq[id] < s3FreqMax {
			r.freq[id]++
		}
		return true, nil
	}
	r.freq[id] = 0
	if gi := r.inQueue(r.ghost, id); gi >= 0 {
		r.ghost = append(r.ghost[:gi], r.ghost[gi+1:]...)
		r.main = append(r.main, id)
	} else {
		r.small = append(r.small, id)
	}
	var evicted []PageID
	for len(r.small)+len(r.main) > r.capacity {
		evicted = append(evicted, r.evictOne())
	}
	return false, evicted
}

func (r *refS3FIFO) evictOne() PageID {
	for {
		if len(r.small) > r.smallCap || len(r.main) == 0 {
			if id, ok := r.evictSmall(); ok {
				return id
			}
			continue // everything promoted; retry via main
		}
		return r.evictMain()
	}
}

func (r *refS3FIFO) evictSmall() (PageID, bool) {
	for len(r.small) > 0 {
		id := r.small[0]
		r.small = r.small[1:]
		if r.freq[id] > 0 {
			r.freq[id] = 0
			r.main = append(r.main, id)
			continue
		}
		r.addGhost(id)
		return id, true
	}
	return 0, false
}

func (r *refS3FIFO) evictMain() PageID {
	for {
		id := r.main[0]
		r.main = r.main[1:]
		if r.freq[id] > 0 {
			r.freq[id]--
			r.main = append(r.main, id)
			continue
		}
		return id
	}
}

func (r *refS3FIFO) addGhost(id PageID) {
	if gi := r.inQueue(r.ghost, id); gi >= 0 {
		r.ghost = append(r.ghost[:gi], r.ghost[gi+1:]...)
	}
	r.ghost = append(r.ghost, id)
	if len(r.ghost) > r.ghostCap {
		r.ghost = r.ghost[1:]
	}
}

// driveEvictor simulates a bounded cache of the given capacity on top of
// an evictor, the way the pager uses one: touch on hit, insert on miss,
// victim while over capacity.
type evictorSim struct {
	capacity int
	evict    evictor
	entries  map[PageID]*cacheEntry
}

func newEvictorSim(capacity int, e evictor) *evictorSim {
	return &evictorSim{capacity: capacity, evict: e, entries: map[PageID]*cacheEntry{}}
}

func (s *evictorSim) access(id PageID) (bool, []PageID) {
	if ce, ok := s.entries[id]; ok {
		s.evict.touch(ce)
		return true, nil
	}
	ce := &cacheEntry{id: id}
	s.entries[id] = ce
	s.evict.insert(ce)
	var evicted []PageID
	for len(s.entries) > s.capacity {
		v := s.evict.victim()
		if v == nil {
			break
		}
		delete(s.entries, v.id)
		evicted = append(evicted, v.id)
	}
	return false, evicted
}

func TestS3FIFOMatchesReferenceModel(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 5, 10, 16, 40} {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(capacity)))
			sim := newEvictorSim(capacity, newS3FIFO(capacity))
			ref := newRefS3FIFO(capacity)
			idSpace := 3*capacity + 2
			for step := 0; step < 4000; step++ {
				var id PageID
				if rng.Intn(3) == 0 {
					id = PageID(rng.Intn(idSpace)) // uniform
				} else {
					id = PageID(rng.Intn(capacity/2 + 1)) // hot set
				}
				gotHit, gotEv := sim.access(id)
				wantHit, wantEv := ref.access(id)
				if gotHit != wantHit {
					t.Fatalf("cap=%d seed=%d step=%d id=%d: hit=%v, reference says %v",
						capacity, seed, step, id, gotHit, wantHit)
				}
				if len(gotEv) != len(wantEv) {
					t.Fatalf("cap=%d seed=%d step=%d: evicted %v, reference %v",
						capacity, seed, step, gotEv, wantEv)
				}
				for i := range gotEv {
					if gotEv[i] != wantEv[i] {
						t.Fatalf("cap=%d seed=%d step=%d: evicted %v, reference %v",
							capacity, seed, step, gotEv, wantEv)
					}
				}
				if sim.evict.len() != len(sim.entries) {
					t.Fatalf("cap=%d seed=%d step=%d: evictor tracks %d entries, cache holds %d",
						capacity, seed, step, sim.evict.len(), len(sim.entries))
				}
				if len(sim.entries) > capacity {
					t.Fatalf("cap=%d seed=%d step=%d: %d resident entries exceed capacity",
						capacity, seed, step, len(sim.entries))
				}
			}
		}
	}
}

// TestS3FIFOGhostReadmission pins the policy's signature move: a page
// evicted from the probationary queue and re-referenced while its ghost
// is remembered is admitted directly to the main queue.
func TestS3FIFOGhostReadmission(t *testing.T) {
	const capacity = 4 // smallCap 1
	e := newS3FIFO(capacity)
	sim := newEvictorSim(capacity, e)
	for id := PageID(0); id < 5; id++ {
		sim.access(id) // the fifth insert evicts page 0 from small
	}
	if _, resident := sim.entries[0]; resident {
		t.Fatal("page 0 should have been evicted")
	}
	if _, ghosted := e.ghost[0]; !ghosted {
		t.Fatal("evicted probationary page 0 not remembered as a ghost")
	}
	hit, _ := sim.access(0)
	if hit {
		t.Fatal("readmission must be a miss (the bytes are gone)")
	}
	ce := sim.entries[0]
	if ce == nil || ce.s3Queue != s3QueueMain {
		t.Fatalf("readmitted ghost landed in queue %d, want main", ce.s3Queue)
	}
	if _, ghosted := e.ghost[0]; ghosted {
		t.Fatal("readmitted page still listed as a ghost")
	}
}

func TestS3FIFOGhostBounded(t *testing.T) {
	const capacity = 8
	e := newS3FIFO(capacity)
	sim := newEvictorSim(capacity, e)
	for id := PageID(0); id < 500; id++ {
		sim.access(id) // pure scan: every page dies in small and ghosts
	}
	if e.ghostLRU.Len() > capacity {
		t.Errorf("ghost queue holds %d ids, cap is %d", e.ghostLRU.Len(), capacity)
	}
	if len(e.ghost) != e.ghostLRU.Len() {
		t.Errorf("ghost map (%d) and ghost order (%d) diverge", len(e.ghost), e.ghostLRU.Len())
	}
}

// TestS3FIFOScanResistance demonstrates the policy's reason to exist: a
// hot working set interleaved with one-touch scans keeps a higher hit
// rate under S3-FIFO than under LRU on the same stream and capacity.
func TestS3FIFOScanResistance(t *testing.T) {
	const capacity = 16
	stream := make([]PageID, 0, 6000)
	rng := rand.New(rand.NewSource(11))
	next := PageID(100)
	for len(stream) < 6000 {
		for k := 0; k < 6; k++ {
			stream = append(stream, PageID(rng.Intn(10))) // hot set: pages 0..9
		}
		for k := 0; k < 4; k++ { // scan: never-repeating cold pages
			stream = append(stream, next)
			next++
		}
	}
	hitRate := func(e evictor) float64 {
		sim := newEvictorSim(capacity, e)
		hits := 0
		for _, id := range stream {
			if h, _ := sim.access(id); h {
				hits++
			}
		}
		return float64(hits) / float64(len(stream))
	}
	lru := hitRate(newLRUEvictor())
	s3 := hitRate(newS3FIFO(capacity))
	if s3 <= lru {
		t.Errorf("s3fifo hit rate %.4f not above lru %.4f on a scan-flood stream", s3, lru)
	}
}
