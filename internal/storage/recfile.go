package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"prtree/internal/geom"
)

// ItemSize is the on-disk footprint of one rectangle record: four float64
// coordinates plus a 4-byte object pointer — the paper's 36-byte layout.
const ItemSize = 36

// ItemsPerBlock returns how many records fit in one block of the given size
// (113 for the default 4 KB block, matching the paper's fanout).
func ItemsPerBlock(blockSize int) int { return blockSize / ItemSize }

// EncodeItem serializes it into buf, which must hold ItemSize bytes.
func EncodeItem(buf []byte, it geom.Item) {
	binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(it.Rect.MinX))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(it.Rect.MinY))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(it.Rect.MaxX))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(it.Rect.MaxY))
	binary.LittleEndian.PutUint32(buf[32:], it.ID)
}

// DecodeRect deserializes only the rectangle of a record written by
// EncodeItem. It is the zero-copy read path's workhorse: intersection tests
// against page bytes decode the rect without touching the id.
func DecodeRect(buf []byte) geom.Rect {
	return geom.Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(buf[0:])),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(buf[24:])),
	}
}

// DecodeRef deserializes only the 4-byte pointer of a record written by
// EncodeItem.
func DecodeRef(buf []byte) uint32 {
	return binary.LittleEndian.Uint32(buf[32:])
}

// DecodeItem deserializes a record written by EncodeItem.
func DecodeItem(buf []byte) geom.Item {
	return geom.Item{
		Rect: geom.Rect{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(buf[0:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(buf[24:])),
		},
		ID: binary.LittleEndian.Uint32(buf[32:]),
	}
}

// ItemFile is a sequential file of Items stored in whole blocks on a
// storage Backend —
// the TPIE "stream" the paper's bulk-loading algorithms operate on. Appends
// buffer one block in memory and spill to disk when full; reads scan block
// by block. All spills and scans count block I/O on the underlying Disk.
type ItemFile struct {
	dev      Backend
	perBlock int
	pages    []PageID
	n        int    // total records, including those in wbuf
	wbuf     []byte // current partially filled block
	wcount   int    // records in wbuf
	sealed   bool
}

// NewItemFile returns an empty item file on the backend.
func NewItemFile(dev Backend) *ItemFile {
	return &ItemFile{
		dev:      dev,
		perBlock: ItemsPerBlock(dev.BlockSize()),
		wbuf:     make([]byte, dev.BlockSize()),
	}
}

// NewItemFileFrom builds a sealed item file holding the given items,
// counting the block writes needed to store them.
func NewItemFileFrom(dev Backend, items []geom.Item) *ItemFile {
	f := NewItemFile(dev)
	for _, it := range items {
		f.Append(it)
	}
	f.Seal()
	return f
}

// Len returns the number of records in the file.
func (f *ItemFile) Len() int { return f.n }

// Blocks returns the number of disk blocks the file occupies once sealed.
func (f *ItemFile) Blocks() int {
	b := len(f.pages)
	if !f.sealed && f.wcount > 0 {
		b++
	}
	return b
}

// Append adds a record to the end of the file. It panics after Seal.
func (f *ItemFile) Append(it geom.Item) {
	if f.sealed {
		panic("storage: append to sealed ItemFile")
	}
	EncodeItem(f.wbuf[f.wcount*ItemSize:], it)
	f.wcount++
	f.n++
	if f.wcount == f.perBlock {
		f.flush()
	}
}

// AppendRaw adds one pre-encoded record (the first ItemSize bytes of rec)
// to the end of the file without a decode/encode round trip. It panics
// after Seal.
func (f *ItemFile) AppendRaw(rec []byte) {
	if f.sealed {
		panic("storage: append to sealed ItemFile")
	}
	copy(f.wbuf[f.wcount*ItemSize:], rec[:ItemSize])
	f.wcount++
	f.n++
	if f.wcount == f.perBlock {
		f.flush()
	}
}

// AppendRawBlock adds count pre-encoded records stored contiguously at the
// start of block. When the write buffer is empty and the block is full, the
// bytes go to a fresh page in a single write — the whole-block transfer the
// external merge uses to copy runs without touching individual records.
// The I/O count is the same as appending the records one at a time.
func (f *ItemFile) AppendRawBlock(block []byte, count int) {
	if f.sealed {
		panic("storage: append to sealed ItemFile")
	}
	if count*ItemSize > len(block) {
		panic(fmt.Sprintf("storage: raw block of %d bytes holds fewer than %d records", len(block), count))
	}
	if f.wcount == 0 && count == f.perBlock {
		id := f.dev.Alloc()
		f.dev.Write(id, block[:count*ItemSize])
		f.pages = append(f.pages, id)
		f.n += count
		return
	}
	for i := 0; i < count; i++ {
		f.AppendRaw(block[i*ItemSize:])
	}
}

// RawBlock returns the encoded bytes of the file's b-th block and the
// number of records they hold, counting one block read. The returned slice
// aliases the page and must be treated as read-only; it stays valid until
// the file is freed. The file must be sealed.
func (f *ItemFile) RawBlock(b int) (data []byte, count int) {
	if !f.sealed {
		panic("storage: RawBlock on unsealed ItemFile")
	}
	count = f.perBlock
	if b == len(f.pages)-1 {
		count = f.n - b*f.perBlock
	}
	return f.dev.ReadNoCopy(f.pages[b])[:count*ItemSize], count
}

// Seal flushes the final partial block and freezes the file for reading.
// Sealing an already sealed file is a no-op.
func (f *ItemFile) Seal() {
	if f.sealed {
		return
	}
	if f.wcount > 0 {
		f.flush()
	}
	f.sealed = true
}

func (f *ItemFile) flush() {
	id := f.dev.Alloc()
	f.dev.Write(id, f.wbuf[:f.wcount*ItemSize])
	f.pages = append(f.pages, id)
	f.wcount = 0
}

// Free releases the file's pages back to the disk.
func (f *ItemFile) Free() {
	f.Seal()
	for _, id := range f.pages {
		f.dev.Free(id)
	}
	f.pages = nil
	f.n = 0
}

// Reader returns a sequential scanner positioned at the start of the file.
// The file must be sealed.
func (f *ItemFile) Reader() *ItemReader {
	if !f.sealed {
		panic("storage: Reader on unsealed ItemFile")
	}
	return &ItemReader{f: f, block: -1}
}

// ReaderAt returns a scanner positioned at record index start.
func (f *ItemFile) ReaderAt(start int) *ItemReader {
	r := f.Reader()
	r.Seek(start)
	return r
}

// ItemReader scans an ItemFile block by block, counting one disk read per
// block fetched.
type ItemReader struct {
	f     *ItemFile
	buf   []byte
	block int // index into f.pages of the buffered block, -1 if none
	pos   int // next record index (global)
}

// Next returns the next record. ok is false at end of file.
func (r *ItemReader) Next() (it geom.Item, ok bool) {
	if r.pos >= r.f.n {
		return geom.Item{}, false
	}
	b := r.pos / r.f.perBlock
	if b != r.block {
		// Zero-copy view of the page: valid because file pages are
		// immutable once sealed and readers do not outlive Free.
		r.buf = r.f.dev.ReadNoCopy(r.f.pages[b])
		r.block = b
	}
	off := (r.pos % r.f.perBlock) * ItemSize
	r.pos++
	return DecodeItem(r.buf[off:]), true
}

// NextRaw returns the next record's encoded bytes without decoding,
// aliasing the underlying page (read-only, valid until the file is freed).
// ok is false at end of file.
func (r *ItemReader) NextRaw() (rec []byte, ok bool) {
	if r.pos >= r.f.n {
		return nil, false
	}
	b := r.pos / r.f.perBlock
	if b != r.block {
		r.buf = r.f.dev.ReadNoCopy(r.f.pages[b])
		r.block = b
	}
	off := (r.pos % r.f.perBlock) * ItemSize
	r.pos++
	return r.buf[off : off+ItemSize], true
}

// Seek positions the reader at global record index pos. The block holding
// pos is fetched lazily by the next call to Next.
func (r *ItemReader) Seek(pos int) {
	if pos < 0 || pos > r.f.n {
		panic(fmt.Sprintf("storage: seek %d out of range [0,%d]", pos, r.f.n))
	}
	r.pos = pos
	r.block = -1
}

// Pos returns the index of the next record to be returned.
func (r *ItemReader) Pos() int { return r.pos }

// ReadAll drains a sealed file into a slice, counting the scan's reads.
func (f *ItemFile) ReadAll() []geom.Item {
	out := make([]geom.Item, 0, f.n)
	r := f.Reader()
	for {
		it, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, it)
	}
}
