//go:build !linux

package storage

import "os"

// mapFile on platforms without the Linux mmap path maps nothing: the
// MmapBackend stays fully functional, serving every read through the
// FileBackend's verified pread path instead of zero-copy views.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return nil, nil
}

func unmapFile(data []byte) {}
