package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot serialization of a Disk: every allocated page plus the
// freelist, so a bulk-loaded index can be persisted to a real file and
// reopened later (see rtree.Save / rtree.Load and the public prtree API).

// snapshotMagic identifies the on-disk format.
var snapshotMagic = [8]byte{'P', 'R', 'D', 'I', 'S', 'K', '0', '1'}

// WriteTo serializes the disk to w. It returns the number of bytes
// written. The format is:
//
//	magic[8] blockSize:u32 numPages:u32 freeCount:u32 free...:u32 pages...
func (d *Disk) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	write := func(data []byte) error {
		n, err := bw.Write(data)
		total += int64(n)
		return err
	}
	if err := write(snapshotMagic[:]); err != nil {
		return total, err
	}
	var u32 [4]byte
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		return write(u32[:])
	}
	if err := putU32(uint32(d.blockSize)); err != nil {
		return total, err
	}
	if err := putU32(uint32(len(d.pages))); err != nil {
		return total, err
	}
	if err := putU32(uint32(len(d.free))); err != nil {
		return total, err
	}
	for _, f := range d.free {
		if err := putU32(uint32(f)); err != nil {
			return total, err
		}
	}
	for _, p := range d.pages {
		if err := write(p); err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadDiskFrom deserializes a disk written by WriteTo. It reads exactly
// the snapshot's bytes from r (no read-ahead), so callers may continue
// reading their own trailing data from the same reader.
func ReadDiskFrom(r io.Reader) (*Disk, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("storage: reading snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("storage: bad snapshot magic %q", magic[:])
	}
	var u32 [4]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	blockSize, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("storage: reading block size: %w", err)
	}
	if blockSize == 0 || blockSize > 1<<24 {
		return nil, fmt.Errorf("storage: implausible block size %d", blockSize)
	}
	numPages, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("storage: reading page count: %w", err)
	}
	freeCount, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("storage: reading freelist size: %w", err)
	}
	if freeCount > numPages {
		return nil, fmt.Errorf("storage: freelist %d exceeds pages %d", freeCount, numPages)
	}
	d := NewDisk(int(blockSize))
	d.free = make([]PageID, freeCount)
	for i := range d.free {
		v, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("storage: reading freelist: %w", err)
		}
		if v >= numPages {
			return nil, fmt.Errorf("storage: freelist entry %d out of range", v)
		}
		d.free[i] = PageID(v)
	}
	d.pages = make([][]byte, numPages)
	for i := range d.pages {
		d.pages[i] = make([]byte, blockSize)
		if _, err := io.ReadFull(r, d.pages[i]); err != nil {
			return nil, fmt.Errorf("storage: reading page %d: %w", i, err)
		}
	}
	return d, nil
}
