package storage

import "sync/atomic"

// Counting decorates a Backend with block-I/O counters, making I/O stats a
// composable wrapper instead of a field baked into every device. The
// counters are atomic: Stats and ResetStats are safe while concurrent
// queries drive the wrapped backend, exactly like the Disk counters the
// facade exposed before.
//
// Alloc, Free and PeekNoCopy are deliberately uncounted, matching the
// Disk's accounting (allocation is bookkeeping; the write that follows is
// the I/O) so that a Counting-wrapped Disk reports the same totals the
// Disk's own counters do.
type Counting struct {
	inner Backend

	reads  atomic.Uint64
	writes atomic.Uint64
}

// NewCounting wraps b with fresh zeroed counters.
func NewCounting(b Backend) *Counting { return &Counting{inner: b} }

// Unwrap returns the wrapped backend.
func (c *Counting) Unwrap() Backend { return c.inner }

// Stats returns the cumulative block I/O observed through the wrapper.
func (c *Counting) Stats() Stats {
	return Stats{Reads: c.reads.Load(), Writes: c.writes.Load()}
}

// ResetStats zeroes the wrapper's counters (the inner backend's own
// accounting, if any, is untouched).
func (c *Counting) ResetStats() {
	c.reads.Store(0)
	c.writes.Store(0)
}

// BlockSize implements Backend.
func (c *Counting) BlockSize() int { return c.inner.BlockSize() }

// NumPages implements Backend.
func (c *Counting) NumPages() int { return c.inner.NumPages() }

// PagesInUse implements Backend.
func (c *Counting) PagesInUse() int { return c.inner.PagesInUse() }

// Alloc implements Backend (uncounted).
func (c *Counting) Alloc() PageID { return c.inner.Alloc() }

// Free implements Backend (uncounted).
func (c *Counting) Free(id PageID) { c.inner.Free(id) }

// Read implements Backend, counting one block read.
func (c *Counting) Read(id PageID, buf []byte) int {
	c.reads.Add(1)
	return c.inner.Read(id, buf)
}

// ReadNoCopy implements Backend, counting one block read.
func (c *Counting) ReadNoCopy(id PageID) []byte {
	c.reads.Add(1)
	return c.inner.ReadNoCopy(id)
}

// PeekNoCopy implements Backend (uncounted).
func (c *Counting) PeekNoCopy(id PageID) []byte { return c.inner.PeekNoCopy(id) }

// Write implements Backend, counting one block write.
func (c *Counting) Write(id PageID, data []byte) {
	c.writes.Add(1)
	c.inner.Write(id, data)
}

// SetMeta implements Backend.
func (c *Counting) SetMeta(meta []byte) { c.inner.SetMeta(meta) }

// Meta implements Backend.
func (c *Counting) Meta() []byte { return c.inner.Meta() }

// Begin implements Transactional, forwarding to the wrapped backend when
// it is transactional and doing nothing otherwise — transaction plumbing
// is not I/O and is never counted.
func (c *Counting) Begin() {
	if tx, ok := c.inner.(Transactional); ok {
		tx.Begin()
	}
}

// Commit implements Transactional (uncounted); see Begin.
func (c *Counting) Commit() error {
	if tx, ok := c.inner.(Transactional); ok {
		return tx.Commit()
	}
	return nil
}

// Rollback implements Transactional (uncounted); see Begin.
func (c *Counting) Rollback() {
	if tx, ok := c.inner.(Transactional); ok {
		tx.Rollback()
	}
}

// Sync implements Backend.
func (c *Counting) Sync() error { return c.inner.Sync() }

// Close implements Backend.
func (c *Counting) Close() error { return c.inner.Close() }
