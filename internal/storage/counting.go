package storage

import "sync/atomic"

// Counting decorates a Backend with block-I/O counters, making I/O stats a
// composable wrapper instead of a field baked into every device. The
// counters are atomic: Stats and ResetStats are safe while concurrent
// queries drive the wrapped backend, exactly like the Disk counters the
// facade exposed before.
//
// Alloc, Free and PeekNoCopy are deliberately uncounted, matching the
// Disk's accounting (allocation is bookkeeping; the write that follows is
// the I/O) so that a Counting-wrapped Disk reports the same totals the
// Disk's own counters do.
type Counting struct {
	inner Backend

	reads    atomic.Uint64
	writes   atomic.Uint64
	prefetch atomic.Uint64
}

// NewCounting wraps b with fresh zeroed counters.
func NewCounting(b Backend) *Counting { return &Counting{inner: b} }

// Unwrap returns the wrapped backend.
func (c *Counting) Unwrap() Backend { return c.inner }

// Stats returns the cumulative block I/O observed through the wrapper.
// Reads and Writes are demand I/O (the paper's accounting); PrefetchReads
// counts speculative fetches separately, so prefetch never perturbs the
// demand counters.
func (c *Counting) Stats() Stats {
	return Stats{
		Reads:         c.reads.Load(),
		Writes:        c.writes.Load(),
		PrefetchReads: c.prefetch.Load(),
	}
}

// ResetStats zeroes the wrapper's counters (the inner backend's own
// accounting, if any, is untouched).
func (c *Counting) ResetStats() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.prefetch.Store(0)
}

// BlockSize implements Backend.
func (c *Counting) BlockSize() int { return c.inner.BlockSize() }

// NumPages implements Backend.
func (c *Counting) NumPages() int { return c.inner.NumPages() }

// PagesInUse implements Backend.
func (c *Counting) PagesInUse() int { return c.inner.PagesInUse() }

// Alloc implements Backend (uncounted).
func (c *Counting) Alloc() PageID { return c.inner.Alloc() }

// Free implements Backend (uncounted).
func (c *Counting) Free(id PageID) { c.inner.Free(id) }

// Read implements Backend, counting one block read.
func (c *Counting) Read(id PageID, buf []byte) int {
	c.reads.Add(1)
	return c.inner.Read(id, buf)
}

// ReadNoCopy implements Backend, counting one block read.
func (c *Counting) ReadNoCopy(id PageID) []byte {
	c.reads.Add(1)
	return c.inner.ReadNoCopy(id)
}

// PeekNoCopy implements Backend (uncounted).
func (c *Counting) PeekNoCopy(id PageID) []byte { return c.inner.PeekNoCopy(id) }

// ReadBlocks implements BlockReader, counting len(ids) demand block reads
// and forwarding to the wrapped backend's batch capability when present.
func (c *Counting) ReadBlocks(ids []PageID, bufs [][]byte) {
	c.reads.Add(uint64(len(ids)))
	if br, ok := c.inner.(BlockReader); ok {
		br.ReadBlocks(ids, bufs)
		return
	}
	for i, id := range ids {
		c.inner.Read(id, bufs[i])
	}
}

// ReadBlocksSpeculative implements SpeculativeReader, tallying the fetch in
// PrefetchReads — never Reads — so the demand stream is unchanged by
// prefetch. Backends without the capability are served through the
// uncounted PeekNoCopy path, keeping any inner demand counters clean too.
func (c *Counting) ReadBlocksSpeculative(ids []PageID, bufs [][]byte) {
	c.prefetch.Add(uint64(len(ids)))
	if sr, ok := c.inner.(SpeculativeReader); ok {
		sr.ReadBlocksSpeculative(ids, bufs)
		return
	}
	for i, id := range ids {
		copy(bufs[i], c.inner.PeekNoCopy(id))
	}
}

// AccountDemandReads implements DemandAccounter: the pager charges promoted
// prefetched blocks here, at the moment a demand access consumes them, so
// Reads matches a no-prefetch run bit-for-bit. The charge is forwarded down
// the chain so an inner Disk simulator stays consistent as well.
func (c *Counting) AccountDemandReads(n int) {
	c.reads.Add(uint64(n))
	if da, ok := c.inner.(DemandAccounter); ok {
		da.AccountDemandReads(n)
	}
}

// ReadStable implements StableReader, forwarding to the wrapped backend's
// zero-copy capability and counting one demand read on success. A miss
// (no capability, or no stable view for this page) counts nothing; the
// caller falls back to Read, which does the counting.
func (c *Counting) ReadStable(id PageID) ([]byte, bool) {
	sr, ok := c.inner.(StableReader)
	if !ok {
		return nil, false
	}
	data, ok := sr.ReadStable(id)
	if !ok {
		return nil, false
	}
	c.reads.Add(1)
	return data, true
}

// Write implements Backend, counting one block write.
func (c *Counting) Write(id PageID, data []byte) {
	c.writes.Add(1)
	c.inner.Write(id, data)
}

// SetMeta implements Backend.
func (c *Counting) SetMeta(meta []byte) { c.inner.SetMeta(meta) }

// Meta implements Backend.
func (c *Counting) Meta() []byte { return c.inner.Meta() }

// Begin implements Transactional, forwarding to the wrapped backend when
// it is transactional and doing nothing otherwise — transaction plumbing
// is not I/O and is never counted.
func (c *Counting) Begin() {
	if tx, ok := c.inner.(Transactional); ok {
		tx.Begin()
	}
}

// Commit implements Transactional (uncounted); see Begin.
func (c *Counting) Commit() error {
	if tx, ok := c.inner.(Transactional); ok {
		return tx.Commit()
	}
	return nil
}

// Rollback implements Transactional (uncounted); see Begin.
func (c *Counting) Rollback() {
	if tx, ok := c.inner.(Transactional); ok {
		tx.Rollback()
	}
}

// Sync implements Backend.
func (c *Counting) Sync() error { return c.inner.Sync() }

// SnapshotEnter implements Snapshotter, forwarding to the wrapped backend
// when it has the capability — snapshot bookkeeping is not I/O and is
// never counted.
func (c *Counting) SnapshotEnter() uint64 { return EnsureSnapshotter(c.inner).SnapshotEnter() }

// SnapshotLeave implements Snapshotter (uncounted); see SnapshotEnter.
func (c *Counting) SnapshotLeave(epoch uint64) { EnsureSnapshotter(c.inner).SnapshotLeave(epoch) }

// SnapshotAdvance implements Snapshotter (uncounted); see SnapshotEnter.
func (c *Counting) SnapshotAdvance() { EnsureSnapshotter(c.inner).SnapshotAdvance() }

// SnapshotStats implements Snapshotter (uncounted); see SnapshotEnter.
func (c *Counting) SnapshotStats() SnapshotStats { return EnsureSnapshotter(c.inner).SnapshotStats() }

// Close implements Backend.
func (c *Counting) Close() error { return c.inner.Close() }
