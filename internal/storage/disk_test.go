package storage

import (
	"bytes"
	"testing"
)

func TestDiskAllocWriteRead(t *testing.T) {
	d := NewDisk(64)
	id := d.Alloc()
	data := []byte("hello block")
	d.Write(id, data)
	buf := make([]byte, 64)
	n := d.Read(id, buf)
	if n != 64 {
		t.Errorf("read %d bytes, want 64", n)
	}
	if !bytes.Equal(buf[:len(data)], data) {
		t.Errorf("read back %q", buf[:len(data)])
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats = %v, want 1 read 1 write", st)
	}
}

func TestDiskFreeReuseZeroes(t *testing.T) {
	d := NewDisk(32)
	id := d.Alloc()
	d.Write(id, []byte{1, 2, 3})
	d.Free(id)
	id2 := d.Alloc()
	if id2 != id {
		t.Fatalf("freelist should reuse page %d, got %d", id, id2)
	}
	buf := d.PeekNoCopy(id2)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("reused page not zeroed at byte %d", i)
		}
	}
	if d.NumPages() != 1 {
		t.Errorf("NumPages = %d", d.NumPages())
	}
	if d.PagesInUse() != 1 {
		t.Errorf("PagesInUse = %d", d.PagesInUse())
	}
}

func TestDiskOversizeWritePanics(t *testing.T) {
	d := NewDisk(8)
	id := d.Alloc()
	defer func() {
		if recover() == nil {
			t.Error("oversize write should panic")
		}
	}()
	d.Write(id, make([]byte, 9))
}

func TestDiskBadPagePanics(t *testing.T) {
	d := NewDisk(8)
	defer func() {
		if recover() == nil {
			t.Error("read of unallocated page should panic")
		}
	}()
	d.Read(PageID(5), make([]byte, 8))
}

func TestDiskStatsResetAndSub(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	d.Write(id, []byte{1})
	before := d.Stats()
	d.Read(id, make([]byte, 16))
	d.Read(id, make([]byte, 16))
	delta := d.Stats().Sub(before)
	if delta.Reads != 2 || delta.Writes != 0 {
		t.Errorf("delta = %v", delta)
	}
	if delta.Total() != 2 {
		t.Errorf("total = %d", delta.Total())
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Errorf("reset failed: %v", d.Stats())
	}
}

func TestReadNoCopyCounts(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	d.Write(id, []byte{42})
	before := d.Stats().Reads
	b := d.ReadNoCopy(id)
	if b[0] != 42 {
		t.Error("wrong content")
	}
	if d.Stats().Reads != before+1 {
		t.Error("ReadNoCopy must count a read")
	}
	_ = d.PeekNoCopy(id)
	if d.Stats().Reads != before+1 {
		t.Error("PeekNoCopy must not count a read")
	}
}

func TestPagerCacheHit(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	d.Write(id, []byte{7})
	p := NewPager(d, 4)
	d.ResetStats()
	_ = p.Read(id)
	_ = p.Read(id)
	_ = p.Read(id)
	if d.Stats().Reads != 1 {
		t.Errorf("cached reads should cost 1 disk read, got %d", d.Stats().Reads)
	}
	hits, misses := p.HitRate()
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestPagerZeroCapacityNoCache(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	d.Write(id, []byte{7})
	p := NewPager(d, 0)
	d.ResetStats()
	_ = p.Read(id)
	_ = p.Read(id)
	if d.Stats().Reads != 2 {
		t.Errorf("uncached reads should cost 2, got %d", d.Stats().Reads)
	}
}

func TestPagerEviction(t *testing.T) {
	d := NewDisk(16)
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i] = d.Alloc()
		d.Write(ids[i], []byte{byte(i)})
	}
	p := NewPager(d, 2)
	d.ResetStats()
	_ = p.Read(ids[0])
	_ = p.Read(ids[1])
	_ = p.Read(ids[2]) // evicts ids[0]
	_ = p.Read(ids[0]) // miss again
	if d.Stats().Reads != 4 {
		t.Errorf("want 4 disk reads with capacity-2 LRU, got %d", d.Stats().Reads)
	}
	if p.CachedPages() != 2 {
		t.Errorf("cached pages = %d, want 2", p.CachedPages())
	}
}

func TestPagerLRUOrder(t *testing.T) {
	d := NewDisk(16)
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i] = d.Alloc()
		d.Write(ids[i], []byte{byte(i)})
	}
	p := NewPager(d, 2)
	d.ResetStats()
	_ = p.Read(ids[0])
	_ = p.Read(ids[1])
	_ = p.Read(ids[0]) // refresh 0, so 1 is LRU
	_ = p.Read(ids[2]) // evicts 1
	_ = p.Read(ids[0]) // hit
	if d.Stats().Reads != 3 {
		t.Errorf("want 3 disk reads (0,1,2), got %d", d.Stats().Reads)
	}
}

func TestPagerPinNeverEvicted(t *testing.T) {
	d := NewDisk(16)
	ids := make([]PageID, 4)
	for i := range ids {
		ids[i] = d.Alloc()
		d.Write(ids[i], []byte{byte(i)})
	}
	p := NewPager(d, 1)
	p.Pin(ids[0])
	d.ResetStats()
	for i := 0; i < 10; i++ {
		_ = p.Read(ids[1])
		_ = p.Read(ids[2])
		_ = p.Read(ids[3])
		if got := p.Read(ids[0]); got[0] != 0 {
			t.Fatal("pinned page content wrong")
		}
	}
	// Pinned page never costs a read; the three others thrash the size-1 LRU.
	if d.Stats().Reads != 30 {
		t.Errorf("want 30 disk reads, got %d", d.Stats().Reads)
	}
	p.Unpin(ids[0])
	_ = p.Read(ids[0])
	if d.Stats().Reads != 31 {
		t.Errorf("after unpin read should hit disk, got %d", d.Stats().Reads)
	}
}

func TestPagerWriteRefreshesCache(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	d.Write(id, []byte{1})
	p := NewPager(d, 2)
	_ = p.Read(id)
	p.Write(id, []byte{9})
	got := p.Read(id)
	if got[0] != 9 {
		t.Errorf("cache stale after write: %d", got[0])
	}
	// Written value must also be on disk.
	if d.PeekNoCopy(id)[0] != 9 {
		t.Error("disk not updated")
	}
}

func TestPagerWriteShorterDataZeroesTail(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	d.Write(id, bytes.Repeat([]byte{0xff}, 16))
	p := NewPager(d, 2)
	_ = p.Read(id)
	p.Write(id, []byte{1, 2})
	got := p.Read(id)
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("head = %v", got[:2])
	}
	// Disk.Write leaves tail, but the cache copy must match disk semantics
	// for the bytes the caller wrote; beyond len(data) the page content is
	// whatever the disk holds. We only require cache==disk.
	if !bytes.Equal(got, d.PeekNoCopy(id)) && !bytes.Equal(got[:2], d.PeekNoCopy(id)[:2]) {
		t.Error("cache and disk disagree")
	}
}

func TestPagerInvalidateAndDrop(t *testing.T) {
	d := NewDisk(16)
	id := d.Alloc()
	d.Write(id, []byte{1})
	p := NewPager(d, 2)
	_ = p.Read(id)
	p.Invalidate(id)
	d.ResetStats()
	_ = p.Read(id)
	if d.Stats().Reads != 1 {
		t.Error("invalidate should force a disk read")
	}
	p.Pin(id)
	p.DropCache()
	if p.CachedPages() != 0 {
		t.Error("DropCache should empty everything")
	}
}

func TestPagerUnboundedCapacity(t *testing.T) {
	d := NewDisk(16)
	p := NewPager(d, -1)
	ids := make([]PageID, 50)
	for i := range ids {
		ids[i] = d.Alloc()
		d.Write(ids[i], []byte{byte(i)})
	}
	for _, id := range ids {
		_ = p.Read(id)
	}
	d.ResetStats()
	for _, id := range ids {
		_ = p.Read(id)
	}
	if d.Stats().Reads != 0 {
		t.Errorf("unbounded cache should serve all hits, got %d reads", d.Stats().Reads)
	}
}
