package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prtree/internal/geom"
)

func TestItemCodecRoundTrip(t *testing.T) {
	it := geom.Item{Rect: geom.NewRect(1.5, -2.25, 3.75, 4.125), ID: 0xdeadbeef}
	buf := make([]byte, ItemSize)
	EncodeItem(buf, it)
	got := DecodeItem(buf)
	if got != it {
		t.Errorf("round trip = %+v, want %+v", got, it)
	}
}

func TestItemCodecQuick(t *testing.T) {
	prop := func(a, b, c, d float64, id uint32) bool {
		it := geom.Item{Rect: geom.Rect{MinX: a, MinY: b, MaxX: c, MaxY: d}, ID: id}
		buf := make([]byte, ItemSize)
		EncodeItem(buf, it)
		got := DecodeItem(buf)
		// NaN != NaN, so compare bit patterns via re-encoding.
		buf2 := make([]byte, ItemSize)
		EncodeItem(buf2, got)
		for i := range buf {
			if buf[i] != buf2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestItemsPerBlock(t *testing.T) {
	if got := ItemsPerBlock(DefaultBlockSize); got != 113 {
		t.Errorf("ItemsPerBlock(4096) = %d, want 113 (paper's fanout)", got)
	}
}

func randItems(n int, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = geom.Item{
			Rect: geom.NewRect(x, y, x+rng.Float64()*0.01, y+rng.Float64()*0.01),
			ID:   uint32(i),
		}
	}
	return items
}

func TestItemFileRoundTrip(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	items := randItems(1000, 1)
	f := NewItemFileFrom(d, items)
	if f.Len() != 1000 {
		t.Fatalf("len = %d", f.Len())
	}
	got := f.ReadAll()
	if len(got) != len(items) {
		t.Fatalf("read %d items", len(got))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d mismatch: %+v vs %+v", i, got[i], items[i])
		}
	}
}

func TestItemFileBlockCount(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	per := ItemsPerBlock(DefaultBlockSize)
	f := NewItemFileFrom(d, randItems(per*3+1, 2))
	if f.Blocks() != 4 {
		t.Errorf("blocks = %d, want 4", f.Blocks())
	}
}

func TestItemFileIOAccounting(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	per := ItemsPerBlock(DefaultBlockSize)
	n := per * 5
	d.ResetStats()
	f := NewItemFileFrom(d, randItems(n, 3))
	if w := d.Stats().Writes; w != 5 {
		t.Errorf("writing %d items should cost 5 block writes, got %d", n, w)
	}
	d.ResetStats()
	_ = f.ReadAll()
	if r := d.Stats().Reads; r != 5 {
		t.Errorf("scanning should cost 5 block reads, got %d", r)
	}
}

func TestItemFileSealSemantics(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	f := NewItemFile(d)
	f.Append(geom.Item{Rect: geom.NewRect(0, 0, 1, 1), ID: 1})
	f.Seal()
	f.Seal() // idempotent
	defer func() {
		if recover() == nil {
			t.Error("append after seal should panic")
		}
	}()
	f.Append(geom.Item{})
}

func TestItemFileReaderUnsealedPanics(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	f := NewItemFile(d)
	defer func() {
		if recover() == nil {
			t.Error("Reader on unsealed file should panic")
		}
	}()
	_ = f.Reader()
}

func TestItemReaderSeek(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	items := randItems(500, 4)
	f := NewItemFileFrom(d, items)
	r := f.ReaderAt(250)
	it, ok := r.Next()
	if !ok || it != items[250] {
		t.Errorf("seek read = %+v", it)
	}
	if r.Pos() != 251 {
		t.Errorf("pos = %d", r.Pos())
	}
	r.Seek(0)
	it, _ = r.Next()
	if it != items[0] {
		t.Error("seek back to 0 failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range seek should panic")
		}
	}()
	r.Seek(501)
}

func TestItemFileFree(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	f := NewItemFileFrom(d, randItems(300, 5))
	used := d.PagesInUse()
	f.Free()
	if d.PagesInUse() != used-3 {
		t.Errorf("free did not release pages: %d in use", d.PagesInUse())
	}
	if f.Len() != 0 {
		t.Errorf("freed file len = %d", f.Len())
	}
}

func TestItemFileEmpty(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	f := NewItemFileFrom(d, nil)
	if f.Len() != 0 || f.Blocks() != 0 {
		t.Errorf("empty file: len=%d blocks=%d", f.Len(), f.Blocks())
	}
	if got := f.ReadAll(); len(got) != 0 {
		t.Errorf("empty read = %v", got)
	}
}

func TestItemFilePartialBlock(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	items := randItems(7, 6)
	f := NewItemFileFrom(d, items)
	got := f.ReadAll()
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("partial-block item %d mismatch", i)
		}
	}
}

func TestAppendRawMatchesAppend(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	a, b := NewItemFile(d), NewItemFile(d)
	var rec [ItemSize]byte
	for i := 0; i < 300; i++ {
		it := geom.Item{Rect: geom.NewRect(float64(i), 0, float64(i)+1, 2), ID: uint32(i)}
		a.Append(it)
		EncodeItem(rec[:], it)
		b.AppendRaw(rec[:])
	}
	a.Seal()
	b.Seal()
	ga, gb := a.ReadAll(), b.ReadAll()
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("record %d differs: %+v != %+v", i, ga[i], gb[i])
		}
	}
}

func TestRawBlockAndAppendRawBlockCopy(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	per := ItemsPerBlock(DefaultBlockSize)
	n := per*2 + 5 // two full blocks plus a partial tail
	src := NewItemFile(d)
	for i := 0; i < n; i++ {
		src.Append(geom.Item{Rect: geom.NewRect(0, 0, 1, 1), ID: uint32(i)})
	}
	src.Seal()
	d.ResetStats()
	dst := NewItemFile(d)
	for b := 0; b < src.Blocks(); b++ {
		data, count := src.RawBlock(b)
		dst.AppendRawBlock(data, count)
	}
	dst.Seal()
	// Whole-block copy must cost exactly the same I/O as a record copy:
	// one read and one write per block.
	st := d.Stats()
	if st.Reads != uint64(src.Blocks()) || st.Writes != uint64(src.Blocks()) {
		t.Errorf("copy cost %v, want %d reads and writes", st, src.Blocks())
	}
	got := dst.ReadAll()
	if len(got) != n {
		t.Fatalf("copied %d of %d records", len(got), n)
	}
	for i, it := range got {
		if it.ID != uint32(i) {
			t.Fatalf("record %d: id %d", i, it.ID)
		}
	}
}

func TestAppendRawBlockIntoPartialBuffer(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	per := ItemsPerBlock(DefaultBlockSize)
	src := NewItemFile(d)
	for i := 0; i < per; i++ {
		src.Append(geom.Item{Rect: geom.NewRect(0, 0, 1, 1), ID: uint32(i)})
	}
	src.Seal()
	dst := NewItemFile(d)
	dst.Append(geom.Item{Rect: geom.NewRect(0, 0, 1, 1), ID: 9999}) // misalign
	data, count := src.RawBlock(0)
	dst.AppendRawBlock(data, count)
	dst.Seal()
	got := dst.ReadAll()
	if len(got) != per+1 || got[0].ID != 9999 || got[1].ID != 0 || got[per].ID != uint32(per-1) {
		t.Fatalf("misaligned raw block append corrupted the file (len %d)", len(got))
	}
}

func TestNextRawMatchesNext(t *testing.T) {
	d := NewDisk(DefaultBlockSize)
	per := ItemsPerBlock(DefaultBlockSize)
	f := NewItemFile(d)
	n := per + 13
	for i := 0; i < n; i++ {
		f.Append(geom.Item{Rect: geom.NewRect(float64(i), 1, float64(i)+2, 3), ID: uint32(i)})
	}
	f.Seal()
	ra, rb := f.Reader(), f.Reader()
	for {
		it, ok1 := ra.Next()
		rec, ok2 := rb.NextRaw()
		if ok1 != ok2 {
			t.Fatal("readers disagree on EOF")
		}
		if !ok1 {
			break
		}
		if DecodeItem(rec) != it {
			t.Fatalf("raw record decodes to %+v, want %+v", DecodeItem(rec), it)
		}
	}
}
