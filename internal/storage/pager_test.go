package storage

import (
	"bytes"
	"testing"
)

// newPagerDisk allocates n pages stamped with a recognizable first byte.
func newPagerDisk(t *testing.T, n int) *Disk {
	t.Helper()
	d := NewDisk(32)
	for i := 0; i < n; i++ {
		id := d.Alloc()
		d.Write(id, []byte{byte(i + 1)})
	}
	return d
}

func TestPagerHitMissAccounting(t *testing.T) {
	d := newPagerDisk(t, 3)
	p := NewPager(d, -1)
	d.ResetStats()

	p.Read(0)
	p.Read(0)
	p.Read(1)
	p.Read(0)
	hits, misses := p.HitRate()
	if hits != 2 || misses != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", hits, misses)
	}
	if got := d.Stats().Reads; got != 2 {
		t.Errorf("disk reads = %d, want 2 (only misses touch the disk)", got)
	}
}

func TestPagerEvictionOrderLRU(t *testing.T) {
	d := newPagerDisk(t, 4)
	p := NewPager(d, 2)

	p.Read(0)
	p.Read(1)
	p.Read(0) // 0 is now most recent: LRU order is [0, 1]
	p.Read(2) // evicts 1, not 0
	d.ResetStats()
	p.Read(0)
	p.Read(2)
	if got := d.Stats().Reads; got != 0 {
		t.Errorf("0 and 2 should be resident, saw %d disk reads", got)
	}
	p.Read(1)
	if got := d.Stats().Reads; got != 1 {
		t.Errorf("1 should have been evicted, saw %d disk reads", got)
	}
	if got := p.CachedPages(); got != 2 {
		t.Errorf("CachedPages = %d, want capacity 2", got)
	}
}

func TestPagerCapacityZeroNeverCaches(t *testing.T) {
	d := newPagerDisk(t, 1)
	p := NewPager(d, 0)
	d.ResetStats()
	p.Read(0)
	p.Read(0)
	if got := d.Stats().Reads; got != 2 {
		t.Errorf("capacity-0 pager made %d disk reads, want 2", got)
	}
	if got := p.CachedPages(); got != 0 {
		t.Errorf("capacity-0 pager holds %d pages", got)
	}
}

func TestPagerPinSurvivesEvictionAndWrite(t *testing.T) {
	d := newPagerDisk(t, 4)
	p := NewPager(d, 1)
	p.Pin(0)
	p.Read(1)
	p.Read(2) // evicts 1; 0 stays pinned
	d.ResetStats()
	if got := p.Read(0); got[0] != 1 {
		t.Fatalf("pinned page content = %d", got[0])
	}
	if got := d.Stats().Reads; got != 0 {
		t.Errorf("pinned read touched the disk %d times", got)
	}

	// Write refreshes the pinned copy in place and zero-fills the tail
	// beyond the written data.
	p.Write(0, []byte{9, 8})
	got := p.Read(0)
	if got[0] != 9 || got[1] != 8 {
		t.Errorf("pinned copy not refreshed: % x", got[:2])
	}
	if !bytes.Equal(got[2:], make([]byte, len(got)-2)) {
		t.Errorf("pinned copy tail not zero-filled: % x", got[2:])
	}
	// The refreshed copy must match the disk exactly.
	if !bytes.Equal(got, d.PeekNoCopy(0)) {
		t.Error("pinned copy diverged from disk after Write")
	}

	p.Unpin(0)
	d.ResetStats()
	p.Read(0)
	if got := d.Stats().Reads; got != 1 {
		t.Errorf("unpinned page should reload from disk, saw %d reads", got)
	}
}

func TestPagerWriteRefreshesLRUCopy(t *testing.T) {
	d := newPagerDisk(t, 2)
	p := NewPager(d, -1)
	p.Read(0)
	p.Write(0, []byte{7})
	d.ResetStats()
	if got := p.Read(0); got[0] != 7 {
		t.Errorf("cached copy = %d after Write, want 7", got[0])
	}
	if got := d.Stats().Reads; got != 0 {
		t.Errorf("refreshed page re-read from disk %d times", got)
	}
}

type decodedProbe struct{ gen int }

// storeDecoded reads the page (making it resident where possible) and
// memoizes a probe value for it.
func storeDecoded(p *Pager, id PageID, gen int) {
	p.Read(id)
	p.StoreDecoded(id, &decodedProbe{gen: gen})
}

func decodedGen(p *Pager, id PageID) (int, bool) {
	v, ok := p.Decoded(id)
	if !ok {
		return 0, false
	}
	return v.(*decodedProbe).gen, true
}

func TestPagerDecodedRoundTrip(t *testing.T) {
	d := newPagerDisk(t, 2)
	p := NewPager(d, -1)
	if _, ok := p.Decoded(0); ok {
		t.Fatal("decoded cache should start empty")
	}
	storeDecoded(p, 0, 1)
	if gen, ok := decodedGen(p, 0); !ok || gen != 1 {
		t.Fatalf("decoded(0) = %d/%v, want 1", gen, ok)
	}
	if _, ok := p.Decoded(1); ok {
		t.Error("page 1 never stored but has a decoded entry")
	}
}

func TestPagerDecodedDroppedOnWrite(t *testing.T) {
	d := newPagerDisk(t, 1)
	p := NewPager(d, -1)
	storeDecoded(p, 0, 1)
	p.Write(0, []byte{5})
	if _, ok := p.Decoded(0); ok {
		t.Error("Write must drop the decoded entry for the page")
	}
	// Re-storing after the write (the write-through pattern) works.
	p.StoreDecoded(0, &decodedProbe{gen: 2})
	if gen, ok := decodedGen(p, 0); !ok || gen != 2 {
		t.Errorf("re-stored decoded = %d/%v, want 2", gen, ok)
	}
}

func TestPagerDecodedDroppedOnInvalidateAndDropCache(t *testing.T) {
	d := newPagerDisk(t, 2)
	p := NewPager(d, -1)
	storeDecoded(p, 0, 1)
	storeDecoded(p, 1, 1)
	p.Invalidate(0)
	if _, ok := p.Decoded(0); ok {
		t.Error("Invalidate must drop the decoded entry")
	}
	if _, ok := p.Decoded(1); !ok {
		t.Error("Invalidate of page 0 dropped page 1's entry")
	}
	p.DropCache()
	if _, ok := p.Decoded(1); ok {
		t.Error("DropCache must drop every decoded entry")
	}
}

func TestPagerDecodedFollowsResidency(t *testing.T) {
	d := newPagerDisk(t, 3)

	// Capacity-0: pages are never resident, so nothing is memoized.
	p0 := NewPager(d, 0)
	storeDecoded(p0, 0, 1)
	if _, ok := p0.Decoded(0); ok {
		t.Error("capacity-0 pager memoized a decoded entry")
	}

	// Eviction from the LRU drops the decoded entry with the bytes.
	p := NewPager(d, 1)
	storeDecoded(p, 0, 1)
	p.Read(1) // evicts 0
	if _, ok := p.Decoded(0); ok {
		t.Error("eviction must drop the decoded entry")
	}

	// Pinned pages keep their entry through pressure; Unpin drops it.
	p.Pin(2)
	p.StoreDecoded(2, &decodedProbe{gen: 3})
	p.Read(0)
	p.Read(1)
	if gen, ok := decodedGen(p, 2); !ok || gen != 3 {
		t.Error("pinned page lost its decoded entry under LRU pressure")
	}
	p.Unpin(2)
	if _, ok := p.Decoded(2); ok {
		t.Error("Unpin must drop the decoded entry")
	}
}
