//go:build !linux

package storage

import "os"

// preadvSupported gates the vectored-read fast path in ReadBlocks; without
// a platform preadv the batch read degrades to per-page preads with
// identical semantics.
const preadvSupported = false

func preadvFull(f *os.File, iovs [][]byte, off int64) (int, bool) {
	return 0, false
}
