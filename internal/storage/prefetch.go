package storage

import (
	"sync"
	"sync/atomic"
)

const (
	// defaultPrefetchWorkers sizes the worker pool when PagerOptions leaves
	// it zero. Two workers overlap speculative I/O with traversal without
	// oversubscribing small machines.
	defaultPrefetchWorkers = 2

	// prefetchStageCap bounds the staging area (pages). At the default 4 KB
	// block size this is 1 MB of read-ahead; hints beyond it are dropped —
	// prefetch is best-effort by design.
	prefetchStageCap = 256

	// prefetchQueueCap bounds pending hint batches; a full queue drops new
	// hints rather than stalling the query that issued them.
	prefetchQueueCap = 16
)

// prefetcher fills speculative hint batches into a bounded staging area
// that is deliberately separate from the pager's cache: staged pages enter
// the cache only when a demand miss consumes them (Pager.fetchDemand), so
// cache content, eviction order and demand I/O accounting are bit-identical
// to a run without prefetch. See the Pager doc comment for the protocol.
type prefetcher struct {
	p      *Pager
	dev    SpeculativeReader
	queue  chan []PageID
	wg     sync.WaitGroup
	issued atomic.Uint64 // pages actually fetched speculatively

	mu     sync.Mutex
	closed bool
	staged map[PageID]*stageEntry
	fifo   []PageID // staging insertion order, for bounded discard
}

// stageEntry is one staged page: in flight until ready is closed, then
// holding its bytes. stale marks entries invalidated by a write; their
// bytes must never be served.
type stageEntry struct {
	data  []byte
	ready chan struct{}
	done  bool
	stale bool
}

func newPrefetcher(p *Pager, dev SpeculativeReader, workers int) *prefetcher {
	pf := &prefetcher{
		p:      p,
		dev:    dev,
		queue:  make(chan []PageID, prefetchQueueCap),
		staged: make(map[PageID]*stageEntry),
	}
	pf.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go pf.worker()
	}
	return pf
}

// Prefetch hints that the pages in ids are likely to be demanded soon.
// The batch is copied (callers pass live traversal state), queued for the
// worker pool, and dropped wholesale if the queue is full — hints are
// advisory and must never block or slow the demand path. Without prefetch
// enabled this is a no-op.
func (p *Pager) Prefetch(ids []PageID) {
	pf := p.pf
	if pf == nil || len(ids) == 0 {
		return
	}
	batch := make([]PageID, len(ids))
	copy(batch, ids)
	pf.mu.Lock()
	if !pf.closed {
		select {
		case pf.queue <- batch:
		default: // queue full: drop, best-effort
		}
	}
	pf.mu.Unlock()
}

func (pf *prefetcher) worker() {
	defer pf.wg.Done()
	for batch := range pf.queue {
		pf.fetch(batch)
	}
}

// resident reports whether the pager already holds id (pinned, cached or
// demand-fill in flight), making a speculative fetch pointless. Called
// without pf.mu held — the shard lock must never nest inside it. It must
// also never block: a bounded-pager demand miss waits on staged entries
// while holding the shard write lock, so a blocking RLock here would
// deadlock the worker against the very reader it is prefetching for.
// When the lock is contended the answer is a conservative "resident",
// which merely skips one best-effort speculative read.
func (p *Pager) resident(id PageID) bool {
	s := p.shard(id)
	if !s.mu.TryRLock() {
		return true
	}
	_, pinned := s.pinned[id]
	_, cached := s.entries[id]
	s.mu.RUnlock()
	return pinned || cached
}

// fetch claims the batch's not-yet-staged, not-resident pages, performs one
// speculative batched read for them, and publishes the bytes to waiting
// demand misses. A panic out of the backend (checksum, out-of-range) drops
// the claimed entries so demand readers retry on the demand path and
// surface the same failure there.
func (pf *prefetcher) fetch(batch []PageID) {
	var claim []PageID
	var entries []*stageEntry
	for _, id := range batch {
		if pf.p.resident(id) {
			continue
		}
		pf.mu.Lock()
		if _, ok := pf.staged[id]; ok {
			pf.mu.Unlock()
			continue
		}
		if len(pf.staged) >= prefetchStageCap && !pf.discardOldestLocked() {
			pf.mu.Unlock()
			break // staging full of in-flight entries; drop the rest
		}
		se := &stageEntry{ready: make(chan struct{})}
		pf.staged[id] = se
		pf.fifo = append(pf.fifo, id)
		pf.mu.Unlock()
		claim = append(claim, id)
		entries = append(entries, se)
	}
	if len(claim) == 0 {
		return
	}
	published := false
	defer func() {
		if published {
			return
		}
		// The speculative read panicked: unstage and release waiters with
		// no data (recovering here keeps the worker alive; the demand path
		// will hit the same condition and surface it to the caller).
		pf.mu.Lock()
		for i, id := range claim {
			if pf.staged[id] == entries[i] {
				delete(pf.staged, id)
			}
			close(entries[i].ready)
		}
		pf.mu.Unlock()
		_ = recover()
	}()
	bs := pf.p.dev.BlockSize()
	flat := make([]byte, len(claim)*bs)
	bufs := make([][]byte, len(claim))
	for i := range bufs {
		bufs[i] = flat[i*bs : (i+1)*bs : (i+1)*bs]
	}
	pf.dev.ReadBlocksSpeculative(claim, bufs)
	pf.issued.Add(uint64(len(claim)))
	pf.mu.Lock()
	for i, id := range claim {
		se := entries[i]
		se.data = bufs[i]
		se.done = true
		if se.stale || pf.staged[id] != se {
			// Invalidated (or replaced) while in flight: never serve it.
			if pf.staged[id] == se {
				delete(pf.staged, id)
			}
		}
		close(se.ready)
	}
	pf.mu.Unlock()
	published = true
}

// discardOldestLocked frees one staging slot by dropping the oldest filled,
// unclaimed entry. It returns false when nothing is discardable (all
// in-flight). Caller holds pf.mu.
func (pf *prefetcher) discardOldestLocked() bool {
	for i, id := range pf.fifo {
		se, ok := pf.staged[id]
		if ok && se.done {
			delete(pf.staged, id)
			pf.fifo = append(pf.fifo[:0], pf.fifo[i+1:]...)
			return true
		}
		if !ok {
			continue // already taken or discarded; compacted below
		}
	}
	// Compact fifo of dead ids so it cannot grow without bound.
	live := pf.fifo[:0]
	for _, id := range pf.fifo {
		if _, ok := pf.staged[id]; ok {
			live = append(live, id)
		}
	}
	pf.fifo = live
	return false
}

// take hands a staged page to a demand miss: it waits for an in-flight
// fetch (single-flight dedup against the demand read), removes the entry,
// and returns its bytes. ok=false means the demand path must perform its
// own read.
func (pf *prefetcher) take(id PageID) ([]byte, bool) {
	pf.mu.Lock()
	se, ok := pf.staged[id]
	pf.mu.Unlock()
	if !ok {
		return nil, false
	}
	<-se.ready
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.staged[id] != se || se.stale || se.data == nil {
		return nil, false
	}
	delete(pf.staged, id)
	return se.data, true
}

// invalidate marks any staged copy of id stale (a write made it obsolete).
// Filled entries drop immediately; in-flight ones are dropped on publish.
func (pf *prefetcher) invalidate(id PageID) {
	pf.mu.Lock()
	if se, ok := pf.staged[id]; ok {
		se.stale = true
		if se.done {
			delete(pf.staged, id)
		}
	}
	pf.mu.Unlock()
}

// dropAll empties the staging area (DropCache).
func (pf *prefetcher) dropAll() {
	pf.mu.Lock()
	for id, se := range pf.staged {
		se.stale = true
		if se.done {
			delete(pf.staged, id)
		}
	}
	pf.fifo = pf.fifo[:0]
	pf.mu.Unlock()
}

// close shuts the worker pool down and waits for it; idempotent. Batches
// already queued are processed, not dropped — the wait is bounded (the
// queue is closed, so it only drains) and it makes the prefetch counters
// deterministic for callers that read them after Close.
func (pf *prefetcher) close() {
	pf.mu.Lock()
	if pf.closed {
		pf.mu.Unlock()
		return
	}
	pf.closed = true
	close(pf.queue)
	pf.mu.Unlock()
	pf.wg.Wait()
}
