// Package workload generates the window-query workloads of the paper's
// Section 3.3: square queries covering a fixed fraction of the data
// bounding box, squares skewed along with a skewed(c) dataset, and the
// long skinny line probes used on the cluster and worst-case datasets.
package workload

import (
	"math"
	"math/rand"

	"prtree/internal/geom"
)

// clampExtent limits a probe dimension to [0, max]: an oversized probe
// would make the random-offset range max-extent negative, placing queries
// outside the world (and, for NaN-producing inputs, degenerate rects).
// The clamp happens before any offset is drawn so the RNG stream stays
// well-defined.
func clampExtent(extent, max float64) float64 {
	if !(extent > 0) { // also catches NaN
		return 0
	}
	if extent > max {
		return max
	}
	return extent
}

// Squares returns count square queries of area areaFrac*Area(world) whose
// positions are uniform with the square fully inside world. A side larger
// than either world extent is clamped to it, so every query lies inside
// world even for areaFrac near or above 1.
func Squares(world geom.Rect, areaFrac float64, count int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	side := math.Sqrt(areaFrac * world.Area())
	side = clampExtent(side, math.Min(world.Width(), world.Height()))
	out := make([]geom.Rect, count)
	for i := range out {
		x := world.MinX + rng.Float64()*(world.Width()-side)
		y := world.MinY + rng.Float64()*(world.Height()-side)
		out[i] = geom.NewRect(x, y, x+side, y+side)
	}
	return out
}

// SkewedSquares returns squares of area areaFrac on the unit square,
// transformed like the skewed(c) dataset: each corner (x, y) becomes
// (x, y^c), so the output size stays roughly constant (Figure 15, right).
func SkewedSquares(areaFrac float64, c, count int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	side := clampExtent(math.Sqrt(areaFrac), 1)
	out := make([]geom.Rect, count)
	for i := range out {
		x := rng.Float64() * (1 - side)
		y := rng.Float64() * (1 - side)
		out[i] = geom.NewRect(
			x, math.Pow(y, float64(c)),
			x+side, math.Pow(y+side, float64(c)),
		)
	}
	return out
}

// HorizontalLines returns thin horizontal probes of the given height with
// random vertical positions inside world, spanning its full width. A
// height exceeding the world's is clamped to it (previously the offset
// range went negative and probes escaped the world).
func HorizontalLines(world geom.Rect, height float64, count int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	height = clampExtent(height, world.Height())
	out := make([]geom.Rect, count)
	for i := range out {
		y := world.MinY + rng.Float64()*(world.Height()-height)
		out[i] = geom.NewRect(world.MinX, y, world.MaxX, y+height)
	}
	return out
}
