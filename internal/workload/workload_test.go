package workload

import (
	"math"
	"testing"

	"prtree/internal/geom"
)

func TestSquaresAreaAndContainment(t *testing.T) {
	world := geom.NewRect(0, 0, 2, 2)
	qs := Squares(world, 0.01, 100, 1)
	if len(qs) != 100 {
		t.Fatalf("len = %d", len(qs))
	}
	wantArea := 0.01 * world.Area()
	for _, q := range qs {
		if !world.Contains(q) {
			t.Fatalf("query %v outside world", q)
		}
		if math.Abs(q.Area()-wantArea)/wantArea > 1e-9 {
			t.Fatalf("query area %g, want %g", q.Area(), wantArea)
		}
		if math.Abs(q.Width()-q.Height()) > 1e-12 {
			t.Fatalf("query not square: %v", q)
		}
	}
}

func TestSquaresDeterministic(t *testing.T) {
	a := Squares(geom.NewRect(0, 0, 1, 1), 0.02, 10, 5)
	b := Squares(geom.NewRect(0, 0, 1, 1), 0.02, 10, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same queries")
		}
	}
}

func TestSquaresClampToWorld(t *testing.T) {
	// Queries larger than the world clamp to its size.
	world := geom.NewRect(0, 0, 1, 0.1)
	qs := Squares(world, 5.0, 10, 2)
	for _, q := range qs {
		if !world.Contains(q) {
			t.Fatalf("clamped query %v escapes world", q)
		}
	}
}

func TestSkewedSquares(t *testing.T) {
	qs := SkewedSquares(0.01, 5, 200, 3)
	unit := geom.NewRect(0, 0, 1, 1)
	for _, q := range qs {
		if !unit.Contains(q) {
			t.Fatalf("skewed query %v outside unit square", q)
		}
		// x-extent stays sqrt(area); y-extent is squeezed.
		if math.Abs(q.Width()-0.1) > 1e-9 {
			t.Fatalf("width %g", q.Width())
		}
	}
	// Most queries should sit near y=0 like the data.
	low := 0
	for _, q := range qs {
		if q.MinY < 0.1 {
			low++
		}
	}
	if frac := float64(low) / float64(len(qs)); frac < 0.5 {
		t.Errorf("only %.2f of skewed queries near y=0", frac)
	}
}

func TestSkewedSquaresC1IsUnskewed(t *testing.T) {
	qs := SkewedSquares(0.01, 1, 50, 4)
	for _, q := range qs {
		if math.Abs(q.Height()-0.1) > 1e-9 {
			t.Fatalf("c=1 should keep square shape, got height %g", q.Height())
		}
	}
}

func TestHorizontalLines(t *testing.T) {
	world := geom.NewRect(0, 0, 10, 1)
	qs := HorizontalLines(world, 1e-4, 50, 5)
	for _, q := range qs {
		if !world.Contains(q) {
			t.Fatalf("line %v outside world", q)
		}
		if q.MinX != 0 || q.MaxX != 10 {
			t.Fatalf("line must span full width: %v", q)
		}
		if math.Abs(q.Height()-1e-4) > 1e-12 {
			t.Fatalf("height %g", q.Height())
		}
	}
}

func TestHorizontalLinesOversizedHeightClamps(t *testing.T) {
	world := geom.NewRect(0, 0, 10, 1)
	// Height beyond the world extent used to make the offset range
	// negative, pushing probes below MinY; it must clamp to the world.
	for _, h := range []float64{1.0, 2.5, 100} {
		for _, q := range HorizontalLines(world, h, 50, 6) {
			if !world.Contains(q) {
				t.Fatalf("height %g: probe %v escapes world", h, q)
			}
			if !q.Valid() {
				t.Fatalf("height %g: inverted probe %v", h, q)
			}
		}
	}
}

func TestSquaresOversizedSideClamps(t *testing.T) {
	world := geom.NewRect(-3, 2, 5, 2.5)
	for _, frac := range []float64{1.0, 4.0, 1000} {
		for _, q := range Squares(world, frac, 50, 7) {
			if !world.Contains(q) {
				t.Fatalf("areaFrac %g: query %v escapes world", frac, q)
			}
			if !q.Valid() {
				t.Fatalf("areaFrac %g: inverted query %v", frac, q)
			}
		}
	}
}

func TestSkewedSquaresOversizedAreaClamps(t *testing.T) {
	unit := geom.NewRect(0, 0, 1, 1)
	for _, q := range SkewedSquares(9.0, 3, 50, 8) {
		if !unit.Contains(q) {
			t.Fatalf("query %v escapes unit square", q)
		}
	}
}
