package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRectDNormalizes(t *testing.T) {
	r := NewRectD([]float64{3, 1, 5}, []float64{1, 2, 4})
	if !r.Valid() {
		t.Fatal("normalized RectD should be valid")
	}
	if r.Min[0] != 1 || r.Max[0] != 3 || r.Min[2] != 4 || r.Max[2] != 5 {
		t.Errorf("unexpected rect %v", r)
	}
	if r.Dim() != 3 {
		t.Errorf("dim = %d", r.Dim())
	}
}

func TestNewRectDMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	NewRectD([]float64{1}, []float64{1, 2})
}

func TestRectDIntersectsContains(t *testing.T) {
	a := NewRectD([]float64{0, 0, 0}, []float64{2, 2, 2})
	b := NewRectD([]float64{1, 1, 1}, []float64{3, 3, 3})
	c := NewRectD([]float64{3, 3, 2.5}, []float64{4, 4, 4})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	if !a.Contains(NewRectD([]float64{0.5, 0.5, 0.5}, []float64{1, 1, 1})) {
		t.Error("containment failed")
	}
	if a.Contains(b) {
		t.Error("a should not contain b")
	}
}

func TestRectDTouchingFacesIntersect(t *testing.T) {
	a := NewRectD([]float64{0, 0}, []float64{1, 1})
	b := NewRectD([]float64{1, 0}, []float64{2, 1})
	if !a.Intersects(b) {
		t.Error("touching faces should intersect")
	}
}

func TestRectDUnionVolume(t *testing.T) {
	a := NewRectD([]float64{0, 0}, []float64{1, 2})
	b := NewRectD([]float64{2, 1}, []float64{3, 3})
	u := a.Union(b)
	if u.Volume() != 9 {
		t.Errorf("union volume = %g, want 9", u.Volume())
	}
	if a.Volume() != 2 {
		t.Errorf("a volume = %g", a.Volume())
	}
}

func TestRectDUnionInPlaceMatchesUnion(t *testing.T) {
	a := NewRectD([]float64{0, 5}, []float64{1, 6})
	b := NewRectD([]float64{-1, 7}, []float64{0.5, 9})
	want := a.Union(b)
	got := a.Clone()
	got.UnionInPlace(b)
	for i := range want.Min {
		if got.Min[i] != want.Min[i] || got.Max[i] != want.Max[i] {
			t.Fatalf("in-place union mismatch: %v vs %v", got, want)
		}
	}
}

func TestRectDCoordCornerTransform(t *testing.T) {
	r := NewRectD([]float64{1, 2, 3}, []float64{4, 5, 6})
	want := []float64{1, 2, 3, 4, 5, 6}
	for axis := 0; axis < 6; axis++ {
		if got := r.Coord(axis); got != want[axis] {
			t.Errorf("Coord(%d) = %g, want %g", axis, got, want[axis])
		}
		if got := r.Coord(axis + 6); got != want[axis] {
			t.Errorf("Coord(%d) wrap = %g, want %g", axis+6, got, want[axis])
		}
	}
}

func TestMBRD(t *testing.T) {
	rs := []RectD{
		NewRectD([]float64{0, 0}, []float64{1, 1}),
		NewRectD([]float64{-1, 2}, []float64{0, 3}),
	}
	m := MBRD(rs)
	if m.Min[0] != -1 || m.Min[1] != 0 || m.Max[0] != 1 || m.Max[1] != 3 {
		t.Errorf("MBRD = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("MBRD of empty slice should panic")
		}
	}()
	MBRD(nil)
}

func TestEmptyRectDAbsorbs(t *testing.T) {
	e := EmptyRectD(2)
	if e.Valid() {
		t.Error("empty RectD must be invalid")
	}
	r := NewRectD([]float64{1, 1}, []float64{2, 2})
	u := e.Union(r)
	if !u.Contains(r) || !r.Contains(u) {
		t.Errorf("EmptyRectD union = %v", u)
	}
}

func clampD(vals []float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out[i] = math.Mod(v, 1e6)
	}
	return out
}

func TestQuickRectDUnionContainsBoth(t *testing.T) {
	prop := func(a1, a2, a3, b1, b2, b3, c1, c2, c3, d1, d2, d3 float64) bool {
		r1 := NewRectD(clampD([]float64{a1, a2, a3}), clampD([]float64{b1, b2, b3}))
		r2 := NewRectD(clampD([]float64{c1, c2, c3}), clampD([]float64{d1, d2, d3}))
		u := r1.Union(r2)
		return u.Contains(r1) && u.Contains(r2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRectDIntersectsSymmetric(t *testing.T) {
	prop := func(a1, a2, b1, b2, c1, c2, d1, d2 float64) bool {
		r1 := NewRectD(clampD([]float64{a1, a2}), clampD([]float64{b1, b2}))
		r2 := NewRectD(clampD([]float64{c1, c2}), clampD([]float64{d1, d2}))
		return r1.Intersects(r2) == r2.Intersects(r1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRect2DRectDAgree(t *testing.T) {
	// The 2D fast path and the d-dimensional implementation must agree on
	// intersection for d=2.
	prop := func(a, b, c, d, e, f, g, h float64) bool {
		r1 := clampRect(a, b, c, d)
		r2 := clampRect(e, f, g, h)
		d1 := NewRectD([]float64{r1.MinX, r1.MinY}, []float64{r1.MaxX, r1.MaxY})
		d2 := NewRectD([]float64{r2.MinX, r2.MinY}, []float64{r2.MaxX, r2.MaxY})
		return r1.Intersects(r2) == d1.Intersects(d2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
