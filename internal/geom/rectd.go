package geom

import (
	"fmt"
	"math"
)

// RectD is an axis-parallel hyper-rectangle in d dimensions, closed on all
// sides. Min and Max must have equal length d >= 1 with Min[i] <= Max[i].
// RectD backs the d-dimensional PR-tree of Section 2.3 of the paper.
type RectD struct {
	Min, Max []float64
}

// NewRectD builds a d-dimensional rectangle from two corner slices,
// normalizing per-axis coordinate order. The slices are copied.
func NewRectD(lo, hi []float64) RectD {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: NewRectD dimension mismatch %d != %d", len(lo), len(hi)))
	}
	r := RectD{Min: make([]float64, len(lo)), Max: make([]float64, len(hi))}
	for i := range lo {
		a, b := lo[i], hi[i]
		if a > b {
			a, b = b, a
		}
		r.Min[i], r.Max[i] = a, b
	}
	return r
}

// PointRectD returns the degenerate hyper-rectangle at the given point.
func PointRectD(p []float64) RectD {
	return NewRectD(p, p)
}

// Dim returns the dimensionality of r.
func (r RectD) Dim() int { return len(r.Min) }

// Valid reports whether r is well-formed.
func (r RectD) Valid() bool {
	if len(r.Min) == 0 || len(r.Min) != len(r.Max) {
		return false
	}
	for i := range r.Min {
		if r.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of r.
func (r RectD) Clone() RectD {
	out := RectD{Min: make([]float64, len(r.Min)), Max: make([]float64, len(r.Max))}
	copy(out.Min, r.Min)
	copy(out.Max, r.Max)
	return out
}

// Intersects reports whether r and s overlap in every dimension.
func (r RectD) Intersects(s RectD) bool {
	for i := range r.Min {
		if r.Min[i] > s.Max[i] || s.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Contains reports whether s lies entirely within r.
func (r RectD) Contains(s RectD) bool {
	for i := range r.Min {
		if r.Min[i] > s.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Union returns the minimal bounding hyper-rectangle of r and s.
func (r RectD) Union(s RectD) RectD {
	out := RectD{Min: make([]float64, len(r.Min)), Max: make([]float64, len(r.Max))}
	for i := range r.Min {
		out.Min[i] = math.Min(r.Min[i], s.Min[i])
		out.Max[i] = math.Max(r.Max[i], s.Max[i])
	}
	return out
}

// UnionInPlace grows r to cover s without allocating.
func (r *RectD) UnionInPlace(s RectD) {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
}

// Volume returns the d-dimensional volume of r.
func (r RectD) Volume() float64 {
	v := 1.0
	for i := range r.Min {
		v *= r.Max[i] - r.Min[i]
	}
	return v
}

// Coord returns the axis-th coordinate of the 2d-dimensional corner
// transform of r: axes 0..d-1 address Min[axis] and axes d..2d-1 address
// Max[axis-d]. The round-robin kd split of the d-dimensional pseudo-PR-tree
// cycles through these 2d axes.
func (r RectD) Coord(axis int) float64 {
	d := len(r.Min)
	axis %= 2 * d
	if axis < d {
		return r.Min[axis]
	}
	return r.Max[axis-d]
}

// String implements fmt.Stringer.
func (r RectD) String() string {
	return fmt.Sprintf("[%v-%v]", r.Min, r.Max)
}

// MBRD returns the minimal bounding hyper-rectangle of a non-empty slice.
func MBRD(rects []RectD) RectD {
	if len(rects) == 0 {
		panic("geom: MBRD of empty slice")
	}
	out := rects[0].Clone()
	for _, r := range rects[1:] {
		out.UnionInPlace(r)
	}
	return out
}

// EmptyRectD returns the d-dimensional Union identity (not Valid).
func EmptyRectD(d int) RectD {
	r := RectD{Min: make([]float64, d), Max: make([]float64, d)}
	for i := 0; i < d; i++ {
		r.Min[i] = math.Inf(1)
		r.Max[i] = math.Inf(-1)
	}
	return r
}
