package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randBase returns a random valid finite base rectangle, occasionally
// degenerate or with nasty magnitude spreads.
func randBase(rng *rand.Rand) Rect {
	switch rng.Intn(5) {
	case 0: // tiny range at a large offset: decode plateaus (step < ulp)
		x := 1e15 + rng.Float64()
		y := -1e12 + rng.Float64()
		return NewRect(x, y, x+rng.Float64()*1e-3, y+rng.Float64()*1e-6)
	case 1: // degenerate axes
		x, y := rng.Float64(), rng.Float64()
		return NewRect(x, y, x, y+rng.Float64())
	case 2: // huge range
		return NewRect(-rng.Float64()*1e30, -rng.Float64()*1e30, rng.Float64()*1e30, rng.Float64()*1e30)
	default:
		x, y := rng.Float64()*100-50, rng.Float64()*100-50
		return NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
	}
}

// randWithin returns a random sub-rectangle of base.
func randWithin(rng *rand.Rand, base Rect) Rect {
	x1 := base.MinX + rng.Float64()*base.Width()
	x2 := base.MinX + rng.Float64()*base.Width()
	y1 := base.MinY + rng.Float64()*base.Height()
	y2 := base.MinY + rng.Float64()*base.Height()
	return NewRect(x1, y1, x2, y2)
}

func TestCoverIsConservative(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			base := randBase(rng)
			z := NewQuantizer(base)
			if !z.Valid() {
				t.Fatalf("quantizer invalid for finite base %v", base)
			}
			r := randWithin(rng, base)
			cover := z.Dequantize(z.Cover(r))
			if !cover.Contains(r) {
				t.Fatalf("seed %d: cover %v does not contain %v (base %v, steps %g/%g)",
					seed, cover, r, base, z.StepX, z.StepY)
			}
		}
	}
}

func TestCoverTightWithinOneStep(t *testing.T) {
	// In the healthy regime (steps far above one ulp of the base), the
	// tightest cover is within one quantization step per side.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		x, y := rng.Float64()*100-50, rng.Float64()*100-50
		base := NewRect(x, y, x+1+rng.Float64()*10, y+1+rng.Float64()*10)
		z := NewQuantizer(base)
		r := randWithin(rng, base)
		cover := z.Dequantize(z.Cover(r))
		if cover.MinX < r.MinX-2*z.StepX || cover.MinY < r.MinY-2*z.StepY ||
			cover.MaxX > r.MaxX+2*z.StepX || cover.MaxY > r.MaxY+2*z.StepY {
			t.Fatalf("cover %v too loose for %v (steps %g/%g)", cover, r, z.StepX, z.StepY)
		}
	}
}

func TestCoverQueryNoFalseNegatives(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		for i := 0; i < 3000; i++ {
			base := randBase(rng)
			z := NewQuantizer(base)
			entry := randWithin(rng, base)
			qe := z.Cover(entry)
			// Query may poke outside the base.
			query := randWithin(rng, base)
			if rng.Intn(4) == 0 {
				query.MaxX += base.Width()
				query.MinY -= base.Height()
			}
			qq := z.CoverQuery(query)
			if entry.Intersects(query) && !qe.Intersects(qq) {
				t.Fatalf("seed %d: false negative: entry %v (q %v) query %v (q %v) base %v",
					seed, entry, qe, query, qq, base)
			}
		}
	}
}

func TestLosslessRoundTripOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const bits = 16
	scale := math.Ldexp(1, bits)
	inv := math.Ldexp(1, -bits)
	snap := func(v float64) float64 { return math.Floor(v*scale) * inv }
	for i := 0; i < 2000; i++ {
		// Grid-aligned rectangles in the unit square.
		rects := make([]Rect, 1+rng.Intn(40))
		mbr := EmptyRect()
		for j := range rects {
			x1, y1 := snap(rng.Float64()), snap(rng.Float64())
			x2, y2 := snap(rng.Float64()), snap(rng.Float64())
			rects[j] = NewRect(x1, y1, x2, y2)
			mbr = mbr.Union(rects[j])
		}
		z := NewQuantizer(mbr)
		for _, r := range rects {
			qr, ok := z.Lossless(r)
			if !ok {
				t.Fatalf("grid rect %v did not quantize losslessly against %v", r, mbr)
			}
			if got := z.Dequantize(qr); got != r {
				t.Fatalf("lossless round trip changed %v into %v", r, got)
			}
		}
	}
}

func TestLosslessRejectsOffGrid(t *testing.T) {
	// Full-precision random coordinates essentially never land on the
	// 16-bit fixed-point lattice; Lossless must refuse rather than distort.
	rng := rand.New(rand.NewSource(12))
	refused := 0
	for i := 0; i < 500; i++ {
		base := NewRect(0, 0, 1+rng.Float64(), 1+rng.Float64())
		z := NewQuantizer(base)
		r := randWithin(rng, base)
		qr, ok := z.Lossless(r)
		if !ok {
			refused++
			continue
		}
		if got := z.Dequantize(qr); got != r {
			t.Fatalf("Lossless accepted %v but decodes to %v", r, got)
		}
	}
	if refused < 400 {
		t.Fatalf("only %d/500 off-grid rects refused — Lossless is not verifying", refused)
	}
}

func TestLosslessProbeGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const bits = 16
	scale := math.Ldexp(1, bits)
	inv := math.Ldexp(1, -bits)
	p := NewLosslessProbe()
	var rects []Rect
	for i := 0; i < 500; i++ {
		x1 := math.Floor(rng.Float64()*scale) * inv
		y1 := math.Floor(rng.Float64()*scale) * inv
		r := NewRect(x1, y1, x1+math.Floor(rng.Float64()*100)*inv, y1+math.Floor(rng.Float64()*100)*inv)
		rects = append(rects, r)
		p.Add(r)
	}
	if !p.Guaranteed() {
		t.Fatal("16-bit-grid unit-square data must be guaranteed lossless")
	}
	// The guarantee must actually hold: every random subset quantizes
	// losslessly against its own bounding box.
	for trial := 0; trial < 50; trial++ {
		var sub []Rect
		mbr := EmptyRect()
		for _, r := range rects {
			if rng.Intn(3) == 0 {
				sub = append(sub, r)
				mbr = mbr.Union(r)
			}
		}
		if len(sub) == 0 {
			continue
		}
		z := NewQuantizer(mbr)
		for _, r := range sub {
			if _, ok := z.Lossless(r); !ok {
				t.Fatalf("guaranteed subset failed to quantize: %v against %v", r, mbr)
			}
		}
	}

	// Off-grid data must not be guaranteed.
	p2 := NewLosslessProbe()
	for i := 0; i < 50; i++ {
		p2.Add(NewRect(rng.Float64(), rng.Float64(), 1+rng.Float64(), 1+rng.Float64()))
	}
	if p2.Guaranteed() {
		t.Fatal("full-precision random data should not be guaranteed lossless")
	}

	// Non-finite coordinates disqualify outright.
	p3 := NewLosslessProbe()
	p3.Add(Rect{MinX: 0, MinY: 0, MaxX: math.Inf(1), MaxY: 1})
	if p3.Guaranteed() {
		t.Fatal("infinite coordinates cannot be guaranteed")
	}
}

func TestQuantizerInvalidForInfiniteBase(t *testing.T) {
	if NewQuantizer(WorldRect()).Valid() {
		t.Fatal("infinite base must be invalid")
	}
	if !NewQuantizer(NewRect(0, 0, 0, 0)).Valid() {
		t.Fatal("degenerate point base is fine")
	}
}

func TestDecodePinnedEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 1000; i++ {
		base := randBase(rng)
		z := NewQuantizer(base)
		if z.DecodeX(0) != base.MinX || z.DecodeX(QMax) != base.MaxX ||
			z.DecodeY(0) != base.MinY || z.DecodeY(QMax) != base.MaxY {
			t.Fatalf("endpoints not pinned for base %v", base)
		}
		// Monotone: spot-check a random ascending pair.
		a := uint16(rng.Intn(QMax))
		b := a + uint16(rng.Intn(QMax-int(a))) + 1
		if z.DecodeX(a) > z.DecodeX(b) {
			t.Fatalf("decode not monotone at %d,%d for base %v", a, b, base)
		}
	}
}
