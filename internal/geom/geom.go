// Package geom provides the planar and d-dimensional geometric primitives
// used throughout the PR-tree implementation: axis-parallel rectangles,
// intersection and containment predicates, and minimal-bounding-box algebra.
//
// The 2D type Rect is the workhorse of the two-dimensional index (the
// paper's experimental setting); RectD supports the d-dimensional
// generalization of Section 2.3.
package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-parallel rectangle in the plane, closed on all sides.
// The zero value is the degenerate rectangle at the origin. A Rect is
// valid when MinX <= MaxX and MinY <= MaxY.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points, normalizing
// the coordinate order so the result is always valid.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// PointRect returns the degenerate rectangle covering exactly the point (x, y).
func PointRect(x, y float64) Rect {
	return Rect{MinX: x, MinY: y, MaxX: x, MaxY: y}
}

// Valid reports whether r has non-inverted extents in both dimensions.
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
// Touching boundaries count as intersecting, matching the window-query
// semantics of the paper ("retrieve all rectangles that intersect Q").
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether s lies entirely inside r (boundaries included).
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether the point (x, y) lies in r.
func (r Rect) ContainsPoint(x, y float64) bool {
	return r.MinX <= x && x <= r.MaxX && r.MinY <= y && y <= r.MaxY
}

// Union returns the minimal bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	// Direct comparisons rather than math.Min/Max: this is the hottest
	// operation in every bulk loader and the NaN semantics of math.Min are
	// irrelevant for valid rectangles.
	if s.MinX < r.MinX {
		r.MinX = s.MinX
	}
	if s.MinY < r.MinY {
		r.MinY = s.MinY
	}
	if s.MaxX > r.MaxX {
		r.MaxX = s.MaxX
	}
	if s.MaxY > r.MaxY {
		r.MaxY = s.MaxY
	}
	return r
}

// Intersect returns the overlap of r and s. The second result is false when
// the rectangles are disjoint, in which case the returned Rect is undefined.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if !out.Valid() {
		return Rect{}, false
	}
	return out, true
}

// Area returns the area of r; degenerate rectangles have zero area.
func (r Rect) Area() float64 {
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Perimeter returns half the perimeter (the "margin") of r.
func (r Rect) Perimeter() float64 {
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Center returns the center point of r.
func (r Rect) Center() (x, y float64) {
	return (r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2
}

// EnlargementArea returns the increase in area needed for r to cover s.
// It is the classic Guttman insertion cost.
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// AspectRatio returns max(width, height) / min(width, height). It returns
// +Inf for rectangles with a zero-length side and 1 for points.
func (r Rect) AspectRatio() float64 {
	w, h := r.Width(), r.Height()
	if w < h {
		w, h = h, w
	}
	if h == 0 {
		if w == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return w / h
}

// Coord returns one of the four defining coordinates of r addressed by axis:
// 0 -> MinX, 1 -> MinY, 2 -> MaxX, 3 -> MaxY. This is the corner transform
// R -> (xmin, ymin, xmax, ymax) used by the pseudo-PR-tree; the axis order
// matches the round-robin split order of the paper.
func (r Rect) Coord(axis int) float64 {
	switch axis & 3 {
	case 0:
		return r.MinX
	case 1:
		return r.MinY
	case 2:
		return r.MaxX
	default:
		return r.MaxY
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[(%g,%g)-(%g,%g)]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// MBR returns the minimal bounding rectangle of a non-empty slice.
// It panics on an empty slice: callers always have at least one entry.
func MBR(rects []Rect) Rect {
	if len(rects) == 0 {
		panic("geom: MBR of empty slice")
	}
	out := rects[0]
	for _, r := range rects[1:] {
		out = out.Union(r)
	}
	return out
}

// WorldRect returns a rectangle covering every valid rectangle.
func WorldRect() Rect {
	inf := math.Inf(1)
	return Rect{MinX: -inf, MinY: -inf, MaxX: inf, MaxY: inf}
}

// EmptyRect returns the identity element for Union: a rectangle that any
// Union call absorbs. It is not Valid.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{MinX: inf, MinY: inf, MaxX: -inf, MaxY: -inf}
}
