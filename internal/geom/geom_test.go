package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(3, 4, 1, 2)
	want := Rect{1, 2, 3, 4}
	if r != want {
		t.Fatalf("NewRect(3,4,1,2) = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatal("normalized rect should be valid")
	}
}

func TestPointRect(t *testing.T) {
	p := PointRect(2, 3)
	if p.Area() != 0 {
		t.Errorf("point rect area = %g, want 0", p.Area())
	}
	if !p.ContainsPoint(2, 3) {
		t.Error("point rect should contain its own point")
	}
	if p.AspectRatio() != 1 {
		t.Errorf("point aspect = %g, want 1", p.AspectRatio())
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		a, b Rect
		want bool
	}{
		{NewRect(0, 0, 2, 2), NewRect(1, 1, 3, 3), true},
		{NewRect(0, 0, 2, 2), NewRect(2, 2, 3, 3), true}, // touching corner
		{NewRect(0, 0, 2, 2), NewRect(2, 0, 3, 2), true}, // touching edge
		{NewRect(0, 0, 2, 2), NewRect(2.1, 0, 3, 2), false},
		{NewRect(0, 0, 2, 2), NewRect(0, 2.1, 2, 3), false},
		{NewRect(0, 0, 10, 10), NewRect(4, 4, 5, 5), true}, // containment
		{PointRect(1, 1), PointRect(1, 1), true},
		{PointRect(1, 1), PointRect(1.0000001, 1), false},
	}
	for i, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: %v.Intersects(%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("case %d (sym): %v.Intersects(%v) = %v, want %v", i, c.b, c.a, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	outer := NewRect(0, 0, 10, 10)
	if !outer.Contains(NewRect(0, 0, 10, 10)) {
		t.Error("rect should contain itself")
	}
	if !outer.Contains(NewRect(1, 1, 9, 9)) {
		t.Error("should contain strictly inner rect")
	}
	if outer.Contains(NewRect(1, 1, 11, 9)) {
		t.Error("should not contain overflowing rect")
	}
}

func TestUnionIntersect(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(1, 1, 3, 4)
	u := a.Union(b)
	if u != NewRect(0, 0, 3, 4) {
		t.Errorf("union = %v", u)
	}
	iv, ok := a.Intersect(b)
	if !ok || iv != NewRect(1, 1, 2, 2) {
		t.Errorf("intersect = %v ok=%v", iv, ok)
	}
	_, ok = a.Intersect(NewRect(5, 5, 6, 6))
	if ok {
		t.Error("disjoint rects should not intersect")
	}
}

func TestAreaPerimeter(t *testing.T) {
	r := NewRect(0, 0, 3, 4)
	if r.Area() != 12 {
		t.Errorf("area = %g", r.Area())
	}
	if r.Perimeter() != 7 {
		t.Errorf("perimeter(half) = %g", r.Perimeter())
	}
	if r.Width() != 3 || r.Height() != 4 {
		t.Errorf("width/height = %g/%g", r.Width(), r.Height())
	}
	cx, cy := r.Center()
	if cx != 1.5 || cy != 2 {
		t.Errorf("center = (%g,%g)", cx, cy)
	}
}

func TestEnlargementArea(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	if e := a.EnlargementArea(NewRect(1, 1, 2, 2)); e != 0 {
		t.Errorf("contained rect should need 0 enlargement, got %g", e)
	}
	if e := a.EnlargementArea(NewRect(0, 0, 4, 2)); e != 4 {
		t.Errorf("enlargement = %g, want 4", e)
	}
}

func TestAspectRatio(t *testing.T) {
	if a := NewRect(0, 0, 10, 1).AspectRatio(); a != 10 {
		t.Errorf("aspect = %g, want 10", a)
	}
	if a := NewRect(0, 0, 1, 10).AspectRatio(); a != 10 {
		t.Errorf("aspect = %g, want 10", a)
	}
	if a := NewRect(0, 0, 5, 0).AspectRatio(); !math.IsInf(a, 1) {
		t.Errorf("segment aspect = %g, want +Inf", a)
	}
}

func TestCoordAxes(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	want := [4]float64{1, 2, 3, 4}
	for axis := 0; axis < 4; axis++ {
		if got := r.Coord(axis); got != want[axis] {
			t.Errorf("Coord(%d) = %g, want %g", axis, got, want[axis])
		}
		// Round-robin wraps.
		if got := r.Coord(axis + 4); got != want[axis] {
			t.Errorf("Coord(%d) = %g, want %g", axis+4, got, want[axis])
		}
	}
}

func TestMBR(t *testing.T) {
	rects := []Rect{
		NewRect(0, 0, 1, 1),
		NewRect(-2, 3, 0, 5),
		NewRect(4, -1, 5, 0),
	}
	m := MBR(rects)
	if m != NewRect(-2, -1, 5, 5) {
		t.Errorf("MBR = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("MBR of empty slice should panic")
		}
	}()
	MBR(nil)
}

func TestEmptyRectAbsorbs(t *testing.T) {
	e := EmptyRect()
	if e.Valid() {
		t.Error("empty rect must be invalid")
	}
	r := NewRect(1, 2, 3, 4)
	if got := e.Union(r); got != r {
		t.Errorf("EmptyRect.Union(%v) = %v", r, got)
	}
}

func TestWorldRectContainsEverything(t *testing.T) {
	w := WorldRect()
	if !w.Contains(NewRect(-1e300, -1e300, 1e300, 1e300)) {
		t.Error("world rect should contain huge rect")
	}
}

// clampRect maps arbitrary float64 quadruples from testing/quick into valid,
// finite rectangles.
func clampRect(a, b, c, d float64) Rect {
	f := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 1e6)
	}
	return NewRect(f(a), f(b), f(c), f(d))
}

func TestQuickUnionContainsBoth(t *testing.T) {
	prop := func(a, b, c, d, e, f, g, h float64) bool {
		r1 := clampRect(a, b, c, d)
		r2 := clampRect(e, f, g, h)
		u := r1.Union(r2)
		return u.Contains(r1) && u.Contains(r2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectionSymmetricAndContained(t *testing.T) {
	prop := func(a, b, c, d, e, f, g, h float64) bool {
		r1 := clampRect(a, b, c, d)
		r2 := clampRect(e, f, g, h)
		if r1.Intersects(r2) != r2.Intersects(r1) {
			return false
		}
		iv, ok := r1.Intersect(r2)
		if ok != r1.Intersects(r2) {
			return false
		}
		if ok {
			return r1.Contains(iv) && r2.Contains(iv)
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionMonotoneArea(t *testing.T) {
	prop := func(a, b, c, d, e, f, g, h float64) bool {
		r1 := clampRect(a, b, c, d)
		r2 := clampRect(e, f, g, h)
		u := r1.Union(r2)
		return u.Area() >= r1.Area() && u.Area() >= r2.Area()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEnlargementNonNegative(t *testing.T) {
	prop := func(a, b, c, d, e, f, g, h float64) bool {
		r1 := clampRect(a, b, c, d)
		r2 := clampRect(e, f, g, h)
		return r1.EnlargementArea(r2) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
