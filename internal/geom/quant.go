package geom

import (
	"math"
	"math/bits"
)

// This file implements the fixed-point quantization behind the compressed
// node layout: rectangles are stored as 16-bit offsets from an exact base
// rectangle, rounded outward so every quantized rectangle conservatively
// covers the true one. Interior R-tree levels can then filter with
// quantized (integer) overlap tests — false positives only, never false
// negatives — while exact refinement happens at the leaves, mirroring the
// conservative-approximation line of work cited in PAPERS.md.

// QMax is the largest quantized coordinate (16-bit fixed point).
const QMax = 65535

// QRect is a rectangle in the quantized coordinate space of some
// Quantizer: four 16-bit offsets from the quantizer's base rectangle.
type QRect struct {
	MinX, MinY, MaxX, MaxY uint16
}

// Intersects reports whether q and s overlap in quantized space. For two
// rectangles quantized outward by the same Quantizer this is a conservative
// version of Rect.Intersects: it may report phantom overlaps (within one
// quantization step) but never misses a true one.
func (q QRect) Intersects(s QRect) bool {
	return q.MinX <= s.MaxX && s.MinX <= q.MaxX &&
		q.MinY <= s.MaxY && s.MinY <= q.MaxY
}

// Quantizer maps between exact coordinates and 16-bit fixed-point offsets
// from a base rectangle. The step per axis is the smallest power of two
// covering the base extent in QMax increments; power-of-two steps make the
// scaling arithmetic exact, which is what lets leaf pages round-trip
// grid-aligned coordinates losslessly.
type Quantizer struct {
	Base         Rect
	StepX, StepY float64
}

// NewQuantizer derives the canonical quantizer of a base rectangle. The
// steps are a pure function of the base, so a decoder holding only the base
// reconstructs the identical quantizer.
func NewQuantizer(base Rect) Quantizer {
	return Quantizer{
		Base:  base,
		StepX: quantStep(base.MaxX - base.MinX),
		StepY: quantStep(base.MaxY - base.MinY),
	}
}

// quantStep returns the smallest power of two >= extent/QMax, or 0 for a
// degenerate (or non-finite) extent.
func quantStep(extent float64) float64 {
	if !(extent > 0) || math.IsInf(extent, 1) {
		return 0
	}
	f, e := math.Frexp(extent / QMax)
	if f == 0.5 {
		return math.Ldexp(1, e-1)
	}
	return math.Ldexp(1, e)
}

// Valid reports whether the quantizer can represent offsets at all: the
// base must be a valid rectangle with finite corners.
func (z Quantizer) Valid() bool {
	return z.Base.Valid() &&
		!math.IsInf(z.Base.MinX, 0) && !math.IsInf(z.Base.MaxX, 0) &&
		!math.IsInf(z.Base.MinY, 0) && !math.IsInf(z.Base.MaxY, 0)
}

// DecodeX maps a quantized x offset back to an exact coordinate. The
// mapping is monotone non-decreasing in q, pinned to the base extremes at
// q == 0 and q == QMax and capped at the base maximum in between — the
// pinning and cap absorb the floating-point edge cases of step derivation
// so conservative covers always exist.
func (z Quantizer) DecodeX(q uint16) float64 {
	return decodeCoord(z.Base.MinX, z.Base.MaxX, z.StepX, q)
}

// DecodeY is DecodeX for the y axis.
func (z Quantizer) DecodeY(q uint16) float64 {
	return decodeCoord(z.Base.MinY, z.Base.MaxY, z.StepY, q)
}

func decodeCoord(lo, hi, step float64, q uint16) float64 {
	if q == 0 {
		return lo
	}
	if q == QMax {
		return hi
	}
	v := lo + float64(q)*step
	if v > hi {
		return hi
	}
	return v
}

// Dequantize maps a quantized rectangle back to exact coordinates.
func (z Quantizer) Dequantize(q QRect) Rect {
	return Rect{
		MinX: z.DecodeX(q.MinX),
		MinY: z.DecodeY(q.MinY),
		MaxX: z.DecodeX(q.MaxX),
		MaxY: z.DecodeY(q.MaxY),
	}
}

// qLE returns the largest q with decode(q) <= v, or 0 when even decode(0)
// exceeds v. Binary search over the monotone decode keeps this exact in
// every floating-point regime (including steps below one ulp of the base,
// where decode plateaus).
func qLE(lo, hi, step float64, v float64) uint16 {
	if !(decodeCoord(lo, hi, step, 0) <= v) {
		return 0
	}
	a, b := 0, QMax // int arithmetic: b-a+1 would overflow uint16
	for a < b {
		mid := a + (b-a+1)/2
		if decodeCoord(lo, hi, step, uint16(mid)) <= v {
			a = mid
		} else {
			b = mid - 1
		}
	}
	return uint16(a)
}

// qGE returns the smallest q with decode(q) >= v, or QMax when no offset
// reaches v.
func qGE(lo, hi, step float64, v float64) uint16 {
	if !(decodeCoord(lo, hi, step, QMax) >= v) {
		return QMax
	}
	a, b := 0, QMax
	for a < b {
		mid := a + (b-a)/2
		if decodeCoord(lo, hi, step, uint16(mid)) >= v {
			b = mid
		} else {
			a = mid + 1
		}
	}
	return uint16(a)
}

// plateauLeft returns the smallest q' with decode(q') == decode(q).
func plateauLeft(lo, hi, step float64, q uint16) uint16 {
	return qGE(lo, hi, step, decodeCoord(lo, hi, step, q))
}

// plateauRight returns the largest q' with decode(q') == decode(q).
func plateauRight(lo, hi, step float64, q uint16) uint16 {
	return qLE(lo, hi, step, decodeCoord(lo, hi, step, q))
}

// Cover quantizes r outward to the tightest conservative cover: the
// dequantized result always contains r. r must lie within the base
// rectangle (encoders set the base to the union of what they encode);
// coordinates outside clamp to the base extremes, which keeps the result
// well-defined but no longer covering.
func (z Quantizer) Cover(r Rect) QRect {
	return QRect{
		MinX: qLE(z.Base.MinX, z.Base.MaxX, z.StepX, r.MinX),
		MinY: qLE(z.Base.MinY, z.Base.MaxY, z.StepY, r.MinY),
		MaxX: qGE(z.Base.MinX, z.Base.MaxX, z.StepX, r.MaxX),
		MaxY: qGE(z.Base.MinY, z.Base.MaxY, z.StepY, r.MaxY),
	}
}

// CoverQuery quantizes a query rectangle for filtering against entry
// covers produced by Cover. Beyond outward rounding it widens each bound to
// the far end of its decode plateau, which is exactly what makes
// QRect.Intersects free of false negatives: if the true rectangles
// intersect — even only at a boundary point sitting on a decode plateau —
// the quantized ones do too.
func (z Quantizer) CoverQuery(r Rect) QRect {
	minX := qLE(z.Base.MinX, z.Base.MaxX, z.StepX, r.MinX)
	minY := qLE(z.Base.MinY, z.Base.MaxY, z.StepY, r.MinY)
	maxX := qGE(z.Base.MinX, z.Base.MaxX, z.StepX, r.MaxX)
	maxY := qGE(z.Base.MinY, z.Base.MaxY, z.StepY, r.MaxY)
	return QRect{
		MinX: plateauLeft(z.Base.MinX, z.Base.MaxX, z.StepX, minX),
		MinY: plateauLeft(z.Base.MinY, z.Base.MaxY, z.StepY, minY),
		MaxX: plateauRight(z.Base.MinX, z.Base.MaxX, z.StepX, maxX),
		MaxY: plateauRight(z.Base.MinY, z.Base.MaxY, z.StepY, maxY),
	}
}

// Lossless quantizes r only if every corner round-trips bit-exactly
// through the fixed-point encoding; ok reports success. Leaf pages use it:
// a lossless page stores 12-byte entries yet decodes the identical
// float64 coordinates, keeping query results bit-exact.
func (z Quantizer) Lossless(r Rect) (QRect, bool) {
	qr := QRect{}
	var ok bool
	if qr.MinX, ok = losslessCoord(z.Base.MinX, z.Base.MaxX, z.StepX, r.MinX); !ok {
		return QRect{}, false
	}
	if qr.MinY, ok = losslessCoord(z.Base.MinY, z.Base.MaxY, z.StepY, r.MinY); !ok {
		return QRect{}, false
	}
	if qr.MaxX, ok = losslessCoord(z.Base.MinX, z.Base.MaxX, z.StepX, r.MaxX); !ok {
		return QRect{}, false
	}
	if qr.MaxY, ok = losslessCoord(z.Base.MinY, z.Base.MaxY, z.StepY, r.MaxY); !ok {
		return QRect{}, false
	}
	return qr, true
}

func losslessCoord(lo, hi, step float64, v float64) (uint16, bool) {
	q := qLE(lo, hi, step, v)
	if decodeCoord(lo, hi, step, q) == v {
		return q, true
	}
	return 0, false
}

// LosslessProbe accumulates a sufficient condition for global lossless
// quantization: if every coordinate lies on a power-of-two grid and the
// world extent per axis is at most QMax grid cells, then ANY subset of the
// rectangles quantizes losslessly against its own bounding box (the subset
// range is no wider than the world's, so the canonical step divides the
// grid and every delta round-trips exactly). Loaders whose leaf grouping
// must be fixed before the groups are known (TGS) use one probe pass to
// decide whether they may pack leaves at the compressed capacity.
type LosslessProbe struct {
	any bool
	bad bool // non-finite coordinate seen
	gx  int  // min power-of-two exponent over all x coordinates
	gy  int
	w   Rect
}

// NewLosslessProbe returns an empty probe.
func NewLosslessProbe() LosslessProbe {
	return LosslessProbe{gx: 1 << 30, gy: 1 << 30, w: EmptyRect()}
}

// Add folds one rectangle into the probe.
func (p *LosslessProbe) Add(r Rect) {
	for _, v := range [4]float64{r.MinX, r.MaxX, r.MinY, r.MaxY} {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			p.bad = true
			return
		}
	}
	p.any = true
	p.gx = minInt(p.gx, minInt(gridExp(r.MinX), gridExp(r.MaxX)))
	p.gy = minInt(p.gy, minInt(gridExp(r.MinY), gridExp(r.MaxY)))
	p.w = p.w.Union(r)
}

// Guaranteed reports whether every subset of the added rectangles is
// certain to quantize losslessly.
func (p *LosslessProbe) Guaranteed() bool {
	if p.bad {
		return false
	}
	if !p.any {
		return true
	}
	// Both extents and grids are exact powers-of-two multiples, so these
	// divisions are exact for in-range quotients and safely oversized
	// otherwise; the comparison never misclassifies.
	return p.w.Width()/math.Ldexp(1, p.gx) <= QMax &&
		p.w.Height()/math.Ldexp(1, p.gy) <= QMax
}

// gridExp returns the exponent e of the largest power of two 2^e dividing
// v exactly, or a huge sentinel for v == 0 (which lies on every grid).
func gridExp(v float64) int {
	if v == 0 {
		return 1 << 30
	}
	b := math.Float64bits(v)
	exp := int(b >> 52 & 0x7ff)
	mant := b & (1<<52 - 1)
	if exp == 0 {
		exp = 1 // subnormal: same 2^(1-1075) scale, no implicit bit
	} else {
		mant |= 1 << 52
	}
	return exp - 1075 + bits.TrailingZeros64(mant)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
