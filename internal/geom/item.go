package geom

// Item is a rectangle labeled with the identifier of the original spatial
// object, mirroring the paper's 36-byte input record: four 8-byte
// coordinates plus a 4-byte pointer to the original object.
type Item struct {
	Rect Rect
	ID   uint32
}

// ItemsMBR returns the minimal bounding rectangle of a non-empty item slice.
func ItemsMBR(items []Item) Rect {
	if len(items) == 0 {
		panic("geom: ItemsMBR of empty slice")
	}
	out := items[0].Rect
	for _, it := range items[1:] {
		out = out.Union(it.Rect)
	}
	return out
}

// ItemD is the d-dimensional analogue of Item.
type ItemD struct {
	Rect RectD
	ID   uint32
}

// ItemsMBRD returns the minimal bounding hyper-rectangle of a non-empty
// slice of d-dimensional items.
func ItemsMBRD(items []ItemD) RectD {
	if len(items) == 0 {
		panic("geom: ItemsMBRD of empty slice")
	}
	out := items[0].Rect.Clone()
	for _, it := range items[1:] {
		out.UnionInPlace(it.Rect)
	}
	return out
}
