// Package dataset generates every input family of the paper's experimental
// study (Section 3.2): the four synthetic classes size(max_side),
// aspect(a), skewed(c) and cluster, the worst-case bit-reversal grid of
// Theorem 3, and a seeded synthetic stand-in for the TIGER/Line road data
// (the substitution is documented in DESIGN.md §3). All generators are
// deterministic in their seed.
package dataset

import (
	"math"
	"math/rand"

	"prtree/internal/geom"
)

// Uniform returns n rectangles whose centers are uniform in the unit
// square with side lengths uniform in (0, maxSide], clipped into the
// square by regeneration like the paper's size datasets.
func Uniform(n int, maxSide float64, seed int64) []geom.Item {
	return Size(n, maxSide, seed)
}

// Size generates the paper's size(max_side) family: rectangle centers
// uniformly distributed, side lengths uniform and independent in
// (0, max_side], rectangles not fully inside the unit square are discarded
// and regenerated so exactly n remain.
func Size(n int, maxSide float64, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, 0, n)
	for len(items) < n {
		cx, cy := rng.Float64(), rng.Float64()
		w, h := rng.Float64()*maxSide, rng.Float64()*maxSide
		r := geom.NewRect(cx-w/2, cy-h/2, cx+w/2, cy+h/2)
		if r.MinX < 0 || r.MinY < 0 || r.MaxX > 1 || r.MaxY > 1 {
			continue
		}
		items = append(items, geom.Item{Rect: r, ID: uint32(len(items))})
	}
	return items
}

// Aspect generates the paper's aspect(a) family: rectangles of fixed area
// 1e-6 and aspect ratio a, the long side horizontal or vertical with equal
// probability, centers uniform, fully inside the unit square.
func Aspect(n int, a float64, seed int64) []geom.Item {
	const area = 1e-6
	rng := rand.New(rand.NewSource(seed))
	long := math.Sqrt(area * a)
	short := math.Sqrt(area / a)
	items := make([]geom.Item, 0, n)
	for len(items) < n {
		cx, cy := rng.Float64(), rng.Float64()
		w, h := long, short
		if rng.Intn(2) == 0 {
			w, h = short, long
		}
		r := geom.NewRect(cx-w/2, cy-h/2, cx+w/2, cy+h/2)
		if r.MinX < 0 || r.MinY < 0 || r.MaxX > 1 || r.MaxY > 1 {
			continue
		}
		items = append(items, geom.Item{Rect: r, ID: uint32(len(items))})
	}
	return items
}

// Skewed generates the paper's skewed(c) family: uniform points squeezed
// in the y-dimension by replacing (x, y) with (x, y^c).
func Skewed(n, c int, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, n)
	for i := range items {
		x := rng.Float64()
		y := math.Pow(rng.Float64(), float64(c))
		items[i] = geom.Item{Rect: geom.PointRect(x, y), ID: uint32(i)}
	}
	return items
}

// ClusterOptions parameterizes the cluster dataset. The paper uses 10 000
// clusters of 1 000 points in 1e-5 x 1e-5 squares with centers equally
// spaced on a horizontal line.
type ClusterOptions struct {
	Clusters int     // number of clusters; 0 means n/1000 (min 10)
	Side     float64 // cluster square side; 0 means 1e-5
}

// Cluster generates the paper's cluster dataset scaled to n points.
func Cluster(n int, opt ClusterOptions, seed int64) []geom.Item {
	if opt.Clusters <= 0 {
		opt.Clusters = n / 1000
		if opt.Clusters < 10 {
			opt.Clusters = 10
		}
	}
	if opt.Side <= 0 {
		opt.Side = 1e-5
	}
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, n)
	for i := range items {
		c := i % opt.Clusters
		cx := (float64(c) + 0.5) / float64(opt.Clusters)
		cy := 0.5
		x := cx + (rng.Float64()-0.5)*opt.Side
		y := cy + (rng.Float64()-0.5)*opt.Side
		items[i] = geom.Item{Rect: geom.PointRect(x, y), ID: uint32(i)}
	}
	return items
}

// ClusterProbe returns a long skinny horizontal query of area height*width
// that passes through every cluster of the dataset built with opt, as in
// the paper's Table 1 experiment (area 1e-7 over width 1).
func ClusterProbe(opt ClusterOptions, seed int64) geom.Rect {
	if opt.Side <= 0 {
		opt.Side = 1e-5
	}
	rng := rand.New(rand.NewSource(seed))
	height := 1e-7
	y := 0.5 + (rng.Float64()-0.5)*(opt.Side-2*height)
	return geom.NewRect(0, y, 1, y+height)
}

// WorstCase generates the Theorem 3 construction: a grid of cols = N/B
// columns and B rows where column i is shifted upward by h(i)/N, h being
// the k-bit reversal of i (a Halton–Hammersley set per row). The packed
// Hilbert, 4D-Hilbert and TGS R-trees all place each column in its own
// leaf, so a horizontal line query between the rows visits every leaf
// while reporting nothing; the PR-tree visits O(sqrt(N/B)).
//
// cols is rounded down to a power of two (the construction needs
// N/B = 2^k); the effective item set has cols*b points.
func WorstCase(n, b int) []geom.Item {
	cols := 1
	for cols*2*b <= n {
		cols *= 2
	}
	k := 0
	for 1<<(k+1) <= cols {
		k++
	}
	total := cols * b
	items := make([]geom.Item, 0, total)
	for i := 0; i < cols; i++ {
		hi := reverseBits(uint64(i), k)
		for j := 0; j < b; j++ {
			x := float64(i) + 0.5
			y := float64(j)/float64(b) + float64(hi)/float64(total)
			items = append(items, geom.Item{Rect: geom.PointRect(x, y), ID: uint32(len(items))})
		}
	}
	return items
}

// WorstCaseProbe returns a zero-output horizontal line query for the
// WorstCase dataset: it spans every column at a y-coordinate strictly
// between two of the shifted rows.
func WorstCaseProbe(n, b int, row int) geom.Rect {
	cols := 1
	for cols*2*b <= n {
		cols *= 2
	}
	total := cols * b
	row = ((row % b) + b) % b
	// Points of row j sit at j/b + h(i)/total with h(i) in [0, cols);
	// y = j/b + (cols-0.5)/total lies above every point of row j and below
	// row j+1 (which starts at (j+1)/b = j/b + cols/total).
	y := float64(row)/float64(b) + (float64(cols)-0.5)/float64(total)
	return geom.NewRect(0, y, float64(cols), y)
}

func reverseBits(v uint64, k int) uint64 {
	var out uint64
	for i := 0; i < k; i++ {
		out = (out << 1) | (v & 1)
		v >>= 1
	}
	return out
}

// Snap quantizes every coordinate onto the uniform grid of spacing
// 2^-bits, rounding minimums down and maximums up so each snapped
// rectangle covers the original. This reproduces the integer-coordinate
// regime of the real TIGER/Line data (whose coordinates are millionths of
// a degree); grid-aligned inputs are what the compressed page layout
// stores losslessly at the leaves.
func Snap(items []geom.Item, bits uint) []geom.Item {
	scale := math.Ldexp(1, int(bits))
	inv := math.Ldexp(1, -int(bits))
	out := make([]geom.Item, len(items))
	for i, it := range items {
		out[i] = geom.Item{
			Rect: geom.Rect{
				MinX: math.Floor(it.Rect.MinX*scale) * inv,
				MinY: math.Floor(it.Rect.MinY*scale) * inv,
				MaxX: math.Ceil(it.Rect.MaxX*scale) * inv,
				MaxY: math.Ceil(it.Rect.MaxY*scale) * inv,
			},
			ID: it.ID,
		}
	}
	return out
}
