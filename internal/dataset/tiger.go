package dataset

import (
	"math"
	"math/rand"
	"sort"

	"prtree/internal/geom"
)

// TigerOptions parameterizes the synthetic stand-in for the TIGER/Line
// road data (see DESIGN.md §3 for the substitution rationale). The
// generator reproduces the statistics the paper relies on: bounding boxes
// of short road segments — small extents, often high aspect ratio — mildly
// clustered around urban areas over a sparse rural background.
type TigerOptions struct {
	// UrbanFraction is the share of segments in urban clusters (default 0.7).
	UrbanFraction float64
	// Centers is the number of urban centers (default max(20, n/4000)).
	Centers int
	// MeanSegment is the mean road-segment length (default 0.0015).
	MeanSegment float64
}

func (o TigerOptions) normalized(n int) TigerOptions {
	if o.UrbanFraction <= 0 || o.UrbanFraction >= 1 {
		o.UrbanFraction = 0.7
	}
	if o.Centers <= 0 {
		o.Centers = n / 4000
		if o.Centers < 20 {
			o.Centers = 20
		}
	}
	if o.MeanSegment <= 0 {
		o.MeanSegment = 0.0015
	}
	return o
}

// TigerLike generates n road-segment bounding boxes in the unit square.
func TigerLike(n int, opt TigerOptions, seed int64) []geom.Item {
	opt = opt.normalized(n)
	rng := rand.New(rand.NewSource(seed))
	type center struct{ x, y, sigma float64 }
	centers := make([]center, opt.Centers)
	for i := range centers {
		centers[i] = center{
			x:     rng.Float64(),
			y:     rng.Float64(),
			sigma: 0.005 + rng.Float64()*0.03,
		}
	}
	items := make([]geom.Item, 0, n)
	for len(items) < n {
		var cx, cy float64
		if rng.Float64() < opt.UrbanFraction {
			c := centers[rng.Intn(len(centers))]
			cx = c.x + rng.NormFloat64()*c.sigma
			cy = c.y + rng.NormFloat64()*c.sigma
		} else {
			cx, cy = rng.Float64(), rng.Float64()
		}
		if cx < 0 || cx > 1 || cy < 0 || cy > 1 {
			continue
		}
		// A short segment with an exponential length distribution; its
		// bounding box is thin, often axis-aligned (roads follow grids).
		length := rng.ExpFloat64() * opt.MeanSegment
		if length > 0.05 {
			continue
		}
		theta := rng.Float64() * math.Pi
		if rng.Float64() < 0.5 {
			// Snap half the roads to the axes, like US street grids.
			if rng.Float64() < 0.5 {
				theta = 0
			} else {
				theta = math.Pi / 2
			}
		}
		dx := math.Abs(length * math.Cos(theta))
		dy := math.Abs(length * math.Sin(theta))
		r := geom.NewRect(cx-dx/2, cy-dy/2, cx+dx/2, cy+dy/2)
		if r.MinX < 0 || r.MinY < 0 || r.MaxX > 1 || r.MaxY > 1 {
			continue
		}
		items = append(items, geom.Item{Rect: r, ID: uint32(len(items))})
	}
	return items
}

// Eastern returns the stand-in for the Eastern TIGER dataset (16 states,
// the paper's largest input) scaled to n rectangles.
func Eastern(n int, seed int64) []geom.Item {
	return TigerLike(n, TigerOptions{}, seed)
}

// Western returns the stand-in for the Western TIGER dataset (5 states,
// ~72% of Eastern's size in the paper) scaled relative to n.
func Western(n int, seed int64) []geom.Item {
	return TigerLike(n*72/100, TigerOptions{Centers: n / 8000}, seed+1)
}

// EasternRegions divides the Eastern dataset into five vertical regions of
// roughly equal cardinality and returns the five cumulative prefixes, as
// the paper does to obtain datasets of increasing size (Figures 10 and 14).
func EasternRegions(n int, seed int64) [][]geom.Item {
	all := Eastern(n, seed)
	sorted := make([]geom.Item, len(all))
	copy(sorted, all)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Rect.MinX != sorted[j].Rect.MinX {
			return sorted[i].Rect.MinX < sorted[j].Rect.MinX
		}
		return sorted[i].ID < sorted[j].ID
	})
	out := make([][]geom.Item, 5)
	for k := 1; k <= 5; k++ {
		prefix := make([]geom.Item, k*len(sorted)/5)
		copy(prefix, sorted[:len(prefix)])
		out[k-1] = prefix
	}
	return out
}
