package dataset

import (
	"math"
	"testing"

	"prtree/internal/geom"
)

func inUnitSquare(items []geom.Item) bool {
	u := geom.NewRect(0, 0, 1, 1)
	for _, it := range items {
		if !u.Contains(it.Rect) {
			return false
		}
	}
	return true
}

func uniqueIDs(t *testing.T, items []geom.Item) {
	t.Helper()
	seen := make(map[uint32]bool, len(items))
	for _, it := range items {
		if seen[it.ID] {
			t.Fatalf("duplicate id %d", it.ID)
		}
		seen[it.ID] = true
	}
}

func TestSizeDataset(t *testing.T) {
	items := Size(5000, 0.01, 1)
	if len(items) != 5000 {
		t.Fatalf("len = %d", len(items))
	}
	uniqueIDs(t, items)
	if !inUnitSquare(items) {
		t.Error("size items must lie inside the unit square")
	}
	for _, it := range items {
		if it.Rect.Width() > 0.01 || it.Rect.Height() > 0.01 {
			t.Fatalf("oversized rect %v", it.Rect)
		}
	}
}

func TestSizeDeterministic(t *testing.T) {
	a := Size(100, 0.05, 7)
	b := Size(100, 0.05, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same data")
		}
	}
	c := Size(100, 0.05, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different data")
	}
}

func TestAspectDataset(t *testing.T) {
	for _, a := range []float64{1, 10, 1000} {
		items := Aspect(2000, a, 2)
		if len(items) != 2000 {
			t.Fatalf("len = %d", len(items))
		}
		if !inUnitSquare(items) {
			t.Fatalf("aspect(%g) items outside unit square", a)
		}
		horizontals := 0
		for _, it := range items {
			area := it.Rect.Area()
			if math.Abs(area-1e-6) > 1e-9 {
				t.Fatalf("aspect(%g) area = %g", a, area)
			}
			ar := it.Rect.AspectRatio()
			if math.Abs(ar-a)/a > 0.01 {
				t.Fatalf("aspect(%g) ratio = %g", a, ar)
			}
			if it.Rect.Width() >= it.Rect.Height() {
				horizontals++
			}
		}
		if a > 1 {
			frac := float64(horizontals) / float64(len(items))
			if frac < 0.4 || frac > 0.6 {
				t.Errorf("aspect(%g): %.2f horizontal, want ~0.5", a, frac)
			}
		}
	}
}

func TestSkewedDataset(t *testing.T) {
	items := Skewed(5000, 5, 3)
	if !inUnitSquare(items) {
		t.Error("skewed items outside unit square")
	}
	// Squeezing concentrates mass near y=0: the median y must be far
	// below 0.5 (it is 0.5^5 ~ 0.03).
	below := 0
	for _, it := range items {
		if it.Rect.MinY < 0.1 {
			below++
		}
	}
	if frac := float64(below) / float64(len(items)); frac < 0.6 {
		t.Errorf("skewed(5): only %.2f of points below y=0.1", frac)
	}
	// c=1 must stay uniform.
	items = Skewed(5000, 1, 3)
	below = 0
	for _, it := range items {
		if it.Rect.MinY < 0.5 {
			below++
		}
	}
	if frac := float64(below) / float64(len(items)); frac < 0.45 || frac > 0.55 {
		t.Errorf("skewed(1): %.2f below median", frac)
	}
}

func TestClusterDataset(t *testing.T) {
	opt := ClusterOptions{}
	items := Cluster(20000, opt, 4)
	if len(items) != 20000 {
		t.Fatalf("len = %d", len(items))
	}
	uniqueIDs(t, items)
	// All points in a thin horizontal band around y = 0.5.
	for _, it := range items {
		if math.Abs(it.Rect.MinY-0.5) > 1e-5 {
			t.Fatalf("cluster point at y=%g", it.Rect.MinY)
		}
	}
	// The probe must intersect points from every cluster region but can
	// be answered with tiny output relative to n.
	probe := ClusterProbe(opt, 4)
	hits := 0
	for _, it := range items {
		if probe.Intersects(it.Rect) {
			hits++
		}
	}
	if hits == len(items) {
		t.Error("probe should not cover everything")
	}
}

func TestWorstCaseDataset(t *testing.T) {
	b := 16
	items := WorstCase(1000, b)
	cols := len(items) / b
	if cols&(cols-1) != 0 {
		t.Fatalf("columns = %d, want power of two", cols)
	}
	uniqueIDs(t, items)
	// Column x-positions are i+0.5.
	for _, it := range items {
		frac := it.Rect.MinX - math.Floor(it.Rect.MinX)
		if frac != 0.5 {
			t.Fatalf("x = %g not at column center", it.Rect.MinX)
		}
	}
	// The probe reports exactly zero points for every row choice.
	for row := 0; row < b; row++ {
		probe := WorstCaseProbe(1000, b, row)
		for _, it := range items {
			if probe.Intersects(it.Rect) {
				t.Fatalf("row %d probe hits point %v", row, it.Rect)
			}
		}
	}
}

func TestWorstCaseBitReversalSpreadsColumns(t *testing.T) {
	// Adjacent columns must have very different shifts — that is the point
	// of the bit-reversal: their y-offsets differ by ~half the row band.
	b := 8
	items := WorstCase(64*b*2, b)
	cols := len(items) / b
	// Shift of column i = y of its j=0 point times total.
	shift := make([]float64, cols)
	for _, it := range items {
		i := int(it.Rect.MinX)
		if it.Rect.MinY < 1.0/float64(b) {
			shift[i] = it.Rect.MinY
		}
	}
	if math.Abs(shift[0]-shift[1]) < 0.4/float64(b) {
		t.Errorf("columns 0,1 shifts too close: %g vs %g", shift[0], shift[1])
	}
}

func TestReverseBits(t *testing.T) {
	cases := []struct {
		v    uint64
		k    int
		want uint64
	}{
		{0, 4, 0}, {1, 4, 8}, {2, 4, 4}, {3, 4, 12}, {15, 4, 15}, {1, 1, 1}, {5, 3, 5},
	}
	for _, c := range cases {
		if got := reverseBits(c.v, c.k); got != c.want {
			t.Errorf("reverseBits(%d,%d) = %d, want %d", c.v, c.k, got, c.want)
		}
	}
}

func TestTigerLike(t *testing.T) {
	items := TigerLike(10000, TigerOptions{}, 5)
	if len(items) != 10000 {
		t.Fatalf("len = %d", len(items))
	}
	uniqueIDs(t, items)
	if !inUnitSquare(items) {
		t.Error("tiger items outside unit square")
	}
	// Small extents: 99th percentile extent well below 5% of the world.
	big := 0
	for _, it := range items {
		if it.Rect.Width() > 0.05 || it.Rect.Height() > 0.05 {
			big++
		}
	}
	if big > 0 {
		t.Errorf("%d oversize road segments", big)
	}
	// Clustering: a small query window near an urban center should catch
	// far more than the uniform share. Find the densest 0.05-cell.
	grid := map[[2]int]int{}
	for _, it := range items {
		cx, cy := it.Rect.Center()
		grid[[2]int{int(cx * 20), int(cy * 20)}]++
	}
	max := 0
	for _, c := range grid {
		if c > max {
			max = c
		}
	}
	if float64(max) < 3*float64(len(items))/400 {
		t.Errorf("no urban clustering: densest cell holds %d of %d", max, len(items))
	}
}

func TestEasternWestern(t *testing.T) {
	e := Eastern(5000, 1)
	w := Western(5000, 1)
	if len(e) != 5000 {
		t.Fatalf("eastern len = %d", len(e))
	}
	if len(w) != 3600 {
		t.Fatalf("western len = %d, want 72%% of 5000", len(w))
	}
}

func TestEasternRegionsPrefixes(t *testing.T) {
	regions := EasternRegions(5000, 2)
	if len(regions) != 5 {
		t.Fatalf("regions = %d", len(regions))
	}
	for k := 0; k < 5; k++ {
		want := (k + 1) * 5000 / 5
		if len(regions[k]) != want {
			t.Fatalf("prefix %d len = %d, want %d", k, len(regions[k]), want)
		}
	}
	// Prefixes nest: region k's items are a subset of region k+1's ids.
	for k := 0; k < 4; k++ {
		ids := make(map[uint32]bool, len(regions[k+1]))
		for _, it := range regions[k+1] {
			ids[it.ID] = true
		}
		for _, it := range regions[k] {
			if !ids[it.ID] {
				t.Fatalf("prefix %d not nested in %d", k, k+1)
			}
		}
	}
	// Region 1 spans a narrower x-range than region 5 (vertical slicing).
	m1 := geom.ItemsMBR(regions[0])
	m5 := geom.ItemsMBR(regions[4])
	if m1.Width() >= m5.Width() {
		t.Errorf("region slicing broken: %g vs %g", m1.Width(), m5.Width())
	}
}

func TestUniformAliasesSize(t *testing.T) {
	a := Uniform(50, 0.01, 9)
	b := Size(50, 0.01, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Uniform must alias Size")
		}
	}
}
