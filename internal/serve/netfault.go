package serve

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// NetFaultMode selects what a FaultyListener's connections do when their
// trigger fires. Network faults are the wire-level complement of
// storage.Faulty: deterministic, countable, and aimed at the server's
// connection handling rather than its disks.
type NetFaultMode int

const (
	// NetFaultNone never fires; connections only count frames.
	NetFaultNone NetFaultMode = iota
	// NetFaultReset closes the connection abruptly on the triggering
	// write — the client sees a mid-conversation reset.
	NetFaultReset
	// NetFaultTorn writes half of the triggering frame and closes: the
	// peer reads a length prefix whose payload never fully arrives
	// (ErrTornFrame on a well-behaved decoder).
	NetFaultTorn
	// NetFaultStall stops writing for the configured stall duration
	// before every write from the trigger on — a peer that hangs
	// mid-response. A server-side write deadline should cut it loose.
	NetFaultStall
	// NetFaultDrip writes one byte at a time with a delay between bytes
	// from the trigger on — the classic slow loris. A server-side read
	// deadline starves it out.
	NetFaultDrip
)

func (m NetFaultMode) String() string {
	switch m {
	case NetFaultNone:
		return "none"
	case NetFaultReset:
		return "reset"
	case NetFaultTorn:
		return "torn"
	case NetFaultStall:
		return "stall"
	case NetFaultDrip:
		return "drip"
	default:
		return fmt.Sprintf("NetFaultMode(%d)", int(m))
	}
}

// ParseNetFaultMode parses the -netfault flag values.
func ParseNetFaultMode(s string) (NetFaultMode, error) {
	switch s {
	case "", "none":
		return NetFaultNone, nil
	case "reset":
		return NetFaultReset, nil
	case "torn":
		return NetFaultTorn, nil
	case "stall":
		return NetFaultStall, nil
	case "drip":
		return NetFaultDrip, nil
	}
	return NetFaultNone, fmt.Errorf("serve: unknown net fault mode %q (want none, reset, torn, stall or drip)", s)
}

// NetFault configures a FaultyListener.
type NetFault struct {
	// Mode is what happens when the trigger fires.
	Mode NetFaultMode
	// After is the number of counted writes (≈ frames: each response is
	// one buffered flush) across all connections between firings.
	// NetFaultReset and NetFaultTorn fire periodically — on the
	// After+1-th write and every After+1 writes after that — so a chaos
	// run suffers a bounded, nonzero failure rate instead of one blip or
	// total loss. NetFaultStall and NetFaultDrip latch: from the
	// After+1-th write on, the affected connection misbehaves on every
	// write. <= 0 fires from the very first write.
	After int64
	// Stall is the pause NetFaultStall/NetFaultDrip insert (default
	// 30s for stall — longer than any sane write deadline — and 5ms
	// per byte for drip).
	Stall time.Duration
}

// FaultyListener wraps a net.Listener so every accepted connection
// injects the configured fault on the client-facing side. It exists for
// chaos tests and prtreeserve -netfault: the server under test is on the
// OTHER end of these connections, so wrapping the client's listener (or
// dialing through NewFaultyConn) torments the server's reads, while
// wrapping the server's listener torments its writes and the client's
// reads.
type FaultyListener struct {
	net.Listener
	fault  NetFault
	writes atomic.Int64
	fired  atomic.Bool
}

// NewFaultyListener wraps lis. All accepted connections share one write
// counter, so "the 100th response frame this server sends" is a single
// deterministic trigger regardless of connection count.
func NewFaultyListener(lis net.Listener, fault NetFault) *FaultyListener {
	if fault.Stall <= 0 {
		if fault.Mode == NetFaultDrip {
			fault.Stall = 5 * time.Millisecond
		} else {
			fault.Stall = 30 * time.Second
		}
	}
	return &FaultyListener{Listener: lis, fault: fault}
}

// Fired reports whether the fault has fired at least once.
func (l *FaultyListener) Fired() bool { return l.fired.Load() }

// Accept implements net.Listener.
func (l *FaultyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &faultyConn{Conn: conn, lis: l}, nil
}

// faultyConn injects the listener's fault into Write. Reads pass through:
// the interesting failures for a server are on its response path, and
// drip/stall model the peer consuming (or producing) slowly, which
// manifests to this side as blocked writes.
type faultyConn struct {
	net.Conn
	lis    *FaultyListener
	sticky atomic.Bool // stall/drip latched for this conn
}

func (c *faultyConn) Write(p []byte) (int, error) {
	l := c.lis
	mode := l.fault.Mode
	if mode == NetFaultNone {
		return c.Conn.Write(p)
	}
	n := l.writes.Add(1)
	period := l.fault.After + 1
	if period < 1 {
		period = 1
	}
	var fire bool
	switch mode {
	case NetFaultReset, NetFaultTorn:
		fire = n%period == 0
	default: // stall, drip: latch per connection once past the trigger
		fire = c.sticky.Load() || n >= period
	}
	if fire {
		l.fired.Store(true)
	} else {
		return c.Conn.Write(p)
	}
	switch mode {
	case NetFaultReset:
		c.Conn.Close()
		return 0, fmt.Errorf("serve: injected connection reset")
	case NetFaultTorn:
		half := p[:len(p)/2]
		written, _ := c.Conn.Write(half)
		c.Conn.Close()
		return written, fmt.Errorf("serve: injected torn frame")
	case NetFaultStall:
		c.sticky.Store(true)
		time.Sleep(l.fault.Stall)
		return c.Conn.Write(p)
	case NetFaultDrip:
		c.sticky.Store(true)
		for i := range p {
			if _, err := c.Conn.Write(p[i : i+1]); err != nil {
				return i, err
			}
			time.Sleep(l.fault.Stall)
		}
		return len(p), nil
	}
	return c.Conn.Write(p)
}

// NewFaultyConn wraps a single established connection (e.g. a client-side
// dial in a test) with its own one-connection fault domain.
func NewFaultyConn(conn net.Conn, fault NetFault) net.Conn {
	lis := NewFaultyListener(nil, fault)
	return &faultyConn{Conn: conn, lis: lis}
}
