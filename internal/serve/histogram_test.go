package serve

import (
	"testing"
	"time"
)

// TestHistogramEmpty: an empty histogram answers 0 everywhere instead of
// inventing a latency.
func TestHistogramEmpty(t *testing.T) {
	var h histogram
	if h.Count() != 0 {
		t.Fatalf("count %d, want 0", h.Count())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) = %v on empty histogram, want 0", q, got)
		}
	}
	if got := h.Mean(); got != 0 {
		t.Fatalf("Mean() = %v on empty histogram, want 0", got)
	}
}

// TestHistogramSingleSample: with one observation, every quantile is that
// sample's bucket bound — p50, p95 and p99 must agree exactly.
func TestHistogramSingleSample(t *testing.T) {
	var h histogram
	h.Observe(3 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count %d, want 1", h.Count())
	}
	p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	if p50 != p95 || p95 != p99 {
		t.Fatalf("single sample: p50=%v p95=%v p99=%v, want all equal", p50, p95, p99)
	}
	// The bound brackets the sample with the documented ~±25% bucket
	// resolution (upper bound is at most growth× the sample).
	if p50 < 3*time.Millisecond || p50 > time.Duration(float64(3*time.Millisecond)*histGrowth) {
		t.Fatalf("p50 %v does not bracket the 3ms sample", p50)
	}
	if h.Mean() != 3*time.Millisecond {
		t.Fatalf("mean %v, want exactly 3ms (mean is computed from the raw sum)", h.Mean())
	}
}

// TestHistogramOneBucket: many identical observations land in one bucket,
// pinning p50 == p95 == p99 to that bucket's bound.
func TestHistogramOneBucket(t *testing.T) {
	var h histogram
	for i := 0; i < 1000; i++ {
		h.Observe(500 * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d, want 1000", h.Count())
	}
	want := h.Quantile(0.50)
	if want == 0 {
		t.Fatal("p50 is 0 with 1000 observations")
	}
	for _, q := range []float64{0.95, 0.99, 1.0} {
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%v) = %v, want %v (single occupied bucket)", q, got, want)
		}
	}
	if h.Mean() != 500*time.Microsecond {
		t.Fatalf("mean %v, want 500µs", h.Mean())
	}
}

// TestHistogramExtremes: sub-base and beyond-top observations land in the
// first and catch-all buckets instead of being dropped.
func TestHistogramExtremes(t *testing.T) {
	var h histogram
	h.Observe(0)
	h.Observe(-time.Second) // clamped to 0
	h.Observe(10 * time.Minute)
	if h.Count() != 3 {
		t.Fatalf("count %d, want 3", h.Count())
	}
	if got := h.Quantile(0.01); got != histBase {
		t.Fatalf("low quantile %v, want first bucket bound %v", got, histBase)
	}
	if got := h.Quantile(1.0); got != histBounds[histBuckets-1] {
		t.Fatalf("top quantile %v, want the catch-all bound", got)
	}
}
