package serve

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"prtree/internal/geom"
)

func rect(a, b, c, d float64) geom.Rect { return geom.NewRect(a, b, c, d) }

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpWindow, Rect: rect(1, 2, 3, 4)},
		{Op: OpContained, Tenant: "acme", DeadlineMillis: 250, Limit: 10, Rect: rect(-5, -5, 5, 5)},
		{Op: OpPoint, X: 3.25, Y: -7.5},
		{Op: OpNearest, Tenant: "x", X: 0, Y: 0, K: 17},
		{Op: OpBatch, Limit: 3, Rects: []geom.Rect{rect(0, 0, 1, 1), rect(2, 2, 3, 3)}},
		{Op: OpBatch, Rects: []geom.Rect{}},
		{Op: OpStats},
	}
	for _, want := range reqs {
		buf, err := EncodeRequest(nil, want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		// Batch round-trips nil ↔ empty; normalize before comparing.
		if len(want.Rects) == 0 {
			want.Rects, got.Rects = nil, nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestEncodeRequestRejects(t *testing.T) {
	if _, err := EncodeRequest(nil, Request{Op: OpWindow, Tenant: strings.Repeat("t", MaxTenant+1)}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized tenant: got %v, want ErrBadFrame", err)
	}
	if _, err := EncodeRequest(nil, Request{Op: OpBatch, Rects: make([]geom.Rect, MaxBatch+1)}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized batch: got %v, want ErrBadFrame", err)
	}
	if _, err := EncodeRequest(nil, Request{Op: 99}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("unknown op: got %v, want ErrBadFrame", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	items := []geom.Item{{ID: 1, Rect: rect(0, 0, 1, 1)}, {ID: 9, Rect: rect(5, 5, 6, 6)}}
	nbs := []Neighbor{{Item: items[0], Dist2: 0.25}, {Item: items[1], Dist2: 36}}
	st := &WireStats{Shards: 4, Items: 1234, MBR: rect(-10, -10, 10, 10)}

	cases := []struct {
		op     byte
		failed []uint32
		sets   [][]geom.Item
		nbs    []Neighbor
		st     *WireStats
	}{
		{op: OpWindow, sets: [][]geom.Item{items}},
		{op: OpPoint, sets: [][]geom.Item{{}}},
		{op: OpBatch, sets: [][]geom.Item{items, {}, items[:1]}},
		{op: OpNearest, nbs: nbs},
		{op: OpNearest, nbs: nil},
		{op: OpStats, st: st},
		// Degraded responses carry the failed-shard indices.
		{op: OpWindow, failed: []uint32{2}, sets: [][]geom.Item{items[:1]}},
		{op: OpNearest, failed: []uint32{0, 3, 7}, nbs: nbs},
		{op: OpBatch, failed: []uint32{1}, sets: [][]geom.Item{{}, {}}},
	}
	for _, c := range cases {
		buf := AppendOKResponse(nil, c.op, c.failed, c.sets, c.nbs, c.st)
		got, err := DecodeResponse(buf)
		if err != nil {
			t.Fatalf("op %d: decode: %v", c.op, err)
		}
		if got.Op != c.op {
			t.Errorf("op %d: echoed op %d", c.op, got.Op)
		}
		if !reflect.DeepEqual(got.FailedShards, c.failed) {
			t.Errorf("op %d: failed shards %v, want %v", c.op, got.FailedShards, c.failed)
		}
		if got.Degraded() != (len(c.failed) > 0) {
			t.Errorf("op %d: Degraded() = %v with %d failed shards", c.op, got.Degraded(), len(c.failed))
		}
		// Re-encoding the decoded result must reproduce the payload
		// byte-for-byte: the wire form is canonical.
		again := AppendOKResponse(nil, got.Op, got.FailedShards, got.Sets, got.Neighbors, got.Stats)
		if !bytes.Equal(again, buf) {
			t.Errorf("op %d: re-encode mismatch", c.op)
		}
	}
}

func TestErrorResponseRoundTrip(t *testing.T) {
	buf := AppendErrResponse(nil, OpWindow, CodeOverloaded, "too busy")
	res, err := DecodeResponse(buf)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("got %v, want *RemoteError", err)
	}
	if remote.Code != CodeOverloaded || remote.Msg != "too busy" || res.Op != OpWindow {
		t.Errorf("got code=%d msg=%q op=%d", remote.Code, remote.Msg, res.Op)
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	valid, err := EncodeRequest(nil, Request{Op: OpWindow, Rect: rect(0, 0, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := EncodeRequest(nil, Request{Op: OpBatch, Rects: []geom.Rect{rect(0, 0, 1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	// Forge the batch count far above the actual rect payload. The count
	// sits after op(1) + tenantLen(1) + deadline(4) + limit(4).
	forged := append([]byte(nil), batch...)
	forged[13] = 0xff // count low byte → 255 rects claimed, 1 present

	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"unknown op", []byte{42, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
		{"truncated header", valid[:4]},
		{"truncated args", valid[:len(valid)-1]},
		{"trailing bytes", append(append([]byte(nil), valid...), 0)},
		{"tenant past end", []byte{OpStats, 200}},
		{"forged batch count", forged},
	}
	for _, c := range cases {
		if _, err := DecodeRequest(c.payload); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: got %v, want ErrBadFrame", c.name, err)
		}
	}
}

func TestDecodeResponseErrors(t *testing.T) {
	ok := AppendOKResponse(nil, OpWindow, nil, [][]geom.Item{{{ID: 1, Rect: rect(0, 0, 1, 1)}}}, nil, nil)
	degraded := AppendOKResponse(nil, OpWindow, []uint32{1, 2}, [][]geom.Item{{}}, nil, nil)
	errResp := AppendErrResponse(nil, OpWindow, CodeInternal, "boom")
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"status only", []byte{statusOK}},
		{"unknown status", []byte{9, OpWindow}},
		{"unknown op", []byte{statusOK, 42, 0, 0, 0, 0, 0}},
		{"truncated items", ok[:len(ok)-1]},
		{"trailing bytes", append(append([]byte(nil), ok...), 0)},
		// A forged degraded-shard count larger than the remaining payload
		// must be rejected, not read past the end.
		{"forged failed count", []byte{statusOK, OpWindow, 0xff, 0, 0, 0, 1}},
		{"truncated failed list", degraded[:4]},
		{"error trailing bytes", append(append([]byte(nil), errResp...), 0)},
		{"truncated error msg", errResp[:len(errResp)-2]},
	}
	for _, c := range cases {
		if _, err := DecodeResponse(c.payload); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: got %v, want ErrBadFrame", c.name, err)
		}
	}
}

func TestReadFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	got, err := ReadFrame(bytes.NewReader(wire), MaxRequestFrame)
	if err != nil || string(got) != "hello" {
		t.Fatalf("got %q, %v", got, err)
	}
	// Clean EOF only at a frame boundary.
	if _, err := ReadFrame(bytes.NewReader(nil), MaxRequestFrame); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
	// Cut mid-header and mid-payload are torn, not EOF.
	for _, cut := range []int{2, len(wire) - 1} {
		if _, err := ReadFrame(bytes.NewReader(wire[:cut]), MaxRequestFrame); !errors.Is(err, ErrTornFrame) {
			t.Errorf("cut at %d: got %v, want ErrTornFrame", cut, err)
		}
	}
	// A length prefix above the cap is rejected before any allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(huge), MaxRequestFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized: got %v, want ErrFrameTooLarge", err)
	}
}

// FuzzFrameDecode feeds arbitrary bytes through every decoder: framing,
// request and response. Nothing may panic or allocate past the frame cap,
// and any payload that decodes must re-encode to the identical bytes (the
// wire form is canonical).
func FuzzFrameDecode(f *testing.F) {
	seedReq := func(req Request) {
		if buf, err := EncodeRequest(nil, req); err == nil {
			var frame bytes.Buffer
			WriteFrame(&frame, buf)
			f.Add(frame.Bytes())
			f.Add(buf)
		}
	}
	seedReq(Request{Op: OpWindow, Tenant: "t", Rect: rect(0, 0, 1, 1)})
	seedReq(Request{Op: OpNearest, X: 1, Y: 2, K: 3})
	seedReq(Request{Op: OpBatch, Rects: []geom.Rect{rect(0, 0, 1, 1)}})
	seedReq(Request{Op: OpStats})
	f.Add(AppendOKResponse(nil, OpNearest, nil, nil, []Neighbor{{Dist2: 1}}, nil))
	f.Add(AppendErrResponse(nil, OpWindow, CodeDeadline, "late"))
	// Degraded responses: failed-shard lists of every shape.
	f.Add(AppendOKResponse(nil, OpWindow, []uint32{0}, [][]geom.Item{{}}, nil, nil))
	f.Add(AppendOKResponse(nil, OpBatch, []uint32{1, 2, 250}, [][]geom.Item{{}, {}}, nil, nil))
	f.Add(AppendOKResponse(nil, OpNearest, []uint32{3}, nil, []Neighbor{{Dist2: 4}}, nil))
	f.Add([]byte{statusOK, OpWindow, 0xff, 0, 0, 0, 1}) // forged failed count
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Add([]byte{0, 0, 0, 5, 1, 2}) // torn: claims 5 bytes, carries 2

	f.Fuzz(func(t *testing.T, data []byte) {
		// Framing layer: errors must be the typed ones, payloads bounded.
		payload, err := ReadFrame(bytes.NewReader(data), MaxRequestFrame)
		if err != nil {
			if err != io.EOF && !errors.Is(err, ErrTornFrame) && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("ReadFrame: untyped error %v", err)
			}
		} else if len(payload) > MaxRequestFrame {
			t.Fatalf("ReadFrame returned %d bytes above the cap", len(payload))
		}

		// Request decoder: success must re-encode byte-identically.
		if req, err := DecodeRequest(data); err == nil {
			again, err := EncodeRequest(nil, req)
			if err != nil {
				t.Fatalf("decoded request did not re-encode: %v", err)
			}
			if !bytes.Equal(again, data) {
				t.Fatalf("request re-encode mismatch:\n in %x\nout %x", data, again)
			}
		} else if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("DecodeRequest: untyped error %v", err)
		}

		// Response decoder: same canonicality contract.
		res, err := DecodeResponse(data)
		switch e := err.(type) {
		case nil:
			again := AppendOKResponse(nil, res.Op, res.FailedShards, res.Sets, res.Neighbors, res.Stats)
			if !bytes.Equal(again, data) {
				t.Fatalf("response re-encode mismatch:\n in %x\nout %x", data, again)
			}
		case *RemoteError:
			again := AppendErrResponse(nil, res.Op, e.Code, e.Msg)
			if !bytes.Equal(again, data) {
				t.Fatalf("error response re-encode mismatch:\n in %x\nout %x", data, again)
			}
		default:
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("DecodeResponse: untyped error %v", err)
			}
		}
	})
}
