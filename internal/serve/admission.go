package serve

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOverloaded is the typed admission-control rejection: the tenant
// already has its full cap of requests in flight. Callers test it with
// errors.Is; the binary protocol maps it to CodeOverloaded and HTTP to
// 429 Too Many Requests.
var ErrOverloaded = errors.New("serve: tenant in-flight cap reached")

// admission enforces a per-tenant in-flight request cap. The zero tenant
// id shares one bucket named "default", so anonymous clients are capped
// too rather than uncapped.
//
// Internally the cap is tri-state: negative means unlimited, zero rejects
// every request (drain-to-zero), positive caps. The public Config keeps
// its "<= 0 disables" convention; normCap translates. In-flight counts
// are tracked even while the cap is unlimited so the cap can change at
// runtime (SetTenantCap) without leaking or double-releasing slots held
// by requests admitted under the old cap.
type admission struct {
	mu       sync.Mutex
	cap      int
	inflight map[string]int
	rejected uint64
}

// normCap translates the public Config convention (<= 0 disables) into
// the internal tri-state (negative = unlimited).
func normCap(c int) int {
	if c <= 0 {
		return -1
	}
	return c
}

func newAdmission(cap int) *admission {
	return &admission{cap: normCap(cap), inflight: make(map[string]int)}
}

// normTenant maps the empty tenant onto the shared default bucket.
func normTenant(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// acquire admits one request for tenant, or reports ErrOverloaded. Every
// successful acquire must be paired with exactly one release.
func (a *admission) acquire(tenant string) error {
	if a == nil {
		return nil
	}
	tenant = normTenant(tenant)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cap >= 0 && a.inflight[tenant] >= a.cap {
		a.rejected++
		return fmt.Errorf("%w (tenant %q, cap %d)", ErrOverloaded, tenant, a.cap)
	}
	a.inflight[tenant]++
	return nil
}

// release returns tenant's slot.
func (a *admission) release(tenant string) {
	if a == nil {
		return
	}
	tenant = normTenant(tenant)
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := a.inflight[tenant]; n > 1 {
		a.inflight[tenant] = n - 1
	} else {
		delete(a.inflight, tenant)
	}
}

// setCap changes the cap at runtime: < 0 unlimited, 0 reject-all, > 0
// cap. In-flight requests admitted under the old cap drain normally.
func (a *admission) setCap(cap int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.cap = cap
	a.mu.Unlock()
}

// capNow returns the current cap in the internal tri-state convention.
func (a *admission) capNow() int {
	if a == nil {
		return -1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cap
}

// rejectedCount returns the cumulative rejections.
func (a *admission) rejectedCount() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejected
}
