package serve

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOverloaded is the typed admission-control rejection: the tenant
// already has its full cap of requests in flight. Callers test it with
// errors.Is; the binary protocol maps it to CodeOverloaded and HTTP to
// 429 Too Many Requests.
var ErrOverloaded = errors.New("serve: tenant in-flight cap reached")

// admission enforces a per-tenant in-flight request cap. The zero tenant
// id shares one bucket named "default", so anonymous clients are capped
// too rather than uncapped.
type admission struct {
	cap      int // per-tenant in-flight cap; <= 0 means unlimited
	mu       sync.Mutex
	inflight map[string]int
	rejected uint64
}

func newAdmission(cap int) *admission {
	return &admission{cap: cap, inflight: make(map[string]int)}
}

// normTenant maps the empty tenant onto the shared default bucket.
func normTenant(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// acquire admits one request for tenant, or reports ErrOverloaded. Every
// successful acquire must be paired with exactly one release.
func (a *admission) acquire(tenant string) error {
	if a == nil || a.cap <= 0 {
		return nil
	}
	tenant = normTenant(tenant)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight[tenant] >= a.cap {
		a.rejected++
		return fmt.Errorf("%w (tenant %q, cap %d)", ErrOverloaded, tenant, a.cap)
	}
	a.inflight[tenant]++
	return nil
}

// release returns tenant's slot.
func (a *admission) release(tenant string) {
	if a == nil || a.cap <= 0 {
		return
	}
	tenant = normTenant(tenant)
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := a.inflight[tenant]; n > 1 {
		a.inflight[tenant] = n - 1
	} else {
		delete(a.inflight, tenant)
	}
}

// rejectedCount returns the cumulative rejections.
func (a *admission) rejectedCount() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejected
}
