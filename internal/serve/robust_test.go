package serve

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"prtree/internal/geom"
)

// startFakeFrameServer runs a minimal binary-protocol peer whose behavior
// per request is fully scripted: handle receives each decoded request and
// returns the raw response payload to frame back. Each connection gets
// its own goroutine, so a handler that stalls blocks only its own conn —
// exactly what hedging needs to race around.
func startFakeFrameServer(t *testing.T, handle func(Request) []byte) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					payload, err := ReadFrame(conn, MaxRequestFrame)
					if err != nil {
						return
					}
					req, err := DecodeRequest(payload)
					if err != nil {
						return
					}
					if err := WriteFrame(conn, handle(req)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return lis.Addr().String()
}

func fastRetry(addr string) RobustOptions {
	return RobustOptions{
		Addr:            addr,
		RetryBackoff:    time.Millisecond,
		RetryMaxBackoff: 5 * time.Millisecond,
	}
}

// TestRobustRetriesOverload: CodeOverloaded rejections are retried with
// backoff until the server admits the request, and each extra attempt is
// counted.
func TestRobustRetriesOverload(t *testing.T) {
	var calls atomic.Int64
	addr := startFakeFrameServer(t, func(req Request) []byte {
		if calls.Add(1) <= 2 {
			return AppendErrResponse(nil, req.Op, CodeOverloaded, "per-tenant cap reached")
		}
		return AppendOKResponse(nil, req.Op, nil, [][]geom.Item{{}}, nil, nil)
	})
	rc := DialRobust(fastRetry(addr))
	defer rc.Close()

	res, err := rc.Do(Request{Op: OpWindow})
	if err != nil {
		t.Fatalf("overloaded-then-ok request failed: %v", err)
	}
	if res.Degraded() {
		t.Fatal("complete response reported degraded")
	}
	if got := rc.Counters().Retries; got != 2 {
		t.Fatalf("retries %d, want 2", got)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", calls.Load())
	}
}

// TestRobustNoRetryOnDegradedOrBadRequest: a degraded success IS a
// success, and a non-overload server error is final — neither may burn
// retries (retrying against degraded infrastructure adds load exactly
// when the serving side can least afford it).
func TestRobustNoRetryOnDegradedOrBadRequest(t *testing.T) {
	var calls atomic.Int64
	addr := startFakeFrameServer(t, func(req Request) []byte {
		calls.Add(1)
		switch req.Op {
		case OpWindow: // degraded but answered
			return AppendOKResponse(nil, req.Op, []uint32{1}, [][]geom.Item{{{ID: 7}}}, nil, nil)
		default:
			return AppendErrResponse(nil, req.Op, CodeBadRequest, "nope")
		}
	})
	rc := DialRobust(fastRetry(addr))
	defer rc.Close()

	res, err := rc.Do(Request{Op: OpWindow})
	if err != nil {
		t.Fatalf("degraded response surfaced as error: %v", err)
	}
	if !res.Degraded() || len(res.FailedShards) != 1 || res.FailedShards[0] != 1 {
		t.Fatalf("failed shards %v, want [1]", res.FailedShards)
	}

	_, err = rc.Do(Request{Op: OpPoint})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != CodeBadRequest {
		t.Fatalf("got %v, want RemoteError CodeBadRequest", err)
	}
	if got := rc.Counters().Retries; got != 0 {
		t.Fatalf("retries %d, want 0", got)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (no retries)", calls.Load())
	}
}

// TestRobustBreaker: consecutive transport failures open the per-address
// breaker (fast-failing further requests), a cooldown probe against a
// healed server closes it, and every transition is counted.
func TestRobustBreaker(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	var healthy atomic.Bool
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			if !healthy.Load() {
				conn.Close() // hang up before answering: transport failure
				continue
			}
			go func() {
				defer conn.Close()
				for {
					payload, err := ReadFrame(conn, MaxRequestFrame)
					if err != nil {
						return
					}
					req, _ := DecodeRequest(payload)
					if WriteFrame(conn, AppendOKResponse(nil, req.Op, nil, [][]geom.Item{{}}, nil, nil)) != nil {
						return
					}
				}
			}()
		}
	}()

	opt := fastRetry(lis.Addr().String())
	opt.MaxRetries = -1 // one attempt per Do: transitions stay countable
	opt.BreakerThreshold = 3
	opt.BreakerCooldown = 20 * time.Millisecond
	rc := DialRobust(opt)
	defer rc.Close()

	for i := 0; i < 3; i++ {
		if _, err := rc.Do(Request{Op: OpWindow}); err == nil {
			t.Fatalf("request %d against a hanging-up server succeeded", i)
		} else if errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("request %d denied before the threshold", i)
		}
	}
	if _, err := rc.Do(Request{Op: OpWindow}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("got %v, want ErrBreakerOpen after %d failures", err, opt.BreakerThreshold)
	}
	c := rc.Counters()
	if c.BreakerOpens != 1 || c.BreakerDenied != 1 {
		t.Fatalf("counters %+v, want 1 open and 1 denial", c)
	}

	// Heal the server; after the cooldown one probe goes through, closes
	// the breaker, and traffic flows again.
	healthy.Store(true)
	time.Sleep(opt.BreakerCooldown + 5*time.Millisecond)
	if _, err := rc.Do(Request{Op: OpWindow}); err != nil {
		t.Fatalf("probe after cooldown failed: %v", err)
	}
	if _, err := rc.Do(Request{Op: OpWindow}); err != nil {
		t.Fatalf("request after the breaker closed failed: %v", err)
	}
}

// TestRobustHedging: once the latency ring is warm, a request stuck past
// the observed p99 gets a hedge on a fresh connection, and the hedge's
// answer wins the race instead of waiting out the straggler.
func TestRobustHedging(t *testing.T) {
	var stalled atomic.Bool
	addr := startFakeFrameServer(t, func(req Request) []byte {
		if req.Op == OpPoint && stalled.CompareAndSwap(false, true) {
			time.Sleep(400 * time.Millisecond) // the one straggler
		}
		return AppendOKResponse(nil, req.Op, nil, [][]geom.Item{{}}, nil, nil)
	})
	opt := fastRetry(addr)
	opt.Hedge = true
	opt.HedgeAfterMin = 1
	rc := DialRobust(opt)
	defer rc.Close()

	// Warm the p99 estimate with fast requests.
	for i := 0; i < 32; i++ {
		if _, err := rc.Do(Request{Op: OpWindow}); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	if _, err := rc.Do(Request{Op: OpPoint}); err != nil {
		t.Fatalf("hedged request failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Fatalf("hedged request waited out the straggler (%v)", elapsed)
	}
	c := rc.Counters()
	if c.Hedges < 1 || c.HedgeWins < 1 {
		t.Fatalf("counters %+v, want at least one hedge and one hedge win", c)
	}
}
