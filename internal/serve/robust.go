package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is the typed fast-fail for a tripped circuit breaker:
// the address failed enough consecutive transport attempts that the
// client refuses to touch it until the cooldown allows a probe.
var ErrBreakerOpen = errors.New("serve: circuit breaker open")

// RobustOptions tunes a RobustClient. The zero value retries up to 3
// times with 10ms initial backoff and no hedging.
type RobustOptions struct {
	// Addr is the server's binary-protocol address.
	Addr string
	// MaxRetries caps retry attempts after the first (default 3; negative
	// disables retries).
	MaxRetries int
	// RetryBackoff is the initial retry delay (default 10ms), doubled per
	// attempt with jitter up to RetryMaxBackoff (default 1s).
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration

	// Hedge enables hedged reads: when a request has been in flight
	// longer than the client's observed p99, a second identical request
	// races it on a fresh connection and the first response wins. Only
	// idempotent reads go through RobustClient, so hedging is always
	// safe here.
	Hedge bool
	// HedgeAfterMin is the minimum latency-sample count before hedging
	// arms (default 32) — hedging off a cold p99 estimate would fire on
	// everything.
	HedgeAfterMin int

	// BreakerThreshold is the consecutive transport-failure count that
	// opens the per-address circuit breaker (default 5; negative
	// disables). While open, Do fails fast with ErrBreakerOpen until
	// BreakerCooldown (default 1s) passes; then one probe request is
	// allowed through — success closes the breaker, failure reopens it.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// MaxIdleConns bounds the connection pool (default 8).
	MaxIdleConns int
}

func (o RobustOptions) normalized() RobustOptions {
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.RetryMaxBackoff <= 0 {
		o.RetryMaxBackoff = time.Second
	}
	if o.HedgeAfterMin <= 0 {
		o.HedgeAfterMin = 32
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	if o.MaxIdleConns <= 0 {
		o.MaxIdleConns = 8
	}
	return o
}

// RobustCounters snapshots a RobustClient's resilience counters.
type RobustCounters struct {
	Retries       uint64 // attempts after the first, per request
	Hedges        uint64 // hedge requests launched
	HedgeWins     uint64 // requests where the hedge answered first
	BreakerOpens  uint64 // closed → open transitions
	BreakerDenied uint64 // requests failed fast with ErrBreakerOpen
}

// latRing is a fixed-size ring of latency samples for the hedge-delay
// estimate. Writes are mutex-held; p99 sorts a copy.
type latRing struct {
	mu      sync.Mutex
	samples [256]time.Duration
	n       int // total observed (ring index = n % len)
}

func (l *latRing) observe(d time.Duration) {
	l.mu.Lock()
	l.samples[l.n%len(l.samples)] = d
	l.n++
	l.mu.Unlock()
}

// p99 returns the ring's 99th percentile and the total sample count.
func (l *latRing) p99() (time.Duration, int) {
	l.mu.Lock()
	n := l.n
	size := n
	if size > len(l.samples) {
		size = len(l.samples)
	}
	buf := make([]time.Duration, size)
	copy(buf, l.samples[:size])
	l.mu.Unlock()
	if size == 0 {
		return 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return quantile(buf, 0.99), n
}

// breaker is a per-address circuit breaker over consecutive transport
// failures. Server responses — even errors — prove the transport works
// and reset it.
type breaker struct {
	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
}

// RobustClient is a retrying, hedging, circuit-breaking front over the
// binary protocol. Unlike Client it is safe for concurrent use: requests
// draw connections from a pool, and broken connections are discarded
// instead of poisoning later requests.
//
// Retries apply only to failures that cannot have returned an answer —
// transport errors and CodeOverloaded rejections. A degraded (partial)
// success is a success: retrying it could hide a real infrastructure
// problem behind extra load, exactly when the serving side can least
// afford it.
type RobustClient struct {
	opt RobustOptions

	poolMu sync.Mutex
	idle   []*Client
	closed bool

	lat latRing
	brk breaker

	retries       atomic.Uint64
	hedges        atomic.Uint64
	hedgeWins     atomic.Uint64
	breakerOpens  atomic.Uint64
	breakerDenied atomic.Uint64
}

// DialRobust returns a RobustClient for opt.Addr. No connection is opened
// until the first request.
func DialRobust(opt RobustOptions) *RobustClient {
	return &RobustClient{opt: opt.normalized()}
}

// Counters snapshots the client's resilience counters.
func (rc *RobustClient) Counters() RobustCounters {
	return RobustCounters{
		Retries:       rc.retries.Load(),
		Hedges:        rc.hedges.Load(),
		HedgeWins:     rc.hedgeWins.Load(),
		BreakerOpens:  rc.breakerOpens.Load(),
		BreakerDenied: rc.breakerDenied.Load(),
	}
}

// Close closes every pooled connection; in-flight requests finish on
// their own connections and find the pool closed when they return them.
func (rc *RobustClient) Close() error {
	rc.poolMu.Lock()
	idle := rc.idle
	rc.idle = nil
	rc.closed = true
	rc.poolMu.Unlock()
	for _, cl := range idle {
		cl.Close()
	}
	return nil
}

// getConn pops a pooled connection or dials a fresh one.
func (rc *RobustClient) getConn() (*Client, error) {
	rc.poolMu.Lock()
	if n := len(rc.idle); n > 0 {
		cl := rc.idle[n-1]
		rc.idle = rc.idle[:n-1]
		rc.poolMu.Unlock()
		return cl, nil
	}
	rc.poolMu.Unlock()
	return Dial(rc.opt.Addr)
}

// putConn returns a healthy connection to the pool (closing it if the
// pool is full or the client closed).
func (rc *RobustClient) putConn(cl *Client) {
	rc.poolMu.Lock()
	if rc.closed || len(rc.idle) >= rc.opt.MaxIdleConns {
		rc.poolMu.Unlock()
		cl.Close()
		return
	}
	rc.idle = append(rc.idle, cl)
	rc.poolMu.Unlock()
}

// allow reports whether the breaker admits a request right now.
func (rc *RobustClient) allow() bool {
	if rc.opt.BreakerThreshold < 0 {
		return true
	}
	b := &rc.brk
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if time.Now().Before(b.openUntil) {
		return false
	}
	// Cooldown passed: admit exactly one probe; everyone else keeps
	// failing fast until the probe reports.
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// reportTransport records one attempt's transport outcome. ok covers any
// server response, error responses included — the wire worked.
func (rc *RobustClient) reportTransport(ok bool) {
	if rc.opt.BreakerThreshold < 0 {
		return
	}
	b := &rc.brk
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.fails = 0
		b.openUntil = time.Time{}
		return
	}
	b.fails++
	if b.fails >= rc.opt.BreakerThreshold {
		if b.openUntil.IsZero() {
			rc.breakerOpens.Add(1)
		}
		b.openUntil = time.Now().Add(rc.opt.BreakerCooldown)
	}
}

// attemptOut is one attempt's outcome, raced by hedged legs.
type attemptOut struct {
	res Result
	err error
	// answered marks a server response (success or RemoteError): the
	// authoritative outcome that wins the hedge race. Transport errors
	// are not answers — the other leg may still produce one.
	answered bool
}

// attempt runs req once on a pooled connection.
func (rc *RobustClient) attempt(req Request) attemptOut {
	cl, err := rc.getConn()
	if err != nil {
		rc.reportTransport(false)
		return attemptOut{err: err}
	}
	t0 := time.Now()
	res, err := cl.Do(req)
	if err != nil {
		var remote *RemoteError
		if errors.As(err, &remote) {
			// The server answered; the connection is still framed.
			rc.reportTransport(true)
			rc.putConn(cl)
			return attemptOut{err: err, answered: true}
		}
		rc.reportTransport(false)
		cl.Close()
		return attemptOut{err: err}
	}
	rc.lat.observe(time.Since(t0))
	rc.reportTransport(true)
	rc.putConn(cl)
	return attemptOut{res: res, answered: true}
}

// hedgeDelay returns the delay before a hedge fires, or 0 if hedging is
// not armed (disabled, or not enough samples yet).
func (rc *RobustClient) hedgeDelay() time.Duration {
	if !rc.opt.Hedge {
		return 0
	}
	p99, n := rc.lat.p99()
	if n < rc.opt.HedgeAfterMin || p99 <= 0 {
		return 0
	}
	return p99
}

// retryable reports whether err may be retried: transport failures and
// overload rejections, where no answer was (or will be) consumed.
func retryable(err error) bool {
	var remote *RemoteError
	if errors.As(err, &remote) {
		return remote.Code == CodeOverloaded
	}
	return true // transport/framing failure
}

// Do runs req with retries, hedging and the circuit breaker. The request
// deadline (DeadlineMillis) bounds the whole call including backoff:
// when the budget is spent, the last error returns rather than another
// retry burning a dead deadline.
func (rc *RobustClient) Do(req Request) (Result, error) {
	var budget time.Time
	if req.DeadlineMillis > 0 {
		budget = time.Now().Add(time.Duration(req.DeadlineMillis) * time.Millisecond)
	}
	backoff := rc.opt.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !rc.allow() {
			rc.breakerDenied.Add(1)
			err := fmt.Errorf("%w: %s", ErrBreakerOpen, rc.opt.Addr)
			if lastErr != nil {
				err = fmt.Errorf("%w (last error: %v)", ErrBreakerOpen, lastErr)
			}
			return Result{}, err
		}
		out := rc.race(req)
		if out.err == nil {
			return out.res, nil
		}
		lastErr = out.err
		if out.answered && !retryable(out.err) {
			return Result{}, out.err
		}
		if !retryable(out.err) || attempt >= rc.opt.MaxRetries {
			return Result{}, out.err
		}
		d := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		if !budget.IsZero() && time.Now().Add(d).After(budget) {
			return Result{}, fmt.Errorf("serve: deadline budget exhausted after %d attempts: %w", attempt+1, out.err)
		}
		time.Sleep(d)
		rc.retries.Add(1)
		backoff *= 2
		if backoff > rc.opt.RetryMaxBackoff {
			backoff = rc.opt.RetryMaxBackoff
		}
	}
}

// race runs one attempt, hedged with a second identical request when the
// first is slower than the client's observed p99. The first server
// response wins; a pure transport error on one leg waits for the other.
func (rc *RobustClient) race(req Request) attemptOut {
	delay := rc.hedgeDelay()
	if delay <= 0 {
		return rc.attempt(req)
	}
	primary := make(chan attemptOut, 1)
	go func() { primary <- rc.attempt(req) }()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var hedge chan attemptOut
	var timerC <-chan time.Time = timer.C
	var firstErr *attemptOut
	for {
		select {
		case out := <-primary:
			if out.answered || hedge == nil {
				return out
			}
			// Transport failure; the hedge may still answer.
			primary = nil
			if firstErr != nil {
				return out
			}
			firstErr = &out
		case out := <-hedge:
			if out.answered {
				rc.hedgeWins.Add(1)
				return out
			}
			hedge = nil
			if firstErr != nil {
				return out
			}
			firstErr = &out
		case <-timerC:
			timerC = nil
			rc.hedges.Add(1)
			hedge = make(chan attemptOut, 1)
			go func() { hedge <- rc.attempt(req) }()
		}
	}
}
