package serve

import (
	"sync/atomic"
	"time"
)

// histBuckets is the latency histogram's bucket count. Bucket i covers
// [histBase * histGrowth^(i-1), histBase * histGrowth^i); the first bucket
// absorbs everything below histBase and the last everything above the top
// boundary, so Observe never misses.
const histBuckets = 48

const histBase = time.Microsecond

// histGrowth is the geometric bucket growth. 1.5^46 µs ≈ 124 s, so the
// histogram spans sub-microsecond to minutes with ~±25% resolution —
// plenty for p50/p95/p99 on a /statsz page (the load generator computes
// exact quantiles from raw samples instead).
const histGrowth = 1.5

// histBounds holds each bucket's upper boundary, precomputed once.
var histBounds = func() [histBuckets]time.Duration {
	var out [histBuckets]time.Duration
	b := float64(histBase)
	for i := 0; i < histBuckets; i++ {
		out[i] = time.Duration(b)
		b *= histGrowth
	}
	out[histBuckets-1] = 1 << 62 // catch-all
	return out
}()

// histogram is a lock-free latency histogram: geometric buckets with
// atomic counters, safe for any number of concurrent Observe callers.
type histogram struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds, for mean
}

// Observe records one latency.
func (h *histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	lo, hi := 0, histBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d < histBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.total.Add(1)
	h.sum.Add(uint64(d))
}

// Count returns the number of observations.
func (h *histogram) Count() uint64 { return h.total.Load() }

// Quantile returns the upper boundary of the bucket holding quantile q
// (0 < q <= 1), or 0 with no observations. The answer is exact to the
// bucket's ~±25% resolution.
func (h *histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen > rank {
			return histBounds[i]
		}
	}
	return histBounds[histBuckets-1]
}

// Mean returns the arithmetic mean latency, or 0 with no observations.
func (h *histogram) Mean() time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / total)
}
