package serve

import (
	"context"
	"io"
	"net"
	"testing"
	"time"

	"prtree/internal/dataset"
	"prtree/internal/geom"
)

// startFaultServer serves a small healthy set on a loopback listener,
// optionally wrapped (FaultyListener), and tears everything down with the
// test.
func startFaultServer(t *testing.T, cfg Config, wrap func(net.Listener) net.Listener) (string, *Server) {
	t.Helper()
	items := dataset.Western(2000, 3)
	set := buildSet(t, items, 2, PartitionHilbert)
	cfg.Set = set
	srv := New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	if wrap != nil {
		lis = wrap(lis)
	}
	go srv.ServeBinary(lis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return addr, srv
}

// oneWindow runs a single window request on a fresh connection.
func oneWindow(addr string, w geom.Rect) error {
	cl, err := Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	_, err = cl.Do(Request{Op: OpWindow, Rect: w})
	return err
}

// TestFaultyListenerPeriodic: with the server's listener injecting
// periodic resets or torn response frames, individual requests fail with
// transport errors but the server survives — fresh connections keep
// getting correct answers between firings.
func TestFaultyListenerPeriodic(t *testing.T) {
	for _, mode := range []NetFaultMode{NetFaultReset, NetFaultTorn} {
		t.Run(mode.String(), func(t *testing.T) {
			var flis *FaultyListener
			addr, srv := startFaultServer(t, Config{}, func(l net.Listener) net.Listener {
				flis = NewFaultyListener(l, NetFault{Mode: mode, After: 4})
				return flis
			})
			world := srv.cfg.Set.MBR()

			var ok, failed int
			var okAfterFail bool
			for i := 0; i < 40; i++ {
				if err := oneWindow(addr, world); err != nil {
					failed++
				} else {
					ok++
					if failed > 0 {
						okAfterFail = true
					}
				}
			}
			if !flis.Fired() {
				t.Fatal("fault never fired")
			}
			if failed == 0 {
				t.Fatal("no request saw the injected fault")
			}
			if !okAfterFail {
				t.Fatalf("no request succeeded after a fault (ok=%d failed=%d)", ok, failed)
			}
		})
	}
}

// TestSlowLorisReaped: a client that sends a partial frame header and
// stalls is cut off by the per-connection read deadline instead of
// pinning a handler goroutine forever, and the stall is accounted as a
// malformed frame. The server keeps serving well-formed clients.
func TestSlowLorisReaped(t *testing.T) {
	addr, srv := startFaultServer(t, Config{ConnTimeout: 100 * time.Millisecond}, nil)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0, 0}); err != nil { // half a length prefix, then silence
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a half-written frame header")
	} else if isTimeout(err) {
		t.Fatal("server never closed the stalled connection")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled connection lingered %v", elapsed)
	}
	if got := srv.Statsz().MalformedFrames; got < 1 {
		t.Fatalf("malformed frames %d, want >= 1", got)
	}
	if err := oneWindow(addr, srv.cfg.Set.MBR()); err != nil {
		t.Fatalf("well-formed request after the slow loris: %v", err)
	}
}

// TestDripRequestReaped: a client dripping its request one byte per 50ms
// (via NewFaultyConn) can never finish a frame inside the 100ms conn
// deadline; the server drops it.
func TestDripRequestReaped(t *testing.T) {
	addr, srv := startFaultServer(t, Config{ConnTimeout: 100 * time.Millisecond}, nil)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := NewFaultyConn(raw, NetFault{Mode: NetFaultDrip, Stall: 50 * time.Millisecond})
	defer conn.Close()

	req, err := EncodeRequest(nil, Request{Op: OpWindow, Rect: srv.cfg.Set.MBR()})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- WriteFrame(conn, req) }()

	// The read unblocks when the server gives up on us; a full response
	// to a frame it cannot have received would be a bug.
	raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadAll(raw); err != nil && isTimeout(err) {
		t.Fatal("server never dropped the dripping connection")
	}
	select {
	case <-errc: // the drip write fails or finishes once the conn drops
	case <-time.After(10 * time.Second):
		t.Fatal("drip write never unblocked")
	}
}

// TestMalformedFrameAccounted: a syntactically complete frame with a
// garbage payload earns a CodeBadRequest response and a malformed-frame
// count, not a crash or a silent drop.
func TestMalformedFrameAccounted(t *testing.T) {
	addr, srv := startFaultServer(t, Config{}, nil)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, []byte{0xFF, 0xEE}); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(conn, MaxResponseFrame)
	if err != nil {
		t.Fatalf("reading error response: %v", err)
	}
	if _, err := DecodeResponse(payload); err == nil {
		t.Fatal("garbage frame got an ok response")
	} else if re, ok := err.(*RemoteError); !ok || re.Code != CodeBadRequest {
		t.Fatalf("got %v, want RemoteError CodeBadRequest", err)
	}
	if got := srv.Statsz().MalformedFrames; got < 1 {
		t.Fatalf("malformed frames %d, want >= 1", got)
	}
}
