package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"prtree/internal/dataset"
	"prtree/internal/workload"
)

// testServer builds a small sharded set and a Server over it. The binary
// listener is started on a loopback port; the caller gets its address.
func testServer(t *testing.T, cfg Config) (*Server, *Set, string) {
	t.Helper()
	items := dataset.Western(2000, 17)
	set := buildSet(t, items, 3, PartitionHilbert)
	cfg.Set = set
	srv := New(cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeBinary(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("ServeBinary returned %v after drain", err)
		}
	})
	return srv, set, lis.Addr().String()
}

func TestAdmissionUnit(t *testing.T) {
	a := newAdmission(2)
	if err := a.acquire("t1"); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire("t1"); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire("t1"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire: got %v, want ErrOverloaded", err)
	}
	// Caps are per tenant; the anonymous tenant shares one bucket.
	if err := a.acquire("t2"); err != nil {
		t.Fatalf("other tenant: %v", err)
	}
	if err := a.acquire(""); err != nil {
		t.Fatalf("anonymous: %v", err)
	}
	if err := a.acquire("default"); err != nil {
		t.Fatalf("default: %v", err)
	}
	if err := a.acquire(""); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("anonymous and \"default\" should share a bucket: got %v", err)
	}
	a.release("t1")
	if err := a.acquire("t1"); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if a.rejectedCount() != 2 {
		t.Errorf("rejected %d, want 2", a.rejectedCount())
	}
}

// TestAdmissionCapE2E holds one request in flight and checks the second
// same-tenant request is rejected with CodeOverloaded over the wire while
// another tenant still gets through.
func TestAdmissionCapE2E(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, set, addr := testServer(t, Config{TenantCap: 1})
	srv.testHook = func(req Request) {
		if req.Tenant == "slow" {
			entered <- struct{}{}
			<-release
		}
	}

	world := set.MBR()
	first := make(chan error, 1)
	go func() {
		cl, err := Dial(addr)
		if err != nil {
			first <- err
			return
		}
		defer cl.Close()
		_, err = cl.Do(Request{Op: OpWindow, Tenant: "slow", Rect: world})
		first <- err
	}()
	<-entered

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Do(Request{Op: OpWindow, Tenant: "slow", Rect: world})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != CodeOverloaded {
		t.Fatalf("same tenant beyond cap: got %v, want CodeOverloaded", err)
	}
	if _, err := cl.Do(Request{Op: OpWindow, Tenant: "other", Rect: world}); err != nil {
		t.Fatalf("other tenant: %v", err)
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("held request: %v", err)
	}
	if srv.Statsz().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", srv.Statsz().Rejected)
	}
}

// TestDeadlineE2E sends a request whose deadline expires while the test
// hook holds it (the hook runs after the deadline context is armed), so
// the traversal's first poll point aborts with CodeDeadline.
func TestDeadlineE2E(t *testing.T) {
	srv, set, addr := testServer(t, Config{})
	srv.testHook = func(req Request) {
		if req.DeadlineMillis != 0 {
			time.Sleep(time.Duration(req.DeadlineMillis+20) * time.Millisecond)
		}
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, err = cl.Do(Request{Op: OpWindow, Rect: set.MBR(), DeadlineMillis: 5})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != CodeDeadline {
		t.Fatalf("expired deadline: got %v, want CodeDeadline", err)
	}
	// Without a deadline the same query succeeds on the same connection.
	if _, err := cl.Do(Request{Op: OpWindow, Rect: set.MBR()}); err != nil {
		t.Fatalf("no deadline: %v", err)
	}
	if srv.Errors() == 0 {
		t.Error("deadline rejection not counted in Errors()")
	}
}

func TestRequestCtxClamp(t *testing.T) {
	srv := New(Config{DefaultDeadline: 100 * time.Millisecond, MaxDeadline: time.Second})
	check := func(millis uint32, wantLo, wantHi time.Duration) {
		t.Helper()
		ctx, cancel := srv.requestCtx(millis)
		defer cancel()
		dl, ok := ctx.Deadline()
		if !ok {
			t.Fatalf("millis=%d: no deadline", millis)
		}
		left := time.Until(dl)
		if left < wantLo || left > wantHi {
			t.Fatalf("millis=%d: deadline in %v, want [%v, %v]", millis, left, wantLo, wantHi)
		}
	}
	check(0, 50*time.Millisecond, 100*time.Millisecond)        // server default
	check(500, 400*time.Millisecond, 500*time.Millisecond)     // client-chosen
	check(60_000, 900*time.Millisecond, 1000*time.Millisecond) // clamped to max

	// No knobs at all: context has no deadline.
	bare := New(Config{})
	ctx, cancel := bare.requestCtx(0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero config grew a deadline")
	}
}

// TestGracefulDrain holds a request in flight, starts Shutdown, and
// checks: new requests on open connections get CodeShuttingDown, the held
// request still completes, and Shutdown returns clean.
func TestGracefulDrain(t *testing.T) {
	items := dataset.Western(2000, 17)
	set := buildSet(t, items, 3, PartitionHilbert)
	srv := New(Config{Set: set})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.testHook = func(req Request) {
		if req.Tenant == "slow" {
			entered <- struct{}{}
			<-release
		}
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeBinary(lis) }()
	addr := lis.Addr().String()

	held := make(chan error, 1)
	go func() {
		cl, err := Dial(addr)
		if err != nil {
			held <- err
			return
		}
		defer cl.Close()
		_, err = cl.Do(Request{Op: OpWindow, Tenant: "slow", Rect: set.MBR()})
		held <- err
	}()
	<-entered

	// A second connection established before the drain begins; a round
	// trip proves the server accepted it (a dial alone could still be
	// sitting in the listen queue when the listener closes).
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Do(Request{Op: OpStats}); err != nil {
		t.Fatal(err)
	}

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Shutdown(ctx)
	}()
	// Wait until the drain flag is up before probing.
	for !srv.Statsz().Draining {
		time.Sleep(time.Millisecond)
	}

	_, err = cl.Do(Request{Op: OpWindow, Rect: set.MBR()})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != CodeShuttingDown {
		t.Fatalf("during drain: got %v, want CodeShuttingDown", err)
	}

	close(release)
	if err := <-held; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("ServeBinary after drain: %v", err)
	}
	// Idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestDrainTimeout checks a request that outlives the drain context makes
// Shutdown report the context error instead of hanging.
func TestDrainTimeout(t *testing.T) {
	items := dataset.Western(1000, 3)
	set := buildSet(t, items, 2, PartitionHilbert)
	srv := New(Config{Set: set})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.testHook = func(Request) {
		entered <- struct{}{}
		<-release
	}
	dispatchDone := make(chan struct{})
	go func() {
		srv.dispatch(Request{Op: OpStats})
		close(dispatchDone)
	}()
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := srv.Shutdown(ctx)
	close(release)
	<-dispatchDone
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestBinaryE2E drives every op over real TCP and checks responses match
// direct Set queries.
func TestBinaryE2E(t *testing.T) {
	_, set, addr := testServer(t, Config{})
	ctx := context.Background()
	world := set.MBR()
	windows := workload.Squares(world, 0.01, 4, 3)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for _, w := range windows {
		got, err := cl.Window(w, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := set.Window(ctx, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertSameItems(t, "window", got, want)
	}

	gotN, err := cl.Nearest(0.5, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	wantN, _, err := set.Nearest(ctx, 0.5, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotN) != len(wantN) {
		t.Fatalf("nearest: %d results, want %d", len(gotN), len(wantN))
	}
	for i := range gotN {
		if gotN[i] != wantN[i] {
			t.Fatalf("nearest %d: %+v, want %+v", i, gotN[i], wantN[i])
		}
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 3 || int(st.Items) != set.Len() || st.MBR != world {
		t.Fatalf("stats %+v", st)
	}

	res, err := cl.Do(Request{Op: OpBatch, Rects: windows})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != len(windows) {
		t.Fatalf("batch: %d sets, want %d", len(res.Sets), len(windows))
	}
	for i, w := range windows {
		want, _, err := set.Window(ctx, w, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertSameItems(t, "batch set", res.Sets[i], want)
	}

	// k beyond the sanity cap is a bad request, not a giant allocation.
	_, err = cl.Do(Request{Op: OpNearest, K: MaxK + 1})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != CodeBadRequest {
		t.Fatalf("huge k: got %v, want CodeBadRequest", err)
	}
}

// TestHTTPE2E drives the JSON API: /query, /batch, /healthz, /statsz.
func TestHTTPE2E(t *testing.T) {
	srv, set, _ := testServer(t, Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	ctx := context.Background()
	world := set.MBR()
	w0 := workload.Squares(world, 0.01, 1, 5)[0]

	getJSON := func(path string, out interface{}) int {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	if code := getJSON("/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}

	var q struct {
		Count int `json:"count"`
		Items []struct {
			ID   uint32     `json:"id"`
			Rect [4]float64 `json:"rect"`
		} `json:"items"`
	}
	path := fmt.Sprintf("/query?op=window&rect=%s", url.QueryEscape(
		fmt.Sprintf("%v,%v,%v,%v", w0.MinX, w0.MinY, w0.MaxX, w0.MaxY)))
	if code := getJSON(path, &q); code != http.StatusOK {
		t.Fatalf("window: %d", code)
	}
	want, _, err := set.Window(ctx, w0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Count != len(want) || len(q.Items) != len(want) {
		t.Fatalf("window count %d, want %d", q.Count, len(want))
	}
	for i, it := range q.Items {
		if it.ID != want[i].ID {
			t.Fatalf("item %d id %d, want %d", i, it.ID, want[i].ID)
		}
	}

	var nn struct {
		Items []struct {
			ID    uint32   `json:"id"`
			Dist2 *float64 `json:"dist2"`
		} `json:"items"`
	}
	if code := getJSON("/query?op=nearest&x=0.5&y=0.5&k=5", &nn); code != http.StatusOK {
		t.Fatalf("nearest: %d", code)
	}
	wantN, _, err := set.Nearest(ctx, 0.5, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn.Items) != len(wantN) {
		t.Fatalf("nearest %d items, want %d", len(nn.Items), len(wantN))
	}
	for i, it := range nn.Items {
		if it.ID != wantN[i].Item.ID || it.Dist2 == nil || *it.Dist2 != wantN[i].Dist2 {
			t.Fatalf("nearest %d: %+v, want %+v", i, it, wantN[i])
		}
	}

	// Bad requests are 400s.
	for _, p := range []string{"/query?op=window&rect=1,2,3", "/query?op=tango", "/query?op=nearest&x=a&y=0&k=1"} {
		if code := getJSON(p, nil); code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", p, code)
		}
	}

	// Batch POST.
	body := fmt.Sprintf(`{"rects": [[%v,%v,%v,%v]]}`, w0.MinX, w0.MinY, w0.MaxX, w0.MaxY)
	resp, err := http.Post(hs.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if batch.Count != len(want) {
		t.Fatalf("batch count %d, want %d", batch.Count, len(want))
	}

	// /statsz reflects the traffic above.
	var sz Statsz
	if code := getJSON("/statsz", &sz); code != http.StatusOK {
		t.Fatalf("/statsz: %d", code)
	}
	if sz.Shards != 3 || sz.Items != set.Len() || sz.Served == 0 {
		t.Fatalf("statsz %+v", sz)
	}
	wstats, ok := sz.Endpoints["window"]
	if !ok || wstats.Count == 0 {
		t.Fatalf("no window endpoint stats: %+v", sz.Endpoints)
	}
	if _, ok := sz.Endpoints["nearest"]; !ok {
		t.Fatal("no nearest endpoint stats")
	}
}

func TestHistogram(t *testing.T) {
	var h histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		// All mass in one bucket: any quantile lands within its bounds,
		// which grow by 1.5x per bucket.
		if got < time.Millisecond/2 || got > 2*time.Millisecond {
			t.Errorf("q%.2f = %v, want ~1ms", q, got)
		}
	}
	if m := h.Mean(); m != time.Millisecond {
		t.Errorf("mean %v, want 1ms", m)
	}
}

// TestConcurrentLoad smokes the whole stack with the load generator.
func TestConcurrentLoad(t *testing.T) {
	srv, set, addr := testServer(t, Config{TenantCap: 64})
	rects := workload.Squares(set.MBR(), 0.005, 16, 13)
	res, err := RunLoad(LoadOptions{Addr: addr, Clients: 8, Requests: 200, Rects: rects, Tenant: "load"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d load errors", res.Errors)
	}
	if res.QPS <= 0 || res.P99 < res.P50 {
		t.Fatalf("bad result %+v", res)
	}
	if srv.Served() < 200 {
		t.Fatalf("served %d, want >= 200", srv.Served())
	}
}
