package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prtree"
	"prtree/internal/geom"
	"prtree/internal/hilbert"
	"prtree/internal/storage"
)

// ManifestName is the manifest file inside a sharded index directory.
const ManifestName = "manifest.json"

// manifestVersion guards the manifest schema.
const manifestVersion = 1

// Partitioning schemes for Build.
const (
	// PartitionHilbert orders items along a 2D Hilbert curve of their
	// centers and cuts the order into equal-count contiguous runs: shards
	// are spatially coherent without any grid tuning (the default).
	PartitionHilbert = "hilbert"
	// PartitionGrid tiles the world STR-style — ~sqrt(N) equal-count
	// vertical slabs, each cut into equal-count cells by Y — so shard
	// boundaries are axis-parallel.
	PartitionGrid = "grid"
)

// Manifest describes a sharded index directory: which files hold the
// shards and how they were built. prtool shard writes it; Open reads it.
type Manifest struct {
	Version   int         `json:"version"`
	Partition string      `json:"partition"`
	Loader    string      `json:"loader"`
	Layout    string      `json:"layout"`
	BlockSize int         `json:"block_size"`
	Items     int         `json:"items"`
	Shards    []ShardInfo `json:"shards"`
}

// ShardInfo is one shard's manifest entry.
type ShardInfo struct {
	File  string `json:"file"`
	Items int    `json:"items"`
}

// BuildOptions tunes Build.
type BuildOptions struct {
	// Shards is the shard count (default 4). It is clamped to the item
	// count so no shard is empty.
	Shards int
	// Partition selects PartitionHilbert (default) or PartitionGrid.
	Partition string
	// Loader bulk-loads each shard. The zero value is prtree.Hilbert
	// (the Loader enum's first member); prtool shard defaults to PR.
	Loader prtree.Loader
	// Layout, BlockSize and MemoryItems pass through to prtree.Options.
	Layout      prtree.PageLayout
	BlockSize   int
	MemoryItems int
	// Parallelism bounds each shard's bulk-load pipeline.
	Parallelism int
}

// Build partitions items and bulk-loads one file-backed tree per
// partition into dir (created if absent), then writes the manifest. Every
// item lands in exactly one shard, so scatter-gather query results over
// the set equal the same dataset in a single tree.
func Build(dir string, items []geom.Item, opt BuildOptions) (*Manifest, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("serve: cannot shard an empty dataset")
	}
	if opt.Shards <= 0 {
		opt.Shards = 4
	}
	if opt.Shards > len(items) {
		opt.Shards = len(items)
	}
	if opt.Partition == "" {
		opt.Partition = PartitionHilbert
	}
	var parts [][]geom.Item
	switch opt.Partition {
	case PartitionHilbert:
		parts = partitionHilbert(items, opt.Shards)
	case PartitionGrid:
		parts = partitionGrid(items, opt.Shards)
	default:
		return nil, fmt.Errorf("serve: unknown partition %q (want %s or %s)",
			opt.Partition, PartitionHilbert, PartitionGrid)
	}
	for i, part := range parts {
		if len(part) == 0 {
			return nil, fmt.Errorf("serve: partition produced empty shard %d of %d", i, len(parts))
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	man := &Manifest{
		Version:   manifestVersion,
		Partition: opt.Partition,
		Loader:    opt.Loader.String(),
		Layout:    layoutName(opt.Layout),
		BlockSize: opt.BlockSize,
		Items:     len(items),
	}
	topts := &prtree.Options{
		BlockSize:   opt.BlockSize,
		Layout:      opt.Layout,
		MemoryItems: opt.MemoryItems,
		Parallelism: opt.Parallelism,
	}
	for i, part := range parts {
		name := fmt.Sprintf("shard-%03d.pr", i)
		tree, err := prtree.Create(filepath.Join(dir, name), topts)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		if err := tree.BulkLoad(opt.Loader, part); err != nil {
			tree.Close()
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		if err := tree.Close(); err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		man.Shards = append(man.Shards, ShardInfo{File: name, Items: len(part)})
	}
	if err := writeManifest(dir, man); err != nil {
		return nil, err
	}
	return man, nil
}

// writeManifest persists the manifest atomically (write + rename).
func writeManifest(dir string, man *Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

func layoutName(l prtree.PageLayout) string {
	if l == prtree.LayoutCompressed {
		return "compressed"
	}
	return "raw"
}

// partitionHilbert cuts the Hilbert-order of item centers into n
// equal-count contiguous runs. Ties (identical centers) break by ID so
// the partition is deterministic for any input order.
func partitionHilbert(items []geom.Item, n int) [][]geom.Item {
	world := geom.ItemsMBR(items)
	q := hilbert.NewQuantizer2D(world, 16)
	type keyed struct {
		key uint64
		it  geom.Item
	}
	ks := make([]keyed, len(items))
	for i, it := range items {
		ks[i] = keyed{key: q.CenterKey(it.Rect), it: it}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].key != ks[j].key {
			return ks[i].key < ks[j].key
		}
		return ks[i].it.ID < ks[j].it.ID
	})
	sorted := make([]geom.Item, len(ks))
	for i, k := range ks {
		sorted[i] = k.it
	}
	return chunks(sorted, n)
}

// partitionGrid tiles by ~sqrt(n) equal-count X-slabs, each cut into
// equal-count cells by Y, yielding exactly n non-empty tiles.
func partitionGrid(items []geom.Item, n int) [][]geom.Item {
	sorted := make([]geom.Item, len(items))
	copy(sorted, items)
	centerLess := func(axis int) func(a, b geom.Item) bool {
		return func(a, b geom.Item) bool {
			var ca, cb float64
			if axis == 0 {
				ca, cb = a.Rect.MinX+a.Rect.MaxX, b.Rect.MinX+b.Rect.MaxX
			} else {
				ca, cb = a.Rect.MinY+a.Rect.MaxY, b.Rect.MinY+b.Rect.MaxY
			}
			if ca != cb {
				return ca < cb
			}
			return a.ID < b.ID
		}
	}
	lessX, lessY := centerLess(0), centerLess(1)
	sort.Slice(sorted, func(i, j int) bool { return lessX(sorted[i], sorted[j]) })
	cols := int(math.Sqrt(float64(n)))
	if cols < 1 {
		cols = 1
	}
	slabs := chunksWeighted(sorted, cols, n)
	var out [][]geom.Item
	for i, slab := range slabs {
		rows := (n / cols)
		if i < n%cols {
			rows++
		}
		sort.Slice(slab, func(a, b int) bool { return lessY(slab[a], slab[b]) })
		out = append(out, chunks(slab, rows)...)
	}
	return out
}

// chunks splits sorted into n contiguous near-equal runs (never empty:
// callers guarantee n <= len(sorted)).
func chunks(sorted []geom.Item, n int) [][]geom.Item {
	out := make([][]geom.Item, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		size := len(sorted) / n
		if i < len(sorted)%n {
			size++
		}
		out = append(out, sorted[start:start+size])
		start += size
	}
	return out
}

// chunksWeighted splits sorted into cols runs whose sizes are proportional
// to the number of tiles each run will be cut into (n tiles total), so
// every final tile holds a near-equal item count.
func chunksWeighted(sorted []geom.Item, cols, n int) [][]geom.Item {
	out := make([][]geom.Item, 0, cols)
	start, tilesDone := 0, 0
	for i := 0; i < cols; i++ {
		rows := n / cols
		if i < n%cols {
			rows++
		}
		tilesDone += rows
		end := len(sorted) * tilesDone / n
		if end < start+rows { // every tile must get at least one item
			end = start + rows
		}
		if i == cols-1 || end > len(sorted) {
			end = len(sorted)
		}
		out = append(out, sorted[start:end])
		start = end
	}
	return out
}

// OpenOptions tunes Open.
type OpenOptions struct {
	// CachePages is the global page-cache budget shared by the whole set:
	// it is split evenly across the shards' lock-striped pagers, so total
	// cached pages never exceed the budget regardless of shard count.
	// 0 or negative means unbounded (every page stays resident).
	CachePages int
	// Policy selects the bounded-cache eviction policy (lru or s3fifo).
	Policy prtree.EvictionPolicy
	// Prefetch enables structure-aware read-ahead on every shard.
	Prefetch bool
	// Mmap serves shard reads through read-only memory mappings where the
	// platform supports it.
	Mmap bool

	// MaxRecoveries caps reopen attempts per quarantine before the shard
	// is declared permanently failed (default 5; negative retries
	// forever).
	MaxRecoveries int
	// RecoveryBackoff is the supervisor's initial retry delay (default
	// 100ms); each failed reopen doubles it, with jitter, up to
	// RecoveryMaxBackoff (default 10s).
	RecoveryBackoff    time.Duration
	RecoveryMaxBackoff time.Duration

	// FaultShard and FaultReadsAfter are the chaos knobs behind
	// prtreeserve -faultshard/-faultreads: with FaultReadsAfter > 0, shard
	// FaultShard is opened over a fault-injecting backend that panics
	// (wrapping storage.ErrInjectedFault, exactly like a real checksum
	// mismatch) on its FaultReadsAfter-th page read. The fault arms on the
	// first open only — the recovery supervisor reopens the shard clean —
	// so one injected failure exercises the whole quarantine → recover →
	// restore cycle.
	FaultShard      int
	FaultReadsAfter int64

	// wrapShard generalizes the chaos knobs for tests: when set, every
	// (re)open of shard idx routes its backend through this hook. attempt
	// is 0 for the initial Open and counts recovery reopens from 1.
	wrapShard func(idx, attempt int, b prtree.Backend) prtree.Backend
}

// normalized fills in recovery defaults.
func (o OpenOptions) normalized() OpenOptions {
	if o.MaxRecoveries == 0 {
		o.MaxRecoveries = 5
	}
	if o.RecoveryBackoff <= 0 {
		o.RecoveryBackoff = 100 * time.Millisecond
	}
	if o.RecoveryMaxBackoff <= 0 {
		o.RecoveryMaxBackoff = 10 * time.Second
	}
	if o.FaultReadsAfter > 0 && o.wrapShard == nil {
		target, after := o.FaultShard, o.FaultReadsAfter
		o.wrapShard = func(idx, attempt int, b prtree.Backend) prtree.Backend {
			if idx != target || attempt > 0 {
				return b
			}
			f := storage.NewFaulty(b, storage.FaultError, after)
			f.InjectReads(true)
			return f
		}
	}
	return o
}

// ShardState is one shard's position in the rotation.
type ShardState int32

const (
	// ShardHealthy shards serve queries.
	ShardHealthy ShardState = iota
	// ShardQuarantined shards are out of rotation after a backend error
	// or checksum failure; a supervisor goroutine is trying to bring them
	// back (close → reopen → WAL replay → scrub).
	ShardQuarantined
	// ShardFailed shards exhausted MaxRecoveries reopen attempts and stay
	// out of rotation until the set is reopened.
	ShardFailed
)

func (s ShardState) String() string {
	switch s {
	case ShardHealthy:
		return "healthy"
	case ShardQuarantined:
		return "quarantined"
	case ShardFailed:
		return "failed"
	default:
		return fmt.Sprintf("ShardState(%d)", int32(s))
	}
}

// Health is the set's aggregate serving state, the /healthz answer.
type Health int

const (
	// HealthOK means every shard is in rotation.
	HealthOK Health = iota
	// HealthDegraded means queries still run but at least one shard is
	// out of rotation: results may be partial (and say so).
	HealthDegraded
	// HealthDown means no shard is in rotation; queries fail with
	// ErrUnavailable.
	HealthDown
)

func (h Health) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthDown:
		return "down"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// ErrUnavailable reports a scatter-gather query with no healthy shard
// left to run on. The binary protocol maps it to CodeUnavailable and HTTP
// to 503 Service Unavailable.
var ErrUnavailable = errors.New("serve: no healthy shards")

// errShardDown marks a leg skipped because its shard is out of rotation.
var errShardDown = errors.New("serve: shard is out of rotation")

// shard is one tree plus its failure-isolation state. The tree pointer is
// guarded by mu (read-held for the duration of every query leg, so the
// supervisor can never swap a tree out from under a running traversal);
// the state word and counters are atomics so health checks and stats
// never contend with queries.
type shard struct {
	idx  int
	file string

	mu   sync.RWMutex
	tree *prtree.Tree // nil while out of rotation

	state       atomic.Int32 // ShardState
	errs        atomic.Uint64
	quarantines atomic.Uint64
	recoveries  atomic.Uint64
	attempts    atomic.Uint64

	lastErrMu sync.Mutex
	lastErr   string
}

func (sh *shard) setLastErr(err error) {
	sh.lastErrMu.Lock()
	sh.lastErr = err.Error()
	sh.lastErrMu.Unlock()
}

func (sh *shard) lastErrString() string {
	sh.lastErrMu.Lock()
	defer sh.lastErrMu.Unlock()
	return sh.lastErr
}

// Set is an open sharded index: N file-backed trees queried scatter-gather
// with results merged into a deterministic order. All read methods are
// safe for any number of concurrent callers.
//
// The set survives shard failures: a leg that hits a backend error or
// checksum panic quarantines its shard instead of failing the query, the
// response reports which shards are missing (Partial), and a background
// supervisor works to bring the shard back — see OpenOptions'
// MaxRecoveries/RecoveryBackoff knobs and the Health method.
type Set struct {
	dir      string
	manifest Manifest
	shards   []*shard
	items    int
	mbr      geom.Rect
	opt      OpenOptions
	perCache int // per-shard cache budget derived from CachePages

	done      chan struct{}
	superWG   sync.WaitGroup
	lifecycle sync.Mutex // guards closed + supervisor spawning vs Close
	closed    bool
}

// shardOptions builds the prtree.Options one shard (re)opens with.
func (s *Set) shardOptions(idx, attempt int) *prtree.Options {
	o := &prtree.Options{
		CacheCapacity: s.perCache,
		Eviction:      s.opt.Policy,
		Prefetch:      s.opt.Prefetch,
		Mmap:          s.opt.Mmap,
	}
	if hook := s.opt.wrapShard; hook != nil {
		o.WrapBackend = func(b prtree.Backend) prtree.Backend { return hook(idx, attempt, b) }
	}
	return o
}

// Open opens the sharded index directory dir. The manifest names the
// shard files; opt controls caching (one budget across all shards),
// eviction policy, prefetch, mmap, and the failure-isolation knobs.
func Open(dir string, opt OpenOptions) (*Set, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("serve: reading manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("serve: parsing manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("serve: manifest version %d (want %d)", man.Version, manifestVersion)
	}
	if len(man.Shards) == 0 {
		return nil, fmt.Errorf("serve: manifest lists no shards")
	}
	perShard := -1 // unbounded
	if opt.CachePages > 0 {
		perShard = opt.CachePages / len(man.Shards)
		if perShard < 1 {
			perShard = 1
		}
	}
	s := &Set{
		dir: dir, manifest: man, mbr: geom.EmptyRect(),
		opt: opt.normalized(), perCache: perShard,
		done: make(chan struct{}),
	}
	for i, si := range man.Shards {
		sh := &shard{idx: i, file: si.File}
		tree, mbr, n, err := openShardTree(filepath.Join(dir, si.File), s.shardOptions(i, 0))
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("serve: opening shard %s: %w", si.File, err)
		}
		sh.tree = tree
		s.shards = append(s.shards, sh)
		s.items += n
		if n > 0 {
			s.mbr = s.mbr.Union(mbr)
		}
	}
	return s, nil
}

// openShardTree opens one shard file and touches its item count and MBR
// (the root page) under a recover, so a shard corrupt enough to panic on
// its very first read fails Open with an error instead of killing the
// process.
func openShardTree(path string, o *prtree.Options) (t *prtree.Tree, mbr geom.Rect, n int, err error) {
	defer func() {
		if p := recover(); p != nil {
			if t != nil {
				closeTree(t)
				t = nil
			}
			err = panicToError(-1, p)
		}
	}()
	t, err = prtree.Open(path, o)
	if err != nil {
		return nil, geom.EmptyRect(), 0, err
	}
	n = t.Len()
	if n > 0 {
		mbr = t.MBR()
	}
	return t, mbr, n, nil
}

// Close stops the recovery supervisors, waits them out, and closes every
// shard, reporting the first error. Idempotent.
func (s *Set) Close() error {
	s.lifecycle.Lock()
	if s.closed {
		s.lifecycle.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	s.lifecycle.Unlock()
	s.superWG.Wait()
	var first error
	for _, sh := range s.shards {
		sh.mu.Lock()
		t := sh.tree
		sh.tree = nil
		sh.mu.Unlock()
		if t == nil {
			continue
		}
		if err := closeTree(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// closeTree closes t, converting a panic out of Close (a quarantined
// backend can be arbitrarily broken) into an error.
func closeTree(t *prtree.Tree) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = panicToError(0, p)
		}
	}()
	return t.Close()
}

// Shards returns the shard count.
func (s *Set) Shards() int { return len(s.shards) }

// Health reports the set's aggregate serving state.
func (s *Set) Health() Health {
	healthy := 0
	for _, sh := range s.shards {
		if ShardState(sh.state.Load()) == ShardHealthy {
			healthy++
		}
	}
	switch {
	case healthy == len(s.shards):
		return HealthOK
	case healthy == 0:
		return HealthDown
	default:
		return HealthDegraded
	}
}

// Len returns the total item count across shards.
func (s *Set) Len() int { return s.items }

// MBR returns the bounding box of the whole set.
func (s *Set) MBR() geom.Rect { return s.mbr }

// Manifest returns the manifest the set was opened from.
func (s *Set) Manifest() Manifest { return s.manifest }

// Partial reports which shards contributed nothing to a scatter-gather
// result. The zero value means a complete result.
type Partial struct {
	// Failed holds the indices of missing shards in ascending order.
	Failed []uint32
}

// Degraded reports whether the result is missing at least one shard.
func (p Partial) Degraded() bool { return len(p.Failed) > 0 }

// panicToError converts a recovered query-leg panic — a checksum
// mismatch, an injected fault, any backend failure surfacing on the read
// path — into an error.
func panicToError(i int, p interface{}) error {
	if err, ok := p.(error); ok {
		return fmt.Errorf("serve: shard %d: %w", i, err)
	}
	return fmt.Errorf("serve: shard %d: panic: %v", i, p)
}

// leg runs fn against shard i if it is in rotation, converting read-path
// panics into errors. The shard lock is read-held for the whole leg so
// the recovery supervisor never swaps the tree under a live traversal.
func (s *Set) leg(i int, fn func(i int, t *prtree.Tree) error) (err error) {
	sh := s.shards[i]
	if ShardState(sh.state.Load()) != ShardHealthy {
		return errShardDown
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.tree == nil {
		return errShardDown
	}
	defer func() {
		if p := recover(); p != nil {
			err = panicToError(i, p)
		}
	}()
	return fn(i, sh.tree)
}

// scatter runs fn once per shard concurrently and returns the per-shard
// errors for resolve to classify.
func (s *Set) scatter(fn func(i int, t *prtree.Tree) error) []error {
	errs := make([]error, len(s.shards))
	if len(s.shards) == 1 {
		errs[0] = s.leg(0, fn)
		return errs
	}
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.leg(i, fn)
		}(i)
	}
	wg.Wait()
	return errs
}

// resolve classifies the per-shard leg errors of one query. Context
// errors — the client hung up or its deadline expired — propagate as the
// query's error and never count against a shard. Real backend failures
// quarantine the shard (kicking off its recovery supervisor) and degrade
// the response instead of failing it; only when every shard is out does
// the query fail, with ErrUnavailable.
func (s *Set) resolve(errs []error) (Partial, error) {
	var p Partial
	var ctxErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		p.Failed = append(p.Failed, uint32(i))
		if errors.Is(err, errShardDown) {
			continue // already out of rotation, nothing new to learn
		}
		s.quarantine(i, err)
	}
	if ctxErr != nil {
		return Partial{}, ctxErr
	}
	if len(p.Failed) == len(s.shards) && len(s.shards) > 0 {
		return Partial{}, fmt.Errorf("%w: all %d shards out of rotation", ErrUnavailable, len(s.shards))
	}
	return p, nil
}

// quarantine takes shard i out of rotation after a real failure and
// spawns its recovery supervisor. Only the first caller transitions the
// shard; concurrent legs that lost the race just add to the error count.
func (s *Set) quarantine(i int, cause error) {
	sh := s.shards[i]
	sh.errs.Add(1)
	sh.setLastErr(cause)
	if !sh.state.CompareAndSwap(int32(ShardHealthy), int32(ShardQuarantined)) {
		return
	}
	sh.quarantines.Add(1)
	s.lifecycle.Lock()
	if s.closed {
		s.lifecycle.Unlock()
		return
	}
	s.superWG.Add(1)
	s.lifecycle.Unlock()
	go s.supervise(sh)
}

// supervise is the per-quarantine recovery loop: close the broken tree,
// reopen it (replaying any WAL tail), scrub it, and put the shard back in
// rotation — retrying with capped exponential backoff plus jitter, and
// declaring the shard permanently failed after MaxRecoveries attempts.
func (s *Set) supervise(sh *shard) {
	defer s.superWG.Done()
	backoff := s.opt.RecoveryBackoff
	for attempt := 1; ; attempt++ {
		// Jittered sleep, aborted by Close. Jitter keeps a fleet of
		// supervisors (many shards failing at once) from thundering back.
		d := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		select {
		case <-s.done:
			return
		case <-time.After(d):
		}
		sh.attempts.Add(1)
		err := s.reopenShard(sh, attempt)
		if err == nil {
			sh.recoveries.Add(1)
			sh.state.Store(int32(ShardHealthy))
			return
		}
		sh.setLastErr(err)
		if s.opt.MaxRecoveries >= 0 && attempt >= s.opt.MaxRecoveries {
			sh.state.Store(int32(ShardFailed))
			return
		}
		backoff *= 2
		if backoff > s.opt.RecoveryMaxBackoff {
			backoff = s.opt.RecoveryMaxBackoff
		}
	}
}

// reopenShard swaps the shard's broken tree for a freshly opened one:
// close (best-effort — the old backend may be arbitrarily broken), reopen
// (prtree.Open replays the WAL), then scrub every page checksum and walk
// the structure before declaring it fit to serve. Write-held for the whole
// swap so no query leg observes a half-open tree.
func (s *Set) reopenShard(sh *shard, attempt int) (err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	defer func() {
		if p := recover(); p != nil {
			err = panicToError(sh.idx, p)
		}
	}()
	if old := sh.tree; old != nil {
		sh.tree = nil
		closeTree(old) // best-effort; the reopen below decides health
	}
	tree, err := prtree.Open(filepath.Join(s.dir, sh.file), s.shardOptions(sh.idx, attempt))
	if err != nil {
		return err
	}
	if err := tree.CheckPages(); err != nil {
		closeTree(tree)
		return err
	}
	if err := tree.Validate(); err != nil {
		closeTree(tree)
		return err
	}
	sh.tree = tree
	return nil
}

// sortItems puts gathered results into the set's deterministic order:
// ascending (ID, MinX, MinY, MaxX, MaxY).
func sortItems(items []geom.Item) {
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Rect.MinX != b.Rect.MinX {
			return a.Rect.MinX < b.Rect.MinX
		}
		if a.Rect.MinY != b.Rect.MinY {
			return a.Rect.MinY < b.Rect.MinY
		}
		if a.Rect.MaxX != b.Rect.MaxX {
			return a.Rect.MaxX < b.Rect.MaxX
		}
		return a.Rect.MaxY < b.Rect.MaxY
	})
}

// gather collects one query across every healthy shard and merges the
// results in deterministic order, applying limit after the merge. The
// returned Partial lists shards missing from the result.
func (s *Set) gather(ctx context.Context, build func() prtree.Query, limit int) ([]geom.Item, Partial, error) {
	perShard := make([][]geom.Item, len(s.shards))
	errs := s.scatter(func(i int, t *prtree.Tree) error {
		q := build().WithContext(ctx)
		if limit > 0 {
			// Each shard can satisfy at most the whole limit; the merge
			// trims the union deterministically below.
			q = q.WithLimit(limit)
		}
		out, err := t.Collect(q)
		perShard[i] = out
		return err
	})
	p, err := s.resolve(errs)
	if err != nil {
		return nil, Partial{}, err
	}
	for _, i := range p.Failed {
		perShard[i] = nil // a failed leg contributes nothing, even partially
	}
	n := 0
	for _, part := range perShard {
		n += len(part)
	}
	merged := make([]geom.Item, 0, n)
	for _, part := range perShard {
		merged = append(merged, part...)
	}
	sortItems(merged)
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged, p, nil
}

// Window reports every item intersecting r, merged across shards into
// ascending ID order. limit <= 0 means unlimited; with a limit the first
// `limit` items of the merged order are returned.
func (s *Set) Window(ctx context.Context, r geom.Rect, limit int) ([]geom.Item, Partial, error) {
	return s.gather(ctx, func() prtree.Query { return prtree.Window(r) }, limit)
}

// Contained reports every item fully contained in r.
func (s *Set) Contained(ctx context.Context, r geom.Rect, limit int) ([]geom.Item, Partial, error) {
	return s.gather(ctx, func() prtree.Query { return prtree.Contained(r) }, limit)
}

// Point reports every item containing the point (x, y).
func (s *Set) Point(ctx context.Context, x, y float64, limit int) ([]geom.Item, Partial, error) {
	return s.gather(ctx, func() prtree.Query { return prtree.Point(x, y) }, limit)
}

// Nearest returns the k items closest to (x, y) across all healthy
// shards, in ascending (distance, ID) order — exactly the single-tree
// result when the set is whole: each shard reports its local top k and
// the merge keeps the global top k under the tree's own deterministic
// tie-breaking.
func (s *Set) Nearest(ctx context.Context, x, y float64, k int) ([]Neighbor, Partial, error) {
	if k <= 0 {
		return nil, Partial{}, nil
	}
	perShard := make([][]prtree.Neighbor, len(s.shards))
	errs := s.scatter(func(i int, t *prtree.Tree) error {
		out, err := t.CollectNearest(prtree.Nearest(x, y, k).WithContext(ctx))
		perShard[i] = out
		return err
	})
	p, err := s.resolve(errs)
	if err != nil {
		return nil, Partial{}, err
	}
	for _, i := range p.Failed {
		perShard[i] = nil
	}
	var merged []Neighbor
	for _, part := range perShard {
		for _, nb := range part {
			merged = append(merged, Neighbor{Item: nb.Item, Dist2: nb.Dist2})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Dist2 != merged[j].Dist2 {
			return merged[i].Dist2 < merged[j].Dist2
		}
		return merged[i].Item.ID < merged[j].Item.ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, p, nil
}

// Batch runs every window query and returns per-query merged results,
// indexed like rects. Shards process the whole batch concurrently; a
// shard failure drops that shard from every query of the batch (reported
// once in the Partial).
func (s *Set) Batch(ctx context.Context, rects []geom.Rect, limit int) ([][]geom.Item, Partial, error) {
	perShard := make([][][]geom.Item, len(s.shards))
	errs := s.scatter(func(i int, t *prtree.Tree) error {
		outs := make([][]geom.Item, len(rects))
		for qi, r := range rects {
			q := prtree.Window(r).WithContext(ctx)
			if limit > 0 {
				q = q.WithLimit(limit)
			}
			out, err := t.Collect(q)
			if err != nil {
				return err
			}
			outs[qi] = out
		}
		perShard[i] = outs
		return nil
	})
	p, err := s.resolve(errs)
	if err != nil {
		return nil, Partial{}, err
	}
	for _, i := range p.Failed {
		perShard[i] = nil
	}
	out := make([][]geom.Item, len(rects))
	for qi := range rects {
		var merged []geom.Item
		for si := range perShard {
			if perShard[si] == nil {
				continue
			}
			merged = append(merged, perShard[si][qi]...)
		}
		sortItems(merged)
		if limit > 0 && len(merged) > limit {
			merged = merged[:limit]
		}
		out[qi] = merged
	}
	return out, p, nil
}

// ShardStatus is one shard's health record in SetStats.
type ShardStatus struct {
	File        string
	State       ShardState
	Errors      uint64 // query legs that failed against this shard
	Quarantines uint64 // healthy → quarantined transitions
	Recoveries  uint64 // quarantined → healthy transitions
	Attempts    uint64 // reopen attempts by the supervisor
	LastErr     string
	Snapshot    prtree.SnapshotStats // storage epoch state (online-compaction machinery)
}

// SetStats aggregates the set's I/O, cache and health counters.
type SetStats struct {
	Shards  int
	Healthy int
	Items   int
	IO      prtree.IOStats
	Cache   prtree.CacheStats
	Status  []ShardStatus
}

// Stats sums the per-shard backend and pager counters and snapshots each
// shard's health record. The cache capacity reported is the summed
// per-shard budget of the shards currently in rotation; the policy is the
// shared one.
func (s *Set) Stats() SetStats {
	st := SetStats{Shards: len(s.shards), Items: s.items}
	first := true
	for _, sh := range s.shards {
		status := ShardStatus{
			File:        sh.file,
			State:       ShardState(sh.state.Load()),
			Errors:      sh.errs.Load(),
			Quarantines: sh.quarantines.Load(),
			Recoveries:  sh.recoveries.Load(),
			Attempts:    sh.attempts.Load(),
			LastErr:     sh.lastErrString(),
		}
		if status.State == ShardHealthy {
			st.Healthy++
		}
		sh.mu.RLock()
		t := sh.tree
		if t == nil {
			sh.mu.RUnlock()
			st.Status = append(st.Status, status)
			continue
		}
		status.Snapshot = t.SnapshotStats()
		st.Status = append(st.Status, status)
		io := t.IOStats()
		st.IO.Reads += io.Reads
		st.IO.Writes += io.Writes
		st.IO.PrefetchReads += io.PrefetchReads
		cs := t.CacheStats()
		sh.mu.RUnlock()
		st.Cache.Hits += cs.Hits
		st.Cache.Misses += cs.Misses
		st.Cache.Evictions += cs.Evictions
		st.Cache.PrefetchIssued += cs.PrefetchIssued
		st.Cache.PrefetchUsed += cs.PrefetchUsed
		st.Cache.Resident += cs.Resident
		if first {
			st.Cache.Policy = cs.Policy
			st.Cache.Capacity = cs.Capacity
			first = false
		} else if cs.Capacity > 0 && st.Cache.Capacity > 0 {
			st.Cache.Capacity += cs.Capacity
		}
	}
	return st
}
