package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"prtree"
	"prtree/internal/geom"
	"prtree/internal/hilbert"
)

// ManifestName is the manifest file inside a sharded index directory.
const ManifestName = "manifest.json"

// manifestVersion guards the manifest schema.
const manifestVersion = 1

// Partitioning schemes for Build.
const (
	// PartitionHilbert orders items along a 2D Hilbert curve of their
	// centers and cuts the order into equal-count contiguous runs: shards
	// are spatially coherent without any grid tuning (the default).
	PartitionHilbert = "hilbert"
	// PartitionGrid tiles the world STR-style — ~sqrt(N) equal-count
	// vertical slabs, each cut into equal-count cells by Y — so shard
	// boundaries are axis-parallel.
	PartitionGrid = "grid"
)

// Manifest describes a sharded index directory: which files hold the
// shards and how they were built. prtool shard writes it; Open reads it.
type Manifest struct {
	Version   int         `json:"version"`
	Partition string      `json:"partition"`
	Loader    string      `json:"loader"`
	Layout    string      `json:"layout"`
	BlockSize int         `json:"block_size"`
	Items     int         `json:"items"`
	Shards    []ShardInfo `json:"shards"`
}

// ShardInfo is one shard's manifest entry.
type ShardInfo struct {
	File  string `json:"file"`
	Items int    `json:"items"`
}

// BuildOptions tunes Build.
type BuildOptions struct {
	// Shards is the shard count (default 4). It is clamped to the item
	// count so no shard is empty.
	Shards int
	// Partition selects PartitionHilbert (default) or PartitionGrid.
	Partition string
	// Loader bulk-loads each shard. The zero value is prtree.Hilbert
	// (the Loader enum's first member); prtool shard defaults to PR.
	Loader prtree.Loader
	// Layout, BlockSize and MemoryItems pass through to prtree.Options.
	Layout      prtree.PageLayout
	BlockSize   int
	MemoryItems int
	// Parallelism bounds each shard's bulk-load pipeline.
	Parallelism int
}

// Build partitions items and bulk-loads one file-backed tree per
// partition into dir (created if absent), then writes the manifest. Every
// item lands in exactly one shard, so scatter-gather query results over
// the set equal the same dataset in a single tree.
func Build(dir string, items []geom.Item, opt BuildOptions) (*Manifest, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("serve: cannot shard an empty dataset")
	}
	if opt.Shards <= 0 {
		opt.Shards = 4
	}
	if opt.Shards > len(items) {
		opt.Shards = len(items)
	}
	if opt.Partition == "" {
		opt.Partition = PartitionHilbert
	}
	var parts [][]geom.Item
	switch opt.Partition {
	case PartitionHilbert:
		parts = partitionHilbert(items, opt.Shards)
	case PartitionGrid:
		parts = partitionGrid(items, opt.Shards)
	default:
		return nil, fmt.Errorf("serve: unknown partition %q (want %s or %s)",
			opt.Partition, PartitionHilbert, PartitionGrid)
	}
	for i, part := range parts {
		if len(part) == 0 {
			return nil, fmt.Errorf("serve: partition produced empty shard %d of %d", i, len(parts))
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	man := &Manifest{
		Version:   manifestVersion,
		Partition: opt.Partition,
		Loader:    opt.Loader.String(),
		Layout:    layoutName(opt.Layout),
		BlockSize: opt.BlockSize,
		Items:     len(items),
	}
	topts := &prtree.Options{
		BlockSize:   opt.BlockSize,
		Layout:      opt.Layout,
		MemoryItems: opt.MemoryItems,
		Parallelism: opt.Parallelism,
	}
	for i, part := range parts {
		name := fmt.Sprintf("shard-%03d.pr", i)
		tree, err := prtree.Create(filepath.Join(dir, name), topts)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		if err := tree.BulkLoad(opt.Loader, part); err != nil {
			tree.Close()
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		if err := tree.Close(); err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		man.Shards = append(man.Shards, ShardInfo{File: name, Items: len(part)})
	}
	if err := writeManifest(dir, man); err != nil {
		return nil, err
	}
	return man, nil
}

// writeManifest persists the manifest atomically (write + rename).
func writeManifest(dir string, man *Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

func layoutName(l prtree.PageLayout) string {
	if l == prtree.LayoutCompressed {
		return "compressed"
	}
	return "raw"
}

// partitionHilbert cuts the Hilbert-order of item centers into n
// equal-count contiguous runs. Ties (identical centers) break by ID so
// the partition is deterministic for any input order.
func partitionHilbert(items []geom.Item, n int) [][]geom.Item {
	world := geom.ItemsMBR(items)
	q := hilbert.NewQuantizer2D(world, 16)
	type keyed struct {
		key uint64
		it  geom.Item
	}
	ks := make([]keyed, len(items))
	for i, it := range items {
		ks[i] = keyed{key: q.CenterKey(it.Rect), it: it}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].key != ks[j].key {
			return ks[i].key < ks[j].key
		}
		return ks[i].it.ID < ks[j].it.ID
	})
	sorted := make([]geom.Item, len(ks))
	for i, k := range ks {
		sorted[i] = k.it
	}
	return chunks(sorted, n)
}

// partitionGrid tiles by ~sqrt(n) equal-count X-slabs, each cut into
// equal-count cells by Y, yielding exactly n non-empty tiles.
func partitionGrid(items []geom.Item, n int) [][]geom.Item {
	sorted := make([]geom.Item, len(items))
	copy(sorted, items)
	centerLess := func(axis int) func(a, b geom.Item) bool {
		return func(a, b geom.Item) bool {
			var ca, cb float64
			if axis == 0 {
				ca, cb = a.Rect.MinX+a.Rect.MaxX, b.Rect.MinX+b.Rect.MaxX
			} else {
				ca, cb = a.Rect.MinY+a.Rect.MaxY, b.Rect.MinY+b.Rect.MaxY
			}
			if ca != cb {
				return ca < cb
			}
			return a.ID < b.ID
		}
	}
	lessX, lessY := centerLess(0), centerLess(1)
	sort.Slice(sorted, func(i, j int) bool { return lessX(sorted[i], sorted[j]) })
	cols := int(math.Sqrt(float64(n)))
	if cols < 1 {
		cols = 1
	}
	slabs := chunksWeighted(sorted, cols, n)
	var out [][]geom.Item
	for i, slab := range slabs {
		rows := (n / cols)
		if i < n%cols {
			rows++
		}
		sort.Slice(slab, func(a, b int) bool { return lessY(slab[a], slab[b]) })
		out = append(out, chunks(slab, rows)...)
	}
	return out
}

// chunks splits sorted into n contiguous near-equal runs (never empty:
// callers guarantee n <= len(sorted)).
func chunks(sorted []geom.Item, n int) [][]geom.Item {
	out := make([][]geom.Item, 0, n)
	start := 0
	for i := 0; i < n; i++ {
		size := len(sorted) / n
		if i < len(sorted)%n {
			size++
		}
		out = append(out, sorted[start:start+size])
		start += size
	}
	return out
}

// chunksWeighted splits sorted into cols runs whose sizes are proportional
// to the number of tiles each run will be cut into (n tiles total), so
// every final tile holds a near-equal item count.
func chunksWeighted(sorted []geom.Item, cols, n int) [][]geom.Item {
	out := make([][]geom.Item, 0, cols)
	start, tilesDone := 0, 0
	for i := 0; i < cols; i++ {
		rows := n / cols
		if i < n%cols {
			rows++
		}
		tilesDone += rows
		end := len(sorted) * tilesDone / n
		if end < start+rows { // every tile must get at least one item
			end = start + rows
		}
		if i == cols-1 || end > len(sorted) {
			end = len(sorted)
		}
		out = append(out, sorted[start:end])
		start = end
	}
	return out
}

// OpenOptions tunes Open.
type OpenOptions struct {
	// CachePages is the global page-cache budget shared by the whole set:
	// it is split evenly across the shards' lock-striped pagers, so total
	// cached pages never exceed the budget regardless of shard count.
	// 0 or negative means unbounded (every page stays resident).
	CachePages int
	// Policy selects the bounded-cache eviction policy (lru or s3fifo).
	Policy prtree.EvictionPolicy
	// Prefetch enables structure-aware read-ahead on every shard.
	Prefetch bool
	// Mmap serves shard reads through read-only memory mappings where the
	// platform supports it.
	Mmap bool
}

// Set is an open sharded index: N file-backed trees queried scatter-gather
// with results merged into a deterministic order. All read methods are
// safe for any number of concurrent callers.
type Set struct {
	dir      string
	manifest Manifest
	trees    []*prtree.Tree
	items    int
	mbr      geom.Rect
}

// Open opens the sharded index directory dir. The manifest names the
// shard files; opt controls caching (one budget across all shards),
// eviction policy, prefetch and mmap.
func Open(dir string, opt OpenOptions) (*Set, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("serve: reading manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("serve: parsing manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("serve: manifest version %d (want %d)", man.Version, manifestVersion)
	}
	if len(man.Shards) == 0 {
		return nil, fmt.Errorf("serve: manifest lists no shards")
	}
	perShard := -1 // unbounded
	if opt.CachePages > 0 {
		perShard = opt.CachePages / len(man.Shards)
		if perShard < 1 {
			perShard = 1
		}
	}
	s := &Set{dir: dir, manifest: man, mbr: geom.EmptyRect()}
	for _, si := range man.Shards {
		tree, err := prtree.Open(filepath.Join(dir, si.File), &prtree.Options{
			CacheCapacity: perShard,
			Eviction:      opt.Policy,
			Prefetch:      opt.Prefetch,
			Mmap:          opt.Mmap,
		})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("serve: opening shard %s: %w", si.File, err)
		}
		s.trees = append(s.trees, tree)
		s.items += tree.Len()
		if tree.Len() > 0 {
			s.mbr = s.mbr.Union(tree.MBR())
		}
	}
	return s, nil
}

// Close closes every shard, reporting the first error.
func (s *Set) Close() error {
	var first error
	for _, t := range s.trees {
		if t == nil {
			continue
		}
		if err := t.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.trees = nil
	return first
}

// Shards returns the shard count.
func (s *Set) Shards() int { return len(s.trees) }

// Len returns the total item count across shards.
func (s *Set) Len() int { return s.items }

// MBR returns the bounding box of the whole set.
func (s *Set) MBR() geom.Rect { return s.mbr }

// Manifest returns the manifest the set was opened from.
func (s *Set) Manifest() Manifest { return s.manifest }

// scatter runs fn once per shard concurrently and returns the first error.
func (s *Set) scatter(fn func(i int, t *prtree.Tree) error) error {
	if len(s.trees) == 1 {
		return fn(0, s.trees[0])
	}
	var wg sync.WaitGroup
	errs := make([]error, len(s.trees))
	for i, t := range s.trees {
		wg.Add(1)
		go func(i int, t *prtree.Tree) {
			defer wg.Done()
			errs[i] = fn(i, t)
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sortItems puts gathered results into the set's deterministic order:
// ascending (ID, MinX, MinY, MaxX, MaxY).
func sortItems(items []geom.Item) {
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		if a.Rect.MinX != b.Rect.MinX {
			return a.Rect.MinX < b.Rect.MinX
		}
		if a.Rect.MinY != b.Rect.MinY {
			return a.Rect.MinY < b.Rect.MinY
		}
		if a.Rect.MaxX != b.Rect.MaxX {
			return a.Rect.MaxX < b.Rect.MaxX
		}
		return a.Rect.MaxY < b.Rect.MaxY
	})
}

// gather collects one query across every shard and merges the results in
// deterministic order, applying limit after the merge.
func (s *Set) gather(ctx context.Context, build func() prtree.Query, limit int) ([]geom.Item, error) {
	perShard := make([][]geom.Item, len(s.trees))
	err := s.scatter(func(i int, t *prtree.Tree) error {
		q := build().WithContext(ctx)
		if limit > 0 {
			// Each shard can satisfy at most the whole limit; the merge
			// trims the union deterministically below.
			q = q.WithLimit(limit)
		}
		out, err := t.Collect(q)
		perShard[i] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	n := 0
	for _, part := range perShard {
		n += len(part)
	}
	merged := make([]geom.Item, 0, n)
	for _, part := range perShard {
		merged = append(merged, part...)
	}
	sortItems(merged)
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	return merged, nil
}

// Window reports every item intersecting r, merged across shards into
// ascending ID order. limit <= 0 means unlimited; with a limit the first
// `limit` items of the merged order are returned.
func (s *Set) Window(ctx context.Context, r geom.Rect, limit int) ([]geom.Item, error) {
	return s.gather(ctx, func() prtree.Query { return prtree.Window(r) }, limit)
}

// Contained reports every item fully contained in r.
func (s *Set) Contained(ctx context.Context, r geom.Rect, limit int) ([]geom.Item, error) {
	return s.gather(ctx, func() prtree.Query { return prtree.Contained(r) }, limit)
}

// Point reports every item containing the point (x, y).
func (s *Set) Point(ctx context.Context, x, y float64, limit int) ([]geom.Item, error) {
	return s.gather(ctx, func() prtree.Query { return prtree.Point(x, y) }, limit)
}

// Nearest returns the k items closest to (x, y) across all shards, in
// ascending (distance, ID) order — exactly the single-tree result: each
// shard reports its local top k and the merge keeps the global top k
// under the tree's own deterministic tie-breaking.
func (s *Set) Nearest(ctx context.Context, x, y float64, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	perShard := make([][]prtree.Neighbor, len(s.trees))
	err := s.scatter(func(i int, t *prtree.Tree) error {
		out, err := t.CollectNearest(prtree.Nearest(x, y, k).WithContext(ctx))
		perShard[i] = out
		return err
	})
	if err != nil {
		return nil, err
	}
	var merged []Neighbor
	for _, part := range perShard {
		for _, nb := range part {
			merged = append(merged, Neighbor{Item: nb.Item, Dist2: nb.Dist2})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Dist2 != merged[j].Dist2 {
			return merged[i].Dist2 < merged[j].Dist2
		}
		return merged[i].Item.ID < merged[j].Item.ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, nil
}

// Batch runs every window query and returns per-query merged results,
// indexed like rects. Shards process the whole batch concurrently.
func (s *Set) Batch(ctx context.Context, rects []geom.Rect, limit int) ([][]geom.Item, error) {
	perShard := make([][][]geom.Item, len(s.trees))
	err := s.scatter(func(i int, t *prtree.Tree) error {
		outs := make([][]geom.Item, len(rects))
		for qi, r := range rects {
			q := prtree.Window(r).WithContext(ctx)
			if limit > 0 {
				q = q.WithLimit(limit)
			}
			out, err := t.Collect(q)
			if err != nil {
				return err
			}
			outs[qi] = out
		}
		perShard[i] = outs
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]geom.Item, len(rects))
	for qi := range rects {
		var merged []geom.Item
		for si := range perShard {
			merged = append(merged, perShard[si][qi]...)
		}
		sortItems(merged)
		if limit > 0 && len(merged) > limit {
			merged = merged[:limit]
		}
		out[qi] = merged
	}
	return out, nil
}

// SetStats aggregates the set's I/O and cache counters.
type SetStats struct {
	Shards int
	Items  int
	IO     prtree.IOStats
	Cache  prtree.CacheStats
}

// Stats sums the per-shard backend and pager counters. The cache capacity
// reported is the summed per-shard budget; the policy is the shared one.
func (s *Set) Stats() SetStats {
	st := SetStats{Shards: len(s.trees), Items: s.items}
	for i, t := range s.trees {
		io := t.IOStats()
		st.IO.Reads += io.Reads
		st.IO.Writes += io.Writes
		st.IO.PrefetchReads += io.PrefetchReads
		cs := t.CacheStats()
		st.Cache.Hits += cs.Hits
		st.Cache.Misses += cs.Misses
		st.Cache.Evictions += cs.Evictions
		st.Cache.PrefetchIssued += cs.PrefetchIssued
		st.Cache.PrefetchUsed += cs.PrefetchUsed
		st.Cache.Resident += cs.Resident
		if i == 0 {
			st.Cache.Policy = cs.Policy
			st.Cache.Capacity = cs.Capacity
		} else if cs.Capacity > 0 && st.Cache.Capacity > 0 {
			st.Cache.Capacity += cs.Capacity
		}
	}
	return st
}
