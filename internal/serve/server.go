package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prtree/internal/geom"
)

// MaxK caps the k of one nearest request; larger values are rejected as
// bad requests instead of sizing a server-side heap from attacker input.
const MaxK = 1 << 16

// Config tunes a Server. The zero value serves with no admission cap and
// no deadlines; production deployments should set all three knobs.
type Config struct {
	// Set is the sharded index to serve (required).
	Set *Set
	// TenantCap is the per-tenant in-flight request cap; <= 0 disables
	// admission control. Requests beyond the cap are rejected with
	// CodeOverloaded (HTTP 429) without touching the trees.
	TenantCap int
	// DefaultDeadline applies to requests that carry none; 0 means no
	// implicit deadline.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-supplied deadlines; 0 means no clamp.
	MaxDeadline time.Duration
	// ConnTimeout bounds how long one binary connection may sit between
	// frames, and how long one response write may take — the slow-loris
	// guard. 0 means no per-connection deadlines.
	ConnTimeout time.Duration
}

// Server serves a Set over the binary protocol (ServeBinary) and HTTP
// (ServeWeb / Handler). Every request passes admission control, runs
// under its deadline context (polled by the query executor at node-visit
// granularity), and lands in per-endpoint latency histograms exposed at
// /statsz. Shutdown drains gracefully: in-flight requests finish, new
// ones are rejected with CodeShuttingDown.
type Server struct {
	cfg Config
	adm *admission

	mu        sync.Mutex
	draining  bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	https     []*http.Server

	inflight sync.WaitGroup // decoded requests being served
	connWG   sync.WaitGroup // binary connection handler goroutines

	start     time.Time
	served    atomic.Uint64
	errCount  atomic.Uint64
	degraded  atomic.Uint64 // responses missing at least one shard
	malformed atomic.Uint64 // frames that failed to parse
	metricsMu sync.RWMutex
	metrics   map[string]*endpointMetrics

	// testHook, when set by tests, runs inside every admitted request
	// before the query executes — the seam for forcing slow requests.
	testHook func(req Request)
}

// endpointMetrics is one endpoint's counters.
type endpointMetrics struct {
	hist   histogram
	count  atomic.Uint64
	errors atomic.Uint64
}

// New returns a server over cfg.Set.
func New(cfg Config) *Server {
	return &Server{
		cfg:       cfg,
		adm:       newAdmission(cfg.TenantCap),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		start:     time.Now(),
		metrics:   make(map[string]*endpointMetrics),
	}
}

// Errors returns the cumulative count of error responses (all transports).
func (s *Server) Errors() uint64 { return s.errCount.Load() }

// Served returns the cumulative count of admitted requests.
func (s *Server) Served() uint64 { return s.served.Load() }

// Degraded returns the cumulative count of responses missing at least one
// shard.
func (s *Server) Degraded() uint64 { return s.degraded.Load() }

// SetTenantCap changes the per-tenant in-flight cap at runtime: < 0
// disables admission, 0 rejects everything, > 0 caps. Requests already in
// flight are unaffected and release correctly under the new cap.
func (s *Server) SetTenantCap(cap int) { s.adm.setCap(cap) }

// opName maps protocol ops onto /statsz endpoint names.
func opName(op byte) string {
	switch op {
	case OpWindow:
		return "window"
	case OpContained:
		return "contained"
	case OpPoint:
		return "point"
	case OpNearest:
		return "nearest"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	}
	return fmt.Sprintf("op%d", op)
}

func (s *Server) endpoint(name string) *endpointMetrics {
	s.metricsMu.RLock()
	m := s.metrics[name]
	s.metricsMu.RUnlock()
	if m != nil {
		return m
	}
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	if m = s.metrics[name]; m == nil {
		m = &endpointMetrics{}
		s.metrics[name] = m
	}
	return m
}

// begin admits one request into the in-flight set unless draining.
func (s *Server) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) end() { s.inflight.Done() }

// requestCtx builds the request's deadline context: the client's deadline
// (clamped to MaxDeadline) or the server default when the client sent
// none. The cancel func must always be called.
func (s *Server) requestCtx(deadlineMillis uint32) (context.Context, context.CancelFunc) {
	d := time.Duration(deadlineMillis) * time.Millisecond
	if d == 0 {
		d = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (d == 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithTimeout(context.Background(), d)
}

// dispatchResult is the transport-independent outcome of one request.
type dispatchResult struct {
	sets   [][]geom.Item
	nbs    []Neighbor
	stats  *WireStats
	failed []uint32 // shards missing from a degraded result
	code   uint16   // 0 = ok
	msg    string
}

// errResult builds an error outcome.
func errResult(code uint16, msg string) dispatchResult {
	return dispatchResult{code: code, msg: msg}
}

// dispatch runs one decoded request end to end: drain check, admission,
// deadline, scatter-gather, metrics. Both transports funnel through it.
func (s *Server) dispatch(req Request) dispatchResult {
	if !s.begin() {
		return errResult(CodeShuttingDown, "server is draining")
	}
	defer s.end()
	if err := s.adm.acquire(req.Tenant); err != nil {
		s.errCount.Add(1)
		return errResult(CodeOverloaded, err.Error())
	}
	defer s.adm.release(req.Tenant)
	s.served.Add(1)
	ctx, cancel := s.requestCtx(req.DeadlineMillis)
	defer cancel()
	if s.testHook != nil {
		s.testHook(req)
	}

	m := s.endpoint(opName(req.Op))
	m.count.Add(1)
	start := time.Now()
	out, err := s.runQuery(ctx, req)
	m.hist.Observe(time.Since(start))
	if err != nil {
		m.errors.Add(1)
		s.errCount.Add(1)
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return errResult(CodeDeadline, "deadline exceeded")
		case errors.Is(err, context.Canceled):
			return errResult(CodeDeadline, "canceled")
		case errors.Is(err, ErrBadFrame), errors.Is(err, errBadRequest):
			return errResult(CodeBadRequest, err.Error())
		case errors.Is(err, ErrUnavailable):
			return errResult(CodeUnavailable, err.Error())
		default:
			return errResult(CodeInternal, err.Error())
		}
	}
	if len(out.failed) > 0 {
		s.degraded.Add(1)
	}
	return out
}

// errBadRequest marks semantic request errors (valid frame, bad values).
var errBadRequest = errors.New("serve: bad request")

// runQuery executes the op against the set. A degraded scatter-gather
// (some shards quarantined mid-query) is a success whose failed slice
// names the missing shards, not an error.
func (s *Server) runQuery(ctx context.Context, req Request) (dispatchResult, error) {
	set := s.cfg.Set
	limit := int(req.Limit)
	switch req.Op {
	case OpWindow:
		items, p, err := set.Window(ctx, req.Rect, limit)
		return dispatchResult{sets: [][]geom.Item{items}, failed: p.Failed}, err
	case OpContained:
		items, p, err := set.Contained(ctx, req.Rect, limit)
		return dispatchResult{sets: [][]geom.Item{items}, failed: p.Failed}, err
	case OpPoint:
		items, p, err := set.Point(ctx, req.X, req.Y, limit)
		return dispatchResult{sets: [][]geom.Item{items}, failed: p.Failed}, err
	case OpNearest:
		if req.K > MaxK {
			return dispatchResult{}, fmt.Errorf("%w: k=%d exceeds %d", errBadRequest, req.K, MaxK)
		}
		nbs, p, err := set.Nearest(ctx, req.X, req.Y, int(req.K))
		return dispatchResult{nbs: nbs, failed: p.Failed}, err
	case OpBatch:
		sets, p, err := set.Batch(ctx, req.Rects, limit)
		return dispatchResult{sets: sets, failed: p.Failed}, err
	case OpStats:
		return dispatchResult{stats: &WireStats{
			Shards: uint32(set.Shards()),
			Items:  uint64(set.Len()),
			MBR:    set.MBR(),
		}}, nil
	}
	return dispatchResult{}, fmt.Errorf("%w: unknown op %d", errBadRequest, req.Op)
}

// --- binary transport -----------------------------------------------------

// ServeBinary accepts length-prefixed-protocol connections on lis until
// Shutdown closes it. It always returns after the listener closes; a nil
// error means a clean drain.
func (s *Server) ServeBinary(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("serve: server is draining")
	}
	s.listeners[lis] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lis)
		s.mu.Unlock()
	}()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWG.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn serves one binary connection: one request frame in, one
// response frame out, strictly in order. With Config.ConnTimeout set,
// every frame read and every response write runs under a conn deadline,
// so a peer that stalls mid-frame or drips bytes (slow loris) is cut off
// instead of pinning a goroutine and a socket forever.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var buf []byte
	for {
		if s.cfg.ConnTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ConnTimeout))
		}
		payload, err := ReadFrame(br, MaxRequestFrame)
		if err != nil {
			// EOF and torn frames mean the peer is gone; an oversized
			// frame gets one error response before the connection drops
			// (the stream position is unrecoverable either way).
			if errors.Is(err, ErrTornFrame) {
				s.malformed.Add(1)
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, ErrTornFrame) {
				if !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
					s.malformed.Add(1)
				}
				s.errCount.Add(1)
				buf = AppendErrResponse(buf[:0], 0, CodeBadRequest, err.Error())
				if s.cfg.ConnTimeout > 0 {
					conn.SetWriteDeadline(time.Now().Add(s.cfg.ConnTimeout))
				}
				if WriteFrame(bw, buf) == nil {
					bw.Flush()
				}
			}
			return
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			s.malformed.Add(1)
			s.errCount.Add(1)
			buf = AppendErrResponse(buf[:0], 0, CodeBadRequest, err.Error())
			if s.cfg.ConnTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.cfg.ConnTimeout))
			}
			if WriteFrame(bw, buf) == nil {
				bw.Flush()
			}
			return
		}
		out := s.dispatch(req)
		if out.code != 0 {
			buf = AppendErrResponse(buf[:0], req.Op, out.code, out.msg)
		} else {
			buf = AppendOKResponse(buf[:0], req.Op, out.failed, out.sets, out.nbs, out.stats)
		}
		if s.cfg.ConnTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.ConnTimeout))
		}
		if err := WriteFrame(bw, buf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// isTimeout reports whether err is a net timeout (an expired conn
// deadline), which is the peer being slow, not a malformed frame.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// --- HTTP transport -------------------------------------------------------

// ServeWeb serves the HTTP/JSON API on lis until Shutdown. A nil error
// means a clean drain.
func (s *Server) ServeWeb(lis net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("serve: server is draining")
	}
	s.https = append(s.https, srv)
	s.mu.Unlock()
	err := srv.Serve(lis)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// httpItem is one item in a JSON response.
type httpItem struct {
	ID   uint32     `json:"id"`
	Rect [4]float64 `json:"rect"`
	// Dist2 is present only on nearest results.
	Dist2 *float64 `json:"dist2,omitempty"`
}

func itemsJSON(items []geom.Item) []httpItem {
	out := make([]httpItem, len(items))
	for i, it := range items {
		out[i] = httpItem{ID: it.ID, Rect: [4]float64{it.Rect.MinX, it.Rect.MinY, it.Rect.MaxX, it.Rect.MaxY}}
	}
	return out
}

// httpStatus maps protocol error codes to HTTP statuses.
func httpStatus(code uint16) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeShuttingDown, CodeUnavailable:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// Handler returns the HTTP/JSON API: /query, /batch, /statsz, /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		health := HealthOK
		if set := s.cfg.Set; set != nil {
			health = set.Health()
		}
		switch health {
		case HealthDown:
			// Down is a 503 so load balancers pull the instance; degraded
			// stays 200 — partial answers beat none, and /statsz names the
			// quarantined shards.
			http.Error(w, health.String(), http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, health)
		}
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Statsz())
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		req, err := httpToRequest(r)
		if err != nil {
			s.errCount.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.serveJSON(w, req)
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var body struct {
			Rects          [][4]float64 `json:"rects"`
			Tenant         string       `json:"tenant"`
			DeadlineMillis uint32       `json:"deadline_ms"`
			Limit          uint32       `json:"limit"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, MaxRequestFrame)).Decode(&body); err != nil {
			s.errCount.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(body.Rects) > MaxBatch {
			s.errCount.Add(1)
			http.Error(w, fmt.Sprintf("batch of %d rects exceeds %d", len(body.Rects), MaxBatch), http.StatusBadRequest)
			return
		}
		req := Request{
			Op: OpBatch, Tenant: body.Tenant,
			DeadlineMillis: body.DeadlineMillis, Limit: body.Limit,
			Rects: make([]geom.Rect, len(body.Rects)),
		}
		for i, r4 := range body.Rects {
			req.Rects[i] = geom.NewRect(r4[0], r4[1], r4[2], r4[3])
		}
		s.serveJSON(w, req)
	})
	return mux
}

// serveJSON dispatches req and writes the JSON response.
func (s *Server) serveJSON(w http.ResponseWriter, req Request) {
	out := s.dispatch(req)
	if out.code != 0 {
		http.Error(w, out.msg, httpStatus(out.code))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	resp := map[string]interface{}{"op": opName(req.Op)}
	resp["degraded"] = len(out.failed) > 0
	if len(out.failed) > 0 {
		resp["failed_shards"] = out.failed
	}
	switch req.Op {
	case OpNearest:
		nbs := make([]httpItem, len(out.nbs))
		for i, nb := range out.nbs {
			d2 := nb.Dist2
			nbs[i] = httpItem{
				ID:    nb.Item.ID,
				Rect:  [4]float64{nb.Item.Rect.MinX, nb.Item.Rect.MinY, nb.Item.Rect.MaxX, nb.Item.Rect.MaxY},
				Dist2: &d2,
			}
		}
		resp["items"] = nbs
		resp["count"] = len(nbs)
	case OpStats:
		resp["shards"] = out.stats.Shards
		resp["items"] = out.stats.Items
		resp["mbr"] = [4]float64{out.stats.MBR.MinX, out.stats.MBR.MinY, out.stats.MBR.MaxX, out.stats.MBR.MaxY}
	case OpBatch:
		sets := make([][]httpItem, len(out.sets))
		total := 0
		for i, set := range out.sets {
			sets[i] = itemsJSON(set)
			total += len(set)
		}
		resp["results"] = sets
		resp["count"] = total
	default:
		items := out.sets[0]
		resp["items"] = itemsJSON(items)
		resp["count"] = len(items)
	}
	json.NewEncoder(w).Encode(resp)
}

// httpToRequest parses /query parameters into a Request.
func httpToRequest(r *http.Request) (Request, error) {
	q := r.URL.Query()
	req := Request{Tenant: q.Get("tenant")}
	if v := q.Get("deadline_ms"); v != "" {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return Request{}, fmt.Errorf("bad deadline_ms: %w", err)
		}
		req.DeadlineMillis = uint32(n)
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return Request{}, fmt.Errorf("bad limit: %w", err)
		}
		req.Limit = uint32(n)
	}
	op := q.Get("op")
	if op == "" {
		op = "window"
	}
	parseF := func(key string) (float64, error) {
		v, err := strconv.ParseFloat(q.Get(key), 64)
		if err != nil {
			return 0, fmt.Errorf("bad %s: %w", key, err)
		}
		return v, nil
	}
	switch op {
	case "window", "contained":
		req.Op = OpWindow
		if op == "contained" {
			req.Op = OpContained
		}
		parts := strings.Split(q.Get("rect"), ",")
		if len(parts) != 4 {
			return Request{}, fmt.Errorf("rect needs 4 comma-separated numbers")
		}
		var v [4]float64
		for i, p := range parts {
			f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return Request{}, fmt.Errorf("bad rect: %w", err)
			}
			v[i] = f
		}
		req.Rect = geom.NewRect(v[0], v[1], v[2], v[3])
	case "point", "nearest":
		var err error
		if req.X, err = parseF("x"); err != nil {
			return Request{}, err
		}
		if req.Y, err = parseF("y"); err != nil {
			return Request{}, err
		}
		if op == "point" {
			req.Op = OpPoint
		} else {
			req.Op = OpNearest
			k, err := strconv.ParseUint(q.Get("k"), 10, 32)
			if err != nil {
				return Request{}, fmt.Errorf("bad k: %w", err)
			}
			req.K = uint32(k)
		}
	case "stats":
		req.Op = OpStats
	default:
		return Request{}, fmt.Errorf("unknown op %q", op)
	}
	return req, nil
}

// --- statsz ---------------------------------------------------------------

// EndpointStats is one endpoint's /statsz record.
type EndpointStats struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// ShardStatsz is one shard's /statsz record.
type ShardStatsz struct {
	File        string `json:"file"`
	State       string `json:"state"`
	Errors      uint64 `json:"errors"`
	Quarantines uint64 `json:"quarantines"`
	Recoveries  uint64 `json:"recoveries"`
	Attempts    uint64 `json:"recovery_attempts"`
	LastError   string `json:"last_error,omitempty"`

	// Storage epoch state from the online-compaction machinery: the
	// current snapshot epoch, readers holding snapshots, and freed pages
	// pinned until those readers drain.
	SnapshotEpoch   uint64 `json:"snapshot_epoch"`
	SnapshotReaders int    `json:"snapshot_readers"`
	PinnedPages     int    `json:"pinned_pages"`
}

// Statsz is the /statsz document: server, shard, IO/cache and per-endpoint
// latency counters.
type Statsz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Health        string  `json:"health"`
	Shards        int     `json:"shards"`
	Healthy       int     `json:"healthy_shards"`
	Items         int     `json:"items"`

	Served          uint64 `json:"served"`
	Errors          uint64 `json:"errors"`
	Rejected        uint64 `json:"rejected"`
	Degraded        uint64 `json:"degraded"`
	MalformedFrames uint64 `json:"malformed_frames"`

	ShardDetail []ShardStatsz `json:"shard_detail,omitempty"`

	IO struct {
		Reads         uint64 `json:"reads"`
		Writes        uint64 `json:"writes"`
		PrefetchReads uint64 `json:"prefetch_reads"`
	} `json:"io"`
	Cache struct {
		Hits           uint64  `json:"hits"`
		Misses         uint64  `json:"misses"`
		Evictions      uint64  `json:"evictions"`
		HitRate        float64 `json:"hit_rate"`
		Resident       int     `json:"resident"`
		Capacity       int     `json:"capacity"`
		Policy         string  `json:"policy"`
		PrefetchIssued uint64  `json:"prefetch_issued"`
		PrefetchUsed   uint64  `json:"prefetch_used"`
	} `json:"cache"`
	Admission struct {
		TenantCap int `json:"tenant_cap"`
	} `json:"admission"`

	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// Statsz snapshots the server's counters; safe during serving.
func (s *Server) Statsz() Statsz {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	st := Statsz{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Draining:        draining,
		Health:          HealthOK.String(),
		Served:          s.served.Load(),
		Errors:          s.errCount.Load(),
		Rejected:        s.adm.rejectedCount(),
		Degraded:        s.degraded.Load(),
		MalformedFrames: s.malformed.Load(),
		Endpoints:       make(map[string]EndpointStats),
	}
	st.Admission.TenantCap = s.adm.capNow()
	if set := s.cfg.Set; set != nil {
		ss := set.Stats()
		st.Health = set.Health().String()
		st.Shards, st.Healthy, st.Items = ss.Shards, ss.Healthy, ss.Items
		for _, sd := range ss.Status {
			st.ShardDetail = append(st.ShardDetail, ShardStatsz{
				File:            sd.File,
				State:           sd.State.String(),
				Errors:          sd.Errors,
				Quarantines:     sd.Quarantines,
				Recoveries:      sd.Recoveries,
				Attempts:        sd.Attempts,
				LastError:       sd.LastErr,
				SnapshotEpoch:   sd.Snapshot.Epoch,
				SnapshotReaders: sd.Snapshot.Readers,
				PinnedPages:     sd.Snapshot.PinnedPages,
			})
		}
		st.IO.Reads, st.IO.Writes, st.IO.PrefetchReads = ss.IO.Reads, ss.IO.Writes, ss.IO.PrefetchReads
		st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions = ss.Cache.Hits, ss.Cache.Misses, ss.Cache.Evictions
		st.Cache.HitRate = ss.Cache.HitRatio()
		st.Cache.Resident, st.Cache.Capacity = ss.Cache.Resident, ss.Cache.Capacity
		st.Cache.Policy = ss.Cache.Policy.String()
		st.Cache.PrefetchIssued, st.Cache.PrefetchUsed = ss.Cache.PrefetchIssued, ss.Cache.PrefetchUsed
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	s.metricsMu.RLock()
	names := make([]string, 0, len(s.metrics))
	for name := range s.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := s.metrics[name]
		st.Endpoints[name] = EndpointStats{
			Count:  m.count.Load(),
			Errors: m.errors.Load(),
			MeanMS: ms(m.hist.Mean()),
			P50MS:  ms(m.hist.Quantile(0.50)),
			P95MS:  ms(m.hist.Quantile(0.95)),
			P99MS:  ms(m.hist.Quantile(0.99)),
		}
	}
	s.metricsMu.RUnlock()
	return st
}

// --- drain ----------------------------------------------------------------

// Shutdown drains the server: listeners close, requests already being
// served run to completion (bounded by ctx), and new requests are
// rejected with CodeShuttingDown. It is idempotent; the first caller does
// the work. The Set itself is not closed — that stays with the caller.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	listeners := make([]net.Listener, 0, len(s.listeners))
	for lis := range s.listeners {
		listeners = append(listeners, lis)
	}
	https := append([]*http.Server(nil), s.https...)
	s.mu.Unlock()

	for _, lis := range listeners {
		lis.Close()
	}
	var httpErr error
	for _, srv := range https {
		if err := srv.Shutdown(ctx); err != nil && httpErr == nil {
			httpErr = err
		}
	}

	// Wait for in-flight binary requests, then cut idle connections so
	// their handler goroutines unblock from ReadFrame.
	if err := waitCtx(ctx, &s.inflight); err != nil {
		return err
	}
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if err := waitCtx(ctx, &s.connWG); err != nil {
		return err
	}
	return httpErr
}

// waitCtx waits on wg, bounded by ctx.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
