package serve

import (
	"context"
	"net"
	"testing"
	"time"

	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/workload"
)

// TestChaosGate is the CI chaos gate, in-process: one shard is
// fault-injected mid-run through the public chaos knobs while the
// listener periodically resets connections, and a robust-client load run
// must produce ZERO wrong results against the oracle — every response is
// either exact or a correctly-flagged degraded subset — with a bounded
// error rate and eventual recovery to full health.
func TestChaosGate(t *testing.T) {
	items := dataset.Western(4000, 99)
	world := geom.ItemsMBR(items)
	dir := buildDir(t, items, 3)

	set, err := Open(dir, OpenOptions{
		FaultShard:         1,
		FaultReadsAfter:    5, // past Open's root read, early into the load
		RecoveryBackoff:    time.Millisecond,
		RecoveryMaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	srv := New(Config{Set: set, ConnTimeout: 2 * time.Second})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	flis := NewFaultyListener(lis, NetFault{Mode: NetFaultReset, After: 30})
	go srv.ServeBinary(flis)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// The workload mixes small windows with the full world (which reads
	// every shard), and the oracle holds each rect's complete answer.
	rects := workload.Squares(world, 0.02, 15, 5)
	rects = append(rects, world)
	oracle := make([][]geom.Item, len(rects))
	for i, r := range rects {
		oracle[i] = bruteWindow(items, r)
	}

	res, err := RunLoad(LoadOptions{
		Addr:     addr,
		Clients:  8,
		Requests: 400,
		Rects:    rects,
		Oracle:   oracle,
		Robust: &RobustOptions{
			RetryBackoff:    time.Millisecond,
			RetryMaxBackoff: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The gate: no response — degraded or not — may contradict the oracle.
	if res.Wrong != 0 {
		t.Fatalf("%d wrong results against the oracle", res.Wrong)
	}
	// Injected resets and the mid-run quarantine may cost some requests
	// even through retries, but the vast majority must land.
	if res.Errors > res.Requests/10 {
		t.Fatalf("%d/%d requests failed — unbounded error rate", res.Errors, res.Requests)
	}
	if !flis.Fired() {
		t.Fatal("network fault never fired")
	}

	// The injected storage fault must have tripped quarantine, and the
	// supervisor must bring the shard back.
	waitHealthy(t, set, 5*time.Second)
	sd := set.Stats().Status[1]
	if sd.Quarantines < 1 || sd.Recoveries < 1 {
		t.Fatalf("shard 1 status %+v, want at least one quarantine and one recovery", sd)
	}

	// Post-chaos, the set answers the full world exactly.
	got, p, err := set.Window(context.Background(), world, 0)
	if err != nil || p.Degraded() {
		t.Fatalf("post-chaos window: partial=%v err=%v", p, err)
	}
	assertSameItems(t, "post-chaos", got, bruteWindow(items, world))

	t.Logf("chaos gate: requests=%d errors=%d degraded=%d retries=%d breakerOpens=%d",
		res.Requests, res.Errors, res.Degraded, res.Retries, res.BreakerOpens)
}
