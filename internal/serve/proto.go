// Package serve turns the PR-tree library into a network query server: a
// sharded index directory (built by prtool shard or Build) is opened as a
// scatter-gather Set whose shards split one global page-cache budget, and
// Server exposes the unified query surface over two listeners — a
// length-prefixed binary protocol and HTTP/JSON — with per-tenant
// admission control, per-request deadlines wired to Query.WithContext,
// graceful drain, and a /statsz endpoint reporting pager/IO counters plus
// per-endpoint latency histograms.
//
// # Wire protocol
//
// Every message is one frame: a 4-byte big-endian payload length followed
// by that many payload bytes. Request payloads are capped at
// MaxRequestFrame; responses at MaxResponseFrame. A request payload is
//
//	op        byte     (OpWindow, OpContained, OpPoint, OpNearest, OpBatch, OpStats)
//	tenantLen byte     followed by tenantLen bytes of tenant id
//	deadline  uint32   request deadline in milliseconds (0 = server default)
//	limit     uint32   max results per query (0 = unlimited)
//	args               op-specific, big-endian IEEE-754 floats:
//	  window/contained  4 × float64 (minx, miny, maxx, maxy)
//	  point             2 × float64 (x, y)
//	  nearest           2 × float64 (x, y) + uint32 k
//	  batch             uint32 n + n × 4 × float64 rects
//	  stats             none
//
// A response payload is a status byte (0 = ok, 1 = error) and the echoed
// op byte. An error response carries an error record (uint16 code, uint16
// message length, message bytes). An ok response carries a degraded-shards
// section — one byte holding the count of shards that contributed nothing
// to this result, followed by that many uint32 shard indices (zero for a
// complete result) — and then the op's result: for window, contained,
// point and batch a uint32 set count and per set a uint32 item count
// followed by items (uint32 id + 4 × float64 rect); for nearest one set of
// neighbors (uint32 id + 4 × float64 rect + float64 squared distance); for
// stats a uint32 shard count, uint64 item count and the 4 × float64 global
// MBR.
//
// Decoding is defensive end to end: torn frames, oversized length
// prefixes and truncated payloads return the typed errors ErrTornFrame,
// ErrFrameTooLarge and ErrBadFrame — never a panic, and never an
// allocation larger than the configured frame cap.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"prtree/internal/geom"
)

// Frame and payload limits.
const (
	// MaxRequestFrame caps request payloads (a 4096-rect batch is ~128 KiB).
	MaxRequestFrame = 1 << 20
	// MaxResponseFrame caps response payloads a client will accept.
	MaxResponseFrame = 64 << 20
	// MaxBatch caps the rect count of one batch request.
	MaxBatch = 4096
	// MaxTenant caps the tenant id length (it fits the one-byte prefix).
	MaxTenant = 255
)

// Ops of the binary protocol.
const (
	OpWindow    byte = 1 // rect intersection query
	OpContained byte = 2 // rect containment query
	OpPoint     byte = 3 // point stabbing query
	OpNearest   byte = 4 // k-nearest-neighbor query
	OpBatch     byte = 5 // many window queries in one frame
	OpStats     byte = 6 // shard count, item count, global MBR
)

// Typed framing and decoding errors. Handlers and clients test these with
// errors.Is; none of them ever surfaces as a panic.
var (
	// ErrFrameTooLarge reports a length prefix above the frame cap. The
	// oversized payload is not read, let alone allocated.
	ErrFrameTooLarge = errors.New("serve: frame exceeds size limit")
	// ErrTornFrame reports a frame truncated mid-header or mid-payload —
	// the peer hung up partway through a write.
	ErrTornFrame = errors.New("serve: torn frame")
	// ErrBadFrame reports a syntactically invalid payload: unknown op,
	// truncated arguments, or counts inconsistent with the payload length.
	ErrBadFrame = errors.New("serve: malformed frame payload")
)

// Response status bytes and error codes.
const (
	statusOK  byte = 0
	statusErr byte = 1

	// CodeBadRequest reports an undecodable or invalid request.
	CodeBadRequest uint16 = 1
	// CodeOverloaded reports an admission-control rejection (the tenant's
	// in-flight cap is reached); the client may retry after backoff.
	CodeOverloaded uint16 = 2
	// CodeDeadline reports a request whose deadline expired mid-traversal.
	CodeDeadline uint16 = 3
	// CodeShuttingDown reports a request that arrived while the server
	// drains; in-flight requests still complete.
	CodeShuttingDown uint16 = 4
	// CodeInternal reports any other server-side failure.
	CodeInternal uint16 = 5
	// CodeUnavailable reports a query that could not run because every
	// shard is out of rotation (quarantined or permanently failed); the
	// client may retry after backoff while auto-recovery works.
	CodeUnavailable uint16 = 6
)

// MaxFailedShards caps the degraded-shards list of one ok response (it
// fits the one-byte count prefix). Responses degraded by more shards than
// this report only the first MaxFailedShards indices.
const MaxFailedShards = 255

// Request is one decoded query request.
type Request struct {
	Op             byte
	Tenant         string
	DeadlineMillis uint32
	Limit          uint32

	Rect  geom.Rect   // window, contained
	X, Y  float64     // point, nearest
	K     uint32      // nearest
	Rects []geom.Rect // batch
}

// Result is one decoded ok-response.
type Result struct {
	Op        byte
	Sets      [][]geom.Item // window/contained/point: one set; batch: per query
	Neighbors []Neighbor    // nearest
	Stats     *WireStats    // stats
	// FailedShards lists the shards that contributed nothing to this
	// result (quarantined, permanently failed, or failed mid-query).
	// Empty means the result is complete.
	FailedShards []uint32
}

// Degraded reports whether the result is missing at least one shard's
// contribution. Degraded results are correct but partial: every item in
// them is real, items homed on the failed shards are absent.
func (r Result) Degraded() bool { return len(r.FailedShards) > 0 }

// Neighbor mirrors the tree's k-NN result: an item plus squared distance.
type Neighbor struct {
	Item  geom.Item
	Dist2 float64
}

// WireStats is the OpStats result: enough for a load generator pointed at
// a remote server to synthesize a workload over the served world.
type WireStats struct {
	Shards uint32
	Items  uint64
	MBR    geom.Rect
}

// RemoteError is a server-reported failure decoded from an error response.
type RemoteError struct {
	Code uint16
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("serve: remote error %d: %s", e.Code, e.Msg)
}

// ReadFrame reads one length-prefixed frame from r, rejecting payloads
// above max before allocating anything. io.EOF is returned only at a clean
// frame boundary; a connection cut mid-frame is ErrTornFrame.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: header: %v", ErrTornFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrTornFrame, err)
	}
	return payload, nil
}

// WriteFrame writes payload as one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// --- request encoding -----------------------------------------------------

func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}
func appendRect(b []byte, r geom.Rect) []byte {
	b = appendF64(b, r.MinX)
	b = appendF64(b, r.MinY)
	b = appendF64(b, r.MaxX)
	return appendF64(b, r.MaxY)
}

// EncodeRequest appends req's wire form to buf and returns the result.
func EncodeRequest(buf []byte, req Request) ([]byte, error) {
	if len(req.Tenant) > MaxTenant {
		return buf, fmt.Errorf("%w: tenant longer than %d bytes", ErrBadFrame, MaxTenant)
	}
	buf = append(buf, req.Op)
	buf = append(buf, byte(len(req.Tenant)))
	buf = append(buf, req.Tenant...)
	buf = appendU32(buf, req.DeadlineMillis)
	buf = appendU32(buf, req.Limit)
	switch req.Op {
	case OpWindow, OpContained:
		buf = appendRect(buf, req.Rect)
	case OpPoint:
		buf = appendF64(buf, req.X)
		buf = appendF64(buf, req.Y)
	case OpNearest:
		buf = appendF64(buf, req.X)
		buf = appendF64(buf, req.Y)
		buf = appendU32(buf, req.K)
	case OpBatch:
		if len(req.Rects) > MaxBatch {
			return buf, fmt.Errorf("%w: batch of %d rects exceeds %d", ErrBadFrame, len(req.Rects), MaxBatch)
		}
		buf = appendU32(buf, uint32(len(req.Rects)))
		for _, r := range req.Rects {
			buf = appendRect(buf, r)
		}
	case OpStats:
	default:
		return buf, fmt.Errorf("%w: unknown op %d", ErrBadFrame, req.Op)
	}
	return buf, nil
}

// reader is a bounds-checked cursor over one payload. Every take method
// reports failure instead of slicing past the end.
type reader struct {
	b  []byte
	ok bool
}

func (r *reader) take(n int) []byte {
	if !r.ok || len(r.b) < n {
		r.ok = false
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) rect() geom.Rect {
	return geom.Rect{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
}

// DecodeRequest parses one request payload. Malformed input — truncated
// fields, unknown ops, counts that disagree with the payload length —
// returns an error wrapping ErrBadFrame; it never panics and never
// allocates more than the payload itself implies.
func DecodeRequest(payload []byte) (Request, error) {
	r := reader{b: payload, ok: true}
	var req Request
	req.Op = r.u8()
	tlen := int(r.u8())
	req.Tenant = string(r.take(tlen))
	req.DeadlineMillis = r.u32()
	req.Limit = r.u32()
	switch req.Op {
	case OpWindow, OpContained:
		req.Rect = r.rect()
	case OpPoint:
		req.X, req.Y = r.f64(), r.f64()
	case OpNearest:
		req.X, req.Y = r.f64(), r.f64()
		req.K = r.u32()
	case OpBatch:
		n := int(r.u32())
		if !r.ok {
			return Request{}, fmt.Errorf("%w: truncated request", ErrBadFrame)
		}
		if n > MaxBatch {
			return Request{}, fmt.Errorf("%w: batch of %d rects exceeds %d", ErrBadFrame, n, MaxBatch)
		}
		// The count must match the bytes actually present before any
		// allocation happens, so a forged count cannot over-allocate.
		if len(r.b) != n*32 {
			return Request{}, fmt.Errorf("%w: batch count %d disagrees with payload length", ErrBadFrame, n)
		}
		req.Rects = make([]geom.Rect, n)
		for i := range req.Rects {
			req.Rects[i] = r.rect()
		}
	case OpStats:
	default:
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrBadFrame, req.Op)
	}
	if !r.ok {
		return Request{}, fmt.Errorf("%w: truncated request", ErrBadFrame)
	}
	if len(r.b) != 0 {
		return Request{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(r.b))
	}
	return req, nil
}

// --- response encoding ----------------------------------------------------

// AppendOKResponse appends an ok-response for op to buf: the degraded
// shard list (failed may be nil for a complete result, and is truncated
// to MaxFailedShards entries), then item sets for
// window/contained/point/batch, neighbors for nearest, stats for stats.
func AppendOKResponse(buf []byte, op byte, failed []uint32, sets [][]geom.Item, nbs []Neighbor, st *WireStats) []byte {
	buf = append(buf, statusOK, op)
	if len(failed) > MaxFailedShards {
		failed = failed[:MaxFailedShards]
	}
	buf = append(buf, byte(len(failed)))
	for _, idx := range failed {
		buf = appendU32(buf, idx)
	}
	switch op {
	case OpNearest:
		buf = appendU32(buf, uint32(len(nbs)))
		for _, nb := range nbs {
			buf = appendU32(buf, nb.Item.ID)
			buf = appendRect(buf, nb.Item.Rect)
			buf = appendF64(buf, nb.Dist2)
		}
	case OpStats:
		buf = appendU32(buf, st.Shards)
		buf = appendU64(buf, st.Items)
		buf = appendRect(buf, st.MBR)
	default:
		buf = appendU32(buf, uint32(len(sets)))
		for _, set := range sets {
			buf = appendU32(buf, uint32(len(set)))
			for _, it := range set {
				buf = appendU32(buf, it.ID)
				buf = appendRect(buf, it.Rect)
			}
		}
	}
	return buf
}

// AppendErrResponse appends an error response to buf.
func AppendErrResponse(buf []byte, op byte, code uint16, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	buf = append(buf, statusErr, op)
	buf = binary.BigEndian.AppendUint16(buf, code)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(msg)))
	return append(buf, msg...)
}

// DecodeResponse parses one response payload into a Result, or the
// server's RemoteError. Framing-level garbage wraps ErrBadFrame.
func DecodeResponse(payload []byte) (Result, error) {
	r := reader{b: payload, ok: true}
	status := r.u8()
	op := r.u8()
	if !r.ok {
		return Result{}, fmt.Errorf("%w: truncated response", ErrBadFrame)
	}
	if status == statusErr {
		code := r.u16()
		mlen := int(r.u16())
		msg := string(r.take(mlen))
		if !r.ok {
			return Result{}, fmt.Errorf("%w: truncated error response", ErrBadFrame)
		}
		if len(r.b) != 0 {
			return Result{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(r.b))
		}
		return Result{Op: op}, &RemoteError{Code: code, Msg: msg}
	}
	if status != statusOK {
		return Result{}, fmt.Errorf("%w: unknown status %d", ErrBadFrame, status)
	}
	out := Result{Op: op}
	nFailed := int(r.u8())
	if !r.ok || len(r.b) < nFailed*4 {
		return Result{}, fmt.Errorf("%w: degraded-shard count disagrees with payload length", ErrBadFrame)
	}
	if nFailed > 0 {
		out.FailedShards = make([]uint32, nFailed)
		for i := range out.FailedShards {
			out.FailedShards[i] = r.u32()
		}
	}
	switch op {
	case OpNearest:
		n := int(r.u32())
		if !r.ok || len(r.b) != n*44 {
			return Result{}, fmt.Errorf("%w: neighbor count disagrees with payload length", ErrBadFrame)
		}
		out.Neighbors = make([]Neighbor, n)
		for i := range out.Neighbors {
			out.Neighbors[i].Item.ID = r.u32()
			out.Neighbors[i].Item.Rect = r.rect()
			out.Neighbors[i].Dist2 = r.f64()
		}
	case OpStats:
		st := WireStats{Shards: r.u32(), Items: r.u64(), MBR: r.rect()}
		if !r.ok {
			return Result{}, fmt.Errorf("%w: truncated stats response", ErrBadFrame)
		}
		out.Stats = &st
	case OpWindow, OpContained, OpPoint, OpBatch:
		nsets := int(r.u32())
		if !r.ok || nsets > len(r.b)/4+1 {
			return Result{}, fmt.Errorf("%w: set count disagrees with payload length", ErrBadFrame)
		}
		out.Sets = make([][]geom.Item, 0, nsets)
		for s := 0; s < nsets; s++ {
			n := int(r.u32())
			if !r.ok || n > len(r.b)/36 {
				return Result{}, fmt.Errorf("%w: item count disagrees with payload length", ErrBadFrame)
			}
			set := make([]geom.Item, n)
			for i := range set {
				set[i].ID = r.u32()
				set[i].Rect = r.rect()
			}
			out.Sets = append(out.Sets, set)
		}
	default:
		return Result{}, fmt.Errorf("%w: unknown response op %d", ErrBadFrame, op)
	}
	if !r.ok {
		return Result{}, fmt.Errorf("%w: truncated response", ErrBadFrame)
	}
	if len(r.b) != 0 {
		return Result{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(r.b))
	}
	return out, nil
}
