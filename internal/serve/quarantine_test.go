package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"prtree"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/storage"
)

// fastRecovery are OpenOptions that make supervisor retries near-instant
// for tests.
func fastRecovery() OpenOptions {
	return OpenOptions{
		RecoveryBackoff:    time.Millisecond,
		RecoveryMaxBackoff: 5 * time.Millisecond,
	}
}

// buildDir shards items into a fresh temp directory and returns it.
func buildDir(t *testing.T, items []geom.Item, shards int) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := Build(dir, items, BuildOptions{Shards: shards, Partition: PartitionHilbert}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// bruteWindow is the oracle: the full window result computed straight
// from the item slice, in the set's deterministic merge order.
func bruteWindow(items []geom.Item, w geom.Rect) []geom.Item {
	var out []geom.Item
	for _, it := range items {
		if it.Rect.Intersects(w) {
			out = append(out, it)
		}
	}
	sortItems(out)
	return out
}

// waitHealthy polls until the set is back to HealthOK or the deadline
// passes.
func waitHealthy(t *testing.T, set *Set, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if set.Health() == HealthOK {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("set did not recover to HealthOK within %v (health %v, stats %+v)",
		within, set.Health(), set.Stats().Status)
}

// TestQuarantineDegradesAndRecovers is the core failure-isolation cycle:
// an injected read fault on one shard degrades the query (naming the
// shard) instead of failing it, /healthz-level state dips to degraded,
// the supervisor brings the shard back, and post-recovery results are
// bit-identical to the healthy oracle.
func TestQuarantineDegradesAndRecovers(t *testing.T) {
	items := dataset.Western(1200, 21)
	world := geom.ItemsMBR(items)
	dir := buildDir(t, items, 3)

	opt := fastRecovery()
	opt.wrapShard = func(idx, attempt int, b prtree.Backend) prtree.Backend {
		if idx != 1 || attempt > 0 {
			return b
		}
		f := storage.NewFaulty(b, storage.FaultError, 3)
		f.InjectReads(true)
		return f
	}
	set, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.Health() != HealthOK {
		t.Fatalf("fresh set health %v, want ok", set.Health())
	}

	ctx := context.Background()
	oracle := bruteWindow(items, world)

	// The full-world window forces reads on every shard; the armed fault
	// fires on shard 1's 4th page read.
	got, p, err := set.Window(ctx, world, 0)
	if err != nil {
		t.Fatalf("degraded window failed outright: %v", err)
	}
	if !p.Degraded() {
		t.Fatal("window over a faulting shard did not degrade")
	}
	if len(p.Failed) != 1 || p.Failed[0] != 1 {
		t.Fatalf("failed shards %v, want [1]", p.Failed)
	}
	if set.Health() != HealthDegraded {
		t.Fatalf("health %v after quarantine, want degraded", set.Health())
	}
	// The degraded result is a strict subset of the oracle.
	if len(got) >= len(oracle) {
		t.Fatalf("degraded result has %d items, oracle %d — nothing missing?", len(got), len(oracle))
	}
	inOracle := make(map[geom.Item]bool, len(oracle))
	for _, it := range oracle {
		inOracle[it] = true
	}
	for _, it := range got {
		if !inOracle[it] {
			t.Fatalf("degraded result invented item %v", it)
		}
	}

	// While quarantined, further queries keep succeeding (degraded) and
	// keep naming the shard, without re-quarantining it.
	if _, p, err := set.Window(ctx, world, 0); err != nil || !p.Degraded() {
		t.Fatalf("second window: partial=%v err=%v", p, err)
	}

	// The supervisor reopens the shard clean (attempt > 0 gets no fault)
	// and restores it; results then match the oracle exactly.
	waitHealthy(t, set, 5*time.Second)
	got, p, err = set.Window(ctx, world, 0)
	if err != nil || p.Degraded() {
		t.Fatalf("post-recovery window: partial=%v err=%v", p, err)
	}
	assertSameItems(t, "post-recovery", got, oracle)

	st := set.Stats()
	sd := st.Status[1]
	if sd.Quarantines != 1 || sd.Recoveries != 1 || sd.State != ShardHealthy {
		t.Fatalf("shard 1 status %+v, want 1 quarantine, 1 recovery, healthy", sd)
	}
	if st.Healthy != 3 {
		t.Fatalf("healthy count %d, want 3", st.Healthy)
	}
}

// TestQuarantineEveryCountedOp is the ISSUE's property sweep: kill shard
// 0 at EVERY counted read op in turn, and after recovery the set must
// answer bit-identically to the healthy oracle each time.
func TestQuarantineEveryCountedOp(t *testing.T) {
	items := dataset.Western(400, 33)
	world := geom.ItemsMBR(items)
	dir := buildDir(t, items, 2)
	ctx := context.Background()
	oracle := bruteWindow(items, world)

	// First pass: count shard 0's read ops for one full-world window. The
	// fault stays disarmed (trigger 0) through Open — Open itself reads
	// the root page for the MBR — and we measure only the query's reads.
	var probe *storage.Faulty
	opt := fastRecovery()
	opt.wrapShard = func(idx, attempt int, b prtree.Backend) prtree.Backend {
		if idx != 0 || attempt > 0 {
			return b
		}
		f := storage.NewFaulty(b, storage.FaultError, 0) // disarmed: count only
		f.InjectReads(true)
		probe = f
		return f
	}
	set, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	openOps := probe.Ops()
	if _, _, err := set.Window(ctx, world, 0); err != nil {
		t.Fatal(err)
	}
	queryOps := probe.Ops() - openOps
	set.Close()
	if queryOps < 2 {
		t.Fatalf("only %d counted query ops — the sweep would be vacuous", queryOps)
	}

	for k := int64(1); k <= queryOps; k++ {
		var faulty *storage.Faulty
		opt := fastRecovery()
		opt.wrapShard = func(idx, attempt int, b prtree.Backend) prtree.Backend {
			if idx != 0 || attempt > 0 {
				return b
			}
			f := storage.NewFaulty(b, storage.FaultError, 0)
			f.InjectReads(true)
			faulty = f
			return f
		}
		set, err := Open(dir, opt)
		if err != nil {
			t.Fatalf("op %d: %v", k, err)
		}
		// Arm AFTER Open so the k-th counted op is the k-th QUERY read,
		// not something Open consumed — the fault must fire inside a
		// query leg, where it is recovered and quarantined.
		faulty.Arm(k)
		got, p, err := set.Window(ctx, world, 0)
		if err != nil {
			t.Fatalf("op %d: query failed outright: %v", k, err)
		}
		if !p.Degraded() {
			t.Fatalf("op %d: fault did not fire during the query (got %d items)", k, len(got))
		}
		waitHealthy(t, set, 5*time.Second)
		got, p, err = set.Window(ctx, world, 0)
		if err != nil || p.Degraded() {
			t.Fatalf("op %d: post-recovery partial=%v err=%v", k, p, err)
		}
		assertSameItems(t, "post-recovery sweep", got, oracle)
		set.Close()
	}
}

// TestContextCancelNotQuarantined: a client hanging up (or its deadline
// expiring) is the CLIENT's failure, and must never count against a
// shard.
func TestContextCancelNotQuarantined(t *testing.T) {
	items := dataset.Western(1500, 5)
	set := buildSet(t, items, 3, PartitionHilbert)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := set.Window(ctx, set.MBR(), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, _, err := set.Nearest(expired, 0, 0, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}

	if set.Health() != HealthOK {
		t.Fatalf("health %v after context errors, want ok", set.Health())
	}
	for i, sd := range set.Stats().Status {
		if sd.State != ShardHealthy || sd.Quarantines != 0 || sd.Errors != 0 {
			t.Fatalf("shard %d was blamed for a context error: %+v", i, sd)
		}
	}
}

// TestPermanentFailure: a shard whose every reopen also fails exhausts
// MaxRecoveries and lands in ShardFailed; the set stays degraded and
// keeps serving the healthy shards.
func TestPermanentFailure(t *testing.T) {
	items := dataset.Western(800, 13)
	world := geom.ItemsMBR(items)
	dir := buildDir(t, items, 2)

	var faulty *storage.Faulty
	opt := fastRecovery()
	opt.MaxRecoveries = 2
	opt.wrapShard = func(idx, attempt int, b prtree.Backend) prtree.Backend {
		if idx != 1 {
			return b
		}
		// Attempt 0 opens disarmed and is armed after Open below; every
		// reopen (attempt > 0) faults on its first read, so the
		// supervisor's scrub can never pass.
		trigger := int64(0)
		if attempt > 0 {
			trigger = 1
		}
		f := storage.NewFaulty(b, storage.FaultError, trigger)
		f.InjectReads(true)
		if attempt == 0 {
			faulty = f
		}
		return f
	}
	set, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	faulty.Arm(1)

	ctx := context.Background()
	if _, p, err := set.Window(ctx, world, 0); err != nil || !p.Degraded() {
		t.Fatalf("armed window: partial=%v err=%v, want degraded", p, err)
	}
	if set.Health() != HealthDegraded {
		t.Fatal("shard 1 never quarantined")
	}

	// Every reopen faults during the scrub, so after MaxRecoveries the
	// shard is declared failed for good.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ShardState(set.shards[1].state.Load()) == ShardFailed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := set.Stats()
	sd := st.Status[1]
	if sd.State != ShardFailed {
		t.Fatalf("shard 1 state %v after exhausted recoveries, want failed (%+v)", sd.State, sd)
	}
	if sd.Attempts != 2 {
		t.Fatalf("shard 1 made %d attempts, want exactly MaxRecoveries=2", sd.Attempts)
	}
	if sd.Recoveries != 0 {
		t.Fatalf("shard 1 claims %d recoveries while permanently failed", sd.Recoveries)
	}

	// The set still serves, degraded, off the healthy shard.
	got, p, err := set.Window(ctx, world, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Degraded() || len(p.Failed) != 1 || p.Failed[0] != 1 {
		t.Fatalf("partial %v, want shard 1 failed", p)
	}
	oracle := bruteWindow(items, world)
	if len(got) == 0 || len(got) >= len(oracle) {
		t.Fatalf("degraded result has %d of %d items", len(got), len(oracle))
	}
	if set.Health() != HealthDegraded {
		t.Fatalf("health %v with one failed shard, want degraded", set.Health())
	}
}

// TestAllShardsDown: with every shard out of rotation, queries fail with
// ErrUnavailable and health reports down.
func TestAllShardsDown(t *testing.T) {
	// Enough items that each shard's tree spans multiple pages — Open
	// caches the root, so a one-page shard would never read again.
	items := dataset.Western(800, 8)
	world := geom.ItemsMBR(items)
	dir := buildDir(t, items, 2)

	faulties := make([]*storage.Faulty, 2)
	opt := fastRecovery()
	opt.MaxRecoveries = 1
	opt.wrapShard = func(idx, attempt int, b prtree.Backend) prtree.Backend {
		trigger := int64(0)
		if attempt > 0 {
			trigger = 1
		}
		f := storage.NewFaulty(b, storage.FaultError, trigger)
		f.InjectReads(true)
		if attempt == 0 {
			faulties[idx] = f
		}
		return f
	}
	set, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	for _, f := range faulties {
		f.Arm(1)
	}

	// One armed query takes out both shards at once; reopens (trigger 1)
	// keep failing until MaxRecoveries marks them failed for good.
	ctx := context.Background()
	set.Window(ctx, world, 0)
	deadline := time.Now().Add(10 * time.Second)
	for set.Health() != HealthDown && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if set.Health() != HealthDown {
		t.Fatalf("health %v, want down (stats %+v)", set.Health(), set.Stats().Status)
	}
	if _, _, err := set.Window(ctx, world, 0); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("got %v, want ErrUnavailable", err)
	}
}
