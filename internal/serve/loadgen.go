package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"prtree/internal/geom"
)

// LoadOptions configures one load-generation run against a binary-protocol
// listener — in-process (127.0.0.1:0) or remote, the generator cannot tell
// the difference.
type LoadOptions struct {
	// Addr is the server's binary-protocol address.
	Addr string
	// Clients is the number of concurrent connections (>= 1).
	Clients int
	// Requests is the total request count, split across clients.
	Requests int
	// Rects is the window-query workload, issued round-robin. Required
	// unless NearestK > 0.
	Rects []geom.Rect
	// NearestK, when > 0, issues k-NN queries at the centers of Rects
	// instead of window queries.
	NearestK uint32
	// Tenant and DeadlineMillis are stamped on every request.
	Tenant         string
	DeadlineMillis uint32
	// Limit bounds per-query results (0 = unlimited).
	Limit uint32
	// Robust, when set, routes every request through one shared
	// RobustClient (retries, hedging, circuit breaker) instead of one
	// plain connection per worker. Addr is taken from LoadOptions.
	Robust *RobustOptions
	// Oracle, when non-nil, holds the expected full result of each
	// window query, aligned with Rects. Responses are then verified:
	// a non-degraded response must equal its oracle exactly (anything
	// else counts as Wrong), and a degraded response must be a subset
	// naming at least one failed shard. Verification applies only to
	// unlimited window workloads (Limit == 0, NearestK == 0), where the
	// full answer is well-defined.
	Oracle [][]geom.Item
}

// LoadResult is one run's aggregate outcome. Latency quantiles are exact:
// every request's wall time is recorded and sorted.
type LoadResult struct {
	Clients  int
	Requests int           // requests attempted
	Errors   int           // transport failures + server error responses
	Results  uint64        // total items returned across ok responses
	Degraded int           // ok responses missing at least one shard
	Wrong    int           // responses that failed oracle verification
	Elapsed  time.Duration // wall time of the whole run
	QPS      float64       // Requests / Elapsed
	Mean     time.Duration
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration

	// Resilience counters, populated when LoadOptions.Robust is set.
	Retries       uint64
	Hedges        uint64
	HedgeWins     uint64
	BreakerOpens  uint64
	BreakerDenied uint64
}

// RunLoad drives opt.Requests queries through opt.Clients concurrent
// connections and reports throughput and the exact latency distribution.
// Per-request failures (including rejections) are counted, not fatal; the
// returned error covers only unusable configurations.
func RunLoad(opt LoadOptions) (LoadResult, error) {
	if opt.Clients < 1 {
		opt.Clients = 1
	}
	if opt.Requests < opt.Clients {
		opt.Requests = opt.Clients
	}
	if len(opt.Rects) == 0 {
		return LoadResult{}, fmt.Errorf("serve: load generation needs a workload (Rects)")
	}
	if opt.Oracle != nil && len(opt.Oracle) != len(opt.Rects) {
		return LoadResult{}, fmt.Errorf("serve: oracle has %d entries for %d rects", len(opt.Oracle), len(opt.Rects))
	}
	verify := opt.Oracle != nil && opt.NearestK == 0 && opt.Limit == 0

	var robust *RobustClient
	if opt.Robust != nil {
		ro := *opt.Robust
		ro.Addr = opt.Addr
		robust = DialRobust(ro)
		defer robust.Close()
	}

	type clientOut struct {
		lats     []time.Duration
		errs     int
		results  uint64
		degraded int
		wrong    int
	}
	outs := make([]clientOut, opt.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	reqNo := 0
	for ci := 0; ci < opt.Clients; ci++ {
		n := opt.Requests / opt.Clients
		if ci < opt.Requests%opt.Clients {
			n++
		}
		offset := reqNo
		reqNo += n
		wg.Add(1)
		go func(ci, offset, n int) {
			defer wg.Done()
			out := &outs[ci]
			out.lats = make([]time.Duration, 0, n)
			var cl *Client
			if robust == nil {
				var err error
				cl, err = Dial(opt.Addr)
				if err != nil {
					out.errs = n
					return
				}
				defer func() { cl.Close() }()
			}
			for i := 0; i < n; i++ {
				ri := (offset + i) % len(opt.Rects)
				r := opt.Rects[ri]
				req := Request{
					Op: OpWindow, Rect: r,
					Tenant: opt.Tenant, DeadlineMillis: opt.DeadlineMillis, Limit: opt.Limit,
				}
				if opt.NearestK > 0 {
					cx, cy := r.Center()
					req = Request{
						Op: OpNearest, X: cx, Y: cy, K: opt.NearestK,
						Tenant: opt.Tenant, DeadlineMillis: opt.DeadlineMillis,
					}
				}
				t0 := time.Now()
				var res Result
				var err error
				if robust != nil {
					res, err = robust.Do(req)
				} else {
					res, err = cl.Do(req)
				}
				out.lats = append(out.lats, time.Since(t0))
				if err != nil {
					out.errs++
					// A transport failure poisons the connection; redial.
					if _, remote := err.(*RemoteError); robust == nil && !remote {
						cl.Close()
						cl, err = Dial(opt.Addr)
						if err != nil {
							out.errs += n - i - 1
							return
						}
					}
					continue
				}
				for _, set := range res.Sets {
					out.results += uint64(len(set))
				}
				out.results += uint64(len(res.Neighbors))
				if res.Degraded() {
					out.degraded++
				}
				if verify && req.Op == OpWindow && len(res.Sets) == 1 {
					if !verifyWindow(res, opt.Oracle[ri]) {
						out.wrong++
					}
				}
			}
		}(ci, offset, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := LoadResult{Clients: opt.Clients, Requests: opt.Requests, Elapsed: elapsed}
	for i := range outs {
		res.Errors += outs[i].errs
		res.Results += outs[i].results
		res.Degraded += outs[i].degraded
		res.Wrong += outs[i].wrong
	}
	if robust != nil {
		c := robust.Counters()
		res.Retries, res.Hedges, res.HedgeWins = c.Retries, c.Hedges, c.HedgeWins
		res.BreakerOpens, res.BreakerDenied = c.BreakerOpens, c.BreakerDenied
	}
	var all []time.Duration
	for i := range outs {
		all = append(all, outs[i].lats...)
	}
	if elapsed > 0 {
		res.QPS = float64(opt.Requests) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		res.Mean = sum / time.Duration(len(all))
		res.P50 = quantile(all, 0.50)
		res.P95 = quantile(all, 0.95)
		res.P99 = quantile(all, 0.99)
		res.Max = all[len(all)-1]
	}
	return res, nil
}

// verifyWindow checks one unlimited window response against its oracle:
// a complete response must match exactly (same items, same order — both
// sides use the deterministic merge order), a degraded one must be a
// strict subset that names at least one failed shard.
func verifyWindow(res Result, want []geom.Item) bool {
	got := res.Sets[0]
	if !res.Degraded() {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if len(res.FailedShards) == 0 {
		return false // degraded without naming the missing shards
	}
	// Subset check: every returned item must be in the oracle. Both sides
	// are sorted by the deterministic order, so a linear merge suffices.
	wi := 0
	for _, it := range got {
		for wi < len(want) && want[wi] != it {
			wi++
		}
		if wi == len(want) {
			return false
		}
		wi++
	}
	return true
}

// quantile returns the q-th quantile of sorted (nearest-rank method).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
