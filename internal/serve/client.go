package serve

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"prtree/internal/geom"
)

// Client is a binary-protocol connection to a prtreeserve server. It is
// not safe for concurrent use: the protocol is one request frame followed
// by one response frame, so callers wanting parallelism open one Client
// per goroutine (as the load generator does).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
}

// Dial connects to a binary-protocol listener at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. a net.Pipe end in
// tests) in the protocol.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and decodes its response. A *RemoteError carries a
// server-side rejection (overload, deadline, bad request); other errors
// are transport or framing failures.
func (c *Client) Do(req Request) (Result, error) {
	var err error
	c.buf, err = EncodeRequest(c.buf[:0], req)
	if err != nil {
		return Result{}, err
	}
	if err := WriteFrame(c.bw, c.buf); err != nil {
		return Result{}, fmt.Errorf("serve: writing request: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return Result{}, fmt.Errorf("serve: writing request: %w", err)
	}
	payload, err := ReadFrame(c.br, MaxResponseFrame)
	if err != nil {
		return Result{}, fmt.Errorf("serve: reading response: %w", err)
	}
	return DecodeResponse(payload)
}

// Window runs one window query.
func (c *Client) Window(r geom.Rect, limit uint32) ([]geom.Item, error) {
	res, err := c.Do(Request{Op: OpWindow, Rect: r, Limit: limit})
	if err != nil {
		return nil, err
	}
	if len(res.Sets) != 1 {
		return nil, fmt.Errorf("%w: window response with %d sets", ErrBadFrame, len(res.Sets))
	}
	return res.Sets[0], nil
}

// Nearest runs one k-NN query.
func (c *Client) Nearest(x, y float64, k uint32) ([]Neighbor, error) {
	res, err := c.Do(Request{Op: OpNearest, X: x, Y: y, K: k})
	if err != nil {
		return nil, err
	}
	return res.Neighbors, nil
}

// Stats fetches the server's shard count, item count and world MBR.
func (c *Client) Stats() (WireStats, error) {
	res, err := c.Do(Request{Op: OpStats})
	if err != nil {
		return WireStats{}, err
	}
	if res.Stats == nil {
		return WireStats{}, fmt.Errorf("%w: stats response without stats", ErrBadFrame)
	}
	return *res.Stats, nil
}
