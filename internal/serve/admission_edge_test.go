package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAdmissionCapZeroRejectsAll: the internal tri-state's zero is
// drain-to-zero — every request bounces, none leaks a slot.
func TestAdmissionCapZeroRejectsAll(t *testing.T) {
	a := newAdmission(1)
	a.setCap(0)
	for i := 0; i < 10; i++ {
		if err := a.acquire("t"); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("acquire %d under cap 0: %v, want ErrOverloaded", i, err)
		}
	}
	if got := a.rejectedCount(); got != 10 {
		t.Fatalf("rejected %d, want 10", got)
	}
	// Lifting the cap admits again immediately: no phantom in-flight
	// count accumulated from the rejections.
	a.setCap(1)
	if err := a.acquire("t"); err != nil {
		t.Fatalf("acquire after lifting the cap: %v", err)
	}
	a.release("t")
}

// TestAdmissionCapChangeDrainsInFlight: requests admitted under an old
// cap release their slots correctly across cap changes — including a
// change to unlimited and back — with no leak or double-release.
func TestAdmissionCapChangeDrainsInFlight(t *testing.T) {
	a := newAdmission(2)
	if err := a.acquire("t"); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire("t"); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire("t"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third acquire under cap 2: %v", err)
	}

	// Tighten to 1 with 2 in flight: still counted, still releasable.
	a.setCap(1)
	if err := a.acquire("t"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire with 2 in flight under cap 1: %v", err)
	}
	a.release("t")
	// 1 in flight == new cap: still full.
	if err := a.acquire("t"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire with 1 in flight under cap 1: %v", err)
	}
	a.release("t")
	if err := a.acquire("t"); err != nil {
		t.Fatalf("acquire with 0 in flight under cap 1: %v", err)
	}

	// Unlimited keeps counting, so flipping back to a cap sees the truth.
	a.setCap(-1)
	if err := a.acquire("t"); err != nil {
		t.Fatal(err)
	}
	a.setCap(2)
	if err := a.acquire("t"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("slots acquired while unlimited were not counted: %v", err)
	}
	a.release("t")
	a.release("t")
}

// TestAdmissionConcurrentCapChanges hammers acquire/release from many
// goroutines while the cap flaps between unlimited, zero, and small
// values. Run under -race this is the satellite's cap-vs-release race
// check; the invariant asserted at the end is exact accounting:
// everything admitted was released, so the in-flight map is empty.
func TestAdmissionConcurrentCapChanges(t *testing.T) {
	a := newAdmission(4)
	var admitted, rejected atomic.Uint64
	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		caps := []int{4, 0, -1, 1, 2}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				a.setCap(caps[i%len(caps)])
			}
		}
	}()

	var workers sync.WaitGroup
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			tenant := string(rune('a' + g%3))
			for i := 0; i < 2000; i++ {
				if err := a.acquire(tenant); err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("unexpected acquire error: %v", err)
						return
					}
					rejected.Add(1)
					continue
				}
				admitted.Add(1)
				a.release(tenant)
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	flapper.Wait()

	if admitted.Load()+rejected.Load() != 8*2000 {
		t.Fatalf("admitted %d + rejected %d != %d attempts", admitted.Load(), rejected.Load(), 8*2000)
	}
	if got := a.rejectedCount(); got != rejected.Load() {
		t.Fatalf("rejectedCount %d, callers saw %d", got, rejected.Load())
	}
	a.mu.Lock()
	leaked := len(a.inflight)
	a.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d tenants still marked in flight after full drain", leaked)
	}
}
