package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"prtree"
	"prtree/internal/dataset"
	"prtree/internal/geom"
	"prtree/internal/storage"
	"prtree/internal/workload"
)

// singleTree bulk-loads items into one file-backed tree, the reference
// every sharded result must match bit for bit.
func singleTree(t *testing.T, items []geom.Item) *prtree.Tree {
	t.Helper()
	tree, err := prtree.Create(filepath.Join(t.TempDir(), "single.pr"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(prtree.Hilbert, items); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tree.Close() })
	return tree
}

func buildSet(t *testing.T, items []geom.Item, shards int, partition string) *Set {
	t.Helper()
	dir := t.TempDir()
	if _, err := Build(dir, items, BuildOptions{Shards: shards, Partition: partition}); err != nil {
		t.Fatal(err)
	}
	set, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	return set
}

// TestShardEquivalence is the acceptance property: every query kind over
// every partitioning and shard count returns results bit-identical to the
// same dataset served from one tree.
func TestShardEquivalence(t *testing.T) {
	items := dataset.Western(3000, 42)
	n := len(items)
	world := geom.ItemsMBR(items)
	tree := singleTree(t, items)
	ctx := context.Background()

	windows := workload.Squares(world, 0.01, 8, 7)
	big := workload.Squares(world, 0.05, 4, 11)

	for _, partition := range []string{PartitionHilbert, PartitionGrid} {
		for _, shards := range []int{1, 3, 4} {
			t.Run(fmt.Sprintf("%s/%d", partition, shards), func(t *testing.T) {
				set := buildSet(t, items, shards, partition)
				if set.Len() != n {
					t.Fatalf("set holds %d items, want %d", set.Len(), n)
				}
				if set.MBR() != world {
					t.Fatalf("set MBR %v, want %v", set.MBR(), world)
				}

				// Window: intersection queries.
				for _, w := range windows {
					got, _, err := set.Window(ctx, w, 0)
					if err != nil {
						t.Fatal(err)
					}
					want, err := tree.Collect(prtree.Window(w))
					if err != nil {
						t.Fatal(err)
					}
					sortItems(want)
					assertSameItems(t, "window", got, want)
				}

				// Containment.
				for _, w := range big {
					got, _, err := set.Contained(ctx, w, 0)
					if err != nil {
						t.Fatal(err)
					}
					want, err := tree.Collect(prtree.Contained(w))
					if err != nil {
						t.Fatal(err)
					}
					sortItems(want)
					assertSameItems(t, "contained", got, want)
				}

				// Point stabbing at window centers.
				for _, w := range windows {
					x, y := w.Center()
					got, _, err := set.Point(ctx, x, y, 0)
					if err != nil {
						t.Fatal(err)
					}
					want, err := tree.Collect(prtree.Point(x, y))
					if err != nil {
						t.Fatal(err)
					}
					sortItems(want)
					assertSameItems(t, "point", got, want)
				}

				// k-NN at several centers and k values, including k beyond
				// any single shard's item count.
				for _, k := range []int{1, 10, n/shards + 5} {
					x, y := windows[0].Center()
					got, _, err := set.Nearest(ctx, x, y, k)
					if err != nil {
						t.Fatal(err)
					}
					want, err := tree.CollectNearest(prtree.Nearest(x, y, k))
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("nearest k=%d: %d results, want %d", k, len(got), len(want))
					}
					for i := range got {
						if got[i].Item != want[i].Item || got[i].Dist2 != want[i].Dist2 {
							t.Fatalf("nearest k=%d: result %d = %+v, want %+v", k, i, got[i], want[i])
						}
					}
				}

				// Batch matches per-rect windows.
				sets, _, err := set.Batch(ctx, windows, 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(sets) != len(windows) {
					t.Fatalf("batch returned %d sets, want %d", len(sets), len(windows))
				}
				for i, w := range windows {
					single, _, err := set.Window(ctx, w, 0)
					if err != nil {
						t.Fatal(err)
					}
					assertSameItems(t, "batch", sets[i], single)
				}

				// Limits: the subset is each shard's prefix merged and
				// trimmed — deterministic (repeatable) and drawn from the
				// full result, though not necessarily its global prefix.
				full, _, err := set.Window(ctx, big[0], 0)
				if err != nil {
					t.Fatal(err)
				}
				if len(full) > 3 {
					lim, _, err := set.Window(ctx, big[0], 3)
					if err != nil {
						t.Fatal(err)
					}
					if len(lim) != 3 {
						t.Fatalf("limit: got %d items, want 3", len(lim))
					}
					inFull := make(map[geom.Item]bool, len(full))
					for _, it := range full {
						inFull[it] = true
					}
					for i, it := range lim {
						if !inFull[it] {
							t.Fatalf("limit: item %v not in the full result", it)
						}
						if i > 0 && lim[i-1].ID >= it.ID {
							t.Fatalf("limit: results out of order at %d", i)
						}
					}
					again, _, err := set.Window(ctx, big[0], 3)
					if err != nil {
						t.Fatal(err)
					}
					assertSameItems(t, "limit determinism", again, lim)
				}
			})
		}
	}

	// Post-recovery bit-identity: a shard is fault-injected mid-query,
	// quarantined, and auto-recovered; every query kind must then match
	// the single tree exactly again, as if the failure never happened.
	t.Run("post-recovery", func(t *testing.T) {
		dir := t.TempDir()
		if _, err := Build(dir, items, BuildOptions{Shards: 3, Partition: PartitionHilbert}); err != nil {
			t.Fatal(err)
		}
		var faulty *storage.Faulty
		opt := OpenOptions{
			RecoveryBackoff:    time.Millisecond,
			RecoveryMaxBackoff: 5 * time.Millisecond,
		}
		opt.wrapShard = func(idx, attempt int, b prtree.Backend) prtree.Backend {
			if idx != 1 || attempt > 0 {
				return b
			}
			f := storage.NewFaulty(b, storage.FaultError, 0)
			f.InjectReads(true)
			faulty = f
			return f
		}
		set, err := Open(dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer set.Close()

		faulty.Arm(2)
		if _, p, err := set.Window(ctx, world, 0); err != nil || !p.Degraded() {
			t.Fatalf("armed window: partial=%v err=%v, want degraded", p, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for set.Health() != HealthOK && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if set.Health() != HealthOK {
			t.Fatalf("set never recovered: %+v", set.Stats().Status)
		}

		for _, w := range windows {
			got, p, err := set.Window(ctx, w, 0)
			if err != nil || p.Degraded() {
				t.Fatalf("post-recovery window: partial=%v err=%v", p, err)
			}
			want, err := tree.Collect(prtree.Window(w))
			if err != nil {
				t.Fatal(err)
			}
			sortItems(want)
			assertSameItems(t, "post-recovery window", got, want)
		}
		x, y := windows[0].Center()
		got, p, err := set.Nearest(ctx, x, y, 25)
		if err != nil || p.Degraded() {
			t.Fatalf("post-recovery nearest: partial=%v err=%v", p, err)
		}
		want, err := tree.CollectNearest(prtree.Nearest(x, y, 25))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("post-recovery nearest: %d results, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Item != want[i].Item || got[i].Dist2 != want[i].Dist2 {
				t.Fatalf("post-recovery nearest: result %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}

func assertSameItems(t *testing.T, label string, got, want []geom.Item) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: got %d items %v..., want %d items %v...", label, len(got), head(got), len(want), head(want))
	}
}

func head(items []geom.Item) []geom.Item {
	if len(items) > 3 {
		return items[:3]
	}
	return items
}

func TestBuildManifest(t *testing.T) {
	items := dataset.Western(500, 9)
	dir := t.TempDir()
	man, err := Build(dir, items, BuildOptions{Shards: 3, Partition: PartitionGrid, Loader: prtree.PR})
	if err != nil {
		t.Fatal(err)
	}
	if man.Partition != PartitionGrid || man.Loader != "PR" || len(man.Shards) != 3 {
		t.Fatalf("manifest %+v", man)
	}
	total := 0
	for _, si := range man.Shards {
		if si.Items == 0 {
			t.Fatalf("empty shard in %+v", man.Shards)
		}
		total += si.Items
	}
	if total != len(items) {
		t.Fatalf("shards hold %d items, want %d", total, len(items))
	}
	set, err := Open(dir, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if got := set.Manifest(); got.Loader != "PR" || got.Items != len(items) {
		t.Fatalf("reopened manifest %+v", got)
	}
}

func TestBuildRejects(t *testing.T) {
	dir := t.TempDir()
	if _, err := Build(dir, nil, BuildOptions{}); err == nil {
		t.Error("empty dataset: want error")
	}
	items := dataset.Western(100, 1)
	if _, err := Build(dir, items, BuildOptions{Partition: "pie"}); err == nil {
		t.Error("unknown partition: want error")
	}
	// More shards than items clamps rather than producing empty shards.
	man, err := Build(dir, items[:3], BuildOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Shards) != 3 {
		t.Errorf("got %d shards for 3 items, want 3", len(man.Shards))
	}
}

// TestSharedCacheBudget checks the global CachePages budget is split
// across shards: summed capacity never exceeds the budget.
func TestSharedCacheBudget(t *testing.T) {
	items := dataset.Western(2000, 3)
	dir := t.TempDir()
	if _, err := Build(dir, items, BuildOptions{Shards: 4}); err != nil {
		t.Fatal(err)
	}
	set, err := Open(dir, OpenOptions{CachePages: 8, Policy: prtree.EvictS3FIFO})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	st := set.Stats()
	if st.Cache.Capacity != 8 {
		t.Errorf("summed cache capacity %d, want 8", st.Cache.Capacity)
	}
	// Queries must still work under the tight budget and count IO.
	if _, _, err := set.Window(context.Background(), set.MBR(), 0); err != nil {
		t.Fatal(err)
	}
	if st = set.Stats(); st.IO.Reads == 0 {
		t.Error("no reads counted under a bounded cache")
	}
}

// TestSetDeadline checks an expired context aborts scatter-gather through
// the query executor's poll points.
func TestSetDeadline(t *testing.T) {
	items := dataset.Western(2000, 5)
	set := buildSet(t, items, 4, PartitionHilbert)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := set.Window(ctx, set.MBR(), 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("window: got %v, want context.DeadlineExceeded", err)
	}
	if _, _, err := set.Nearest(ctx, 0, 0, 10); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("nearest: got %v, want context.DeadlineExceeded", err)
	}
}
