package extsort

import (
	"fmt"
	"testing"

	"prtree/internal/storage"
)

// BenchmarkExtSort measures a multi-pass external sort end to end. The
// memory budget forces run formation plus two to three merge passes at the
// benchmark size, so both the radix run former and the loser-tree merge are
// on the measured path. Serial (workers=1) and parallel variants sort the
// same input; their block-I/O counts are identical by construction.
func BenchmarkExtSort(b *testing.B) {
	const n = 200_000
	items := randItems(n, 42)
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	mem := 16 * per // small M: several merge passes
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var lastIO uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := storage.NewDisk(storage.DefaultBlockSize)
				in := storage.NewItemFileFrom(d, items)
				d.ResetStats()
				b.StartTimer()
				out := Sort(d, in, AxisKey(0), Config{MemoryItems: mem, Workers: workers})
				lastIO = d.Stats().Total()
				if out.Len() != n {
					b.Fatalf("lost records: %d != %d", out.Len(), n)
				}
			}
			b.ReportMetric(float64(lastIO), "blockIO/op")
		})
	}
}
