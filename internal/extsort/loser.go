package extsort

import (
	"prtree/internal/storage"
)

// mergeSource is one input run of a merge: its reader plus the current
// record's encoded bytes and precomputed key. The raw bytes alias the run's
// page and flow to the output without a decode/encode round trip; only the
// key extraction decodes.
type mergeSource struct {
	r    *storage.ItemReader
	key  Key
	rec  []byte
	done bool
}

func (s *mergeSource) advance(key KeyFunc) {
	rec, ok := s.r.NextRaw()
	if !ok {
		s.done = true
		s.rec = nil
		return
	}
	s.rec = rec
	s.key = key(storage.DecodeItem(rec))
}

// loserTree is a flat tournament tree over k merge sources: node[1..k-1]
// hold the losers of each internal match and node[0] the overall winner.
// Replacing the winner and replaying its leaf-to-root path costs ceil(log2
// k) comparisons with no allocation — the container/heap it replaces boxed
// every push through an interface{}. Leaves occupy implicit positions
// k..2k-1 (source s at k+s), so the parent of source s is (s+k)/2.
type loserTree struct {
	k    int
	node []int32 // node[n] is the loser of match n; node[0] the winner
	src  []mergeSource
}

func newLoserTree(src []mergeSource) *loserTree {
	k := len(src)
	t := &loserTree{k: k, node: make([]int32, k), src: src}
	if k == 1 {
		t.node[0] = 0
		return t
	}
	t.node[0] = t.build(1)
	return t
}

// build plays the initial tournament of the subtree rooted at internal
// node n bottom-up, storing each match's loser at its node, and returns
// the subtree winner.
func (t *loserTree) build(n int) int32 {
	if n >= t.k {
		return int32(n - t.k)
	}
	a := t.build(2 * n)
	b := t.build(2*n + 1)
	if t.beats(a, b) {
		t.node[n] = b
		return a
	}
	t.node[n] = a
	return b
}

// beats reports whether source a wins the match against source b. An
// exhausted source loses to everything; equal keys go to the lower run
// index, which keeps the merge stable and byte-identical across serial and
// parallel executions.
func (t *loserTree) beats(a, b int32) bool {
	if t.src[a].done {
		return false
	}
	if t.src[b].done {
		return true
	}
	ka, kb := t.src[a].key, t.src[b].key
	if ka != kb {
		return ka.Less(kb)
	}
	return a < b
}

// replay pushes source s up from its leaf, swapping with stored losers
// until it loses or reaches the root, and records the final winner.
func (t *loserTree) replay(s int32) {
	for n := (int(s) + t.k) / 2; n > 0; n /= 2 {
		if t.beats(t.node[n], s) {
			s, t.node[n] = t.node[n], s
		}
	}
	t.node[0] = s
}

// winner returns the index of the current overall winning source, or -1
// if every source is exhausted.
func (t *loserTree) winner() int32 {
	w := t.node[0]
	if t.src[w].done {
		return -1
	}
	return w
}

// mergeRuns merges the sorted runs into one sorted file and frees them.
// A single-run group (the tail of a pass) is copied block-by-block — the
// same reads and writes as a record-at-a-time copy, without decoding.
func mergeRuns(disk storage.Backend, runs []*storage.ItemFile, key KeyFunc) *storage.ItemFile {
	out := storage.NewItemFile(disk)
	if len(runs) == 1 {
		run := runs[0]
		for b := 0; b < run.Blocks(); b++ {
			data, count := run.RawBlock(b)
			out.AppendRawBlock(data, count)
		}
		out.Seal()
		run.Free()
		return out
	}
	src := make([]mergeSource, len(runs))
	for i, run := range runs {
		src[i].r = run.Reader()
		src[i].advance(key)
	}
	t := newLoserTree(src)
	for {
		w := t.winner()
		if w < 0 {
			break
		}
		out.AppendRaw(src[w].rec)
		src[w].advance(key)
		t.replay(w)
	}
	out.Seal()
	for _, run := range runs {
		run.Free()
	}
	return out
}
