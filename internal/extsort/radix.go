package extsort

import "prtree/internal/geom"

// keyedItem pairs a record with its precomputed sort key. Run formation
// computes every key exactly once, sorts the pairs, and never calls the
// KeyFunc again for that pass.
type keyedItem struct {
	key  Key
	item geom.Item
}

// radixDigits is the number of 8-bit digit positions in a Key: four for
// the Tie (least significant) and eight for the Main.
const radixDigits = 12

// radixMinN is the size below which a binary-insertion sort beats setting
// up histograms.
const radixMinN = 48

// keyDigit extracts digit position p (LSD order) of k.
func keyDigit(k Key, p int) uint8 {
	if p < 4 {
		return uint8(k.Tie >> (8 * p))
	}
	return uint8(k.Main >> (8 * (p - 4)))
}

// sortKeyed sorts a by (key, insertion order) using an LSD radix sort on
// the 96-bit key, stable, with trivial digit positions skipped. scratch
// must be at least len(a) long. The sorted data ends up in the returned
// slice, which is either a or scratch[:len(a)].
func sortKeyed(a, scratch []keyedItem) []keyedItem {
	n := len(a)
	if n < radixMinN {
		insertionSortKeyed(a)
		return a
	}
	// One scan builds the histogram of every digit position, so passes
	// whose 256 values collapse to one bucket (common in the high bytes of
	// both Tie and Main) are skipped without touching the data.
	var counts [radixDigits][256]int32
	for i := range a {
		k := a[i].key
		counts[0][uint8(k.Tie)]++
		counts[1][uint8(k.Tie>>8)]++
		counts[2][uint8(k.Tie>>16)]++
		counts[3][uint8(k.Tie>>24)]++
		counts[4][uint8(k.Main)]++
		counts[5][uint8(k.Main>>8)]++
		counts[6][uint8(k.Main>>16)]++
		counts[7][uint8(k.Main>>24)]++
		counts[8][uint8(k.Main>>32)]++
		counts[9][uint8(k.Main>>40)]++
		counts[10][uint8(k.Main>>48)]++
		counts[11][uint8(k.Main>>56)]++
	}
	src, dst := a, scratch[:n]
	for p := 0; p < radixDigits; p++ {
		c := &counts[p]
		if trivialDigit(c, n) {
			continue
		}
		// Prefix sums turn counts into scatter offsets.
		var sum int32
		for v := 0; v < 256; v++ {
			sum, c[v] = sum+c[v], sum
		}
		for i := range src {
			d := keyDigit(src[i].key, p)
			dst[c[d]] = src[i]
			c[d]++
		}
		src, dst = dst, src
	}
	return src
}

// trivialDigit reports whether every record shares the same value at this
// digit position (one bucket holds all n).
func trivialDigit(c *[256]int32, n int) bool {
	for v := 0; v < 256; v++ {
		if int(c[v]) == n {
			return true
		}
		if c[v] != 0 {
			return false
		}
	}
	return true
}

func insertionSortKeyed(a []keyedItem) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && x.key.Less(a[j].key) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}
