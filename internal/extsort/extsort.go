// Package extsort implements the external multiway merge sort that every
// bulk-loading algorithm in the paper relies on: run formation with M
// records in main memory followed by (M/B)-way merge passes, for a total of
// O((N/B) log_{M/B}(N/B)) block I/Os. All reads and writes go through
// storage.ItemFile, so the sort's I/O cost is measured, not modeled.
//
// The pipeline is allocation-lean and optionally parallel. Run formation
// precomputes every record's Key once, sorts (key, record) pairs with an
// LSD radix sort, and reuses per-worker buffers across runs; merge passes
// drive a flat loser tree that moves encoded records (and, for run copies,
// whole blocks) without decode/encode round trips. With Config.Workers > 1
// run formation and the independent merge groups of each pass run on a
// GOMAXPROCS-bounded worker pool. Run boundaries, output bytes, and the
// disk's read/write counters are identical at every worker count: the input
// scan stays sequential, runs are fixed M-record chunks, and each merge
// group's output depends only on its own inputs.
package extsort

import (
	"math"
	"sync"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Key is a sort key with a total order: Main first, then Tie (conventionally
// the rectangle id, which makes every ordering strict even with duplicate
// coordinates — the paper assumes distinct coordinates; the tie-break
// removes that assumption).
type Key struct {
	Main uint64
	Tie  uint32
}

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.Main != o.Main {
		return k.Main < o.Main
	}
	return k.Tie < o.Tie
}

// KeyFunc extracts the sort key of an item. It must be pure and safe to
// call from multiple goroutines (every provided KeyFunc is).
type KeyFunc func(geom.Item) Key

// Float64Key maps a float64 to a uint64 such that the uint64 order matches
// the float64 order (for all non-NaN values, with -0 == +0 ordered by bits).
// This is the classic sign-flip trick.
func Float64Key(v float64) uint64 {
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}

// AxisKey returns a KeyFunc ordering items by the axis-th corner-transform
// coordinate (0=xmin, 1=ymin, 2=xmax, 3=ymax), ties broken by id. Axes 2
// and 3 sort ascending; callers wanting "maximal xmax first" iterate from
// the tail or use ReverseAxisKey.
func AxisKey(axis int) KeyFunc {
	return func(it geom.Item) Key {
		return Key{Main: Float64Key(it.Rect.Coord(axis)), Tie: it.ID}
	}
}

// ReverseAxisKey orders items by descending axis coordinate.
func ReverseAxisKey(axis int) KeyFunc {
	return func(it geom.Item) Key {
		return Key{Main: ^Float64Key(it.Rect.Coord(axis)), Tie: it.ID}
	}
}

// UintKey adapts a uint64-valued function (e.g. a Hilbert index) into a
// KeyFunc with id tie-break.
func UintKey(f func(geom.Item) uint64) KeyFunc {
	return func(it geom.Item) Key {
		return Key{Main: f(it), Tie: it.ID}
	}
}

// Config controls the sort's memory budget and parallelism.
type Config struct {
	// MemoryItems is M: the number of records that fit in main memory.
	// Runs are formed with M records; merges use up to M/B-1 input streams.
	MemoryItems int
	// Workers bounds the sort's concurrency: at most Workers run-formation
	// or merge tasks in flight, further capped at GOMAXPROCS. Zero or one
	// means serial. Any value produces byte-identical output and identical
	// block-I/O counts; parallel runs temporarily hold up to about
	// Workers+1 chunks of M records in memory instead of one.
	Workers int
}

// Sort externally sorts in by key and returns a new sealed file with the
// sorted records. The input file is left intact; intermediate runs are
// freed. MemoryItems must allow at least three blocks (two inputs + one
// output) or Sort panics.
func Sort(disk storage.Backend, in *storage.ItemFile, key KeyFunc, cfg Config) *storage.ItemFile {
	perBlock := storage.ItemsPerBlock(disk.BlockSize())
	m := cfg.MemoryItems
	if m < 3*perBlock {
		panic("extsort: memory budget below three blocks")
	}
	if in.Len() == 0 {
		out := storage.NewItemFile(disk)
		out.Seal()
		return out
	}
	workers := boundWorkers(cfg.Workers)

	runs := formRuns(disk, in, key, m, workers)
	fanIn := m/perBlock - 1
	if fanIn < 2 {
		fanIn = 2
	}
	for len(runs) > 1 {
		groups := (len(runs) + fanIn - 1) / fanIn
		next := make([]*storage.ItemFile, groups)
		// Merge groups are independent: group g always merges the same
		// slice of runs into next[g], so output order and per-group bytes
		// match the serial pass exactly.
		Parallel(workers, groups, func(g int) {
			lo := g * fanIn
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			next[g] = mergeRuns(disk, runs[lo:hi], key)
		})
		runs = next
	}
	return runs[0]
}

// SortItems sorts an in-memory slice by key (used when N <= M, where the
// paper switches to internal-memory construction). The slice is sorted in
// place and also returned. Each key is computed exactly once.
func SortItems(items []geom.Item, key KeyFunc) []geom.Item {
	if len(items) < 2 {
		return items
	}
	keyed := make([]keyedItem, len(items))
	for i, it := range items {
		keyed[i] = keyedItem{key: key(it), item: it}
	}
	scratch := make([]keyedItem, len(items))
	sorted := sortKeyed(keyed, scratch)
	for i := range sorted {
		items[i] = sorted[i].item
	}
	return items
}

// runChunk is one M-record slice of the input, tagged with its position so
// parallel workers can deposit the finished run at the right index.
type runChunk struct {
	idx   int
	items []geom.Item
}

// formRuns cuts the input into fixed chunks of m records, sorts each, and
// writes each as a run. The input scan is a single sequential reader in
// every mode, so each input block is read exactly once; only the sort and
// the run writes fan out to workers.
func formRuns(disk storage.Backend, in *storage.ItemFile, key KeyFunc, m, workers int) []*storage.ItemFile {
	nRuns := (in.Len() + m - 1) / m
	runs := make([]*storage.ItemFile, nRuns)
	if workers > nRuns {
		workers = nRuns // never size buffers or goroutines beyond the work
	}
	if workers <= 1 || nRuns <= 1 {
		s := newRunSorter(m)
		r := in.Reader()
		buf := make([]geom.Item, 0, min(m, in.Len()))
		for idx := 0; idx < nRuns; idx++ {
			buf = fillChunk(r, buf[:0], m)
			runs[idx] = s.writeRun(disk, buf, key)
		}
		return runs
	}

	// Pipeline: the caller's goroutine reads chunks in order while workers
	// sort and write them. Chunk buffers are recycled through a channel so
	// steady-state memory stays at about (workers+1) chunks.
	chunks := make(chan runChunk, workers)
	spare := make(chan []geom.Item, workers+1)
	for i := 0; i < workers+1; i++ {
		spare <- make([]geom.Item, 0, m)
	}
	var wg sync.WaitGroup
	var pmu sync.Mutex
	var pval any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if pval == nil {
						pval = r
					}
					pmu.Unlock()
					// Drain so the reader never blocks — recycling each
					// drained buffer, or the reader would eventually
					// starve on <-spare and the panic would turn into a
					// deadlock instead of propagating.
					for c := range chunks {
						select {
						case spare <- c.items[:0]:
						default:
						}
					}
				}
			}()
			var s *runSorter // arena allocated on first claimed chunk
			for c := range chunks {
				if s == nil {
					s = newRunSorter(m)
				}
				runs[c.idx] = s.writeRun(disk, c.items, key)
				select {
				case spare <- c.items[:0]:
				default:
				}
			}
		}()
	}
	r := in.Reader()
	for idx := 0; idx < nRuns; idx++ {
		buf := fillChunk(r, (<-spare)[:0], m)
		chunks <- runChunk{idx: idx, items: buf}
	}
	close(chunks)
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
	return runs
}

func fillChunk(r *storage.ItemReader, buf []geom.Item, m int) []geom.Item {
	for len(buf) < m {
		it, ok := r.Next()
		if !ok {
			break
		}
		buf = append(buf, it)
	}
	return buf
}

// runSorter is one worker's scratch arena: the keyed and scratch slices
// are reused for every run the worker forms, so steady-state run formation
// allocates nothing beyond the run files themselves.
type runSorter struct {
	keyed   []keyedItem
	scratch []keyedItem
}

func newRunSorter(m int) *runSorter {
	return &runSorter{
		keyed:   make([]keyedItem, 0, m),
		scratch: make([]keyedItem, m),
	}
}

func (s *runSorter) writeRun(disk storage.Backend, items []geom.Item, key KeyFunc) *storage.ItemFile {
	keyed := s.keyed[:0]
	for _, it := range items {
		keyed = append(keyed, keyedItem{key: key(it), item: it})
	}
	sorted := sortKeyed(keyed, s.scratch)
	f := storage.NewItemFile(disk)
	for i := range sorted {
		f.Append(sorted[i].item)
	}
	f.Seal()
	return f
}
