// Package extsort implements the external multiway merge sort that every
// bulk-loading algorithm in the paper relies on: run formation with M
// records in main memory followed by (M/B)-way merge passes, for a total of
// O((N/B) log_{M/B}(N/B)) block I/Os. All reads and writes go through
// storage.ItemFile, so the sort's I/O cost is measured, not modeled.
package extsort

import (
	"container/heap"
	"math"
	"sort"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Key is a sort key with a total order: Main first, then Tie (conventionally
// the rectangle id, which makes every ordering strict even with duplicate
// coordinates — the paper assumes distinct coordinates; the tie-break
// removes that assumption).
type Key struct {
	Main uint64
	Tie  uint32
}

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.Main != o.Main {
		return k.Main < o.Main
	}
	return k.Tie < o.Tie
}

// KeyFunc extracts the sort key of an item.
type KeyFunc func(geom.Item) Key

// Float64Key maps a float64 to a uint64 such that the uint64 order matches
// the float64 order (for all non-NaN values, with -0 == +0 ordered by bits).
// This is the classic sign-flip trick.
func Float64Key(v float64) uint64 {
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}

// AxisKey returns a KeyFunc ordering items by the axis-th corner-transform
// coordinate (0=xmin, 1=ymin, 2=xmax, 3=ymax), ties broken by id. Axes 2
// and 3 sort ascending; callers wanting "maximal xmax first" iterate from
// the tail or use ReverseAxisKey.
func AxisKey(axis int) KeyFunc {
	return func(it geom.Item) Key {
		return Key{Main: Float64Key(it.Rect.Coord(axis)), Tie: it.ID}
	}
}

// ReverseAxisKey orders items by descending axis coordinate.
func ReverseAxisKey(axis int) KeyFunc {
	return func(it geom.Item) Key {
		return Key{Main: ^Float64Key(it.Rect.Coord(axis)), Tie: it.ID}
	}
}

// UintKey adapts a uint64-valued function (e.g. a Hilbert index) into a
// KeyFunc with id tie-break.
func UintKey(f func(geom.Item) uint64) KeyFunc {
	return func(it geom.Item) Key {
		return Key{Main: f(it), Tie: it.ID}
	}
}

// Config controls the sort's memory budget.
type Config struct {
	// MemoryItems is M: the number of records that fit in main memory.
	// Runs are formed with M records; merges use up to M/B-1 input streams.
	MemoryItems int
}

// Sort externally sorts in by key and returns a new sealed file with the
// sorted records. The input file is left intact; intermediate runs are
// freed. MemoryItems must allow at least three blocks (two inputs + one
// output) or Sort panics.
func Sort(disk *storage.Disk, in *storage.ItemFile, key KeyFunc, cfg Config) *storage.ItemFile {
	perBlock := storage.ItemsPerBlock(disk.BlockSize())
	m := cfg.MemoryItems
	if m < 3*perBlock {
		panic("extsort: memory budget below three blocks")
	}
	if in.Len() == 0 {
		out := storage.NewItemFile(disk)
		out.Seal()
		return out
	}

	runs := formRuns(disk, in, key, m)
	fanIn := m/perBlock - 1
	if fanIn < 2 {
		fanIn = 2
	}
	for len(runs) > 1 {
		var next []*storage.ItemFile
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			next = append(next, mergeRuns(disk, runs[lo:hi], key))
		}
		runs = next
	}
	return runs[0]
}

// SortItems sorts an in-memory slice by key (used when N <= M, where the
// paper switches to internal-memory construction). The slice is sorted in
// place and also returned.
func SortItems(items []geom.Item, key KeyFunc) []geom.Item {
	keys := make([]Key, len(items))
	for i, it := range items {
		keys[i] = key(it)
	}
	sort.Sort(&keyedItems{items: items, keys: keys})
	return items
}

type keyedItems struct {
	items []geom.Item
	keys  []Key
}

func (s *keyedItems) Len() int           { return len(s.items) }
func (s *keyedItems) Less(i, j int) bool { return s.keys[i].Less(s.keys[j]) }
func (s *keyedItems) Swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

func formRuns(disk *storage.Disk, in *storage.ItemFile, key KeyFunc, m int) []*storage.ItemFile {
	var runs []*storage.ItemFile
	r := in.Reader()
	buf := make([]geom.Item, 0, m)
	for {
		buf = buf[:0]
		for len(buf) < m {
			it, ok := r.Next()
			if !ok {
				break
			}
			buf = append(buf, it)
		}
		if len(buf) == 0 {
			break
		}
		SortItems(buf, key)
		runs = append(runs, storage.NewItemFileFrom(disk, buf))
		if len(buf) < m {
			break
		}
	}
	return runs
}

type mergeHead struct {
	item geom.Item
	key  Key
	src  int
}

type mergeHeap []mergeHead

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].key.Less(h[j].key) }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeHead)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func mergeRuns(disk *storage.Disk, runs []*storage.ItemFile, key KeyFunc) *storage.ItemFile {
	out := storage.NewItemFile(disk)
	readers := make([]*storage.ItemReader, len(runs))
	h := make(mergeHeap, 0, len(runs))
	for i, run := range runs {
		readers[i] = run.Reader()
		if it, ok := readers[i].Next(); ok {
			h = append(h, mergeHead{item: it, key: key(it), src: i})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		head := h[0]
		out.Append(head.item)
		if it, ok := readers[head.src].Next(); ok {
			h[0] = mergeHead{item: it, key: key(it), src: head.src}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	out.Seal()
	for _, run := range runs {
		run.Free()
	}
	return out
}
