package extsort

import "prtree/internal/parallel"

// Parallel runs fn(0), ..., fn(n-1) on up to workers goroutines (bounded by
// GOMAXPROCS) and returns when all calls have finished. It is a re-export of
// parallel.Run, kept on this package because the bulk-load pipeline's other
// layers (the pseudo-PR-tree grid stage, the TGS axis sorts) reach their
// pool discipline through the sort package; new code should import
// internal/parallel directly.
func Parallel(workers, n int, fn func(i int)) { parallel.Run(workers, n, fn) }

// boundWorkers clamps a requested worker count to [1, GOMAXPROCS].
func boundWorkers(workers int) int { return parallel.Bound(workers) }
