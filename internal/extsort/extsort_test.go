package extsort

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// allowParallelism raises GOMAXPROCS so the worker pool actually fans out
// even on single-CPU machines (Workers is clamped to GOMAXPROCS). Returns
// a restore function.
func allowParallelism() func() {
	old := runtime.GOMAXPROCS(4)
	return func() { runtime.GOMAXPROCS(old) }
}

func randItems(n int, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, n)
	for i := range items {
		x, y := rng.Float64()*1000-500, rng.Float64()*1000-500
		items[i] = geom.Item{
			Rect: geom.NewRect(x, y, x+rng.Float64(), y+rng.Float64()),
			ID:   uint32(i),
		}
	}
	return items
}

func TestFloat64KeyOrderPreserving(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -2.5, -1, -0.001, 0, 0.001, 1, 2.5, 1e300, math.Inf(1)}
	for i := 0; i < len(vals)-1; i++ {
		if !(Float64Key(vals[i]) < Float64Key(vals[i+1])) {
			t.Errorf("key order broken between %g and %g", vals[i], vals[i+1])
		}
	}
}

func TestFloat64KeyQuick(t *testing.T) {
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a == b {
			return true // -0 and +0 compare equal as floats but differ in bits; skip
		}
		return (a < b) == (Float64Key(a) < Float64Key(b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyLessTieBreak(t *testing.T) {
	a := Key{Main: 5, Tie: 1}
	b := Key{Main: 5, Tie: 2}
	if !a.Less(b) || b.Less(a) {
		t.Error("tie-break by Tie failed")
	}
	c := Key{Main: 4, Tie: 9}
	if !c.Less(a) {
		t.Error("Main ordering failed")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
}

func checkSortedByAxis(t *testing.T, items []geom.Item, axis int) {
	t.Helper()
	for i := 1; i < len(items); i++ {
		prev, cur := items[i-1], items[i]
		pc, cc := prev.Rect.Coord(axis), cur.Rect.Coord(axis)
		if pc > cc || (pc == cc && prev.ID >= cur.ID) {
			t.Fatalf("not sorted at %d: (%g,%d) then (%g,%d)", i, pc, prev.ID, cc, cur.ID)
		}
	}
}

func TestSortSmallSingleRun(t *testing.T) {
	d := storage.NewDisk(storage.DefaultBlockSize)
	items := randItems(200, 1)
	in := storage.NewItemFileFrom(d, items)
	out := Sort(d, in, AxisKey(0), Config{MemoryItems: 10000})
	got := out.ReadAll()
	if len(got) != 200 {
		t.Fatalf("len = %d", len(got))
	}
	checkSortedByAxis(t, got, 0)
}

func TestSortMultiPass(t *testing.T) {
	d := storage.NewDisk(storage.DefaultBlockSize)
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	n := per * 50
	items := randItems(n, 2)
	in := storage.NewItemFileFrom(d, items)
	// Tiny memory: runs of 3 blocks, fan-in 2 => several merge passes.
	out := Sort(d, in, AxisKey(2), Config{MemoryItems: 3 * per})
	got := out.ReadAll()
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	checkSortedByAxis(t, got, 2)
}

func TestSortAllAxes(t *testing.T) {
	d := storage.NewDisk(storage.DefaultBlockSize)
	items := randItems(1500, 3)
	for axis := 0; axis < 4; axis++ {
		in := storage.NewItemFileFrom(d, items)
		out := Sort(d, in, AxisKey(axis), Config{MemoryItems: 500})
		checkSortedByAxis(t, out.ReadAll(), axis)
		out.Free()
		in.Free()
	}
}

func TestSortPreservesMultiset(t *testing.T) {
	d := storage.NewDisk(storage.DefaultBlockSize)
	items := randItems(777, 4)
	in := storage.NewItemFileFrom(d, items)
	out := Sort(d, in, AxisKey(1), Config{MemoryItems: 400})
	got := out.ReadAll()
	seen := make(map[uint32]geom.Item, len(got))
	for _, it := range got {
		seen[it.ID] = it
	}
	if len(seen) != len(items) {
		t.Fatalf("lost items: %d unique of %d", len(seen), len(items))
	}
	for _, it := range items {
		if seen[it.ID] != it {
			t.Fatalf("item %d corrupted", it.ID)
		}
	}
}

func TestSortEmptyAndSingle(t *testing.T) {
	d := storage.NewDisk(storage.DefaultBlockSize)
	empty := storage.NewItemFileFrom(d, nil)
	out := Sort(d, empty, AxisKey(0), Config{MemoryItems: 1000})
	if out.Len() != 0 {
		t.Errorf("empty sort len = %d", out.Len())
	}
	one := storage.NewItemFileFrom(d, randItems(1, 5))
	out = Sort(d, one, AxisKey(0), Config{MemoryItems: 1000})
	if out.Len() != 1 {
		t.Errorf("single sort len = %d", out.Len())
	}
}

func TestSortDuplicateCoordinatesStableByID(t *testing.T) {
	d := storage.NewDisk(storage.DefaultBlockSize)
	items := make([]geom.Item, 100)
	for i := range items {
		items[i] = geom.Item{Rect: geom.NewRect(1, 2, 3, 4), ID: uint32(99 - i)}
	}
	in := storage.NewItemFileFrom(d, items)
	out := Sort(d, in, AxisKey(0), Config{MemoryItems: 400})
	got := out.ReadAll()
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Fatalf("duplicate coords must be ordered by id: %d then %d", got[i-1].ID, got[i].ID)
		}
	}
}

func TestReverseAxisKey(t *testing.T) {
	d := storage.NewDisk(storage.DefaultBlockSize)
	items := randItems(300, 6)
	in := storage.NewItemFileFrom(d, items)
	out := Sort(d, in, ReverseAxisKey(3), Config{MemoryItems: 400})
	got := out.ReadAll()
	for i := 1; i < len(got); i++ {
		if got[i-1].Rect.MaxY < got[i].Rect.MaxY {
			t.Fatalf("descending sort broken at %d", i)
		}
	}
}

func TestUintKey(t *testing.T) {
	d := storage.NewDisk(storage.DefaultBlockSize)
	items := randItems(300, 7)
	in := storage.NewItemFileFrom(d, items)
	out := Sort(d, in, UintKey(func(it geom.Item) uint64 { return uint64(it.ID % 7) }),
		Config{MemoryItems: 400})
	got := out.ReadAll()
	for i := 1; i < len(got); i++ {
		a, b := got[i-1].ID%7, got[i].ID%7
		if a > b {
			t.Fatalf("uint key sort broken at %d", i)
		}
	}
}

func TestSortIOComplexity(t *testing.T) {
	// With memory m and input n blocks, the sort should cost
	// O(n log_{m/B}(n/m)) block I/Os; check against a generous constant.
	d := storage.NewDisk(storage.DefaultBlockSize)
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	nBlocks := 64
	memBlocks := 4 // fan-in 3
	items := randItems(nBlocks*per, 8)
	in := storage.NewItemFileFrom(d, items)
	d.ResetStats()
	out := Sort(d, in, AxisKey(0), Config{MemoryItems: memBlocks * per})
	st := d.Stats()
	// passes = 1 (runs) + ceil(log_3(16 runs)) = 1+3 = 4; each pass reads+writes n blocks.
	maxIO := uint64(2 * nBlocks * 6)
	if st.Total() > maxIO {
		t.Errorf("sort cost %d I/Os, want <= %d", st.Total(), maxIO)
	}
	checkSortedByAxis(t, out.ReadAll(), 0)
}

func TestSortFreesIntermediateRuns(t *testing.T) {
	d := storage.NewDisk(storage.DefaultBlockSize)
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	items := randItems(per*20, 9)
	in := storage.NewItemFileFrom(d, items)
	before := d.PagesInUse()
	out := Sort(d, in, AxisKey(0), Config{MemoryItems: 3 * per})
	// Only the output file (20 blocks) should remain beyond the input.
	if got := d.PagesInUse() - before; got != out.Blocks() {
		t.Errorf("leaked pages: %d in use beyond input, output has %d", got, out.Blocks())
	}
}

// rawBytes concatenates a sealed file's encoded blocks without counting
// I/O, for byte-level comparisons.
func rawBytes(d *storage.Disk, f *storage.ItemFile) []byte {
	var out []byte
	r := f.Reader()
	for {
		rec, ok := r.NextRaw()
		if !ok {
			return out
		}
		out = append(out, rec...)
	}
}

// TestSortSerialParallelEquivalence is the determinism property test: for
// every (seed, memory budget, worker count) the parallel sort must produce
// byte-identical output and identical disk read/write counters to the
// serial sort of the same input.
func TestSortSerialParallelEquivalence(t *testing.T) {
	defer allowParallelism()()
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	keys := map[string]KeyFunc{
		"axis0": AxisKey(0),
		"rev3":  ReverseAxisKey(3),
		"uint":  UintKey(func(it geom.Item) uint64 { return uint64(it.ID) % 97 }),
	}
	for _, seed := range []int64{1, 7} {
		for _, n := range []int{1, per * 2, 5000, 20011} {
			items := randItems(n, seed)
			for _, mem := range []int{3 * per, 8 * per, 4096} {
				for name, key := range keys {
					// Serial reference.
					ds := storage.NewDisk(storage.DefaultBlockSize)
					ins := storage.NewItemFileFrom(ds, items)
					ds.ResetStats()
					outS := Sort(ds, ins, key, Config{MemoryItems: mem, Workers: 1})
					statS := ds.Stats()
					bytesS := rawBytes(ds, outS)

					for _, workers := range []int{2, 3, 8} {
						dp := storage.NewDisk(storage.DefaultBlockSize)
						inp := storage.NewItemFileFrom(dp, items)
						dp.ResetStats()
						outP := Sort(dp, inp, key, Config{MemoryItems: mem, Workers: workers})
						statP := dp.Stats()
						if statP != statS {
							t.Fatalf("seed=%d n=%d mem=%d key=%s workers=%d: stats %v != serial %v",
								seed, n, mem, name, workers, statP, statS)
						}
						if outP.Blocks() != outS.Blocks() {
							t.Fatalf("seed=%d n=%d mem=%d key=%s workers=%d: %d blocks != serial %d",
								seed, n, mem, name, workers, outP.Blocks(), outS.Blocks())
						}
						bytesP := rawBytes(dp, outP)
						if string(bytesP) != string(bytesS) {
							t.Fatalf("seed=%d n=%d mem=%d key=%s workers=%d: output bytes differ from serial",
								seed, n, mem, name, workers)
						}
					}
				}
			}
		}
	}
}

// TestSortReleasesScratchPages enforces the "intermediate runs are freed"
// contract: after a multi-pass sort the disk must hold exactly the input
// and output pages, at every worker count, and freeing both must return
// the disk to empty.
func TestSortReleasesScratchPages(t *testing.T) {
	defer allowParallelism()()
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	for _, workers := range []int{1, 4} {
		d := storage.NewDisk(storage.DefaultBlockSize)
		items := randItems(per*20+17, 9)
		in := storage.NewItemFileFrom(d, items)
		// Tiny memory: fan-in 2, three merge passes over 7 runs.
		out := Sort(d, in, AxisKey(0), Config{MemoryItems: 3 * per, Workers: workers})
		if got, want := d.PagesInUse(), in.Blocks()+out.Blocks(); got != want {
			t.Errorf("workers=%d: %d pages in use after sort, want input+output = %d", workers, got, want)
		}
		out.Free()
		in.Free()
		if got := d.PagesInUse(); got != 0 {
			t.Errorf("workers=%d: %d pages still in use after freeing input and output", workers, got)
		}
	}
}

// TestSortKeyedMatchesStdSort cross-checks the radix sort against the
// standard library on keys with heavy duplication in Main (exercising the
// Tie digits and pass skipping).
func TestSortKeyedMatchesStdSort(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 2, radixMinN - 1, radixMinN, 1000, 10000} {
		a := make([]keyedItem, n)
		for i := range a {
			a[i] = keyedItem{
				key:  Key{Main: uint64(rng.Intn(8)) << 40, Tie: uint32(rng.Uint64())},
				item: geom.Item{ID: uint32(i)},
			}
		}
		ref := make([]keyedItem, n)
		copy(ref, a)
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].key.Less(ref[j].key) })
		got := sortKeyed(a, make([]keyedItem, n))
		for i := range got {
			if got[i].key != ref[i].key {
				t.Fatalf("n=%d: mismatch at %d: %+v != %+v", n, i, got[i].key, ref[i].key)
			}
		}
	}
}

func TestParallelHelper(t *testing.T) {
	defer allowParallelism()()
	hits := make([]int32, 1000)
	Parallel(8, len(hits), func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d run %d times", i, h)
		}
	}
	// Serial fallback.
	Parallel(1, 10, func(i int) { hits[i]++ })
	// Panic propagation.
	defer func() {
		if recover() == nil {
			t.Error("worker panic not propagated")
		}
	}()
	Parallel(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestSortTinyMemoryPanics(t *testing.T) {
	d := storage.NewDisk(storage.DefaultBlockSize)
	in := storage.NewItemFileFrom(d, randItems(10, 10))
	defer func() {
		if recover() == nil {
			t.Error("sub-3-block memory should panic")
		}
	}()
	Sort(d, in, AxisKey(0), Config{MemoryItems: 5})
}

func TestSortItemsMatchesStdSort(t *testing.T) {
	items := randItems(1000, 11)
	ref := make([]geom.Item, len(items))
	copy(ref, items)
	sort.Slice(ref, func(i, j int) bool {
		if ref[i].Rect.MinY != ref[j].Rect.MinY {
			return ref[i].Rect.MinY < ref[j].Rect.MinY
		}
		return ref[i].ID < ref[j].ID
	})
	SortItems(items, AxisKey(1))
	for i := range items {
		if items[i] != ref[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

// TestSortParallelWorkerPanicPropagates: a panicking KeyFunc must surface
// on the caller's goroutine even with the pipeline engaged — the panic
// path recycles chunk buffers, so the reader can never starve into a
// deadlock. A regression here shows up as this test timing out.
func TestSortParallelWorkerPanicPropagates(t *testing.T) {
	defer allowParallelism()()
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	d := storage.NewDisk(storage.DefaultBlockSize)
	// Many more runs than buffers so the reader must wait on recycling.
	in := storage.NewItemFileFrom(d, randItems(per*200, 12))
	poison := func(it geom.Item) Key {
		if it.ID == 5000 {
			panic("poisoned key")
		}
		return Key{Main: uint64(it.ID)}
	}
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		Sort(d, in, poison, Config{MemoryItems: 3 * per, Workers: 4})
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Sort deadlocked instead of propagating the worker panic")
	}
}
