package rtree

import (
	"fmt"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Validate checks the structural invariants of the tree and returns the
// first violation found, or nil. It verifies:
//
//   - every leaf sits at level 0 (uniform depth, the defining R-tree shape);
//   - every internal entry's rectangle equals the exact MBR of its child
//     (raw pages), or conservatively contains it (compressed pages, whose
//     entries are outward-rounded covers);
//   - node counts are within [1, fanout] (the root leaf may be empty);
//   - the recorded item and node counts match the actual tree;
//   - no page is referenced twice.
func (t *Tree) Validate() error {
	seen := make(map[storage.PageID]bool)
	items, nodes, err := t.validate(t.root, t.height-1, seen)
	if err != nil {
		return err
	}
	if items != t.nItems {
		return fmt.Errorf("rtree: item count %d, tree reports %d", items, t.nItems)
	}
	if nodes != t.nNodes {
		return fmt.Errorf("rtree: node count %d, tree reports %d", nodes, t.nNodes)
	}
	return nil
}

func (t *Tree) validate(id storage.PageID, level int, seen map[storage.PageID]bool) (items, nodes int, err error) {
	if seen[id] {
		return 0, 0, fmt.Errorf("rtree: page %d referenced twice", id)
	}
	seen[id] = true
	v := t.readView(id)
	cnt := v.count()
	if cnt > t.cfg.Fanout {
		return 0, 0, fmt.Errorf("rtree: page %d holds %d entries, fanout %d", id, cnt, t.cfg.Fanout)
	}
	if v.isLeaf() {
		if level != 0 {
			return 0, 0, fmt.Errorf("rtree: leaf %d at level %d", id, level)
		}
		if cnt == 0 && id != t.root {
			return 0, 0, fmt.Errorf("rtree: non-root leaf %d is empty", id)
		}
		return cnt, 1, nil
	}
	if level == 0 {
		return 0, 0, fmt.Errorf("rtree: internal node %d at leaf level", id)
	}
	if cnt == 0 {
		return 0, 0, fmt.Errorf("rtree: internal node %d is empty", id)
	}
	nodes = 1
	for i := 0; i < cnt; i++ {
		r := v.rectAt(i)
		child := storage.PageID(v.refAt(i))
		// The recursive child read below may refresh this page's cached
		// bytes' residency, but never their content: reads don't write, so
		// the view stays valid across the recursion.
		got := t.readView(child).mbr()
		if v.comp {
			// Compressed entries are conservative covers of the child MBR;
			// equality would only hold when the cover is exactly on-grid.
			if !r.Contains(got) {
				return 0, 0, fmt.Errorf("rtree: node %d entry %d cover %v does not contain child MBR %v", id, i, r, got)
			}
		} else if got != r {
			return 0, 0, fmt.Errorf("rtree: node %d entry %d rect %v != child MBR %v", id, i, r, got)
		}
		ci, cnodes, err := t.validate(child, level-1, seen)
		if err != nil {
			return 0, 0, err
		}
		items += ci
		nodes += cnodes
	}
	return items, nodes, nil
}

// CheckQueryAgainstBruteForce compares the tree's window-query output with
// a brute-force scan over universe and returns an error describing the
// first discrepancy. It is a test helper shared by all loader test suites.
func CheckQueryAgainstBruteForce(t *Tree, universe []geom.Item, q geom.Rect) error {
	want := make(map[uint32]geom.Rect)
	for _, it := range universe {
		if q.Intersects(it.Rect) {
			want[it.ID] = it.Rect
		}
	}
	got := make(map[uint32]geom.Rect)
	t.Query(q, func(it geom.Item) bool {
		if _, dup := got[it.ID]; dup {
			// Duplicate report: flag via sentinel entry.
			got[^uint32(0)] = it.Rect
		}
		got[it.ID] = it.Rect
		return true
	})
	if len(got) != len(want) {
		return fmt.Errorf("query %v: got %d results, want %d", q, len(got), len(want))
	}
	for id, r := range want {
		gr, ok := got[id]
		if !ok {
			return fmt.Errorf("query %v: missing item %d (%v)", q, id, r)
		}
		if gr != r {
			return fmt.Errorf("query %v: item %d rect %v, want %v", q, id, gr, r)
		}
	}
	return nil
}
