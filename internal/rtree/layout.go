package rtree

import (
	"fmt"

	"prtree/internal/storage"
)

// Layout selects the on-disk page format. Every page carries its own
// format flag in the header, so trees of either layout read pages of both;
// the Layout in Config only decides what new pages are written as.
type Layout int

const (
	// LayoutRaw is the paper's exact layout: 36-byte entries (four float64
	// coordinates plus a 4-byte pointer), max fanout 113 at 4 KB blocks.
	LayoutRaw Layout = iota
	// LayoutCompressed stores one exact base MBR per page plus 12-byte
	// entries whose corners are 16-bit fixed-point offsets, rounded outward
	// so each entry conservatively covers the true rectangle (max fanout
	// 338 at 4 KB blocks). Internal pages always compress; leaf pages
	// compress only when every coordinate round-trips bit-exactly and fall
	// back to the raw format otherwise, so query results never change.
	LayoutCompressed
)

// This block is the single home of the per-layout geometry. MaxFanout,
// ItemsPerBlock-style computations and the codecs all derive from these
// four constants; a third format must add its row here rather than scatter
// entry math across call sites.
const (
	// rawHeaderSize is the raw page header: kind, flags, uint16 count.
	rawHeaderSize = 4
	// rawEntrySize is the raw entry width (the input record width: the
	// paper's 36-byte rectangle record).
	rawEntrySize = storage.ItemSize
	// compHeaderSize extends the raw header with the exact base MBR
	// (4 float64) the fixed-point offsets are relative to.
	compHeaderSize = rawHeaderSize + 32
	// compEntrySize is the compressed entry width.
	compEntrySize = storage.QEntrySize
)

// EntrySize is the raw on-disk entry footprint, kept as a package constant
// for callers that predate the second layout.
const EntrySize = rawEntrySize

// HeaderSize returns the page header bytes of the layout.
func (l Layout) HeaderSize() int {
	if l == LayoutCompressed {
		return compHeaderSize
	}
	return rawHeaderSize
}

// EntrySize returns the per-entry bytes of the layout.
func (l Layout) EntrySize() int {
	if l == LayoutCompressed {
		return compEntrySize
	}
	return rawEntrySize
}

// MaxFanout returns the maximum entries per node of the layout at the
// given block size: 113 raw, 338 compressed for 4 KB blocks.
func (l Layout) MaxFanout(blockSize int) int {
	return (blockSize - l.HeaderSize()) / l.EntrySize()
}

// String returns the prbench flag spelling of the layout.
func (l Layout) String() string {
	switch l {
	case LayoutRaw:
		return "raw"
	case LayoutCompressed:
		return "compressed"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// ParseLayout parses the prbench flag spelling.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "raw":
		return LayoutRaw, nil
	case "compressed":
		return LayoutCompressed, nil
	}
	return 0, fmt.Errorf("rtree: unknown layout %q (want raw or compressed)", s)
}

// MaxFanout returns the raw layout's maximum entries per node for a block
// size (113 for 4 KB blocks) — the paper's fanout.
func MaxFanout(blockSize int) int {
	return LayoutRaw.MaxFanout(blockSize)
}
