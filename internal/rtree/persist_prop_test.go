package rtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"prtree/internal/geom"
)

// TestLoadRejectsRawFlaggedOversizedRoot covers the hostile flag/count
// combination on the other side of the per-page-layout bound: a snapshot
// of a compressed tree (fanout 338) whose root page has its compressed
// flag cleared must be rejected, not indexed past the block as a raw page
// holding more entries than a raw page can.
func TestLoadRejectsRawFlaggedOversizedRoot(t *testing.T) {
	// Enough items for a root with > 113 children at compressed fanout.
	items := xSorted(gridItems(338*130, 16, 1))
	tr := buildLayout(t, items, LayoutCompressed, 4096)
	rootView := tr.readView(tr.Root())
	if rootView.isLeaf() || !rootView.comp || rootView.count() <= MaxFanout(4096) {
		t.Fatalf("test premise: root comp=%v count=%d", rootView.comp, rootView.count())
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Snapshot layout: "PRDISK01" + blockSize u32 + numPages u32 +
	// freeCount u32 + free[] + pages. Clear the root page's flag byte.
	data := buf.Bytes()
	freeCount := int(uint32(data[16]) | uint32(data[17])<<8 | uint32(data[18])<<16 | uint32(data[19])<<24)
	pageOff := 20 + 4*freeCount + int(tr.Root())*4096
	if data[pageOff+1]&flagCompressed == 0 {
		t.Fatal("did not land on the compressed root page")
	}
	data[pageOff+1] = 0
	if _, err := Load(bytes.NewReader(data), -1); err == nil {
		t.Fatal("Load accepted a raw-flagged root with a compressed-sized count")
	}
}

// TestPersistReopenProperty is the persistence acceptance property:
// bulk-built trees of both layouts, across block sizes and seeds, must
// survive a Save -> Load round trip with their structural invariants
// intact (Validate walks every page) and bit-identical query results.
func TestPersistReopenProperty(t *testing.T) {
	for _, blockSize := range []int{512, 1024, 4096, 8192} {
		for _, layout := range []Layout{LayoutRaw, LayoutCompressed} {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("block=%d/%s/seed=%d", blockSize, layout, seed)
				t.Run(name, func(t *testing.T) {
					var items []geom.Item
					if seed%2 == 1 {
						items = gridItems(2500, 16, seed)
					} else {
						items = randItems(2500, seed)
					}
					items = xSorted(items)
					orig := buildLayout(t, items, layout, blockSize)

					// A few dynamic updates before saving, so reopened
					// trees carry update-path pages (requantized covers,
					// raw-fallback splits) too.
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 50; i++ {
						x, y := rng.Float64(), rng.Float64()
						orig.Insert(geom.Item{Rect: geom.NewRect(x, y, x+0.01, y+0.01), ID: uint32(100000 + i)})
					}
					for i := 0; i < 20; i++ {
						orig.Delete(items[i*7])
					}
					if err := orig.Validate(); err != nil {
						t.Fatalf("pre-save: %v", err)
					}

					var buf bytes.Buffer
					if err := orig.Save(&buf); err != nil {
						t.Fatalf("save: %v", err)
					}
					reopened, err := Load(&buf, -1)
					if err != nil {
						t.Fatalf("load: %v", err)
					}
					if err := reopened.Validate(); err != nil {
						t.Fatalf("post-load: %v", err)
					}
					if reopened.Layout() != layout || reopened.Len() != orig.Len() ||
						reopened.Height() != orig.Height() || reopened.Nodes() != orig.Nodes() {
						t.Fatalf("metadata drift: layout %v len %d height %d nodes %d, want %v %d %d %d",
							reopened.Layout(), reopened.Len(), reopened.Height(), reopened.Nodes(),
							layout, orig.Len(), orig.Height(), orig.Nodes())
					}
					if reopened.MBR() != orig.MBR() {
						t.Fatalf("MBR drift: %v != %v", reopened.MBR(), orig.MBR())
					}

					for i := 0; i < 30; i++ {
						x, y := rng.Float64(), rng.Float64()
						q := geom.NewRect(x, y, x+rng.Float64()*0.3, y+rng.Float64()*0.3)
						// Same tree shape on both sides, so even the
						// result ORDER must match exactly.
						a := orig.QueryCollect(q)
						b := reopened.QueryCollect(q)
						if len(a) != len(b) {
							t.Fatalf("query %v: %d vs %d results", q, len(a), len(b))
						}
						for j := range a {
							if a[j] != b[j] {
								t.Fatalf("query %v result %d: %v != %v", q, j, a[j], b[j])
							}
						}
						rn, _ := orig.NearestNeighbors(x, y, 10)
						ln, _ := reopened.NearestNeighbors(x, y, 10)
						if len(rn) != len(ln) {
							t.Fatalf("knn length %d vs %d", len(rn), len(ln))
						}
						for j := range rn {
							if rn[j] != ln[j] {
								t.Fatalf("knn result %d: %v != %v", j, rn[j], ln[j])
							}
						}
					}
				})
			}
		}
	}
}
