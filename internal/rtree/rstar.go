package rtree

import (
	"sort"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// This file implements the R*-tree insertion heuristics of Beckmann,
// Kriegel, Schneider and Seeger (SIGMOD 1990) — reference [6] of the
// PR-tree paper and the strongest classical update heuristic. The paper's
// Section 4 raises "what happens to the performance when we apply
// heuristic update algorithms" to a bulk-loaded PR-tree as future work;
// experiments.FutureWorkUpdates measures exactly that, using either
// Guttman's or these R* updates.
//
// Enabled via Config.Split = RStarSplit, which switches three behaviors:
//
//   - ChooseSubtree minimizes overlap enlargement at the leaf level
//     (ties: area enlargement, then area) instead of pure area enlargement;
//   - the first overflow of each level per insertion triggers a forced
//     reinsertion of the 30% of entries farthest from the node center;
//   - node splits pick the axis with the minimum margin sum and the
//     distribution with minimum overlap (ties: minimum total area).

// rstarReinsertFraction is the share of entries evicted on first overflow.
const rstarReinsertFraction = 0.30

// rstarMinFillFraction is the m/M ratio of candidate split distributions.
const rstarMinFillFraction = 0.40

// insertRStar is the R* analogue of insertAtLevel. reinsertedLevels tracks
// which levels already used their forced reinsertion for this logical
// insertion (R* allows one per level).
func (t *Tree) insertRStar(r geom.Rect, ref uint32, level int, reinserted map[int]bool) {
	path := t.choosePathRStar(r, level)
	target := path[len(path)-1]
	target.n.append(r, ref)
	t.adjustPathRStar(path, level, reinserted)
}

// choosePathRStar descends to targetLevel using the R* ChooseSubtree rule.
func (t *Tree) choosePathRStar(r geom.Rect, targetLevel int) []pathStep {
	path := make([]pathStep, 0, t.height)
	id := t.root
	for level := t.height - 1; ; level-- {
		n := t.readNode(id)
		step := pathStep{page: id, n: n, childIdx: -1}
		if level == targetLevel {
			path = append(path, step)
			return path
		}
		var best int
		if level == targetLevel+1 {
			best = chooseByOverlap(n, r)
		} else {
			best = chooseByArea(n, r)
		}
		step.childIdx = best
		path = append(path, step)
		id = storage.PageID(n.refs[best])
	}
}

// chooseByArea picks the child needing the least area enlargement.
func chooseByArea(n *node, r geom.Rect) int {
	best := -1
	var bestEnl, bestArea float64
	for i := range n.rects {
		enl := n.rects[i].EnlargementArea(r)
		area := n.rects[i].Area()
		if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// chooseByOverlap picks the child whose overlap with its siblings grows
// the least when enlarged to cover r (the R* rule for the level above the
// leaves), with area enlargement and area as tie-breaks.
func chooseByOverlap(n *node, r geom.Rect) int {
	best := -1
	var bestOv, bestEnl, bestArea float64
	for i := range n.rects {
		grown := n.rects[i].Union(r)
		var ov float64
		for j := range n.rects {
			if j == i {
				continue
			}
			ov += overlapArea(grown, n.rects[j]) - overlapArea(n.rects[i], n.rects[j])
		}
		enl := n.rects[i].EnlargementArea(r)
		area := n.rects[i].Area()
		if best == -1 || ov < bestOv ||
			(ov == bestOv && (enl < bestEnl || (enl == bestEnl && area < bestArea))) {
			best, bestOv, bestEnl, bestArea = i, ov, enl, area
		}
	}
	return best
}

func overlapArea(a, b geom.Rect) float64 {
	iv, ok := a.Intersect(b)
	if !ok {
		return 0
	}
	return iv.Area()
}

// adjustPathRStar propagates writes, splits and forced reinsertions. Like
// adjustPath, overflow is judged by overflows and splits may yield
// more than two pieces under the compressed layout.
func (t *Tree) adjustPathRStar(path []pathStep, targetLevel int, reinserted map[int]bool) {
	var splits []ChildEntry
	// Entries evicted for reinsertion, grouped with their level.
	var evicted []orphan
	for i := len(path) - 1; i >= 0; i-- {
		step := path[i]
		n := step.n
		level := targetLevel + (len(path) - 1 - i)
		for _, s := range splits {
			n.append(s.Rect, uint32(s.Page))
		}
		splits = splits[:0]
		splitUp := func(over *node) *node {
			pieces := t.splitToFit(over)
			t.writeNode(step.page, pieces[0])
			for _, p := range pieces[1:] {
				id := t.allocNode(p)
				splits = append(splits, ChildEntry{Rect: p.mbr(), Page: id})
			}
			return pieces[0]
		}
		var written *node
		switch {
		case !t.overflows(n):
			t.writeNode(step.page, n)
			written = n
		case i > 0 && !reinserted[level]:
			// Forced reinsertion: evict the entries farthest from the
			// node's center, reinsert them after the pass. The kept node
			// can still overflow a shrunken capacity, in which case it
			// splits as usual.
			reinserted[level] = true
			keep := t.evictFarthest(n, &evicted, level)
			step.n = keep
			if t.overflows(keep) {
				written = splitUp(keep)
			} else {
				t.writeNode(step.page, keep)
				written = keep
			}
		default:
			written = splitUp(n)
		}
		if i > 0 {
			parent := path[i-1]
			parent.n.rects[parent.childIdx] = written.mbr()
		}
	}
	t.growRoot(splits)
	for _, o := range evicted {
		t.insertRStar(o.rect, o.ref, o.level, reinserted)
	}
}

// evictFarthest removes the rstarReinsertFraction entries whose centers
// are farthest from the node's MBR center, appending them to evicted, and
// returns the kept node.
func (t *Tree) evictFarthest(n *node, evicted *[]orphan, level int) *node {
	cx, cy := n.mbr().Center()
	type distEntry struct {
		idx  int
		dist float64
	}
	ds := make([]distEntry, n.count())
	for i := range n.rects {
		ex, ey := n.rects[i].Center()
		dx, dy := ex-cx, ey-cy
		ds[i] = distEntry{idx: i, dist: dx*dx + dy*dy}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].dist > ds[b].dist })
	nEvict := int(float64(n.count()) * rstarReinsertFraction)
	if nEvict < 1 {
		nEvict = 1
	}
	drop := make(map[int]bool, nEvict)
	for _, d := range ds[:nEvict] {
		drop[d.idx] = true
		*evicted = append(*evicted, orphan{rect: n.rects[d.idx], ref: n.refs[d.idx], level: level})
	}
	keep := &node{kind: n.kind}
	for i := range n.rects {
		if !drop[i] {
			keep.append(n.rects[i], n.refs[i])
		}
	}
	return keep
}

// splitRStar implements the R* topological split: choose the axis with the
// minimum total margin over all candidate distributions, then the
// distribution with minimum overlap (ties: minimum combined area).
func (t *Tree) splitRStar(n *node) (*node, *node) {
	m := int(float64(n.count()) * rstarMinFillFraction)
	if m < 1 {
		m = 1
	}
	if 2*m > n.count() {
		m = n.count() / 2
	}

	type dist struct {
		order []int
		k     int // left group size
	}
	bestAxisMargin := -1.0
	var bestAxisDists []dist
	for axis := 0; axis < 2; axis++ {
		for _, byUpper := range []bool{false, true} {
			order := make([]int, n.count())
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool {
				ra, rb := n.rects[order[a]], n.rects[order[b]]
				var va, vb float64
				switch {
				case axis == 0 && !byUpper:
					va, vb = ra.MinX, rb.MinX
				case axis == 0 && byUpper:
					va, vb = ra.MaxX, rb.MaxX
				case axis == 1 && !byUpper:
					va, vb = ra.MinY, rb.MinY
				default:
					va, vb = ra.MaxY, rb.MaxY
				}
				if va != vb {
					return va < vb
				}
				return n.refs[order[a]] < n.refs[order[b]]
			})
			var dists []dist
			margin := 0.0
			for k := m; k <= n.count()-m; k++ {
				left, right := groupRects(n, order, k)
				margin += left.Perimeter() + right.Perimeter()
				dists = append(dists, dist{order: order, k: k})
			}
			if bestAxisMargin < 0 || margin < bestAxisMargin {
				bestAxisMargin = margin
				bestAxisDists = dists
			}
		}
	}

	bestOv, bestArea := -1.0, 0.0
	var best dist
	for _, d := range bestAxisDists {
		left, right := groupRects(n, d.order, d.k)
		ov := overlapArea(left, right)
		area := left.Area() + right.Area()
		if bestOv < 0 || ov < bestOv || (ov == bestOv && area < bestArea) {
			bestOv, bestArea, best = ov, area, d
		}
	}
	g1 := &node{kind: n.kind}
	g2 := &node{kind: n.kind}
	for i, idx := range best.order {
		if i < best.k {
			g1.append(n.rects[idx], n.refs[idx])
		} else {
			g2.append(n.rects[idx], n.refs[idx])
		}
	}
	return g1, g2
}

func groupRects(n *node, order []int, k int) (geom.Rect, geom.Rect) {
	left := geom.EmptyRect()
	for _, idx := range order[:k] {
		left = left.Union(n.rects[idx])
	}
	right := geom.EmptyRect()
	for _, idx := range order[k:] {
		right = right.Union(n.rects[idx])
	}
	return left, right
}
