package rtree

import (
	"container/heap"
	"math"
	"sort"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// This file is the unified query executor behind every spatial read path:
// window, point (a degenerate window), containment and k-nearest-neighbor
// queries all run through RunWindow / RunNearest with per-query options —
// cooperative cancellation polled at node-visit granularity and a result
// limit — so the public facade can expose one composable query surface
// without duplicating traversals.

// RunOptions carries the per-query execution knobs.
type RunOptions struct {
	// Cancel, when non-nil, is polled before every node visit; a non-nil
	// return aborts the traversal immediately and becomes the query's
	// error. Statistics cover the work done up to that point.
	Cancel func() error
	// Limit, when positive, ends the query (successfully) as soon as that
	// many results have been reported.
	Limit int
}

// RunWindow reports every stored item matching q to fn, in unspecified
// order: the items intersecting q when contain is false (window and point
// stabbing queries), or the items fully contained in q when contain is
// true. fn returning false stops the query early; fn must not mutate the
// tree (the traversal reads node entries in place from the page cache).
//
// The traversal is an explicit-stack preorder walk over zero-copy views —
// children are pushed in reverse so pages are visited in exactly the order
// the recursive formulation would, keeping I/O traces identical even under
// a bounded LRU. Both predicates prune identically on descent (a contained
// entry must intersect q), so block-I/O accounting matches the paper's
// window-query measurement for every kind.
//
// Compressed internal pages are filtered in the quantized integer domain:
// the query is quantized outward once per page (CoverQuery) and entries
// compare as four uint16 pairs, with conservative covers on both sides, so
// no truly matching subtree is ever skipped. Leaf entries are exact under
// both layouts (lossless compression or raw fallback), keeping reported
// results bit-identical to the raw layout.
// When the pager has prefetch enabled, each internal visit hands it the
// batch of matching children before descending: the PR-tree structure makes
// these hints free — a node's four priority leaves (and its filtered
// subtree children) are all known the moment the node is decoded, before
// any recursion — and every pushed page is guaranteed to be visited absent
// early exit, so speculative reads are almost never wasted. The next page
// to be visited (top of stack) is excluded: demand fetches it immediately.
func (t *Tree) RunWindow(q geom.Rect, contain bool, fn func(geom.Item) bool, opt RunOptions) (QueryStats, error) {
	var st QueryStats
	prefetch := t.pager.PrefetchEnabled()
	sp := t.grabStack()
	stack := append(*sp, t.root)
	for len(stack) > 0 {
		if opt.Cancel != nil {
			if err := opt.Cancel(); err != nil {
				t.releaseStack(sp, stack)
				return st, err
			}
		}
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := t.readView(id)
		st.NodesVisited++
		if v.isLeaf() {
			st.LeavesVisited++
			for i, cnt := 0, v.count(); i < cnt; i++ {
				r := v.rectAt(i)
				if contain {
					if !q.Contains(r) {
						continue
					}
				} else if !q.Intersects(r) {
					continue
				}
				st.Results++
				if fn != nil && !fn(geom.Item{Rect: r, ID: v.refAt(i)}) {
					t.releaseStack(sp, stack)
					return st, nil
				}
				if opt.Limit > 0 && st.Results >= opt.Limit {
					t.releaseStack(sp, stack)
					return st, nil
				}
			}
			continue
		}
		st.InternalVisited++
		base := len(stack)
		if v.comp {
			qq := v.qz.CoverQuery(q)
			for i := v.count() - 1; i >= 0; i-- {
				if v.qrectAt(i).Intersects(qq) {
					stack = append(stack, storage.PageID(v.refAt(i)))
				}
			}
		} else {
			for i := v.count() - 1; i >= 0; i-- {
				if q.Intersects(v.rectAt(i)) {
					stack = append(stack, storage.PageID(v.refAt(i)))
				}
			}
		}
		if prefetch && len(stack)-base > 1 {
			t.pager.Prefetch(stack[base : len(stack)-1])
		}
	}
	t.releaseStack(sp, stack)
	return st, nil
}

// RunNearest returns the k stored rectangles closest to (x, y) in
// ascending distance order, using best-first search: a global priority
// queue over node bounding-box distances guarantees no node is read unless
// it could contain one of the k answers. opt.Cancel is polled before every
// node visit; opt.Limit caps the result count below k.
//
// Ties at the k-th distance are resolved deterministically by ascending
// item ID, so the result set is a pure function of the stored items — in
// particular it is identical whichever page layout (and hence tree shape)
// the items were loaded into. Compressed internal pages contribute
// admissible lower-bound distances (their entries are conservative covers
// of the true child MBRs), which preserves best-first correctness.
// With pager prefetch enabled, expanding an internal node hints its
// zero-distance children (the subtrees containing the query point): under
// best-first order they sit at the top of the queue and are all but certain
// to be expanded, so they are the kNN analogue of the window walk's
// known-before-recursion priority-leaf hints.
func (t *Tree) RunNearest(x, y float64, k int, opt RunOptions) ([]Neighbor, QueryStats, error) {
	var st QueryStats
	if opt.Limit > 0 && opt.Limit < k {
		k = opt.Limit
	}
	if k <= 0 || t.nItems == 0 {
		return nil, st, nil
	}
	pq := knnHeaps.Get().(*distHeap)
	defer func() { *pq = (*pq)[:0]; knnHeaps.Put(pq) }()
	*pq = (*pq)[:0]
	heap.Push(pq, distEntry{dist2: 0, page: t.root, isNode: true})
	out := make([]Neighbor, 0, k)
	// Once k results are held, keep draining entries at exactly the k-th
	// distance so every boundary candidate surfaces; ties collects them.
	kth := math.Inf(1)
	var ties []Neighbor
	for pq.Len() > 0 {
		if len(out) == k && (*pq)[0].dist2 > kth {
			break
		}
		e := heap.Pop(pq).(distEntry)
		if !e.isNode {
			if len(out) < k {
				out = append(out, Neighbor{Item: e.item, Dist2: e.dist2})
				if len(out) == k {
					kth = out[k-1].Dist2
				}
			} else if e.dist2 == kth {
				ties = append(ties, Neighbor{Item: e.item, Dist2: e.dist2})
			}
			continue
		}
		if opt.Cancel != nil {
			if err := opt.Cancel(); err != nil {
				return nil, st, err
			}
		}
		v := t.readView(e.page)
		st.NodesVisited++
		if v.isLeaf() {
			st.LeavesVisited++
			for i, cnt := 0, v.count(); i < cnt; i++ {
				r := v.rectAt(i)
				heap.Push(pq, distEntry{
					dist2: pointRectDist2(x, y, r),
					item:  geom.Item{Rect: r, ID: v.refAt(i)},
				})
			}
		} else {
			st.InternalVisited++
			if t.pager.PrefetchEnabled() {
				var hints [8]storage.PageID
				nh := 0
				for i, cnt := 0, v.count(); i < cnt; i++ {
					d := pointRectDist2(x, y, v.rectAt(i))
					child := storage.PageID(v.refAt(i))
					heap.Push(pq, distEntry{dist2: d, page: child, isNode: true})
					if d == 0 && nh < len(hints) {
						hints[nh] = child
						nh++
					}
				}
				if nh > 1 {
					t.pager.Prefetch(hints[:nh])
				}
			} else {
				for i, cnt := 0, v.count(); i < cnt; i++ {
					heap.Push(pq, distEntry{
						dist2:  pointRectDist2(x, y, v.rectAt(i)),
						page:   storage.PageID(v.refAt(i)),
						isNode: true,
					})
				}
			}
		}
	}
	if len(ties) > 0 {
		// Re-select the boundary: among every item at the k-th distance,
		// keep the smallest IDs.
		i := len(out)
		for i > 0 && out[i-1].Dist2 == kth {
			i--
		}
		group := make([]Neighbor, 0, len(out)-i+len(ties))
		group = append(group, out[i:]...)
		group = append(group, ties...)
		sort.Slice(group, func(a, b int) bool { return group[a].Item.ID < group[b].Item.ID })
		out = append(out[:i], group[:k-i]...)
	}
	// Canonical order: ascending distance, ties by ID. Equal-distance items
	// can surface in tree-shape-dependent order (one may hide in a
	// not-yet-expanded equal-distance node while another pops), so the sort
	// — not discovery order — defines the result sequence.
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist2 != out[b].Dist2 {
			return out[a].Dist2 < out[b].Dist2
		}
		return out[a].Item.ID < out[b].Item.ID
	})
	st.Results = len(out)
	return out, st, nil
}
