// Package rtree implements the paged R-tree container shared by every index
// variant in this repository: the on-disk node layouts (the paper's exact
// raw layout — one node per 4 KB block, 36-byte entries, max fanout 113 —
// plus the compressed quantized-MBR layout with 12-byte entries and fanout
// 338), the window-query engine with block-level I/O accounting, bottom-up
// and top-down build helpers for the bulk loaders, Guttman's dynamic update
// algorithms, and structural validation used by the tests.
package rtree

import (
	"fmt"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Node kinds as stored in the page header.
const (
	kindLeaf     byte = 0
	kindInternal byte = 1
)

// headerSize is the raw per-page header: kind byte, flag byte, uint16
// count. Compressed pages extend it with the base MBR (see layout.go).
const headerSize = rawHeaderSize

// ChildEntry describes a child of an internal node: the minimal bounding
// box of the child's subtree and the page holding the child.
type ChildEntry struct {
	Rect geom.Rect
	Page storage.PageID
}

// node is the in-memory form of a page. For compressed internal pages the
// rects are the decoded conservative covers (what any reader of the page
// sees); for raw pages and lossless compressed leaves they are exact.
type node struct {
	kind  byte
	rects []geom.Rect
	// refs holds data ids for leaves and child page ids for internal nodes.
	refs []uint32
}

func (n *node) isLeaf() bool { return n.kind == kindLeaf }
func (n *node) count() int   { return len(n.rects) }

func (n *node) mbr() geom.Rect {
	out := geom.EmptyRect()
	for _, r := range n.rects {
		out = out.Union(r)
	}
	return out
}

func (n *node) items() []geom.Item {
	out := make([]geom.Item, len(n.rects))
	for i := range n.rects {
		out[i] = geom.Item{Rect: n.rects[i], ID: n.refs[i]}
	}
	return out
}

func (n *node) children() []ChildEntry {
	out := make([]ChildEntry, len(n.rects))
	for i := range n.rects {
		out[i] = ChildEntry{Rect: n.rects[i], Page: storage.PageID(n.refs[i])}
	}
	return out
}

func (n *node) append(r geom.Rect, ref uint32) {
	n.rects = append(n.rects, r)
	n.refs = append(n.refs, ref)
}

func (n *node) remove(i int) {
	n.rects = append(n.rects[:i], n.rects[i+1:]...)
	n.refs = append(n.refs[:i], n.refs[i+1:]...)
}

// encodeRawNode serializes n into a block-sized buffer in the raw layout.
func encodeRawNode(buf []byte, n *node) []byte {
	cnt := n.count()
	need := headerSize + cnt*rawEntrySize
	if need > len(buf) {
		panic(fmt.Sprintf("rtree: node with %d entries does not fit in %d-byte block", cnt, len(buf)))
	}
	encodeHeader(buf, n.kind, cnt)
	off := headerSize
	for i := 0; i < cnt; i++ {
		storage.EncodeItem(buf[off:], geom.Item{Rect: n.rects[i], ID: n.refs[i]})
		off += rawEntrySize
	}
	return buf[:need]
}

// encodeNode serializes n in the requested layout. Under LayoutCompressed,
// internal nodes compress (and n.rects canonicalize to the decoded covers)
// whenever their union is finite, and leaves compress when every
// coordinate round-trips losslessly; pages that cannot compress fall back
// to the raw format — the per-page header flag keeps readers format-aware.
func encodeNode(buf []byte, n *node, layout Layout) []byte {
	if layout == LayoutCompressed {
		if n.isLeaf() {
			if data, _, ok := encodeCompressedLeaf(buf, n.items()); ok {
				return data
			}
		} else if data, ok := encodeCompressedInternalNode(buf, n); ok {
			return data
		}
	}
	return encodeRawNode(buf, n)
}

// nodeView is a zero-copy window onto a page's bytes: header fields come
// straight from the page header and entries are decoded lazily, one at a
// time, so a cache-hit node visit allocates nothing. For compressed pages
// the view carries the quantizer derived from the header base MBR and
// dequantizes entries on access. Views are values — do not take their
// address — and borrow the pager's cached slice: they are only valid until
// the next write to the page, so callers must not mutate the tree while
// holding one.
type nodeView struct {
	data []byte
	qz   geom.Quantizer // valid only when comp
	comp bool
}

// makeView wraps page bytes, deriving the quantizer for compressed pages.
func makeView(data []byte) nodeView {
	v := nodeView{data: data}
	if pageIsCompressed(data) {
		v.comp = true
		v.qz = geom.NewQuantizer(decodeBase(data))
	}
	return v
}

func (v nodeView) isLeaf() bool { return v.data[0] == kindLeaf }

func (v nodeView) count() int { return int(v.data[2]) | int(v.data[3])<<8 }

// entryOff returns the byte offset of entry i.
func (v nodeView) entryOff(i int) int {
	if v.comp {
		return compHeaderSize + i*compEntrySize
	}
	return headerSize + i*rawEntrySize
}

// rectAt decodes entry i's rectangle: exact for raw pages and lossless
// compressed leaves, the conservative cover for compressed internal pages.
func (v nodeView) rectAt(i int) geom.Rect {
	if v.comp {
		return v.qz.Dequantize(storage.DecodeQRect(v.data[v.entryOff(i):]))
	}
	return storage.DecodeRect(v.data[v.entryOff(i):])
}

// qrectAt returns entry i's quantized rectangle (compressed pages only),
// for integer-domain overlap tests against a CoverQuery rectangle.
func (v nodeView) qrectAt(i int) geom.QRect {
	return storage.DecodeQRect(v.data[v.entryOff(i):])
}

// refAt decodes entry i's reference: a data id in leaves, a child page id
// in internal nodes.
func (v nodeView) refAt(i int) uint32 {
	if v.comp {
		return storage.DecodeQRef(v.data[v.entryOff(i):])
	}
	return storage.DecodeRef(v.data[v.entryOff(i):])
}

func (v nodeView) itemAt(i int) geom.Item {
	if v.comp {
		off := v.entryOff(i)
		return geom.Item{
			Rect: v.qz.Dequantize(storage.DecodeQRect(v.data[off:])),
			ID:   storage.DecodeQRef(v.data[off:]),
		}
	}
	return storage.DecodeItem(v.data[v.entryOff(i):])
}

// mbr unions every entry rectangle, matching (*node).mbr bit for bit.
func (v nodeView) mbr() geom.Rect {
	out := geom.EmptyRect()
	for i, cnt := 0, v.count(); i < cnt; i++ {
		out = out.Union(v.rectAt(i))
	}
	return out
}

// items materializes every entry (used by Walk, which hands callers a
// slice; the query paths never call this).
func (v nodeView) items() []geom.Item {
	out := make([]geom.Item, v.count())
	for i := range out {
		out[i] = v.itemAt(i)
	}
	return out
}

// encodeHeader stamps the raw page header.
func encodeHeader(buf []byte, kind byte, cnt int) {
	buf[0] = kind
	buf[1] = 0
	buf[2] = byte(cnt)
	buf[3] = byte(cnt >> 8)
}

// encodeRawLeafPage serializes a leaf holding items directly into a
// block-sized buffer, returning the encoded prefix and the leaf MBR. The
// bulk-load builder uses it to write pages without materializing a node.
func encodeRawLeafPage(buf []byte, items []geom.Item) ([]byte, geom.Rect) {
	need := headerSize + len(items)*rawEntrySize
	if need > len(buf) {
		panic(fmt.Sprintf("rtree: leaf with %d entries does not fit in %d-byte block", len(items), len(buf)))
	}
	encodeHeader(buf, kindLeaf, len(items))
	mbr := geom.EmptyRect()
	off := headerSize
	for _, it := range items {
		storage.EncodeItem(buf[off:], it)
		mbr = mbr.Union(it.Rect)
		off += rawEntrySize
	}
	return buf[:need], mbr
}

// encodeLeafPage serializes a leaf page in the requested layout (with the
// lossless-or-raw rule under LayoutCompressed), returning the encoded
// prefix and the page's canonical MBR.
func encodeLeafPage(buf []byte, items []geom.Item, layout Layout) ([]byte, geom.Rect) {
	if layout == LayoutCompressed {
		if data, mbr, ok := encodeCompressedLeaf(buf, items); ok {
			return data, mbr
		}
	}
	return encodeRawLeafPage(buf, items)
}

// encodeRawInternalPage is encodeRawLeafPage for an internal node.
func encodeRawInternalPage(buf []byte, children []ChildEntry) ([]byte, geom.Rect) {
	need := headerSize + len(children)*rawEntrySize
	if need > len(buf) {
		panic(fmt.Sprintf("rtree: internal node with %d entries does not fit in %d-byte block", len(children), len(buf)))
	}
	encodeHeader(buf, kindInternal, len(children))
	mbr := geom.EmptyRect()
	off := headerSize
	for _, c := range children {
		storage.EncodeItem(buf[off:], geom.Item{Rect: c.Rect, ID: uint32(c.Page)})
		mbr = mbr.Union(c.Rect)
		off += rawEntrySize
	}
	return buf[:need], mbr
}

// encodeInternalPage serializes an internal page in the requested layout.
// The returned MBR is canonical: for compressed pages it is the union of
// the decoded covers (what parents must store), for raw pages the exact
// union.
func encodeInternalPage(buf []byte, children []ChildEntry, layout Layout) ([]byte, geom.Rect) {
	if layout == LayoutCompressed {
		if data, mbr, ok := encodeCompressedInternal(buf, children); ok {
			return data, mbr
		}
	}
	return encodeRawInternalPage(buf, children)
}

// decodeNode parses a page of either format into a node.
func decodeNode(data []byte) *node {
	v := makeView(data)
	cnt := v.count()
	n := &node{
		kind:  data[0],
		rects: make([]geom.Rect, cnt),
		refs:  make([]uint32, cnt),
	}
	for i := 0; i < cnt; i++ {
		n.rects[i] = v.rectAt(i)
		n.refs[i] = v.refAt(i)
	}
	return n
}
