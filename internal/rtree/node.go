// Package rtree implements the paged R-tree container shared by every index
// variant in this repository: the on-disk node layout (one node per 4 KB
// block, 36-byte entries, max fanout 113 — the paper's exact layout), the
// window-query engine with block-level I/O accounting, bottom-up and
// top-down build helpers for the bulk loaders, Guttman's dynamic update
// algorithms, and structural validation used by the tests.
package rtree

import (
	"fmt"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Node kinds as stored in the page header.
const (
	kindLeaf     byte = 0
	kindInternal byte = 1
)

// headerSize is the per-page header: kind byte, pad byte, uint16 count.
const headerSize = 4

// EntrySize is the on-disk entry footprint (rect + 4-byte pointer).
const EntrySize = storage.ItemSize

// MaxFanout returns the maximum number of entries per node for a block size
// (113 for 4 KB blocks).
func MaxFanout(blockSize int) int {
	return (blockSize - headerSize) / EntrySize
}

// ChildEntry describes a child of an internal node: the minimal bounding
// box of the child's subtree and the page holding the child.
type ChildEntry struct {
	Rect geom.Rect
	Page storage.PageID
}

// node is the in-memory form of a page.
type node struct {
	kind  byte
	rects []geom.Rect
	// refs holds data ids for leaves and child page ids for internal nodes.
	refs []uint32
}

func (n *node) isLeaf() bool { return n.kind == kindLeaf }
func (n *node) count() int   { return len(n.rects) }

func (n *node) mbr() geom.Rect {
	out := geom.EmptyRect()
	for _, r := range n.rects {
		out = out.Union(r)
	}
	return out
}

func (n *node) items() []geom.Item {
	out := make([]geom.Item, len(n.rects))
	for i := range n.rects {
		out[i] = geom.Item{Rect: n.rects[i], ID: n.refs[i]}
	}
	return out
}

func (n *node) children() []ChildEntry {
	out := make([]ChildEntry, len(n.rects))
	for i := range n.rects {
		out[i] = ChildEntry{Rect: n.rects[i], Page: storage.PageID(n.refs[i])}
	}
	return out
}

func (n *node) append(r geom.Rect, ref uint32) {
	n.rects = append(n.rects, r)
	n.refs = append(n.refs, ref)
}

func (n *node) remove(i int) {
	n.rects = append(n.rects[:i], n.rects[i+1:]...)
	n.refs = append(n.refs[:i], n.refs[i+1:]...)
}

// encodeNode serializes n into a block-sized buffer.
func encodeNode(buf []byte, n *node) []byte {
	cnt := n.count()
	need := headerSize + cnt*EntrySize
	if need > len(buf) {
		panic(fmt.Sprintf("rtree: node with %d entries does not fit in %d-byte block", cnt, len(buf)))
	}
	encodeHeader(buf, n.kind, cnt)
	off := headerSize
	for i := 0; i < cnt; i++ {
		storage.EncodeItem(buf[off:], geom.Item{Rect: n.rects[i], ID: n.refs[i]})
		off += EntrySize
	}
	return buf[:need]
}

// nodeView is a zero-copy window onto a page's bytes: header fields come
// straight from the page header and entries are decoded lazily, one at a
// time, so a cache-hit node visit allocates nothing. Views are values — do
// not take their address — and borrow the pager's cached slice: they are
// only valid until the next write to the page, so callers must not mutate
// the tree while holding one.
type nodeView struct {
	data []byte
}

func (v nodeView) isLeaf() bool { return v.data[0] == kindLeaf }

func (v nodeView) count() int { return int(v.data[2]) | int(v.data[3])<<8 }

// rectAt decodes entry i's rectangle.
func (v nodeView) rectAt(i int) geom.Rect {
	return storage.DecodeRect(v.data[headerSize+i*EntrySize:])
}

// refAt decodes entry i's reference: a data id in leaves, a child page id
// in internal nodes.
func (v nodeView) refAt(i int) uint32 {
	return storage.DecodeRef(v.data[headerSize+i*EntrySize:])
}

func (v nodeView) itemAt(i int) geom.Item {
	return storage.DecodeItem(v.data[headerSize+i*EntrySize:])
}

// mbr unions every entry rectangle, matching (*node).mbr bit for bit.
func (v nodeView) mbr() geom.Rect {
	out := geom.EmptyRect()
	for i, cnt := 0, v.count(); i < cnt; i++ {
		out = out.Union(v.rectAt(i))
	}
	return out
}

// items materializes every entry (used by Walk, which hands callers a
// slice; the query paths never call this).
func (v nodeView) items() []geom.Item {
	out := make([]geom.Item, v.count())
	for i := range out {
		out[i] = v.itemAt(i)
	}
	return out
}

// encodeHeader stamps the page header shared by every encoder.
func encodeHeader(buf []byte, kind byte, cnt int) {
	buf[0] = kind
	buf[1] = 0
	buf[2] = byte(cnt)
	buf[3] = byte(cnt >> 8)
}

// encodeLeafPage serializes a leaf holding items directly into a
// block-sized buffer, returning the encoded prefix and the leaf MBR. The
// bulk-load builder uses it to write pages without materializing a node.
func encodeLeafPage(buf []byte, items []geom.Item) ([]byte, geom.Rect) {
	need := headerSize + len(items)*EntrySize
	if need > len(buf) {
		panic(fmt.Sprintf("rtree: leaf with %d entries does not fit in %d-byte block", len(items), len(buf)))
	}
	encodeHeader(buf, kindLeaf, len(items))
	mbr := geom.EmptyRect()
	off := headerSize
	for _, it := range items {
		storage.EncodeItem(buf[off:], it)
		mbr = mbr.Union(it.Rect)
		off += EntrySize
	}
	return buf[:need], mbr
}

// encodeInternalPage is encodeLeafPage for an internal node over children.
func encodeInternalPage(buf []byte, children []ChildEntry) ([]byte, geom.Rect) {
	need := headerSize + len(children)*EntrySize
	if need > len(buf) {
		panic(fmt.Sprintf("rtree: internal node with %d entries does not fit in %d-byte block", len(children), len(buf)))
	}
	encodeHeader(buf, kindInternal, len(children))
	mbr := geom.EmptyRect()
	off := headerSize
	for _, c := range children {
		storage.EncodeItem(buf[off:], geom.Item{Rect: c.Rect, ID: uint32(c.Page)})
		mbr = mbr.Union(c.Rect)
		off += EntrySize
	}
	return buf[:need], mbr
}

// decodeNode parses a page into a node.
func decodeNode(data []byte) *node {
	kind := data[0]
	cnt := int(data[2]) | int(data[3])<<8
	n := &node{
		kind:  kind,
		rects: make([]geom.Rect, cnt),
		refs:  make([]uint32, cnt),
	}
	off := headerSize
	for i := 0; i < cnt; i++ {
		it := storage.DecodeItem(data[off:])
		n.rects[i] = it.Rect
		n.refs[i] = it.ID
		off += EntrySize
	}
	return n
}
