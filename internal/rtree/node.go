// Package rtree implements the paged R-tree container shared by every index
// variant in this repository: the on-disk node layout (one node per 4 KB
// block, 36-byte entries, max fanout 113 — the paper's exact layout), the
// window-query engine with block-level I/O accounting, bottom-up and
// top-down build helpers for the bulk loaders, Guttman's dynamic update
// algorithms, and structural validation used by the tests.
package rtree

import (
	"fmt"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Node kinds as stored in the page header.
const (
	kindLeaf     byte = 0
	kindInternal byte = 1
)

// headerSize is the per-page header: kind byte, pad byte, uint16 count.
const headerSize = 4

// EntrySize is the on-disk entry footprint (rect + 4-byte pointer).
const EntrySize = storage.ItemSize

// MaxFanout returns the maximum number of entries per node for a block size
// (113 for 4 KB blocks).
func MaxFanout(blockSize int) int {
	return (blockSize - headerSize) / EntrySize
}

// ChildEntry describes a child of an internal node: the minimal bounding
// box of the child's subtree and the page holding the child.
type ChildEntry struct {
	Rect geom.Rect
	Page storage.PageID
}

// node is the in-memory form of a page.
type node struct {
	kind  byte
	rects []geom.Rect
	// refs holds data ids for leaves and child page ids for internal nodes.
	refs []uint32
}

func (n *node) isLeaf() bool { return n.kind == kindLeaf }
func (n *node) count() int   { return len(n.rects) }

func (n *node) mbr() geom.Rect {
	out := geom.EmptyRect()
	for _, r := range n.rects {
		out = out.Union(r)
	}
	return out
}

func (n *node) items() []geom.Item {
	out := make([]geom.Item, len(n.rects))
	for i := range n.rects {
		out[i] = geom.Item{Rect: n.rects[i], ID: n.refs[i]}
	}
	return out
}

func (n *node) children() []ChildEntry {
	out := make([]ChildEntry, len(n.rects))
	for i := range n.rects {
		out[i] = ChildEntry{Rect: n.rects[i], Page: storage.PageID(n.refs[i])}
	}
	return out
}

func (n *node) append(r geom.Rect, ref uint32) {
	n.rects = append(n.rects, r)
	n.refs = append(n.refs, ref)
}

func (n *node) remove(i int) {
	n.rects = append(n.rects[:i], n.rects[i+1:]...)
	n.refs = append(n.refs[:i], n.refs[i+1:]...)
}

// encodeNode serializes n into a block-sized buffer.
func encodeNode(buf []byte, n *node) []byte {
	cnt := n.count()
	need := headerSize + cnt*EntrySize
	if need > len(buf) {
		panic(fmt.Sprintf("rtree: node with %d entries does not fit in %d-byte block", cnt, len(buf)))
	}
	buf[0] = n.kind
	buf[1] = 0
	buf[2] = byte(cnt)
	buf[3] = byte(cnt >> 8)
	off := headerSize
	for i := 0; i < cnt; i++ {
		storage.EncodeItem(buf[off:], geom.Item{Rect: n.rects[i], ID: n.refs[i]})
		off += EntrySize
	}
	return buf[:need]
}

// decodeNode parses a page into a node.
func decodeNode(data []byte) *node {
	kind := data[0]
	cnt := int(data[2]) | int(data[3])<<8
	n := &node{
		kind:  kind,
		rects: make([]geom.Rect, cnt),
		refs:  make([]uint32, cnt),
	}
	off := headerSize
	for i := 0; i < cnt; i++ {
		it := storage.DecodeItem(data[off:])
		n.rects[i] = it.Rect
		n.refs[i] = it.ID
		off += EntrySize
	}
	return n
}
