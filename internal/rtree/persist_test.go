package rtree

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	items := randItems(3000, 1)
	tr := buildPacked(t, items, 16)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.Height() != tr.Height() || got.Nodes() != tr.Nodes() {
		t.Fatalf("metadata mismatch: %v vs %v", got, tr)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 25; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		if err := CheckQueryAgainstBruteForce(got, items, q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSaveLoadThenUpdate(t *testing.T) {
	items := randItems(500, 3)
	tr := buildPacked(t, items, 8)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, -1)
	if err != nil {
		t.Fatal(err)
	}
	// The reopened tree must accept updates (freelist restored).
	extra := geom.Item{Rect: geom.NewRect(0.1, 0.1, 0.2, 0.2), ID: 9999}
	got.Insert(extra)
	if !got.Delete(items[0]) {
		t.Fatal("delete on loaded tree failed")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 500 {
		t.Fatalf("len = %d", got.Len())
	}
}

func TestSaveLoadEmptyTree(t *testing.T) {
	tr := newTestTree(t, Config{Fanout: 8})
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Height() != 1 {
		t.Fatalf("empty round trip: %v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a tree")), -1); err == nil {
		t.Error("garbage should not load")
	}
	if _, err := Load(bytes.NewReader(nil), -1); err == nil {
		t.Error("empty input should not load")
	}
}

func TestLoadRejectsCorruptHeader(t *testing.T) {
	items := randItems(200, 21)
	tr := buildPacked(t, items, 8)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Locate the root page and the tree metadata in the snapshot:
	// PRDISK01 blockSize:u32 numPages:u32 freeCount:u32 free[]:u32 pages,
	// then PRTREE01 root:u64 height:u64 ... fanout:u64 ...
	blockSize := binary.LittleEndian.Uint32(pristine[8:])
	numPages := binary.LittleEndian.Uint32(pristine[12:])
	freeCount := binary.LittleEndian.Uint32(pristine[16:])
	pagesOff := 20 + 4*freeCount
	metaOff := pagesOff + numPages*blockSize + 8
	root := binary.LittleEndian.Uint64(pristine[metaOff:])

	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), pristine...)
		mutate(b)
		if _, err := Load(bytes.NewReader(b), -1); err == nil {
			t.Errorf("%s: corrupt snapshot should not load", name)
		}
	}
	corrupt("bad root kind", func(b []byte) {
		b[pagesOff+uint32(root)*blockSize] = 7
	})
	corrupt("oversized fanout", func(b []byte) {
		binary.LittleEndian.PutUint64(b[metaOff+4*8:], 70000)
	})
	corrupt("internal root with height 1", func(b []byte) {
		binary.LittleEndian.PutUint64(b[metaOff+8:], 1)
	})
	corrupt("root id overflowing uint32", func(b []byte) {
		// 2^32 + root would truncate back onto the valid root page if the
		// id were narrowed before range-checking.
		binary.LittleEndian.PutUint64(b[metaOff:], 1<<32|root)
	})
	// A leaf root with a recorded height > 1 must be rejected: save a
	// single-leaf tree and bump its height metadata.
	small := buildPacked(t, randItems(3, 22), 8)
	var sb bytes.Buffer
	if err := small.Save(&sb); err != nil {
		t.Fatal(err)
	}
	s := sb.Bytes()
	sFree := binary.LittleEndian.Uint32(s[16:])
	sPages := binary.LittleEndian.Uint32(s[12:])
	sMeta := 20 + 4*sFree + sPages*blockSize + 8
	binary.LittleEndian.PutUint64(s[sMeta+8:], 2)
	if _, err := Load(bytes.NewReader(s), -1); err == nil {
		t.Error("leaf root with height 2 should not load")
	}

	// A snapshot whose block size cannot hold a node header must be
	// rejected, not panic (the root view would index past the page).
	tiny := storage.NewDisk(2)
	tiny.Alloc()
	var tb bytes.Buffer
	if _, err := tiny.WriteTo(&tb); err != nil {
		t.Fatal(err)
	}
	tb.Write([]byte("PRTREE01"))
	var u64 [8]byte
	for _, v := range []uint64{0, 1, 0, 1, 8, 3, 0} { // root height items nodes fanout minfill split
		binary.LittleEndian.PutUint64(u64[:], v)
		tb.Write(u64[:])
	}
	if _, err := Load(bytes.NewReader(tb.Bytes()), -1); err == nil {
		t.Error("tiny-block snapshot should not load")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	items := randItems(200, 4)
	tr := buildPacked(t, items, 8)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{10, len(data) / 2, len(data) - 4} {
		if _, err := Load(bytes.NewReader(data[:cut]), -1); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
}

func TestDiskSnapshotRoundTrip(t *testing.T) {
	d := storage.NewDisk(128)
	var ids []storage.PageID
	for i := 0; i < 10; i++ {
		id := d.Alloc()
		d.Write(id, []byte{byte(i), byte(i * 2)})
		ids = append(ids, id)
	}
	d.Free(ids[3])
	d.Free(ids[7])
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := storage.ReadDiskFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPages() != d.NumPages() || got.PagesInUse() != d.PagesInUse() {
		t.Fatalf("page accounting mismatch")
	}
	for i, id := range ids {
		if i == 3 || i == 7 {
			continue
		}
		b := got.PeekNoCopy(id)
		if b[0] != byte(i) || b[1] != byte(i*2) {
			t.Fatalf("page %d content mismatch", id)
		}
	}
	// Freed pages must be reused first, like the original.
	if id := got.Alloc(); id != ids[7] && id != ids[3] {
		t.Errorf("freelist not restored: alloc returned %d", id)
	}
}

func TestSnapshotTrailingDataPreserved(t *testing.T) {
	// ReadDiskFrom must not consume bytes beyond the snapshot.
	d := storage.NewDisk(64)
	id := d.Alloc()
	d.Write(id, []byte{1})
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("TRAILER")
	if _, err := storage.ReadDiskFrom(&buf); err != nil {
		t.Fatal(err)
	}
	rest := buf.String()
	if rest != "TRAILER" {
		t.Errorf("trailing data corrupted: %q", rest)
	}
}
