package rtree

import (
	"encoding/binary"
	"fmt"

	"prtree/internal/storage"
)

// Tree metadata: a small self-describing record (magic + eight words)
// holding everything needed to reopen a tree over an existing page store —
// the root page, shape counters and effective configuration. It is stored
// as the trailing record of Save streams and as the superblock blob of
// persistent backends (see storage.Backend.SetMeta), so a file-backed tree
// reopens in place with zero rebuild work.

// MetaSize is the encoded size of a tree metadata record.
const MetaSize = len(treeMagic) + 8*8

// EncodeMeta returns the tree's metadata record. Store it in a backend's
// superblock (or alongside the pages) and reopen with OpenFromMeta.
func (t *Tree) EncodeMeta() []byte {
	out := make([]byte, MetaSize)
	copy(out, treeMagic[:])
	words := [8]uint64{
		uint64(t.root),
		uint64(t.height),
		uint64(t.nItems),
		uint64(t.nNodes),
		uint64(t.cfg.Fanout),
		uint64(t.cfg.MinFill),
		uint64(t.cfg.Split),
		uint64(t.cfg.Layout),
	}
	for i, v := range words {
		binary.LittleEndian.PutUint64(out[len(treeMagic)+8*i:], v)
	}
	return out
}

// OpenFromMeta reopens a tree whose pages already live on pager's backend,
// described by a metadata record from EncodeMeta. The record and the root
// page header are validated against the backend's geometry before the tree
// is handed to callers; deeper corruption is caught by Validate, which
// walks every page.
func OpenFromMeta(pager *storage.Pager, meta []byte) (*Tree, error) {
	if len(meta) < MetaSize {
		return nil, fmt.Errorf("rtree: metadata record of %d bytes, want %d", len(meta), MetaSize)
	}
	if [8]byte(meta[:8]) != treeMagic {
		return nil, fmt.Errorf("rtree: bad tree magic %q", meta[:8])
	}
	var words [8]uint64
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(meta[len(treeMagic)+8*i:])
	}
	dev := pager.Backend()
	// Range-check the root id at full width before narrowing to PageID: a
	// corrupt upper half would otherwise truncate onto a valid page.
	if words[0] >= uint64(dev.NumPages()) {
		return nil, fmt.Errorf("rtree: root page %d out of range", words[0])
	}
	if words[7] > uint64(LayoutCompressed) {
		return nil, fmt.Errorf("rtree: unknown layout %d", words[7])
	}
	t := &Tree{
		pager: pager,
		cfg: Config{
			Fanout:  int(words[4]),
			MinFill: int(words[5]),
			Split:   SplitKind(words[6]),
			Layout:  Layout(words[7]),
		},
		root:   storage.PageID(words[0]),
		height: int(words[1]),
		nItems: int(words[2]),
		nNodes: int(words[3]),
		buf:    make([]byte, dev.BlockSize()),
	}
	if t.height < 1 {
		return nil, fmt.Errorf("rtree: implausible height %d", t.height)
	}
	// Sanity-check the root page header through a zero-copy view over the
	// raw block (PeekNoCopy, so the backend's I/O accounting stays
	// untouched) before handing the tree to callers. The block size and
	// fanout come from the untrusted record too, so bound them first: the
	// header must fit the block, and the recorded fanout must not exceed
	// the block's real capacity — the entry-count check below then bounds
	// rectAt/refAt indexing transitively.
	if dev.BlockSize() < t.cfg.Layout.HeaderSize()+t.cfg.Layout.EntrySize() {
		return nil, fmt.Errorf("rtree: block size %d cannot hold a node", dev.BlockSize())
	}
	if t.cfg.Fanout < 2 || t.cfg.Fanout > t.cfg.Layout.MaxFanout(dev.BlockSize()) {
		return nil, fmt.Errorf("rtree: implausible fanout %d for %d-byte blocks under the %s layout", t.cfg.Fanout, dev.BlockSize(), t.cfg.Layout)
	}
	root := makeView(dev.PeekNoCopy(t.root))
	if kind := root.data[0]; kind != kindLeaf && kind != kindInternal {
		return nil, fmt.Errorf("rtree: root page %d has invalid kind %d", t.root, kind)
	}
	if cnt := root.count(); cnt > t.cfg.Fanout {
		return nil, fmt.Errorf("rtree: root page %d holds %d entries, fanout %d", t.root, cnt, t.cfg.Fanout)
	}
	// A page's header flag, not the tree config, decides its format; bound
	// the count against the page's OWN layout so entry offsets stay inside
	// the block even for hostile flag/count combinations (e.g. a
	// raw-flagged page under a compressed-config fanout of 338).
	pageLayout := LayoutRaw
	if root.comp {
		pageLayout = LayoutCompressed
	}
	if cnt := root.count(); cnt > pageLayout.MaxFanout(dev.BlockSize()) {
		return nil, fmt.Errorf("rtree: %s root page %d holds %d entries for %d-byte blocks", pageLayout, t.root, cnt, dev.BlockSize())
	}
	if t.height > 1 && root.isLeaf() {
		return nil, fmt.Errorf("rtree: root page %d is a leaf but height is %d", t.root, t.height)
	}
	if t.height == 1 && !root.isLeaf() {
		return nil, fmt.Errorf("rtree: root page %d is internal but height is 1", t.root)
	}
	return t, nil
}
