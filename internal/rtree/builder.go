package rtree

import (
	"fmt"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Builder writes a tree bottom-up or top-down on behalf of the bulk
// loaders. Every page written is counted as a block write on the disk, so
// bulk-loading I/O is measured, not modeled. Pages are encoded in the
// configured layout; under LayoutCompressed, leaf groups that do not
// quantize losslessly fall back to raw pages (see WriteLeaves).
type Builder struct {
	tree   *Tree
	nItems int
}

// NewBuilder prepares building a tree on pager. The builder owns the tree
// until Finish is called.
func NewBuilder(pager *storage.Pager, cfg Config) *Builder {
	normalizeConfig(&cfg, pager.Backend().BlockSize())
	t := &Tree{pager: pager, cfg: cfg, buf: make([]byte, pager.Backend().BlockSize())}
	return &Builder{tree: t}
}

// Fanout returns the effective maximum entries per node.
func (b *Builder) Fanout() int { return b.tree.cfg.Fanout }

// LeafCapacity returns the most items a loader may pack per leaf group
// (equal to Fanout; kept distinct so loaders state which bound they mean).
func (b *Builder) LeafCapacity() int { return b.tree.cfg.Fanout }

// rawLeafCapacity is what one raw-format page holds — the fallback bound
// when a compressed leaf group does not quantize losslessly.
func (b *Builder) rawLeafCapacity() int {
	raw := LayoutRaw.MaxFanout(b.tree.pager.Backend().BlockSize())
	if raw > b.tree.cfg.Fanout {
		return b.tree.cfg.Fanout
	}
	return raw
}

// WriteLeaf writes one leaf page holding items and returns its child entry
// for the level above. The page is encoded straight into the tree's
// scratch block — no intermediate node is materialized. It panics when the
// items cannot fit one page in any format; loaders packing groups beyond
// the raw capacity must use WriteLeaves.
func (b *Builder) WriteLeaf(items []geom.Item) ChildEntry {
	if len(items) == 0 || len(items) > b.tree.cfg.Fanout {
		panic(fmt.Sprintf("rtree: leaf with %d entries (fanout %d)", len(items), b.tree.cfg.Fanout))
	}
	layout := b.tree.cfg.Layout
	if layout == LayoutCompressed && len(items) > b.rawLeafCapacity() {
		if data, mbr, ok := encodeCompressedLeaf(b.tree.buf, items); ok {
			id := b.tree.allocPage(data)
			b.nItems += len(items)
			return ChildEntry{Rect: mbr, Page: id}
		}
		panic(fmt.Sprintf("rtree: leaf with %d entries does not quantize losslessly and exceeds the raw capacity %d (use WriteLeaves)", len(items), b.rawLeafCapacity()))
	}
	data, mbr := encodeLeafPage(b.tree.buf, items, layout)
	id := b.tree.allocPage(data)
	b.nItems += len(items)
	return ChildEntry{Rect: mbr, Page: id}
}

// WriteLeaves writes a leaf group of up to LeafCapacity items as one page
// when possible. Under the compressed layout a group that does not
// quantize losslessly is split into raw-capacity chunks, each written as
// its own (raw or compressed) page — the per-page lossless-or-raw rule —
// so the call may return more than one child entry.
func (b *Builder) WriteLeaves(items []geom.Item) []ChildEntry {
	if len(items) == 0 || len(items) > b.tree.cfg.Fanout {
		panic(fmt.Sprintf("rtree: leaf group with %d entries (capacity %d)", len(items), b.tree.cfg.Fanout))
	}
	rawCap := b.rawLeafCapacity()
	if b.tree.cfg.Layout != LayoutCompressed || len(items) <= rawCap {
		return []ChildEntry{b.WriteLeaf(items)}
	}
	if data, mbr, ok := encodeCompressedLeaf(b.tree.buf, items); ok {
		id := b.tree.allocPage(data)
		b.nItems += len(items)
		return []ChildEntry{{Rect: mbr, Page: id}}
	}
	// Fallback: balanced raw-capacity chunks (ceil division, like
	// PackLevel, so no chunk is pathologically small).
	nChunks := (len(items) + rawCap - 1) / rawCap
	out := make([]ChildEntry, 0, nChunks)
	for i := 0; i < nChunks; i++ {
		lo := i * len(items) / nChunks
		hi := (i + 1) * len(items) / nChunks
		out = append(out, b.WriteLeaf(items[lo:hi]))
	}
	return out
}

// WriteInternal writes one internal page over the given children
// (1..Fanout entries) and returns its child entry. The entry's rectangle
// is the page's canonical MBR — under the compressed layout, the union of
// the conservative covers a reader of the page reconstructs.
func (b *Builder) WriteInternal(children []ChildEntry) ChildEntry {
	if len(children) == 0 || len(children) > b.tree.cfg.Fanout {
		panic(fmt.Sprintf("rtree: internal node with %d entries (fanout %d)", len(children), b.tree.cfg.Fanout))
	}
	data, mbr := encodeInternalPage(b.tree.buf, children, b.tree.cfg.Layout)
	id := b.tree.allocPage(data)
	return ChildEntry{Rect: mbr, Page: id}
}

// PackLevel groups consecutive entries into nodes of at most Fanout
// children — the bottom-up packing step shared by the packed Hilbert, STR
// and PR-tree loaders. Groups are balanced so no node is underfull: the
// remainder is spread by using ceil division.
func (b *Builder) PackLevel(children []ChildEntry) []ChildEntry {
	f := b.tree.cfg.Fanout
	nGroups := (len(children) + f - 1) / f
	out := make([]ChildEntry, 0, nGroups)
	for i := 0; i < nGroups; i++ {
		lo := i * len(children) / nGroups
		hi := (i + 1) * len(children) / nGroups
		out = append(out, b.WriteInternal(children[lo:hi]))
	}
	return out
}

// FinishPacked repeatedly packs levels until a single root remains and
// returns the finished tree. leafLevel must be the entries returned by
// WriteLeaf calls, in the desired packing order.
func (b *Builder) FinishPacked(leafLevel []ChildEntry) *Tree {
	if len(leafLevel) == 0 {
		return b.FinishEmpty()
	}
	level := leafLevel
	height := 1
	for len(level) > 1 {
		level = b.PackLevel(level)
		height++
	}
	return b.Finish(level[0], height)
}

// Finish seals the tree with the given root entry and height (number of
// levels; 1 means the root is a leaf).
func (b *Builder) Finish(root ChildEntry, height int) *Tree {
	t := b.tree
	t.root = root.Page
	t.height = height
	t.nItems = b.nItems
	b.tree = nil
	return t
}

// FinishEmpty seals an empty tree (a single empty leaf).
func (b *Builder) FinishEmpty() *Tree {
	t := b.tree
	t.root = t.allocNode(&node{kind: kindLeaf})
	t.height = 1
	t.nItems = 0
	b.tree = nil
	return t
}
