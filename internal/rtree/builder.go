package rtree

import (
	"fmt"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Builder writes a tree bottom-up or top-down on behalf of the bulk
// loaders. Every page written is counted as a block write on the disk, so
// bulk-loading I/O is measured, not modeled.
type Builder struct {
	tree   *Tree
	nItems int
}

// NewBuilder prepares building a tree on pager. The builder owns the tree
// until Finish is called.
func NewBuilder(pager *storage.Pager, cfg Config) *Builder {
	normalizeConfig(&cfg, pager.Disk().BlockSize())
	t := &Tree{pager: pager, cfg: cfg, buf: make([]byte, pager.Disk().BlockSize())}
	return &Builder{tree: t}
}

// Fanout returns the effective maximum entries per node.
func (b *Builder) Fanout() int { return b.tree.cfg.Fanout }

// WriteLeaf writes one leaf page holding items (1..Fanout entries) and
// returns its child entry for the level above. The page is encoded straight
// into the tree's scratch block — no intermediate node is materialized.
func (b *Builder) WriteLeaf(items []geom.Item) ChildEntry {
	if len(items) == 0 || len(items) > b.tree.cfg.Fanout {
		panic(fmt.Sprintf("rtree: leaf with %d entries (fanout %d)", len(items), b.tree.cfg.Fanout))
	}
	data, mbr := encodeLeafPage(b.tree.buf, items)
	id := b.tree.allocPage(data)
	b.nItems += len(items)
	return ChildEntry{Rect: mbr, Page: id}
}

// WriteInternal writes one internal page over the given children
// (1..Fanout entries) and returns its child entry.
func (b *Builder) WriteInternal(children []ChildEntry) ChildEntry {
	if len(children) == 0 || len(children) > b.tree.cfg.Fanout {
		panic(fmt.Sprintf("rtree: internal node with %d entries (fanout %d)", len(children), b.tree.cfg.Fanout))
	}
	data, mbr := encodeInternalPage(b.tree.buf, children)
	id := b.tree.allocPage(data)
	return ChildEntry{Rect: mbr, Page: id}
}

// PackLevel groups consecutive entries into nodes of at most Fanout
// children — the bottom-up packing step shared by the packed Hilbert, STR
// and PR-tree loaders. Groups are balanced so no node is underfull: the
// remainder is spread by using ceil division.
func (b *Builder) PackLevel(children []ChildEntry) []ChildEntry {
	f := b.tree.cfg.Fanout
	nGroups := (len(children) + f - 1) / f
	out := make([]ChildEntry, 0, nGroups)
	for i := 0; i < nGroups; i++ {
		lo := i * len(children) / nGroups
		hi := (i + 1) * len(children) / nGroups
		out = append(out, b.WriteInternal(children[lo:hi]))
	}
	return out
}

// FinishPacked repeatedly packs levels until a single root remains and
// returns the finished tree. leafLevel must be the entries returned by
// WriteLeaf calls, in the desired packing order.
func (b *Builder) FinishPacked(leafLevel []ChildEntry) *Tree {
	if len(leafLevel) == 0 {
		return b.FinishEmpty()
	}
	level := leafLevel
	height := 1
	for len(level) > 1 {
		level = b.PackLevel(level)
		height++
	}
	return b.Finish(level[0], height)
}

// Finish seals the tree with the given root entry and height (number of
// levels; 1 means the root is a leaf).
func (b *Builder) Finish(root ChildEntry, height int) *Tree {
	t := b.tree
	t.root = root.Page
	t.height = height
	t.nItems = b.nItems
	b.tree = nil
	return t
}

// FinishEmpty seals an empty tree (a single empty leaf).
func (b *Builder) FinishEmpty() *Tree {
	t := b.tree
	t.root = t.allocNode(&node{kind: kindLeaf})
	t.height = 1
	t.nItems = 0
	b.tree = nil
	return t
}
