package rtree

import (
	"fmt"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Insert adds an item using the configured dynamic insertion algorithm:
// Guttman's ChooseLeaf + quadratic/linear split by default, or the full
// R*-tree heuristics when Config.Split is RStarSplit. The paper notes a
// bulk-loaded PR-tree "can be updated in O(log_B N) I/Os using the
// standard R-tree updating algorithms" — at the cost of its worst-case
// query guarantee; these are those standard algorithms.
func (t *Tree) Insert(it geom.Item) {
	if t.cfg.Split == RStarSplit {
		t.insertRStar(it.Rect, it.ID, 0, make(map[int]bool))
	} else {
		t.insertAtLevel(it.Rect, it.ID, 0)
	}
	t.nItems++
}

// pathStep records one node on a root-to-target descent.
type pathStep struct {
	page     storage.PageID
	n        *node
	childIdx int // index taken to descend; -1 at the target node
}

// insertAtLevel places an entry (rect, ref) into a node at the given level,
// where level 0 is the leaf level. Items are inserted at level 0; orphaned
// child entries from CondenseTree are reinserted at their original level.
func (t *Tree) insertAtLevel(r geom.Rect, ref uint32, level int) {
	path := t.choosePath(r, level)
	target := path[len(path)-1]
	if target.n.isLeaf() != (level == 0) {
		panic("rtree: internal error, wrong target level")
	}
	target.n.append(r, ref)
	t.adjustPath(path)
}

// choosePath descends from the root to a node at targetLevel, choosing at
// each step the child needing the least area enlargement (ties: smaller
// area, then lower index).
func (t *Tree) choosePath(r geom.Rect, targetLevel int) []pathStep {
	path := make([]pathStep, 0, t.height)
	id := t.root
	for level := t.height - 1; ; level-- {
		n := t.readNode(id)
		step := pathStep{page: id, n: n, childIdx: -1}
		if level == targetLevel {
			path = append(path, step)
			return path
		}
		best := -1
		var bestEnl, bestArea float64
		for i := range n.rects {
			enl := n.rects[i].EnlargementArea(r)
			area := n.rects[i].Area()
			if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		if best == -1 {
			panic("rtree: choosePath hit empty internal node")
		}
		step.childIdx = best
		path = append(path, step)
		id = storage.PageID(n.refs[best])
	}
}

// adjustPath writes the modified target node, splitting on overflow, and
// propagates MBR updates and split entries to the root (AdjustTree).
//
// Overflow is judged by the overflows predicate, whose effective capacity
// under the compressed layout shrinks to the raw-page maximum when the
// node's entries stop being compressible; a split may therefore yield
// more than two pieces, so sibling entries propagate as a slice.
func (t *Tree) adjustPath(path []pathStep) {
	// splits holds the new sibling entries to add one level up, if any.
	var splits []ChildEntry
	for i := len(path) - 1; i >= 0; i-- {
		step := path[i]
		n := step.n
		for _, s := range splits {
			n.append(s.Rect, uint32(s.Page))
		}
		splits = splits[:0]
		var written *node
		if t.overflows(n) {
			pieces := t.splitToFit(n)
			t.writeNode(step.page, pieces[0])
			for _, p := range pieces[1:] {
				id := t.allocNode(p)
				splits = append(splits, ChildEntry{Rect: p.mbr(), Page: id})
			}
			written = pieces[0]
		} else {
			t.writeNode(step.page, n)
			written = n
		}
		if i > 0 {
			parent := path[i-1]
			parent.n.rects[parent.childIdx] = written.mbr()
		}
	}
	t.growRoot(splits)
}

// growRoot grows the tree while split entries remain above the old root,
// looping in case a new root itself overflows.
func (t *Tree) growRoot(splits []ChildEntry) {
	for len(splits) > 0 {
		oldRoot := t.root
		oldRect := t.readNode(oldRoot).mbr()
		root := &node{kind: kindInternal}
		root.append(oldRect, uint32(oldRoot))
		for _, s := range splits {
			root.append(s.Rect, uint32(s.Page))
		}
		splits = splits[:0]
		if t.overflows(root) {
			pieces := t.splitToFit(root)
			root = pieces[0]
			for _, p := range pieces[1:] {
				id := t.allocNode(p)
				splits = append(splits, ChildEntry{Rect: p.mbr(), Page: id})
			}
		}
		t.root = t.allocNode(root)
		t.height++
	}
}

// splitToFit divides an overflowing node into however many pieces are
// needed for each to satisfy its own capacity (two in the common case;
// more when, e.g., a compressed leaf loses losslessness and drops to the
// raw-page maximum). Pieces keep n's kind.
func (t *Tree) splitToFit(n *node) []*node {
	out := make([]*node, 0, 2)
	work := []*node{n}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if !t.overflows(cur) {
			out = append(out, cur)
			continue
		}
		left, right := t.splitNode(cur)
		work = append(work, right, left)
	}
	return out
}

// splitNode divides an overflowing node into two per the configured
// heuristic. The returned nodes have the same kind as n.
func (t *Tree) splitNode(n *node) (*node, *node) {
	var s1, s2 int
	switch t.cfg.Split {
	case LinearSplit:
		s1, s2 = t.pickSeedsLinear(n)
	case RStarSplit:
		return t.splitRStar(n)
	default:
		s1, s2 = t.pickSeedsQuadratic(n)
	}
	return t.splitGuttman(n, s1, s2)
}

// pickSeedsQuadratic returns the pair of entries wasting the most area if
// grouped together (Guttman's quadratic PickSeeds).
func (t *Tree) pickSeedsQuadratic(n *node) (int, int) {
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < n.count(); i++ {
		for j := i + 1; j < n.count(); j++ {
			d := n.rects[i].Union(n.rects[j]).Area() - n.rects[i].Area() - n.rects[j].Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	return s1, s2
}

// pickSeedsLinear returns the pair with the greatest normalized separation
// along any dimension (Guttman's linear PickSeeds).
func (t *Tree) pickSeedsLinear(n *node) (int, int) {
	type extreme struct {
		highLow, lowHigh   int
		highLowV, lowHighV float64
		lowest, highest    float64
	}
	dims := [2]extreme{}
	for d := 0; d < 2; d++ {
		e := &dims[d]
		e.highLow, e.lowHigh = -1, -1
		for i := 0; i < n.count(); i++ {
			var lo, hi float64
			if d == 0 {
				lo, hi = n.rects[i].MinX, n.rects[i].MaxX
			} else {
				lo, hi = n.rects[i].MinY, n.rects[i].MaxY
			}
			if i == 0 {
				e.lowest, e.highest = lo, hi
			} else {
				if lo < e.lowest {
					e.lowest = lo
				}
				if hi > e.highest {
					e.highest = hi
				}
			}
			if e.highLow == -1 || lo > e.highLowV {
				e.highLow, e.highLowV = i, lo
			}
			if e.lowHigh == -1 || hi < e.lowHighV {
				e.lowHigh, e.lowHighV = i, hi
			}
		}
	}
	bestDim, bestSep := 0, -1.0
	for d := 0; d < 2; d++ {
		e := &dims[d]
		width := e.highest - e.lowest
		sep := e.highLowV - e.lowHighV
		if width > 0 {
			sep /= width
		}
		if sep > bestSep {
			bestSep, bestDim = sep, d
		}
	}
	s1, s2 := dims[bestDim].lowHigh, dims[bestDim].highLow
	if s1 == s2 {
		// Degenerate (all equal): fall back to the first two entries.
		s1, s2 = 0, 1
	}
	if s1 > s2 {
		s1, s2 = s2, s1
	}
	return s1, s2
}

// splitGuttman distributes entries into two groups seeded by (s1, s2),
// assigning each remaining entry to the group whose bounding box needs the
// least enlargement (PickNext uses the max-preference entry first for the
// quadratic flavor; for simplicity and equal quality we use the same
// assignment loop for both, which matches Guttman's linear variant and is
// a standard implementation of the quadratic one).
func (t *Tree) splitGuttman(n *node, s1, s2 int) (*node, *node) {
	g1 := &node{kind: n.kind}
	g2 := &node{kind: n.kind}
	g1.append(n.rects[s1], n.refs[s1])
	g2.append(n.rects[s2], n.refs[s2])
	r1, r2 := n.rects[s1], n.rects[s2]

	rest := make([]int, 0, n.count()-2)
	for i := 0; i < n.count(); i++ {
		if i != s1 && i != s2 {
			rest = append(rest, i)
		}
	}
	minFill := t.cfg.MinFill
	for len(rest) > 0 {
		// Min-fill guard: if one group must absorb everything left.
		if g1.count()+len(rest) == minFill {
			for _, i := range rest {
				g1.append(n.rects[i], n.refs[i])
				r1 = r1.Union(n.rects[i])
			}
			break
		}
		if g2.count()+len(rest) == minFill {
			for _, i := range rest {
				g2.append(n.rects[i], n.refs[i])
				r2 = r2.Union(n.rects[i])
			}
			break
		}
		// PickNext: entry with the greatest preference difference.
		bestIdx, bestPos := -1, -1
		bestDiff := -1.0
		for pos, i := range rest {
			d1 := r1.EnlargementArea(n.rects[i])
			d2 := r2.EnlargementArea(n.rects[i])
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff, bestIdx, bestPos = diff, i, pos
			}
		}
		rest = append(rest[:bestPos], rest[bestPos+1:]...)
		d1 := r1.EnlargementArea(n.rects[bestIdx])
		d2 := r2.EnlargementArea(n.rects[bestIdx])
		toFirst := d1 < d2
		if d1 == d2 {
			if a1, a2 := r1.Area(), r2.Area(); a1 != a2 {
				toFirst = a1 < a2
			} else {
				toFirst = g1.count() <= g2.count()
			}
		}
		if toFirst {
			g1.append(n.rects[bestIdx], n.refs[bestIdx])
			r1 = r1.Union(n.rects[bestIdx])
		} else {
			g2.append(n.rects[bestIdx], n.refs[bestIdx])
			r2 = r2.Union(n.rects[bestIdx])
		}
	}
	return g1, g2
}

// Delete removes the item with the given rect and id, returning false if
// no such item is stored. It implements Guttman's Delete with CondenseTree:
// underfull nodes are dissolved and their entries reinserted at their
// original level; the root is collapsed when it has a single child.
func (t *Tree) Delete(it geom.Item) bool {
	path, idx := t.findLeaf(t.root, t.height-1, it, nil)
	if path == nil {
		return false
	}
	leaf := path[len(path)-1]
	leaf.n.remove(idx)
	t.nItems--
	t.condense(path)
	return true
}

// findLeaf locates the leaf containing it via depth-first search guided by
// rectangle containment, returning the access path and the entry index.
func (t *Tree) findLeaf(id storage.PageID, level int, it geom.Item, prefix []pathStep) ([]pathStep, int) {
	n := t.readNode(id)
	step := pathStep{page: id, n: n, childIdx: -1}
	if n.isLeaf() {
		for i := range n.rects {
			if n.refs[i] == it.ID && n.rects[i] == it.Rect {
				return append(append([]pathStep{}, prefix...), step), i
			}
		}
		return nil, 0
	}
	for i := range n.rects {
		if n.rects[i].Contains(it.Rect) {
			step.childIdx = i
			path, idx := t.findLeaf(storage.PageID(n.refs[i]), level-1, it, append(prefix, step))
			if path != nil {
				return path, idx
			}
		}
	}
	return nil, 0
}

// orphan is a subtree entry cut loose by CondenseTree, remembered with the
// level it must be reinserted at.
type orphan struct {
	rect  geom.Rect
	ref   uint32
	level int
}

// condense walks the deletion path bottom-up, dissolving underfull nodes
// and reinserting their entries (Guttman's CondenseTree).
func (t *Tree) condense(path []pathStep) {
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		step := path[i]
		level := t.height - 1 - i // level of this node (0 = leaf)
		parent := path[i-1]
		if step.n.count() < t.cfg.MinFill {
			// Dissolve: detach from parent, orphan the entries.
			parent.n.remove(parent.childIdx)
			// Re-point later siblings: removing shifts indices, but
			// parent.childIdx references are fixed per level, and we only
			// use parent.childIdx of this path, which we just consumed.
			for j := range step.n.rects {
				orphans = append(orphans, orphan{rect: step.n.rects[j], ref: step.n.refs[j], level: level})
			}
			t.freeNode(step.page)
		} else {
			t.writeNode(step.page, step.n)
			parent.n.rects[parent.childIdx] = step.n.mbr()
		}
	}
	// Root.
	root := path[0]
	t.writeNode(root.page, root.n)

	// Shrink the root while it is internal with a single child.
	for t.height > 1 {
		rn := t.readNode(t.root)
		if rn.count() != 1 {
			break
		}
		child := storage.PageID(rn.refs[0])
		t.freeNode(t.root)
		t.root = child
		t.height--
	}
	// The root may have become an empty internal node if everything was
	// orphaned; normalize to an empty leaf.
	rn := t.readNode(t.root)
	if !rn.isLeaf() && rn.count() == 0 {
		t.writeNode(t.root, &node{kind: kindLeaf})
		t.height = 1
	}

	// Reinsert orphans, deepest level last (items first keeps the height
	// stable while subtree entries still fit their recorded level).
	for _, o := range orphans {
		if o.level >= t.height {
			// The tree shrank below the orphan's level; re-graft the
			// subtree's descendants item by item.
			t.regraft(o)
			continue
		}
		t.reinsertEntry(o)
	}
}

// reinsertEntry routes an orphaned entry through the configured insertion
// heuristic at its recorded level.
func (t *Tree) reinsertEntry(o orphan) {
	if t.cfg.Split == RStarSplit {
		t.insertRStar(o.rect, o.ref, o.level, make(map[int]bool))
	} else {
		t.insertAtLevel(o.rect, o.ref, o.level)
	}
}

// regraft reinserts every item under an orphaned subtree whose level no
// longer exists (possible after aggressive shrinking).
func (t *Tree) regraft(o orphan) {
	if o.level == 0 {
		t.reinsertEntry(orphan{rect: o.rect, ref: o.ref, level: 0})
		return
	}
	id := storage.PageID(o.ref)
	n := t.readNode(id)
	for i := range n.rects {
		t.regraft(orphan{rect: n.rects[i], ref: n.refs[i], level: o.level - 1})
	}
	t.freeNode(id)
}

// mustValidate is a debug helper that panics on invariant violation.
func (t *Tree) mustValidate() {
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("rtree: %v", err))
	}
}
