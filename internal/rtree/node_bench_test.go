package rtree

import (
	"testing"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// fullPage encodes a max-fanout internal page for the codec benchmarks.
func fullPage() []byte {
	n := &node{kind: kindInternal}
	f := MaxFanout(storage.DefaultBlockSize)
	for i := 0; i < f; i++ {
		x := float64(i)
		n.append(geom.NewRect(x, x*0.5, x+2, x*0.5+3), uint32(i))
	}
	buf := make([]byte, storage.DefaultBlockSize)
	return append([]byte(nil), encodeNode(buf, n, LayoutRaw)...)
}

func TestNodeViewMatchesDecode(t *testing.T) {
	data := fullPage()
	n := decodeNode(data)
	v := nodeView{data: data}
	if v.isLeaf() != n.isLeaf() || v.count() != n.count() {
		t.Fatalf("header mismatch: leaf %v/%v count %d/%d",
			v.isLeaf(), n.isLeaf(), v.count(), n.count())
	}
	for i := 0; i < n.count(); i++ {
		if v.rectAt(i) != n.rects[i] {
			t.Fatalf("rectAt(%d) = %v, want %v", i, v.rectAt(i), n.rects[i])
		}
		if v.refAt(i) != n.refs[i] {
			t.Fatalf("refAt(%d) = %d, want %d", i, v.refAt(i), n.refs[i])
		}
		if it := v.itemAt(i); it.Rect != n.rects[i] || it.ID != n.refs[i] {
			t.Fatalf("itemAt(%d) = %v", i, it)
		}
	}
	if v.mbr() != n.mbr() {
		t.Fatalf("mbr mismatch: %v != %v", v.mbr(), n.mbr())
	}
}

func TestEncodePageHelpersMatchEncodeNode(t *testing.T) {
	items := randItems(50, 42)
	n := &node{kind: kindLeaf}
	for _, it := range items {
		n.append(it.Rect, it.ID)
	}
	buf1 := make([]byte, storage.DefaultBlockSize)
	buf2 := make([]byte, storage.DefaultBlockSize)
	want := encodeNode(buf1, n, LayoutRaw)
	got, mbr := encodeLeafPage(buf2, items, LayoutRaw)
	if string(got) != string(want) {
		t.Fatal("encodeLeafPage bytes differ from encodeNode")
	}
	if mbr != n.mbr() {
		t.Fatalf("encodeLeafPage mbr = %v, want %v", mbr, n.mbr())
	}

	children := make([]ChildEntry, 30)
	in := &node{kind: kindInternal}
	for i := range children {
		children[i] = ChildEntry{Rect: items[i].Rect, Page: storage.PageID(i * 3)}
		in.append(children[i].Rect, uint32(children[i].Page))
	}
	want = encodeNode(buf1, in, LayoutRaw)
	got, mbr = encodeInternalPage(buf2, children, LayoutRaw)
	if string(got) != string(want) {
		t.Fatal("encodeInternalPage bytes differ from encodeNode")
	}
	if mbr != in.mbr() {
		t.Fatalf("encodeInternalPage mbr = %v, want %v", mbr, in.mbr())
	}
}

// BenchmarkNodeView compares the eager decode the query path used to pay on
// every node visit against the zero-copy view that replaced it: a full
// intersection scan of a max-fanout page.
func BenchmarkNodeView(b *testing.B) {
	data := fullPage()
	q := geom.NewRect(10, 5, 60, 30)

	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			n := decodeNode(data)
			for j := range n.rects {
				if q.Intersects(n.rects[j]) {
					hits++
				}
			}
		}
		if hits == 0 {
			b.Fatal("query should match")
		}
	})
	b.Run("view", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			v := nodeView{data: data}
			for j, cnt := 0, v.count(); j < cnt; j++ {
				if q.Intersects(v.rectAt(j)) {
					hits++
				}
			}
		}
		if hits == 0 {
			b.Fatal("query should match")
		}
	})
}
