package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

func newTestTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	disk := storage.NewDisk(storage.DefaultBlockSize)
	return New(storage.NewPager(disk, -1), cfg)
}

func randItems(n int, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = geom.Item{
			Rect: geom.NewRect(x, y, x+rng.Float64()*0.05, y+rng.Float64()*0.05),
			ID:   uint32(i),
		}
	}
	return items
}

// buildPacked bulk-loads items in slice order with full leaves — a trivial
// loader used to exercise the container independently of the real loaders.
func buildPacked(tb testing.TB, items []geom.Item, fanout int) *Tree {
	tb.Helper()
	disk := storage.NewDisk(storage.DefaultBlockSize)
	b := NewBuilder(storage.NewPager(disk, -1), Config{Fanout: fanout})
	fanout = b.Fanout()
	var leaves []ChildEntry
	for lo := 0; lo < len(items); lo += fanout {
		hi := lo + fanout
		if hi > len(items) {
			hi = len(items)
		}
		leaves = append(leaves, b.WriteLeaf(items[lo:hi]))
	}
	return b.FinishPacked(leaves)
}

func TestMaxFanoutMatchesPaper(t *testing.T) {
	if got := MaxFanout(storage.DefaultBlockSize); got != 113 {
		t.Errorf("MaxFanout(4096) = %d, want 113", got)
	}
}

func TestNodeCodecRoundTrip(t *testing.T) {
	n := &node{kind: kindInternal}
	for i := 0; i < 50; i++ {
		n.append(geom.NewRect(float64(i), 0, float64(i)+1, 2), uint32(i*7))
	}
	buf := make([]byte, storage.DefaultBlockSize)
	got := decodeNode(encodeNode(buf, n, LayoutRaw))
	if got.kind != n.kind || got.count() != n.count() {
		t.Fatalf("kind/count mismatch")
	}
	for i := range n.rects {
		if got.rects[i] != n.rects[i] || got.refs[i] != n.refs[i] {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestNodeCodecFullFanout(t *testing.T) {
	n := &node{kind: kindLeaf}
	f := MaxFanout(storage.DefaultBlockSize)
	for i := 0; i < f; i++ {
		n.append(geom.NewRect(0, 0, 1, 1), uint32(i))
	}
	buf := make([]byte, storage.DefaultBlockSize)
	if got := decodeNode(encodeNode(buf, n, LayoutRaw)); got.count() != f {
		t.Fatalf("full node round trip count = %d", got.count())
	}
	n.append(geom.NewRect(0, 0, 1, 1), 999)
	defer func() {
		if recover() == nil {
			t.Error("encoding an over-full node should panic")
		}
	}()
	encodeNode(buf, n, LayoutRaw)
}

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, Config{})
	if tr.Len() != 0 || tr.Height() != 1 || tr.Nodes() != 1 {
		t.Errorf("empty tree: %v", tr)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("empty tree invalid: %v", err)
	}
	st := tr.QueryCount(geom.NewRect(0, 0, 1, 1))
	if st.Results != 0 || st.NodesVisited != 1 {
		t.Errorf("empty query stats: %+v", st)
	}
}

func TestPackedBuildAndQuery(t *testing.T) {
	items := randItems(2000, 1)
	tr := buildPacked(t, items, 16)
	if tr.Len() != 2000 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		if err := CheckQueryAgainstBruteForce(tr, items, q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueryEarlyStop(t *testing.T) {
	items := randItems(500, 3)
	tr := buildPacked(t, items, 8)
	count := 0
	tr.Query(geom.NewRect(0, 0, 1, 1), func(geom.Item) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d results", count)
	}
}

func TestQueryStatsLeafAccounting(t *testing.T) {
	items := randItems(1000, 4)
	tr := buildPacked(t, items, 10)
	st := tr.QueryCount(geom.NewRect(0, 0, 1.1, 1.1))
	if st.Results != 1000 {
		t.Errorf("full query results = %d", st.Results)
	}
	if st.LeavesVisited != 100 {
		t.Errorf("full query should visit all 100 leaves, got %d", st.LeavesVisited)
	}
	if st.NodesVisited != st.LeavesVisited+st.InternalVisited {
		t.Error("visit accounting inconsistent")
	}
}

func TestHeightGrowth(t *testing.T) {
	// fanout 4: 4^h leaves; 256 items over full leaves of 4 -> 64 leaves ->
	// 16 -> 4 -> 1: height 4.
	items := randItems(256, 5)
	tr := buildPacked(t, items, 4)
	if tr.Height() != 4 {
		t.Errorf("height = %d, want 4", tr.Height())
	}
}

func TestSingleLeafTree(t *testing.T) {
	items := randItems(5, 6)
	tr := buildPacked(t, items, 16)
	if tr.Height() != 1 {
		t.Errorf("height = %d, want 1", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := CheckQueryAgainstBruteForce(tr, items, geom.NewRect(0, 0, 2, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestItemsRoundTrip(t *testing.T) {
	items := randItems(300, 7)
	tr := buildPacked(t, items, 9)
	got := tr.Items()
	if len(got) != len(items) {
		t.Fatalf("Items len = %d", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].ID < got[j].ID })
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestUtilizationPacked(t *testing.T) {
	items := randItems(113*10, 8)
	tr := buildPacked(t, items, 0) // default fanout 113
	leaf, _ := tr.Utilization()
	if leaf < 0.99 {
		t.Errorf("packed leaf utilization = %.3f, want > 0.99", leaf)
	}
}

func TestPinInternalMakesQueriesLeafOnly(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, 0) // no LRU: only pins persist
	b := NewBuilder(pager, Config{Fanout: 8})
	items := randItems(512, 9)
	var leaves []ChildEntry
	for lo := 0; lo < len(items); lo += 8 {
		leaves = append(leaves, b.WriteLeaf(items[lo:lo+8]))
	}
	tr := b.FinishPacked(leaves)
	pinned := tr.PinInternal()
	if pinned == 0 {
		t.Fatal("expected internal nodes to pin")
	}
	disk.ResetStats()
	st := tr.QueryCount(geom.NewRect(0.2, 0.2, 0.4, 0.4))
	reads := disk.Stats().Reads
	if int(reads) != st.LeavesVisited {
		t.Errorf("disk reads %d != leaves visited %d with pinned internals", reads, st.LeavesVisited)
	}
}

func TestWalkLevels(t *testing.T) {
	items := randItems(256, 10)
	tr := buildPacked(t, items, 4)
	levelKind := map[int]bool{}
	tr.Walk(func(_ storage.PageID, level int, isLeaf bool, _ []geom.Item) {
		if isLeaf != (level == 0) {
			t.Fatalf("leaf flag mismatch at level %d", level)
		}
		levelKind[level] = true
	})
	for l := 0; l < tr.Height(); l++ {
		if !levelKind[l] {
			t.Errorf("no node seen at level %d", l)
		}
	}
}

func TestValidateDetectsBadMBR(t *testing.T) {
	items := randItems(100, 11)
	tr := buildPacked(t, items, 8)
	// Corrupt the root: shrink its first entry's rect.
	n := tr.readNode(tr.root)
	if n.isLeaf() {
		t.Skip("tree too small")
	}
	n.rects[0] = geom.PointRect(0, 0)
	tr.writeNode(tr.root, n)
	if err := tr.Validate(); err == nil {
		t.Error("validate should detect corrupted MBR")
	}
}

func TestBuilderRejectsBadCounts(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	b := NewBuilder(storage.NewPager(disk, -1), Config{Fanout: 4})
	defer func() {
		if recover() == nil {
			t.Error("oversized leaf should panic")
		}
	}()
	b.WriteLeaf(randItems(5, 12))
}

func TestBuilderPackLevelBalances(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	b := NewBuilder(storage.NewPager(disk, -1), Config{Fanout: 4})
	items := randItems(4*5, 13)
	var leaves []ChildEntry
	for lo := 0; lo < len(items); lo += 4 {
		leaves = append(leaves, b.WriteLeaf(items[lo:lo+4]))
	}
	// 5 leaves with fanout 4 -> 2 groups of 3+2, not 4+1.
	packed := b.PackLevel(leaves)
	if len(packed) != 2 {
		t.Fatalf("groups = %d", len(packed))
	}
	tr := b.Finish(b.WriteInternal(packed), 3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	n := tr.readNode(packed[0].Page)
	if n.count() != 3 && n.count() != 2 {
		t.Errorf("unbalanced group of %d", n.count())
	}
}

func TestFinishEmpty(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	b := NewBuilder(storage.NewPager(disk, -1), Config{})
	tr := b.FinishPacked(nil)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty packed tree: %v", tr)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryIOEqualsNodesWithoutCache(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	pager := storage.NewPager(disk, 0)
	b := NewBuilder(pager, Config{Fanout: 8})
	items := randItems(512, 14)
	var leaves []ChildEntry
	for lo := 0; lo < len(items); lo += 8 {
		leaves = append(leaves, b.WriteLeaf(items[lo:lo+8]))
	}
	tr := b.FinishPacked(leaves)
	disk.ResetStats()
	st := tr.QueryCount(geom.NewRect(0.1, 0.1, 0.3, 0.3))
	if got := disk.Stats().Reads; int(got) != st.NodesVisited {
		t.Errorf("uncached reads %d != nodes visited %d", got, st.NodesVisited)
	}
}

func TestReleaseResetsCounters(t *testing.T) {
	items := randItems(256, 16)
	tr := buildPacked(t, items, 4)
	if tr.Height() < 2 || tr.Nodes() < 2 {
		t.Fatalf("test tree too small: %v", tr)
	}
	disk := tr.Pager().Disk()
	inUse := disk.PagesInUse()
	tr.Release()
	if tr.Len() != 0 || tr.Nodes() != 0 || tr.Height() != 0 {
		t.Errorf("released tree reports items=%d nodes=%d height=%d, want all 0",
			tr.Len(), tr.Nodes(), tr.Height())
	}
	if tr.Root() != storage.NilPage {
		t.Errorf("released root = %d, want NilPage", tr.Root())
	}
	if freed := inUse - disk.PagesInUse(); freed <= 0 {
		t.Errorf("Release freed %d pages", freed)
	}
	if m := tr.MBR(); m.Valid() {
		t.Errorf("released tree MBR = %v, want invalid (empty) rect", m)
	}
}

func TestMBREmptyTree(t *testing.T) {
	tr := newTestTree(t, Config{})
	if m := tr.MBR(); m.Valid() {
		t.Errorf("empty tree MBR = %v, want invalid (empty) rect", m)
	}
}

func TestTreeMBRCoversAll(t *testing.T) {
	items := randItems(200, 15)
	tr := buildPacked(t, items, 8)
	m := tr.MBR()
	for _, it := range items {
		if !m.Contains(it.Rect) {
			t.Fatalf("tree MBR %v misses %v", m, it.Rect)
		}
	}
}
