package rtree

import (
	"prtree/internal/geom"
	"prtree/internal/parallel"
)

// This file implements the batch query executor: a slice of window queries
// fanned across a GOMAXPROCS-bounded worker pool. Each query runs whole on
// one goroutine with the same traversal as Query, so per-query results and
// statistics are deterministic — identical to running the queries
// sequentially — and with an unbounded (or disabled) page cache the
// aggregate block-I/O is bit-identical too, because the pager's
// single-flight miss path charges each distinct page exactly once no matter
// how many workers race for it.

// QueryBatch runs every query in queries concurrently on up to workers
// goroutines (bounded by GOMAXPROCS; <= 1 means serial on the caller's
// goroutine) and returns per-query statistics indexed like queries. fn, if
// non-nil, receives each result item tagged with the index of the query
// that produced it; it may be called from multiple goroutines concurrently
// (never concurrently for the same query index) and must not mutate the
// tree. fn returning false stops that one query early, not the batch.
func (t *Tree) QueryBatch(queries []geom.Rect, workers int, fn func(qi int, it geom.Item) bool) []QueryStats {
	out := make([]QueryStats, len(queries))
	parallel.Run(workers, len(queries), func(i int) {
		if fn == nil {
			out[i] = t.Query(queries[i], nil)
			return
		}
		out[i] = t.Query(queries[i], func(it geom.Item) bool { return fn(i, it) })
	})
	return out
}

// SearchBatch runs every query concurrently on up to workers goroutines and
// returns the matching items per query plus the per-query statistics, both
// indexed like queries. Result slices preserve the traversal order, so
// SearchBatch(qs, w)[i] equals QueryCollect(qs[i]) for any worker count.
func (t *Tree) SearchBatch(queries []geom.Rect, workers int) ([][]geom.Item, []QueryStats) {
	results := make([][]geom.Item, len(queries))
	stats := t.QueryBatch(queries, workers, func(qi int, it geom.Item) bool {
		results[qi] = append(results[qi], it)
		return true
	})
	return results, stats
}
