package rtree

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// allowParallelism raises GOMAXPROCS so the worker pool actually fans out
// even on single-CPU machines (workers are clamped to GOMAXPROCS). Returns
// the restore function.
func allowParallelism() func() {
	old := runtime.GOMAXPROCS(8)
	return func() { runtime.GOMAXPROCS(old) }
}

// batchTestTree builds a tree of n random rectangles by dynamic insertion
// on a pager with the given cache capacity.
func batchTestTree(n int, seed int64, capacity int) (*Tree, *storage.Disk) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	tr := New(storage.NewPager(disk, capacity), Config{Fanout: 16})
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		tr.Insert(geom.Item{
			Rect: geom.NewRect(x, y, x+rng.Float64()*0.05, y+rng.Float64()*0.05),
			ID:   uint32(i),
		})
	}
	return tr, disk
}

func batchTestQueries(n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]geom.Rect, n)
	for i := range qs {
		x, y := rng.Float64(), rng.Float64()
		s := rng.Float64() * 0.3
		qs[i] = geom.NewRect(x, y, x+s, y+s)
	}
	return qs
}

// TestQueryBatchMatchesSequential is the equivalence property test: for
// every seed, cache capacity and worker count, SearchBatch must return the
// same per-query items (in the same order) and the same per-query stats as
// N sequential Query calls. With an eviction-free cache (unbounded or
// disabled) the aggregate block-I/O must also be bit-identical to the
// sequential run at every worker count.
func TestQueryBatchMatchesSequential(t *testing.T) {
	defer allowParallelism()()
	for _, seed := range []int64{1, 7, 42} {
		for _, capacity := range []int{-1, 0, 3} {
			tr, disk := batchTestTree(3000, seed, capacity)
			queries := batchTestQueries(40, seed+100)

			tr.Pager().DropCache()
			disk.ResetStats()
			wantItems := make([][]geom.Item, len(queries))
			wantStats := make([]QueryStats, len(queries))
			for i, q := range queries {
				wantStats[i] = tr.Query(q, func(it geom.Item) bool {
					wantItems[i] = append(wantItems[i], it)
					return true
				})
			}
			serialIO := disk.Stats()

			for _, workers := range []int{1, 2, 4, 8} {
				tr.Pager().DropCache()
				disk.ResetStats()
				gotItems, gotStats := tr.SearchBatch(queries, workers)
				batchIO := disk.Stats()

				for i := range queries {
					if !reflect.DeepEqual(gotStats[i], wantStats[i]) {
						t.Fatalf("seed=%d cap=%d workers=%d query %d: stats %+v, want %+v",
							seed, capacity, workers, i, gotStats[i], wantStats[i])
					}
					if !reflect.DeepEqual(gotItems[i], wantItems[i]) {
						t.Fatalf("seed=%d cap=%d workers=%d query %d: %d items, want %d (or order differs)",
							seed, capacity, workers, i, len(gotItems[i]), len(wantItems[i]))
					}
				}
				// Eviction-free regimes: each access pattern is charged as
				// serially, so total block-I/O is bit-identical. A bounded
				// LRU interleaves evictions across workers, so only the
				// per-query results and stats are deterministic there.
				if capacity <= 0 && batchIO != serialIO {
					t.Fatalf("seed=%d cap=%d workers=%d: aggregate I/O %v, want %v",
						seed, capacity, workers, batchIO, serialIO)
				}
			}
		}
	}
}

// TestQueryBatchEarlyStop checks that fn returning false stops only the one
// query, and its stats reflect the truncation.
func TestQueryBatchEarlyStop(t *testing.T) {
	defer allowParallelism()()
	tr, _ := batchTestTree(2000, 3, -1)
	queries := batchTestQueries(8, 5)
	full, _ := tr.SearchBatch(queries, 4)

	st := tr.QueryBatch(queries, 4, func(qi int, it geom.Item) bool {
		return qi != 0 // stop query 0 at its first result
	})
	for i := range queries {
		want := len(full[i])
		if i == 0 && want > 0 {
			want = 1
		}
		if st[i].Results != want {
			t.Errorf("query %d: %d results, want %d", i, st[i].Results, want)
		}
	}
}

// TestConcurrentQueryStress runs every read-path flavor from many
// goroutines against one shared tree while another goroutine reads and
// resets the I/O counters — the full concurrent read contract, exercised
// under -race in CI with -count=2.
func TestConcurrentQueryStress(t *testing.T) {
	defer allowParallelism()()
	tr, disk := batchTestTree(4000, 11, -1)
	queries := batchTestQueries(24, 13)

	wantCollect := make([][]geom.Item, len(queries))
	wantContain := make([]int, len(queries))
	for i, q := range queries {
		wantCollect[i] = tr.QueryCollect(q)
		wantContain[i] = tr.ContainmentQuery(q, nil).Results
	}
	wantKNN, _ := tr.NearestNeighbors(0.5, 0.5, 10)
	wantMBR := tr.MBR()

	const workers = 8
	done := make(chan struct{})
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = disk.Stats()
			_, _ = tr.Pager().HitRate()
			disk.ResetStats()
		}
	}()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 30; rep++ {
				qi := (w + rep) % len(queries)
				switch rep % 4 {
				case 0:
					if got := tr.QueryCollect(queries[qi]); !reflect.DeepEqual(got, wantCollect[qi]) {
						t.Errorf("worker %d: QueryCollect(%d) diverged", w, qi)
						return
					}
				case 1:
					if got := tr.ContainmentQuery(queries[qi], nil).Results; got != wantContain[qi] {
						t.Errorf("worker %d: ContainmentQuery(%d) = %d, want %d", w, qi, got, wantContain[qi])
						return
					}
				case 2:
					got, _ := tr.NearestNeighbors(0.5, 0.5, 10)
					if len(got) != len(wantKNN) {
						t.Errorf("worker %d: kNN returned %d", w, len(got))
						return
					}
					for i := range got {
						if got[i].Dist2 != wantKNN[i].Dist2 {
							t.Errorf("worker %d: kNN[%d] dist %v, want %v", w, i, got[i].Dist2, wantKNN[i].Dist2)
							return
						}
					}
				case 3:
					if got := tr.MBR(); got != wantMBR {
						t.Errorf("worker %d: MBR diverged", w)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	statsWG.Wait()
}
