package rtree

import (
	"math"
	"math/rand"
	"testing"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// gridItems returns items whose coordinates sit on the 2^-bits grid in the
// unit square — the regime compressed leaves store losslessly.
func gridItems(n int, bits uint, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	scale := math.Ldexp(1, int(bits))
	inv := math.Ldexp(1, -int(bits))
	snap := func(v float64) float64 { return math.Floor(v*scale) * inv }
	items := make([]geom.Item, n)
	for i := range items {
		// Keep extents within one unit so any subset's range stays below
		// the 65535-grid-cell lossless threshold.
		x, y := snap(rng.Float64()*0.9), snap(rng.Float64()*0.9)
		items[i] = geom.Item{
			Rect: geom.NewRect(x, y, x+snap(rng.Float64()*0.05), y+snap(rng.Float64()*0.05)),
			ID:   uint32(i),
		}
	}
	return items
}

func TestLayoutTable(t *testing.T) {
	cases := []struct {
		layout Layout
		block  int
		fanout int
	}{
		{LayoutRaw, 4096, 113},
		{LayoutCompressed, 4096, 338},
		{LayoutRaw, 512, 14},
		{LayoutCompressed, 512, 39},
		{LayoutRaw, 1024, 28},
		{LayoutCompressed, 1024, 82},
		{LayoutRaw, 8192, 227},
		{LayoutCompressed, 8192, 679},
	}
	for _, c := range cases {
		if got := c.layout.MaxFanout(c.block); got != c.fanout {
			t.Errorf("%s.MaxFanout(%d) = %d, want %d", c.layout, c.block, got, c.fanout)
		}
	}
	if LayoutRaw.EntrySize() != 36 || LayoutCompressed.EntrySize() != 12 {
		t.Errorf("entry sizes %d/%d, want 36/12", LayoutRaw.EntrySize(), LayoutCompressed.EntrySize())
	}
	for _, s := range []string{"raw", "compressed"} {
		l, err := ParseLayout(s)
		if err != nil || l.String() != s {
			t.Errorf("ParseLayout(%q) = %v, %v", s, l, err)
		}
	}
	if _, err := ParseLayout("sideways"); err == nil {
		t.Error("ParseLayout accepted garbage")
	}
}

func TestCompressedLeafLosslessRoundTrip(t *testing.T) {
	items := gridItems(300, 16, 1)
	buf := make([]byte, storage.DefaultBlockSize)
	data, mbr, ok := encodeCompressedLeaf(buf, items)
	if !ok {
		t.Fatal("grid items must encode losslessly")
	}
	if want := geom.ItemsMBR(items); mbr != want {
		t.Fatalf("mbr %v, want %v", mbr, want)
	}
	if !pageIsCompressed(data) {
		t.Fatal("page not flagged compressed")
	}
	if want := compHeaderSize + len(items)*compEntrySize; len(data) != want {
		t.Fatalf("page size %d, want %d", len(data), want)
	}

	v := makeView(data)
	if !v.isLeaf() || v.count() != len(items) {
		t.Fatalf("header: leaf=%v count=%d", v.isLeaf(), v.count())
	}
	for i, it := range items {
		if got := v.rectAt(i); got != it.Rect {
			t.Fatalf("rectAt(%d) = %v, want %v (must be bit-exact)", i, got, it.Rect)
		}
		if v.refAt(i) != it.ID {
			t.Fatalf("refAt(%d) = %d, want %d", i, v.refAt(i), it.ID)
		}
		if got := v.itemAt(i); got != it {
			t.Fatalf("itemAt(%d) = %v, want %v", i, got, it)
		}
	}

	// decodeNode must agree with the view entry for entry.
	n := decodeNode(data)
	for i := range items {
		if n.rects[i] != items[i].Rect || n.refs[i] != items[i].ID {
			t.Fatalf("decodeNode entry %d = %v/%d", i, n.rects[i], n.refs[i])
		}
	}
}

func TestCompressedLeafFallsBackToRaw(t *testing.T) {
	items := randItems(50, 2) // full-precision coordinates: not lossless
	buf := make([]byte, storage.DefaultBlockSize)
	if _, _, ok := encodeCompressedLeaf(buf, items); ok {
		t.Fatal("full-precision items should not encode losslessly")
	}
	data := encodeNode(buf, &node{kind: kindLeaf,
		rects: rectsOf(items), refs: refsOf(items)}, LayoutCompressed)
	if pageIsCompressed(data) {
		t.Fatal("fallback page must be raw")
	}
	v := makeView(data)
	for i, it := range items {
		if v.rectAt(i) != it.Rect || v.refAt(i) != it.ID {
			t.Fatalf("raw fallback entry %d mismatch", i)
		}
	}
}

func rectsOf(items []geom.Item) []geom.Rect {
	out := make([]geom.Rect, len(items))
	for i := range items {
		out[i] = items[i].Rect
	}
	return out
}

func refsOf(items []geom.Item) []uint32 {
	out := make([]uint32, len(items))
	for i := range items {
		out[i] = items[i].ID
	}
	return out
}

func TestCompressedInternalCoversChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	children := make([]ChildEntry, 330)
	for i := range children {
		x, y := rng.Float64()*100, rng.Float64()*100
		children[i] = ChildEntry{
			Rect: geom.NewRect(x, y, x+rng.Float64(), y+rng.Float64()),
			Page: storage.PageID(i * 3),
		}
	}
	buf := make([]byte, storage.DefaultBlockSize)
	data, mbr, ok := encodeCompressedInternal(buf, children)
	if !ok {
		t.Fatal("finite children must encode")
	}
	v := makeView(data)
	if v.isLeaf() || v.count() != len(children) {
		t.Fatalf("header: leaf=%v count=%d", v.isLeaf(), v.count())
	}
	union := geom.EmptyRect()
	for i, c := range children {
		got := v.rectAt(i)
		if !got.Contains(c.Rect) {
			t.Fatalf("entry %d cover %v does not contain %v", i, got, c.Rect)
		}
		if v.refAt(i) != uint32(c.Page) {
			t.Fatalf("entry %d ref %d, want %d", i, v.refAt(i), c.Page)
		}
		union = union.Union(got)
	}
	// The returned MBR must be the canonical (decoded) union, not the
	// pre-quantization one: parents store what readers reconstruct.
	if union != mbr {
		t.Fatalf("canonical mbr %v, decoded union %v", mbr, union)
	}
	if got := v.mbr(); got != mbr {
		t.Fatalf("view mbr %v, want %v", got, mbr)
	}
}

func TestEncodeNodeCanonicalizesInternalRects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := &node{kind: kindInternal}
	for i := 0; i < 200; i++ {
		x, y := rng.Float64(), rng.Float64()
		n.append(geom.NewRect(x, y, x+rng.Float64()*0.1, y+rng.Float64()*0.1), uint32(i))
	}
	buf := make([]byte, storage.DefaultBlockSize)
	data := encodeNode(buf, n, LayoutCompressed)
	if !pageIsCompressed(data) {
		t.Fatal("internal node must compress")
	}
	// After encoding, the in-memory node must match the page bit for bit —
	// that is what keeps the pager's decoded cache coherent.
	decoded := decodeNode(data)
	for i := range n.rects {
		if n.rects[i] != decoded.rects[i] {
			t.Fatalf("entry %d not canonicalized: node %v, page %v", i, n.rects[i], decoded.rects[i])
		}
	}
}

func TestInternalQuantizesRejectsInfinite(t *testing.T) {
	n := &node{kind: kindInternal}
	n.append(geom.NewRect(0, 0, 1, 1), 1)
	if !internalQuantizes(n) {
		t.Fatal("finite internal node must quantize")
	}
	n.append(geom.WorldRect(), 2)
	if internalQuantizes(n) {
		t.Fatal("infinite union cannot quantize")
	}
	buf := make([]byte, storage.DefaultBlockSize)
	if data := encodeNode(buf, n, LayoutCompressed); pageIsCompressed(data) {
		t.Fatal("infinite internal node must fall back to raw")
	}
}

// BenchmarkNodeDecode compares a full intersection scan over a max-fanout
// page in both layouts through the zero-copy view, plus the eager decode.
// The view paths must stay at 0 allocs/op — the CI bench smoke guards
// this for the compressed path like PR 1 did for raw.
func BenchmarkNodeDecode(b *testing.B) {
	items := gridItems(338, 16, 5)
	buf := make([]byte, storage.DefaultBlockSize)
	compData, _, ok := encodeCompressedLeaf(buf, items)
	if !ok {
		b.Fatal("grid items must compress")
	}
	compData = append([]byte(nil), compData...)
	rawData, _ := encodeRawLeafPage(make([]byte, storage.DefaultBlockSize), items[:113])
	rawData = append([]byte(nil), rawData...)
	q := geom.NewRect(0.2, 0.2, 0.6, 0.6)

	scan := func(b *testing.B, data []byte) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			v := makeView(data)
			for j, cnt := 0, v.count(); j < cnt; j++ {
				if q.Intersects(v.rectAt(j)) {
					hits++
				}
			}
		}
		if hits == 0 {
			b.Fatal("query should match")
		}
	}
	b.Run("view-raw", func(b *testing.B) { scan(b, rawData) })
	b.Run("view-compressed", func(b *testing.B) { scan(b, compData) })
	b.Run("view-compressed-integer", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			v := makeView(compData)
			qq := v.qz.CoverQuery(q)
			for j, cnt := 0, v.count(); j < cnt; j++ {
				if v.qrectAt(j).Intersects(qq) {
					hits++
				}
			}
		}
		if hits == 0 {
			b.Fatal("query should match")
		}
	})
	b.Run("decode-compressed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := decodeNode(compData)
			if n.count() == 0 {
				b.Fatal("empty")
			}
		}
	})
}
