package rtree

import (
	"math/rand"
	"testing"

	"prtree/internal/geom"
)

func newRStarTree(t *testing.T, fanout int) *Tree {
	t.Helper()
	return newTestTree(t, Config{Fanout: fanout, Split: RStarSplit})
}

func TestRStarInsertSmall(t *testing.T) {
	tr := newRStarTree(t, 4)
	items := randItems(50, 1)
	insertAll(tr, items)
	if tr.Len() != 50 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := CheckQueryAgainstBruteForce(tr, items, geom.NewRect(0, 0, 2, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestRStarInsertLargeCorrect(t *testing.T) {
	tr := newRStarTree(t, 16)
	items := randItems(3000, 2)
	insertAll(tr, items)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		if err := CheckQueryAgainstBruteForce(tr, items, q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRStarDeleteMixed(t *testing.T) {
	tr := newRStarTree(t, 8)
	items := randItems(800, 4)
	insertAll(tr, items)
	var remaining []geom.Item
	for i, it := range items {
		if i%2 == 0 {
			if !tr.Delete(it) {
				t.Fatalf("delete %d failed", i)
			}
		} else {
			remaining = append(remaining, it)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		if err := CheckQueryAgainstBruteForce(tr, remaining, q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRStarBeatsGuttmanOnClusteredInserts(t *testing.T) {
	// The R* heuristics exist to produce better trees under dynamic
	// insertion. On a clustered insertion order, the R* tree should answer
	// queries with no more leaf visits than the quadratic Guttman tree
	// (allowing a little slack for randomness).
	rng := rand.New(rand.NewSource(6))
	var items []geom.Item
	for c := 0; c < 30; c++ {
		cx, cy := rng.Float64(), rng.Float64()
		for i := 0; i < 100; i++ {
			x := cx + rng.NormFloat64()*0.01
			y := cy + rng.NormFloat64()*0.01
			items = append(items, geom.Item{Rect: geom.NewRect(x, y, x+0.001, y+0.001), ID: uint32(len(items))})
		}
	}
	guttman := newTestTree(t, Config{Fanout: 16, Split: QuadraticSplit})
	rstar := newTestTree(t, Config{Fanout: 16, Split: RStarSplit})
	insertAll(guttman, items)
	insertAll(rstar, items)
	if err := rstar.Validate(); err != nil {
		t.Fatal(err)
	}
	var gLeaves, rLeaves int
	for i := 0; i < 50; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64()*0.2, rng.Float64()*0.2)
		gLeaves += guttman.QueryCount(q).LeavesVisited
		rLeaves += rstar.QueryCount(q).LeavesVisited
	}
	if float64(rLeaves) > 1.2*float64(gLeaves) {
		t.Errorf("R* visited %d leaves, Guttman %d — R* should not be worse", rLeaves, gLeaves)
	}
}

func TestRStarDuplicates(t *testing.T) {
	tr := newRStarTree(t, 4)
	r := geom.NewRect(0.3, 0.3, 0.4, 0.4)
	for i := 0; i < 60; i++ {
		tr.Insert(geom.Item{Rect: r, ID: uint32(i)})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.QueryCollect(r); len(got) != 60 {
		t.Errorf("found %d of 60 duplicates", len(got))
	}
}

func TestRStarInsertIntoBulkLoadedTree(t *testing.T) {
	items := randItems(1000, 7)
	disk := newTestTree(t, Config{}).Pager().Disk()
	_ = disk
	tr := buildPacked(t, items, 16)
	// Flip the tree's config to R* for subsequent inserts.
	tr.cfg.Split = RStarSplit
	extra := randItems(400, 8)
	for i := range extra {
		extra[i].ID += 50000
		tr.Insert(extra[i])
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	all := append(append([]geom.Item{}, items...), extra...)
	if err := CheckQueryAgainstBruteForce(tr, all, geom.NewRect(0.1, 0.1, 0.6, 0.6)); err != nil {
		t.Fatal(err)
	}
}

func TestRStarSplitBalance(t *testing.T) {
	// Every R* split must respect the 40% minimum fill on both sides.
	tr := newRStarTree(t, 10)
	n := &node{kind: kindLeaf}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 11; i++ {
		x, y := rng.Float64(), rng.Float64()
		n.append(geom.NewRect(x, y, x+0.01, y+0.01), uint32(i))
	}
	left, right := tr.splitRStar(n)
	if left.count()+right.count() != 11 {
		t.Fatalf("split lost entries: %d + %d", left.count(), right.count())
	}
	eleven := 11.0
	min := int(eleven * rstarMinFillFraction)
	if left.count() < min || right.count() < min {
		t.Errorf("unbalanced R* split: %d/%d (min %d)", left.count(), right.count(), min)
	}
}

func TestChooseByOverlapPrefersLowOverlap(t *testing.T) {
	n := &node{kind: kindInternal}
	// Child 0 overlaps child 1 heavily if enlarged; child 2 is far away
	// but needs the same area enlargement as 0 to cover the new rect.
	n.append(geom.NewRect(0, 0, 1, 1), 0)
	n.append(geom.NewRect(0.5, 0, 1.5, 1), 1)
	n.append(geom.NewRect(10, 10, 11, 11), 2)
	r := geom.NewRect(0.4, 0.4, 0.6, 0.6) // inside child 0 and child 1's reach
	got := chooseByOverlap(n, r)
	// Containment: no enlargement for 0, so 0 (zero overlap growth, zero
	// enlargement) must win over 2.
	if got != 0 {
		t.Errorf("chooseByOverlap = %d, want 0", got)
	}
}
