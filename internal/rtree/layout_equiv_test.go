package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// buildLayout packs items in slice order into a tree of the given layout
// on its own disk of the given block size, using the builder exactly as
// the stream loaders do (WriteLeaves + FinishPacked).
func buildLayout(tb testing.TB, items []geom.Item, layout Layout, blockSize int) *Tree {
	tb.Helper()
	disk := storage.NewDisk(blockSize)
	b := NewBuilder(storage.NewPager(disk, -1), Config{Layout: layout})
	cap := b.LeafCapacity()
	var leaves []ChildEntry
	for lo := 0; lo < len(items); lo += cap {
		hi := lo + cap
		if hi > len(items) {
			hi = len(items)
		}
		leaves = append(leaves, b.WriteLeaves(items[lo:hi])...)
	}
	tr := b.FinishPacked(leaves)
	if err := tr.Validate(); err != nil {
		tb.Fatalf("%s layout tree invalid: %v", layout, err)
	}
	return tr
}

// sortedByID returns items sorted by ID for order-independent comparison:
// the two layouts pack different tree shapes, so result order may differ
// while the result SET must not.
func sortedByID(items []geom.Item) []geom.Item {
	out := append([]geom.Item(nil), items...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func equalItemSets(tb testing.TB, what string, a, b []geom.Item) {
	tb.Helper()
	a, b = sortedByID(a), sortedByID(b)
	if len(a) != len(b) {
		tb.Fatalf("%s: raw %d results, compressed %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			tb.Fatalf("%s: result %d differs: raw %v, compressed %v", what, i, a[i], b[i])
		}
	}
}

// xSorted returns items ordered by (minX, id) so both layouts pack the
// same sequence.
func xSorted(items []geom.Item) []geom.Item {
	out := append([]geom.Item(nil), items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rect.MinX != out[j].Rect.MinX {
			return out[i].Rect.MinX < out[j].Rect.MinX
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TestLayoutEquivalenceProperty is the acceptance property: identical
// query, k-NN and batch results between the raw and compressed layouts
// across seeds, block sizes, and both grid-aligned (lossless leaves) and
// full-precision (raw-fallback leaves) data.
func TestLayoutEquivalenceProperty(t *testing.T) {
	for _, blockSize := range []int{512, 1024, 4096, 8192} {
		for seed := int64(1); seed <= 3; seed++ {
			for _, grid := range []bool{true, false} {
				name := fmt.Sprintf("block=%d/seed=%d/grid=%v", blockSize, seed, grid)
				t.Run(name, func(t *testing.T) {
					var items []geom.Item
					if grid {
						items = gridItems(3000, 16, seed)
					} else {
						items = randItems(3000, seed)
					}
					items = xSorted(items)
					raw := buildLayout(t, items, LayoutRaw, blockSize)
					comp := buildLayout(t, items, LayoutCompressed, blockSize)

					rng := rand.New(rand.NewSource(seed * 1000))
					for i := 0; i < 40; i++ {
						x, y := rng.Float64(), rng.Float64()
						q := geom.NewRect(x, y, x+rng.Float64()*0.2, y+rng.Float64()*0.2)
						equalItemSets(t, fmt.Sprintf("query %v", q),
							raw.QueryCollect(q), comp.QueryCollect(q))
						if err := CheckQueryAgainstBruteForce(comp, items, q); err != nil {
							t.Fatal(err)
						}

						var rc, cc []geom.Item
						raw.ContainmentQuery(q, func(it geom.Item) bool { rc = append(rc, it); return true })
						comp.ContainmentQuery(q, func(it geom.Item) bool { cc = append(cc, it); return true })
						equalItemSets(t, fmt.Sprintf("containment %v", q), rc, cc)

						k := 1 + rng.Intn(20)
						rn, _ := raw.NearestNeighbors(x, y, k)
						cn, _ := comp.NearestNeighbors(x, y, k)
						if len(rn) != len(cn) {
							t.Fatalf("knn(%g,%g,%d): %d vs %d results", x, y, k, len(rn), len(cn))
						}
						for j := range rn {
							if rn[j] != cn[j] {
								t.Fatalf("knn(%g,%g,%d)[%d]: raw %v, compressed %v", x, y, k, j, rn[j], cn[j])
							}
						}
					}

					// Batch equality against the sequential runs.
					queries := make([]geom.Rect, 16)
					for i := range queries {
						x, y := rng.Float64(), rng.Float64()
						queries[i] = geom.NewRect(x, y, x+0.1, y+0.1)
					}
					rawRes, _ := raw.SearchBatch(queries, 4)
					compRes, _ := comp.SearchBatch(queries, 4)
					for i := range queries {
						equalItemSets(t, fmt.Sprintf("batch[%d]", i), rawRes[i], compRes[i])
					}

					if grid {
						if comp.Nodes() >= raw.Nodes() {
							t.Errorf("compressed tree not smaller: %d vs %d pages", comp.Nodes(), raw.Nodes())
						}
					}
				})
			}
		}
	}
}

// TestLayoutEquivalenceUnderUpdates drives identical insert/delete
// sequences into trees of both layouts (including the R* heuristics) and
// checks structural validity plus identical query results throughout —
// the update path exercises leaf-capacity renegotiation, multi-way splits
// and cover requantization.
func TestLayoutEquivalenceUnderUpdates(t *testing.T) {
	for _, split := range []SplitKind{QuadraticSplit, RStarSplit} {
		for seed := int64(1); seed <= 3; seed++ {
			for _, grid := range []bool{true, false} {
				name := fmt.Sprintf("split=%d/seed=%d/grid=%v", split, seed, grid)
				t.Run(name, func(t *testing.T) {
					blockSize := 1024 // small fanout: splits happen fast
					rawDisk := storage.NewDisk(blockSize)
					compDisk := storage.NewDisk(blockSize)
					raw := New(storage.NewPager(rawDisk, -1), Config{Split: split, Layout: LayoutRaw})
					comp := New(storage.NewPager(compDisk, -1), Config{Split: split, Layout: LayoutCompressed})

					var items []geom.Item
					if grid {
						items = gridItems(1200, 16, seed+50)
					} else {
						items = randItems(1200, seed+50)
					}
					rng := rand.New(rand.NewSource(seed))
					live := make(map[int]bool)
					for i, it := range items {
						raw.Insert(it)
						comp.Insert(it)
						live[i] = true
						// Interleave deletions.
						if i%7 == 3 {
							for j := range live {
								raw.Delete(items[j])
								comp.Delete(items[j])
								delete(live, j)
								break
							}
						}
					}
					if err := raw.Validate(); err != nil {
						t.Fatalf("raw: %v", err)
					}
					if err := comp.Validate(); err != nil {
						t.Fatalf("compressed: %v", err)
					}
					if raw.Len() != comp.Len() {
						t.Fatalf("size skew: raw %d, compressed %d", raw.Len(), comp.Len())
					}
					for i := 0; i < 30; i++ {
						x, y := rng.Float64(), rng.Float64()
						q := geom.NewRect(x, y, x+rng.Float64()*0.3, y+rng.Float64()*0.3)
						equalItemSets(t, fmt.Sprintf("query %v", q),
							raw.QueryCollect(q), comp.QueryCollect(q))
					}
					equalItemSets(t, "full scan", raw.Items(), comp.Items())
				})
			}
		}
	}
}

// TestCompressedMixedPrecisionLeaves loads a dataset that is half
// grid-aligned and half full-precision: the compressed tree must end up
// with a mix of compressed and raw leaf pages, all coexisting under
// compressed internal levels, and still answer correctly.
func TestCompressedMixedPrecisionLeaves(t *testing.T) {
	// Spatially separated populations (grid data on the left, noisy on the
	// right) so x-ordered leaf groups are homogeneous and both page
	// formats appear in one tree.
	grid := gridItems(2000, 16, 9)
	for i := range grid {
		// Power-of-two scaling keeps the coordinates grid-aligned.
		grid[i].Rect.MinX *= 0.125
		grid[i].Rect.MaxX *= 0.125
	}
	noisy := randItems(2000, 10)
	for i := range noisy {
		noisy[i].ID += 1000000
		noisy[i].Rect.MinX = 0.5 + noisy[i].Rect.MinX*0.4
		noisy[i].Rect.MaxX = 0.5 + noisy[i].Rect.MaxX*0.4
	}
	items := xSorted(append(grid, noisy...))
	tr := buildLayout(t, items, LayoutCompressed, storage.DefaultBlockSize)

	var compLeaves, rawLeaves int
	tr.Walk(func(page storage.PageID, _ int, isLeaf bool, _ []geom.Item) {
		if !isLeaf {
			return
		}
		if pageIsCompressed(tr.pager.Read(page)) {
			compLeaves++
		} else {
			rawLeaves++
		}
	})
	if compLeaves == 0 || rawLeaves == 0 {
		t.Fatalf("expected mixed leaf formats, got %d compressed / %d raw", compLeaves, rawLeaves)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		x, y := rng.Float64(), rng.Float64()
		if err := CheckQueryAgainstBruteForce(tr, items, geom.NewRect(x, y, x+0.2, y+0.2)); err != nil {
			t.Fatal(err)
		}
	}
}
