package rtree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"prtree/internal/storage"
)

// Tree persistence: the disk snapshot followed by the tree metadata, so a
// bulk-loaded index survives process restarts.

// Version 02 appended the layout word to the metadata record.
var treeMagic = [8]byte{'P', 'R', 'T', 'R', 'E', 'E', '0', '2'}

// Save serializes the tree (its disk pages and metadata) to w.
func (t *Tree) Save(w io.Writer) error {
	if _, err := t.pager.Disk().WriteTo(w); err != nil {
		return fmt.Errorf("rtree: saving disk: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(treeMagic[:]); err != nil {
		return err
	}
	meta := []uint64{
		uint64(t.root),
		uint64(t.height),
		uint64(t.nItems),
		uint64(t.nNodes),
		uint64(t.cfg.Fanout),
		uint64(t.cfg.MinFill),
		uint64(t.cfg.Split),
		uint64(t.cfg.Layout),
	}
	var buf [8]byte
	for _, v := range meta {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a tree written by Save, restoring it onto a fresh disk with a
// pager of the given cache capacity.
func Load(r io.Reader, cacheCapacity int) (*Tree, error) {
	disk, err := storage.ReadDiskFrom(r)
	if err != nil {
		return nil, fmt.Errorf("rtree: loading disk: %w", err)
	}
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("rtree: reading tree magic: %w", err)
	}
	if magic != treeMagic {
		return nil, fmt.Errorf("rtree: bad tree magic %q", magic[:])
	}
	meta := make([]uint64, 8)
	var buf [8]byte
	for i := range meta {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("rtree: reading metadata: %w", err)
		}
		meta[i] = binary.LittleEndian.Uint64(buf[:])
	}
	// Range-check the root id at full width before narrowing to PageID: a
	// corrupt upper half would otherwise truncate onto a valid page.
	if meta[0] >= uint64(disk.NumPages()) {
		return nil, fmt.Errorf("rtree: root page %d out of range", meta[0])
	}
	if meta[7] > uint64(LayoutCompressed) {
		return nil, fmt.Errorf("rtree: unknown layout %d", meta[7])
	}
	t := &Tree{
		pager: storage.NewPager(disk, cacheCapacity),
		cfg: Config{
			Fanout:  int(meta[4]),
			MinFill: int(meta[5]),
			Split:   SplitKind(meta[6]),
			Layout:  Layout(meta[7]),
		},
		root:   storage.PageID(meta[0]),
		height: int(meta[1]),
		nItems: int(meta[2]),
		nNodes: int(meta[3]),
		buf:    make([]byte, disk.BlockSize()),
	}
	if t.height < 1 {
		return nil, fmt.Errorf("rtree: implausible height %d", t.height)
	}
	// Sanity-check the root page header through a zero-copy view over the
	// raw block (PeekNoCopy, so the restored disk's I/O counters stay
	// untouched) before handing the tree to callers. The block size and
	// fanout come from the untrusted stream too, so bound them first: the
	// header must fit the block, and the recorded fanout must not exceed
	// the block's real capacity — the entry-count check below then bounds
	// rectAt/refAt indexing transitively.
	if disk.BlockSize() < t.cfg.Layout.HeaderSize()+t.cfg.Layout.EntrySize() {
		return nil, fmt.Errorf("rtree: block size %d cannot hold a node", disk.BlockSize())
	}
	if t.cfg.Fanout < 2 || t.cfg.Fanout > t.cfg.Layout.MaxFanout(disk.BlockSize()) {
		return nil, fmt.Errorf("rtree: implausible fanout %d for %d-byte blocks under the %s layout", t.cfg.Fanout, disk.BlockSize(), t.cfg.Layout)
	}
	root := makeView(disk.PeekNoCopy(t.root))
	if kind := root.data[0]; kind != kindLeaf && kind != kindInternal {
		return nil, fmt.Errorf("rtree: root page %d has invalid kind %d", t.root, kind)
	}
	if cnt := root.count(); cnt > t.cfg.Fanout {
		return nil, fmt.Errorf("rtree: root page %d holds %d entries, fanout %d", t.root, cnt, t.cfg.Fanout)
	}
	// A page's header flag, not the tree config, decides its format; bound
	// the count against the page's OWN layout so entry offsets stay inside
	// the block even for hostile flag/count combinations (e.g. a
	// raw-flagged page under a compressed-config fanout of 338).
	pageLayout := LayoutRaw
	if root.comp {
		pageLayout = LayoutCompressed
	}
	if cnt := root.count(); cnt > pageLayout.MaxFanout(disk.BlockSize()) {
		return nil, fmt.Errorf("rtree: %s root page %d holds %d entries for %d-byte blocks", pageLayout, t.root, cnt, disk.BlockSize())
	}
	if t.height > 1 && root.isLeaf() {
		return nil, fmt.Errorf("rtree: root page %d is a leaf but height is %d", t.root, t.height)
	}
	if t.height == 1 && !root.isLeaf() {
		return nil, fmt.Errorf("rtree: root page %d is internal but height is 1", t.root)
	}
	// These checks cover the root header only; a hostile snapshot can still
	// encode deeper corruption (cycles, wrong levels). Callers loading
	// untrusted data should run Validate, which walks every page.
	return t, nil
}
