package rtree

import (
	"fmt"
	"io"

	"prtree/internal/storage"
)

// Stream persistence: the disk snapshot followed by the tree metadata
// record, so a bulk-loaded index survives process restarts. This is the
// v1 Save/Load path for in-memory disks; trees on persistent backends
// (storage.FileBackend) persist in place via EncodeMeta/OpenFromMeta and
// need no snapshot round-trip.

// Version 02 appended the layout word to the metadata record.
var treeMagic = [8]byte{'P', 'R', 'T', 'R', 'E', 'E', '0', '2'}

// Save serializes the tree (its disk pages and metadata) to w. It requires
// the tree to live on an in-memory Disk (possibly behind decorators);
// file-backed trees persist in place and need no Save.
func (t *Tree) Save(w io.Writer) error {
	disk, ok := storage.AsDisk(t.pager.Backend())
	if !ok {
		return fmt.Errorf("rtree: Save requires an in-memory disk backend; persistent backends save in place via Sync/Close")
	}
	if _, err := disk.WriteTo(w); err != nil {
		return fmt.Errorf("rtree: saving disk: %w", err)
	}
	if _, err := w.Write(t.EncodeMeta()); err != nil {
		return fmt.Errorf("rtree: saving metadata: %w", err)
	}
	return nil
}

// Load reads a tree written by Save, restoring it onto a fresh disk with a
// pager of the given cache capacity.
func Load(r io.Reader, cacheCapacity int) (*Tree, error) {
	disk, err := storage.ReadDiskFrom(r)
	if err != nil {
		return nil, fmt.Errorf("rtree: loading disk: %w", err)
	}
	return LoadOnto(r, disk, cacheCapacity)
}

// LoadOnto reads the trailing tree metadata of a Save stream whose disk
// snapshot was already restored onto dev (possibly wrapped in decorators
// such as storage.Counting) and reopens the tree with a pager of the given
// cache capacity.
func LoadOnto(r io.Reader, dev storage.Backend, cacheCapacity int) (*Tree, error) {
	meta := make([]byte, MetaSize)
	if _, err := io.ReadFull(r, meta[:len(treeMagic)]); err != nil {
		return nil, fmt.Errorf("rtree: reading tree magic: %w", err)
	}
	if [8]byte(meta[:8]) != treeMagic {
		return nil, fmt.Errorf("rtree: bad tree magic %q", meta[:8])
	}
	if _, err := io.ReadFull(r, meta[len(treeMagic):]); err != nil {
		return nil, fmt.Errorf("rtree: reading metadata: %w", err)
	}
	return OpenFromMeta(storage.NewPager(dev, cacheCapacity), meta)
}
