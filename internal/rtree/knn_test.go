package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"prtree/internal/geom"
)

func TestPointQuery(t *testing.T) {
	items := []geom.Item{
		{Rect: geom.NewRect(0, 0, 2, 2), ID: 1},
		{Rect: geom.NewRect(1, 1, 3, 3), ID: 2},
		{Rect: geom.NewRect(5, 5, 6, 6), ID: 3},
	}
	tr := buildPacked(t, items, 4)
	got := map[uint32]bool{}
	tr.PointQuery(1.5, 1.5, func(it geom.Item) bool {
		got[it.ID] = true
		return true
	})
	if !got[1] || !got[2] || got[3] {
		t.Errorf("point query results: %v", got)
	}
}

func TestContainmentQuery(t *testing.T) {
	items := randItems(1000, 1)
	tr := buildPacked(t, items, 16)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 25; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		want := map[uint32]bool{}
		for _, it := range items {
			if q.Contains(it.Rect) {
				want[it.ID] = true
			}
		}
		got := map[uint32]bool{}
		st := tr.ContainmentQuery(q, func(it geom.Item) bool {
			got[it.ID] = true
			return true
		})
		if len(got) != len(want) || st.Results != len(want) {
			t.Fatalf("containment %v: got %d, want %d", q, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("containment missing %d", id)
			}
		}
	}
}

func TestContainmentEarlyStop(t *testing.T) {
	items := randItems(500, 3)
	tr := buildPacked(t, items, 8)
	count := 0
	tr.ContainmentQuery(geom.NewRect(-1, -1, 2, 2), func(geom.Item) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop at %d", count)
	}
}

func bruteKNN(items []geom.Item, x, y float64, k int) []Neighbor {
	ns := make([]Neighbor, len(items))
	for i, it := range items {
		ns[i] = Neighbor{Item: it, Dist2: pointRectDist2(x, y, it.Rect)}
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].Dist2 < ns[b].Dist2 })
	if k > len(ns) {
		k = len(ns)
	}
	return ns[:k]
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	items := randItems(2000, 4)
	tr := buildPacked(t, items, 16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		x, y := rng.Float64(), rng.Float64()
		k := 1 + rng.Intn(20)
		got, _ := tr.NearestNeighbors(x, y, k)
		want := bruteKNN(items, x, y, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		for j := range got {
			// Distances must match exactly in order (ties may permute ids).
			if got[j].Dist2 != want[j].Dist2 {
				t.Fatalf("k=%d result %d: dist %g, want %g", k, j, got[j].Dist2, want[j].Dist2)
			}
		}
		// Ascending order.
		for j := 1; j < len(got); j++ {
			if got[j].Dist2 < got[j-1].Dist2 {
				t.Fatalf("results not sorted at %d", j)
			}
		}
	}
}

func TestNearestNeighborsInsidePointZeroDist(t *testing.T) {
	items := randItems(300, 6)
	tr := buildPacked(t, items, 8)
	it := items[42]
	cx, cy := it.Rect.Center()
	got, _ := tr.NearestNeighbors(cx, cy, 1)
	if len(got) != 1 || got[0].Dist2 != 0 {
		t.Fatalf("nearest to an inside point should be distance 0: %+v", got)
	}
}

func TestNearestNeighborsKLargerThanN(t *testing.T) {
	items := randItems(10, 7)
	tr := buildPacked(t, items, 4)
	got, _ := tr.NearestNeighbors(0.5, 0.5, 100)
	if len(got) != 10 {
		t.Fatalf("k>n should return all: %d", len(got))
	}
}

func TestNearestNeighborsEmptyAndZeroK(t *testing.T) {
	disk := newTestTree(t, Config{Fanout: 4})
	if got, _ := disk.NearestNeighbors(0, 0, 5); got != nil {
		t.Errorf("empty tree kNN = %v", got)
	}
	items := randItems(10, 8)
	tr := buildPacked(t, items, 4)
	if got, _ := tr.NearestNeighbors(0, 0, 0); got != nil {
		t.Errorf("k=0 kNN = %v", got)
	}
}

func TestNearestNeighborsPrunes(t *testing.T) {
	// Best-first search on a spatially packed tree should touch far fewer
	// nodes than the whole tree for small k. (buildPacked packs in slice
	// order, so sort by a serpentine grid order first for locality.)
	items := randItems(20000, 9)
	sort.Slice(items, func(i, j int) bool {
		xi, yi := items[i].Rect.Center()
		xj, yj := items[j].Rect.Center()
		ri, rj := int(yi*40), int(yj*40)
		if ri != rj {
			return ri < rj
		}
		if ri%2 == 1 {
			xi, xj = -xi, -xj
		}
		return xi < xj
	})
	tr := buildPacked(t, items, 16)
	_, st := tr.NearestNeighbors(0.5, 0.5, 5)
	if st.NodesVisited > tr.Nodes()/10 {
		t.Errorf("kNN visited %d of %d nodes — no pruning?", st.NodesVisited, tr.Nodes())
	}
}

func TestPointRectDist2(t *testing.T) {
	r := geom.NewRect(1, 1, 3, 3)
	cases := []struct {
		x, y, want float64
	}{
		{2, 2, 0}, // inside
		{1, 1, 0}, // corner
		{0, 2, 1}, // left
		{2, 5, 4}, // above
		{0, 0, 2}, // diagonal
		{4, 4, 2}, // opposite diagonal
		{5, 2, 4}, // right
	}
	for _, c := range cases {
		if got := pointRectDist2(c.x, c.y, r); got != c.want {
			t.Errorf("dist2(%g,%g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}
