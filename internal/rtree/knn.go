package rtree

import (
	"sync"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// This file implements the other classic R-tree queries the paper alludes
// to ("many types of queries can be answered efficiently using an
// R-tree"): point stabbing, containment, and best-first k-nearest-neighbor
// search (Hjaltason & Samet's incremental algorithm), all with the same
// block-level accounting as window queries.

// PointQuery reports every stored rectangle containing the point (x, y).
func (t *Tree) PointQuery(x, y float64, fn func(geom.Item) bool) QueryStats {
	return t.Query(geom.PointRect(x, y), fn)
}

// ContainmentQuery reports every stored rectangle fully contained in q.
// Traversal prunes on intersection (a containing leaf entry must intersect
// q) and filters on containment at the leaves. Like Query, it walks
// zero-copy views with an explicit preorder stack; fn must not mutate the
// tree. It is the no-options containment form of RunWindow.
func (t *Tree) ContainmentQuery(q geom.Rect, fn func(geom.Item) bool) QueryStats {
	st, _ := t.RunWindow(q, true, fn, RunOptions{})
	return st
}

// Neighbor is one k-nearest-neighbor result with its squared distance
// from the query point to the rectangle (0 when the point is inside).
type Neighbor struct {
	Item  geom.Item
	Dist2 float64
}

// knnHeaps pools best-first search frontiers across NearestNeighbors calls
// — per-goroutine scratch, like the traversal stacks, so concurrent k-NN
// queries never share a heap. Package-level because the heaps carry no
// per-tree state.
var knnHeaps = sync.Pool{New: func() interface{} { h := make(distHeap, 0, 64); return &h }}

// NearestNeighbors returns the k stored rectangles closest to (x, y) in
// ascending distance order. It is the no-options form of RunNearest; see
// query.go for the best-first search and deterministic tie-breaking
// guarantees.
func (t *Tree) NearestNeighbors(x, y float64, k int) ([]Neighbor, QueryStats) {
	out, st, _ := t.RunNearest(x, y, k, RunOptions{})
	return out, st
}

// pointRectDist2 returns the squared Euclidean distance from a point to
// the nearest point of r (0 if inside).
func pointRectDist2(x, y float64, r geom.Rect) float64 {
	var dx, dy float64
	switch {
	case x < r.MinX:
		dx = r.MinX - x
	case x > r.MaxX:
		dx = x - r.MaxX
	}
	switch {
	case y < r.MinY:
		dy = r.MinY - y
	case y > r.MaxY:
		dy = y - r.MaxY
	}
	return dx*dx + dy*dy
}

type distEntry struct {
	dist2  float64
	page   storage.PageID
	isNode bool
	item   geom.Item
}

type distHeap []distEntry

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].dist2 != h[j].dist2 {
		return h[i].dist2 < h[j].dist2
	}
	// Pop items before nodes at equal distance so results surface eagerly;
	// among equal-distance items, pop ascending IDs so the emitted order is
	// deterministic regardless of tree shape.
	if h[i].isNode != h[j].isNode {
		return !h[i].isNode
	}
	if !h[i].isNode {
		return h[i].item.ID < h[j].item.ID
	}
	return false
}
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
