package rtree

import (
	"container/heap"
	"math"
	"sort"
	"sync"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// This file implements the other classic R-tree queries the paper alludes
// to ("many types of queries can be answered efficiently using an
// R-tree"): point stabbing, containment, and best-first k-nearest-neighbor
// search (Hjaltason & Samet's incremental algorithm), all with the same
// block-level accounting as window queries.

// PointQuery reports every stored rectangle containing the point (x, y).
func (t *Tree) PointQuery(x, y float64, fn func(geom.Item) bool) QueryStats {
	return t.Query(geom.PointRect(x, y), fn)
}

// ContainmentQuery reports every stored rectangle fully contained in q.
// Traversal prunes on intersection (a containing leaf entry must intersect
// q) and filters on containment at the leaves. Like Query, it walks
// zero-copy views with an explicit preorder stack; fn must not mutate the
// tree.
func (t *Tree) ContainmentQuery(q geom.Rect, fn func(geom.Item) bool) QueryStats {
	var st QueryStats
	sp := t.grabStack()
	stack := append(*sp, t.root)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := t.readView(id)
		st.NodesVisited++
		if v.isLeaf() {
			st.LeavesVisited++
			for i, cnt := 0, v.count(); i < cnt; i++ {
				r := v.rectAt(i)
				if q.Contains(r) {
					st.Results++
					if fn != nil && !fn(geom.Item{Rect: r, ID: v.refAt(i)}) {
						t.releaseStack(sp, stack)
						return st
					}
				}
			}
			continue
		}
		st.InternalVisited++
		if v.comp {
			qq := v.qz.CoverQuery(q)
			for i := v.count() - 1; i >= 0; i-- {
				if v.qrectAt(i).Intersects(qq) {
					stack = append(stack, storage.PageID(v.refAt(i)))
				}
			}
			continue
		}
		for i := v.count() - 1; i >= 0; i-- {
			if q.Intersects(v.rectAt(i)) {
				stack = append(stack, storage.PageID(v.refAt(i)))
			}
		}
	}
	t.releaseStack(sp, stack)
	return st
}

// Neighbor is one k-nearest-neighbor result with its squared distance
// from the query point to the rectangle (0 when the point is inside).
type Neighbor struct {
	Item  geom.Item
	Dist2 float64
}

// knnHeaps pools best-first search frontiers across NearestNeighbors calls
// — per-goroutine scratch, like the traversal stacks, so concurrent k-NN
// queries never share a heap. Package-level because the heaps carry no
// per-tree state.
var knnHeaps = sync.Pool{New: func() interface{} { h := make(distHeap, 0, 64); return &h }}

// NearestNeighbors returns the k stored rectangles closest to (x, y) in
// ascending distance order, using best-first search: a global priority
// queue over node bounding-box distances guarantees no node is read unless
// it could contain one of the k answers.
//
// Ties at the k-th distance are resolved deterministically by ascending
// item ID, so the result set is a pure function of the stored items — in
// particular it is identical whichever page layout (and hence tree shape)
// the items were loaded into. Compressed internal pages contribute
// admissible lower-bound distances (their entries are conservative covers
// of the true child MBRs), which preserves best-first correctness.
func (t *Tree) NearestNeighbors(x, y float64, k int) ([]Neighbor, QueryStats) {
	var st QueryStats
	if k <= 0 || t.nItems == 0 {
		return nil, st
	}
	pq := knnHeaps.Get().(*distHeap)
	defer func() { *pq = (*pq)[:0]; knnHeaps.Put(pq) }()
	*pq = (*pq)[:0]
	heap.Push(pq, distEntry{dist2: 0, page: t.root, isNode: true})
	out := make([]Neighbor, 0, k)
	// Once k results are held, keep draining entries at exactly the k-th
	// distance so every boundary candidate surfaces; ties collects them.
	kth := math.Inf(1)
	var ties []Neighbor
	for pq.Len() > 0 {
		if len(out) == k && (*pq)[0].dist2 > kth {
			break
		}
		e := heap.Pop(pq).(distEntry)
		if !e.isNode {
			if len(out) < k {
				out = append(out, Neighbor{Item: e.item, Dist2: e.dist2})
				if len(out) == k {
					kth = out[k-1].Dist2
				}
			} else if e.dist2 == kth {
				ties = append(ties, Neighbor{Item: e.item, Dist2: e.dist2})
			}
			continue
		}
		v := t.readView(e.page)
		st.NodesVisited++
		if v.isLeaf() {
			st.LeavesVisited++
			for i, cnt := 0, v.count(); i < cnt; i++ {
				r := v.rectAt(i)
				heap.Push(pq, distEntry{
					dist2: pointRectDist2(x, y, r),
					item:  geom.Item{Rect: r, ID: v.refAt(i)},
				})
			}
		} else {
			st.InternalVisited++
			for i, cnt := 0, v.count(); i < cnt; i++ {
				heap.Push(pq, distEntry{
					dist2:  pointRectDist2(x, y, v.rectAt(i)),
					page:   storage.PageID(v.refAt(i)),
					isNode: true,
				})
			}
		}
	}
	if len(ties) > 0 {
		// Re-select the boundary: among every item at the k-th distance,
		// keep the smallest IDs.
		i := len(out)
		for i > 0 && out[i-1].Dist2 == kth {
			i--
		}
		group := make([]Neighbor, 0, len(out)-i+len(ties))
		group = append(group, out[i:]...)
		group = append(group, ties...)
		sort.Slice(group, func(a, b int) bool { return group[a].Item.ID < group[b].Item.ID })
		out = append(out[:i], group[:k-i]...)
	}
	// Canonical order: ascending distance, ties by ID. Equal-distance items
	// can surface in tree-shape-dependent order (one may hide in a
	// not-yet-expanded equal-distance node while another pops), so the sort
	// — not discovery order — defines the result sequence.
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist2 != out[b].Dist2 {
			return out[a].Dist2 < out[b].Dist2
		}
		return out[a].Item.ID < out[b].Item.ID
	})
	return out, st
}

// pointRectDist2 returns the squared Euclidean distance from a point to
// the nearest point of r (0 if inside).
func pointRectDist2(x, y float64, r geom.Rect) float64 {
	var dx, dy float64
	switch {
	case x < r.MinX:
		dx = r.MinX - x
	case x > r.MaxX:
		dx = x - r.MaxX
	}
	switch {
	case y < r.MinY:
		dy = r.MinY - y
	case y > r.MaxY:
		dy = y - r.MaxY
	}
	return dx*dx + dy*dy
}

type distEntry struct {
	dist2  float64
	page   storage.PageID
	isNode bool
	item   geom.Item
}

type distHeap []distEntry

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].dist2 != h[j].dist2 {
		return h[i].dist2 < h[j].dist2
	}
	// Pop items before nodes at equal distance so results surface eagerly;
	// among equal-distance items, pop ascending IDs so the emitted order is
	// deterministic regardless of tree shape.
	if h[i].isNode != h[j].isNode {
		return !h[i].isNode
	}
	if !h[i].isNode {
		return h[i].item.ID < h[j].item.ID
	}
	return false
}
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
