package rtree

import (
	"container/heap"
	"sync"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// This file implements the other classic R-tree queries the paper alludes
// to ("many types of queries can be answered efficiently using an
// R-tree"): point stabbing, containment, and best-first k-nearest-neighbor
// search (Hjaltason & Samet's incremental algorithm), all with the same
// block-level accounting as window queries.

// PointQuery reports every stored rectangle containing the point (x, y).
func (t *Tree) PointQuery(x, y float64, fn func(geom.Item) bool) QueryStats {
	return t.Query(geom.PointRect(x, y), fn)
}

// ContainmentQuery reports every stored rectangle fully contained in q.
// Traversal prunes on intersection (a containing leaf entry must intersect
// q) and filters on containment at the leaves. Like Query, it walks
// zero-copy views with an explicit preorder stack; fn must not mutate the
// tree.
func (t *Tree) ContainmentQuery(q geom.Rect, fn func(geom.Item) bool) QueryStats {
	var st QueryStats
	sp := t.grabStack()
	stack := append(*sp, t.root)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := t.readView(id)
		st.NodesVisited++
		if v.isLeaf() {
			st.LeavesVisited++
			for i, cnt := 0, v.count(); i < cnt; i++ {
				r := v.rectAt(i)
				if q.Contains(r) {
					st.Results++
					if fn != nil && !fn(geom.Item{Rect: r, ID: v.refAt(i)}) {
						t.releaseStack(sp, stack)
						return st
					}
				}
			}
			continue
		}
		st.InternalVisited++
		for i := v.count() - 1; i >= 0; i-- {
			if q.Intersects(v.rectAt(i)) {
				stack = append(stack, storage.PageID(v.refAt(i)))
			}
		}
	}
	t.releaseStack(sp, stack)
	return st
}

// Neighbor is one k-nearest-neighbor result with its squared distance
// from the query point to the rectangle (0 when the point is inside).
type Neighbor struct {
	Item  geom.Item
	Dist2 float64
}

// knnHeaps pools best-first search frontiers across NearestNeighbors calls
// — per-goroutine scratch, like the traversal stacks, so concurrent k-NN
// queries never share a heap. Package-level because the heaps carry no
// per-tree state.
var knnHeaps = sync.Pool{New: func() interface{} { h := make(distHeap, 0, 64); return &h }}

// NearestNeighbors returns the k stored rectangles closest to (x, y) in
// ascending distance order, using best-first search: a global priority
// queue over node bounding-box distances guarantees no node is read unless
// it could contain one of the k answers.
func (t *Tree) NearestNeighbors(x, y float64, k int) ([]Neighbor, QueryStats) {
	var st QueryStats
	if k <= 0 || t.nItems == 0 {
		return nil, st
	}
	pq := knnHeaps.Get().(*distHeap)
	defer func() { *pq = (*pq)[:0]; knnHeaps.Put(pq) }()
	*pq = (*pq)[:0]
	heap.Push(pq, distEntry{dist2: 0, page: t.root, isNode: true})
	out := make([]Neighbor, 0, k)
	for pq.Len() > 0 {
		e := heap.Pop(pq).(distEntry)
		if !e.isNode {
			out = append(out, Neighbor{Item: e.item, Dist2: e.dist2})
			if len(out) == k {
				return out, st
			}
			continue
		}
		v := t.readView(e.page)
		st.NodesVisited++
		if v.isLeaf() {
			st.LeavesVisited++
			for i, cnt := 0, v.count(); i < cnt; i++ {
				r := v.rectAt(i)
				heap.Push(pq, distEntry{
					dist2: pointRectDist2(x, y, r),
					item:  geom.Item{Rect: r, ID: v.refAt(i)},
				})
			}
		} else {
			st.InternalVisited++
			for i, cnt := 0, v.count(); i < cnt; i++ {
				heap.Push(pq, distEntry{
					dist2:  pointRectDist2(x, y, v.rectAt(i)),
					page:   storage.PageID(v.refAt(i)),
					isNode: true,
				})
			}
		}
	}
	return out, st
}

// pointRectDist2 returns the squared Euclidean distance from a point to
// the nearest point of r (0 if inside).
func pointRectDist2(x, y float64, r geom.Rect) float64 {
	var dx, dy float64
	switch {
	case x < r.MinX:
		dx = r.MinX - x
	case x > r.MaxX:
		dx = x - r.MaxX
	}
	switch {
	case y < r.MinY:
		dy = r.MinY - y
	case y > r.MaxY:
		dy = y - r.MaxY
	}
	return dx*dx + dy*dy
}

type distEntry struct {
	dist2  float64
	page   storage.PageID
	isNode bool
	item   geom.Item
}

type distHeap []distEntry

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].dist2 != h[j].dist2 {
		return h[i].dist2 < h[j].dist2
	}
	// Pop items before nodes at equal distance so results surface eagerly.
	return !h[i].isNode && h[j].isNode
}
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
