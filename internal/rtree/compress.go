package rtree

import (
	"encoding/binary"
	"math"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// This file implements the compressed page format (LayoutCompressed): the
// header grows by one exact base MBR and every entry shrinks from 36 to 12
// bytes — four 16-bit fixed-point corner offsets from the base plus the
// 4-byte reference — tripling fanout (113 -> 338 at 4 KB).
//
// Correctness contract:
//
//   - Internal entries are rounded OUTWARD (geom.Quantizer.Cover), so a
//     stored rectangle always contains the child's true MBR. Traversal over
//     covers can only visit extra subtrees, never skip one, and k-NN node
//     distances computed on covers are admissible lower bounds.
//   - Leaf entries are stored compressed only when every coordinate
//     round-trips bit-exactly (geom.Quantizer.Lossless); otherwise the
//     leaf page falls back to the raw format. Leaf coordinates are
//     therefore exact under both layouts and query/k-NN results never
//     change.
//
// Pages carry the format in header flag bit 0, so both formats interoperate
// freely inside one tree (e.g. raw fallback leaves under compressed
// internal levels).

// flagCompressed marks a compressed page in header byte 1 (raw pages,
// including all pre-existing ones, store 0 there).
const flagCompressed byte = 1

// pageIsCompressed inspects a page header.
func pageIsCompressed(data []byte) bool { return data[1]&flagCompressed != 0 }

// encodeCompressedHeader stamps kind, the compressed flag, the count and
// the base MBR.
func encodeCompressedHeader(buf []byte, kind byte, cnt int, base geom.Rect) {
	buf[0] = kind
	buf[1] = flagCompressed
	buf[2] = byte(cnt)
	buf[3] = byte(cnt >> 8)
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(base.MinX))
	binary.LittleEndian.PutUint64(buf[12:], math.Float64bits(base.MinY))
	binary.LittleEndian.PutUint64(buf[20:], math.Float64bits(base.MaxX))
	binary.LittleEndian.PutUint64(buf[28:], math.Float64bits(base.MaxY))
}

// decodeBase reads the base MBR of a compressed page header.
func decodeBase(data []byte) geom.Rect {
	return geom.Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(data[4:])),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(data[12:])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(data[20:])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(data[28:])),
	}
}

// compressedFits reports whether cnt compressed entries fit the buffer.
func compressedFits(buf []byte, cnt int) bool {
	return compHeaderSize+cnt*compEntrySize <= len(buf)
}

// encodeCompressedLeaf writes items as a compressed leaf page if every
// coordinate quantizes losslessly, returning the encoded prefix, the exact
// leaf MBR and ok=true; ok=false (with buf untouched beyond scratch) means
// the caller must fall back to the raw format.
func encodeCompressedLeaf(buf []byte, items []geom.Item) ([]byte, geom.Rect, bool) {
	if len(items) == 0 || !compressedFits(buf, len(items)) {
		return nil, geom.Rect{}, false
	}
	mbr := geom.ItemsMBR(items)
	z := geom.NewQuantizer(mbr)
	if !z.Valid() {
		return nil, geom.Rect{}, false
	}
	off := compHeaderSize
	for _, it := range items {
		qr, ok := z.Lossless(it.Rect)
		if !ok {
			return nil, geom.Rect{}, false
		}
		storage.EncodeQEntry(buf[off:], qr, it.ID)
		off += compEntrySize
	}
	encodeCompressedHeader(buf, kindLeaf, len(items), mbr)
	return buf[:off], mbr, true
}

// encodeCompressedInternal writes children as a compressed internal page,
// rounding every entry outward. It fails (ok=false) only when the base MBR
// is unquantizable (non-finite coordinates) or the buffer is too small.
// The returned MBR is the canonical page MBR: the union of the DECODED
// covers, which is what any reader of the page will reconstruct — parents
// must store this, not the pre-quantization union.
func encodeCompressedInternal(buf []byte, children []ChildEntry) ([]byte, geom.Rect, bool) {
	if len(children) == 0 || !compressedFits(buf, len(children)) {
		return nil, geom.Rect{}, false
	}
	base := geom.EmptyRect()
	for _, c := range children {
		base = base.Union(c.Rect)
	}
	z := geom.NewQuantizer(base)
	if !z.Valid() {
		return nil, geom.Rect{}, false
	}
	mbr := geom.EmptyRect()
	off := compHeaderSize
	for _, c := range children {
		qr := z.Cover(c.Rect)
		storage.EncodeQEntry(buf[off:], qr, uint32(c.Page))
		mbr = mbr.Union(z.Dequantize(qr))
		off += compEntrySize
	}
	encodeCompressedHeader(buf, kindInternal, len(children), base)
	return buf[:off], mbr, true
}

// encodeCompressedInternalNode is encodeCompressedInternal over a
// materialized node. On success it canonicalizes n.rects in place to the
// decoded covers, so the node memoized in the pager's decoded cache is
// byte-equivalent to what decodeNode would parse from the page.
func encodeCompressedInternalNode(buf []byte, n *node) ([]byte, bool) {
	if n.count() == 0 || !compressedFits(buf, n.count()) {
		return nil, false
	}
	base := geom.EmptyRect()
	for _, r := range n.rects {
		base = base.Union(r)
	}
	z := geom.NewQuantizer(base)
	if !z.Valid() {
		return nil, false
	}
	off := compHeaderSize
	for i := range n.rects {
		qr := z.Cover(n.rects[i])
		storage.EncodeQEntry(buf[off:], qr, n.refs[i])
		n.rects[i] = z.Dequantize(qr)
		off += compEntrySize
	}
	encodeCompressedHeader(buf, kindInternal, n.count(), base)
	return buf[:off], true
}

// leafQuantizesLossless reports whether a leaf node's rectangles can all
// be stored compressed without changing a single bit. The mutation paths
// use it to pick the leaf's effective capacity before deciding to split.
func leafQuantizesLossless(n *node) bool {
	if n.count() == 0 {
		return false
	}
	mbr := geom.EmptyRect()
	for _, r := range n.rects {
		mbr = mbr.Union(r)
	}
	z := geom.NewQuantizer(mbr)
	if !z.Valid() {
		return false
	}
	for _, r := range n.rects {
		if _, ok := z.Lossless(r); !ok {
			return false
		}
	}
	return true
}

// internalQuantizes reports whether an internal node can be stored
// compressed: its entries' union must be finite.
func internalQuantizes(n *node) bool {
	if n.count() == 0 {
		return false
	}
	base := geom.EmptyRect()
	for _, r := range n.rects {
		base = base.Union(r)
	}
	return geom.NewQuantizer(base).Valid()
}
