package rtree

import (
	"math/rand"
	"testing"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

func insertAll(tr *Tree, items []geom.Item) {
	for _, it := range items {
		tr.Insert(it)
	}
}

func TestInsertSmall(t *testing.T) {
	tr := newTestTree(t, Config{Fanout: 4})
	items := randItems(10, 1)
	insertAll(tr, items)
	if tr.Len() != 10 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := CheckQueryAgainstBruteForce(tr, items, geom.NewRect(0, 0, 2, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGrowsHeight(t *testing.T) {
	tr := newTestTree(t, Config{Fanout: 4})
	items := randItems(100, 2)
	insertAll(tr, items)
	if tr.Height() < 3 {
		t.Errorf("height = %d after 100 inserts at fanout 4", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertQueryCorrectnessBothSplits(t *testing.T) {
	for _, split := range []SplitKind{QuadraticSplit, LinearSplit} {
		tr := newTestTree(t, Config{Fanout: 8, Split: split})
		items := randItems(1500, 3)
		insertAll(tr, items)
		if err := tr.Validate(); err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 40; i++ {
			q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
			if err := CheckQueryAgainstBruteForce(tr, items, q); err != nil {
				t.Fatalf("split %d: %v", split, err)
			}
		}
	}
}

func TestInsertDuplicateRects(t *testing.T) {
	tr := newTestTree(t, Config{Fanout: 4})
	r := geom.NewRect(0.5, 0.5, 0.6, 0.6)
	for i := 0; i < 50; i++ {
		tr.Insert(geom.Item{Rect: r, ID: uint32(i)})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	got := tr.QueryCollect(r)
	if len(got) != 50 {
		t.Errorf("got %d duplicates back", len(got))
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := newTestTree(t, Config{Fanout: 4})
	items := randItems(200, 5)
	insertAll(tr, items)
	for i, it := range items {
		if !tr.Delete(it) {
			t.Fatalf("delete %d failed", i)
		}
		if tr.Len() != len(items)-i-1 {
			t.Fatalf("len = %d after %d deletes", tr.Len(), i+1)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if tr.Height() != 1 || tr.Len() != 0 {
		t.Errorf("emptied tree: %v", tr)
	}
}

func TestDeleteMissingReturnsFalse(t *testing.T) {
	tr := newTestTree(t, Config{Fanout: 4})
	items := randItems(50, 6)
	insertAll(tr, items)
	if tr.Delete(geom.Item{Rect: geom.NewRect(5, 5, 6, 6), ID: 9999}) {
		t.Error("deleting absent item should return false")
	}
	// Same rect, wrong id.
	if tr.Delete(geom.Item{Rect: items[0].Rect, ID: 9999}) {
		t.Error("deleting wrong id should return false")
	}
	if tr.Len() != 50 {
		t.Errorf("len changed to %d", tr.Len())
	}
}

func TestDeleteThenQuery(t *testing.T) {
	tr := newTestTree(t, Config{Fanout: 8})
	items := randItems(800, 7)
	insertAll(tr, items)
	// Delete every third item.
	var remaining []geom.Item
	for i, it := range items {
		if i%3 == 0 {
			if !tr.Delete(it) {
				t.Fatalf("delete %d failed", i)
			}
		} else {
			remaining = append(remaining, it)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 30; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		if err := CheckQueryAgainstBruteForce(tr, remaining, q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMixedWorkload(t *testing.T) {
	tr := newTestTree(t, Config{Fanout: 6})
	rng := rand.New(rand.NewSource(9))
	live := make(map[uint32]geom.Item)
	nextID := uint32(0)
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			x, y := rng.Float64(), rng.Float64()
			it := geom.Item{Rect: geom.NewRect(x, y, x+rng.Float64()*0.1, y+rng.Float64()*0.1), ID: nextID}
			nextID++
			tr.Insert(it)
			live[it.ID] = it
		} else {
			// Delete a random live item.
			var victim geom.Item
			for _, it := range live {
				victim = it
				break
			}
			if !tr.Delete(victim) {
				t.Fatalf("step %d: delete failed", step)
			}
			delete(live, victim.ID)
		}
		if step%500 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("len = %d, want %d", tr.Len(), len(live))
	}
	universe := make([]geom.Item, 0, len(live))
	for _, it := range live {
		universe = append(universe, it)
	}
	for i := 0; i < 20; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		if err := CheckQueryAgainstBruteForce(tr, universe, q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCondenseReinsertsOrphans(t *testing.T) {
	// Build a tall skinny tree, then delete a cluster to force node
	// dissolution with subtree reinsertion.
	tr := newTestTree(t, Config{Fanout: 4, MinFill: 2})
	var items []geom.Item
	for i := 0; i < 64; i++ {
		x := float64(i)
		items = append(items, geom.Item{Rect: geom.NewRect(x, 0, x+0.5, 0.5), ID: uint32(i)})
	}
	insertAll(tr, items)
	for i := 0; i < 64; i += 2 {
		if !tr.Delete(items[i]) {
			t.Fatalf("delete %d failed", i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if tr.Len() != 32 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 1; i < 64; i += 2 {
		got := tr.QueryCollect(items[i].Rect)
		found := false
		for _, g := range got {
			if g.ID == items[i].ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("item %d lost after condense", i)
		}
	}
}

func TestInsertIntoBulkLoadedTree(t *testing.T) {
	items := randItems(500, 10)
	tr := buildPacked(t, items, 8)
	extra := randItems(200, 11)
	for i := range extra {
		extra[i].ID += 10000
		tr.Insert(extra[i])
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	all := append(append([]geom.Item{}, items...), extra...)
	if err := CheckQueryAgainstBruteForce(tr, all, geom.NewRect(0.2, 0.2, 0.7, 0.7)); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteFreesPages(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	tr := New(storage.NewPager(disk, -1), Config{Fanout: 4})
	items := randItems(300, 12)
	insertAll(tr, items)
	peak := tr.Nodes()
	for _, it := range items {
		tr.Delete(it)
	}
	if tr.Nodes() != 1 {
		t.Errorf("nodes after emptying = %d (peak %d)", tr.Nodes(), peak)
	}
}

func TestLinearSplitDegenerateAllEqual(t *testing.T) {
	tr := newTestTree(t, Config{Fanout: 4, Split: LinearSplit})
	r := geom.NewRect(1, 1, 1, 1)
	for i := 0; i < 20; i++ {
		tr.Insert(geom.Item{Rect: r, ID: uint32(i)})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.QueryCollect(r); len(got) != 20 {
		t.Errorf("got %d of 20 equal points", len(got))
	}
}

func TestInsertIOBounded(t *testing.T) {
	// A single insert into a bulk tree should touch O(height) nodes, not
	// O(n). Allow generous slack for splits.
	items := randItems(5000, 13)
	tr := buildPacked(t, items, 16)
	disk := tr.Pager().Disk()
	disk.ResetStats()
	tr.Insert(geom.Item{Rect: geom.NewRect(0.5, 0.5, 0.51, 0.51), ID: 99999})
	if total := disk.Stats().Total(); total > uint64(6*tr.Height()+10) {
		t.Errorf("insert cost %d I/Os for height-%d tree", total, tr.Height())
	}
}
