package rtree

import (
	"fmt"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Config tunes a tree. The zero value selects the paper's defaults.
type Config struct {
	// Fanout caps entries per node; 0 means the block-size maximum (113 for
	// 4 KB blocks).
	Fanout int
	// MinFill is the minimum entries in a non-root node before deletion
	// triggers condensing; 0 means Fanout*2/5 (Guttman's m <= M/2 regime).
	MinFill int
	// Split selects the overflow split heuristic for dynamic inserts.
	Split SplitKind
}

// SplitKind selects Guttman's node-split heuristic.
type SplitKind int

const (
	// QuadraticSplit is Guttman's quadratic-cost split (the common default).
	QuadraticSplit SplitKind = iota
	// LinearSplit is Guttman's linear-cost split.
	LinearSplit
	// RStarSplit enables the full R*-tree insertion heuristics of
	// Beckmann et al. (reference [6] of the paper): overlap-minimizing
	// ChooseSubtree, forced reinsertion, and the margin/overlap split.
	RStarSplit
)

// Tree is a paged R-tree. All node accesses go through the pager so that
// block I/O is counted on the underlying simulated disk.
type Tree struct {
	pager  *storage.Pager
	cfg    Config
	root   storage.PageID
	height int // number of levels; 1 = root is a leaf
	nItems int
	nNodes int
	buf    []byte // scratch block for serialization
}

// New creates an empty tree (a single empty leaf) on the pager.
func New(pager *storage.Pager, cfg Config) *Tree {
	normalizeConfig(&cfg, pager.Disk().BlockSize())
	t := &Tree{pager: pager, cfg: cfg, height: 1, buf: make([]byte, pager.Disk().BlockSize())}
	root := &node{kind: kindLeaf}
	t.root = t.allocNode(root)
	return t
}

func normalizeConfig(cfg *Config, blockSize int) {
	max := MaxFanout(blockSize)
	if cfg.Fanout <= 0 || cfg.Fanout > max {
		cfg.Fanout = max
	}
	if cfg.Fanout < 2 {
		panic("rtree: fanout must be at least 2")
	}
	if cfg.MinFill <= 0 {
		cfg.MinFill = cfg.Fanout * 2 / 5
	}
	if cfg.MinFill > cfg.Fanout/2 {
		cfg.MinFill = cfg.Fanout / 2
	}
	if cfg.MinFill < 1 {
		cfg.MinFill = 1
	}
}

// Pager exposes the tree's pager (read-only use by callers measuring I/O).
func (t *Tree) Pager() *storage.Pager { return t.pager }

// Config returns the tree's effective configuration.
func (t *Tree) Config() Config { return t.cfg }

// Root returns the root page id.
func (t *Tree) Root() storage.PageID { return t.root }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.nItems }

// Nodes returns the number of pages the tree occupies.
func (t *Tree) Nodes() int { return t.nNodes }

func (t *Tree) readNode(id storage.PageID) *node {
	return decodeNode(t.pager.Read(id))
}

func (t *Tree) writeNode(id storage.PageID, n *node) {
	t.pager.Write(id, encodeNode(t.buf, n))
}

func (t *Tree) allocNode(n *node) storage.PageID {
	id := t.pager.Disk().Alloc()
	t.writeNode(id, n)
	t.nNodes++
	return id
}

func (t *Tree) freeNode(id storage.PageID) {
	t.pager.Invalidate(id)
	t.pager.Disk().Free(id)
	t.nNodes--
}

// QueryStats reports the work done by one window query.
type QueryStats struct {
	NodesVisited    int // total nodes touched, including the root
	LeavesVisited   int
	InternalVisited int
	Results         int
}

// Query reports every stored item intersecting q to fn, in unspecified
// order. fn returning false stops the query early. The returned stats count
// node visits regardless of cache state; block-level I/O is tracked by the
// disk underneath the pager.
func (t *Tree) Query(q geom.Rect, fn func(geom.Item) bool) QueryStats {
	var st QueryStats
	t.query(t.root, q, fn, &st)
	return st
}

// query returns false if fn aborted the traversal.
func (t *Tree) query(id storage.PageID, q geom.Rect, fn func(geom.Item) bool, st *QueryStats) bool {
	n := t.readNode(id)
	st.NodesVisited++
	if n.isLeaf() {
		st.LeavesVisited++
		for i := range n.rects {
			if q.Intersects(n.rects[i]) {
				st.Results++
				if fn != nil && !fn(geom.Item{Rect: n.rects[i], ID: n.refs[i]}) {
					return false
				}
			}
		}
		return true
	}
	st.InternalVisited++
	for i := range n.rects {
		if q.Intersects(n.rects[i]) {
			if !t.query(storage.PageID(n.refs[i]), q, fn, st) {
				return false
			}
		}
	}
	return true
}

// QueryCollect returns all items intersecting q.
func (t *Tree) QueryCollect(q geom.Rect) []geom.Item {
	var out []geom.Item
	t.Query(q, func(it geom.Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// QueryCount returns only the query statistics, discarding results.
func (t *Tree) QueryCount(q geom.Rect) QueryStats {
	return t.Query(q, nil)
}

// Walk visits every node top-down, calling fn with the node's page, level
// (0 = leaf level) and entries. Internal entries carry child page ids in
// Item.ID. Walk is intended for inspection, validation and pinning.
func (t *Tree) Walk(fn func(page storage.PageID, level int, isLeaf bool, entries []geom.Item)) {
	t.walk(t.root, t.height-1, fn)
}

func (t *Tree) walk(id storage.PageID, level int, fn func(storage.PageID, int, bool, []geom.Item)) {
	n := t.readNode(id)
	fn(id, level, n.isLeaf(), n.items())
	if !n.isLeaf() {
		for _, ref := range n.refs {
			t.walk(storage.PageID(ref), level-1, fn)
		}
	}
}

// Items returns every stored item by scanning the leaves.
func (t *Tree) Items() []geom.Item {
	out := make([]geom.Item, 0, t.nItems)
	t.Walk(func(_ storage.PageID, _ int, isLeaf bool, entries []geom.Item) {
		if isLeaf {
			out = append(out, entries...)
		}
	})
	return out
}

// PinInternal pins every internal node in the pager, reproducing the
// paper's query setup where all internal nodes are cached (<= 6 MB) so a
// query's disk reads are exactly the leaf blocks fetched. It returns the
// number of pages pinned.
func (t *Tree) PinInternal() int {
	pinned := 0
	t.Walk(func(page storage.PageID, _ int, isLeaf bool, _ []geom.Item) {
		if !isLeaf {
			t.pager.Pin(page)
			pinned++
		}
	})
	return pinned
}

// MBR returns the bounding box of the whole tree (invalid rect when empty).
func (t *Tree) MBR() geom.Rect {
	return t.readNode(t.root).mbr()
}

// Release frees every page of the tree back to the disk and invalidates
// cached copies. The tree must not be used afterwards. Callers that
// rebuild indexes (e.g. the logarithmic method) use this to reclaim space.
func (t *Tree) Release() {
	var pages []storage.PageID
	t.Walk(func(page storage.PageID, _ int, _ bool, _ []geom.Item) {
		pages = append(pages, page)
	})
	for _, p := range pages {
		t.freeNode(p)
	}
	t.root = storage.NilPage
	t.nItems = 0
}

// Utilization returns average node fill as a fraction of fanout, computed
// separately for leaves and internal nodes. A freshly bulk-loaded tree
// should report > 0.99 leaf utilization (paper §3.3).
func (t *Tree) Utilization() (leaf, internal float64) {
	var leafEntries, leafNodes, intEntries, intNodes int
	t.Walk(func(_ storage.PageID, _ int, isLeaf bool, entries []geom.Item) {
		if isLeaf {
			leafEntries += len(entries)
			leafNodes++
		} else {
			intEntries += len(entries)
			intNodes++
		}
	})
	if leafNodes > 0 {
		leaf = float64(leafEntries) / float64(leafNodes*t.cfg.Fanout)
	}
	if intNodes > 0 {
		internal = float64(intEntries) / float64(intNodes*t.cfg.Fanout)
	}
	return leaf, internal
}

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("rtree{items=%d nodes=%d height=%d fanout=%d}",
		t.nItems, t.nNodes, t.height, t.cfg.Fanout)
}
