package rtree

import (
	"fmt"
	"sync"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// Config tunes a tree. The zero value selects the paper's defaults.
type Config struct {
	// Fanout caps entries per node; 0 means the block-size maximum of the
	// layout (113 raw, 338 compressed for 4 KB blocks).
	Fanout int
	// MinFill is the minimum entries in a non-root node before deletion
	// triggers condensing; 0 means 2/5 of the effective leaf capacity
	// (Guttman's m <= M/2 regime).
	MinFill int
	// Split selects the overflow split heuristic for dynamic inserts.
	Split SplitKind
	// Layout selects the on-disk page format new pages are written as;
	// the zero value is the paper's raw layout.
	Layout Layout
}

// SplitKind selects Guttman's node-split heuristic.
type SplitKind int

const (
	// QuadraticSplit is Guttman's quadratic-cost split (the common default).
	QuadraticSplit SplitKind = iota
	// LinearSplit is Guttman's linear-cost split.
	LinearSplit
	// RStarSplit enables the full R*-tree insertion heuristics of
	// Beckmann et al. (reference [6] of the paper): overlap-minimizing
	// ChooseSubtree, forced reinsertion, and the margin/overlap split.
	RStarSplit
)

// Tree is a paged R-tree. All node accesses go through the pager so that
// block I/O is counted on the underlying simulated disk.
//
// Reads come in two flavors. The query paths (Query, PointQuery,
// ContainmentQuery, NearestNeighbors, Walk, Validate, MBR) use zero-copy
// nodeViews over the pager's cached bytes, so a cache-hit node visit
// allocates nothing. The mutation paths (Insert, Delete) materialize nodes
// and memoize them in the pager's decoded cache, kept coherent by
// write-through in writeNode and invalidation in freeNode and the pager
// itself. Both flavors call Pager.Read first, so block-I/O accounting is
// identical to an implementation that decodes eagerly.
//
// # Concurrency
//
// All read paths are safe for any number of concurrent goroutines:
// per-traversal scratch (explicit stacks, k-NN heaps) is sync.Pool-backed
// rather than tree state, and the pager underneath is lock-striped. The
// mutation paths (Insert, Delete, Release, bulk-load builders) require
// exclusive access — no reader or other writer may run concurrently with
// them. QueryBatch and SearchBatch fan a slice of queries across a bounded
// worker pool under this contract.
type Tree struct {
	pager  *storage.Pager
	cfg    Config
	root   storage.PageID
	height int // number of levels; 1 = root is a leaf
	nItems int
	nNodes int
	buf    []byte    // scratch block for serialization (mutation paths only)
	stacks sync.Pool // per-traversal scratch stacks (*[]storage.PageID)
}

// New creates an empty tree (a single empty leaf) on the pager.
func New(pager *storage.Pager, cfg Config) *Tree {
	normalizeConfig(&cfg, pager.Backend().BlockSize())
	t := &Tree{pager: pager, cfg: cfg, height: 1, buf: make([]byte, pager.Backend().BlockSize())}
	root := &node{kind: kindLeaf}
	t.root = t.allocNode(root)
	return t
}

func normalizeConfig(cfg *Config, blockSize int) {
	max := cfg.Layout.MaxFanout(blockSize)
	if cfg.Fanout <= 0 || cfg.Fanout > max {
		cfg.Fanout = max
	}
	if cfg.Fanout < 2 {
		panic("rtree: fanout must be at least 2")
	}
	// MinFill defaults derive from the GUARANTEED leaf capacity: under the
	// compressed layout a leaf that cannot quantize losslessly falls back
	// to the raw format and holds only the raw maximum, so a MinFill above
	// that would condemn valid fallback leaves to endless condensing.
	basis := cfg.Fanout
	if raw := LayoutRaw.MaxFanout(blockSize); cfg.Layout == LayoutCompressed && raw < basis {
		basis = raw
	}
	if cfg.MinFill <= 0 {
		cfg.MinFill = basis * 2 / 5
	}
	if cfg.MinFill > basis/2 {
		cfg.MinFill = basis / 2
	}
	if cfg.MinFill < 1 {
		cfg.MinFill = 1
	}
}

// Pager exposes the tree's pager (read-only use by callers measuring I/O).
func (t *Tree) Pager() *storage.Pager { return t.pager }

// Config returns the tree's effective configuration.
func (t *Tree) Config() Config { return t.cfg }

// Root returns the root page id.
func (t *Tree) Root() storage.PageID { return t.root }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.nItems }

// Nodes returns the number of pages the tree occupies.
func (t *Tree) Nodes() int { return t.nNodes }

// readView returns a zero-copy view of the page. The view borrows the
// pager's cached slice and stays valid only until the page is written.
func (t *Tree) readView(id storage.PageID) nodeView {
	return makeView(t.pager.Read(id))
}

// Layout returns the on-disk format the tree writes new pages as.
func (t *Tree) Layout() Layout { return t.cfg.Layout }

// overflows reports whether n holds more entries than a page can store:
// more than the configured fanout, or — under the compressed layout —
// more than a raw page holds while the entries cannot be stored
// compressed (a leaf that does not quantize losslessly, or an internal
// node with a non-finite union). A count within the raw capacity fits
// regardless of compressibility, so the common case skips the per-entry
// lossless scan entirely; only nodes in the (raw, fanout] band pay it,
// and encodeNode then re-quantizes what writeNode actually persists.
func (t *Tree) overflows(n *node) bool {
	if n.count() > t.cfg.Fanout {
		return true
	}
	if t.cfg.Layout != LayoutCompressed ||
		n.count() <= LayoutRaw.MaxFanout(t.pager.Backend().BlockSize()) {
		return false
	}
	if n.isLeaf() {
		return !leafQuantizesLossless(n)
	}
	return !internalQuantizes(n)
}

// readNode returns the materialized form of the page for the mutation
// paths. The pager is always Read first — preserving hit/miss and block-I/O
// accounting exactly — and the decode is skipped when the pager still holds
// the node decoded from those same bytes.
func (t *Tree) readNode(id storage.PageID) *node {
	data := t.pager.Read(id)
	if v, ok := t.pager.Decoded(id); ok {
		return v.(*node)
	}
	n := decodeNode(data)
	t.pager.StoreDecoded(id, n)
	return n
}

// writeNode persists n and re-memoizes it: the write drops the stale
// decoded entry, and storing n afterwards keeps the cache warm for the
// next read of the page.
func (t *Tree) writeNode(id storage.PageID, n *node) {
	// encodeNode canonicalizes compressed internal rects in place, so the
	// node memoized below matches the page bytes exactly.
	t.pager.Write(id, encodeNode(t.buf, n, t.cfg.Layout))
	t.pager.StoreDecoded(id, n)
}

func (t *Tree) allocNode(n *node) storage.PageID {
	id := t.pager.Backend().Alloc()
	t.writeNode(id, n)
	t.nNodes++
	return id
}

// allocPage writes pre-encoded page bytes (from encodeLeafPage /
// encodeInternalPage) without materializing a node.
func (t *Tree) allocPage(data []byte) storage.PageID {
	id := t.pager.Backend().Alloc()
	t.pager.Write(id, data)
	t.nNodes++
	return id
}

func (t *Tree) freeNode(id storage.PageID) {
	t.pager.Invalidate(id)
	t.pager.Backend().Free(id)
	t.nNodes--
}

// grabStack borrows a traversal scratch stack from the pool, so nested
// queries (issued from a visitor callback) and concurrent queries each get
// their own rather than corrupting another traversal. The pool hands back a
// pointer-to-slice (SA6002): putting the slice value itself would box its
// header, allocating on every query.
func (t *Tree) grabStack() *[]storage.PageID {
	sp, _ := t.stacks.Get().(*[]storage.PageID)
	if sp == nil {
		s := make([]storage.PageID, 0, 64)
		sp = &s
	}
	*sp = (*sp)[:0]
	return sp
}

func (t *Tree) releaseStack(sp *[]storage.PageID, s []storage.PageID) {
	*sp = s[:0]
	t.stacks.Put(sp)
}

// QueryStats reports the work done by one window query.
type QueryStats struct {
	NodesVisited    int // total nodes touched, including the root
	LeavesVisited   int
	InternalVisited int
	Results         int
}

// Query reports every stored item intersecting q to fn, in unspecified
// order. fn returning false stops the query early. The returned stats count
// node visits regardless of cache state; block-level I/O is tracked by the
// backend underneath the pager. fn must not mutate the tree: the traversal
// reads node entries in place from the page cache.
//
// Query is the no-options form of RunWindow; see query.go for the
// traversal-order, layout and accounting guarantees.
func (t *Tree) Query(q geom.Rect, fn func(geom.Item) bool) QueryStats {
	st, _ := t.RunWindow(q, false, fn, RunOptions{})
	return st
}

// QueryCollect returns all items intersecting q.
func (t *Tree) QueryCollect(q geom.Rect) []geom.Item {
	var out []geom.Item
	t.Query(q, func(it geom.Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// QueryCount returns only the query statistics, discarding results.
func (t *Tree) QueryCount(q geom.Rect) QueryStats {
	return t.Query(q, nil)
}

// Walk visits every node top-down, calling fn with the node's page, level
// (0 = leaf level) and entries. Internal entries carry child page ids in
// Item.ID. Walk is intended for inspection, validation and pinning.
func (t *Tree) Walk(fn func(page storage.PageID, level int, isLeaf bool, entries []geom.Item)) {
	type frame struct {
		page  storage.PageID
		level int
	}
	stack := []frame{{page: t.root, level: t.height - 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := t.readView(f.page)
		isLeaf := v.isLeaf()
		entries := v.items()
		// Children are pushed (reversed, for recursive preorder) before fn
		// runs so a callback that writes pages cannot skew the traversal.
		if !isLeaf {
			for i := v.count() - 1; i >= 0; i-- {
				stack = append(stack, frame{page: storage.PageID(v.refAt(i)), level: f.level - 1})
			}
		}
		fn(f.page, f.level, isLeaf, entries)
	}
}

// Items returns every stored item by scanning the leaves.
func (t *Tree) Items() []geom.Item {
	out := make([]geom.Item, 0, t.nItems)
	t.Walk(func(_ storage.PageID, _ int, isLeaf bool, entries []geom.Item) {
		if isLeaf {
			out = append(out, entries...)
		}
	})
	return out
}

// PinInternal pins every internal node in the pager, reproducing the
// paper's query setup where all internal nodes are cached (<= 6 MB) so a
// query's disk reads are exactly the leaf blocks fetched. It returns the
// number of pages pinned.
func (t *Tree) PinInternal() int {
	pinned := 0
	t.Walk(func(page storage.PageID, _ int, isLeaf bool, _ []geom.Item) {
		if !isLeaf {
			t.pager.Pin(page)
			pinned++
		}
	})
	return pinned
}

// MBR returns the bounding box of the whole tree (invalid rect when empty
// or released).
func (t *Tree) MBR() geom.Rect {
	if t.root == storage.NilPage {
		return geom.EmptyRect()
	}
	return t.readView(t.root).mbr()
}

// Release frees every page of the tree back to the disk and invalidates
// cached copies, zeroing all counters. The tree must not be queried
// afterwards (MBR remains safe and reports an empty rect). Callers that
// rebuild indexes (e.g. the logarithmic method) use this to reclaim space.
func (t *Tree) Release() {
	t.FreePages()
	t.root = storage.NilPage
	t.nItems = 0
	t.height = 0
	t.nNodes = 0
}

// FreePages frees every page of the tree back to the backend WITHOUT
// mutating the in-memory structure. This is the release path for a tree
// that lock-free readers may still be traversing through a stale
// directory snapshot (see internal/logmethod): the backend's epoch pins
// keep the freed pages byte-stable until those readers drain, and leaving
// the struct untouched keeps their root/height loads race-free. The tree
// must not be used for new work after FreePages.
func (t *Tree) FreePages() {
	var pages []storage.PageID
	t.Walk(func(page storage.PageID, _ int, _ bool, _ []geom.Item) {
		pages = append(pages, page)
	})
	for _, p := range pages {
		t.freeNode(p)
	}
}

// Utilization returns average node fill as a fraction of fanout, computed
// separately for leaves and internal nodes. A freshly bulk-loaded tree
// should report > 0.99 leaf utilization (paper §3.3).
func (t *Tree) Utilization() (leaf, internal float64) {
	var leafEntries, leafNodes, intEntries, intNodes int
	t.Walk(func(_ storage.PageID, _ int, isLeaf bool, entries []geom.Item) {
		if isLeaf {
			leafEntries += len(entries)
			leafNodes++
		} else {
			intEntries += len(entries)
			intNodes++
		}
	})
	if leafNodes > 0 {
		leaf = float64(leafEntries) / float64(leafNodes*t.cfg.Fanout)
	}
	if intNodes > 0 {
		internal = float64(intEntries) / float64(intNodes*t.cfg.Fanout)
	}
	return leaf, internal
}

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("rtree{items=%d nodes=%d height=%d fanout=%d}",
		t.nItems, t.nNodes, t.height, t.cfg.Fanout)
}
