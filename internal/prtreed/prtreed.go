// Package prtreed implements the d-dimensional PR-tree of Section 2.3 of
// the paper: a d-dimensional pseudo-PR-tree is a 2d-dimensional kd-tree
// over the corner transform (min_1..min_d, max_1..max_d) with 2d priority
// leaves per node, and the real PR-tree is assembled bottom-up from
// pseudo-tree leaves exactly as in two dimensions. A window query costs
// O((N/B)^(1-1/d) + T/B) block-equivalents.
//
// The paper's experiments are two-dimensional; this package provides the
// generalization as an in-memory index whose query statistics count nodes
// and leaves (block-equivalents), matching the analysis rather than a
// paged layout.
package prtreed

import (
	"fmt"
	"sync"

	"prtree/internal/geom"
	"prtree/internal/parallel"
)

// Config parameterizes Build.
type Config struct {
	// Dim is the data dimensionality d >= 1.
	Dim int
	// B is the leaf/node capacity (entries per block-equivalent).
	B int
}

func (c Config) check() {
	if c.Dim < 1 {
		panic(fmt.Sprintf("prtreed: dimension %d", c.Dim))
	}
	if c.B < 2 {
		panic(fmt.Sprintf("prtreed: capacity %d", c.B))
	}
}

// Tree is a d-dimensional PR-tree. It is immutable after Build, and
// queries are safe to run concurrently.
type Tree struct {
	cfg    Config
	root   *node
	height int
	n      int
	nodes  int
	stacks sync.Pool // reusable query scratch stacks ([]*node)
}

type node struct {
	bounds   geom.RectD
	items    []geom.ItemD // leaf entries (nil for internal nodes)
	children []*node
}

func (n *node) isLeaf() bool { return n.items != nil }

// Build bulk-loads a d-dimensional PR-tree. The input slice is reordered.
func Build(items []geom.ItemD, cfg Config) *Tree {
	cfg.check()
	for _, it := range items {
		if it.Rect.Dim() != cfg.Dim {
			panic(fmt.Sprintf("prtreed: item dim %d != %d", it.Rect.Dim(), cfg.Dim))
		}
	}
	t := &Tree{cfg: cfg, n: len(items)}
	if len(items) == 0 {
		t.root = &node{items: []geom.ItemD{}, bounds: geom.EmptyRectD(cfg.Dim)}
		t.height = 1
		t.nodes = 1
		return t
	}
	// Stage 0: pseudo-PR-tree leaves over the items become the R-tree
	// leaves; stage i >= 1 packs the previous level's nodes.
	level := make([]*node, 0)
	for _, group := range pseudoLeaves(items, cfg) {
		ln := &node{items: group, bounds: geom.ItemsMBRD(group)}
		level = append(level, ln)
		t.nodes++
	}
	t.height = 1
	for len(level) > 1 {
		// Treat each node's bounds as a d-dimensional item and rebuild.
		entries := make([]geom.ItemD, len(level))
		for i, nd := range level {
			entries[i] = geom.ItemD{Rect: nd.bounds, ID: uint32(i)}
		}
		if len(level) <= cfg.B {
			root := &node{children: level}
			root.bounds = boundsOf(level)
			level = []*node{root}
			t.nodes++
			t.height++
			break
		}
		var next []*node
		for _, group := range pseudoLeaves(entries, cfg) {
			children := make([]*node, len(group))
			for i, e := range group {
				children[i] = level[e.ID]
			}
			in := &node{children: children, bounds: boundsOf(children)}
			next = append(next, in)
			t.nodes++
		}
		level = next
		t.height++
	}
	t.root = level[0]
	return t
}

func boundsOf(nodes []*node) geom.RectD {
	out := nodes[0].bounds.Clone()
	for _, n := range nodes[1:] {
		out.UnionInPlace(n.bounds)
	}
	return out
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.n }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Nodes returns the number of block-equivalents the tree occupies.
func (t *Tree) Nodes() int { return t.nodes }

// QueryStats counts block-equivalents touched by a query.
type QueryStats struct {
	NodesVisited    int
	LeavesVisited   int
	InternalVisited int
	Results         int
}

// RunOptions carries the per-query execution knobs, matching the paged 2D
// tree's executor so callers can swap between the two without changing
// their cancellation or limit plumbing.
type RunOptions struct {
	// Cancel, when non-nil, is polled before every node visit; a non-nil
	// return aborts the traversal immediately and becomes the query's
	// error. Statistics cover the work done up to that point.
	Cancel func() error
	// Limit, when positive, ends the query (successfully) as soon as that
	// many results have been reported.
	Limit int
}

// Query reports every item intersecting q. fn returning false stops early.
// It is RunWindow with zero options.
func (t *Tree) Query(q geom.RectD, fn func(geom.ItemD) bool) QueryStats {
	st, _ := t.RunWindow(q, fn, RunOptions{})
	return st
}

// RunWindow reports every item intersecting q with cooperative
// cancellation and an optional result limit. The traversal is an
// explicit-stack preorder walk (children pushed in reverse), mirroring the
// paged 2D tree's iterative read path: deep trees cost no call-stack
// growth and scratch stacks are pooled across queries. Pooling (rather
// than a field) keeps concurrent and nested queries safe.
func (t *Tree) RunWindow(q geom.RectD, fn func(geom.ItemD) bool, opt RunOptions) (QueryStats, error) {
	var st QueryStats
	sp, _ := t.stacks.Get().(*[]*node)
	if sp == nil {
		s := make([]*node, 0, 32)
		sp = &s
	}
	stack := *sp
	// Pool a pointer-to-slice (SA6002): putting the slice value itself
	// would box its header, allocating on every query.
	defer func() { *sp = stack[:0]; t.stacks.Put(sp) }()
	stack = append(stack[:0], t.root)
	for len(stack) > 0 {
		if opt.Cancel != nil {
			if err := opt.Cancel(); err != nil {
				return st, err
			}
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.NodesVisited++
		if n.isLeaf() {
			st.LeavesVisited++
			for _, it := range n.items {
				if q.Intersects(it.Rect) {
					st.Results++
					if fn != nil && !fn(it) {
						return st, nil
					}
					if opt.Limit > 0 && st.Results >= opt.Limit {
						return st, nil
					}
				}
			}
			continue
		}
		st.InternalVisited++
		for i := len(n.children) - 1; i >= 0; i-- {
			if c := n.children[i]; q.Intersects(c.bounds) {
				stack = append(stack, c)
			}
		}
	}
	return st, nil
}

// QueryBatch runs every query concurrently on up to workers goroutines
// (bounded by GOMAXPROCS; <= 1 means serial) and returns per-query
// statistics indexed like queries. Each query runs whole on one goroutine
// with pooled scratch, so the per-query stats are identical to sequential
// Query calls. fn, if non-nil, receives each result item tagged with its
// query index; it may be called concurrently for different queries.
func (t *Tree) QueryBatch(queries []geom.RectD, workers int, fn func(qi int, it geom.ItemD) bool) []QueryStats {
	out := make([]QueryStats, len(queries))
	parallel.Run(workers, len(queries), func(i int) {
		if fn == nil {
			out[i] = t.Query(queries[i], nil)
			return
		}
		out[i] = t.Query(queries[i], func(it geom.ItemD) bool { return fn(i, it) })
	})
	return out
}

// Validate checks structural invariants: uniform leaf depth, exact bounds,
// capacities, and item count.
func (t *Tree) Validate() error {
	depths := map[int]bool{}
	n, err := t.validate(t.root, 0, depths)
	if err != nil {
		return err
	}
	if n != t.n {
		return fmt.Errorf("prtreed: %d items found, tree reports %d", n, t.n)
	}
	if len(depths) != 1 {
		return fmt.Errorf("prtreed: leaves at %d distinct depths", len(depths))
	}
	return nil
}

func (t *Tree) validate(n *node, depth int, depths map[int]bool) (int, error) {
	if n.isLeaf() {
		depths[depth] = true
		if len(n.items) > t.cfg.B {
			return 0, fmt.Errorf("prtreed: leaf with %d items", len(n.items))
		}
		if len(n.items) > 0 {
			if got := geom.ItemsMBRD(n.items); !equalRect(got, n.bounds) {
				return 0, fmt.Errorf("prtreed: leaf bounds %v != MBR %v", n.bounds, got)
			}
		}
		return len(n.items), nil
	}
	if len(n.children) == 0 || len(n.children) > t.cfg.B {
		return 0, fmt.Errorf("prtreed: internal node with %d children", len(n.children))
	}
	if got := boundsOf(n.children); !equalRect(got, n.bounds) {
		return 0, fmt.Errorf("prtreed: node bounds %v != children MBR %v", n.bounds, got)
	}
	total := 0
	for _, c := range n.children {
		cn, err := t.validate(c, depth+1, depths)
		if err != nil {
			return 0, err
		}
		total += cn
	}
	return total, nil
}

func equalRect(a, b geom.RectD) bool {
	for i := range a.Min {
		if a.Min[i] != b.Min[i] || a.Max[i] != b.Max[i] {
			return false
		}
	}
	return true
}
