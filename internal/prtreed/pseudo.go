package prtreed

import "prtree/internal/geom"

// pseudoLeaves partitions items into the leaf groups of a d-dimensional
// pseudo-PR-tree with 2d priority leaves per node and a round-robin
// 2d-dimensional kd split, rounding divisions to multiples of B for near
// full leaves (Section 2.3 generalizing Section 2.1).
func pseudoLeaves(items []geom.ItemD, cfg Config) [][]geom.ItemD {
	var out [][]geom.ItemD
	if len(items) > 0 {
		recurse(items, cfg, 0, &out)
	}
	return out
}

func recurse(items []geom.ItemD, cfg Config, axis int, out *[][]geom.ItemD) {
	b := cfg.B
	dirs := 2 * cfg.Dim
	if len(items) <= b {
		*out = append(*out, items)
		return
	}
	if len(items) <= dirs*b {
		// Not enough to fill every priority leaf and recurse: split evenly
		// into <= 2d groups, each still extreme in its direction.
		rest := items
		groups := (len(items) + b - 1) / b
		for dir := 0; dir < groups; dir++ {
			take := len(rest) / (groups - dir)
			if dir == groups-1 {
				take = len(rest)
			}
			selectKD(rest, take, extremeLessD(dir, cfg.Dim))
			*out = append(*out, rest[:take:take])
			rest = rest[take:]
		}
		return
	}
	rest := items
	for dir := 0; dir < dirs; dir++ {
		selectKD(rest, b, extremeLessD(dir, cfg.Dim))
		*out = append(*out, rest[:b:b])
		rest = rest[b:]
	}
	half := len(rest) / 2
	half = (half / b) * b
	if half == 0 || half == len(rest) {
		recurse(rest, cfg, axis+1, out)
		return
	}
	selectKD(rest, half, axisLessD(axis%dirs))
	recurse(rest[:half:half], cfg, axis+1, out)
	recurse(rest[half:], cfg, axis+1, out)
}

// extremeLessD orders "more extreme first" for direction dir: directions
// 0..d-1 prefer small Min coordinates, d..2d-1 prefer large Max ones.
func extremeLessD(dir, d int) func(a, b geom.ItemD) bool {
	if dir < d {
		return func(a, b geom.ItemD) bool {
			av, bv := a.Rect.Min[dir], b.Rect.Min[dir]
			if av != bv {
				return av < bv
			}
			return a.ID < b.ID
		}
	}
	k := dir - d
	return func(a, b geom.ItemD) bool {
		av, bv := a.Rect.Max[k], b.Rect.Max[k]
		if av != bv {
			return av > bv
		}
		return a.ID < b.ID
	}
}

// axisLessD orders ascending by corner-transform coordinate.
func axisLessD(axis int) func(a, b geom.ItemD) bool {
	return func(a, b geom.ItemD) bool {
		av, bv := a.Rect.Coord(axis), b.Rect.Coord(axis)
		if av != bv {
			return av < bv
		}
		return a.ID < b.ID
	}
}

// selectKD is the ItemD flavor of the randomized three-way quickselect.
func selectKD(items []geom.ItemD, k int, less func(a, b geom.ItemD) bool) {
	if k <= 0 || k >= len(items) {
		return
	}
	lo, hi := 0, len(items)
	rng := uint64(0x9e3779b97f4a7c15)
	for hi-lo > 1 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		pivot := items[lo+int(rng%uint64(hi-lo))]
		lt, i, gt := lo, lo, hi
		for i < gt {
			switch {
			case less(items[i], pivot):
				items[lt], items[i] = items[i], items[lt]
				lt++
				i++
			case less(pivot, items[i]):
				gt--
				items[gt], items[i] = items[i], items[gt]
			default:
				i++
			}
		}
		switch {
		case k <= lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return
		}
	}
}
