package prtreed

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"prtree/internal/geom"
)

func randItemsD(n, d int, seed int64) []geom.ItemD {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.ItemD, n)
	for i := range items {
		lo := make([]float64, d)
		hi := make([]float64, d)
		for k := 0; k < d; k++ {
			lo[k] = rng.Float64()
			hi[k] = lo[k] + rng.Float64()*0.05
		}
		items[i] = geom.ItemD{Rect: geom.NewRectD(lo, hi), ID: uint32(i)}
	}
	return items
}

func randQueryD(d int, rng *rand.Rand) geom.RectD {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for k := 0; k < d; k++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		lo[k], hi[k] = a, b
	}
	return geom.NewRectD(lo, hi)
}

func TestBuildDimensions(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		items := randItemsD(3000, d, int64(d))
		tr := Build(items, Config{Dim: d, B: 16})
		if tr.Len() != 3000 {
			t.Fatalf("d=%d: len=%d", d, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestQueryMatchesBruteForce3D(t *testing.T) {
	d := 3
	items := randItemsD(4000, d, 1)
	tr := Build(items, Config{Dim: d, B: 16})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		q := randQueryD(d, rng)
		want := 0
		for _, it := range items {
			if q.Intersects(it.Rect) {
				want++
			}
		}
		got := map[uint32]bool{}
		st := tr.Query(q, func(it geom.ItemD) bool {
			got[it.ID] = true
			return true
		})
		if len(got) != want || st.Results != want {
			t.Fatalf("query %d: got %d (st %d), want %d", i, len(got), st.Results, want)
		}
	}
}

func TestQueryMatchesBruteForce4D(t *testing.T) {
	d := 4
	items := randItemsD(2000, d, 3)
	tr := Build(items, Config{Dim: d, B: 8})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		q := randQueryD(d, rng)
		want := 0
		for _, it := range items {
			if q.Intersects(it.Rect) {
				want++
			}
		}
		st := tr.Query(q, nil)
		if st.Results != want {
			t.Fatalf("query %d: got %d, want %d", i, st.Results, want)
		}
	}
}

func TestEmptyAndTiny(t *testing.T) {
	tr := Build(nil, Config{Dim: 3, B: 8})
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty: %d/%d", tr.Len(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	one := randItemsD(1, 3, 5)
	tr = Build(one, Config{Dim: 3, B: 8})
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Errorf("single: %d/%d", tr.Len(), tr.Height())
	}
	st := tr.Query(one[0].Rect, nil)
	if st.Results != 1 {
		t.Errorf("single query results = %d", st.Results)
	}
}

func TestUniformDepth(t *testing.T) {
	items := randItemsD(5000, 3, 6)
	tr := Build(items, Config{Dim: 3, B: 8})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, expected a real tree", tr.Height())
	}
}

func TestBadConfigPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Build(nil, Config{Dim: 0, B: 8}) },
		func() { Build(nil, Config{Dim: 2, B: 1}) },
		func() { Build(randItemsD(5, 3, 1), Config{Dim: 2, B: 8}) }, // dim mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestConcurrentQueries(t *testing.T) {
	items := randItemsD(4000, 3, 17)
	tr := Build(items, Config{Dim: 3, B: 16})
	rng := rand.New(rand.NewSource(18))
	queries := make([]geom.RectD, 8)
	want := make([]int, len(queries))
	for i := range queries {
		queries[i] = randQueryD(3, rng)
		want[i] = tr.Query(queries[i], nil).Results
	}
	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			for round := 0; round < 50; round++ {
				for i, q := range queries {
					if got := tr.Query(q, nil).Results; got != want[i] {
						errs <- fmt.Errorf("query %d: got %d results, want %d", i, got, want[i])
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentQueryBatch checks the batch executor against sequential
// queries: per-query stats and per-query result sets must match at every
// worker count.
func TestConcurrentQueryBatch(t *testing.T) {
	// Raise GOMAXPROCS so the pool fans out even on single-CPU machines
	// (workers are clamped to GOMAXPROCS).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	items := randItemsD(5000, 3, 19)
	tr := Build(items, Config{Dim: 3, B: 16})
	rng := rand.New(rand.NewSource(20))
	queries := make([]geom.RectD, 30)
	wantStats := make([]QueryStats, len(queries))
	wantIDs := make([][]uint32, len(queries))
	for i := range queries {
		queries[i] = randQueryD(3, rng)
		wantStats[i] = tr.Query(queries[i], func(it geom.ItemD) bool {
			wantIDs[i] = append(wantIDs[i], it.ID)
			return true
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		gotIDs := make([][]uint32, len(queries))
		gotStats := tr.QueryBatch(queries, workers, func(qi int, it geom.ItemD) bool {
			gotIDs[qi] = append(gotIDs[qi], it.ID)
			return true
		})
		for i := range queries {
			if gotStats[i] != wantStats[i] {
				t.Fatalf("workers=%d query %d: stats %+v, want %+v", workers, i, gotStats[i], wantStats[i])
			}
			if len(gotIDs[i]) != len(wantIDs[i]) {
				t.Fatalf("workers=%d query %d: %d ids, want %d", workers, i, len(gotIDs[i]), len(wantIDs[i]))
			}
			for j := range gotIDs[i] {
				if gotIDs[i][j] != wantIDs[i][j] {
					t.Fatalf("workers=%d query %d: id[%d]=%d, want %d", workers, i, j, gotIDs[i][j], wantIDs[i][j])
				}
			}
		}
	}
}

func TestEarlyStop(t *testing.T) {
	items := randItemsD(1000, 2, 7)
	tr := Build(items, Config{Dim: 2, B: 16})
	count := 0
	world := geom.NewRectD([]float64{0, 0}, []float64{2, 2})
	tr.Query(world, func(geom.ItemD) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop at %d", count)
	}
}

// TestQueryBound3D checks the d-dimensional analogue of Lemma 2: on a 3D
// point grid, zero-output slab queries visit O((N/B)^(2/3)) blocks.
func TestQueryBound3D(t *testing.T) {
	b := 8
	for _, side := range []int{8, 16, 24} {
		n := side * side * side
		items := make([]geom.ItemD, 0, n)
		for x := 0; x < side; x++ {
			for y := 0; y < side; y++ {
				for z := 0; z < side; z++ {
					p := []float64{float64(x) + 0.5, float64(y) + 0.5, float64(z) + 0.5}
					items = append(items, geom.ItemD{Rect: geom.PointRectD(p), ID: uint32(len(items))})
				}
			}
		}
		tr := Build(items, Config{Dim: 3, B: b})
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		worst := 0
		for cut := 0; cut < side; cut++ {
			// A degenerate plane between grid layers: zero output.
			q := geom.NewRectD(
				[]float64{0, 0, float64(cut)},
				[]float64{float64(side), float64(side), float64(cut)},
			)
			st := tr.Query(q, nil)
			if st.Results != 0 {
				t.Fatalf("plane query hit %d points", st.Results)
			}
			if st.NodesVisited > worst {
				worst = st.NodesVisited
			}
		}
		bound := 24 * math.Pow(float64(n)/float64(b), 2.0/3.0)
		if float64(worst) > bound {
			t.Errorf("side=%d: worst plane query %d blocks, bound %.0f", side, worst, bound)
		}
	}
}

func TestLeafGroupsPartition(t *testing.T) {
	items := randItemsD(3000, 3, 8)
	groups := pseudoLeaves(items, Config{Dim: 3, B: 16})
	seen := map[uint32]bool{}
	for _, g := range groups {
		if len(g) == 0 || len(g) > 16 {
			t.Fatalf("group size %d", len(g))
		}
		for _, it := range g {
			if seen[it.ID] {
				t.Fatalf("item %d in two groups", it.ID)
			}
			seen[it.ID] = true
		}
	}
	if len(seen) != 3000 {
		t.Fatalf("groups cover %d items", len(seen))
	}
}

func TestPriorityExtremesPerDirection(t *testing.T) {
	d := 3
	items := randItemsD(5000, d, 9)
	groups := pseudoLeaves(items, Config{Dim: d, B: 32})
	// First 2d groups are the root's priority leaves in direction order.
	// Group 0 holds the 32 globally smallest Min[0] values.
	g0 := groups[0]
	worst := g0[0].Rect.Min[0]
	for _, it := range g0 {
		if it.Rect.Min[0] > worst {
			worst = it.Rect.Min[0]
		}
	}
	inLeaf := map[uint32]bool{}
	for _, it := range g0 {
		inLeaf[it.ID] = true
	}
	for _, it := range items {
		if !inLeaf[it.ID] && it.Rect.Min[0] < worst {
			t.Fatalf("item %d more extreme than root min-x leaf", it.ID)
		}
	}
}

func TestRunWindowOptions(t *testing.T) {
	items := randItemsD(4000, 3, 77)
	tr := Build(items, Config{Dim: 3, B: 16})
	q := geom.NewRectD([]float64{0, 0, 0}, []float64{1, 1, 1})

	full, err := tr.RunWindow(q, nil, RunOptions{})
	if err != nil {
		t.Fatalf("RunWindow: %v", err)
	}
	if full.Results != tr.Len() {
		t.Fatalf("full window found %d of %d", full.Results, tr.Len())
	}
	if full.NodesVisited != full.LeavesVisited+full.InternalVisited {
		t.Fatalf("visit accounting: nodes=%d leaves=%d internal=%d",
			full.NodesVisited, full.LeavesVisited, full.InternalVisited)
	}

	// Limit short-circuits the walk.
	lim, err := tr.RunWindow(q, nil, RunOptions{Limit: 7})
	if err != nil {
		t.Fatalf("RunWindow limit: %v", err)
	}
	if lim.Results != 7 {
		t.Fatalf("limit=7 reported %d results", lim.Results)
	}
	if lim.NodesVisited >= full.NodesVisited {
		t.Fatalf("limited walk visited %d nodes, full walk %d", lim.NodesVisited, full.NodesVisited)
	}

	// Cancel aborts with the callback's error after bounded progress.
	wantErr := fmt.Errorf("deadline")
	calls := 0
	st, err := tr.RunWindow(q, nil, RunOptions{Cancel: func() error {
		calls++
		if calls > 3 {
			return wantErr
		}
		return nil
	}})
	if err != wantErr {
		t.Fatalf("cancel error = %v", err)
	}
	if st.NodesVisited != 3 {
		t.Fatalf("cancelled after %d visits, want 3", st.NodesVisited)
	}

	// Query is RunWindow with zero options.
	if got := tr.Query(q, nil); got != full {
		t.Fatalf("Query stats %+v != RunWindow %+v", got, full)
	}
}
