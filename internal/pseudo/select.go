// Package pseudo implements the pseudo-PR-tree of Section 2.1 of the
// paper: a four-dimensional kd-tree over the corner transform
// (xmin, ymin, xmax, ymax) where every internal node carries four priority
// leaves holding the B most extreme rectangles in each direction. It
// provides the exact in-memory construction, the I/O-efficient external
// grid construction, and a window-query engine used to verify Lemma 2.
package pseudo

import "prtree/internal/geom"

// extremeLess orders items by "more extreme first" along a priority
// direction: directions 0 and 1 (xmin, ymin) prefer small coordinates,
// directions 2 and 3 (xmax, ymax) prefer large ones. Ties break by id so
// every order is strict.
func extremeLess(dir int) func(a, b geom.Item) bool {
	if dir < 2 {
		return func(a, b geom.Item) bool {
			av, bv := a.Rect.Coord(dir), b.Rect.Coord(dir)
			if av != bv {
				return av < bv
			}
			return a.ID < b.ID
		}
	}
	return func(a, b geom.Item) bool {
		av, bv := a.Rect.Coord(dir), b.Rect.Coord(dir)
		if av != bv {
			return av > bv
		}
		return a.ID < b.ID
	}
}

// axisLess orders items ascending by the corner-transform coordinate with
// id tie-break — the kd-split order.
func axisLess(axis int) func(a, b geom.Item) bool {
	return func(a, b geom.Item) bool {
		av, bv := a.Rect.Coord(axis), b.Rect.Coord(axis)
		if av != bv {
			return av < bv
		}
		return a.ID < b.ID
	}
}

// selectK partially sorts items so that the k smallest under less occupy
// items[:k] (in unspecified order). It is the in-place quickselect used to
// peel off priority leaves and to find kd medians. A deterministic
// xorshift pivot choice with three-way partitioning keeps it expected
// linear on any input, including the partially-partitioned arrays the
// pseudo-PR-tree construction itself produces.
func selectK(items []geom.Item, k int, less func(a, b geom.Item) bool) {
	if k <= 0 || k >= len(items) {
		return
	}
	lo, hi := 0, len(items) // half-open window still containing index k-1
	rng := uint64(0x9e3779b97f4a7c15)
	for hi-lo > 1 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		pivot := items[lo+int(rng%uint64(hi-lo))]
		lt, gt := threeWayPartition(items, lo, hi, pivot, less)
		switch {
		case k <= lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return // k falls inside the equal run: done
		}
	}
}

// threeWayPartition rearranges items[lo:hi] into < pivot, == pivot,
// > pivot runs and returns the equal run's bounds [lt, gt).
func threeWayPartition(items []geom.Item, lo, hi int, pivot geom.Item, less func(a, b geom.Item) bool) (int, int) {
	lt, i, gt := lo, lo, hi
	for i < gt {
		switch {
		case less(items[i], pivot):
			items[lt], items[i] = items[i], items[lt]
			lt++
			i++
		case less(pivot, items[i]):
			gt--
			items[gt], items[i] = items[i], items[gt]
		default:
			i++
		}
	}
	return lt, gt
}
