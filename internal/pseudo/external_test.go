package pseudo

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"prtree/internal/geom"
	"prtree/internal/storage"
)

// collectExternal runs BuildExternal and gathers the emitted groups.
func collectExternal(t *testing.T, items []geom.Item, b, m int) (*storage.Disk, []LeafGroup) {
	t.Helper()
	disk := storage.NewDisk(storage.DefaultBlockSize)
	in := storage.NewItemFileFrom(disk, items)
	var groups []LeafGroup
	BuildExternal(disk, in, ExternalConfig{B: b, M: m}, func(lg LeafGroup) {
		// Copy: builder may reuse backing arrays.
		cp := make([]geom.Item, len(lg.Items))
		copy(cp, lg.Items)
		groups = append(groups, LeafGroup{Items: cp, Priority: lg.Priority, Dir: lg.Dir})
	})
	return disk, groups
}

func checkPartition(t *testing.T, items []geom.Item, groups []LeafGroup, b int) {
	t.Helper()
	seen := make(map[uint32]geom.Rect)
	for _, lg := range groups {
		if len(lg.Items) == 0 {
			t.Fatal("empty group emitted")
		}
		if len(lg.Items) > b {
			t.Fatalf("group of %d exceeds capacity %d", len(lg.Items), b)
		}
		for _, it := range lg.Items {
			if _, dup := seen[it.ID]; dup {
				t.Fatalf("item %d emitted twice", it.ID)
			}
			seen[it.ID] = it.Rect
		}
	}
	if len(seen) != len(items) {
		t.Fatalf("groups cover %d of %d items", len(seen), len(items))
	}
	for _, it := range items {
		if r, ok := seen[it.ID]; !ok || r != it.Rect {
			t.Fatalf("item %d missing or corrupted", it.ID)
		}
	}
}

func TestExternalSmallFallsBackToInMemory(t *testing.T) {
	items := randItems(500, 1)
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	_, groups := collectExternal(t, items, 16, 10*per)
	checkPartition(t, items, groups, 16)
}

func TestExternalLargePartition(t *testing.T) {
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	items := randItems(20000, 2)
	m := 20 * per // 2260 records in memory; forces several external rounds
	_, groups := collectExternal(t, items, per, m)
	checkPartition(t, items, groups, per)
}

func TestExternalTinyMemoryManyRounds(t *testing.T) {
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	items := randItems(8000, 3)
	m := 5 * per
	_, groups := collectExternal(t, items, per, m)
	checkPartition(t, items, groups, per)
}

func TestExternalPriorityGroupsAreExtreme(t *testing.T) {
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	items := randItems(20000, 4)
	_, groups := collectExternal(t, items, per, 20*per)
	// The very first emitted group is the root node's xmin priority leaf:
	// it must hold the globally most extreme xmin rectangles.
	first := groups[0]
	if !first.Priority || first.Dir != 0 {
		t.Fatalf("first group: priority=%v dir=%d", first.Priority, first.Dir)
	}
	if len(first.Items) != per {
		t.Fatalf("root xmin leaf holds %d items", len(first.Items))
	}
	worst := first.Items[0].Rect.MinX
	for _, it := range first.Items {
		if it.Rect.MinX > worst {
			worst = it.Rect.MinX
		}
	}
	// Count how many dataset items are strictly more extreme than the
	// worst member: must be < len(first.Items).
	better := 0
	for _, it := range items {
		if it.Rect.MinX < worst {
			better++
		}
	}
	if better >= len(first.Items)+1 {
		t.Errorf("root xmin leaf misses extremes: %d items beat its worst member", better)
	}
}

func TestExternalMostGroupsFull(t *testing.T) {
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	items := randItems(30000, 5)
	_, groups := collectExternal(t, items, per, 30*per)
	full := 0
	for _, lg := range groups {
		if len(lg.Items) == per {
			full++
		}
	}
	if frac := float64(full) / float64(len(groups)); frac < 0.85 {
		t.Errorf("only %.2f of groups are full", frac)
	}
}

func TestExternalIOWithinSortBound(t *testing.T) {
	// The whole build should cost a small constant times the sort cost.
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	n := 30000
	items := randItems(n, 6)
	disk := storage.NewDisk(storage.DefaultBlockSize)
	in := storage.NewItemFileFrom(disk, items)
	disk.ResetStats()
	BuildExternal(disk, in, ExternalConfig{B: per, M: 30 * per}, func(LeafGroup) {})
	total := disk.Stats().Total()
	nBlocks := uint64((n + per - 1) / per)
	// 4 sorts (~4 passes each here) + a few linear passes per round.
	if total > 100*nBlocks {
		t.Errorf("external build cost %d I/Os for %d blocks", total, nBlocks)
	}
}

func TestExternalFreesIntermediateFiles(t *testing.T) {
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	items := randItems(12000, 7)
	disk := storage.NewDisk(storage.DefaultBlockSize)
	in := storage.NewItemFileFrom(disk, items)
	BuildExternal(disk, in, ExternalConfig{B: per, M: 12 * per}, func(LeafGroup) {})
	if disk.PagesInUse() != 0 {
		t.Errorf("%d pages leaked after external build", disk.PagesInUse())
	}
}

func TestExternalEquivalentQueryQuality(t *testing.T) {
	// Groups from the external build should give a query-competitive
	// partition: build a flat check — every group's MBR area stays small
	// relative to a random grouping. We verify the partition is usable by
	// running window queries against the union of group members.
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	items := randItems(15000, 8)
	_, groups := collectExternal(t, items, per, 15*per)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		want := 0
		for _, it := range items {
			if q.Intersects(it.Rect) {
				want++
			}
		}
		got := 0
		for _, lg := range groups {
			for _, it := range lg.Items {
				if q.Intersects(it.Rect) {
					got++
				}
			}
		}
		if got != want {
			t.Fatalf("query %d: groups found %d, brute force %d", i, got, want)
		}
	}
}

func TestExternalClusteredData(t *testing.T) {
	// Clustered data (non-uniform) exercises unbalanced grid cells.
	rng := rand.New(rand.NewSource(10))
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	var items []geom.Item
	for c := 0; c < 20; c++ {
		cx, cy := rng.Float64(), rng.Float64()
		for i := 0; i < 600; i++ {
			x := cx + rng.NormFloat64()*1e-4
			y := cy + rng.NormFloat64()*1e-4
			items = append(items, geom.Item{Rect: geom.PointRect(x, y), ID: uint32(len(items))})
		}
	}
	_, groups := collectExternal(t, items, per, 12*per)
	checkPartition(t, items, groups, per)
}

func TestExternalSkewedOneDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	per := storage.ItemsPerBlock(storage.DefaultBlockSize)
	items := make([]geom.Item, 9000)
	for i := range items {
		x := rng.Float64()
		y := math.Pow(rng.Float64(), 9)
		items[i] = geom.Item{Rect: geom.PointRect(x, y), ID: uint32(i)}
	}
	_, groups := collectExternal(t, items, per, 10*per)
	checkPartition(t, items, groups, per)
}

func TestExternalPanicsOnBadConfig(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	in := storage.NewItemFileFrom(disk, randItems(10, 12))
	defer func() {
		if recover() == nil {
			t.Error("tiny memory should panic")
		}
	}()
	BuildExternal(disk, in, ExternalConfig{B: 16, M: 10}, func(LeafGroup) {})
}

func TestExternalEmptyInput(t *testing.T) {
	disk := storage.NewDisk(storage.DefaultBlockSize)
	in := storage.NewItemFileFrom(disk, nil)
	calls := 0
	BuildExternal(disk, in, ExternalConfig{B: 16, M: 4 * storage.ItemsPerBlock(storage.DefaultBlockSize)},
		func(LeafGroup) { calls++ })
	if calls != 0 {
		t.Errorf("empty input emitted %d groups", calls)
	}
}

// allowParallelism raises GOMAXPROCS so the worker pool actually fans out
// even on single-CPU machines (workers are clamped to GOMAXPROCS).
func allowParallelism() func() {
	old := runtime.GOMAXPROCS(4)
	return func() { runtime.GOMAXPROCS(old) }
}

// TestExternalSerialParallelEquivalence: the grid construction must emit
// the same leaf groups in the same order, with identical block-I/O counts,
// at every worker count.
func TestExternalSerialParallelEquivalence(t *testing.T) {
	defer allowParallelism()()
	items := randItems(12000, 3)
	run := func(workers int) (groups []LeafGroup, st storage.Stats) {
		d := storage.NewDisk(storage.DefaultBlockSize)
		in := storage.NewItemFileFrom(d, items)
		d.ResetStats()
		BuildExternal(d, in, ExternalConfig{B: 16, M: 1024, Workers: workers}, func(lg LeafGroup) {
			cp := LeafGroup{Items: append([]geom.Item(nil), lg.Items...), Priority: lg.Priority, Dir: lg.Dir}
			groups = append(groups, cp)
		})
		return groups, d.Stats()
	}
	sGroups, sStats := run(1)
	for _, workers := range []int{2, 4} {
		pGroups, pStats := run(workers)
		if pStats != sStats {
			t.Fatalf("workers=%d: stats %v != serial %v", workers, pStats, sStats)
		}
		if len(pGroups) != len(sGroups) {
			t.Fatalf("workers=%d: %d groups != serial %d", workers, len(pGroups), len(sGroups))
		}
		for i := range pGroups {
			p, s := pGroups[i], sGroups[i]
			if p.Priority != s.Priority || p.Dir != s.Dir || len(p.Items) != len(s.Items) {
				t.Fatalf("workers=%d: group %d header differs", workers, i)
			}
			for j := range p.Items {
				if p.Items[j] != s.Items[j] {
					t.Fatalf("workers=%d: group %d item %d differs", workers, i, j)
				}
			}
		}
	}
}
