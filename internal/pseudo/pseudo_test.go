package pseudo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"prtree/internal/geom"
)

func randItems(n int, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = geom.Item{
			Rect: geom.NewRect(x, y, x+rng.Float64()*0.02, y+rng.Float64()*0.02),
			ID:   uint32(i),
		}
	}
	return items
}

func TestSelectKPartitions(t *testing.T) {
	for _, dir := range []int{0, 1, 2, 3} {
		items := randItems(500, int64(dir+1))
		less := extremeLess(dir)
		selectK(items, 100, less)
		// max of first 100 must not exceed min of the rest.
		worstIn := items[0]
		for _, it := range items[:100] {
			if less(worstIn, it) {
				worstIn = it
			}
		}
		for _, it := range items[100:] {
			if less(it, worstIn) {
				t.Fatalf("dir %d: item outside first 100 is more extreme", dir)
			}
		}
	}
}

func TestSelectKQuick(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		items := randItems(64, seed)
		k := int(kRaw) % 64
		less := axisLess(0)
		selectK(items, k, less)
		if k == 0 {
			return true
		}
		worst := items[0]
		for _, it := range items[:k] {
			if less(worst, it) {
				worst = it
			}
		}
		for _, it := range items[k:] {
			if less(it, worst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSelectKEdges(t *testing.T) {
	items := randItems(10, 1)
	orig := append([]geom.Item{}, items...)
	selectK(items, 0, axisLess(0))
	selectK(items, 10, axisLess(0))
	selectK(items, 15, axisLess(0))
	// Multiset unchanged.
	sort.Slice(items, func(i, j int) bool { return items[i].ID < items[j].ID })
	sort.Slice(orig, func(i, j int) bool { return orig[i].ID < orig[j].ID })
	for i := range orig {
		if items[i] != orig[i] {
			t.Fatal("selectK corrupted items")
		}
	}
}

func TestBuildSizes(t *testing.T) {
	for _, tc := range []struct {
		n, b int
	}{
		{1, 8}, {8, 8}, {9, 8}, {20, 8}, {32, 8}, {33, 8},
		{100, 8}, {1000, 8}, {5000, 16}, {200, 1}, {500, 113},
	} {
		items := randItems(tc.n, int64(tc.n))
		tr := Build(items, tc.b, false)
		if tr.N != tc.n {
			t.Fatalf("n=%d b=%d: N=%d", tc.n, tc.b, tr.N)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d b=%d: %v", tc.n, tc.b, err)
		}
		if got := len(tr.Items()); got != tc.n {
			t.Fatalf("n=%d b=%d: Items()=%d", tc.n, tc.b, got)
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	tr := Build(nil, 8, false)
	if tr.Root != nil || tr.N != 0 {
		t.Error("empty build should have nil root")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if st := tr.Query(geom.NewRect(0, 0, 1, 1), nil); st.Results != 0 {
		t.Error("empty query should find nothing")
	}
}

func TestBuildRoundToBFillsLeaves(t *testing.T) {
	items := randItems(113*40, 42)
	tr := Build(items, 113, true)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	leaves := tr.Leaves()
	full := 0
	total := 0
	for _, lg := range leaves {
		total += len(lg.Items)
		if len(lg.Items) == 113 {
			full++
		}
	}
	if total != len(items) {
		t.Fatalf("leaves hold %d of %d items", total, len(items))
	}
	if frac := float64(full) / float64(len(leaves)); frac < 0.9 {
		t.Errorf("only %.2f of leaves full with round-to-B", frac)
	}
}

func TestLeavesPartitionItems(t *testing.T) {
	items := randItems(3000, 7)
	tr := Build(items, 16, false)
	seen := make(map[uint32]bool)
	for _, lg := range tr.Leaves() {
		if len(lg.Items) == 0 || len(lg.Items) > 16 {
			t.Fatalf("leaf size %d", len(lg.Items))
		}
		for _, it := range lg.Items {
			if seen[it.ID] {
				t.Fatalf("item %d in two leaves", it.ID)
			}
			seen[it.ID] = true
		}
	}
	if len(seen) != len(items) {
		t.Fatalf("leaves cover %d of %d items", len(seen), len(items))
	}
}

func TestPriorityLeavesAreExtreme(t *testing.T) {
	items := randItems(2000, 8)
	tr := Build(items, 32, false)
	root := tr.Root
	if root.IsLeaf() {
		t.Fatal("root should be internal")
	}
	// The root's xmin priority leaf must contain the B globally smallest
	// xmin rectangles.
	sorted := append([]geom.Item{}, items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Rect.MinX != sorted[j].Rect.MinX {
			return sorted[i].Rect.MinX < sorted[j].Rect.MinX
		}
		return sorted[i].ID < sorted[j].ID
	})
	want := make(map[uint32]bool)
	for _, it := range sorted[:32] {
		want[it.ID] = true
	}
	for _, it := range root.Priority[0] {
		if !want[it.ID] {
			t.Fatalf("root xmin leaf holds non-extreme item %d", it.ID)
		}
	}
	if len(root.Priority[0]) != 32 {
		t.Fatalf("root xmin leaf has %d items", len(root.Priority[0]))
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	items := randItems(4000, 9)
	tr := Build(items, 16, true)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 60; i++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		want := 0
		for _, it := range items {
			if q.Intersects(it.Rect) {
				want++
			}
		}
		got := make(map[uint32]bool)
		st := tr.Query(q, func(it geom.Item) bool {
			got[it.ID] = true
			return true
		})
		if len(got) != want || st.Results != want {
			t.Fatalf("query %d: got %d (stats %d), want %d", i, len(got), st.Results, want)
		}
	}
}

func TestQueryEarlyStop(t *testing.T) {
	items := randItems(1000, 11)
	tr := Build(items, 16, false)
	count := 0
	tr.Query(geom.NewRect(0, 0, 2, 2), func(geom.Item) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d", count)
	}
}

// TestLemma2QueryBound checks the paper's central claim empirically: a
// window query on a pseudo-PR-tree over N rectangles visits
// O(sqrt(N/B) + T/B) blocks. We use zero-output line probes on uniform
// points so T = 0 and the bound is purely c*sqrt(N/B).
func TestLemma2QueryBound(t *testing.T) {
	b := 16
	for _, n := range []int{1000, 4000, 16000} {
		rng := rand.New(rand.NewSource(int64(n)))
		items := make([]geom.Item, n)
		for i := range items {
			// Points on a jittered grid, off the probe lines.
			items[i] = geom.Item{Rect: geom.PointRect(rng.Float64(), math.Floor(rng.Float64()*1000)/1000+0.0003), ID: uint32(i)}
		}
		tr := Build(items, b, true)
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		bound := 10*math.Sqrt(float64(n)/float64(b)) + 10
		worst := 0
		for i := 0; i < 50; i++ {
			y := math.Floor(rng.Float64()*1000)/1000 + 0.0001 // between grid rows
			st := tr.Query(geom.NewRect(0, y, 1, y+0.0001), nil)
			if st.Results != 0 {
				t.Fatalf("probe hit %d results; dataset construction broken", st.Results)
			}
			if v := st.LeavesVisited + st.InternalVisited; v > worst {
				worst = v
			}
		}
		if float64(worst) > bound {
			t.Errorf("n=%d: worst zero-output query visited %d blocks, bound %d",
				n, worst, int(bound))
		}
	}
}

func TestBuildManyDuplicates(t *testing.T) {
	items := make([]geom.Item, 500)
	for i := range items {
		items[i] = geom.Item{Rect: geom.NewRect(0.5, 0.5, 0.6, 0.6), ID: uint32(i)}
	}
	tr := Build(items, 8, true)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.Query(geom.NewRect(0.55, 0.55, 0.56, 0.56), nil)
	if st.Results != 500 {
		t.Errorf("duplicates query found %d", st.Results)
	}
}

func TestBuildBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("B=0 should panic")
		}
	}()
	Build(randItems(10, 1), 0, false)
}

func TestBoundsCoverSubtrees(t *testing.T) {
	items := randItems(2000, 12)
	tr := Build(items, 16, false)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		for _, it := range collect(n, nil) {
			if !n.Bounds.Contains(it.Rect) {
				t.Fatalf("bounds %v miss item %v", n.Bounds, it.Rect)
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tr.Root)
}
